(* Application-level check (the paper's Section 5.4): a media-streaming
   workload runs live over REsPoNse-lat paths in the Abovenet topology and is
   compared with OSPF-InvCap routing. Energy savings should come with only a
   marginal play-out penalty.

     dune exec examples/streaming.exe *)

let () =
  let g = Topo.Rocketfuel.make Topo.Rocketfuel.abovenet in
  let power = Power.Model.cisco12000 g in
  let nodes = Topo.Graph.traffic_nodes g in
  let all_pairs =
    Array.to_list nodes
    |> List.concat_map (fun o ->
           Array.to_list nodes |> List.filter_map (fun d -> if o <> d then Some (o, d) else None))
  in
  (* REsPoNse-lat tables (latency bound 25 % over OSPF). *)
  let rep_lat =
    Response.Framework.precompute
      ~config:{ Response.Framework.default with latency_beta = Some 0.25 }
      g power ~pairs:all_pairs
  in
  (* OSPF-InvCap baseline: a single always-on path per pair, no sleeping
     intent — modelled as tables whose only path is the InvCap route. *)
  let spf = Routing.Spf.routes g ~pairs:all_pairs () in
  let invcap =
    Response.Tables.make g
      (List.filter_map
         (fun (o, d) ->
           Option.map
             (fun p ->
               { Response.Tables.origin = o; dest = d; always_on = p; on_demand = []; failover = None })
             (Hashtbl.find_opt spf (o, d)))
         all_pairs)
  in
  let rng = Eutil.Prng.create 11 in
  let source = nodes.(0) in
  let clients =
    List.init 24 (fun i ->
        {
          Appsim.Streaming.node = nodes.(1 + Eutil.Prng.int rng (Array.length nodes - 1));
          join_time = 0.5 *. float_of_int i;
        })
  in
  let scenario =
    {
      Appsim.Streaming.source;
      bitrate = 600e3;
      block_duration = 1.0;
      startup_buffer = 5.0;
      clients;
      duration = 60.0;
    }
  in
  let config =
    {
      Netsim.Sim.default_config with
      Netsim.Sim.te =
        { Response.Te.default_config with probe_period = Eutil.Units.seconds 0.2 };
      sample_interval = 0.25;
      idle_timeout = 5.0;
    }
  in
  let run tables = Appsim.Streaming.run ~config ~tables ~power scenario in
  let rep = run rep_lat in
  let osp = run invcap in
  let pp name s =
    Format.printf "%-14s playable %a   block latency %.2f s   power %.1f%%@." name
      Eutil.Stats.pp_boxplot s.Appsim.Streaming.playable s.Appsim.Streaming.mean_block_latency
      s.Appsim.Streaming.mean_power_percent
  in
  Format.printf "24 clients streaming 600 kbit/s from %s:@.@." (Topo.Graph.name g source);
  pp "REsPoNse-lat" rep;
  pp "OSPF-InvCap" osp;
  Format.printf
    "@.REsPoNse-lat keeps play-out quality while large parts of the network sleep@.\
     (the InvCap baseline never sleeps: its real power is 100%%).@."
