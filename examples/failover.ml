(* Live failover scenario on the paper's example topology (Figures 3 and 7):
   REsPoNseTE consolidates traffic onto the always-on middle path letting the
   on-demand paths sleep; when the middle link fails, traffic promptly shifts
   to the sleeping paths, which wake in ~10 ms.

     dune exec examples/failover.exe *)

module Sim = Netsim.Sim
module G = Topo.Graph

let () =
  let ex = Topo.Example.make ~include_b:false () in
  let g = ex.Topo.Example.graph in
  let power = Power.Model.cisco12000 g in
  let link i j = (G.arc g (Option.get (G.find_arc g i j))).G.link in
  let arc i j = Option.get (G.find_arc g i j) in
  let path l = Topo.Path.of_arcs g l in
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  let middle o = path [ arc o ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.h; arc ex.Topo.Example.h k ] in
  let upper = path [ arc a ex.Topo.Example.d; arc ex.Topo.Example.d ex.Topo.Example.g; arc ex.Topo.Example.g k ] in
  let lower = path [ arc c ex.Topo.Example.f; arc ex.Topo.Example.f ex.Topo.Example.j; arc ex.Topo.Example.j k ] in
  let tables =
    Response.Tables.make g
      [
        { Response.Tables.origin = a; dest = k; always_on = middle a; on_demand = [ upper ]; failover = None };
        { Response.Tables.origin = c; dest = k; always_on = middle c; on_demand = [ lower ]; failover = None };
      ]
  in
  (* 5 flows of ~0.5 Mbit/s from each of A and C towards K. *)
  let demand = Traffic.Matrix.create (G.node_count g) in
  Traffic.Matrix.set demand a k 2.5e6;
  Traffic.Matrix.set demand c k 2.5e6;
  let config =
    {
      Sim.te =
        (let module U = Eutil.Units in
         {
           Response.Te.default_config with
           Response.Te.probe_period = U.seconds 0.1;
           util_threshold = U.ratio 0.9;
           low_threshold = U.ratio 0.55;
           hysteresis = U.seconds 0.05;
           shift_fraction = U.ratio 1.0;
         });
      wake_time = 0.01;
      failure_detection = 0.1;
      idle_timeout = 0.3;
      sample_interval = 0.05;
      te_start = 5.0;  (* REsPoNseTE starts at t = 5 s, as in Figure 7 *)
      transition_energy = 0.0;
    }
  in
  let eh = link ex.Topo.Example.e ex.Topo.Example.h in
  let r =
    Sim.run ~config
      ~initial_splits:[ ((a, k), [| 0.5; 0.5 |]); ((c, k), [| 0.5; 0.5 |]) ]
      ~tables ~power
      ~events:[ Sim.Set_demand (0.0, demand); Sim.Fail_link (5.7, eh) ]
      ~duration:7.0 ()
  in
  let dg = link ex.Topo.Example.d ex.Topo.Example.g in
  let fj = link ex.Topo.Example.f ex.Topo.Example.j in
  Format.printf "%-8s %-10s %-10s %-10s  (Mbit/s)@." "time" "middle" "upper" "lower";
  Array.iter
    (fun sm ->
      if sm.Sim.time >= 4.0 && sm.Sim.time <= 6.6 then
        Format.printf "%-8.2f %-10.2f %-10.2f %-10.2f@." sm.Sim.time
          (sm.Sim.link_rates.(eh) /. 1e6)
          (sm.Sim.link_rates.(dg) /. 1e6)
          (sm.Sim.link_rates.(fj) /. 1e6))
    r.Sim.samples;
  Format.printf
    "@.t=5 s: TE starts, shifts everything to the middle path (upper/lower sleep).@.\
     t=5.7 s: middle link fails; traffic is back on upper+lower after the 100 ms@.\
     detection delay plus the 10 ms wake-up.@."
