(* Datacenter scenario (the setting of the paper's Figure 4): a k=4 fat-tree
   under sine-wave demand, comparing ECMP (everything powered) against
   REsPoNse with localised (near) and non-localised (far) traffic.

     dune exec examples/datacenter.exe *)

module Sim = Netsim.Sim

let simulate ft power locality =
  let g = ft.Topo.Fattree.graph in
  let pairs = Traffic.Sine.fattree_pairs ft locality in
  let tables = Response.Framework.precompute g power ~pairs in
  let module U = Eutil.Units in
  let period = U.seconds 20.0 in
  let events =
    List.init 21 (fun i ->
        let t = float_of_int i in
        Sim.Set_demand (t, Traffic.Sine.fattree ft locality ~peak:(U.mbps 400.0) ~period t))
  in
  let config =
    {
      Sim.default_config with
      Sim.te =
        {
          Response.Te.default_config with
          util_threshold = U.ratio 0.8;
          shift_fraction = U.ratio 0.5;
        };
      sample_interval = 0.5;
      idle_timeout = 1.0;
      wake_time = 0.1;
    }
  in
  Sim.run ~config ~tables ~power ~events ~duration:20.0 ()

let () =
  let ft = Topo.Fattree.make 4 in
  let power = Power.Model.commodity_dc ft.Topo.Fattree.graph in
  Format.printf "k=4 fat-tree: %a@." Topo.Graph.pp ft.Topo.Fattree.graph;
  let near = simulate ft power Traffic.Sine.Near in
  let far = simulate ft power Traffic.Sine.Far in
  Format.printf "@.%-8s %-10s %-18s %-18s@." "time" "ecmp [%]" "REsPoNse near [%]" "REsPoNse far [%]";
  Array.iteri
    (fun i sm ->
      if i mod 4 = 0 then
        Format.printf "%-8.1f %-10.0f %-18.1f %-18.1f@." sm.Sim.time 100.0 sm.Sim.power_percent
          far.Sim.samples.(i).Sim.power_percent)
    near.Sim.samples;
  Format.printf "@.Mean power: ECMP 100%%, REsPoNse(near) %.1f%%, REsPoNse(far) %.1f%%@."
    near.Sim.mean_power_percent far.Sim.mean_power_percent;
  Format.printf "Delivered demand: near %.1f%%, far %.1f%%@."
    (100.0 *. near.Sim.delivered_fraction)
    (100.0 *. far.Sim.delivered_fraction)
