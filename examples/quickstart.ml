(* Quickstart: precompute REsPoNse energy-critical paths for a GEANT-like
   ISP topology and see how network power scales with offered load.

     dune exec examples/quickstart.exe *)

module U = Eutil.Units

let () =
  (* 1. A topology and a power model. *)
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  Format.printf "Topology: %a@." Topo.Graph.pp g;
  Format.printf "Full-power consumption: %.1f kW@."
    (U.to_float (Power.Model.full power g) /. 1e3);

  (* 2. Precompute the three routing tables (always-on, on-demand, failover)
     for a random subset of origin-destination pairs, exactly once. With
     traffic estimates available (as for GEANT), the always-on paths are
     computed from the off-peak matrix and the on-demand paths from the peak
     matrix; without them, use the demand-oblivious default config. *)
  let pairs = Traffic.Gravity.random_pairs g ~seed:7 ~fraction:0.5 in
  let off_peak = Traffic.Gravity.make g ~pairs ~total:(U.gbps 8.0) () in
  let peak = Traffic.Gravity.make g ~pairs ~total:(U.gbps 40.0) () in
  let config =
    {
      Response.Framework.default with
      always_on_mode = Response.Always_on.Off_peak off_peak;
      on_demand = Response.Framework.Solver peak;
    }
  in
  let tables = Response.Framework.precompute ~config g power ~pairs in
  Format.printf "Installed %d pairs, up to %d paths each.@."
    (List.length (Response.Tables.pairs tables))
    (Response.Tables.n_tables tables);

  (* 3. Inspect one pair's energy-critical paths. *)
  let o, d = List.nth pairs 0 in
  (match Response.Tables.find tables o d with
  | Some e ->
      Format.printf "@.Energy-critical paths %s -> %s:@." (Topo.Graph.name g o)
        (Topo.Graph.name g d);
      Format.printf "  always-on: %a@." (Topo.Path.pp g) e.Response.Tables.always_on;
      List.iter (Format.printf "  on-demand: %a@." (Topo.Path.pp g)) e.Response.Tables.on_demand;
      Option.iter (Format.printf "  failover:  %a@." (Topo.Path.pp g)) e.Response.Tables.failover
  | None -> ());

  (* 4. Energy proportionality: evaluate the steady state REsPoNseTE reaches
     for increasing gravity-model demand. *)
  Format.printf "@.%-14s %-12s %-10s %s@." "load" "power [%]" "levels" "max util";
  List.iter
    (fun gbits ->
      let tm = Traffic.Gravity.make g ~pairs ~total:(U.gbps gbits) () in
      let e = Response.Framework.evaluate tables power tm in
      Format.printf "%-14s %-12.1f %-10d %.2f@."
        (Printf.sprintf "%.0f Gbit/s" gbits)
        e.Response.Framework.power_percent e.Response.Framework.levels_activated
        e.Response.Framework.max_utilization)
    [ 1.0; 5.0; 10.0; 20.0; 40.0; 80.0 ];
  Format.printf
    "@.The network sleeps what it does not use: power follows load without@.\
     recomputing any routing table.@."
