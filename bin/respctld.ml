(* respctld — the REsPoNse control-plane daemon.

   respctld geant                          # serve on 4710 (metrics on 4711)
   respctld geant --port 0 --http-port 0  # ephemeral ports, printed at startup
   respctld geant --smoke 200             # in-process smoke session, then exit
*)

open Cmdliner

let stop_flag = Atomic.make false

let install_signal_handlers () =
  let handler _ = Atomic.set stop_flag true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)

(* Daemon mode: sit on the flag until SIGINT/SIGTERM. *)
let wait_for_stop () =
  let rec loop () =
    if Atomic.get stop_flag then ()
    else begin
      (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  0

(* Smoke mode (the @serve alias): a fixed-seed end-to-end session against
   our own loopback listeners — closed-loop queries with a mid-run
   reload, a /metrics + /healthz scrape, and a JSON-export validation —
   then a graceful shutdown. Exit 0 only if nothing failed or dropped. *)
let run_smoke server pairs n =
  let cfg =
    {
      Serve.Load.default with
      Serve.Load.port = Serve.Server.port server;
      conns = 2;
      requests = n;
      duration_s = 30.0;
      pairs;
      reload_at = Some 0.0;
    }
  in
  match Serve.Load.run cfg with
  | Error e ->
      Format.eprintf "smoke: %s@." e;
      1
  | Ok r ->
      Format.printf "smoke: %a@." Serve.Load.pp r;
      let http_port = Serve.Server.http_port server in
      let scrape = Serve.Client.http_get ~port:http_port ~path:"/metrics" () in
      let health = Serve.Client.http_get ~port:http_port ~path:"/healthz" () in
      let json_ok = Obs.Export.validate_json (Obs.Export.to_json (Obs.Registry.snapshot Obs.Registry.default)) in
      let load_json_ok = Obs.Export.validate_json (Serve.Load.to_json r) in
      let problems =
        List.concat
          [
            (if r.Serve.Load.completed <> n then
               [ Printf.sprintf "completed %d of %d queries" r.Serve.Load.completed n ]
             else []);
            (if r.Serve.Load.failed > 0 then [ Printf.sprintf "%d failed" r.Serve.Load.failed ]
             else []);
            (if r.Serve.Load.wrong > 0 then
               [ Printf.sprintf "%d wrong replies" r.Serve.Load.wrong ]
             else []);
            (if r.Serve.Load.reloads <> 1 then [ "mid-run reload was not acknowledged" ] else []);
            (match scrape with
            | Ok body when String.length body > 0 -> []
            | Ok _ -> [ "/metrics returned an empty page" ]
            | Error e -> [ "/metrics scrape failed: " ^ e ]);
            (match health with Ok _ -> [] | Error e -> [ "/healthz failed: " ^ e ]);
            (match json_ok with Ok () -> [] | Error e -> [ "metrics JSON invalid: " ^ e ]);
            (match load_json_ok with Ok () -> [] | Error e -> [ "load JSON invalid: " ^ e ]);
          ]
      in
      List.iter (fun p -> Format.eprintf "smoke: %s@." p) problems;
      if problems = [] then begin
        Format.printf "smoke: ok (%d queries, 1 reload, scrape + JSON export valid)@." n;
        0
      end
      else 1

let serve name port http_port workers seed fraction beta load_gbps jobs smoke =
  Cli_topo.with_topology name (fun t g ->
      Obs.set_enabled true;
      install_signal_handlers ();
      let power = Cli_topo.power_of t g in
      let pairs = Cli_topo.pairs_of g ~seed ~fraction in
      let config = { Response.Framework.default with latency_beta = beta } in
      let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps load_gbps) () in
      match Serve.State.create ~config ~jobs g power ~pairs ~demand with
      | exception Invalid_argument msg ->
          Format.eprintf "respctld: initial tables: %s@." msg;
          1
      | state ->
          let sconfig = { Serve.Server.default_config with port; http_port; workers } in
          (match Serve.Server.start ~config:sconfig state with
          | exception Unix.Unix_error (err, _, _) ->
              Serve.State.stop state;
              Format.eprintf "respctld: cannot listen: %s@." (Unix.error_message err);
              1
          | server ->
              Format.printf
                "respctld: serving %s on 127.0.0.1:%d (metrics on :%d), %d worker(s), %d pairs@."
                t.Cli_topo.tname (Serve.Server.port server)
                (Serve.Server.http_port server)
                workers (List.length pairs);
              let code =
                match smoke with
                | Some n -> run_smoke server (Array.of_list pairs) n
                | None -> wait_for_stop ()
              in
              Serve.Server.stop server;
              Serve.State.stop state;
              (* Final metrics dump on the way out: the scrape endpoint is
                 gone, so the numbers land in the log instead. *)
              (match smoke with
              | None ->
                  Format.printf "respctld: served %d request(s); final metrics:@."
                    (Serve.Server.served server);
                  print_string (Obs.Export.prometheus_page ())
              | Some _ -> ());
              code))

let port_arg =
  Arg.(
    value & opt int 4710 & info [ "port" ] ~docv:"PORT" ~doc:"Binary protocol port (0 = ephemeral).")

let http_port_arg =
  Arg.(
    value
    & opt int 4711
    & info [ "http-port" ] ~docv:"PORT" ~doc:"Metrics/health scrape port (0 = ephemeral).")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Connection worker domains.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for sampled pairs.")

let fraction_arg =
  Arg.(
    value
    & opt float 0.7
    & info [ "fraction" ] ~docv:"F" ~doc:"Fraction of traffic nodes used as origins/destinations.")

let beta_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "beta" ] ~docv:"BETA" ~doc:"REsPoNse-lat latency bound (e.g. 0.25).")

let load_arg =
  Arg.(
    value
    & opt float 5.0
    & info [ "load-gbps" ] ~docv:"GBPS" ~doc:"Initial gravity-model offered load in Gbit/s.")

let jobs_arg =
  Arg.(
    value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc:"Fan each table rebuild out over $(docv) domains.")

let smoke_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "smoke" ] ~docv:"N"
        ~doc:
          "Self-test mode: run $(docv) loopback queries plus a mid-run reload and a metrics \
           scrape in-process, then shut down and exit (0 = everything answered).")

let topology_arg =
  let doc = "Topology name (geant, abovenet, genuity, pop-access, fattree4, fattree8)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TOPOLOGY" ~doc)

let () =
  let doc = "REsPoNse control-plane daemon: precomputed energy-critical paths behind a wire protocol" in
  let info = Cmd.info "respctld" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const serve $ topology_arg $ port_arg $ http_port_arg $ workers_arg $ seed_arg
            $ fraction_arg $ beta_arg $ load_arg $ jobs_arg $ smoke_arg)))
