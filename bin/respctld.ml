(* respctld — the REsPoNse control-plane daemon.

   respctld geant                          # serve on 4710 (metrics on 4711)
   respctld geant --port 0 --http-port 0  # ephemeral ports, printed at startup
   respctld geant --smoke 200             # in-process smoke session, then exit
*)

open Cmdliner

let stop_flag = Atomic.make false

let install_signal_handlers () =
  let handler _ = Atomic.set stop_flag true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)

(* Daemon mode: sit on the flag until SIGINT/SIGTERM. *)
let wait_for_stop () =
  let rec loop () =
    if Atomic.get stop_flag then ()
    else begin
      (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  0

(* Smoke mode (the @serve alias): a fixed-seed end-to-end session against
   our own loopback listeners — closed-loop queries with a mid-run
   reload, a /metrics + /healthz scrape, and a JSON-export validation —
   then a graceful shutdown. Exit 0 only if nothing failed or dropped. *)
let run_smoke server pairs n =
  let cfg =
    {
      Serve.Load.default with
      Serve.Load.port = Serve.Server.port server;
      conns = 2;
      requests = n;
      duration_s = 30.0;
      pairs;
      reload_at = Some 0.0;
    }
  in
  match Serve.Load.run cfg with
  | Error e ->
      Format.eprintf "smoke: %s@." e;
      1
  | Ok r ->
      Format.printf "smoke: %a@." Serve.Load.pp r;
      let http_port = Serve.Server.http_port server in
      let scrape = Serve.Client.http_get ~port:http_port ~path:"/metrics" () in
      let health = Serve.Client.http_get ~port:http_port ~path:"/healthz" () in
      let json_ok = Obs.Export.validate_json (Obs.Export.to_json (Obs.Registry.snapshot Obs.Registry.default)) in
      let load_json_ok = Obs.Export.validate_json (Serve.Load.to_json r) in
      let problems =
        List.concat
          [
            (if r.Serve.Load.completed <> n then
               [ Printf.sprintf "completed %d of %d queries" r.Serve.Load.completed n ]
             else []);
            (if r.Serve.Load.failed > 0 then [ Printf.sprintf "%d failed" r.Serve.Load.failed ]
             else []);
            (if r.Serve.Load.wrong > 0 then
               [ Printf.sprintf "%d wrong replies" r.Serve.Load.wrong ]
             else []);
            (if r.Serve.Load.reloads <> 1 then [ "mid-run reload was not acknowledged" ] else []);
            (match scrape with
            | Ok body when String.length body > 0 -> []
            | Ok _ -> [ "/metrics returned an empty page" ]
            | Error e -> [ "/metrics scrape failed: " ^ e ]);
            (match health with Ok _ -> [] | Error e -> [ "/healthz failed: " ^ e ]);
            (match json_ok with Ok () -> [] | Error e -> [ "metrics JSON invalid: " ^ e ]);
            (match load_json_ok with Ok () -> [] | Error e -> [ "load JSON invalid: " ^ e ]);
          ]
      in
      List.iter (fun p -> Format.eprintf "smoke: %s@." p) problems;
      if problems = [] then begin
        Format.printf "smoke: ok (%d queries, 1 reload, scrape + JSON export valid)@." n;
        0
      end
      else 1

let serve name port http_port workers seed fraction beta load_gbps jobs journal_path
    max_inflight max_conns request_budget read_deadline idle_timeout smoke =
  Cli_topo.with_topology name (fun t g ->
      Obs.set_enabled true;
      install_signal_handlers ();
      let power = Cli_topo.power_of t g in
      let pairs = Cli_topo.pairs_of g ~seed ~fraction in
      let config = { Response.Framework.default with latency_beta = beta } in
      let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps load_gbps) () in
      let journal =
        match journal_path with
        | None -> Ok None
        | Some p -> (
            match Serve.Journal.open_ p with
            | Ok j ->
                Format.printf "respctld: journal %s: replayed %d record(s)%s@." p
                  (List.length (Serve.Journal.entries j))
                  (if Serve.Journal.torn j then " (dropped a torn tail)" else "");
                Ok (Some j)
            | Error e -> Error e)
      in
      match journal with
      | Error e ->
          Format.eprintf "respctld: journal: %s@." e;
          1
      | Ok journal -> (
      match Serve.State.create ~config ~jobs ?journal g power ~pairs ~demand with
      | exception Invalid_argument msg ->
          (match journal with Some j -> Serve.Journal.close j | None -> ());
          Format.eprintf "respctld: initial tables: %s@." msg;
          1
      | state ->
          let guard =
            {
              Serve.Guard.default with
              Serve.Guard.max_inflight;
              max_conns;
              request_budget_s = request_budget;
              read_deadline_s = read_deadline;
              idle_timeout_s = idle_timeout;
            }
          in
          let sconfig = { Serve.Server.default_config with port; http_port; workers; guard } in
          (match Serve.Server.start ~config:sconfig state with
          | exception Unix.Unix_error (err, _, _) ->
              Serve.State.stop state;
              Format.eprintf "respctld: cannot listen: %s@." (Unix.error_message err);
              1
          | exception Invalid_argument msg ->
              Serve.State.stop state;
              Format.eprintf "respctld: guard config: %s@." msg;
              1
          | server ->
              Format.printf
                "respctld: serving %s on 127.0.0.1:%d (metrics on :%d), %d worker(s), %d pairs@."
                t.Cli_topo.tname (Serve.Server.port server)
                (Serve.Server.http_port server)
                workers (List.length pairs);
              let code =
                match smoke with
                | Some n -> run_smoke server (Array.of_list pairs) n
                | None -> wait_for_stop ()
              in
              Serve.Server.stop server;
              Serve.State.stop state;
              (* Final metrics dump on the way out: the scrape endpoint is
                 gone, so the numbers land in the log instead. *)
              (match smoke with
              | None ->
                  Format.printf "respctld: served %d request(s); final metrics:@."
                    (Serve.Server.served server);
                  print_string (Obs.Export.prometheus_page ())
              | Some _ -> ());
              code)))

let port_arg =
  Arg.(
    value & opt int 4710 & info [ "port" ] ~docv:"PORT" ~doc:"Binary protocol port (0 = ephemeral).")

let http_port_arg =
  Arg.(
    value
    & opt int 4711
    & info [ "http-port" ] ~docv:"PORT" ~doc:"Metrics/health scrape port (0 = ephemeral).")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Connection worker domains.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for sampled pairs.")

let fraction_arg =
  Arg.(
    value
    & opt float 0.7
    & info [ "fraction" ] ~docv:"F" ~doc:"Fraction of traffic nodes used as origins/destinations.")

let beta_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "beta" ] ~docv:"BETA" ~doc:"REsPoNse-lat latency bound (e.g. 0.25).")

let load_arg =
  Arg.(
    value
    & opt float 5.0
    & info [ "load-gbps" ] ~docv:"GBPS" ~doc:"Initial gravity-model offered load in Gbit/s.")

let jobs_arg =
  Arg.(
    value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc:"Fan each table rebuild out over $(docv) domains.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Crash-safe demand journal: replay $(docv) at startup (the pre-crash staged state \
           boots into the first snapshot), fsync every accepted update before acknowledging \
           it, and checkpoint on each snapshot swap.")

let max_inflight_arg =
  Arg.(
    value
    & opt int Serve.Guard.default.Serve.Guard.max_inflight
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"Shed requests ($(b,overloaded)) past this many executing at once (0 = unlimited).")

let max_conns_arg =
  Arg.(
    value
    & opt int Serve.Guard.default.Serve.Guard.max_conns
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Refuse binary connections past this many open (0 = unlimited).")

let request_budget_arg =
  Arg.(
    value
    & opt float Serve.Guard.default.Serve.Guard.request_budget_s
    & info [ "request-budget" ] ~docv:"S"
        ~doc:
          "Per-request deadline from first frame byte to execution; expired requests get a \
           $(b,deadline) error (0 = unlimited).")

let read_deadline_arg =
  Arg.(
    value
    & opt float Serve.Guard.default.Serve.Guard.read_deadline_s
    & info [ "read-deadline" ] ~docv:"S"
        ~doc:"Reap connections holding a partial frame this long (slow-loris guard; 0 = off).")

let idle_timeout_arg =
  Arg.(
    value
    & opt float Serve.Guard.default.Serve.Guard.idle_timeout_s
    & info [ "idle-timeout" ] ~docv:"S"
        ~doc:"Reap connections with no traffic for this long (0 = off).")

let smoke_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "smoke" ] ~docv:"N"
        ~doc:
          "Self-test mode: run $(docv) loopback queries plus a mid-run reload and a metrics \
           scrape in-process, then shut down and exit (0 = everything answered).")

let topology_arg =
  let doc = "Topology name (geant, abovenet, genuity, pop-access, fattree4, fattree8)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TOPOLOGY" ~doc)

let () =
  let doc = "REsPoNse control-plane daemon: precomputed energy-critical paths behind a wire protocol" in
  let info = Cmd.info "respctld" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const serve $ topology_arg $ port_arg $ http_port_arg $ workers_arg $ seed_arg
            $ fraction_arg $ beta_arg $ load_arg $ jobs_arg $ journal_arg $ max_inflight_arg
            $ max_conns_arg $ request_budget_arg $ read_deadline_arg $ idle_timeout_arg
            $ smoke_arg)))
