(* Topology selection shared by the respctl and respctld front ends:
   one name -> (graph, power model) table so both binaries accept the
   same TOPOLOGY argument. *)

type named_topology = {
  tname : string;
  graph : Topo.Graph.t lazy_t;
  model : [ `Cisco | `Commodity ];
}

let topologies =
  [
    { tname = "geant"; graph = lazy (Topo.Geant.make ()); model = `Cisco };
    {
      tname = "abovenet";
      graph = lazy (Topo.Rocketfuel.make Topo.Rocketfuel.abovenet);
      model = `Cisco;
    };
    {
      tname = "genuity";
      graph = lazy (Topo.Rocketfuel.make Topo.Rocketfuel.genuity);
      model = `Cisco;
    };
    { tname = "pop-access"; graph = lazy (Topo.Pop_access.make ()); model = `Cisco };
    {
      tname = "fattree4";
      graph = lazy (Topo.Fattree.make 4).Topo.Fattree.graph;
      model = `Commodity;
    };
    {
      tname = "fattree8";
      graph = lazy (Topo.Fattree.make 8).Topo.Fattree.graph;
      model = `Commodity;
    };
  ]

let find_topology name =
  match List.find_opt (fun t -> t.tname = name) topologies with
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "unknown topology %S (available: %s)" name
           (String.concat ", " (List.map (fun t -> t.tname) topologies)))

let power_of t g =
  match t.model with
  | `Cisco -> Power.Model.cisco12000 g
  | `Commodity -> Power.Model.commodity_dc g

let pairs_of g ~seed ~fraction = Traffic.Gravity.random_node_pairs g ~seed ~fraction

let with_topology name f =
  match find_topology name with
  | Error e ->
      prerr_endline e;
      1
  | Ok t -> f t (Lazy.force t.graph)
