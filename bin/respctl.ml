(* respctl — command-line front end to the REsPoNse library.

   respctl topo geant
   respctl tables geant --beta 0.25
   respctl power geant --load 10
   respctl replay geant --days 3
*)

open Cmdliner

open Cli_topo

let topology_arg =
  let doc = "Topology name (geant, abovenet, genuity, pop-access, fattree4, fattree8)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TOPOLOGY" ~doc)

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for sampled pairs.")

let fraction_arg =
  Arg.(
    value
    & opt float 0.7
    & info [ "fraction" ] ~docv:"F" ~doc:"Fraction of traffic nodes used as origins/destinations.")

let beta_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "beta" ] ~docv:"BETA" ~doc:"REsPoNse-lat latency bound (e.g. 0.25).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Fan certified parallel loops out over $(docv) domains (Eutil.Pool). Output is \
           byte-identical for any $(docv).")

(* ------------------------- observability dump ------------------------ *)

let metrics_enum = [ ("text", `Text); ("json", `Json); ("prom", `Prom) ]

let metrics_opt_arg =
  Arg.(
    value
    & opt (some (enum metrics_enum)) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:"Enable observability for the run and dump the collected metrics (text, json or prom).")

let render_metrics fmt =
  match fmt with
  | `Text -> Obs.Export.to_text (Obs.Registry.snapshot Obs.Registry.default)
  | `Json -> Obs.Export.to_json (Obs.Registry.snapshot Obs.Registry.default)
  (* Shared with respctld's scrape endpoint so the two outputs can never
     drift (pinned by a test). *)
  | `Prom -> Obs.Export.prometheus_page ()

let obs_enable_for = function Some _ -> Obs.set_enabled true | None -> ()

let obs_dump_for = function Some fmt -> print_string (render_metrics fmt) | None -> ()

(* ------------------------------- topo ------------------------------- *)

let topo_cmd =
  let run name =
    with_topology name (fun t g ->
        let power = power_of t g in
        Format.printf "%s: %a@." t.tname Topo.Graph.pp g;
        Format.printf "full power: %.2f kW (%s)@."
          (Eutil.Units.to_float (Power.Model.full power g) /. 1e3)
          power.Power.Model.description;
        let by_role = Hashtbl.create 8 in
        Topo.Graph.fold_nodes g ~init:() ~f:(fun () n ->
            let r = Topo.Graph.role_to_string (Topo.Graph.role g n) in
            Hashtbl.replace by_role r (1 + Option.value (Hashtbl.find_opt by_role r) ~default:0));
        Hashtbl.fold (fun r c acc -> (r, c) :: acc) by_role []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (r, c) -> Format.printf "  %-14s %d@." r c);
        0)
  in
  let doc = "Describe a topology and its power envelope." in
  Cmd.v (Cmd.info "topo" ~doc) Term.(const run $ topology_arg)

(* ------------------------------ tables ------------------------------ *)

let tables_cmd =
  let run name seed fraction beta jobs =
    with_topology name (fun t g ->
        let power = power_of t g in
        let pairs = pairs_of g ~seed ~fraction in
        let config = { Response.Framework.default with latency_beta = beta } in
        let tables = Response.Framework.precompute_cached ~config ~jobs g power ~pairs in
        Format.printf "%a@." Response.Tables.pp tables;
        let ao = Response.Tables.always_on_state tables in
        Format.printf "always-on footprint: %a (%.1f%% of full power)@." (Topo.State.pp g) ao
          (Power.Model.percent_of_full power g ao);
        let vulnerable = Response.Failover.vulnerable_pairs g tables in
        Format.printf "pairs vulnerable to a single link failure: %d of %d@."
          (List.length vulnerable)
          (List.length (Response.Tables.pairs tables));
        (match Response.Tables.entries tables with
        | e :: _ ->
            Format.printf "@.example entry %s -> %s:@." (Topo.Graph.name g e.Response.Tables.origin)
              (Topo.Graph.name g e.Response.Tables.dest);
            Array.iteri
              (fun i p -> Format.printf "  path %d: %a@." i (Topo.Path.pp g) p)
              (Response.Tables.paths e)
        | [] -> ());
        0)
  in
  let doc = "Precompute the always-on / on-demand / failover tables." in
  Cmd.v (Cmd.info "tables" ~doc)
    Term.(const run $ topology_arg $ seed_arg $ fraction_arg $ beta_arg $ jobs_arg)

(* ------------------------------- power ------------------------------ *)

let power_cmd =
  let load_arg =
    Arg.(
      value & opt float 5.0 & info [ "load" ] ~docv:"GBPS" ~doc:"Total offered load in Gbit/s.")
  in
  let run name seed fraction load metrics =
    with_topology name (fun t g ->
        obs_enable_for metrics;
        let power = power_of t g in
        let pairs = pairs_of g ~seed ~fraction in
        let tables = Response.Framework.precompute_cached g power ~pairs in
        let tm = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps load) () in
        let e = Response.Framework.evaluate tables power tm in
        Format.printf "offered load:     %.2f Gbit/s@." load;
        Format.printf "network power:    %.1f%% of full (%.2f kW)@."
          e.Response.Framework.power_percent
          (e.Response.Framework.power_watts /. 1e3);
        Format.printf "max utilisation:  %.2f@." e.Response.Framework.max_utilization;
        Format.printf "on-demand levels: %d@." e.Response.Framework.levels_activated;
        Format.printf "congested pairs:  %d@." (List.length e.Response.Framework.congested);
        (match Optim.Minimal.power_down g power tm with
        | Some opt ->
            Format.printf "optimal subset:   %.1f%% of full power@." opt.Optim.Minimal.power_percent
        | None -> Format.printf "optimal subset:   demand infeasible@.");
        obs_dump_for metrics;
        0)
  in
  let doc = "Evaluate the steady-state power for a gravity demand." in
  Cmd.v (Cmd.info "power" ~doc)
    Term.(const run $ topology_arg $ seed_arg $ fraction_arg $ load_arg $ metrics_opt_arg)

(* ------------------------------ replay ------------------------------ *)

let replay_cmd =
  let days_arg =
    Arg.(value & opt int 3 & info [ "days" ] ~docv:"DAYS" ~doc:"Length of the synthetic trace.")
  in
  let run name seed fraction days metrics =
    with_topology name (fun t g ->
        obs_enable_for metrics;
        let power = power_of t g in
        let pairs = pairs_of g ~seed ~fraction in
        let trace = Traffic.Synth.geant_like g ~days ~pairs () in
        let r = Response.Replay.run g power trace in
        Format.printf "replayed intervals: %d, configuration changes: %d@."
          (Array.length r.Response.Replay.intervals)
          r.Response.Replay.recomputations;
        Format.printf "mean optimal power: %.1f%%@." (Response.Replay.mean_power_percent r);
        let dom = Response.Replay.config_dominance r in
        Format.printf "distinct configurations: %d (dominant %.0f%%)@." (List.length dom)
          (100.0 *. match dom with (_, f) :: _ -> f | [] -> 0.0);
        Format.printf "@.energy-critical path coverage:@.";
        List.iter
          (fun (x, c) -> Format.printf "  top-%d paths: %.1f%%@." x c)
          (Response.Critical_paths.coverage_curve r.Response.Replay.ranking ~max:5);
        obs_dump_for metrics;
        0)
  in
  let doc = "Replay a synthetic demand trace with per-interval recomputation." in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ topology_arg $ seed_arg $ fraction_arg $ days_arg $ metrics_opt_arg)


(* ------------------------------- lint ------------------------------- *)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let report_findings ~json findings =
  if json then print_string (Check.Finding.to_json findings)
  else List.iter (fun f -> Format.printf "%a@." Check.Finding.pp f) findings

let lint_cmd =
  let dirs_arg =
    let doc = "Files or directories to lint (default: lib bin bench test)." in
    Arg.(value & pos_all string [ "lib"; "bin"; "bench"; "test" ] & info [] ~docv:"PATH" ~doc)
  in
  let rules_arg =
    Arg.(value & flag & info [ "rules" ] ~doc:"List the lint rules and exit.")
  in
  let run dirs json list_rules =
    if list_rules then begin
      List.iter (fun (id, doc) -> Format.printf "%-14s %s@." id doc) Check.Srclint.rules;
      0
    end
    else begin
      match List.filter (fun p -> not (Sys.file_exists p)) dirs with
      | p :: _ ->
          (* A typo'd path must not report "clean" to a CI caller. *)
          Format.eprintf "lint: no such path %s@." p;
          2
      | [] -> (
          let findings = Check.Srclint.lint_paths dirs in
          report_findings ~json findings;
          match findings with
          | [] ->
              if not json then Format.printf "lint: clean@.";
              0
          | fs ->
              if not json then Format.printf "lint: %d finding(s)@." (List.length fs);
              1)
    end
  in
  let doc = "Lint the OCaml sources for banned patterns (Check.Srclint)." in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run $ dirs_arg $ json_arg $ rules_arg)

(* -------------------------------- doc ------------------------------- *)

(* The container carries no odoc, so `dune build @doc` cannot render the
   API documentation; this stand-in validates the structure odoc would
   reject — most importantly the @raise contracts the effect analysis
   audits (DESIGN.md Â§10). *)
let doc_cmd =
  let dirs_arg =
    let doc = "Files or directories whose doc comments to validate (default: lib bin)." in
    Arg.(value & pos_all string [ "lib"; "bin" ] & info [] ~docv:"PATH" ~doc)
  in
  let rules_arg = Arg.(value & flag & info [ "rules" ] ~doc:"List the doc rules and exit.") in
  let run dirs json list_rules =
    if list_rules then begin
      List.iter (fun (id, doc) -> Format.printf "%-18s %s@." id doc) Check.Doc.rules;
      0
    end
    else begin
      match List.filter (fun p -> not (Sys.file_exists p)) dirs with
      | p :: _ ->
          Format.eprintf "doc: no such path %s@." p;
          2
      | [] -> (
          let findings = Check.Doc.check_paths dirs in
          report_findings ~json findings;
          match findings with
          | [] ->
              if not json then Format.printf "doc: clean@.";
              0
          | fs ->
              if not json then Format.printf "doc: %d finding(s)@." (List.length fs);
              1)
    end
  in
  let doc = "Validate doc-comment structure (@raise tags) without odoc (Check.Doc)." in
  Cmd.v (Cmd.info "doc" ~doc) Term.(const run $ dirs_arg $ json_arg $ rules_arg)

(* ------------------------------ analyze ----------------------------- *)

let analyze_cmd =
  let dirs_arg =
    let doc =
      "Files or directories to analyze (default: lib bin — the shipped tree; tests and benches \
       legitimately use literal expectations)."
    in
    Arg.(value & pos_all string [ "lib"; "bin" ] & info [] ~docv:"PATH" ~doc)
  in
  let entries_arg =
    let doc =
      "Additional entry-point trees (executables/tests): their definitions seed reachability for \
       dead-function but are not themselves analyzed. Repeatable."
    in
    Arg.(value & opt_all string [] & info [ "entries" ] ~docv:"PATH" ~doc)
  in
  let budget_arg =
    let doc =
      "Warn-finding budget file (JSON object mapping rule id to allowed count); exceeding a \
       budget is an error. Rules absent from the file allow zero findings."
    in
    Arg.(value & opt (some string) None & info [ "budget" ] ~docv:"FILE" ~doc)
  in
  let rules_arg = Arg.(value & flag & info [ "rules" ] ~doc:"List the analysis rules and exit.") in
  let list_rules_arg =
    Arg.(
      value
      & flag
      & info [ "list-rules" ]
          ~doc:
            "List every analyze rule (lint/flow/effect/share/cost) with its pass, severity and \
             ratchet source, then exit.")
  in
  let parallel_arg =
    let doc =
      "Parallel-region manifest (JSON object mapping region name to an array of entrypoint \
       names); enables the shared-write-reachable and prng-shared domain-safety rules \
       (Check.Share) for the declared entrypoints."
    in
    Arg.(value & opt (some string) None & info [ "parallel" ] ~docv:"FILE" ~doc)
  in
  let cost_arg =
    let doc =
      "Cost manifest (JSON object with \"hot\" and \"memo\" entrypoint arrays); enables the \
       loop-cost and allocation rules (Check.Cost): quadratic-list-op, rebuild-in-loop, \
       alloc-in-hot-loop and memo-unsafe."
    in
    Arg.(value & opt (some string) None & info [ "cost" ] ~docv:"FILE" ~doc)
  in
  let locks_arg =
    let doc =
      "Lock-discipline manifest (JSON object with \"order\", \"io_locks\", \"hot\" and \
       \"surface\" arrays); enables the mutex analysis (Check.Lock): lock-order-cycle, \
       blocking-under-lock, lock-held-io, atomic-rmw and useless-lock."
    in
    Arg.(value & opt (some string) None & info [ "locks" ] ~docv:"FILE" ~doc)
  in
  let sarif_arg =
    let doc =
      "Also write every pass's findings to $(docv) as SARIF 2.1.0 (one run, rule table from \
       --list-rules), for CI and editor ingestion. Exit codes are unchanged."
    in
    Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)
  in
  let rule_severity rule =
    match rule with
    | "undocumented-raise" | "dead-function" | "unguarded-global" | "alloc-in-hot-loop"
    | "blocking-under-lock" | "useless-lock" ->
        "warn"
    | _ -> "error"
  in
  let rule_ratchet pass rule =
    match rule with
    | "undocumented-raise" | "dead-function" | "unguarded-global" | "alloc-in-hot-loop"
    | "blocking-under-lock" | "useless-lock" ->
        "check/budget.json"
    | "shared-write-reachable" | "prng-shared" | "parallel-manifest" -> "check/parallel.json"
    | "quadratic-list-op" | "rebuild-in-loop" | "memo-unsafe" | "cost-manifest" ->
        "check/cost.json"
    | "lock-order-cycle" | "lock-held-io" | "atomic-rmw" | "lock-manifest" -> "check/locks.json"
    | "budget-exceeded" -> "check/budget.json"
    | _ -> if pass = "lint" then "lint: allow pragma" else "-"
  in
  let run dirs entries budget parallel cost locks sarif json list_rules full_list =
    if full_list then begin
      Format.printf "%-6s %-24s %-6s %-20s %s@." "PASS" "RULE" "SEV" "RATCHET" "DESCRIPTION";
      List.iter
        (fun (pass, rules) ->
          List.iter
            (fun (id, doc) ->
              Format.printf "%-6s %-24s %-6s %-20s %s@." pass id (rule_severity id)
                (rule_ratchet pass id) doc)
            rules)
        [
          ("lint", Check.Srclint.rules);
          ("flow", Check.Flow.rules);
          ("effect", Check.Effect.rules);
          ("share", Check.Share.rules);
          ("cost", Check.Cost.rules);
          ("lock", Check.Lock.rules);
        ];
      0
    end
    else if list_rules then begin
      List.iter
        (fun (id, doc) -> Format.printf "%-22s %s@." id doc)
        (Check.Flow.rules @ Check.Effect.rules @ Check.Share.rules @ Check.Cost.rules
       @ Check.Lock.rules);
      0
    end
    else begin
      let budget_paths = match budget with Some b -> [ b ] | None -> [] in
      let parallel_paths = match parallel with Some p -> [ p ] | None -> [] in
      let cost_paths = match cost with Some c -> [ c ] | None -> [] in
      let locks_paths = match locks with Some l -> [ l ] | None -> [] in
      match
        List.filter
          (fun p -> not (Sys.file_exists p))
          (dirs @ entries @ budget_paths @ parallel_paths @ cost_paths @ locks_paths)
      with
      | p :: _ ->
          Format.eprintf "analyze: no such path %s@." p;
          2
      | [] -> (
          let allowed =
            match budget with
            | None -> Ok None
            | Some file -> (
                try Ok (Some (Check.Effect.parse_budget (Check.Srclint.read_file file)))
                with Invalid_argument msg -> Error msg)
          in
          let manifest =
            match parallel with
            | None -> Ok []
            | Some file -> (
                try Ok (Check.Share.parse_manifest (Check.Srclint.read_file file))
                with Invalid_argument msg -> Error msg)
          in
          let cost_manifest =
            match cost with
            | None -> Ok None
            | Some file -> (
                try Ok (Some (Check.Share.parse_manifest (Check.Srclint.read_file file)))
                with Invalid_argument msg -> Error msg)
          in
          let locks_manifest =
            match locks with
            | None -> Ok None
            | Some file -> (
                try Ok (Some (Check.Share.parse_manifest (Check.Srclint.read_file file)))
                with Invalid_argument msg -> Error msg)
          in
          match (allowed, manifest, cost_manifest, locks_manifest) with
          | Error msg, _, _, _ | _, Error msg, _, _ | _, _, Error msg, _ | _, _, _, Error msg ->
              Format.eprintf "analyze: %s@." msg;
              2
          | Ok allowed, Ok manifest, Ok cost_manifest, Ok locks_manifest -> (
              let flow = Check.Flow.analyze_paths dirs in
              let graph = Check.Callgraph.build ~entries dirs in
              let effect = Check.Effect.analyze graph in
              let share = Check.Share.analyze ~manifest graph in
              let cost =
                match cost_manifest with
                | None -> []
                | Some m -> Check.Cost.analyze ~manifest:m graph
              in
              let lock =
                match locks_manifest with
                | None -> []
                | Some m -> Check.Lock.analyze ~manifest:m graph
              in
              let ratchet =
                match allowed with
                | None -> []
                | Some budget -> Check.Effect.over_budget ~budget (effect @ share @ cost @ lock)
              in
              let findings = flow @ effect @ share @ cost @ lock @ ratchet in
              let sarif_status =
                match sarif with
                | None -> Ok ()
                | Some file -> (
                    let all_rules =
                      Check.Flow.rules @ Check.Effect.rules @ Check.Share.rules @ Check.Cost.rules
                      @ Check.Lock.rules
                      @ [ ("budget-exceeded", "a warn-rule budget from check/budget.json exceeded") ]
                    in
                    let doc = Check.Finding.to_sarif ~rules:all_rules findings in
                    match Obs.Export.validate_json doc with
                    | Error e -> Error (Printf.sprintf "SARIF report failed validation: %s" e)
                    | Ok () -> (
                        try
                          let oc = open_out file in
                          output_string oc doc;
                          close_out oc;
                          Ok ()
                        with Sys_error e -> Error e))
              in
              match sarif_status with
              | Error e ->
                  Format.eprintf "analyze: %s@." e;
                  2
              | Ok () -> (
                  if json then begin
                    let passes =
                      [ ("flow", flow); ("effect", effect); ("share", share) ]
                      @ (match cost_manifest with None -> [] | Some _ -> [ ("cost", cost) ])
                      @ (match locks_manifest with None -> [] | Some _ -> [ ("lock", lock) ])
                      @ [ ("ratchet", ratchet) ]
                    in
                    let doc = Check.Finding.to_json_document passes in
                    match Obs.Export.validate_json doc with
                    | Error e ->
                        Format.eprintf "analyze: JSON report failed validation: %s@." e;
                        2
                    | Ok () ->
                        print_string doc;
                        if Check.Finding.errors findings = [] then 0 else 1
                  end
                  else
                    match findings with
                    | [] ->
                        Format.printf "analyze: clean@.";
                        0
                    | fs ->
                        report_findings ~json:false fs;
                        Format.printf "analyze: %d finding(s), %d error(s)@." (List.length fs)
                          (List.length (Check.Finding.errors fs));
                        if Check.Finding.errors fs = [] then 0 else 1)))
    end
  in
  let doc =
    "Static analysis of the OCaml sources: numeric-safety dataflow (Check.Flow), \
     interprocedural effect inference over the call graph (Check.Callgraph, Check.Effect), the \
     domain-safety shared-mutable-state audit (Check.Share), the loop-cost and allocation \
     analysis (Check.Cost) and the lock-discipline audit (Check.Lock)."
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const run $ dirs_arg $ entries_arg $ budget_arg $ parallel_arg $ cost_arg $ locks_arg
      $ sarif_arg $ json_arg $ rules_arg $ list_rules_arg)

(* ------------------------------- check ------------------------------ *)

let check_cmd =
  let run name seed fraction beta json =
    with_topology name (fun t g ->
        let power = power_of t g in
        let pairs = pairs_of g ~seed ~fraction in
        (* Collect findings ourselves instead of letting precompute raise on
           the first error, so the report is complete. *)
        let saved = Atomic.get Response.Framework.install_checks in
        Atomic.set Response.Framework.install_checks false;
        let tables =
          Fun.protect
            ~finally:(fun () -> Atomic.set Response.Framework.install_checks saved)
            (fun () ->
              let config = { Response.Framework.default with latency_beta = beta } in
              Response.Framework.precompute ~config g power ~pairs)
        in
        let entries =
          List.map
            (fun e ->
              {
                Check.Invariant.origin = e.Response.Tables.origin;
                dest = e.Response.Tables.dest;
                always_on = e.Response.Tables.always_on;
                on_demand = e.Response.Tables.on_demand;
                failover = e.Response.Tables.failover;
              })
            (Response.Tables.entries tables)
        in
        let tm = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 1.0) () in
        let findings =
          Check.Invariant.check_graph g
          @ Check.Invariant.check_power power g
          @ Check.Invariant.check_tables g ~pairs entries
          @ Check.Invariant.check_matrix g tm
        in
        report_findings ~json findings;
        let errors = Check.Finding.errors findings in
        if not json then
          Format.printf "check: %d error(s), %d warning(s) over %d pairs@." (List.length errors)
            (List.length findings - List.length errors)
            (List.length pairs);
        if errors = [] then 0 else 1)
  in
  let doc = "Validate domain invariants (graph, tables, power, traffic) for a topology." in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ topology_arg $ seed_arg $ fraction_arg $ beta_arg $ json_arg)

(* ------------------------------- stats ------------------------------ *)

(* A fixed workload that touches every instrumented layer: precompute and
   evaluate (routing + core + power), a node-bounded exact MILP (lp), and a
   short simulator scenario whose demand swing forces TE shifts, wake
   transitions and idle sleeps (te + netsim). *)
let stats_workload t g ~seed ~fraction =
  let power = power_of t g in
  let pairs = pairs_of g ~seed ~fraction in
  let tables = Response.Framework.precompute_cached g power ~pairs in
  let tm = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
  let _ = Response.Framework.evaluate tables power tm in
  (* The exact formulation is only tractable for small instances (see
     Optim.Formulation), so the LP layer is exercised on the paper's Fig. 3
     example network rather than the selected topology. *)
  let ex = Topo.Example.make () in
  let exg = ex.Topo.Example.graph in
  let milp_flow = Eutil.Units.to_float (Eutil.Units.mbps 4.0) in
  let milp_tm =
    Traffic.Matrix.of_flows (Topo.Graph.node_count exg)
      [
        (ex.Topo.Example.a, ex.Topo.Example.k, milp_flow);
        (ex.Topo.Example.c, ex.Topo.Example.k, milp_flow);
      ]
  in
  let _ = Optim.Formulation.solve ~max_nodes:64 exg (Power.Model.cisco12000 exg) milp_tm in
  (* Scenario built to cross every TE and sleep/wake code path: load the
     network, fail a loaded always-on link (failover shift + wakes of the
     alternates), repair it (it re-enters asleep), go fully idle (idle
     timeouts put links to sleep), then bring the demand back (data-plane
     wakes). *)
  let cap_sum =
    Topo.Graph.fold_links g ~init:0.0 ~f:(fun acc l -> acc +. Topo.Graph.link_capacity g l)
  in
  let high = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.bps (0.3 *. cap_sum)) () in
  let idle = Traffic.Matrix.create (Topo.Graph.node_count g) in
  let victim =
    match Response.Tables.entries tables with
    | e :: _ -> Some (Topo.Path.links g e.Response.Tables.always_on).(0)
    | [] -> None
  in
  let failure =
    match victim with
    | Some l -> [ Netsim.Sim.Fail_link (0.5, l); Netsim.Sim.Repair_link (1.5, l) ]
    | None -> []
  in
  let config =
    {
      Netsim.Sim.default_config with
      Netsim.Sim.idle_timeout = 0.4;
      sample_interval = 0.1;
      te =
        {
          Response.Te.default_config with
          Response.Te.hysteresis = Eutil.Units.seconds 0.2;
          shift_fraction = Eutil.Units.ratio 0.5;
        };
    }
  in
  let r =
    Netsim.Sim.run ~config ~tables ~power
      ~events:
        (failure
        @ [
            Netsim.Sim.Set_demand (0.0, high);
            Netsim.Sim.Set_demand (2.0, idle);
            Netsim.Sim.Set_demand (3.0, high);
          ])
      ~duration:4.0 ()
  in
  (tables, r)

let stats_cmd =
  let fmt_arg =
    Arg.(
      value
      & opt (enum metrics_enum) `Text
      & info [ "metrics" ] ~docv:"FORMAT" ~doc:"Output format: text, json or prom.")
  in
  let validate_arg =
    Arg.(
      value
      & flag
      & info [ "validate" ]
          ~doc:"Also check that the JSON export is well-formed; exit non-zero if not.")
  in
  let spans_arg =
    Arg.(value & flag & info [ "spans" ] ~doc:"Print the span trace tree after the metrics.")
  in
  let run name seed fraction fmt validate spans =
    with_topology name (fun t g ->
        Obs.set_enabled true;
        let _tables, r = stats_workload t g ~seed ~fraction in
        ignore r.Netsim.Sim.mean_power_percent;
        print_string (render_metrics fmt);
        if spans then print_string ("\n" ^ Obs.Span.to_text ());
        if validate then begin
          match Obs.Export.validate_json (render_metrics `Json) with
          | Ok () -> 0
          | Error e ->
              Format.eprintf "stats: JSON export invalid: %s@." e;
              1
        end
        else 0)
  in
  let doc =
    "Run an instrumented workload (precompute, evaluate, bounded exact MILP, simulator \
     scenario) and dump the collected metrics."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ topology_arg $ seed_arg $ fraction_arg $ fmt_arg $ validate_arg $ spans_arg)

(* ------------------------------- chaos ------------------------------ *)

let chaos_cmd =
  let trials_arg =
    Arg.(value & opt int 3 & info [ "trials" ] ~docv:"K" ~doc:"Independent trials (seed, seed+1, ...).")
  in
  let mtbf_arg =
    Arg.(
      value
      & opt float 3.0
      & info [ "mtbf" ] ~docv:"S" ~doc:"Per-link mean time between failures, seconds.")
  in
  let mttr_arg =
    Arg.(
      value & opt float 0.5 & info [ "mttr" ] ~docv:"S" ~doc:"Per-link mean time to repair, seconds.")
  in
  let node_mtbf_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "node-mtbf" ] ~docv:"S"
          ~doc:"Enable node (chassis) failures with this MTBF; all incident links fail together.")
  in
  let node_mttr_arg =
    Arg.(
      value & opt float 1.0 & info [ "node-mttr" ] ~docv:"S" ~doc:"Node mean time to repair, seconds.")
  in
  let duration_arg =
    Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds per trial.")
  in
  let load_arg =
    Arg.(
      value & opt float 5.0 & info [ "load" ] ~docv:"GBPS" ~doc:"Total offered load in Gbit/s.")
  in
  let flap_arg =
    Arg.(
      value
      & flag
      & info [ "flap" ] ~doc:"Add a flapping link (chosen from the seed) cycling every second.")
  in
  let srlg_arg =
    Arg.(
      value
      & opt int 0
      & info [ "srlg" ] ~docv:"N"
          ~doc:"Add $(docv) random shared-risk groups of two links failing together.")
  in
  let surge_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "surge" ] ~docv:"FACTOR"
          ~doc:"Scale the demand by $(docv) for a fifth of the run, starting mid-run.")
  in
  let run name seed fraction trials mtbf mttr node_mtbf node_mttr duration load flap srlg
      surge jobs json =
    with_topology name (fun t g ->
        let power = power_of t g in
        let pairs = pairs_of g ~seed ~fraction in
        let tables = Response.Framework.precompute_cached g power ~pairs in
        let base = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps load) () in
        let spec =
          {
            Fault.Scenario.default with
            Fault.Scenario.seed;
            duration;
            link_faults = Some { Fault.Scenario.mtbf; mttr };
            node_faults =
              Option.map (fun m -> { Fault.Scenario.mtbf = m; mttr = node_mttr }) node_mtbf;
            srlgs =
              (if srlg <= 0 then []
               else
                 Fault.Scenario.random_srlgs g
                   (Eutil.Prng.create (seed lxor 0x5126))
                   ~groups:srlg ~size:2);
            srlg_faults =
              (if srlg <= 0 then None
               else Some { Fault.Scenario.mtbf = mtbf *. 2.0; mttr });
            flapping =
              (if flap then
                 Some
                   {
                     Fault.Scenario.flap_link = None;
                     flap_period = 1.0;
                     flap_cycles = int_of_float duration;
                     flap_start = duration /. 4.0;
                   }
               else None);
            surges =
              (match surge with
              | None -> []
              | Some f ->
                  [
                    {
                      Fault.Scenario.surge_at = duration /. 2.0;
                      surge_factor = f;
                      surge_duration = duration /. 5.0;
                    };
                  ]);
          }
        in
        let report = Fault.Harness.run ~jobs ~tables ~power ~base ~spec ~trials () in
        if json then print_string (Fault.Harness.to_json report ^ "\n")
        else begin
          let open Fault.Harness in
          Format.printf "chaos %s: %d trial(s) x %.1f s, base seed %d@." t.tname trials duration
            report.base_seed;
          Format.printf "availability:      %.4f (%d outage(s))@." report.availability
            report.outages;
          Format.printf "delivered:         %.2f%% of offered traffic (lost %.3e bits)@."
            (100.0 *. report.delivered_fraction)
            report.lost_bits;
          Format.printf "recovery time:     p50 %.2f s, p99 %.2f s, max %.2f s@."
            report.recovery_p50 report.recovery_p99 report.recovery_max;
          Format.printf "sleep ratio:       %.3f (mean power %.1f%% of full)@." report.sleep_ratio
            report.mean_power_percent;
          Format.printf "rejected wakes:    %d@." report.rejected_wakes;
          Format.printf "fallback routes:   %d@." report.fallback_routes
        end;
        0)
  in
  let doc =
    "Run seeded fault-injection trials (link/node/SRLG failures, flaps, surges) through the \
     simulator and report availability, loss and recovery times."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ topology_arg $ seed_arg $ fraction_arg $ trials_arg $ mtbf_arg $ mttr_arg
      $ node_mtbf_arg $ node_mttr_arg $ duration_arg $ load_arg $ flap_arg $ srlg_arg
      $ surge_arg $ jobs_arg $ json_arg)

(* ------------------------------ export ------------------------------ *)

let export_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("dot", `Dot); ("csv", `Csv); ("trace", `Trace) ]) `Dot
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output: dot (Graphviz), csv (links), trace (synthetic demand trace CSV).")
  in
  let days_arg =
    Arg.(value & opt int 1 & info [ "days" ] ~docv:"DAYS" ~doc:"Trace length for --format trace.")
  in
  let run name seed fraction format days =
    with_topology name (fun _t g ->
        (match format with
        | `Dot -> print_string (Topo.Export.to_dot g)
        | `Csv -> print_string (Topo.Export.to_csv g)
        | `Trace ->
            let pairs = pairs_of g ~seed ~fraction in
            let trace = Traffic.Synth.geant_like g ~days ~pairs () in
            print_string (Traffic.Trace_io.to_csv trace));
        0)
  in
  let doc = "Export a topology (DOT/CSV) or a synthetic demand trace (CSV) to stdout." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ topology_arg $ seed_arg $ fraction_arg $ format_arg $ days_arg)

(* ------------------------------- query ------------------------------ *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"respctld address (an IP literal).")

let port_arg =
  Arg.(value & opt int 4710 & info [ "port" ] ~docv:"PORT" ~doc:"respctld binary-protocol port.")

let query_cmd =
  let origin_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"ORIGIN" ~doc:"Origin node name.")
  in
  let dest_arg =
    Arg.(
      required & pos 2 (some string) None & info [] ~docv:"DEST" ~doc:"Destination node name.")
  in
  let run name origin dest host port =
    with_topology name (fun _t g ->
        match (Topo.Graph.node_of_name g origin, Topo.Graph.node_of_name g dest) with
        | exception Invalid_argument msg ->
            Format.eprintf "query: %s@." msg;
            2
        | o, d -> (
            (* Path queries are idempotent: bounded connect/reply
               deadlines plus seeded-backoff retries, so a wedged or
               briefly-overloaded daemon degrades into a clean error. *)
            match
              Serve.Client.request ~host ~connect_timeout_s:2.0 ~timeout_s:5.0
                ~retry:Serve.Client.default_retry ~port
                (Serve.Wire.Path_query { origin = o; dest = d })
            with
            | Error e ->
                Format.eprintf "query: %s@." e;
                2
                | Ok (Serve.Wire.Path_reply { status = Serve.Wire.Path_ok; level; nodes }) ->
                    Format.printf "%s -> %s: level %d, %s@." origin dest level
                      (String.concat "-" (List.map (Topo.Graph.name g) nodes));
                    0
                | Ok (Serve.Wire.Path_reply { status = Serve.Wire.Unknown_pair; _ }) ->
                    Format.printf "%s -> %s: no installed tables for this pair@." origin dest;
                    1
                | Ok (Serve.Wire.Path_reply { status = Serve.Wire.No_usable_path; _ }) ->
                    Format.printf "%s -> %s: every installed path crosses a failed link@." origin
                      dest;
                    1
                | Ok (Serve.Wire.Error_reply { message; _ }) ->
                    Format.eprintf "query: server rejected the request: %s@." message;
                    1
                | Ok _ ->
                    Format.eprintf "query: unexpected reply type@.";
                    1))
  in
  let doc = "Ask a running respctld which installed path a pair uses right now." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run $ topology_arg $ origin_arg $ dest_arg $ host_arg $ port_arg)

(* ------------------------------- load ------------------------------- *)

let load_cmd =
  let conns_arg =
    Arg.(value & opt int 4 & info [ "conns" ] ~docv:"N" ~doc:"Concurrent closed-loop connections.")
  in
  let rate_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "rate" ] ~docv:"QPS" ~doc:"Target aggregate request rate (0 = open throttle).")
  in
  let duration_arg =
    Arg.(value & opt float 3.0 & info [ "duration" ] ~docv:"S" ~doc:"Seconds to keep issuing.")
  in
  let requests_arg =
    Arg.(
      value
      & opt int 0
      & info [ "requests" ] ~docv:"N"
          ~doc:"Fixed request count; when positive it overrides $(b,--duration).")
  in
  let reload_at_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "reload-at" ] ~docv:"S"
          ~doc:
            "Send a reload over a control connection this many seconds into the run (hot-swap \
             under load).")
  in
  let slo_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-p99" ] ~docv:"MS"
          ~doc:"Exit non-zero if the p99 query latency exceeds $(docv) milliseconds.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float 5.0
      & info [ "timeout" ] ~docv:"S"
          ~doc:"Per-attempt reply deadline; a miss replaces the connection and retries (0 \
                disables).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget per query for timeouts and overload/deadline rejections.")
  in
  let run name host port conns rate duration requests reload_at slo timeout retries seed
      fraction json =
    with_topology name (fun _t g ->
        let pairs = Array.of_list (pairs_of g ~seed ~fraction) in
        let cfg =
          {
            Serve.Load.default with
            Serve.Load.host;
            port;
            conns;
            rate;
            duration_s = duration;
            requests;
            pairs;
            reload_at;
            timeout_s = timeout;
            retries;
            seed;
          }
        in
        match Serve.Load.run cfg with
        | Error e ->
            Format.eprintf "load: %s@." e;
            2
        | Ok r ->
            if json then print_string (Serve.Load.to_json r ^ "\n")
            else Format.printf "%a@." Serve.Load.pp r;
            let slo_violated =
              match slo with Some budget -> r.Serve.Load.p99_ms > budget | None -> false
            in
            if slo_violated then
              Format.eprintf "load: p99 %.3f ms exceeds the %.3f ms SLO@." r.Serve.Load.p99_ms
                (Option.value slo ~default:0.0);
            (* [failed] already folds in requests whose shed/timeout
               retries never recovered, so backpressure the run could
               not absorb fails the gate. *)
            if r.Serve.Load.failed > 0 || r.Serve.Load.wrong > 0 || slo_violated then 1 else 0)
  in
  let doc =
    "Drive a running respctld with a closed-loop workload and report delivered QPS, exact \
     latency percentiles, and timeout/retry/shed counts, optionally enforcing a p99 SLO. \
     Retries use seeded exponential backoff; a circuit breaker keeps an unreachable server \
     from hanging the run."
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      const run $ topology_arg $ host_arg $ port_arg $ conns_arg $ rate_arg $ duration_arg
      $ requests_arg $ reload_at_arg $ slo_arg $ timeout_arg $ retries_arg $ seed_arg
      $ fraction_arg $ json_arg)

(* ---------------------------- chaos-serve --------------------------- *)

(* Per-fault probe tally: every probe lands in exactly one class, and the
   drill's invariant is that the wrong class stays empty — a mangled
   frame may fail transport or earn a typed protocol error, never a
   bogus reply and never a daemon crash. *)
type fault_row = {
  fr_name : string;
  fr_ok : int;  (* well-formed path replies *)
  fr_typed : int;  (* typed Error_reply frames from the daemon *)
  fr_transport : int;  (* resets, EOFs, timeouts absorbed by the client *)
  fr_wrong : int;  (* replies of an impossible type *)
  fr_recovered : bool;  (* a clean probe succeeds once the fault clears *)
  fr_alive : bool;  (* the daemon answers health off the faulty path *)
}

type journal_drill = {
  jd_replay : bool;  (* copied-at-kill journal rebuilds identical bytes *)
  jd_torn_detected : bool;  (* a half-written tail is flagged *)
  jd_torn_replay : bool;  (* ... and dropped without corrupting state *)
  jd_compacted : bool;  (* at least one checkpoint rewrite happened *)
}

(* Everything resolve-visible, byte-serialized: the reply frame of every
   sampled pair plus the evaluation figures (power as IEEE bits, so
   "byte-identical" means bit-identical, not approximately-equal). The
   snapshot version is deliberately excluded — a restart resets it. *)
let chaos_snapshot_bytes st pairs =
  let b = Buffer.create 1024 in
  List.iter
    (fun (origin, dest) ->
      let status, level, nodes = Serve.State.resolve st ~origin ~dest in
      Buffer.add_string b
        (Serve.Wire.encode_response (Serve.Wire.Path_reply { status; level; nodes })))
    pairs;
  Buffer.add_string b (string_of_int (Serve.State.levels_activated st));
  Buffer.add_string b (Int64.to_string (Int64.bits_of_float (Serve.State.power_percent st)));
  Buffer.contents b

(* Simulated kill -9 + restart: run a journaled state, copy the journal
   file at an arbitrary instant (what a crash leaves behind), boot a
   second state from the copy and demand byte-identical resolution; then
   the same with a half-written record glued on the tail. *)
let chaos_journal_drill g power ~pairs ~demand =
  let read_file p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let write_file p s =
    let oc = open_out_bin p in
    output_string oc s;
    close_out oc
  in
  let remove_quiet p = try Sys.remove p with Sys_error _ -> () in
  let jpath = Filename.temp_file "respctl-chaos" ".journal" in
  let jcopy = jpath ^ ".crash" in
  let jtorn = jpath ^ ".torn" in
  let parr = Array.of_list pairs in
  let nothing =
    { jd_replay = false; jd_torn_detected = false; jd_torn_replay = false; jd_compacted = false }
  in
  let outcome =
    match Serve.Journal.open_ jpath with
    | Error _ -> nothing
    | Ok j ->
        let s1 = Serve.State.create ~journal:j g power ~pairs ~demand in
        let drill_step_bps = Eutil.Units.to_float (Eutil.Units.gbps 0.1) in
        let k = Int.min 4 (Array.length parr) in
        for i = 0 to k - 1 do
          let origin, dest = parr.(i) in
          ignore
            (Serve.State.update_demand s1 ~origin ~dest
               ~bps:(drill_step_bps *. float_of_int (i + 1)))
        done;
        ignore (Serve.State.set_link s1 ~link:0 ~up:false);
        ignore (Serve.State.reload s1);
        let b1 = chaos_snapshot_bytes s1 pairs in
        (* A post-checkpoint append that leaves the staged state bitwise
           unchanged: whether the crash image carries it as a checkpoint
           or as a trailing record, replay must land on the same state. *)
        (if k > 0 then begin
           let origin, dest = parr.(0) in
           ignore (Serve.State.update_demand s1 ~origin ~dest ~bps:drill_step_bps)
         end);
        let image = read_file jpath in
        Serve.State.stop s1;
        write_file jcopy image;
        let replay_ok =
          match Serve.Journal.open_ jcopy with
          | Error _ -> false
          | Ok j2 ->
              if Serve.Journal.torn j2 then begin
                Serve.Journal.close j2;
                false
              end
              else begin
                let s2 = Serve.State.create ~journal:j2 g power ~pairs ~demand in
                let b2 = chaos_snapshot_bytes s2 pairs in
                Serve.State.stop s2;
                String.equal b1 b2
              end
        in
        (* len claims 0x20 bytes but only nine follow: exactly the shape
           a power cut mid-append leaves behind. *)
        write_file jtorn (image ^ "\x00\x00\x00\x20torn-tail");
        let torn_detected, torn_replay =
          match Serve.Journal.open_ jtorn with
          | Error _ -> (false, false)
          | Ok j3 ->
              let detected = Serve.Journal.torn j3 in
              let s3 = Serve.State.create ~journal:j3 g power ~pairs ~demand in
              let b3 = chaos_snapshot_bytes s3 pairs in
              Serve.State.stop s3;
              (detected, String.equal b1 b3)
        in
        {
          jd_replay = replay_ok;
          jd_torn_detected = torn_detected;
          jd_torn_replay = torn_replay;
          jd_compacted = Obs.Metric.Counter.value Serve.Metrics.journal_compactions > 0.0;
        }
  in
  remove_quiet jpath;
  remove_quiet jcopy;
  remove_quiet jtorn;
  outcome

let chaos_serve_cmd =
  let probes_arg =
    Arg.(
      value
      & opt int 5
      & info [ "probes" ] ~docv:"N" ~doc:"Path queries probed through the proxy per fault.")
  in
  let faults =
    [|
      ("pass", Serve.Chaosproxy.Pass);
      ("delay", Serve.Chaosproxy.Delay 0.02);
      ("partial_write", Serve.Chaosproxy.Partial_write);
      ("truncate", Serve.Chaosproxy.Truncate 4);
      ("corrupt", Serve.Chaosproxy.Corrupt);
      ("reset", Serve.Chaosproxy.Reset);
      ("blackhole", Serve.Chaosproxy.Blackhole);
    |]
  in
  let run name seed fraction probes json =
    with_topology name (fun t g ->
        Obs.set_enabled true;
        let power = power_of t g in
        let pairs = pairs_of g ~seed ~fraction in
        let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
        match Serve.State.create g power ~pairs ~demand with
        | exception Invalid_argument msg ->
            Format.eprintf "chaos-serve: %s@." msg;
            2
        | state -> (
            let sconfig =
              { Serve.Server.default_config with Serve.Server.port = 0; http_port = 0; workers = 2 }
            in
            match Serve.Server.start ~config:sconfig state with
            | exception Unix.Unix_error (err, _, _) ->
                Serve.State.stop state;
                Format.eprintf "chaos-serve: %s@." (Unix.error_message err);
                2
            | server ->
                let proxy =
                  Serve.Chaosproxy.start ~seed ~upstream_port:(Serve.Server.port server) ()
                in
                let pport = Serve.Chaosproxy.port proxy in
                let dport = Serve.Server.port server in
                let parr = Array.of_list pairs in
                let npairs = Array.length parr in
                let probe_query ?(timeout_s = 0.5) ?retry ~port k =
                  let origin, dest = parr.(k mod npairs) in
                  Serve.Client.request ~connect_timeout_s:1.0 ~timeout_s ?retry ~port
                    (Serve.Wire.Path_query { origin; dest })
                in
                let run_fault (fname, f) =
                  Serve.Chaosproxy.set_fault proxy f;
                  let ok = ref 0 and typed = ref 0 in
                  let transport = ref 0 and wrong = ref 0 in
                  for k = 0 to probes - 1 do
                    match probe_query ~port:pport k with
                    | Ok (Serve.Wire.Path_reply _) -> incr ok
                    | Ok (Serve.Wire.Error_reply _) -> incr typed
                    | Ok _ -> incr wrong
                    | Error _ -> incr transport
                  done;
                  Serve.Chaosproxy.set_fault proxy Serve.Chaosproxy.Pass;
                  let recovered =
                    match
                      probe_query ~timeout_s:2.0 ~retry:Serve.Client.default_retry ~port:pport 0
                    with
                    | Ok (Serve.Wire.Path_reply _) -> true
                    | Ok _ | Error _ -> false
                  in
                  (* Health goes to the daemon directly, off the faulty
                     path: a fault must never take the process down. *)
                  let alive =
                    match
                      Serve.Client.request ~connect_timeout_s:1.0 ~timeout_s:2.0 ~port:dport
                        Serve.Wire.Health
                    with
                    | Ok (Serve.Wire.Health_reply _) -> true
                    | Ok _ | Error _ -> false
                  in
                  {
                    fr_name = fname;
                    fr_ok = !ok;
                    fr_typed = !typed;
                    fr_transport = !transport;
                    fr_wrong = !wrong;
                    fr_recovered = recovered;
                    fr_alive = alive;
                  }
                in
                let rows = Array.map run_fault faults in
                (* SLO recovery: once the fault window closes, a clean
                   closed-loop run through the proxy must deliver every
                   reply within a generous p99 bound. *)
                let slo_ok, slo_p99 =
                  let lcfg =
                    {
                      Serve.Load.default with
                      Serve.Load.host = "127.0.0.1";
                      port = pport;
                      conns = 2;
                      requests = 60;
                      pairs = parr;
                      timeout_s = 2.0;
                      retries = 2;
                      seed;
                    }
                  in
                  match Serve.Load.run lcfg with
                  | Error _ -> (false, Float.nan)
                  | Ok r ->
                      ( r.Serve.Load.failed = 0 && r.Serve.Load.wrong = 0
                        && r.Serve.Load.p99_ms < 250.0,
                        r.Serve.Load.p99_ms )
                in
                Serve.Chaosproxy.stop proxy;
                Serve.Server.stop server;
                Serve.State.stop state;
                let jd = chaos_journal_drill g power ~pairs ~demand in
                let crashes =
                  Array.fold_left (fun n r -> if r.fr_alive then n else n + 1) 0 rows
                in
                let wrong_replies = Array.fold_left (fun n r -> n + r.fr_wrong) 0 rows in
                let all_recovered = Array.for_all (fun r -> r.fr_recovered) rows in
                if json then begin
                  let b = Buffer.create 1024 in
                  Printf.bprintf b "{\"topology\":%S,\"seed\":%d,\"probes\":%d,\"faults\":["
                    t.tname seed probes;
                  Array.iteri
                    (fun i r ->
                      if i > 0 then Buffer.add_char b ',';
                      Printf.bprintf b
                        "{\"fault\":%S,\"ok\":%d,\"typed_errors\":%d,\"transport_errors\":%d,\"wrong\":%d,\"recovered\":%b,\"daemon_alive\":%b}"
                        r.fr_name r.fr_ok r.fr_typed r.fr_transport r.fr_wrong r.fr_recovered
                        r.fr_alive)
                    rows;
                  Printf.bprintf b
                    "],\"crashes\":%d,\"wrong_replies\":%d,\"post_fault_slo_ok\":%b,\"journal\":{\"replay_matches\":%b,\"torn_tail_detected\":%b,\"torn_replay_matches\":%b,\"compacted\":%b}}\n"
                    crashes wrong_replies slo_ok jd.jd_replay jd.jd_torn_detected
                    jd.jd_torn_replay jd.jd_compacted;
                  print_string (Buffer.contents b)
                end
                else begin
                  Format.printf "chaos-serve %s: %d fault(s) x %d probe(s), seed %d@." t.tname
                    (Array.length faults) probes seed;
                  Array.iter
                    (fun r ->
                      Format.printf
                        "  %-14s ok %d  typed %d  transport %d  wrong %d  recovered %b  alive %b@."
                        r.fr_name r.fr_ok r.fr_typed r.fr_transport r.fr_wrong r.fr_recovered
                        r.fr_alive)
                    rows;
                  Format.printf "post-fault SLO: %s (p99 %.3f ms)@."
                    (if slo_ok then "ok" else "VIOLATED")
                    slo_p99;
                  Format.printf "journal: replay %b, torn detected %b, torn replay %b, compacted %b@."
                    jd.jd_replay jd.jd_torn_detected jd.jd_torn_replay jd.jd_compacted
                end;
                if
                  crashes = 0 && wrong_replies = 0 && all_recovered && slo_ok && jd.jd_replay
                  && jd.jd_torn_detected && jd.jd_torn_replay && jd.jd_compacted
                then 0
                else 1))
  in
  let doc =
    "Resilience drill against an in-process respctld: probe every fault class (latency, \
     partial writes, truncation, corruption, resets, blackholes) through a seeded chaos \
     proxy, assert the daemon survives with only typed errors, check the post-fault SLO, and \
     verify kill-and-restart journal recovery (torn tails included) rebuilds byte-identical \
     state."
  in
  Cmd.v (Cmd.info "chaos-serve" ~doc)
    Term.(const run $ topology_arg $ seed_arg $ fraction_arg $ probes_arg $ json_arg)

let () =
  let doc = "REsPoNse: identifying and using energy-critical paths" in
  let info = Cmd.info "respctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            topo_cmd; tables_cmd; power_cmd; replay_cmd; chaos_cmd; chaos_serve_cmd; stats_cmd;
            export_cmd; query_cmd; load_cmd; lint_cmd; analyze_cmd; check_cmd; doc_cmd;
          ]))
