(* Tests for the OpenFlow-style control/data plane: flow tables, the
   REsPoNse controller compilation, and the packet-level simulator —
   including cross-validation against the fluid simulator. *)

module G = Topo.Graph
module Path = Topo.Path
module FT = Openflow.Flowtable

(* -------------------- Flow table -------------------- *)

let test_priority_and_wildcards () =
  let t = FT.create () in
  FT.add t ~priority:1 ~matcher:{ FT.src = None; dst = None } ~action:FT.Drop;
  FT.add t ~priority:10
    ~matcher:{ FT.src = Some 1; dst = Some 2 }
    ~action:(FT.Forward [ (7, 1.0) ]);
  (match FT.lookup t ~src:1 ~dst:2 with
  | Some e -> Alcotest.(check bool) "specific entry wins" true (e.FT.action <> FT.Drop)
  | None -> Alcotest.fail "entry expected");
  (match FT.lookup t ~src:3 ~dst:4 with
  | Some e -> Alcotest.(check bool) "wildcard catches the rest" true (e.FT.action = FT.Drop)
  | None -> Alcotest.fail "wildcard expected")

let test_counters () =
  let t = FT.create () in
  FT.add t ~priority:1 ~matcher:{ FT.src = Some 0; dst = Some 1 } ~action:(FT.Forward [ (0, 1.0) ]);
  let e = Option.get (FT.lookup t ~src:0 ~dst:1) in
  FT.account e ~bytes:100.0;
  FT.account e ~bytes:50.0;
  Alcotest.(check int) "packets" 2 e.FT.packets;
  Alcotest.(check (float 1e-9)) "bytes" 150.0 e.FT.bytes

let test_select_deterministic_and_proportional () =
  let t = FT.create () in
  FT.add t ~priority:1
    ~matcher:{ FT.src = Some 0; dst = Some 1 }
    ~action:(FT.Forward [ (100, 3.0); (200, 1.0) ]);
  let e = Option.get (FT.lookup t ~src:0 ~dst:1) in
  (* Determinism. *)
  for key = 0 to 20 do
    Alcotest.(check bool) "same key same arc" true (FT.select e ~key = FT.select e ~key)
  done;
  (* Proportionality over many keys: ~75 % to arc 100. *)
  let hits = ref 0 in
  let n = 2000 in
  for key = 0 to n - 1 do
    if FT.select e ~key = Some 100 then incr hits
  done;
  let share = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "share %.2f in [0.70, 0.80]" share) true
    (share > 0.70 && share < 0.80);
  (* Drop behaviour. *)
  let d = FT.create () in
  FT.add d ~priority:1 ~matcher:{ FT.src = None; dst = None } ~action:FT.Drop;
  let de = Option.get (FT.lookup d ~src:0 ~dst:1) in
  Alcotest.(check bool) "drop selects nothing" true (FT.select de ~key:5 = None)

(* -------------------- Controller -------------------- *)

let fig3_controller () =
  let ex, tables = Fixtures.fig3_tables () in
  let ctl = Openflow.Controller.create tables in
  (ex, tables, ctl)

let test_controller_programs_always_on () =
  let ex, tables, ctl = fig3_controller () in
  let te = Response.Te.create tables Response.Te.default_config in
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  (* The route followed in the data plane is exactly the always-on path. *)
  let a = ex.Topo.Example.a and k = ex.Topo.Example.k in
  let expected = (Option.get (Response.Tables.find tables a k)).Response.Tables.always_on in
  (match Openflow.Controller.route ctl ~src:a ~dst:k ~key:0 with
  | Some p -> Alcotest.(check bool) "always-on route" true (Path.equal p expected)
  | None -> Alcotest.fail "route expected");
  (* Entry count: 2 pairs x 3 hops. *)
  Alcotest.(check int) "TCAM footprint" 6 (Openflow.Controller.tables_installed ctl)

let test_controller_reprogram_on_split_change () =
  let ex, tables, ctl = fig3_controller () in
  let a = ex.Topo.Example.a and k = ex.Topo.Example.k in
  let te = Response.Te.create tables Response.Te.default_config in
  Response.Te.force_split te a k [| 0.0; 1.0 |];
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  let upper = List.hd (Option.get (Response.Tables.find tables a k)).Response.Tables.on_demand in
  (match Openflow.Controller.route ctl ~src:a ~dst:k ~key:3 with
  | Some p -> Alcotest.(check bool) "moved to on-demand path" true (Path.equal p upper)
  | None -> Alcotest.fail "route expected")

let test_controller_route_missing_pair () =
  let ex, _, ctl = fig3_controller () in
  let te_tables_missing =
    Openflow.Controller.route ctl ~src:ex.Topo.Example.d ~dst:ex.Topo.Example.k ~key:0
  in
  Alcotest.(check bool) "unprogrammed controller has no route" true (te_tables_missing = None)

(* -------------------- Packet simulator -------------------- *)

let test_pnet_delivers_and_measures_latency () =
  let ex, tables, ctl = fig3_controller () in
  let te = Response.Te.create tables Response.Te.default_config in
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  let r = Openflow.Pnet.run ctl ~flows:[ (a, k, 2.5e6); (c, k, 2.5e6) ] ~duration:2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "delivered %.3f" r.Openflow.Pnet.delivered_fraction)
    true
    (r.Openflow.Pnet.delivered_fraction > 0.99);
  (* Latency = 3 hops x (16.67 ms propagation + 1 ms serialisation at
     10 Mbit/s for 1250 B). *)
  List.iter
    (fun f ->
      let expected = 3.0 *. (16.67e-3 +. 1e-3) in
      Alcotest.(check bool)
        (Printf.sprintf "latency %.1f ms" (1e3 *. f.Openflow.Pnet.mean_latency))
        true
        (abs_float (f.Openflow.Pnet.mean_latency -. expected) < 2e-3))
    r.Openflow.Pnet.flows

let test_pnet_drops_under_overload () =
  let ex, tables, ctl = fig3_controller () in
  let te = Response.Te.create tables Response.Te.default_config in
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  (* 16 Mbit/s offered over one 10 Mbit/s always-on path: ~40 % loss. *)
  let r = Openflow.Pnet.run ctl ~flows:[ (a, k, 8e6); (c, k, 8e6) ] ~duration:2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "lossy (%.2f delivered)" r.Openflow.Pnet.delivered_fraction)
    true
    (r.Openflow.Pnet.delivered_fraction < 0.75);
  let total_drops =
    List.fold_left (fun acc f -> acc + f.Openflow.Pnet.dropped) 0 r.Openflow.Pnet.flows
  in
  Alcotest.(check bool) "drops counted" true (total_drops > 0)

let test_pnet_split_traffic_uses_both_paths () =
  let ex, tables, ctl = fig3_controller () in
  let g = ex.Topo.Example.graph in
  let te = Response.Te.create tables Response.Te.default_config in
  let a = ex.Topo.Example.a and k = ex.Topo.Example.k in
  Response.Te.force_split te a k [| 0.5; 0.5 |];
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  (* 64 micro-flows from A so the select hash can spread. *)
  let flows = List.init 64 (fun _ -> (a, k, 0.1e6)) in
  let r = Openflow.Pnet.run ctl ~flows ~duration:1.0 in
  let arc i j = Option.get (G.find_arc g i j) in
  let middle = r.Openflow.Pnet.arc_bytes.(arc ex.Topo.Example.e ex.Topo.Example.h) in
  let upper = r.Openflow.Pnet.arc_bytes.(arc ex.Topo.Example.d ex.Topo.Example.g) in
  Alcotest.(check bool) "middle used" true (middle > 0.0);
  Alcotest.(check bool) "upper used" true (upper > 0.0);
  let share = middle /. (middle +. upper) in
  Alcotest.(check bool) (Printf.sprintf "split share %.2f" share) true
    (share > 0.3 && share < 0.7)

let test_pnet_agrees_with_fluid_sim () =
  (* Cross-validation (DESIGN.md): the packet data plane and the fluid model
     deliver the same steady-state rates for the Figure 7 workload. *)
  let ex, tables, ctl = fig3_controller () in
  let te = Response.Te.create tables Response.Te.default_config in
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  let packet = Openflow.Pnet.run ctl ~flows:[ (a, k, 2.5e6); (c, k, 2.5e6) ] ~duration:3.0 in
  let demand = Fixtures.fig7_demand ex in
  let fluid =
    Netsim.Sim.run ~tables
      ~power:(Power.Model.cisco12000 ex.Topo.Example.graph)
      ~events:[ Netsim.Sim.Set_demand (0.0, demand) ]
      ~duration:3.0 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "both deliver ~everything (packet %.3f, fluid %.3f)"
       packet.Openflow.Pnet.delivered_fraction fluid.Netsim.Sim.delivered_fraction)
    true
    (packet.Openflow.Pnet.delivered_fraction > 0.99
    && fluid.Netsim.Sim.delivered_fraction > 0.95)


let test_full_pipeline_geant () =
  (* End-to-end integration: precompute energy-critical paths on the ISP
     topology, compile them into OpenFlow tables, and deliver packets. *)
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:5 ~fraction:0.4 in
  let tables = Response.Framework.precompute g power ~pairs in
  let ctl = Openflow.Controller.create tables in
  let te = Response.Te.create tables Response.Te.default_config in
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  (* Every pair is routable in the data plane along its always-on path. *)
  List.iter
    (fun (o, d) ->
      match Openflow.Controller.route ctl ~src:o ~dst:d ~key:0 with
      | Some p ->
          let expected = (Option.get (Response.Tables.find tables o d)).Response.Tables.always_on in
          Alcotest.(check bool) "data plane = always-on" true (Path.equal p expected)
      | None -> Alcotest.fail "unroutable pair")
    pairs;
  (* Packets flow: 20 Mbit/s per pair for 100 ms. *)
  let flows = List.map (fun (o, d) -> (o, d, 20e6)) pairs in
  let r = Openflow.Pnet.run ctl ~flows ~duration:0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "delivered %.3f" r.Openflow.Pnet.delivered_fraction)
    true
    (r.Openflow.Pnet.delivered_fraction > 0.98)

(* Property: for random splits, the controller's data-plane walk always
   follows one of the pair's installed paths. *)
let prop_route_is_installed_path =
  QCheck.Test.make ~name:"data-plane route is an installed path" ~count:50
    QCheck.(pair (int_range 0 1000) (int_range 0 100))
    (fun (seed, key) ->
      let ex, tables = Fixtures.fig3_tables () in
      ignore ex;
      let rng = Eutil.Prng.create seed in
      let ctl = Openflow.Controller.create tables in
      let te = Response.Te.create tables Response.Te.default_config in
      List.iter
        (fun (o, d) ->
          let w = Eutil.Prng.float rng in
          Response.Te.force_split te o d [| w; 1.0 -. w |])
        (Response.Tables.pairs tables);
      Openflow.Controller.program ctl ~splits:(Response.Te.split te);
      List.for_all
        (fun (o, d) ->
          match Openflow.Controller.route ctl ~src:o ~dst:d ~key with
          | None -> false
          | Some p ->
              let entry = Option.get (Response.Tables.find tables o d) in
              Array.exists (Path.equal p) (Response.Tables.paths entry))
        (Response.Tables.pairs tables))

let () =
  Alcotest.run "openflow"
    [
      ( "flowtable",
        [
          Alcotest.test_case "priority and wildcards" `Quick test_priority_and_wildcards;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "select" `Quick test_select_deterministic_and_proportional;
        ] );
      ( "controller",
        [
          Alcotest.test_case "programs always-on" `Quick test_controller_programs_always_on;
          Alcotest.test_case "reprogram on split change" `Quick test_controller_reprogram_on_split_change;
          Alcotest.test_case "missing pair" `Quick test_controller_route_missing_pair;
        ] );
      ( "pnet",
        [
          Alcotest.test_case "delivers with correct latency" `Quick test_pnet_delivers_and_measures_latency;
          Alcotest.test_case "drops under overload" `Quick test_pnet_drops_under_overload;
          Alcotest.test_case "weighted split" `Quick test_pnet_split_traffic_uses_both_paths;
          Alcotest.test_case "agrees with fluid sim" `Quick test_pnet_agrees_with_fluid_sim;
          Alcotest.test_case "full pipeline on geant" `Quick test_full_pipeline_geant;
          QCheck_alcotest.to_alcotest prop_route_is_installed_path;
        ] );
    ]
