(* Tests for the topology substrate: graph construction, activity state,
   paths, and the generated topologies used in the evaluation. *)

module G = Topo.Graph
module State = Topo.State
module Path = Topo.Path

let test_builder_basic () =
  let g = Topo.Example.triangle () in
  Alcotest.(check int) "nodes" 3 (G.node_count g);
  Alcotest.(check int) "links" 3 (G.link_count g);
  Alcotest.(check int) "arcs" 6 (G.arc_count g);
  Alcotest.(check int) "degree" 2 (G.degree g 0);
  Alcotest.(check string) "name" "n1" (G.name g 1);
  Alcotest.(check int) "by name" 1 (G.node_of_name g "n1")

let test_arc_pairing () =
  let g = Topo.Example.triangle () in
  for a = 0 to G.arc_count g - 1 do
    let arc = G.arc g a in
    let rev = G.arc g arc.G.rev in
    Alcotest.(check int) "rev of rev" a rev.G.rev;
    Alcotest.(check int) "same link" arc.G.link rev.G.link;
    Alcotest.(check int) "opposite src" arc.G.src rev.G.dst
  done

let test_find_arc () =
  let g = Topo.Example.triangle () in
  (match G.find_arc g 0 1 with
  | Some a ->
      let arc = G.arc g a in
      Alcotest.(check int) "src" 0 arc.G.src;
      Alcotest.(check int) "dst" 1 arc.G.dst
  | None -> Alcotest.fail "missing arc");
  (* There is no self arc. *)
  Alcotest.(check bool) "no self" true (G.find_arc g 0 0 = None)

let test_builder_rejects_duplicates () =
  let b = G.Builder.create () in
  let x = G.Builder.add_node b "x" in
  let y = G.Builder.add_node b "y" in
  ignore (G.Builder.add_link b ~capacity:1.0 ~latency:1.0 x y);
  Alcotest.check_raises "duplicate link" (Invalid_argument "Builder.add_link: duplicate link")
    (fun () -> ignore (G.Builder.add_link b ~capacity:1.0 ~latency:1.0 y x));
  Alcotest.check_raises "self loop" (Invalid_argument "Builder.add_link: self loop") (fun () ->
      ignore (G.Builder.add_link b ~capacity:1.0 ~latency:1.0 x x));
  Alcotest.check_raises "duplicate name" (Invalid_argument "Builder.add_node: duplicate x")
    (fun () -> ignore (G.Builder.add_node b "x"))

let test_asymmetric_capacity () =
  let b = G.Builder.create () in
  let x = G.Builder.add_node b "x" in
  let y = G.Builder.add_node b "y" in
  ignore (G.Builder.add_link b ~capacity:10.0 ~capacity_back:4.0 ~latency:1.0 x y);
  let g = G.Builder.build b in
  let fwd = Option.get (G.find_arc g x y) in
  let bwd = Option.get (G.find_arc g y x) in
  Alcotest.(check (float 0.0)) "fwd" 10.0 (G.arc g fwd).G.capacity;
  Alcotest.(check (float 0.0)) "bwd" 4.0 (G.arc g bwd).G.capacity

let test_state_node_follows_links () =
  let g = Topo.Example.triangle () in
  let st = State.all_on g in
  Alcotest.(check bool) "all nodes on" true (State.node_on st 0);
  (* Turn off the two links incident to node 0. *)
  let incident =
    List.filter
      (fun l ->
        let i, j = G.link_endpoints g l in
        i = 0 || j = 0)
      (List.init (G.link_count g) (fun l -> l))
  in
  List.iter (fun l -> State.set_link g st l false) incident;
  Alcotest.(check bool) "node off when isolated" false (State.node_on st 0);
  Alcotest.(check bool) "others stay on" true (State.node_on st 1);
  Alcotest.(check int) "one link left" 1 (State.active_links st)

let test_state_key_roundtrip () =
  let g = Topo.Example.square_with_diagonal () in
  let a = State.all_on g in
  let b = State.copy a in
  Alcotest.(check bool) "equal copies" true (State.equal a b);
  Alcotest.(check string) "equal keys" (State.key a) (State.key b);
  State.set_link g b 0 false;
  Alcotest.(check bool) "differ after change" false (State.equal a b);
  Alcotest.(check bool) "keys differ" true (State.key a <> State.key b);
  State.set_link g b 0 true;
  Alcotest.(check bool) "equal again" true (State.equal a b)

let test_path_ops () =
  let g = Topo.Example.line 4 in
  let a01 = Option.get (G.find_arc g 0 1) in
  let a12 = Option.get (G.find_arc g 1 2) in
  let a23 = Option.get (G.find_arc g 2 3) in
  let p = Path.of_arcs g [ a01; a12; a23 ] in
  Alcotest.(check int) "hops" 3 (Path.hops p);
  Alcotest.(check (array int)) "nodes" [| 0; 1; 2; 3 |] (Path.nodes g p);
  Alcotest.(check (float 1e-12)) "latency" 3e-3 (Path.latency g p);
  Alcotest.(check (float 1e-3)) "bottleneck" 1e9 (Path.bottleneck g p);
  Alcotest.(check bool) "uses link" true (Path.uses_link g p (G.arc g a12).G.link)

let test_path_rejects_gap () =
  let g = Topo.Example.line 4 in
  let a01 = Option.get (G.find_arc g 0 1) in
  let a23 = Option.get (G.find_arc g 2 3) in
  Alcotest.check_raises "gap" (Invalid_argument "Path.of_arcs: not contiguous") (fun () ->
      ignore (Path.of_arcs g [ a01; a23 ]))

let test_path_active () =
  let g = Topo.Example.line 3 in
  let a01 = Option.get (G.find_arc g 0 1) in
  let a12 = Option.get (G.find_arc g 1 2) in
  let p = Path.of_arcs g [ a01; a12 ] in
  let st = State.all_on g in
  Alcotest.(check bool) "active" true (Path.active g st p);
  State.set_link g st (G.arc g a12).G.link false;
  Alcotest.(check bool) "inactive" false (Path.active g st p)

let connected g =
  (* BFS over links. *)
  let n = G.node_count g in
  let seen = Array.make n false in
  let q = Queue.create () in
  Queue.add 0 q;
  seen.(0) <- true;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun aid ->
        let v = (G.arc g aid).G.dst in
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      (G.out_arcs g u)
  done;
  Array.for_all (fun b -> b) seen

let test_fattree_counts () =
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  (* k=4: 4 cores, 8 agg, 8 edge, 16 hosts; links: 16 host + 16 edge-agg + 16 agg-core. *)
  Alcotest.(check int) "nodes" 36 (G.node_count g);
  Alcotest.(check int) "links" 48 (G.link_count g);
  Alcotest.(check int) "hosts" 16 (Topo.Fattree.n_hosts ft);
  Alcotest.(check bool) "connected" true (connected g);
  (* Every core switch has degree k. *)
  Array.iter
    (fun c -> Alcotest.(check int) "core degree" 4 (G.degree g c))
    ft.Topo.Fattree.cores

let test_fattree_k12_core_count () =
  let ft = Topo.Fattree.make 12 in
  Alcotest.(check int) "36 core switches" 36 (Array.length ft.Topo.Fattree.cores)

let test_fattree_rejects_odd () =
  Alcotest.check_raises "odd k" (Invalid_argument "Fattree.make: k must be even and >= 2")
    (fun () -> ignore (Topo.Fattree.make 3))

let test_geant () =
  let g = Topo.Geant.make () in
  Alcotest.(check int) "23 pops" 23 (G.node_count g);
  Alcotest.(check int) "37 links" 37 (G.link_count g);
  Alcotest.(check bool) "connected" true (connected g);
  Alcotest.(check int) "traffic nodes" 23 (Array.length (G.traffic_nodes g))

let test_rocketfuel () =
  let ab = Topo.Rocketfuel.make Topo.Rocketfuel.abovenet in
  Alcotest.(check int) "abovenet pops" 22 (G.node_count ab);
  Alcotest.(check bool) "abovenet connected" true (connected ab);
  let ge = Topo.Rocketfuel.make Topo.Rocketfuel.genuity in
  Alcotest.(check int) "genuity pops" 42 (G.node_count ge);
  Alcotest.(check bool) "genuity connected" true (connected ge);
  (* Deterministic regeneration. *)
  let ab2 = Topo.Rocketfuel.make Topo.Rocketfuel.abovenet in
  Alcotest.(check int) "same links" (G.link_count ab) (G.link_count ab2);
  (* Capacity rule: only 100 Mb or 52 Mb links exist. *)
  G.iter_links ab ~f:(fun l ->
      let c = G.link_capacity ab l in
      Alcotest.(check bool) "capacity rule" true (c = 100e6 || c = 52e6))

let test_pop_access () =
  let g = Topo.Pop_access.make () in
  Alcotest.(check int) "nodes" 28 (G.node_count g);
  Alcotest.(check bool) "connected" true (connected g);
  Alcotest.(check int) "cores" 4 (List.length (G.nodes_with_role g G.Core));
  Alcotest.(check int) "metros" 16 (List.length (G.nodes_with_role g G.Metro));
  (* Redundancy: every metro is dual-homed. *)
  List.iter
    (fun m -> Alcotest.(check int) "metro degree" 2 (G.degree g m))
    (G.nodes_with_role g G.Metro)

let test_example_fig3 () =
  let ex = Topo.Example.make () in
  Alcotest.(check int) "nodes" 10 (G.node_count ex.Topo.Example.graph);
  let ex' = Topo.Example.make ~include_b:false () in
  Alcotest.(check int) "without B" 9 (G.node_count ex'.Topo.Example.graph);
  Alcotest.(check bool) "connected" true (connected ex'.Topo.Example.graph)

(* Property: random graphs produced by the builder keep the arc/link
   invariants. *)
let prop_builder_invariants =
  QCheck.Test.make ~name:"builder invariants on random graphs" ~count:100
    QCheck.(pair (int_range 2 12) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Eutil.Prng.create seed in
      let b = G.Builder.create () in
      let nodes = Array.init n (fun i -> G.Builder.add_node b (Printf.sprintf "v%d" i)) in
      (* Random spanning tree plus random extra links. *)
      for i = 1 to n - 1 do
        let j = Eutil.Prng.int rng i in
        ignore
          (G.Builder.add_link b ~capacity:(1.0 +. Eutil.Prng.float rng) ~latency:1e-3 nodes.(i)
             nodes.(j))
      done;
      let g = G.Builder.build b in
      G.arc_count g = 2 * G.link_count g
      && G.link_count g = n - 1
      && G.fold_arcs g ~init:true ~f:(fun acc a ->
             acc && (G.arc g a.G.rev).G.rev = a.G.id && a.G.src <> a.G.dst))

let () =
  Alcotest.run "topo"
    [
      ( "graph",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basic;
          Alcotest.test_case "arc pairing" `Quick test_arc_pairing;
          Alcotest.test_case "find arc" `Quick test_find_arc;
          Alcotest.test_case "builder rejects bad input" `Quick test_builder_rejects_duplicates;
          Alcotest.test_case "asymmetric capacity" `Quick test_asymmetric_capacity;
          QCheck_alcotest.to_alcotest prop_builder_invariants;
        ] );
      ( "state",
        [
          Alcotest.test_case "node follows links" `Quick test_state_node_follows_links;
          Alcotest.test_case "key roundtrip" `Quick test_state_key_roundtrip;
        ] );
      ( "path",
        [
          Alcotest.test_case "operations" `Quick test_path_ops;
          Alcotest.test_case "rejects gaps" `Quick test_path_rejects_gap;
          Alcotest.test_case "activity" `Quick test_path_active;
        ] );
      ( "generators",
        [
          Alcotest.test_case "fat-tree k=4" `Quick test_fattree_counts;
          Alcotest.test_case "fat-tree k=12 cores" `Quick test_fattree_k12_core_count;
          Alcotest.test_case "fat-tree odd k" `Quick test_fattree_rejects_odd;
          Alcotest.test_case "geant" `Quick test_geant;
          Alcotest.test_case "rocketfuel" `Quick test_rocketfuel;
          Alcotest.test_case "pop-access" `Quick test_pop_access;
          Alcotest.test_case "figure 3 example" `Quick test_example_fig3;
        ] );
    ]
