(* Shared test fixtures: the Figure 3/7 experiment set-up and small helpers.
   Linked into every test executable of this directory. *)

module G = Topo.Graph
module Path = Topo.Path

let all_pairs g =
  let nodes = G.traffic_nodes g in
  Array.to_list nodes
  |> List.concat_map (fun o ->
         Array.to_list nodes |> List.filter_map (fun d -> if o <> d then Some (o, d) else None))

(* Figure 3/7: A and C send to K. E-H-K is the common always-on path; the
   "upper" (A-D-G-K) and "lower" (C-F-J-K) paths are on-demand and double as
   failover. *)
let fig3_tables () =
  let ex = Topo.Example.make ~include_b:false () in
  let g = ex.Topo.Example.graph in
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  let arc i j = Option.get (G.find_arc g i j) in
  let via_middle o =
    Path.of_arcs g [ arc o ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.h; arc ex.Topo.Example.h k ]
  in
  let upper =
    Path.of_arcs g [ arc a ex.Topo.Example.d; arc ex.Topo.Example.d ex.Topo.Example.g; arc ex.Topo.Example.g k ]
  in
  let lower =
    Path.of_arcs g [ arc c ex.Topo.Example.f; arc ex.Topo.Example.f ex.Topo.Example.j; arc ex.Topo.Example.j k ]
  in
  let entries =
    [
      { Response.Tables.origin = a; dest = k; always_on = via_middle a; on_demand = [ upper ]; failover = None };
      { Response.Tables.origin = c; dest = k; always_on = via_middle c; on_demand = [ lower ]; failover = None };
    ]
  in
  (ex, Response.Tables.make g entries)

let link_between g i j = (G.arc g (Option.get (G.find_arc g i j))).G.link

(* Demand matrix for the Figure 7 workload: A and C each send 2.5 Mbit/s
   (5 flows of 10 packets/s) towards K. *)
let fig7_demand ex =
  let g = ex.Topo.Example.graph in
  let m = Traffic.Matrix.create (G.node_count g) in
  Traffic.Matrix.set m ex.Topo.Example.a ex.Topo.Example.k 2.5e6;
  Traffic.Matrix.set m ex.Topo.Example.c ex.Topo.Example.k 2.5e6;
  m
