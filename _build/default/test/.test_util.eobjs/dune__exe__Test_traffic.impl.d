test/test_traffic.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Topo Traffic
