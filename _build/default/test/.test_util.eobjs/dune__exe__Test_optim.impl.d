test/test_optim.ml: Alcotest Array Eutil Hashtbl List Optim Option Power Printf QCheck QCheck_alcotest Topo Traffic
