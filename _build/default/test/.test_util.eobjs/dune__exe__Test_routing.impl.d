test/test_routing.ml: Alcotest Array Eutil Hashtbl List Option Printf QCheck QCheck_alcotest Routing Topo
