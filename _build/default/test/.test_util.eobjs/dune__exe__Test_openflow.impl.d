test/test_openflow.ml: Alcotest Array Eutil Fixtures List Netsim Openflow Option Power Printf QCheck QCheck_alcotest Response Topo Traffic
