test/fixtures.ml: Array List Option Response Topo Traffic
