test/test_appsim.mli:
