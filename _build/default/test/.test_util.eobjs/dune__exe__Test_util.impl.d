test/test_util.ml: Alcotest Array Eutil Gen List Option QCheck QCheck_alcotest
