test/test_power.ml: Alcotest Array Eutil Power Printf QCheck QCheck_alcotest Topo
