test/test_appsim.ml: Alcotest Appsim Array Eutil Fixtures Lazy List Netsim Option Power Printf Response Routing Topo
