test/test_extensions.ml: Alcotest Array Eutil Filename Fixtures Lazy List Option Power Printf QCheck QCheck_alcotest Response Routing String Sys Topo Traffic
