test/test_lp.ml: Alcotest Array Gen List Lp QCheck QCheck_alcotest
