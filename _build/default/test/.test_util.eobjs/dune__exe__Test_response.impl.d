test/test_response.ml: Alcotest Array Fixtures Hashtbl Lazy List Option Power Printf Response Routing Topo Traffic
