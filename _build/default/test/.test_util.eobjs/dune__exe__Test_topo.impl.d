test/test_topo.ml: Alcotest Array Eutil List Option Printf QCheck QCheck_alcotest Queue Topo
