test/test_netsim.ml: Alcotest Array Eutil Fixtures List Netsim Power Printf QCheck QCheck_alcotest Response Topo Traffic
