(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig5    # selected sections
     REPRO_FAST=1 dune exec bench/main.exe   # reduced traces, seconds not minutes *)

let sections : (string * (unit -> unit)) list =
  [
    ("fig1a", Figures.fig1a);
    ("fig1b", Figures.fig1b);
    ("fig2a", Figures.fig2a);
    ("fig2b", Figures.fig2b);
    ("fig4", Figures.fig4);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8a", Figures.fig8a);
    ("fig8b", Figures.fig8b);
    ("fig9", Figures.fig9);
    ("latency", Figures.latency);
    ("capacity", Figures.capacity);
    ("stress", Figures.stress);
    ("ablations", Figures.ablations);
    ("deploy", Extensions.deploy);
    ("peaks", Extensions.peaks);
    ("sleep", Extensions.sleep_states);
    ("switching", Extensions.switching);
    ("butterfly", Extensions.butterfly);
    ("openflow", Extensions.openflow);
    ("eate", Extensions.eate);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          let s0 = Unix.gettimeofday () in
          f ();
          Format.printf "  [%s done in %.1f s]@." name (Unix.gettimeofday () -. s0)
      | None ->
          Format.printf "unknown section %S; available: %s@." name
            (String.concat " " (List.map fst sections)))
    requested;
  Format.printf "@.All requested sections finished in %.1f s.@." (Unix.gettimeofday () -. t0)
