bench/figures.ml: Appsim Array Eutil Float Hashtbl Lazy List Netsim Optim Option Power Report Response Routing Topo Traffic
