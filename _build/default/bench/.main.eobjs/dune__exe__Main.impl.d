bench/main.ml: Array Extensions Figures Format List Micro String Sys Unix
