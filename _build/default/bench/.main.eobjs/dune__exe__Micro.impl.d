bench/micro.ml: Analyze Array Bechamel Benchmark Format Hashtbl Instance Lazy List Measure Optim Power Printf Report Response Routing Staged Test Time Toolkit Topo Traffic
