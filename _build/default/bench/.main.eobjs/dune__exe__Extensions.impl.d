bench/extensions.ml: Array Eutil Figures Lazy List Netsim Openflow Optim Option Power Printf Report Response Topo Traffic
