bench/main.mli:
