bench/report.ml: Format Printf String Sys
