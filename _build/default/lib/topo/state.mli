(** Power-activity state of a topology: the X_i (router on) and Y_{i->j}
    (link active) decision variables of the paper's model, with the model's
    constraints maintained structurally — a router is on exactly when at least
    one of its links is active (constraints 1 and 3 of Section 2.2.1). *)

type t

val all_on : Graph.t -> t
(** Every link active. *)

val all_off : Graph.t -> t

val copy : t -> t

val set_link : Graph.t -> t -> int -> bool -> unit
(** Activate/deactivate a link (both arcs at once). *)

val link_on : t -> int -> bool
val arc_on : Graph.t -> t -> int -> bool

val node_on : t -> int -> bool
(** True iff the node has at least one active incident link. *)

val active_links : t -> int
(** Number of active links. *)

val active_nodes : t -> int

val equal : t -> t -> bool
(** Equality of the active-link sets (the routing-configuration identity used
    for the recomputation-rate metric and Figure 2a). *)

val key : t -> string
(** Canonical hashable digest of the active-link set. *)

val restrict_weight : Graph.t -> t -> (Graph.arc -> float) -> Graph.arc -> float
(** Lifts an arc-weight function to the active subgraph: inactive arcs get
    [infinity]. *)

val pp : Graph.t -> Format.formatter -> t -> unit
