type t = { link_on : bool array; active_degree : int array; mutable n_links_on : int }

let make g value =
  let nlinks = Graph.link_count g in
  let link_on = Array.make nlinks value in
  let active_degree = Array.make (Graph.node_count g) 0 in
  if value then
    for l = 0 to nlinks - 1 do
      let i, j = Graph.link_endpoints g l in
      active_degree.(i) <- active_degree.(i) + 1;
      active_degree.(j) <- active_degree.(j) + 1
    done;
  { link_on; active_degree; n_links_on = (if value then nlinks else 0) }

let all_on g = make g true
let all_off g = make g false

let copy t =
  {
    link_on = Array.copy t.link_on;
    active_degree = Array.copy t.active_degree;
    n_links_on = t.n_links_on;
  }

let set_link g t l on =
  if t.link_on.(l) <> on then begin
    t.link_on.(l) <- on;
    let i, j = Graph.link_endpoints g l in
    let d = if on then 1 else -1 in
    t.active_degree.(i) <- t.active_degree.(i) + d;
    t.active_degree.(j) <- t.active_degree.(j) + d;
    t.n_links_on <- t.n_links_on + d
  end

let link_on t l = t.link_on.(l)
let arc_on g t a = t.link_on.((Graph.arc g a).link)
let node_on t n = t.active_degree.(n) > 0
let active_links t = t.n_links_on

let active_nodes t =
  Array.fold_left (fun acc d -> if d > 0 then acc + 1 else acc) 0 t.active_degree

let equal a b = a.link_on = b.link_on

let key t =
  let n = Array.length t.link_on in
  let bytes = Bytes.make ((n + 7) / 8) '\000' in
  for l = 0 to n - 1 do
    if t.link_on.(l) then begin
      let byte = l / 8 and bit = l mod 8 in
      Bytes.set bytes byte (Char.chr (Char.code (Bytes.get bytes byte) lor (1 lsl bit)))
    end
  done;
  Bytes.to_string bytes

let restrict_weight g t weight arc =
  ignore g;
  if t.link_on.(arc.Graph.link) then weight arc else infinity

let pp g ppf t =
  Format.fprintf ppf "state(%d/%d links on, %d/%d nodes on)" t.n_links_on (Graph.link_count g)
    (active_nodes t) (Graph.node_count g)
