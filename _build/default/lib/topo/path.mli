(** Simple (loop-free) directed paths through a topology. *)

type t = { src : int; dst : int; arcs : int array }
(** Arcs in travel order; [arcs] is empty iff [src = dst]. *)

val of_arcs : Graph.t -> int list -> t
(** Builds a path from consecutive arc identifiers.
    @raise Invalid_argument if the arcs are not contiguous. *)

val hops : t -> int

val nodes : Graph.t -> t -> int array
(** Visited nodes, source first. *)

val latency : Graph.t -> t -> float
(** Sum of arc propagation latencies. *)

val bottleneck : Graph.t -> t -> float
(** Minimum arc capacity along the path; [infinity] for the empty path. *)

val links : Graph.t -> t -> int array
(** Undirected links traversed, in order. *)

val uses_link : Graph.t -> t -> int -> bool

val uses_arc : t -> int -> bool

val active : Graph.t -> State.t -> t -> bool
(** True iff every link of the path is active. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val shares_link : Graph.t -> t -> t -> bool
(** True iff the two paths traverse at least one common undirected link. *)

val pp : Graph.t -> Format.formatter -> t -> unit
(** Renders as [A-B-C]. *)
