(** Export of topologies and activity states for external tooling. *)

val to_dot :
  ?state:State.t -> ?highlight:Path.t list -> Graph.t -> string
(** Graphviz rendering: nodes labelled with their names, links annotated with
    capacity; sleeping links (per [state]) dashed and grey; [highlight] paths
    drawn bold. *)

val to_csv : Graph.t -> string
(** One line per link: [src,dst,capacity_bps,latency_s]. *)

val capacity_summary : Graph.t -> (float * int) list
(** Distinct link capacities with their multiplicities, descending. *)
