(* k-ary fat-tree topology [Al-Fares et al., SIGCOMM 2008], the datacenter
   topology of the paper's Figures 2b, 4 and 8b. k must be even. The network
   has (k/2)^2 core switches, k pods of k/2 aggregation and k/2 edge switches,
   and k/2 hosts per edge switch (k^3/4 hosts total). All links have the same
   capacity. *)

type t = {
  k : int;
  graph : Graph.t;
  hosts : int array;  (** host node ids, grouped by pod *)
  edges : int array;  (** edge switches, grouped by pod *)
  aggs : int array;  (** aggregation switches, grouped by pod *)
  cores : int array;
}

let core_count k = k * k / 4
let host_count k = k * k * k / 4

let make ?(capacity = 1e9) ?(latency = 50e-6) k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Fattree.make: k must be even and >= 2";
  let b = Graph.Builder.create () in
  let half = k / 2 in
  let cores =
    Array.init (core_count k) (fun c -> Graph.Builder.add_node b ~role:Core (Printf.sprintf "c%d" c))
  in
  let aggs = Array.make (k * half) 0 in
  let edges = Array.make (k * half) 0 in
  let hosts = Array.make (host_count k) 0 in
  for pod = 0 to k - 1 do
    for j = 0 to half - 1 do
      aggs.((pod * half) + j) <-
        Graph.Builder.add_node b ~role:Aggregation (Printf.sprintf "a%d_%d" pod j);
      edges.((pod * half) + j) <-
        Graph.Builder.add_node b ~role:Edge (Printf.sprintf "e%d_%d" pod j)
    done;
    for j = 0 to half - 1 do
      for h = 0 to half - 1 do
        hosts.((pod * half * half) + (j * half) + h) <-
          Graph.Builder.add_node b ~role:Host (Printf.sprintf "h%d_%d_%d" pod j h)
      done
    done
  done;
  (* Host to edge links. *)
  for pod = 0 to k - 1 do
    for j = 0 to half - 1 do
      let e = edges.((pod * half) + j) in
      for h = 0 to half - 1 do
        ignore
          (Graph.Builder.add_link b ~capacity ~latency
             hosts.((pod * half * half) + (j * half) + h)
             e)
      done;
      (* Edge to every aggregation switch in the pod. *)
      for a = 0 to half - 1 do
        ignore (Graph.Builder.add_link b ~capacity ~latency e aggs.((pod * half) + a))
      done
    done;
    (* Aggregation j connects to cores [j*half, j*half + half). *)
    for j = 0 to half - 1 do
      let a = aggs.((pod * half) + j) in
      for c = 0 to half - 1 do
        ignore (Graph.Builder.add_link b ~capacity ~latency a cores.((j * half) + c))
      done
    done
  done;
  { k; graph = Graph.Builder.build b; hosts; edges; aggs; cores }

let pod_of_host t h =
  let half = t.k / 2 in
  let rec find i = if t.hosts.(i) = h then i else find (i + 1) in
  find 0 / (half * half)

(* Host index (position in [hosts]) helpers used by traffic generators. *)
let host t i = t.hosts.(i)
let n_hosts t = Array.length t.hosts
