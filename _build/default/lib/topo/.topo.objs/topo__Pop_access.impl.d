lib/topo/pop_access.ml: Array Graph Printf
