lib/topo/butterfly.ml: Array Graph Printf
