lib/topo/path.mli: Format Graph State
