lib/topo/fattree.ml: Array Graph Printf
