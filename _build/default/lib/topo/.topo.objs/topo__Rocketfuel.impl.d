lib/topo/rocketfuel.ml: Array Eutil Graph Hashtbl List Printf
