lib/topo/export.ml: Array Buffer Graph Hashtbl List Option Path Printf State String
