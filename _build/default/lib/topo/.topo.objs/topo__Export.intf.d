lib/topo/export.mli: Graph Path State
