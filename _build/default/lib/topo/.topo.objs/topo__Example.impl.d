lib/topo/example.ml: Array Graph Printf
