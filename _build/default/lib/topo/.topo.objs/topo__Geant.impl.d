lib/topo/geant.ml: Array Graph Hashtbl List
