lib/topo/graph.ml: Array Format Hashtbl List Option
