lib/topo/state.ml: Array Bytes Char Format Graph
