lib/topo/path.ml: Array Format Graph State Stdlib String
