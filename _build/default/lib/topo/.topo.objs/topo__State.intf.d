lib/topo/state.mli: Format Graph
