(* Flattened butterfly topology [Abts et al., ISCA 2010], the power-efficient
   datacenter alternative the paper cites ("our framework can identify
   energy-critical paths in an arbitrary topology, including the butterfly").

   A 2-dimensional k-ary flattened butterfly: k^2 routers arranged in a k x k
   grid, each fully connected to the other routers of its row and of its
   column, with c hosts ("concentration") per router. *)

type t = {
  k : int;
  concentration : int;
  graph : Graph.t;
  routers : int array;  (** router ids, row-major *)
  hosts : int array;  (** grouped by router *)
}

let make ?(concentration = 2) ?(capacity = 1e9) ?(latency = 50e-6) k =
  if k < 2 then invalid_arg "Butterfly.make: k >= 2";
  if concentration < 1 then invalid_arg "Butterfly.make: concentration >= 1";
  let b = Graph.Builder.create () in
  let routers =
    Array.init (k * k) (fun i ->
        Graph.Builder.add_node b ~role:Core (Printf.sprintf "r%d_%d" (i / k) (i mod k)))
  in
  let hosts =
    Array.init (k * k * concentration) (fun i ->
        let r = i / concentration in
        Graph.Builder.add_node b ~role:Host
          (Printf.sprintf "h%d_%d_%d" (r / k) (r mod k) (i mod concentration)))
  in
  Array.iteri
    (fun i h -> ignore (Graph.Builder.add_link b ~capacity ~latency h routers.(i / concentration)))
    hosts;
  (* Full mesh within every row and every column. *)
  for row = 0 to k - 1 do
    for a = 0 to k - 1 do
      for bcol = a + 1 to k - 1 do
        ignore
          (Graph.Builder.add_link b ~capacity ~latency routers.((row * k) + a) routers.((row * k) + bcol))
      done
    done
  done;
  for col = 0 to k - 1 do
    for a = 0 to k - 1 do
      for brow = a + 1 to k - 1 do
        ignore
          (Graph.Builder.add_link b ~capacity ~latency routers.((a * k) + col) routers.((brow * k) + col))
      done
    done
  done;
  { k; concentration; graph = Graph.Builder.build b; routers; hosts }

let n_hosts t = Array.length t.hosts
let host t i = t.hosts.(i)
