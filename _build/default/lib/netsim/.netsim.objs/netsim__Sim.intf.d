lib/netsim/sim.mli: Power Response Traffic
