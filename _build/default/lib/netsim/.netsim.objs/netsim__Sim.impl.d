lib/netsim/sim.ml: Array Eutil Hashtbl List Option Power Response Topo Traffic
