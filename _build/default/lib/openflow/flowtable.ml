type matcher = { src : int option; dst : int option }

type action = Drop | Forward of (int * float) list

type entry = {
  priority : int;
  matcher : matcher;
  action : action;
  mutable packets : int;
  mutable bytes : float;
}

type t = { mutable table : entry list (* sorted: highest priority first *) }

let create () = { table = [] }

let add t ~priority ~matcher ~action =
  let e = { priority; matcher; action; packets = 0; bytes = 0.0 } in
  (* Stable insert: after existing entries of >= priority. *)
  let rec insert = function
    | [] -> [ e ]
    | x :: rest -> if x.priority >= priority then x :: insert rest else e :: x :: rest
  in
  t.table <- insert t.table

let matches m ~src ~dst =
  (match m.src with None -> true | Some s -> s = src)
  && match m.dst with None -> true | Some d -> d = dst

let lookup t ~src ~dst = List.find_opt (fun e -> matches e.matcher ~src ~dst) t.table

let account e ~bytes =
  e.packets <- e.packets + 1;
  e.bytes <- e.bytes +. bytes

let entries t = t.table
let size t = List.length t.table

let select e ~key =
  match e.action with
  | Drop -> None
  | Forward [] -> None
  | Forward buckets ->
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 buckets in
      if total <= 0.0 then None
      else begin
        (* Hash the key into [0, total) deterministically, then walk the
           buckets — the fixed-point arithmetic keeps proportions exact in
           the long run for integer key streams. *)
        let h = (key * 2654435761) land 0xFFFFFF in
        let x = float_of_int h /. 16777216.0 *. total in
        let rec pick acc = function
          | [] -> None
          | (arc, w) :: rest -> if acc +. w > x then Some arc else pick (acc +. w) rest
        in
        pick 0.0 buckets
      end
