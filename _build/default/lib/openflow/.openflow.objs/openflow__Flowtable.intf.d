lib/openflow/flowtable.mli:
