lib/openflow/controller.ml: Array Flowtable Hashtbl List Option Response Topo
