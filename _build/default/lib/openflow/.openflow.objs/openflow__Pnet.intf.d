lib/openflow/pnet.mli: Controller
