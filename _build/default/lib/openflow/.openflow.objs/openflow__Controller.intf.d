lib/openflow/controller.mli: Flowtable Response Topo
