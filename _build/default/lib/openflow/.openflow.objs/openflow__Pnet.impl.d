lib/openflow/pnet.ml: Array Controller Eutil Flowtable Topo
