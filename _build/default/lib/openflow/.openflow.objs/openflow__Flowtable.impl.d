lib/openflow/flowtable.ml: List
