(** The REsPoNse OpenFlow controller: compiles the installed energy-critical
    paths and the current REsPoNseTE traffic splits into per-switch flow
    tables. Recompilation is cheap (it touches only the affected pairs'
    entries), which is exactly the paper's point: the expensive path
    computation happened offline, the controller only re-weights among
    preinstalled choices. *)

type t

val create : Response.Tables.t -> t

val graph : t -> Topo.Graph.t

val program : t -> splits:(int -> int -> float array) -> unit
(** (Re)compiles every pair's entries from the given split over its paths
    (activation order, as in {!Response.Te.split}). Paths with zero weight
    are omitted. *)

val table_of : t -> int -> Flowtable.t
(** The flow table of a node. *)

val tables_installed : t -> int
(** Total number of entries across all switches (the TCAM footprint). *)

val route : t -> src:int -> dst:int -> key:int -> Topo.Path.t option
(** Data-plane walk: follow the flow tables hop by hop for a flow with the
    given select key. [None] when some switch has no matching entry (or
    drops). Used for verification and by the packet simulator. *)
