(** OpenFlow-style switch flow tables. The paper implemented REsPoNseTE in
    both OpenFlow and Click; this module is the OpenFlow-flavoured data plane:
    per-switch match/action tables with priorities, weighted multi-path
    ("select group") actions and per-entry counters. Matching is on the
    (origin, destination) pair — the granularity REsPoNse routes at. *)

type matcher = {
  src : int option;  (** origin node, [None] = wildcard *)
  dst : int option;  (** destination node, [None] = wildcard *)
}

type action =
  | Drop
  | Forward of (int * float) list
      (** weighted output arcs (an OpenFlow select group); weights need not
          be normalised *)

type entry = {
  priority : int;
  matcher : matcher;
  action : action;
  mutable packets : int;
  mutable bytes : float;
}

type t

val create : unit -> t

val add : t -> priority:int -> matcher:matcher -> action:action -> unit
(** Entries with equal priority match in insertion order. *)

val lookup : t -> src:int -> dst:int -> entry option
(** Highest-priority matching entry. Does not touch counters; the data plane
    calls {!account} when it actually forwards. *)

val account : entry -> bytes:float -> unit

val entries : t -> entry list
(** All entries, highest priority first. *)

val size : t -> int

val select : entry -> key:int -> int option
(** Deterministic weighted choice of an output arc for a flow key (an
    OpenFlow select bucket): the same key always picks the same arc for a
    given weight vector, and keys spread across arcs proportionally to
    weight. [None] for [Drop] or an empty group. *)
