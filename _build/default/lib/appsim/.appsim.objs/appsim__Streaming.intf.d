lib/appsim/streaming.mli: Eutil Netsim Power Response
