lib/appsim/web.ml: Array Eutil List Topo
