lib/appsim/streaming.ml: Array Eutil List Netsim Option Response Topo Traffic
