lib/appsim/web.mli: Topo
