(** Media-streaming workload over REsPoNse paths — the BulletMedia experiment
    of Section 5.4: a source streams at a fixed bitrate to a set of clients;
    a media block is playable when it arrives before its play-out deadline.
    The paper reports the distribution, across clients, of the percentage of
    playable blocks (Figure 9) and the mean block retrieval latency. *)

type client = { node : int; join_time : float }

type scenario = {
  source : int;
  bitrate : float;  (** bit/s per client, e.g. 600 kbit/s *)
  block_duration : float;  (** seconds of media per block *)
  startup_buffer : float;  (** play-out delay after joining *)
  clients : client list;
  duration : float;
}

type client_stats = {
  node : int;
  join_time : float;
  playable_percent : float;  (** blocks arriving before their deadline *)
  mean_block_latency : float;  (** mean send-to-arrival time, seconds *)
}

type summary = {
  per_client : client_stats list;
  playable : Eutil.Stats.boxplot;  (** distribution across clients (Figure 9) *)
  mean_block_latency : float;
  mean_power_percent : float;
}

val run :
  ?config:Netsim.Sim.config ->
  tables:Response.Tables.t ->
  power:Power.Model.t ->
  scenario ->
  summary
(** Drives {!Netsim.Sim} with demand steps at every join time and evaluates
    block deadlines from the achieved per-pair rates. *)
