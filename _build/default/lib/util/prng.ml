type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_raw t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t =
  let s = next_raw t in
  { state = s }

let float t =
  (* 53 high bits to a float in [0,1). *)
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t n =
  assert (n > 0);
  (* Rejection-free modulo is fine for our non-cryptographic needs. Keep 62
     bits so the value stays positive in OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  v mod n

let range t lo hi = lo +. ((hi -. lo) *. float t)

let gaussian t =
  let rec draw () =
    let u = float t in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let exponential t ~mean =
  let rec draw () =
    let u = float t in
    if u <= 1e-12 then draw () else u
  in
  -.mean *. log (draw ())

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k n =
  assert (k <= n);
  let all = Array.init n (fun i -> i) in
  shuffle t all;
  Array.sub all 0 k
