type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let is_empty h = h.len = 0

let size h = h.len

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h e =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap e in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let push h prio value =
  let e = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h e;
  h.data.(h.len) <- e;
  h.len <- h.len + 1;
  (* sift up *)
  let i = ref (h.len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    if less h.data.(!i) h.data.(p) then begin
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p;
      true
    end
    else false
  do
    ()
  done

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && less h.data.(l) h.data.(!m) then m := l;
        if r < h.len && less h.data.(r) h.data.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let tmp = h.data.(!m) in
          h.data.(!m) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !m
        end
      done
    end;
    Some (top.prio, top.value)
  end

let peek h = if h.len = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let clear h =
  h.len <- 0;
  h.next_seq <- 0
