(** Binary min-heap keyed by float priorities.

    Used by Dijkstra and by the discrete-event simulator's scheduler. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element. Ties are broken by
    insertion order (FIFO), which keeps the event simulator deterministic. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
