lib/util/heap.mli:
