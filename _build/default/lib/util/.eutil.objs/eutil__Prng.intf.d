lib/util/prng.mli:
