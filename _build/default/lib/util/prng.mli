(** Deterministic pseudo-random number generation (splitmix64).

    All stochastic inputs in this repository (synthetic traces, random
    origin/destination subsets, generated topologies) are driven by this
    generator so that every experiment is reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). [n] must be positive. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [lo, hi). *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [lognormal t ~mu ~sigma] is [exp (mu + sigma * gaussian t)]. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> int -> int array
(** [sample t k n] draws [k] distinct integers from [0, n), in random order.
    Requires [k <= n]. *)
