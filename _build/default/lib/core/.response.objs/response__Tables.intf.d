lib/core/tables.mli: Format Topo
