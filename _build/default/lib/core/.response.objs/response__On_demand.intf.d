lib/core/on_demand.mli: Always_on Hashtbl Power Topo Traffic
