lib/core/replay.ml: Array Critical_paths Hashtbl List Optim Option Topo Traffic
