lib/core/deploy.ml: Array List Tables Topo
