lib/core/always_on.ml: Array Hashtbl List Optim Option Power Routing Topo Traffic
