lib/core/te.ml: Array Hashtbl List Tables Topo
