lib/core/tables.ml: Array Format Hashtbl List Option Printf Topo
