lib/core/failover.mli: Hashtbl Tables Topo
