lib/core/replay.mli: Critical_paths Power Topo Traffic
