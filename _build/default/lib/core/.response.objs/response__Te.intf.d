lib/core/te.mli: Tables
