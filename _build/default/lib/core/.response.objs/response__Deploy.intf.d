lib/core/deploy.mli: Tables
