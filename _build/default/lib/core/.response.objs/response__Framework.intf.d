lib/core/framework.mli: Always_on Power Tables Topo Traffic
