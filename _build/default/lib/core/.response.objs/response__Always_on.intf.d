lib/core/always_on.mli: Hashtbl Power Topo Traffic
