lib/core/critical_paths.ml: Hashtbl List Stdlib Topo Traffic
