lib/core/critical_paths.mli: Hashtbl Topo Traffic
