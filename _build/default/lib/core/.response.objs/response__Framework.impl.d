lib/core/framework.ml: Always_on Array Failover Hashtbl List On_demand Option Power Tables Topo Traffic
