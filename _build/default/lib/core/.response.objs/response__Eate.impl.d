lib/core/eate.ml: Array Hashtbl List Optim Option Power Topo Traffic
