lib/core/eate.mli: Power Topo Traffic
