lib/core/failover.ml: Array Hashtbl List Option Routing Tables Topo
