lib/core/on_demand.ml: Always_on Array Hashtbl List Optim Option Routing Topo Traffic
