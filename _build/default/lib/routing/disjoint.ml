let default_weight arc = arc.Topo.Graph.latency

let avoiding g ?(weight = default_weight) ?(active = fun _ -> true) ~avoid ~src ~dst () =
  let banned = Hashtbl.create (List.length avoid) in
  List.iter (fun l -> Hashtbl.replace banned l ()) avoid;
  let active' arc = active arc && not (Hashtbl.mem banned arc.Topo.Graph.link) in
  Dijkstra.shortest_path g ~weight ~active:active' ~src ~dst ()

let shared_links g p others =
  let used = Hashtbl.create 16 in
  List.iter (fun o -> Array.iter (fun l -> Hashtbl.replace used l ()) (Topo.Path.links g o)) others;
  let counted = Hashtbl.create 16 in
  Array.fold_left
    (fun acc l ->
      if Hashtbl.mem used l && not (Hashtbl.mem counted l) then begin
        Hashtbl.replace counted l ();
        acc + 1
      end
      else acc)
    0 (Topo.Path.links g p)

let max_disjoint g ?(weight = default_weight) ~protect ~src ~dst () =
  let protected_links = Hashtbl.create 16 in
  List.iter
    (fun p -> Array.iter (fun l -> Hashtbl.replace protected_links l ()) (Topo.Path.links g p))
    protect;
  (* The penalty must dominate the total weight of any simple path so that
     minimising penalised weight minimises shared links first. *)
  let max_total =
    Topo.Graph.fold_arcs g ~init:0.0 ~f:(fun acc a ->
        let w = weight a in
        if w < infinity then acc +. w else acc)
  in
  let penalty = (2.0 *. max_total) +. 1.0 in
  let weight' arc =
    let w = weight arc in
    if Hashtbl.mem protected_links arc.Topo.Graph.link then w +. penalty else w
  in
  Dijkstra.shortest_path g ~weight:weight' ~src ~dst ()
