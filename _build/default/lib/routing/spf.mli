(** OSPF shortest-path-first routing with the Cisco-recommended link weights
    (inverse of capacity), the paper's OSPF-InvCap baseline. *)

val invcap : Topo.Graph.t -> Topo.Graph.arc -> float
(** InvCap weight: reference bandwidth (the largest capacity in the topology)
    divided by the arc capacity, so a 10G link weighs 1. *)

val path :
  Topo.Graph.t -> ?weight:(Topo.Graph.arc -> float) -> src:int -> dst:int -> unit ->
  Topo.Path.t option
(** Shortest path under InvCap weights (or an explicit [weight]). *)

val routes :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  pairs:(int * int) list ->
  unit ->
  (int * int, Topo.Path.t) Hashtbl.t
(** InvCap routes for the given origin-destination pairs. Runs one Dijkstra
    per distinct origin. Pairs with unreachable destinations are absent from
    the table. *)

val delay_bound_table :
  Topo.Graph.t -> pairs:(int * int) list -> beta:float -> (int * int, float) Hashtbl.t
(** Per-pair propagation-delay bounds [(1 + beta) * delay_OSPF(o, d)], the
    right-hand side of the paper's constraint (4) used by REsPoNse-lat. *)
