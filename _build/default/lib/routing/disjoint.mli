(** Failover-path computation: paths maximally disjoint from a given set of
    paths, per Section 4.3 of the paper ("construct the failover paths in a
    way that all paths combined are not vulnerable to a single link failure;
    where impossible, find the set least likely to be all affected"). *)

val avoiding :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  ?active:(Topo.Graph.arc -> bool) ->
  avoid:int list ->
  src:int ->
  dst:int ->
  unit ->
  Topo.Path.t option
(** Shortest path that strictly avoids the given undirected links, or [None]
    if removing them disconnects the pair. *)

val max_disjoint :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  protect:Topo.Path.t list ->
  src:int ->
  dst:int ->
  unit ->
  Topo.Path.t option
(** A path minimising (number of links shared with [protect], then weight):
    fully disjoint when the topology allows it, otherwise least-overlapping.
    Implemented by weighting shared links with a large additive penalty that
    dominates any real path weight. *)

val shared_links : Topo.Graph.t -> Topo.Path.t -> Topo.Path.t list -> int
(** Number of distinct undirected links the path shares with the set. *)
