let all_shortest g ?weight ?(limit = 64) ~src ~dst () =
  let weight =
    match weight with Some w -> w | None -> fun a -> a.Topo.Graph.latency
  in
  let res = Dijkstra.run g ~weight ~src () in
  if res.Dijkstra.dist.(dst) = infinity then []
  else begin
    let eps = 1e-12 in
    let target = res.Dijkstra.dist.(dst) in
    (* Enumerate paths over the shortest-path DAG by DFS from the source. *)
    let results = ref [] in
    let count = ref 0 in
    let rec dfs node acc_arcs acc_dist =
      if !count < limit then begin
        if node = dst && abs_float (acc_dist -. target) <= eps *. (1.0 +. target) then begin
          incr count;
          results := Topo.Path.of_arcs g (List.rev acc_arcs) :: !results
        end
        else
          Array.iter
            (fun aid ->
              let arc = Topo.Graph.arc g aid in
              let w = weight arc in
              let v = arc.Topo.Graph.dst in
              let nd = acc_dist +. w in
              (* Stay on the DAG: the prefix distance must match dist(v). *)
              if
                w < infinity
                && abs_float (nd -. res.Dijkstra.dist.(v)) <= eps *. (1.0 +. nd)
                && res.Dijkstra.dist.(v) +. 0.0 <= target +. eps
              then dfs v (aid :: acc_arcs) nd)
            (Topo.Graph.out_arcs g node)
      end
    in
    dfs src [] 0.0;
    List.sort Topo.Path.compare !results
  end

let split _g ~paths ~demand =
  match paths with
  | [] -> []
  | _ ->
      let share = demand /. float_of_int (List.length paths) in
      List.map (fun p -> (p, share)) paths
