lib/routing/suurballe.ml: Array Dijkstra Hashtbl List Option Topo
