lib/routing/suurballe.mli: Topo
