lib/routing/ecmp.mli: Topo
