lib/routing/disjoint.mli: Topo
