lib/routing/yen.ml: Array Dijkstra Hashtbl List Topo
