lib/routing/spf.mli: Hashtbl Topo
