lib/routing/spf.ml: Dijkstra Hashtbl List Option Topo
