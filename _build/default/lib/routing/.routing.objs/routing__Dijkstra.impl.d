lib/routing/dijkstra.ml: Array Eutil Topo
