lib/routing/ecmp.ml: Array Dijkstra List Topo
