lib/routing/yen.mli: Topo
