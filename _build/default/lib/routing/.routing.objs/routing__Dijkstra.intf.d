lib/routing/dijkstra.mli: Topo
