lib/routing/disjoint.ml: Array Dijkstra Hashtbl List Topo
