(** Equal-cost multi-path routing, the paper's datacenter baseline (Figure 4).
    ECMP spreads traffic over all shortest paths and therefore keeps every
    network element powered. *)

val all_shortest :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  ?limit:int ->
  src:int ->
  dst:int ->
  unit ->
  Topo.Path.t list
(** Every minimum-weight path from [src] to [dst] (latency weights by
    default), capped at [limit] (default 64). *)

val split :
  Topo.Graph.t -> paths:Topo.Path.t list -> demand:float -> (Topo.Path.t * float) list
(** Even hash-style split of a demand over the given equal-cost paths. *)
