(** Single-source shortest paths with pluggable arc weights and an activity
    filter, the workhorse under every routing variant in the repository. *)

type result = {
  dist : float array;  (** distance per node; [infinity] if unreachable *)
  prev_arc : int array;  (** incoming arc on the shortest-path tree; -1 at the source/unreachable *)
}

val run :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  ?active:(Topo.Graph.arc -> bool) ->
  src:int ->
  unit ->
  result
(** Dijkstra from [src]. [weight] defaults to arc latency and must be
    non-negative (an [infinity] weight excludes the arc); [active] defaults to
    everything. Ties are broken deterministically by arc identifier, so equal
    inputs always give equal trees. *)

val path_to : Topo.Graph.t -> result -> int -> Topo.Path.t option
(** Extracts the path to a destination from a {!run} result. [None] when
    unreachable; the query node must differ from the source. *)

val shortest_path :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  ?active:(Topo.Graph.arc -> bool) ->
  src:int ->
  dst:int ->
  unit ->
  Topo.Path.t option
(** One-shot convenience wrapper. *)

val distance_matrix :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  ?active:(Topo.Graph.arc -> bool) ->
  unit ->
  float array array
(** All-pairs distances ([node_count] runs of {!run}). *)
