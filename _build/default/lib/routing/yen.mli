(** Yen's algorithm for the K shortest loopless paths, used by the
    GreenTE-style heuristic (restricting the solver to k shortest paths per
    origin-destination pair) and by the latency-bounded always-on variant. *)

val k_shortest :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  ?active:(Topo.Graph.arc -> bool) ->
  src:int ->
  dst:int ->
  k:int ->
  unit ->
  Topo.Path.t list
(** At most [k] loopless paths in nondecreasing weight order (latency by
    default). Returns fewer when the graph has fewer distinct paths. *)
