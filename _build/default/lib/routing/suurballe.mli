(** Suurballe's algorithm: the minimum-total-weight pair of link-disjoint
    paths between two nodes.

    {!Disjoint.max_disjoint} finds the best failover for a {e fixed} primary
    path; Suurballe instead optimises the pair jointly, which can protect
    pairs the greedy combination cannot (the classic trap: the shortest
    primary path uses the only cut link, making any disjoint failover
    impossible even though a disjoint pair exists). Used by the failover
    ablation and available as an alternative table-construction strategy,
    in the spirit of [Kwong et al., CoNEXT 2008] cited by the paper. *)

val disjoint_pair :
  Topo.Graph.t ->
  ?weight:(Topo.Graph.arc -> float) ->
  ?active:(Topo.Graph.arc -> bool) ->
  src:int ->
  dst:int ->
  unit ->
  (Topo.Path.t * Topo.Path.t) option
(** The link-disjoint pair with minimum total weight (latency by default),
    shorter path first. [None] when no two link-disjoint paths exist. *)
