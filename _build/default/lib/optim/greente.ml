let candidate_table g ?(k = 4) ~pairs () =
  let table = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (o, d) ->
      let paths = Routing.Yen.k_shortest g ~src:o ~dst:d ~k () in
      if paths <> [] then Hashtbl.replace table (o, d) paths)
    pairs;
  table

let minimal_subset ?margin ?(k = 4) ?pinned g power tm =
  let pairs = Traffic.Matrix.pairs tm in
  let table = candidate_table g ~k ~pairs () in
  Minimal.power_down ?margin ?pinned ~reroute:(Minimal.ksp_reroute table) g power tm
