lib/optim/feasible.ml: Array Hashtbl List Option Routing Topo Traffic
