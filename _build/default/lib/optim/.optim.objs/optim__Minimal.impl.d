lib/optim/minimal.ml: Array Feasible Hashtbl List Option Power Topo Traffic
