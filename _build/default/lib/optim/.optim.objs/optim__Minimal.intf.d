lib/optim/minimal.mli: Feasible Hashtbl Power Topo Traffic
