lib/optim/feasible.mli: Topo Traffic
