lib/optim/formulation.mli: Hashtbl Power Topo Traffic
