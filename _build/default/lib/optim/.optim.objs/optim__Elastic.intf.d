lib/optim/elastic.mli: Minimal Power Topo Traffic
