lib/optim/greente.ml: Hashtbl List Minimal Routing Traffic
