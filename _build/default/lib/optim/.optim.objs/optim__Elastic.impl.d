lib/optim/elastic.ml: Array Minimal Topo Traffic
