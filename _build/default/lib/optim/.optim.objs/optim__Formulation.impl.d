lib/optim/formulation.ml: Array Hashtbl List Lp Power Printf Topo Traffic
