lib/optim/greente.mli: Hashtbl Minimal Power Topo Traffic
