lib/lp/model.ml: Array List Milp Option Simplex
