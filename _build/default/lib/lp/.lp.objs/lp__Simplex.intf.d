lib/lp/simplex.mli:
