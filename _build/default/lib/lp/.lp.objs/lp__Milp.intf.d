lib/lp/milp.mli: Simplex
