lib/lp/milp.ml: Array Float Option Simplex
