(** Dense two-phase primal simplex for linear programs in the form

      minimise c.x  subject to  A x (<= | = | >=) b,  x >= 0.

    This is the solver substrate standing in for CPLEX (see DESIGN.md). It
    uses Bland's rule, so it terminates on degenerate problems; it is exact
    enough for the small energy-aware routing instances the repository solves
    optimally, and it deliberately favours clarity over sparse-matrix speed. *)

type relation = Le | Eq | Ge

type problem = {
  n_vars : int;
  objective : float array;  (** length [n_vars]; coefficients to minimise *)
  rows : (float array * relation * float) list;  (** each row has length [n_vars] *)
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** Solves the program. Variables are implicitly bounded below by 0; upper
    bounds must be expressed as rows. *)
