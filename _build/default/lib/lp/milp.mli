(** Branch-and-bound mixed-integer solver on top of {!Simplex}.

    Sufficient for the exact energy-aware routing instances used to validate
    the heuristics on small topologies (the paper notes CPLEX itself needs
    hours on medium ISP topologies — exactness at scale is not the point). *)

type problem = {
  lp : Simplex.problem;
  integer : bool array;  (** per-variable integrality flags, length [n_vars] *)
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded
  | Node_limit  (** search stopped before proving optimality *)

val solve : ?max_nodes:int -> problem -> outcome
(** Depth-first branch and bound, branching on the most fractional integer
    variable; [max_nodes] (default 50_000) bounds the search tree. If an
    incumbent exists when the limit hits, it is returned as [Optimal]. *)
