let to_csv trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "interval,%.6f\n" trace.Trace.interval);
  Trace.iter trace ~f:(fun i _ tm ->
      Matrix.iter_flows tm ~f:(fun o d v ->
          Buffer.add_string buf (Printf.sprintf "%d,%d,%d,%.3f\n" i o d v)));
  Buffer.contents buf

let of_csv ~n text =
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "") in
  match lines with
  | [] -> invalid_arg "Trace_io.of_csv: empty"
  | header :: rows ->
      let interval =
        match String.split_on_char ',' header with
        | [ "interval"; v ] -> (
            match float_of_string_opt v with
            | Some f when f > 0.0 -> f
            | _ -> invalid_arg "Trace_io.of_csv: bad interval")
        | _ -> invalid_arg "Trace_io.of_csv: missing header"
      in
      let parsed =
        List.map
          (fun line ->
            match String.split_on_char ',' line with
            | [ i; o; d; v ] -> (
                match
                  (int_of_string_opt i, int_of_string_opt o, int_of_string_opt d, float_of_string_opt v)
                with
                | Some i, Some o, Some d, Some v when i >= 0 && o >= 0 && d >= 0 && o < n && d < n
                  ->
                    (i, o, d, v)
                | _ -> invalid_arg ("Trace_io.of_csv: bad row " ^ line))
            | _ -> invalid_arg ("Trace_io.of_csv: bad row " ^ line))
          rows
      in
      let n_intervals = 1 + List.fold_left (fun acc (i, _, _, _) -> max acc i) 0 parsed in
      let tms = Array.init n_intervals (fun _ -> Matrix.create n) in
      List.iter (fun (i, o, d, v) -> Matrix.add_to tms.(i) o d v) parsed;
      Trace.make ~interval tms

let save trace path =
  let oc = open_out path in
  (try output_string oc (to_csv trace) with e -> close_out oc; raise e);
  close_out oc

let load ~n path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  of_csv ~n content
