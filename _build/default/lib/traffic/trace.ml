type t = { start : float; interval : float; tms : Matrix.t array }

let make ?(start = 0.0) ~interval tms =
  if Array.length tms = 0 then invalid_arg "Trace.make: empty";
  if interval <= 0.0 then invalid_arg "Trace.make: interval";
  { start; interval; tms }

let length t = Array.length t.tms
let at t i = t.tms.(i)
let time_of t i = t.start +. (float_of_int i *. t.interval)

let iter t ~f = Array.iteri (fun i tm -> f i (time_of t i) tm) t.tms

let subsample t ~every =
  if every <= 0 then invalid_arg "Trace.subsample";
  let n = (length t + every - 1) / every in
  let tms = Array.init n (fun i -> t.tms.(i * every)) in
  { start = t.start; interval = t.interval *. float_of_int every; tms }

let peak t =
  let n = Matrix.size t.tms.(0) in
  let acc = Matrix.create n in
  Array.iter
    (fun tm ->
      Matrix.iter_flows tm ~f:(fun o d v -> if v > Matrix.get acc o d then Matrix.set acc o d v))
    t.tms;
  acc

let mean_total t =
  Array.fold_left (fun acc tm -> acc +. Matrix.total tm) 0.0 t.tms /. float_of_int (length t)
