(** Trace statistics backing the traffic analysis of Section 3. *)

val out_traffic : Matrix.t -> float array
(** Per-node outgoing volume. *)

val out_traffic_changes : Trace.t -> float array
(** Relative change, in percent, of each node's outgoing traffic between
    consecutive intervals — the quantity whose CCDF is the paper's Figure 1a
    ("traffic deviation in 5-min period (out)"). Nodes with no outgoing
    traffic in the earlier interval are skipped. *)

val change_ccdf : Trace.t -> thresholds:float list -> (float * float) list
(** CCDF of {!out_traffic_changes} at the given percentage thresholds:
    [(threshold, percent of samples >= threshold)]. *)

val fraction_changing_by : Trace.t -> float -> float
(** Fraction (0..1) of samples changing by at least the given percentage —
    e.g. the paper's "in almost 50 % of cases the traffic changes by at least
    20 % over a 5-min interval". *)
