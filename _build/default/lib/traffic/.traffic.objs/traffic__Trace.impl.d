lib/traffic/trace.ml: Array Matrix
