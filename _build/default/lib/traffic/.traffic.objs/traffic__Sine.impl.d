lib/traffic/sine.ml: Float List Matrix Topo
