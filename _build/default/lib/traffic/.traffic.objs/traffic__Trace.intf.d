lib/traffic/trace.mli: Matrix
