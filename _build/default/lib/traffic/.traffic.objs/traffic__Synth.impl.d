lib/traffic/synth.ml: Array Eutil Float Gravity Hashtbl List Matrix Topo Trace
