lib/traffic/peaks.ml: Array List Matrix Trace
