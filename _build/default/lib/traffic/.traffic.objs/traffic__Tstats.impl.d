lib/traffic/tstats.ml: Array Eutil List Matrix Trace
