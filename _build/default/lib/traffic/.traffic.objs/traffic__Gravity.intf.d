lib/traffic/gravity.mli: Matrix Topo
