lib/traffic/synth.mli: Topo Trace
