lib/traffic/tstats.mli: Matrix Trace
