lib/traffic/trace_io.mli: Trace
