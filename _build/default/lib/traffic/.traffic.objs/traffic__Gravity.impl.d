lib/traffic/gravity.ml: Array Eutil List Matrix Topo
