lib/traffic/matrix.mli:
