lib/traffic/matrix.ml: Array Hashtbl List Option
