lib/traffic/sine.mli: Matrix Topo
