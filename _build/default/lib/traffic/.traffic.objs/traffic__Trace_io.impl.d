lib/traffic/trace_io.ml: Array Buffer List Matrix Printf String Trace
