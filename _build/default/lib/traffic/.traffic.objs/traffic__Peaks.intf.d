lib/traffic/peaks.mli: Trace
