type episode = { start : float; duration : float; peak_volume : float }

let peak_episodes trace ~threshold =
  if threshold <= 0.0 || threshold > 1.0 then invalid_arg "Peaks.peak_episodes: threshold";
  let totals = Array.init (Trace.length trace) (fun i -> Matrix.total (Trace.at trace i)) in
  let max_total = Array.fold_left max 0.0 totals in
  let bar = threshold *. max_total in
  let episodes = ref [] in
  let current = ref None in
  let close i =
    match !current with
    | None -> ()
    | Some (start_idx, vol) ->
        episodes :=
          {
            start = Trace.time_of trace start_idx;
            duration = float_of_int (i - start_idx) *. trace.Trace.interval;
            peak_volume = vol;
          }
          :: !episodes;
        current := None
  in
  Array.iteri
    (fun i total ->
      if total >= bar then begin
        match !current with
        | None -> current := Some (i, total)
        | Some (s, v) -> current := Some (s, max v total)
      end
      else close i)
    totals;
  close (Trace.length trace);
  List.rev !episodes

let mean_peak_duration trace ~threshold =
  match peak_episodes trace ~threshold with
  | [] -> 0.0
  | eps ->
      List.fold_left (fun acc e -> acc +. e.duration) 0.0 eps /. float_of_int (List.length eps)

let longest_peak trace ~threshold =
  List.fold_left (fun acc e -> max acc e.duration) 0.0 (peak_episodes trace ~threshold)

let fraction_of_time_in_peak trace ~threshold =
  let total_in =
    List.fold_left (fun acc e -> acc +. e.duration) 0.0 (peak_episodes trace ~threshold)
  in
  total_in /. (float_of_int (Trace.length trace) *. trace.Trace.interval)
