let out_traffic tm =
  let n = Matrix.size tm in
  let out = Array.make n 0.0 in
  Matrix.iter_flows tm ~f:(fun o _ v -> out.(o) <- out.(o) +. v);
  out

let out_traffic_changes trace =
  let samples = ref [] in
  let prev = ref None in
  Trace.iter trace ~f:(fun _ _ tm ->
      let out = out_traffic tm in
      (match !prev with
      | None -> ()
      | Some before ->
          Array.iteri
            (fun i x ->
              if before.(i) > 0.0 then begin
                let change = 100.0 *. abs_float (x -. before.(i)) /. before.(i) in
                samples := change :: !samples
              end)
            out);
      prev := Some out);
  Array.of_list (List.rev !samples)

let change_ccdf trace ~thresholds =
  Eutil.Stats.ccdf (out_traffic_changes trace) thresholds

let fraction_changing_by trace threshold =
  let xs = out_traffic_changes trace in
  if Array.length xs = 0 then 0.0
  else begin
    let c = Array.fold_left (fun acc x -> if x >= threshold then acc + 1 else acc) 0 xs in
    float_of_int c /. float_of_int (Array.length xs)
  end
