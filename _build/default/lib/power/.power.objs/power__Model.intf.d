lib/power/model.mli: Topo
