lib/power/sleep.ml: List
