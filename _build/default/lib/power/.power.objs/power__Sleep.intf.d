lib/power/sleep.mli:
