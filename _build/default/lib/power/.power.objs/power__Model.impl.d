lib/power/model.ml: Topo
