(** Power models for network elements, after Section 2.2.1 and the
    "Power consumption model" paragraph of Section 5.1.

    The network power under an activity state is
    [sum_i X_i (Pc(i) + sum_{i->j} Y_{i->j} (Pl(i->j) + Pa(i->j)))]:
    a powered router pays its chassis cost, and every active link pays the
    port cost at both ends plus the optical amplifier cost. An element whose
    traffic has been removed enters a low-power state of negligible
    consumption [29]. *)

type t = {
  description : string;
  chassis : int -> float;  (** Pc(i), Watts, for node [i] when powered *)
  port : Topo.Graph.arc -> float;  (** Pl(i->j), Watts, for the port at [arc.src] *)
  amplifier : int -> float;  (** Pa for the undirected link, Watts *)
}

val cisco12000 : Topo.Graph.t -> t
(** Representative current hardware: Cisco 12000-series configuration with a
    600 W chassis (~60 % of the router budget) and 60-174 W line cards
    depending on the interface rate (OC3..OC192); 1.2 W optical repeaters
    every 80 km, derived from the link's propagation latency. *)

val alternative_hw : Topo.Graph.t -> t
(** The paper's forward-looking model: the always-on (chassis) power budget
    reduced by a factor of 10. *)

val commodity_dc : ?peak:float -> Topo.Graph.t -> t
(** Commodity datacenter switches (fat-tree experiments): fixed overheads of
    fans, switch chips and transceivers amount to ~90 % of the peak budget
    ([peak], default 150 W) even with no traffic; the remainder is spread over
    the ports. Hosts consume no network power. *)

val link_power : t -> Topo.Graph.t -> int -> float
(** Power of one active undirected link: both ports plus amplifiers. *)

val node_power : t -> Topo.Graph.t -> int -> float
(** Chassis power of a node when powered (0 for hosts). *)

val total : t -> Topo.Graph.t -> Topo.State.t -> float
(** Network power under the given activity state, Watts. *)

val full : t -> Topo.Graph.t -> float
(** Power with every element active — the "original power" baseline of the
    paper's figures. *)

val percent_of_full : t -> Topo.Graph.t -> Topo.State.t -> float
(** [100 * total / full], the y-axis of Figures 4, 5, 6 and 8a. *)

val state_of_loads : Topo.Graph.t -> (int -> float) -> Topo.State.t
(** Activity state induced by per-link carried load: a link is active iff it
    carries strictly positive traffic (sleeping otherwise), and routers follow
    constraint (3). *)
