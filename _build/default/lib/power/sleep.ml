type state = {
  name : string;
  power_fraction : float;
  wake_time : float;
  transition_energy : float;
}

let lpi = { name = "LPI"; power_fraction = 0.1; wake_time = 16e-6; transition_energy = 1e-5 }
let nap = { name = "nap"; power_fraction = 0.05; wake_time = 10e-3; transition_energy = 5e-3 }
let deep = { name = "deep"; power_fraction = 0.02; wake_time = 2.0; transition_energy = 1.0 }

(* For a gap of length T (at active power 1 W): staying awake costs T.
   Sleeping costs (T - wake) * fraction + wake * 1 + transition_energy.
   Break-even where they are equal. *)
let breakeven_gap s =
  if s.power_fraction >= 1.0 then infinity
  else
    ((s.wake_time *. (1.0 -. s.power_fraction)) +. s.transition_energy)
    /. (1.0 -. s.power_fraction)

let gaps_of_busy ~busy ~horizon =
  let rec build cursor = function
    | [] -> if cursor < horizon then [ (cursor, horizon) ] else []
    | (b0, b1) :: rest ->
        if b0 < cursor -. 1e-12 then invalid_arg "Sleep.gaps_of_busy: unsorted busy periods";
        let tail = build (max cursor b1) rest in
        if b0 > cursor then (cursor, b0) :: tail else tail
  in
  build 0.0 busy

let gap_energy ~active_power ~states gap_len =
  (* Best achievable energy for one idle gap. *)
  let awake = gap_len *. active_power in
  List.fold_left
    (fun best s ->
      if gap_len <= s.wake_time then best
      else begin
        let asleep =
          ((gap_len -. s.wake_time) *. s.power_fraction *. active_power)
          +. (s.wake_time *. active_power)
          +. (s.transition_energy *. active_power)
        in
        min best asleep
      end)
    awake states

let energy ~active_power ~states ~busy ~horizon =
  let busy_time = List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 busy in
  let gaps = gaps_of_busy ~busy ~horizon in
  let idle_energy =
    List.fold_left (fun acc (a, b) -> acc +. gap_energy ~active_power ~states (b -. a)) 0.0 gaps
  in
  (busy_time *. active_power) +. idle_energy

let savings_percent ~active_power ~states ~busy ~horizon =
  let on = active_power *. horizon in
  if on <= 0.0 then 0.0 else 100.0 *. (1.0 -. (energy ~active_power ~states ~busy ~horizon /. on))

let periodic_busy ~utilisation ~period ~horizon =
  if utilisation < 0.0 || utilisation > 1.0 then invalid_arg "Sleep.periodic_busy: utilisation";
  if period <= 0.0 then invalid_arg "Sleep.periodic_busy: period";
  let n = int_of_float (ceil (horizon /. period)) in
  List.init n (fun i ->
      let start = float_of_int i *. period in
      (start, min horizon (start +. (utilisation *. period))))
  |> List.filter (fun (a, b) -> b > a)
