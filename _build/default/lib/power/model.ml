type t = {
  description : string;
  chassis : int -> float;
  port : Topo.Graph.arc -> float;
  amplifier : int -> float;
}

(* Line-card power by interface rate, W: OC3 / OC12 / OC48 / OC192. *)
let linecard_watts capacity =
  if capacity >= 9e9 then 174.0
  else if capacity >= 2e9 then 140.0
  else if capacity >= 5e8 then 80.0
  else 60.0

(* 1.2 W optical repeater every 80 km; distance from propagation latency at
   ~200 km/ms in fibre. *)
let amplifier_watts g l =
  let km = Topo.Graph.link_latency g l *. 200_000.0 in
  1.2 *. floor (km /. 80.0)

let cisco_chassis = 600.0

let cisco12000 g =
  {
    description = "Cisco 12000-series (chassis 600 W, linecards 60-174 W)";
    chassis =
      (fun i -> if Topo.Graph.role g i = Topo.Graph.Host then 0.0 else cisco_chassis);
    port =
      (fun arc ->
        if Topo.Graph.role g arc.Topo.Graph.src = Topo.Graph.Host then 0.0
        else linecard_watts arc.Topo.Graph.capacity);
    amplifier = (fun l -> amplifier_watts g l);
  }

let alternative_hw g =
  let base = cisco12000 g in
  {
    base with
    description = "alternative hardware (always-on chassis budget / 10)";
    chassis = (fun i -> base.chassis i /. 10.0);
  }

let commodity_dc ?(peak = 150.0) g =
  {
    description = "commodity datacenter switch (90% fixed overhead)";
    chassis =
      (fun i -> if Topo.Graph.role g i = Topo.Graph.Host then 0.0 else 0.9 *. peak);
    port =
      (fun arc ->
        let src = arc.Topo.Graph.src in
        if Topo.Graph.role g src = Topo.Graph.Host then 0.0
        else begin
          let ports = max 1 (Topo.Graph.degree g src) in
          0.1 *. peak /. float_of_int ports
        end);
    amplifier = (fun _ -> 0.0);
  }

let link_power m g l =
  let a1, a2 = Topo.Graph.arcs_of_link g l in
  m.port (Topo.Graph.arc g a1) +. m.port (Topo.Graph.arc g a2) +. m.amplifier l

let node_power m _g i = m.chassis i

let total m g st =
  let nodes =
    Topo.Graph.fold_nodes g ~init:0.0 ~f:(fun acc i ->
        if Topo.State.node_on st i then acc +. m.chassis i else acc)
  in
  Topo.Graph.fold_links g ~init:nodes ~f:(fun acc l ->
      if Topo.State.link_on st l then acc +. link_power m g l else acc)

let full m g = total m g (Topo.State.all_on g)

let percent_of_full m g st =
  let f = full m g in
  if f <= 0.0 then 0.0 else 100.0 *. total m g st /. f

let state_of_loads g load =
  let st = Topo.State.all_off g in
  Topo.Graph.iter_links g ~f:(fun l -> if load l > 0.0 then Topo.State.set_link g st l true);
  st
