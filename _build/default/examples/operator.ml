(* Operator workflow (Section 4.5): precompute energy-critical paths for an
   ISP, check they fit real deployment constraints (MPLS tunnel budgets,
   memory-limited routers), quantify robustness to topology changes, and
   export the always-on footprint for inspection.

     dune exec examples/operator.exe            # summary on stdout
     dune exec examples/operator.exe -- --dot   # also writes abovenet.dot *)

let () =
  let write_dot = Array.exists (fun a -> a = "--dot") Sys.argv in
  let g = Topo.Rocketfuel.make Topo.Rocketfuel.abovenet in
  let power = Power.Model.cisco12000 g in
  let nodes = Topo.Graph.traffic_nodes g in
  let pairs =
    Array.to_list nodes
    |> List.concat_map (fun o ->
           Array.to_list nodes |> List.filter_map (fun d -> if o <> d then Some (o, d) else None))
  in
  Format.printf "Abovenet-like ISP: %a@." Topo.Graph.pp g;
  List.iter
    (fun (c, n) -> Format.printf "  %2d links at %.0f Mbit/s@." n (c /. 1e6))
    (Topo.Export.capacity_summary g);

  (* 1. Precompute once. *)
  let tables = Response.Framework.precompute g power ~pairs in
  Format.printf "@.Installed %a@." Response.Tables.pp tables;

  (* 2. Does this fit the routers we actually own? *)
  let stats = Response.Deploy.tunnel_stats tables in
  Format.printf "@.MPLS head-end tunnels: worst router needs %d (limit ~600) -> %s@."
    stats.Response.Deploy.max_per_node
    (if Response.Deploy.fits_mpls tables then "deployable" else "NOT deployable");

  (* 3. What if the routers only hold two tables (Dual Topology Routing)? *)
  let restricted = Response.Deploy.restrict tables ~max_tables:2 in
  Format.printf "Two-table restriction: single-failure coverage %.1f%% (vs %.1f%% with all paths)@."
    (100.0 *. Response.Deploy.single_failure_coverage restricted)
    (100.0 *. Response.Deploy.single_failure_coverage tables);

  (* 4. When would we have to recompute? Simulate maintenance failures. *)
  let rng = Eutil.Prng.create 99 in
  Format.printf "@.Topology-change policy (recompute when >5%% of pairs lose all paths):@.";
  List.iter
    (fun k ->
      let failed = Array.to_list (Eutil.Prng.sample rng k (Topo.Graph.link_count g)) in
      Format.printf "  %2d random links down: %.1f%% pairs covered -> %s@." k
        (100.0 *. Response.Deploy.coverage_after_failures tables ~failed)
        (if Response.Deploy.recompute_warranted tables ~failed then "recompute"
         else "keep tables"))
    [ 1; 4; 12 ];

  (* 5. Export the always-on footprint for review. *)
  let ao = Response.Tables.always_on_state tables in
  Format.printf "@.Always-on footprint: %a (%.1f%% of full power)@." (Topo.State.pp g) ao
    (Power.Model.percent_of_full power g ao);
  if write_dot then begin
    let dot = Topo.Export.to_dot ~state:ao g in
    let oc = open_out "abovenet.dot" in
    output_string oc dot;
    close_out oc;
    Format.printf "Wrote abovenet.dot (sleeping links dashed; render with `dot -Tsvg`).@."
  end
  else Format.printf "Re-run with --dot to export a Graphviz rendering.@."
