examples/operator.mli:
