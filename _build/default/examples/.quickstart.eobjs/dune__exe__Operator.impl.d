examples/operator.ml: Array Eutil Format List Power Response Sys Topo
