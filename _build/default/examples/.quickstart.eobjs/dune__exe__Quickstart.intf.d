examples/quickstart.mli:
