examples/failover.mli:
