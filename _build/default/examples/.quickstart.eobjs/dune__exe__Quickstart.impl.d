examples/quickstart.ml: Format List Option Power Printf Response Topo Traffic
