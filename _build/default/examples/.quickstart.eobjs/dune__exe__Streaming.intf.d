examples/streaming.mli:
