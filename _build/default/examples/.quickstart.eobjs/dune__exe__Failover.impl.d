examples/failover.ml: Array Format Netsim Option Power Response Topo Traffic
