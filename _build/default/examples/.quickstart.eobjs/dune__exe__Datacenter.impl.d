examples/datacenter.ml: Array Format List Netsim Power Response Topo Traffic
