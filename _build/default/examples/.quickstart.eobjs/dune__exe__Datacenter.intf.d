examples/datacenter.mli:
