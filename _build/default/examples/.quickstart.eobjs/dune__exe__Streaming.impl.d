examples/streaming.ml: Appsim Array Eutil Format Hashtbl List Netsim Option Power Response Routing Topo
