(* Small reporting helpers shared by the figure benches. *)

let section title =
  let bar = String.make 74 '=' in
  Format.printf "@.%s@.%s@.%s@." bar title bar

let subsection title = Format.printf "@.--- %s ---@." title

let row fmt = Format.printf fmt

let kv key value = Format.printf "  %-44s %s@." key value

let kvf key fmt = Format.ksprintf (kv key) fmt

(* Fast mode shrinks trace lengths so the full harness runs in seconds; the
   default regenerates every figure at full scale. *)
let fast = Sys.getenv_opt "REPRO_FAST" <> None

let note fmt = Format.printf ("  note: " ^^ fmt ^^ "@.")

let time_of_day seconds =
  (* Clamp rather than truncate: int_of_float rounds towards zero, so a
     negative input would otherwise render as "day 1 -1:-1". NaN compares
     false against everything and also clamps to zero. *)
  let seconds = if seconds > 0.0 then seconds else 0.0 in
  let day = int_of_float (seconds /. 86_400.0) in
  let rem = seconds -. (float_of_int day *. 86_400.0) in
  let h = int_of_float (rem /. 3600.0) in
  let m = int_of_float ((rem -. (float_of_int h *. 3600.0)) /. 60.0) in
  Printf.sprintf "day %d %02d:%02d" (day + 1) h m
