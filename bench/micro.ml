(* Bechamel micro-benchmarks for the key algorithms — substantiating the
   paper's scalability argument: the expensive optimisation happens once,
   offline; the online element is a cheap probe-driven decision. *)

open Bechamel
open Toolkit

let geant = Topo.Geant.make ()
let geant_power = Power.Model.cisco12000 geant

let pairs =
  let nodes = Topo.Graph.traffic_nodes geant in
  Array.to_list nodes
  |> List.concat_map (fun o ->
         Array.to_list nodes |> List.filter_map (fun d -> if o <> d then Some (o, d) else None))

let tm = Traffic.Gravity.make geant ~total:(Eutil.Units.bps 20e9) ()

let tables = lazy (Response.Framework.precompute geant geant_power ~pairs)

let tests () =
  let dijkstra =
    Test.make ~name:"dijkstra geant"
      (Staged.stage (fun () -> ignore (Routing.Dijkstra.run geant ~src:0 ())))
  in
  let yen =
    Test.make ~name:"yen k=4 geant"
      (Staged.stage (fun () ->
           ignore (Routing.Yen.k_shortest geant ~src:0 ~dst:20 ~k:4 ())))
  in
  let greedy =
    Test.make ~name:"minimal subset (greedy, geant)"
      (Staged.stage (fun () -> ignore (Optim.Minimal.power_down geant geant_power tm)))
  in
  let greente =
    Test.make ~name:"minimal subset (greente, geant)"
      (Staged.stage (fun () -> ignore (Optim.Greente.minimal_subset geant geant_power tm)))
  in
  let always_on =
    Test.make ~name:"always-on computation (geant)"
      (Staged.stage (fun () ->
           ignore (Response.Always_on.compute geant geant_power ~pairs ())))
  in
  let evaluate =
    let t = Lazy.force tables in
    Test.make ~name:"quasi-static evaluation (geant)"
      (Staged.stage (fun () -> ignore (Response.Framework.evaluate t geant_power tm)))
  in
  let te_probe =
    let t = Lazy.force tables in
    let te = Response.Te.create t Response.Te.default_config in
    let o, d = List.hd pairs in
    Test.make ~name:"REsPoNseTE probe decision"
      (Staged.stage (fun () ->
           ignore
             (Response.Te.on_probe te ~origin:o ~dest:d ~now:1.0
                ~link_util:(fun _ -> 0.6)
                ~link_usable:(fun _ -> true))))
  in
  [ dijkstra; yen; te_probe; evaluate; greente; greedy; always_on ]

let run () =
  Report.section "Micro-benchmarks (Bechamel): offline vs online costs";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Format.printf "  %-36s %s@." "algorithm" "time per run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              let pretty =
                if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
                else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                else Printf.sprintf "%.0f ns" est
              in
              Format.printf "  %-36s %s@." name pretty
          | _ -> Format.printf "  %-36s (no estimate)@." name)
        results)
    (tests ());
  Report.note "the online probe decision is ~6 orders of magnitude cheaper than";
  Report.note "recomputing the minimal subset - the core scalability claim"
