(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig5    # selected sections
     dune exec bench/main.exe -- --json BENCH_obs.json fig5 micro
     REPRO_FAST=1 dune exec bench/main.exe   # reduced traces, seconds not minutes *)

let sections : (string * (unit -> unit)) list =
  [
    ("fig1a", Figures.fig1a);
    ("fig1b", Figures.fig1b);
    ("fig2a", Figures.fig2a);
    ("fig2b", Figures.fig2b);
    ("fig4", Figures.fig4);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8a", Figures.fig8a);
    ("fig8b", Figures.fig8b);
    ("fig9", Figures.fig9);
    ("latency", Figures.latency);
    ("capacity", Figures.capacity);
    ("stress", Figures.stress);
    ("ablations", Figures.ablations);
    ("deploy", Extensions.deploy);
    ("peaks", Extensions.peaks);
    ("sleep", Extensions.sleep_states);
    ("switching", Extensions.switching);
    ("butterfly", Extensions.butterfly);
    ("openflow", Extensions.openflow);
    ("eate", Extensions.eate);
    ("chaos", Extensions.chaos);
    ("parallel", Extensions.parallel);
    ("cost", Extensions.cost);
    ("analyze", Extensions.analyze);
    ("serve", Servebench.serve);
    ("micro", Micro.run);
  ]

let valid_sections () = String.concat " " (List.map fst sections)

(* Sections are timed with Obs.Span so the harness shares the library's
   monotonic timing path; with --json the spans and every metric the run
   touched land in the report file. *)
let emit_json path timings total_s =
  let section_json (name, dur) =
    Printf.sprintf "{\"name\":\"%s\",\"seconds\":%.6f}" (Obs.Export.json_escape name) dur
  in
  let samples = Obs.Registry.snapshot Obs.Registry.default in
  (* Wall-clocks from the certified fan-outs ("parallel" section): honest
     numbers for this host's core count, keyed by workload and job count. *)
  let parallel_json =
    match !Extensions.parallel_timings with
    | [] -> ""
    | ts ->
        Printf.sprintf ",\"parallel\":[%s]"
          (String.concat ","
             (List.map
                (fun (workload, jobs, dur) ->
                  Printf.sprintf "{\"workload\":\"%s\",\"jobs\":%d,\"seconds\":%.6f}"
                    (Obs.Export.json_escape workload) jobs dur)
                ts))
  in
  (* Before/after wall-clocks from the Check.Cost campaign ("cost"
     section): uncached vs memoized precompute and cold vs warm-started
     LP re-solves. *)
  let cost_json =
    match !Extensions.cost_timings with
    | [] -> ""
    | ts ->
        Printf.sprintf ",\"cost\":[%s]"
          (String.concat ","
             (List.map
                (fun (workload, dur) ->
                  Printf.sprintf "{\"workload\":\"%s\",\"seconds\":%.6f}"
                    (Obs.Export.json_escape workload) dur)
                ts))
  in
  (* Per-pass wall-clocks of the self-hosted static analysis ("analyze"
     section): what each `respctl analyze` pass costs over the repo's
     own sources. *)
  let analyze_json =
    match !Extensions.analyze_timings with
    | [] -> ""
    | ts ->
        Printf.sprintf ",\"analyze\":[%s]"
          (String.concat ","
             (List.map
                (fun (pass, dur) ->
                  Printf.sprintf "{\"pass\":\"%s\",\"seconds\":%.6f}"
                    (Obs.Export.json_escape pass) dur)
                ts))
  in
  (* Loopback serving sweep ("serve" section): closed-loop throughput and
     latency percentiles against an in-process respctld, per client
     connection count. *)
  let serve_json =
    match !Servebench.serve_timings with
    | [] -> ""
    | ts ->
        Printf.sprintf ",\"serve\":[%s]"
          (String.concat ","
             (List.map
                (fun (conns, (r : Serve.Load.report)) ->
                  Printf.sprintf
                    "{\"conns\":%d,\"completed\":%d,\"failed\":%d,\"qps\":%.1f,\
                     \"p50_ms\":%.4f,\"p90_ms\":%.4f,\"p99_ms\":%.4f}"
                    conns r.Serve.Load.completed r.Serve.Load.failed r.Serve.Load.qps
                    r.Serve.Load.p50_ms r.Serve.Load.p90_ms r.Serve.Load.p99_ms)
                ts))
  in
  let doc =
    Printf.sprintf "{\"sections\":[%s],\"total_seconds\":%.6f%s%s%s%s,\"obs\":%s}"
      (String.concat "," (List.map section_json timings))
      total_s parallel_json cost_json analyze_json serve_json
      (String.trim (Obs.Export.to_json samples))
  in
  (match Obs.Export.validate_json doc with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "bench: JSON report failed validation: %s\n" e;
      exit 1);
  Out_channel.with_open_text path (fun oc ->
      output_string oc doc;
      output_char oc '\n');
  Format.printf "wrote %s@." path

let () =
  let rec parse json names = function
    | [] -> (json, List.rev names)
    | [ "--json" ] ->
        prerr_endline "bench: --json requires a file argument";
        exit 2
    | "--json" :: path :: rest -> parse (Some path) names rest
    | name :: rest -> parse json (name :: names) rest
  in
  let json, names = parse None [] (List.tl (Array.to_list Sys.argv)) in
  let requested = match names with [] -> List.map fst sections | ns -> ns in
  (* A typo'd section name must fail loudly up front, not be skipped after
     hours of benching. *)
  (match List.filter (fun n -> not (List.mem_assoc n sections)) requested with
  | [] -> ()
  | unknown ->
      List.iter (fun n -> Printf.eprintf "bench: unknown section %S\n" n) unknown;
      Printf.eprintf "valid sections: %s\n" (valid_sections ());
      exit 2);
  if json <> None then Obs.set_enabled true;
  let timings = ref [] in
  let (), total_s =
    Obs.Span.timed "bench.total" (fun () ->
        List.iter
          (fun name ->
            match List.assoc_opt name sections with
            | None -> () (* unreachable: validated above *)
            | Some f ->
                let (), dur = Obs.Span.timed ("bench." ^ name) f in
                timings := (name, dur) :: !timings;
                Format.printf "  [%s done in %.1f s]@." name dur)
          requested)
  in
  Format.printf "@.All requested sections finished in %.1f s.@." total_s;
  match json with
  | None -> ()
  | Some path -> emit_json path (List.rev !timings) total_s
