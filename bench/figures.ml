(* One function per table/figure of the paper's evaluation. Each prints the
   rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured. *)

module G = Topo.Graph
module State = Topo.State
module Path = Topo.Path
module Matrix = Traffic.Matrix
module Sim = Netsim.Sim
module U = Eutil.Units
open Report

let all_pairs g =
  let nodes = G.traffic_nodes g in
  Array.to_list nodes
  |> List.concat_map (fun o ->
         Array.to_list nodes |> List.filter_map (fun d -> if o <> d then Some (o, d) else None))

(* Shared corpora, computed lazily so `--only` runs stay cheap. *)

let geant = lazy (Topo.Geant.make ())
let geant_power = lazy (Power.Model.cisco12000 (Lazy.force geant))

let geant_days = if fast then 2 else 15

let geant_pairs =
  lazy (Traffic.Gravity.random_node_pairs (Lazy.force geant) ~seed:24 ~fraction:0.7)

let geant_trace =
  lazy
    (Traffic.Synth.geant_like (Lazy.force geant) ~days:geant_days
       ~pairs:(Lazy.force geant_pairs) ())

let geant_replay =
  lazy
    (let g = Lazy.force geant in
     Response.Replay.run g (Lazy.force geant_power) (Lazy.force geant_trace))

(* ------------------------------------------------------------------ *)
(* Figure 1a: CCDF of 5-minute traffic change in a Google datacenter.  *)

let fig1a () =
  section "Figure 1a - traffic deviation in 5-min periods (Google-DC-like trace)";
  let days = if fast then 2 else 8 in
  let n = 40 in
  let rng = Eutil.Prng.create 5 in
  let pairs =
    List.init 60 (fun _ ->
        let o = Eutil.Prng.int rng n in
        let d = (o + 1 + Eutil.Prng.int rng (n - 1)) mod n in
        (o, d))
    |> List.sort_uniq Eutil.Order.int_pair
  in
  let trace = Traffic.Synth.google_dc_like ~n ~pairs ~days () in
  let thresholds = [ 0.0; 10.0; 20.0; 30.0; 40.0; 50.0; 60.0; 80.0; 100.0 ] in
  row "  %-28s %s@." "change >= x%" "ccdf [%]";
  List.iter
    (fun (thr, pct) -> row "  %-28.0f %.1f@." thr pct)
    (Traffic.Tstats.change_ccdf trace ~thresholds);
  let headline = 100.0 *. Traffic.Tstats.fraction_changing_by trace 20.0 in
  kvf "intervals changing by >= 20%" "%.1f%% (paper: ~50%%)" headline

(* ------------------------------------------------------------------ *)
(* Figure 1b: recomputation rate of the state of the art on GEANT.     *)

let fig1b () =
  section "Figure 1b - recomputation rate [/hour] (replay of GEANT-like demands)";
  let r = Lazy.force geant_replay in
  let rates = Response.Replay.recomputation_rate r ~bucket:3600.0 in
  let n = List.length rates in
  row "  %-20s %s@." "time" "recomputations/hour";
  List.iteri
    (fun i (t, rate) -> if i mod 6 = 0 || i = n - 1 then row "  %-20s %.1f@." (time_of_day t) rate)
    rates;
  let values = Array.of_list (List.map snd rates) in
  kvf "mean rate" "%.2f /hour" (Eutil.Stats.mean values);
  kvf "max rate" "%.1f /hour (paper: up to 4, the trace-granularity bound)"
    (Array.fold_left max 0.0 values);
  kvf "intervals with a configuration change" "%d of %d" r.Response.Replay.recomputations
    (Array.length r.Response.Replay.intervals)

(* ------------------------------------------------------------------ *)
(* Figure 2a: routing-configuration dominance.                         *)

let fig2a () =
  section "Figure 2a - fraction of time per routing configuration (GEANT-like)";
  let r = Lazy.force geant_replay in
  let dom = Response.Replay.config_dominance r in
  kvf "distinct configurations" "%d (paper: 13)" (List.length dom);
  row "  %-10s %s@." "config" "share of time [%]";
  List.iteri
    (fun i (_, share) -> if i < 8 then row "  #%-9d %.1f@." (i + 1) (100.0 *. share))
    dom;
  (match dom with
  | (_, top) :: _ ->
      kvf "dominant configuration" "%.0f%% of time (paper: ~60%%)" (100.0 *. top)
  | [] -> ())

(* ------------------------------------------------------------------ *)
(* Figure 2b: traffic covered by the top-X paths per pair.             *)

let fig2b () =
  section "Figure 2b - optimal paths included vs number of energy-critical paths";
  (* GEANT series, from the same replay. *)
  let r = Lazy.force geant_replay in
  subsection "GEANT-like (per-interval optimal routing, 15-day replay)";
  row "  %-24s %s@." "energy-critical paths" "traffic covered [%]";
  List.iter
    (fun (x, c) -> row "  %-24d %.1f@." x c)
    (Response.Critical_paths.coverage_curve r.Response.Replay.ranking ~max:5);
  (* Fat-tree series: k=12 (36 core switches), Google-like demand, hourly. *)
  subsection "FatTree k=12 (36 core switches), Google-DC-like demand";
  let ft = Topo.Fattree.make 12 in
  let g = ft.Topo.Fattree.graph in
  let power = Power.Model.commodity_dc g in
  let rng = Eutil.Prng.create 77 in
  let n_hosts = Topo.Fattree.n_hosts ft in
  let sample_pairs =
    List.init (if fast then 60 else 200) (fun _ ->
        let o = Eutil.Prng.int rng n_hosts in
        let d = (o + 1 + Eutil.Prng.int rng (n_hosts - 1)) mod n_hosts in
        (Topo.Fattree.host ft o, Topo.Fattree.host ft d))
    |> List.sort_uniq Eutil.Order.int_pair
  in
  let days = if fast then 1 else 8 in
  (* Generate at hourly granularity directly: a dense 648-node matrix per
     5-minute interval over 8 days would need gigabytes. *)
  let hourly =
    Traffic.Synth.google_dc_like ~n:(G.node_count g) ~pairs:sample_pairs ~days
      ~interval:(U.seconds 3600.0) ~peak:(U.mbps 400.0) ()
  in
  let ranking = Response.Critical_paths.create g in
  let solved = ref 0 in
  Traffic.Trace.iter hourly ~f:(fun _ _ tm ->
      match Optim.Elastic.minimal_subset ft power tm with
      | Some res ->
          incr solved;
          Response.Critical_paths.observe ranking res.Optim.Minimal.routing tm
      | None -> ());
  kvf "intervals solved" "%d of %d" !solved (Traffic.Trace.length hourly);
  row "  %-24s %s@." "energy-critical paths" "traffic covered [%]";
  List.iter
    (fun (x, c) -> row "  %-24d %.1f@." x c)
    (Response.Critical_paths.coverage_curve ranking ~max:6);
  note "paper: GEANT needs 2-3 paths for ~98-100%%, FatTree needs ~5"

(* ------------------------------------------------------------------ *)
(* Figure 4: power vs time under sinusoidal demand, k=4 fat-tree.      *)

let fattree_sim ft power locality ~peak =
  let g = ft.Topo.Fattree.graph in
  let pairs = Traffic.Sine.fattree_pairs ft locality in
  let tables = Response.Framework.precompute g power ~pairs in
  let period = U.seconds 20.0 in
  let events =
    List.init 21 (fun i ->
        let t = float_of_int i in
        Sim.Set_demand (t, Traffic.Sine.fattree ft locality ~peak ~period t))
  in
  let config =
    {
      Sim.default_config with
      Sim.te =
        {
          Response.Te.default_config with
          util_threshold = U.ratio 0.8;
          shift_fraction = U.ratio 0.5;
        };
      sample_interval = 0.5;
      idle_timeout = 1.0;
      wake_time = 0.1;
    }
  in
  Sim.run ~config ~tables ~power ~events ~duration:20.0 ()

let fig4 () =
  section "Figure 4 - power for sinusoidal traffic in a k=4 fat-tree";
  let ft = Topo.Fattree.make 4 in
  let power = Power.Model.commodity_dc ft.Topo.Fattree.graph in
  let near = fattree_sim ft power Traffic.Sine.Near ~peak:(U.mbps 400.0) in
  let far = fattree_sim ft power Traffic.Sine.Far ~peak:(U.mbps 400.0) in
  row "  %-8s %-10s %-18s %-18s@." "time" "ecmp [%]" "REsPoNse(near) [%]" "REsPoNse(far) [%]";
  Array.iteri
    (fun i sm ->
      if i mod 2 = 0 then
        row "  %-8.1f %-10.0f %-18.1f %-18.1f@." sm.Sim.time 100.0 sm.Sim.power_percent
          far.Sim.samples.(i).Sim.power_percent)
    near.Sim.samples;
  kvf "mean power" "ECMP 100%%, near %.1f%%, far %.1f%%" near.Sim.mean_power_percent
    far.Sim.mean_power_percent;
  kvf "delivered demand" "near %.1f%%, far %.1f%%"
    (100.0 *. near.Sim.delivered_fraction)
    (100.0 *. far.Sim.delivered_fraction);
  note "paper: ECMP flat at ~100%%; REsPoNse tracks the sine, near saves more than far"

(* ------------------------------------------------------------------ *)
(* Figure 5: GEANT replay power, REsPoNse vs OSPF vs alternative HW.   *)

let geant_traffic_aware_tables power_model =
  let g = Lazy.force geant in
  let pairs = Lazy.force geant_pairs in
  let trace = Lazy.force geant_trace in
  let mean = Traffic.Trace.mean_total trace in
  let off_peak =
    Traffic.Gravity.make g ~pairs ~total:(U.bps (0.5 *. mean)) ()
  in
  let peak = Traffic.Trace.peak trace in
  let config =
    {
      Response.Framework.default with
      always_on_mode = Response.Always_on.Off_peak off_peak;
      on_demand = Response.Framework.Solver peak;
    }
  in
  Response.Framework.precompute ~config g power_model ~pairs

let fig5 () =
  section "Figure 5 - power for the replay of GEANT-like traffic demands";
  let g = Lazy.force geant in
  let cisco = Lazy.force geant_power in
  let alt = Power.Model.alternative_hw g in
  let tables = geant_traffic_aware_tables cisco in
  let trace = Lazy.force geant_trace in
  let series model =
    let acc = ref [] in
    Traffic.Trace.iter trace ~f:(fun _ t tm ->
        let e = Response.Framework.evaluate tables model tm in
        acc := (t, e.Response.Framework.power_percent) :: !acc);
    Array.of_list (List.rev !acc)
  in
  let rep = series cisco in
  let rep_alt = series alt in
  row "  %-20s %-10s %-14s %-18s@." "time" "ospf [%]" "REsPoNse [%]" "REsPoNse-altHW [%]";
  Array.iteri
    (fun i (t, p) ->
      if i mod (24 * 4) = 0 then row "  %-20s %-10.0f %-14.1f %-18.1f@." (time_of_day t) 100.0 p (snd rep_alt.(i)))
    rep;
  let mean xs = Eutil.Stats.mean (Array.map snd xs) in
  kvf "mean power, representative hardware" "%.1f%% (paper: ~70%% -> ~30%% savings)" (mean rep);
  kvf "mean power, alternative hardware" "%.1f%% (paper: ~58%% -> ~42%% savings)" (mean rep_alt);
  kvf "routing table recomputations needed" "0 (tables computed once for %d days)" geant_days

(* ------------------------------------------------------------------ *)
(* Figure 6: power vs utilisation, Genuity, five techniques.           *)

let max_feasible_total g pairs =
  (* The paper scales gravity demand up by 10% steps until the optimal
     routing cannot accommodate it; bisection does the same faster. *)
  let fits total =
    let tm = Traffic.Gravity.make g ~pairs ~total:(U.bps total) () in
    let f = Optim.Feasible.create g in
    Optim.Feasible.route_matrix f tm
  in
  let hi = ref 1e9 in
  while fits !hi && !hi < 1e15 do
    hi := 2.0 *. !hi
  done;
  let lo = ref (!hi /. 2.0) in
  for _ = 1 to 20 do
    let mid = (!lo +. !hi) /. 2.0 in
    if fits mid then lo := mid else hi := mid
  done;
  !lo

let fig6 () =
  section "Figure 6 - power for different demands in the Genuity topology";
  let g = Topo.Rocketfuel.make Topo.Rocketfuel.genuity in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:1 ~fraction:(if fast then 0.4 else 0.6) in
  let max_total = max_feasible_total g pairs in
  kvf "topology" "%d PoPs, %d links" (G.node_count g) (G.link_count g);
  kvf "pairs" "%d" (List.length pairs);
  kvf "util-100 load" "%.2f Gbit/s" (max_total /. 1e9);
  let tm_at pct = Traffic.Gravity.make g ~pairs ~total:(U.bps (pct /. 100.0 *. max_total)) () in
  let peak = tm_at 100.0 in
  let precompute config = Response.Framework.precompute ~config g power ~pairs in
  let rep_lat =
    precompute { Response.Framework.default with latency_beta = Some 0.25 }
  in
  let rep = precompute Response.Framework.default in
  let rep_ospf = precompute { Response.Framework.default with on_demand = Response.Framework.Ospf } in
  let rep_heur =
    precompute { Response.Framework.default with on_demand = Response.Framework.Heuristic peak }
  in
  let optimal tm =
    match Optim.Minimal.power_down g power tm with
    | Some r -> r.Optim.Minimal.power_percent
    | None -> nan
  in
  row "  %-12s %-14s %-10s %-14s %-18s %-10s@." "utilisation" "REsPoNse-lat" "REsPoNse"
    "REsPoNse-ospf" "REsPoNse-heuristic" "Optimal";
  List.iter
    (fun pct ->
      let tm = tm_at pct in
      let eval tables =
        (Response.Framework.evaluate tables power tm).Response.Framework.power_percent
      in
      row "  util-%-7.0f %-14.1f %-10.1f %-14.1f %-18.1f %-10.1f@." pct (eval rep_lat) (eval rep)
        (eval rep_ospf) (eval rep_heur) (optimal tm))
    [ 10.0; 50.0; 100.0 ];
  note "paper: ~30%% savings at low utilisation, converging to the optimal as load grows;";
  note "REsPoNse-lat trades a little power for bounded latency"

(* ------------------------------------------------------------------ *)
(* Figure 7: Click-testbed scenario on the Figure 3 topology.          *)

let fig7 () =
  section "Figure 7 - REsPoNseTE lets links sleep, restores traffic on failure";
  let ex = Topo.Example.make ~include_b:false () in
  let g = ex.Topo.Example.graph in
  let power = Power.Model.cisco12000 g in
  let arc i j = Option.get (G.find_arc g i j) in
  let link i j = (G.arc g (arc i j)).G.link in
  let path l = Path.of_arcs g l in
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  let middle o =
    path [ arc o ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.h; arc ex.Topo.Example.h k ]
  in
  let upper =
    path [ arc a ex.Topo.Example.d; arc ex.Topo.Example.d ex.Topo.Example.g; arc ex.Topo.Example.g k ]
  in
  let lower =
    path [ arc c ex.Topo.Example.f; arc ex.Topo.Example.f ex.Topo.Example.j; arc ex.Topo.Example.j k ]
  in
  let tables =
    Response.Tables.make g
      [
        { Response.Tables.origin = a; dest = k; always_on = middle a; on_demand = [ upper ]; failover = None };
        { Response.Tables.origin = c; dest = k; always_on = middle c; on_demand = [ lower ]; failover = None };
      ]
  in
  let demand = Matrix.create (G.node_count g) in
  Matrix.set demand a k 2.5e6;
  Matrix.set demand c k 2.5e6;
  let config =
    {
      Sim.te =
        {
          Response.Te.default_config with
           Response.Te.probe_period = U.seconds 0.1;
          util_threshold = U.ratio 0.9;
          low_threshold = U.ratio 0.55;
          hysteresis = U.seconds 0.05;
          shift_fraction = U.ratio 1.0;
        };
      wake_time = 0.01;
      failure_detection = 0.1;
      idle_timeout = 0.3;
      sample_interval = 0.05;
      te_start = 5.0;
      transition_energy = 0.0;
    }
  in
  let eh = link ex.Topo.Example.e ex.Topo.Example.h in
  let r =
    Sim.run ~config
      ~initial_splits:[ ((a, k), [| 0.5; 0.5 |]); ((c, k), [| 0.5; 0.5 |]) ]
      ~tables ~power
      ~events:[ Sim.Set_demand (0.0, demand); Sim.Fail_link (5.7, eh) ]
      ~duration:6.6 ()
  in
  let dg = link ex.Topo.Example.d ex.Topo.Example.g in
  let fj = link ex.Topo.Example.f ex.Topo.Example.j in
  row "  %-8s %-10s %-10s %-10s  (Mbit/s)@." "time" "middle" "upper" "lower";
  Array.iter
    (fun sm ->
      if sm.Sim.time >= 4.4 && int_of_float (Float.round (sm.Sim.time *. 20.0)) mod 2 = 0 then
        row "  %-8.1f %-10.2f %-10.2f %-10.2f@." sm.Sim.time
          (sm.Sim.link_rates.(eh) /. 1e6)
          (sm.Sim.link_rates.(dg) /. 1e6)
          (sm.Sim.link_rates.(fj) /. 1e6))
    r.Sim.samples;
  (* Convergence numbers. *)
  let consolidated =
    Array.to_list r.Sim.samples
    |> List.find_opt (fun sm -> sm.Sim.time > 5.0 && sm.Sim.link_rates.(eh) > 4.9e6)
  in
  let restored =
    Array.to_list r.Sim.samples
    |> List.find_opt (fun sm -> sm.Sim.time > 5.7 && sm.Sim.link_rates.(dg) +. sm.Sim.link_rates.(fj) > 4.9e6)
  in
  (match consolidated with
  | Some sm -> kvf "traffic consolidated after TE start" "%.0f ms (paper: ~200 ms)" (1e3 *. (sm.Sim.time -. 5.0))
  | None -> kv "traffic consolidated" "never");
  (match restored with
  | Some sm -> kvf "traffic restored after failure" "%.0f ms (detect 100 + wake 10 + probes)" (1e3 *. (sm.Sim.time -. 5.7))
  | None -> kv "traffic restored" "never")

(* ------------------------------------------------------------------ *)
(* Figure 8: ns-2-style runs on PoP-access and FatTree.                *)

let fig8_run ~tables ~power ~demands ~step ~duration =
  let events = List.mapi (fun i tm -> Sim.Set_demand (float_of_int i *. step, tm)) demands in
  let config =
    {
      Sim.te =
        {
          Response.Te.default_config with
          Response.Te.probe_period = U.seconds 0.1;
          util_threshold = U.ratio 0.85;
          low_threshold = U.ratio 0.4;
          hysteresis = U.seconds 0.5;
          shift_fraction = U.ratio 0.5;
        };
      wake_time = 5.0;
      failure_detection = 0.1;
      idle_timeout = 2.0;
      sample_interval = 1.0;
      te_start = 0.0;
      transition_energy = 0.0;
    }
  in
  Sim.run ~config ~tables ~power ~events ~duration ()

let fig8a () =
  section "Figure 8a - ns-2-style run, PoP-access ISP topology (30 s demand steps, 5 s wake)";
  let g = Topo.Pop_access.make () in
  let power = Power.Model.cisco12000 g in
  (* Traffic originates and terminates at the metro level. *)
  let metros = G.nodes_with_role g G.Metro in
  let pairs =
    List.concat_map
      (fun o -> List.filter_map (fun d -> if o <> d then Some (o, d) else None) metros)
      metros
  in
  let rng = Eutil.Prng.create 4 in
  let pairs = List.filter (fun _ -> Eutil.Prng.float rng < 0.4) pairs in
  let opt_total = max_feasible_total g pairs in
  let tm_of total pct = Traffic.Gravity.make g ~pairs ~total:(U.bps (pct *. total)) () in
  let tables =
    Response.Framework.precompute
      ~config:
        {
          Response.Framework.default with
          always_on_mode = Response.Always_on.Off_peak (tm_of opt_total 0.3);
          on_demand = Response.Framework.Solver (tm_of opt_total 1.0);
        }
      g power ~pairs
  in
  (* util-100 = the largest gravity load the installed energy-critical paths
     accommodate (the optimal-routing bound is opt_total). *)
  let max_total =
    Response.Framework.carried_fraction ~threshold:(U.ratio 1.0) tables power
      ~base:(tm_of 1e9 1.0) ~max_level:10
    *. 1e9
  in
  kvf "optimal-routing bound" "%.2f Gbit/s" (opt_total /. 1e9);
  let tm pct = tm_of max_total pct in
  let demands = List.map tm [ 0.5; 0.75; 1.0; 0.75; 0.5 ] in
  let r = fig8_run ~tables ~power ~demands ~step:30.0 ~duration:150.0 in
  row "  %-8s %-16s %-16s %-10s@." "time" "demand [Gbit/s]" "rate [Gbit/s]" "power [%]";
  Array.iter
    (fun sm ->
      if int_of_float sm.Sim.time mod 5 = 0 then
        row "  %-8.0f %-16.2f %-16.2f %-10.1f@." sm.Sim.time (sm.Sim.demand_total /. 1e9)
          (sm.Sim.rate_total /. 1e9) sm.Sim.power_percent)
    r.Sim.samples;
  kvf "delivered demand" "%.1f%%" (100.0 *. r.Sim.delivered_fraction);
  note "paper: rates match demands within a few RTTs; the util-100 step is";
  note "delayed ~5 s by the on-demand wake-up; power follows the demand"

let fig8b () =
  section "Figure 8b - ns-2-style run, k=4 fat-tree (30 s sine steps, 5 s wake)";
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  let power = Power.Model.commodity_dc g in
  let pairs = Traffic.Sine.fattree_pairs ft Traffic.Sine.Far in
  let tables = Response.Framework.precompute g power ~pairs in
  let demands =
    List.init 10 (fun i ->
        Traffic.Sine.fattree ft Traffic.Sine.Far ~peak:(U.mbps 400.0)
          ~period:(U.seconds 300.0)
          (float_of_int i *. 30.0))
  in
  let r = fig8_run ~tables ~power ~demands ~step:30.0 ~duration:300.0 in
  row "  %-8s %-16s %-16s %-10s@." "time" "demand [Gbit/s]" "rate [Gbit/s]" "power [%]";
  Array.iter
    (fun sm ->
      if int_of_float sm.Sim.time mod 15 = 0 then
        row "  %-8.0f %-16.2f %-16.2f %-10.1f@." sm.Sim.time (sm.Sim.demand_total /. 1e9)
          (sm.Sim.rate_total /. 1e9) sm.Sim.power_percent)
    r.Sim.samples;
  kvf "delivered demand" "%.1f%%" (100.0 *. r.Sim.delivered_fraction);
  note "paper: sending rates track demand even more closely than in the ISP case"

(* ------------------------------------------------------------------ *)
(* Figure 9 and the Section 5.4 latency numbers.                       *)

let abovenet = lazy (Topo.Rocketfuel.make Topo.Rocketfuel.abovenet)
let abovenet_power = lazy (Power.Model.cisco12000 (Lazy.force abovenet))

let abovenet_rep_lat =
  lazy
    (let g = Lazy.force abovenet in
     Response.Framework.precompute
       ~config:{ Response.Framework.default with latency_beta = Some 0.25 }
       g (Lazy.force abovenet_power) ~pairs:(all_pairs g))

let abovenet_invcap =
  lazy
    (let g = Lazy.force abovenet in
     let pairs = all_pairs g in
     let spf = Routing.Spf.routes g ~pairs () in
     Response.Tables.make g
       (List.filter_map
          (fun (o, d) ->
            Option.map
              (fun p ->
                { Response.Tables.origin = o; dest = d; always_on = p; on_demand = []; failover = None })
              (Hashtbl.find_opt spf (o, d)))
          pairs))

let streaming_scenario ~n_clients ~duration =
  let g = Lazy.force abovenet in
  let nodes = G.traffic_nodes g in
  let rng = Eutil.Prng.create 31 in
  let source = nodes.(0) in
  let clients =
    List.init n_clients (fun i ->
        {
          Appsim.Streaming.node = nodes.(1 + Eutil.Prng.int rng (Array.length nodes - 1));
          join_time = 0.2 *. float_of_int i;
        })
  in
  { Appsim.Streaming.source; bitrate = 600e3; block_duration = 1.0; startup_buffer = 5.0; clients; duration }

let streaming_config =
  {
    Sim.default_config with
    Sim.te = { Response.Te.default_config with probe_period = U.seconds 0.2 };
    sample_interval = 0.25;
    idle_timeout = 10.0;
  }

let run_streaming tables n_clients =
  let duration = if fast then 60.0 else 120.0 in
  Appsim.Streaming.run ~config:streaming_config ~tables ~power:(Lazy.force abovenet_power)
    (streaming_scenario ~n_clients ~duration)

let fig9_results =
  lazy
    ( run_streaming (Lazy.force abovenet_rep_lat) 50,
      run_streaming (Lazy.force abovenet_invcap) 50,
      run_streaming (Lazy.force abovenet_rep_lat) 100,
      run_streaming (Lazy.force abovenet_invcap) 100 )

let fig9 () =
  section "Figure 9 - clients able to play the video (boxplots, % of blocks on time)";
  let rep50, inv50, rep100, inv100 = Lazy.force fig9_results in
  let line name s =
    row "  %-14s %a   (power %.1f%%)@." name Eutil.Stats.pp_boxplot s.Appsim.Streaming.playable
      s.Appsim.Streaming.mean_power_percent
  in
  line "REP-lat50" rep50;
  line "InvCap50" inv50;
  line "REP-lat100" rep100;
  line "InvCap100" inv100;
  note "paper: all four distributions sit at ~100%% playable - consolidation does";
  note "not hurt streaming; InvCap's network never sleeps (its power is 100%%)"

let latency () =
  section "Section 5.4 - application-level latency penalties";
  let rep50, inv50, _, _ = Lazy.force fig9_results in
  let block_increase =
    100.0
    *. ((rep50.Appsim.Streaming.mean_block_latency /. inv50.Appsim.Streaming.mean_block_latency)
       -. 1.0)
  in
  subsection "media block retrieval latency";
  kvf "REsPoNse-lat vs OSPF-InvCap" "%+.1f%% (paper: ~+5%%)" block_increase;
  subsection "web retrieval latency (SPECweb2005-banking-like files)";
  let g = Lazy.force abovenet in
  let nodes = G.traffic_nodes g in
  let server = nodes.(0) in
  let clients = [ nodes.(3); nodes.(7); nodes.(11); nodes.(15) ] in
  let path_from tables c =
    Option.map (fun e -> e.Response.Tables.always_on) (Response.Tables.find tables server c)
  in
  let cfg = Appsim.Web.default in
  (* Both systems carry the same background demand, each routed its own way:
     REsPoNse consolidates it on fewer links, so web transfers see less
     residual bandwidth there — the mechanism behind the paper's ~9 %. *)
  let background = Traffic.Gravity.make g ~pairs:(all_pairs g) ~total:(U.mbps 600.0) () in
  let run tables =
    let loads = Response.Framework.loads tables background in
    let util a = loads.(a) /. (G.arc g a).G.capacity in
    Appsim.Web.run g ~path_of:(path_from tables) ~background_util:util ~clients cfg
  in
  let rep = run (Lazy.force abovenet_rep_lat) in
  let inv = run (Lazy.force abovenet_invcap) in
  kvf "OSPF-InvCap mean latency" "%.1f ms" (1e3 *. inv.Appsim.Web.mean_latency);
  kvf "REsPoNse-lat mean latency" "%.1f ms" (1e3 *. rep.Appsim.Web.mean_latency);
  kvf "increase" "%+.1f%% (paper: ~+9%%)" (Appsim.Web.compare_latency ~baseline:inv ~treatment:rep)

(* ------------------------------------------------------------------ *)
(* Section 4.1/4.2 claims: always-on capacity and stress sensitivity.  *)

let capacity () =
  section "Section 4.1 - always-on paths vs OSPF carriable volume";
  let g = Lazy.force geant in
  let power = Lazy.force geant_power in
  let pairs = Lazy.force geant_pairs in
  let tables = Response.Framework.precompute g power ~pairs in
  let spf = Routing.Spf.routes g ~pairs () in
  let invcap =
    Response.Tables.make g
      (List.filter_map
         (fun (o, d) ->
           Option.map
             (fun p ->
               { Response.Tables.origin = o; dest = d; always_on = p; on_demand = []; failover = None })
             (Hashtbl.find_opt spf (o, d)))
         pairs)
  in
  let base = Traffic.Gravity.make g ~pairs ~total:(U.gbps 1.0) () in
  let ao = Response.Framework.carried_fraction tables power ~base ~max_level:0 in
  let ospf = Response.Framework.carried_fraction invcap power ~base ~max_level:0 in
  let all = Response.Framework.carried_fraction tables power ~base ~max_level:10 in
  kvf "always-on paths alone" "%.1f Gbit/s" ao;
  kvf "OSPF-InvCap paths" "%.1f Gbit/s" ospf;
  kvf "all REsPoNse paths" "%.1f Gbit/s" all;
  kvf "always-on / OSPF ratio" "%.0f%% (paper: ~50%%)" (100.0 *. ao /. ospf)

let stress () =
  section "Section 4.2 - stress-factor exclusion sensitivity";
  let g = Lazy.force geant in
  let power = Lazy.force geant_power in
  let pairs = Lazy.force geant_pairs in
  let peak = Traffic.Trace.peak (Lazy.force geant_trace) in
  row "  %-22s %-30s %s@." "excluded fraction" "carriable / peak (AO+on-demand)" "distinct on-demand paths";
  List.iter
    (fun q ->
      let config =
        { Response.Framework.default with on_demand = Response.Framework.Stress q }
      in
      let tables = Response.Framework.precompute ~config g power ~pairs in
      (* Largest multiple of the peak matrix the always-on + on-demand levels
         carry: >= 1.0 means the stress-selected paths suffice for peak. *)
      let scale = Response.Framework.carried_fraction tables power ~base:peak ~max_level:1 in
      let distinct =
        List.fold_left
          (fun acc entry -> acc + List.length entry.Response.Tables.on_demand)
          0 (Response.Tables.entries tables)
      in
      row "  %-22.0f %-30.2f %d@." (100.0 *. q) scale distinct)
    [ 0.1; 0.2; 0.3 ];
  note "paper: excluding the top 20%% most stressed links suffices to carry peak demand"

(* ------------------------------------------------------------------ *)
(* Ablations called out in DESIGN.md.                                  *)

let ablations () =
  section "Ablations";
  let g = Lazy.force geant in
  let power = Lazy.force geant_power in
  let pairs = Lazy.force geant_pairs in
  let trace = Lazy.force geant_trace in
  let mean = Traffic.Trace.mean_total trace in
  subsection "number of energy-critical paths N vs carried volume and power";
  row "  %-6s %-22s %-14s@." "N" "carried [Gbit/s]" "power at mean load [%]";
  List.iter
    (fun n ->
      let config = { Response.Framework.default with n_paths = max 2 n } in
      let tables = Response.Framework.precompute ~config g power ~pairs in
      let base = Traffic.Gravity.make g ~pairs ~total:(U.gbps 1.0) () in
      let carried =
        Response.Framework.carried_fraction tables power ~base ~max_level:(n - 1)
      in
      let tm = Traffic.Gravity.make g ~pairs ~total:(U.bps mean) () in
      let e = Response.Framework.evaluate tables power tm in
      row "  %-6d %-22.1f %-14.1f@." n carried e.Response.Framework.power_percent)
    [ 2; 3; 4; 5 ];
  subsection "REsPoNseTE utilisation threshold vs power and congestion";
  let tables = geant_traffic_aware_tables power in
  let tm = Traffic.Gravity.make g ~pairs ~total:(U.bps (1.5 *. mean)) () in
  row "  %-12s %-12s %-12s %s@." "threshold" "power [%]" "max util" "congested pairs";
  List.iter
    (fun thr ->
      let e = Response.Framework.evaluate ~threshold:(U.ratio thr) tables power tm in
      row "  %-12.2f %-12.1f %-12.2f %d@." thr e.Response.Framework.power_percent
        e.Response.Framework.max_utilization
        (List.length e.Response.Framework.congested))
    [ 0.7; 0.8; 0.9; 0.95 ];
  subsection "REsPoNse-lat beta vs always-on power";
  row "  %-12s %-18s %s@." "beta" "always-on links" "always-on power [%]";
  List.iter
    (fun beta ->
      let r =
        Response.Always_on.compute ~latency_beta:beta g power ~pairs ()
      in
      let st = r.Response.Always_on.state in
      row "  %-12.2f %-18d %.1f@." beta (State.active_links st)
        (Power.Model.percent_of_full power g st))
    [ 0.1; 0.25; 0.5; 1.0 ];
  subsection "probe period vs consolidation time (Figure 7 scenario)";
  row "  %-12s %s@." "T [ms]" "consolidation after TE start [ms]";
  List.iter
    (fun t_probe ->
      let ex = Topo.Example.make ~include_b:false () in
      let gg = ex.Topo.Example.graph in
      let p = Power.Model.cisco12000 gg in
      let arc i j = Option.get (G.find_arc gg i j) in
      let path l = Path.of_arcs gg l in
      let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
      let middle o =
        path [ arc o ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.h; arc ex.Topo.Example.h k ]
      in
      let upper =
        path [ arc a ex.Topo.Example.d; arc ex.Topo.Example.d ex.Topo.Example.g; arc ex.Topo.Example.g k ]
      in
      let lower =
        path [ arc c ex.Topo.Example.f; arc ex.Topo.Example.f ex.Topo.Example.j; arc ex.Topo.Example.j k ]
      in
      let tables =
        Response.Tables.make gg
          [
            { Response.Tables.origin = a; dest = k; always_on = middle a; on_demand = [ upper ]; failover = None };
            { Response.Tables.origin = c; dest = k; always_on = middle c; on_demand = [ lower ]; failover = None };
          ]
      in
      let demand = Matrix.create (G.node_count gg) in
      Matrix.set demand a k 2.5e6;
      Matrix.set demand c k 2.5e6;
      let eh = (G.arc gg (arc ex.Topo.Example.e ex.Topo.Example.h)).G.link in
      let config =
        {
          Sim.te =
            {
              Response.Te.default_config with
              Response.Te.probe_period = U.seconds t_probe;
              util_threshold = U.ratio 0.9;
              low_threshold = U.ratio 0.55;
              hysteresis = U.seconds (t_probe /. 2.0);
              shift_fraction = U.ratio 1.0;
            };
          wake_time = 0.01;
          failure_detection = 0.1;
          idle_timeout = 0.3;
          sample_interval = 0.02;
          te_start = 1.0;
          transition_energy = 0.0;
        }
      in
      let r =
        Sim.run ~config
          ~initial_splits:[ ((a, k), [| 0.5; 0.5 |]); ((c, k), [| 0.5; 0.5 |]) ]
          ~tables ~power:p
          ~events:[ Sim.Set_demand (0.0, demand) ]
          ~duration:4.0 ()
      in
      let consolidated =
        Array.to_list r.Sim.samples
        |> List.find_opt (fun sm -> sm.Sim.time > 1.0 && sm.Sim.link_rates.(eh) > 4.9e6)
      in
      match consolidated with
      | Some sm -> row "  %-12.0f %.0f@." (1e3 *. t_probe) (1e3 *. (sm.Sim.time -. 1.0))
      | None -> row "  %-12.0f never@." (1e3 *. t_probe))
    [ 0.05; 0.1; 0.2; 0.4 ]
