(* Bench sections for the extension studies: deployment feasibility
   (Section 4.5), power-delivery peaks (Section 4.5), element sleep states
   (Section 2.1.1), the flattened butterfly (Section 2.3), and the
   sleep-aggressiveness ablation. *)

module G = Topo.Graph
module Matrix = Traffic.Matrix
module Sim = Netsim.Sim
open Report

let deploy () =
  section "Deployment feasibility (Section 4.5): MPLS tunnels, table budgets, robustness";
  let g = Lazy.force Figures.abovenet in
  let power = Lazy.force Figures.abovenet_power in
  let pairs = Figures.all_pairs g in
  let tables = Response.Framework.precompute g power ~pairs in
  let stats = Response.Deploy.tunnel_stats tables in
  kvf "origin-destination pairs" "%d" (List.length pairs);
  kvf "head-end tunnels, worst router" "%d (limit ~600 [26])" stats.Response.Deploy.max_per_node;
  kvf "fits MPLS deployment" "%b" (Response.Deploy.fits_mpls tables);
  kvf "single-failure pair coverage" "%.1f%%"
    (100.0 *. Response.Deploy.single_failure_coverage tables);
  subsection "memory-limited deployment (keep the most important tables)";
  row "  %-14s %-22s %s@." "tables/pair" "single-failure coverage" "carriable volume [Gbit/s]";
  let base = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 1.0) () in
  List.iter
    (fun n ->
      let t = if n >= Response.Tables.n_tables tables then tables
        else Response.Deploy.restrict tables ~max_tables:n
      in
      let cov = Response.Deploy.single_failure_coverage t in
      let carried = Response.Framework.carried_fraction t power ~base ~max_level:10 in
      row "  %-14d %-22.1f %.2f@." n (100.0 *. cov) carried)
    [ 1; 2; 3 ];
  subsection "when do topology changes warrant recomputation? (the paper's future work)";
  let rng = Eutil.Prng.create 13 in
  row "  %-18s %-18s %s@." "links failed" "pairs covered [%]" "recompute?";
  List.iter
    (fun k ->
      let failed =
        Array.to_list (Eutil.Prng.sample rng k (G.link_count g))
      in
      let cov = Response.Deploy.coverage_after_failures tables ~failed in
      row "  %-18d %-18.1f %b@." k (100.0 *. cov)
        (Response.Deploy.recompute_warranted tables ~failed))
    [ 1; 2; 4; 8; 16 ]

let peaks () =
  section "Power-delivery peaks (Section 4.5): how long do demand peaks last?";
  let trace = Lazy.force Figures.geant_trace in
  row "  %-14s %-16s %-16s %s@." "threshold" "mean peak [h]" "longest [h]" "time in peak [%]";
  List.iter
    (fun thr ->
      row "  %-14.0f %-16.2f %-16.2f %.1f@." (100.0 *. thr)
        (Traffic.Peaks.mean_peak_duration trace ~threshold:thr /. 3600.0)
        (Traffic.Peaks.longest_peak trace ~threshold:thr /. 3600.0)
        (100.0 *. Traffic.Peaks.fraction_of_time_in_peak trace ~threshold:thr))
    [ 0.8; 0.9; 0.95 ];
  note "paper: the average peak lasts under ~2 h, so alternative power sources";
  note "or thermal headroom can bridge it - provision for typical load instead"

let sleep_states () =
  section "Element sleep states (Section 2.1.1): consolidation lengthens idle gaps";
  let states = [ Power.Sleep.lpi; Power.Sleep.nap; Power.Sleep.deep ] in
  row "  %-10s %-18s %-14s %s@." "state" "power fraction" "wake time" "break-even gap";
  let module U = Eutil.Units in
  List.iter
    (fun s ->
      row "  %-10s %-18.2f %-14s %s@." s.Power.Sleep.name
        (U.to_float s.Power.Sleep.power_fraction)
        (Printf.sprintf "%.0f us" (1e6 *. U.to_float s.Power.Sleep.wake_time))
        (Printf.sprintf "%.1f ms" (1e3 *. U.to_float (Power.Sleep.breakeven_gap s))))
    states;
  subsection "per-link energy at 30% utilisation vs traffic shaping granularity";
  row "  %-22s %-22s %s@." "burst period" "energy [% of always-on]" "deepest state usable";
  List.iter
    (fun period ->
      let busy = Power.Sleep.periodic_busy ~utilisation:(U.ratio 0.3) ~period ~horizon:600.0 in
      let sav =
        Power.Sleep.savings_percent ~active_power:(U.watts 100.0) ~states ~busy ~horizon:600.0
      in
      let gap = (1.0 -. 0.3) *. period in
      let deepest =
        List.fold_left
          (fun acc s ->
            if U.to_float (Power.Sleep.breakeven_gap s) <= gap then s.Power.Sleep.name else acc)
          "none" states
      in
      row "  %-22s %-22.1f %s@."
        (if period < 1.0 then Printf.sprintf "%.0f ms" (1e3 *. period)
         else Printf.sprintf "%.0f s" period)
        (100.0 -. sav) deepest)
    [ 0.001; 0.1; 1.0; 60.0 ];
  note "opportunistic sleeping [22] exploits sub-ms gaps only with LPI-class states;";
  note "buffer-and-burst [29] and REsPoNse-style consolidation unlock deep sleep"

let switching () =
  section "Ablation: idle-timeout aggressiveness vs wake transitions (Section 2.1.1)";
  let ex = Topo.Example.make ~include_b:false () in
  let g = ex.Topo.Example.graph in
  let power = Power.Model.cisco12000 g in
  (* Bursty on/off demand: 2 s on, 2 s off, for 40 s. *)
  let demand_on = Matrix.create (G.node_count g) in
  Matrix.set demand_on ex.Topo.Example.a ex.Topo.Example.k 2.5e6;
  Matrix.set demand_on ex.Topo.Example.c ex.Topo.Example.k 2.5e6;
  let demand_off = Matrix.create (G.node_count g) in
  let events =
    List.init 10 (fun i ->
        Sim.Set_demand (4.0 *. float_of_int i, demand_on)
        :: [ Sim.Set_demand ((4.0 *. float_of_int i) +. 2.0, demand_off) ])
    |> List.concat
  in
  let arc i j = Option.get (G.find_arc g i j) in
  let path l = Topo.Path.of_arcs g l in
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  let middle o =
    path [ arc o ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.h; arc ex.Topo.Example.h k ]
  in
  let upper =
    path [ arc a ex.Topo.Example.d; arc ex.Topo.Example.d ex.Topo.Example.g; arc ex.Topo.Example.g k ]
  in
  let lower =
    path [ arc c ex.Topo.Example.f; arc ex.Topo.Example.f ex.Topo.Example.j; arc ex.Topo.Example.j k ]
  in
  let tables =
    Response.Tables.make g
      [
        { Response.Tables.origin = a; dest = k; always_on = middle a; on_demand = [ upper ]; failover = None };
        { Response.Tables.origin = c; dest = k; always_on = middle c; on_demand = [ lower ]; failover = None };
      ]
  in
  row "  %-18s %-14s %-16s %-18s %s@." "idle timeout [s]" "wakes" "mean power [%]" "energy [kJ]"
    "delivered [%]";
  List.iter
    (fun idle_timeout ->
      let config =
        {
          Sim.default_config with
          Sim.idle_timeout;
          sample_interval = 0.05;
          wake_time = 0.01;
          transition_energy = 50.0;
        }
      in
      let r = Sim.run ~config ~tables ~power ~events ~duration:40.0 () in
      row "  %-18.2f %-14d %-16.1f %-18.2f %.1f@." idle_timeout r.Sim.wake_count
        r.Sim.mean_power_percent (r.Sim.energy_joules /. 1e3)
        (100.0 *. r.Sim.delivered_fraction))
    [ 0.1; 0.5; 2.0; 10.0 ];
  note "aggressive timeouts sleep more but pay wake transitions and delivery dips;";
  note "the energy column includes 50 J per transition"

let butterfly () =
  section "Flattened butterfly (Section 2.3): energy-critical paths in an arbitrary topology";
  let bf = Topo.Butterfly.make 4 ~concentration:1 in
  let g = bf.Topo.Butterfly.graph in
  let power = Power.Model.commodity_dc g in
  kvf "topology" "k=4 flattened butterfly: %d routers, %d links"
    (Array.length bf.Topo.Butterfly.routers)
    (G.link_count g);
  (* Half of the routers host active servers. *)
  let hosts = Array.to_list (Array.sub bf.Topo.Butterfly.hosts 0 8) in
  let pairs =
    List.concat_map (fun o -> List.filter_map (fun d -> if o <> d then Some (o, d) else None) hosts) hosts
  in
  let tables = Response.Framework.precompute g power ~pairs in
  kvf "tables" "%d pairs, up to %d paths" (List.length pairs) (Response.Tables.n_tables tables);
  row "  %-18s %-12s %s@." "load/flow [Mbit/s]" "power [%]" "optimal [%]";
  List.iter
    (fun mbps ->
      let tm = Matrix.uniform (G.node_count g) ~pairs ~demand:(mbps *. 1e6) in
      let e = Response.Framework.evaluate tables power tm in
      let opt =
        match Optim.Minimal.power_down g power tm with
        | Some r -> r.Optim.Minimal.power_percent
        | None -> nan
      in
      row "  %-18.0f %-12.1f %.1f@." mbps e.Response.Framework.power_percent opt)
    [ 10.0; 50.0; 120.0 ];
  note "the framework needs no topology-specific code: butterfly rows/columns are";
  note "discovered by the same greedy + path machinery as fat-trees and ISP maps"

let openflow () =
  section "OpenFlow data plane (Section 5.3): packet-level cross-validation";
  let ex = Topo.Example.make ~include_b:false () in
  let g = ex.Topo.Example.graph in
  let power = Power.Model.cisco12000 g in
  let arc i j = Option.get (G.find_arc g i j) in
  let path l = Topo.Path.of_arcs g l in
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  let middle o =
    path [ arc o ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.h; arc ex.Topo.Example.h k ]
  in
  let upper =
    path [ arc a ex.Topo.Example.d; arc ex.Topo.Example.d ex.Topo.Example.g; arc ex.Topo.Example.g k ]
  in
  let lower =
    path [ arc c ex.Topo.Example.f; arc ex.Topo.Example.f ex.Topo.Example.j; arc ex.Topo.Example.j k ]
  in
  let tables =
    Response.Tables.make g
      [
        { Response.Tables.origin = a; dest = k; always_on = middle a; on_demand = [ upper ]; failover = None };
        { Response.Tables.origin = c; dest = k; always_on = middle c; on_demand = [ lower ]; failover = None };
      ]
  in
  let ctl = Openflow.Controller.create tables in
  let te = Response.Te.create tables Response.Te.default_config in
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  kvf "flow-table entries installed" "%d across %d switches"
    (Openflow.Controller.tables_installed ctl)
    (G.node_count g);
  row "  %-20s %-22s %-22s %s@." "offered [Mbit/s]" "packet delivered [%]" "fluid delivered [%]"
    "packet latency [ms]";
  List.iter
    (fun mbps ->
      let rate = mbps *. 1e6 /. 2.0 in
      let packet = Openflow.Pnet.run ctl ~flows:[ (a, k, rate); (c, k, rate) ] ~duration:3.0 in
      let demand = Matrix.create (G.node_count g) in
      Matrix.set demand a k rate;
      Matrix.set demand c k rate;
      let fluid =
        Sim.run ~tables ~power ~events:[ Sim.Set_demand (0.0, demand) ] ~duration:3.0 ()
      in
      let latency =
        Eutil.Stats.mean
          (Array.of_list (List.map (fun f -> f.Openflow.Pnet.mean_latency) packet.Openflow.Pnet.flows))
      in
      row "  %-20.1f %-22.1f %-22.1f %.1f@." mbps
        (100.0 *. packet.Openflow.Pnet.delivered_fraction)
        (100.0 *. fluid.Sim.delivered_fraction)
        (1e3 *. latency))
    [ 2.0; 5.0 ];
  (* Overload: the fluid simulator's TE spreads to the on-demand paths; the
     packet plane needs the controller reprogrammed with the same splits. *)
  let micro_flows =
    (* The paper's sources send several flows each; per-flow hashing needs
       that diversity to spread over the select buckets. *)
    List.concat_map (fun o -> List.init 8 (fun _ -> (o, k, 2e6))) [ a; c ]
  in
  let static = Openflow.Pnet.run ctl ~flows:micro_flows ~duration:3.0 in
  Response.Te.force_split te a k [| 0.5; 0.5 |];
  Response.Te.force_split te c k [| 0.5; 0.5 |];
  Openflow.Controller.program ctl ~splits:(Response.Te.split te);
  let reprogrammed = Openflow.Pnet.run ctl ~flows:micro_flows ~duration:3.0 in
  kvf "32 Mbit/s (16 flows), static programming" "%.1f%% delivered (middle path saturates)"
    (100.0 *. static.Openflow.Pnet.delivered_fraction);
  kvf "32 Mbit/s (16 flows), TE reprogrammed" "%.1f%% delivered (on-demand paths in the tables)"
    (100.0 *. reprogrammed.Openflow.Pnet.delivered_fraction);
  note "both data planes agree in steady state; the packet plane adds queueing";
  note "latency and loss detail the fluid model abstracts (as ns-2 did for the paper)"

let eate () =
  section "Ablation: EATe-style distributed aggregation vs precomputed paths (Section 2.3)";
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:8 ~fraction:0.6 in
  let tables = Response.Framework.precompute g power ~pairs in
  row "  %-16s %-16s %-14s %-14s %s@." "load [Gbit/s]" "EATe power [%]" "EATe rounds"
    "REsPoNse [%]" "optimal [%]";
  List.iter
    (fun gbits ->
      let tm = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps gbits) () in
      let eate_r = Response.Eate.run g power tm in
      let rep = Response.Framework.evaluate tables power tm in
      let opt =
        match Optim.Minimal.power_down g power tm with
        | Some r -> r.Optim.Minimal.power_percent
        | None -> nan
      in
      row "  %-16.0f %-16.1f %-14d %-14.1f %.1f@." gbits
        eate_r.Response.Eate.power_percent eate_r.Response.Eate.rounds
        rep.Response.Framework.power_percent opt)
    [ 2.0; 6.0; 12.0 ];
  note "EATe needs multi-round online coordination per demand change; REsPoNse";
  note "reaches comparable savings with one table lookup per probe"

let chaos () =
  section "Chaos: availability, loss and recovery under seeded fault injection";
  let g = Lazy.force Figures.geant in
  let power = Lazy.force Figures.geant_power in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.7 in
  let tables = Response.Framework.precompute g power ~pairs in
  let base = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
  let trials = if fast then 2 else 5 in
  let duration = if fast then 4.0 else 10.0 in
  row "  %-14s %-14s %-16s %-12s %-12s %s@." "link MTBF [s]" "availability" "delivered [%]"
    "p50 rec [s]" "p99 rec [s]" "sleep ratio";
  List.iter
    (fun mtbf ->
      let spec =
        {
          Fault.Scenario.default with
          Fault.Scenario.seed = 42;
          duration;
          link_faults = Some { Fault.Scenario.mtbf; mttr = 0.5 };
        }
      in
      let r = Fault.Harness.run ~tables ~power ~base ~spec ~trials () in
      row "  %-14.1f %-14.4f %-16.2f %-12.2f %-12.2f %.3f@." mtbf r.Fault.Harness.availability
        (100.0 *. r.Fault.Harness.delivered_fraction)
        r.Fault.Harness.recovery_p50 r.Fault.Harness.recovery_p99 r.Fault.Harness.sleep_ratio)
    [ 10.0; 3.0; 1.0 ];
  subsection "node (chassis) failures vs link failures at equal fault intensity";
  List.iter
    (fun (label, link_faults, node_faults) ->
      let spec =
        {
          Fault.Scenario.default with
          Fault.Scenario.seed = 42;
          duration;
          link_faults;
          node_faults;
        }
      in
      let r = Fault.Harness.run ~tables ~power ~base ~spec ~trials () in
      kvf label "availability %.4f, fallback routes %d, rejected wakes %d"
        r.Fault.Harness.availability r.Fault.Harness.fallback_routes
        r.Fault.Harness.rejected_wakes)
    [
      ("links only (mtbf 3 s)", Some { Fault.Scenario.mtbf = 3.0; mttr = 0.5 }, None);
      ("nodes only (mtbf 3 s)", None, Some { Fault.Scenario.mtbf = 3.0; mttr = 0.5 });
    ];
  subsection "single-link sweep (Section 4.3): steady-state loss after reconvergence";
  let sweep =
    Fault.Harness.single_link_sweep ~tables ~power ~base ~fail_at:1.0 ~grace:1.5 ~duration:4.0 ()
  in
  let lossless, lossy =
    List.partition (fun e -> e.Fault.Harness.sw_lost_bits_after <= 1.0) sweep
  in
  let partitioning =
    List.length (List.filter (fun e -> e.Fault.Harness.sw_partitioned <> []) sweep)
  in
  kvf "links absorbed with zero steady-state loss" "%d of %d" (List.length lossless)
    (List.length sweep);
  kvf "of the lossy cuts, partitioning" "%d of %d" partitioning (List.length lossy);
  note "a partitioning cut cannot be routed around; its loss is booked, not hidden"

(* ------------------------------------------------------------------ *)

(* Certified multicore fan-out (check/parallel.json): the chaos harness
   trials and the per-pair failover precompute at --jobs 1/2/4. The
   committed numbers are honest wall-clocks for whatever cores the bench
   host has — on a single-core host the fan-out buys nothing and the rows
   show it; the byte-identity column is the part that must never change. *)

let parallel_timings : (string * int * float) list ref = ref []

let parallel () =
  section "Parallel: certified fan-out wall-clock and determinism at jobs 1/2/4";
  let g = Lazy.force Figures.geant in
  let power = Lazy.force Figures.geant_power in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.7 in
  let tables = Response.Framework.precompute g power ~pairs in
  let base = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
  let trials = if fast then 2 else 4 in
  let duration = if fast then 4.0 else 8.0 in
  let spec =
    {
      Fault.Scenario.default with
      Fault.Scenario.seed = 42;
      duration;
      link_faults = Some { Fault.Scenario.mtbf = 3.0; mttr = 0.5 };
    }
  in
  parallel_timings := [];
  kvf "domains recommended by the runtime" "%d" (Eutil.Pool.default_jobs ());
  row "  %-12s %-6s %-12s %s@." "workload" "jobs" "seconds" "output vs jobs 1";
  let chaos_ref = ref "" in
  List.iter
    (fun jobs ->
      let r, dur =
        Obs.Span.timed "bench.parallel.chaos" (fun () ->
            Fault.Harness.run ~jobs ~tables ~power ~base ~spec ~trials ())
      in
      let json = Fault.Harness.to_json r in
      if !chaos_ref = "" then chaos_ref := json;
      parallel_timings := ("chaos", jobs, dur) :: !parallel_timings;
      row "  %-12s %-6d %-12.3f %s@." "chaos" jobs dur
        (if json = !chaos_ref then "byte-identical" else "DIVERGED"))
    [ 1; 2; 4 ];
  let pre_ref = ref "" in
  List.iter
    (fun jobs ->
      let t, dur =
        Obs.Span.timed "bench.parallel.precompute" (fun () ->
            Response.Framework.precompute ~jobs g power ~pairs)
      in
      let rendered = Format.asprintf "%a" Response.Tables.pp t in
      if !pre_ref = "" then pre_ref := rendered;
      parallel_timings := ("precompute", jobs, dur) :: !parallel_timings;
      row "  %-12s %-6d %-12.3f %s@." "precompute" jobs dur
        (if rendered = !pre_ref then "byte-identical" else "DIVERGED"))
    [ 1; 2; 4 ];
  parallel_timings := List.rev !parallel_timings

(* Before/after ledger for the Check.Cost campaign (DESIGN.md 12): the
   memoized precompute against the uncached path, and a warm-started
   re-solve of a tightened LP against a cold two-phase solve. The hit must
   beat the uncached path by orders of magnitude and return the very same
   tables; the warm re-solve must agree with the cold one exactly. *)

let cost_timings : (string * float) list ref = ref []

let cost () =
  section "Cost: memoized precompute and warm-started simplex re-solves";
  cost_timings := [];
  let record name dur = cost_timings := (name, dur) :: !cost_timings in
  let g = Lazy.force Figures.geant in
  let power = Lazy.force Figures.geant_power in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.7 in
  Response.Framework.cache_clear ();
  let plain, d_plain =
    Obs.Span.timed "bench.cost.uncached" (fun () -> Response.Framework.precompute g power ~pairs)
  in
  let miss, d_miss =
    Obs.Span.timed "bench.cost.miss" (fun () ->
        Response.Framework.precompute_cached g power ~pairs)
  in
  let hit, d_hit =
    Obs.Span.timed "bench.cost.hit" (fun () ->
        Response.Framework.precompute_cached g power ~pairs)
  in
  record "precompute-uncached" d_plain;
  record "precompute-miss" d_miss;
  record "precompute-hit" d_hit;
  row "  %-26s %-12s %s@." "workload" "seconds" "vs uncached";
  row "  %-26s %-12.4f %s@." "precompute (uncached)" d_plain "1.00x";
  row "  %-26s %-12.4f %.2fx@." "precompute_cached (miss)" d_miss
    (d_plain /. Float.max 1e-9 d_miss);
  row "  %-26s %-12.6f %.0fx@." "precompute_cached (hit)" d_hit
    (d_plain /. Float.max 1e-9 d_hit);
  kvf "hit returned the cached tables" "%b" (miss == hit);
  kvf "cached tables match uncached" "%b"
    (Format.asprintf "%a" Response.Tables.pp plain = Format.asprintf "%a" Response.Tables.pp miss);
  (let s = Response.Framework.cache_stats () in
   kvf "cache counters" "hits=%d misses=%d evictions=%d" s.Eutil.Memo.hits s.Eutil.Memo.misses
     s.Eutil.Memo.evictions);
  subsection "warm-started re-solve of a branched LP (Simplex.solve_with_basis)";
  (* Shaped like the power-down formulation: equality rows (flow
     conservation blocks) force a cold solve through phase 1 with
     artificials, Le rows cap the blocks. Each block of 4 variables sums
     to 2, so x_i = 0.5 everywhere is feasible against caps at 0.75 of
     each row's coefficient mass. *)
  let n = if fast then 24 else 48 in
  let reps = if fast then 20 else 100 in
  let rng = Eutil.Prng.create 11 in
  let objective = Array.init n (fun _ -> Eutil.Prng.range rng (-5.0) 5.0) in
  let eq_rows =
    List.init (n / 4) (fun b ->
        (Array.init n (fun v -> if v / 4 = b then 1.0 else 0.0), Lp.Simplex.Eq, 2.0))
  in
  let cap_rows =
    List.init n (fun _ ->
        let coeffs = Array.init n (fun _ -> Eutil.Prng.range rng 0.0 1.0) in
        (coeffs, Lp.Simplex.Le, 0.75 *. Array.fold_left ( +. ) 0.0 coeffs))
  in
  let rows = eq_rows @ cap_rows in
  let parent = { Lp.Simplex.n_vars = n; objective; rows } in
  let _, basis = Lp.Simplex.solve_with_basis parent in
  (* The production shape (Milp branch-and-bound): the child appends one
     bound row at the end, so the parent basis stays index-stable. *)
  let cut = (Array.init n (fun v -> if v = 0 then 1.0 else 0.0), Lp.Simplex.Le, 0.25) in
  let child = { parent with Lp.Simplex.rows = rows @ [ cut ] } in
  let cold = ref Lp.Simplex.Infeasible and warm = ref Lp.Simplex.Infeasible in
  let (), d_cold =
    Obs.Span.timed "bench.cost.lp_cold" (fun () ->
        for _ = 1 to reps do
          cold := Lp.Simplex.solve child
        done)
  in
  let (), d_warm =
    Obs.Span.timed "bench.cost.lp_warm" (fun () ->
        for _ = 1 to reps do
          warm := fst (Lp.Simplex.solve_with_basis ?hint:basis child)
        done)
  in
  record "lp-resolve-cold" d_cold;
  record "lp-resolve-warm" d_warm;
  row "  %-26s %-12.4f (%d re-solves)@." "cold two-phase re-solve" d_cold reps;
  row "  %-26s %-12.4f %.2fx@." "warm dual re-solve" d_warm (d_cold /. Float.max 1e-9 d_warm);
  kvf "warm outcome matches cold" "%b"
    (match (!cold, !warm) with
    | Lp.Simplex.Optimal { objective = a; _ }, Lp.Simplex.Optimal { objective = b; _ } ->
        Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a)
    | _ -> false);
  cost_timings := List.rev !cost_timings

(* Self-hosted analyzer wall-clocks ("analyze" section): every pass of
   `respctl analyze` timed over the repo's own sources — the price CI
   pays on each @analyze run, with the call-graph build (shared by the
   four interprocedural passes) broken out. Skipped when the sources
   are not at hand (run from outside the repository root). *)

let analyze_timings : (string * float) list ref = ref []

let analyze () =
  section "Analyze: self-hosted static-analysis pass wall-clocks";
  analyze_timings := [];
  if not (Sys.file_exists "lib" && Sys.file_exists "bin") then
    kvf "skipped" "%s" "sources not found (run from the repository root)"
  else begin
    let record name dur = analyze_timings := (name, dur) :: !analyze_timings in
    let dirs = [ "lib"; "bin" ] in
    let entries = List.filter Sys.file_exists [ "bench"; "test"; "examples" ] in
    let manifest name =
      let path = Filename.concat "check" name in
      if Sys.file_exists path then Check.Share.parse_manifest (Check.Srclint.read_file path)
      else []
    in
    let timed name f =
      let r, d = Obs.Span.timed ("bench.analyze." ^ name) f in
      record name d;
      (r, d)
    in
    (* Mirror the dune aliases: @lint covers lib/bin/bench/test (examples
       keep their deliberate violations), @doc covers everything. *)
    let lint_dirs = List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ] in
    let lint, d_lint = timed "lint" (fun () -> Check.Srclint.lint_paths lint_dirs) in
    let flow, d_flow = timed "flow" (fun () -> Check.Flow.analyze_paths dirs) in
    let graph, d_graph = timed "callgraph" (fun () -> Check.Callgraph.build ~entries dirs) in
    let eff, d_eff = timed "effect" (fun () -> Check.Effect.analyze graph) in
    let share, d_share =
      timed "share" (fun () -> Check.Share.analyze ~manifest:(manifest "parallel.json") graph)
    in
    let cost, d_cost =
      timed "cost" (fun () -> Check.Cost.analyze ~manifest:(manifest "cost.json") graph)
    in
    let lock, d_lock =
      timed "locks" (fun () -> Check.Lock.analyze ~manifest:(manifest "locks.json") graph)
    in
    let doc, d_doc = timed "doc" (fun () -> Check.Doc.check_paths (dirs @ entries)) in
    row "  %-12s %-10s %s@." "pass" "seconds" "findings";
    List.iter
      (fun (name, d, fs) -> row "  %-12s %-10.4f %d@." name d (List.length fs))
      [
        ("lint", d_lint, lint);
        ("flow", d_flow, flow);
        ("effect", d_eff, eff);
        ("share", d_share, share);
        ("cost", d_cost, cost);
        ("locks", d_lock, lock);
        ("doc", d_doc, doc);
      ];
    row "  %-12s %-10.4f (shared by effect/share/cost/locks)@." "callgraph" d_graph;
    kvf "errors across all passes" "%d"
      (List.length (Check.Finding.errors (flow @ eff @ share @ cost @ lock)));
    analyze_timings := List.rev !analyze_timings
  end
