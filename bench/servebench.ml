(* "serve" section: loopback sweep of the respctld serving path.

   An in-process server on ephemeral ports (GEANT tables, 2 worker
   domains) is driven closed-loop by Serve.Load at increasing connection
   counts; throughput and latency percentiles land in serve_timings for
   the --json report. The acceptance SLO for the daemon is at least
   5000 req/s with p99 below 5 ms on this loopback path. *)

let serve_timings : (int * Serve.Load.report) list ref = ref []

let conn_sweep = [ 1; 2; 4 ]

let requests_for conns = (if Report.fast then 300 else 5000) * conns

let sweep_one port pairs conns =
  let cfg =
    {
      Serve.Load.default with
      Serve.Load.port;
      conns;
      requests = requests_for conns;
      duration_s = 120.0;
      pairs;
    }
  in
  match Serve.Load.run cfg with
  | Error e ->
      Report.row "  conns %d: load error: %s@." conns e;
      None
  | Ok r ->
      Report.row "  conns %d: %8.0f req/s   p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  (%d/%d ok)@."
        conns r.Serve.Load.qps r.Serve.Load.p50_ms r.Serve.Load.p90_ms r.Serve.Load.p99_ms
        r.Serve.Load.completed r.Serve.Load.sent;
      Some (conns, r)

let serve () =
  Report.section "serve: respctld loopback wire-protocol sweep (GEANT)";
  serve_timings := [];
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.7 in
  let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
  let config = Response.Framework.default in
  match Serve.State.create ~config ~jobs:1 g power ~pairs ~demand with
  | exception Invalid_argument msg -> Report.row "  setup failed: %s@." msg
  | state -> (
      let sconfig = { Serve.Server.default_config with port = 0; http_port = 0; workers = 2 } in
      match Serve.Server.start ~config:sconfig state with
      | exception Unix.Unix_error (err, _, _) ->
          Serve.State.stop state;
          Report.row "  cannot listen: %s@." (Unix.error_message err)
      | server ->
          let port = Serve.Server.port server in
          let parr = Array.of_list pairs in
          List.iter
            (fun conns ->
              match sweep_one port parr conns with
              | Some entry -> serve_timings := entry :: !serve_timings
              | None -> ())
            conn_sweep;
          Serve.Server.stop server;
          Serve.State.stop state;
          serve_timings := List.rev !serve_timings;
          Report.note "closed-loop over loopback TCP; SLO: >= 5000 req/s with p99 < 5 ms")
