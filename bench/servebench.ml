(* "serve" section: loopback sweep of the respctld serving path.

   An in-process server on ephemeral ports (GEANT tables, 2 worker
   domains) is driven closed-loop by Serve.Load at increasing connection
   counts; throughput and latency percentiles land in serve_timings for
   the --json report. The acceptance SLO for the daemon is at least
   5000 req/s with p99 below 5 ms on this loopback path. *)

let serve_timings : (int * Serve.Load.report) list ref = ref []

let conn_sweep = [ 1; 2; 4 ]

let requests_for conns = (if Report.fast then 300 else 5000) * conns

let sweep_one port pairs conns =
  let cfg =
    {
      Serve.Load.default with
      Serve.Load.port;
      conns;
      requests = requests_for conns;
      duration_s = 120.0;
      pairs;
    }
  in
  match Serve.Load.run cfg with
  | Error e ->
      Report.row "  conns %d: load error: %s@." conns e;
      None
  | Ok r ->
      Report.row "  conns %d: %8.0f req/s   p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  (%d/%d ok)@."
        conns r.Serve.Load.qps r.Serve.Load.p50_ms r.Serve.Load.p90_ms r.Serve.Load.p99_ms
        r.Serve.Load.completed r.Serve.Load.sent;
      Some (conns, r)

(* Guard.admit sits on the per-request hot path (declared in
   check/cost.json) and the journal append sits on every acknowledged
   update: pin their unit costs so a regression is a visible number, not
   a vibe. The journal runs with fsync off — the bench measures the
   encode/CRC/write path, not the disk. *)
let resilience_micro () =
  Report.subsection "resilience: admission hot path and journal append";
  let iters = if Report.fast then 200_000 else 2_000_000 in
  let guard = Serve.Guard.create Serve.Guard.default in
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    match Serve.Guard.admit guard ~now:(float_of_int i *. 1e-6) with
    | Serve.Guard.Admit -> ()
    | Serve.Guard.Shed -> ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Report.row "  Guard.admit: %.0f ns/op (%d ops in %.3f s)@."
    (dt /. float_of_int iters *. 1e9)
    iters dt;
  let append_bps = Eutil.Units.to_float (Eutil.Units.gbps 1.0) in
  let jpath = Filename.temp_file "bench-serve" ".journal" in
  (match Serve.Journal.open_ ~fsync:false jpath with
  | Error e -> Report.row "  journal open failed: %s@." e
  | Ok j ->
      let appends = if Report.fast then 5_000 else 50_000 in
      let t0 = Unix.gettimeofday () in
      for i = 0 to appends - 1 do
        ignore
          (Serve.Journal.append j
             (Serve.Wire.Demand_update
                { origin = i land 0xff; dest = 256 + (i land 0xff); bps = append_bps }))
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Serve.Journal.close j;
      Report.row "  Journal.append (no fsync): %.2f us/record (%d records in %.3f s)@."
        (dt /. float_of_int appends *. 1e6)
        appends dt);
  (try Sys.remove jpath with Sys_error _ -> ());
  Report.note "fsync'd appends are disk-bound; the daemon pays one per acknowledged update"

let serve () =
  Report.section "serve: respctld loopback wire-protocol sweep (GEANT)";
  serve_timings := [];
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.7 in
  let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
  let config = Response.Framework.default in
  match Serve.State.create ~config ~jobs:1 g power ~pairs ~demand with
  | exception Invalid_argument msg -> Report.row "  setup failed: %s@." msg
  | state -> (
      let sconfig = { Serve.Server.default_config with port = 0; http_port = 0; workers = 2 } in
      match Serve.Server.start ~config:sconfig state with
      | exception Unix.Unix_error (err, _, _) ->
          Serve.State.stop state;
          Report.row "  cannot listen: %s@." (Unix.error_message err)
      | server ->
          let port = Serve.Server.port server in
          let parr = Array.of_list pairs in
          List.iter
            (fun conns ->
              match sweep_one port parr conns with
              | Some entry -> serve_timings := entry :: !serve_timings
              | None -> ())
            conn_sweep;
          Serve.Server.stop server;
          Serve.State.stop state;
          serve_timings := List.rev !serve_timings;
          Report.note "closed-loop over loopback TCP; SLO: >= 5000 req/s with p99 < 5 ms");
  resilience_micro ()
