module G = Topo.Graph
module U = Eutil.Units

(* Pod index of a host node, from the fat-tree layout. *)
let pod_tables ft =
  let g = ft.Topo.Fattree.graph in
  let k = ft.Topo.Fattree.k in
  let half = k / 2 in
  let pod_of = Array.make (G.node_count g) (-1) in
  Array.iteri (fun i h -> pod_of.(h) <- i / (half * half)) ft.Topo.Fattree.hosts;
  Array.iteri (fun i e -> pod_of.(e) <- i / half) ft.Topo.Fattree.edges;
  Array.iteri (fun i a -> pod_of.(a) <- i / half) ft.Topo.Fattree.aggs;
  pod_of

(* Per-pod demand totals: cross-pod egress/ingress and intra-pod inter-edge
   volume (traffic between hosts of the same pod under different edge
   switches still needs an aggregation switch). *)
let pod_demands ft tm =
  let g = ft.Topo.Fattree.graph in
  let k = ft.Topo.Fattree.k in
  let half = k / 2 in
  let pod_of = pod_tables ft in
  let edge_index = Array.make (G.node_count g) (-1) in
  Array.iteri (fun i h -> edge_index.(h) <- i / half) ft.Topo.Fattree.hosts;
  let cross_out = Array.make k 0.0 in
  let cross_in = Array.make k 0.0 in
  let intra = Array.make k 0.0 in
  Traffic.Matrix.iter_flows tm ~f:(fun o d v ->
      let po = pod_of.(o) and pd = pod_of.(d) in
      if po <> pd then begin
        cross_out.(po) <- cross_out.(po) +. v;
        cross_in.(pd) <- cross_in.(pd) +. v
      end
      else if edge_index.(o) <> edge_index.(d) then intra.(po) <- intra.(po) +. v);
  (cross_out, cross_in, intra)

let build_state ft ~aggs_per_pod ~cores =
  let g = ft.Topo.Fattree.graph in
  let k = ft.Topo.Fattree.k in
  let half = k / 2 in
  let st = Topo.State.all_off g in
  let link_on i j =
    match G.find_arc g i j with
    | Some a -> Topo.State.set_link g st (G.arc g a).G.link true
    | None -> assert false
  in
  (* All host-edge links stay on: edge switches cannot sleep. *)
  Array.iteri
    (fun i h ->
      let e = ft.Topo.Fattree.edges.(i / half) in
      link_on h e)
    ft.Topo.Fattree.hosts;
  (* Edge to the first [aggs_per_pod] aggregation switches of its pod. *)
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to aggs_per_pod - 1 do
        link_on ft.Topo.Fattree.edges.((pod * half) + e) ft.Topo.Fattree.aggs.((pod * half) + a)
      done
    done
  done;
  (* Active cores: [cores] of them, chosen round-robin over the groups of the
     active aggregation switches so that every active core is reachable. *)
  let m = max 1 aggs_per_pod in
  for i = 0 to cores - 1 do
    let group = i mod m in
    let idx = i / m in
    if idx < half then begin
      let core = ft.Topo.Fattree.cores.((group * half) + idx) in
      for pod = 0 to k - 1 do
        link_on ft.Topo.Fattree.aggs.((pod * half) + group) core
      done
    end
  done;
  st

let minimal_subset ?margin ft power tm =
  let margin = match margin with Some m -> m | None -> U.ratio 1.0 in
  let g = ft.Topo.Fattree.graph in
  let k = ft.Topo.Fattree.k in
  let half = k / 2 in
  let cap = U.to_float (U.( *: ) margin (U.bps (G.link_capacity g 0))) in
  if cap <= 0.0 then
    invalid_arg "Elastic.minimal_subset: fat-tree link capacity (times margin) must be positive";
  let cross_out, cross_in, intra = pod_demands ft tm in
  let needs_agg = Array.exists (fun v -> v > 0.0) intra in
  let max_cross =
    Array.fold_left max 0.0 (Array.append cross_out cross_in)
  in
  let total_cross = Array.fold_left ( +. ) 0.0 cross_out in
  (* Aggregation switches per pod: enough uplink bandwidth for the pod's
     cross traffic ((k/2) core uplinks each). *)
  let demand_aggs =
    let per_agg = float_of_int half *. cap in
    assert (per_agg > 0.0);
    int_of_float (ceil (max_cross /. per_agg))
  in
  let base_aggs =
    if max_cross > 0.0 || needs_agg then max 1 demand_aggs else 0
  in
  (* Core switches: each handles up to [cap] per pod; bounded below by the
     per-pod bottleneck and by the aggregate core load. *)
  let base_cores =
    if max_cross > 0.0 then
      max
        (int_of_float (ceil (max_cross /. cap)))
        (int_of_float (ceil (total_cross /. (float_of_int k *. cap))))
    else 0
  in
  let rec search aggs cores =
    if aggs > half then None
    else begin
      let cores = max cores (if max_cross > 0.0 then 1 else 0) in
      if cores > aggs * half then search (aggs + 1) base_cores
      else begin
        let st = build_state ft ~aggs_per_pod:aggs ~cores in
        match Minimal.evaluate ~margin g power tm st with
        | Some r -> Some r
        | None ->
            (* Escalate: more cores first, then more aggregation switches. *)
            if cores < aggs * half then search aggs (cores + 1)
            else search (aggs + 1) base_cores
      end
    end
  in
  search (max base_aggs (if needs_agg then 1 else 0)) base_cores
