(** Unsplittable-flow routing with capacity accounting: can a given active
    subgraph carry a traffic matrix?

    The underlying decision problem is NP-hard for unsplittable flows, so this
    is a deterministic constructive check (the standard approach in the
    energy-aware routing literature): flows are placed in decreasing volume
    order on congestion-aware shortest paths among arcs with sufficient
    residual capacity. A [Some] answer is a certificate of feasibility; [None]
    is conservative. *)

type t
(** Mutable placement state: active links, per-arc residual capacity and the
    committed path of every placed flow. *)

val create : ?margin:float -> ?state:Topo.State.t -> Topo.Graph.t -> t
(** Fresh placement over the given activity state (all-on by default).
    [margin] is the paper's safety margin [sm] (Section 4.5): flows may use at
    most [margin * capacity] of every arc (default 1.0).
    @raise Invalid_argument if [margin] is not positive. *)

val graph : t -> Topo.Graph.t
val state : t -> Topo.State.t

val margin : t -> float

val residual : t -> int -> float
(** Remaining usable capacity of an arc. *)

val load : t -> int -> float
(** Committed load on an arc. *)

val link_load : t -> int -> float
(** Committed load on an undirected link (max of the two directions). *)

val utilization : t -> int -> float
(** Arc load divided by arc capacity. *)

val max_utilization : t -> float

val congestion_weight : t -> Topo.Graph.arc -> float
(** Routing weight: latency scaled by (1 + utilisation), so placement spreads
    load before saturating. *)

val place : t -> int -> int -> float -> Topo.Path.t option
(** [place t o d demand] routes the flow on the best feasible path and commits
    it. [None] when no active path has enough residual capacity. A flow for
    the pair must not already be placed.
    @raise Invalid_argument if the pair is already placed or [demand] is
    not positive. *)

val place_on : t -> Topo.Path.t -> float -> bool
(** Commits a flow on an explicit path if the path is active and has residual
    capacity everywhere; returns false (and commits nothing) otherwise.
    @raise Invalid_argument if the path's pair is already placed. *)

val remove : t -> int -> int -> (Topo.Path.t * float) option
(** Withdraws the committed flow of a pair, restoring residual capacity. *)

val path_of : t -> int -> int -> Topo.Path.t option

val flows : t -> (int * int * float) list
(** Committed flows (pair and volume), in placement-independent order. *)

val route_matrix : t -> Traffic.Matrix.t -> bool
(** Places every positive demand of the matrix (largest first). Returns false
    and leaves the placement in a partially-filled state if some flow cannot
    be placed — callers doing trial moves should use {!snapshot}/{!restore}
    or rebuild. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
