(** ElasticTree-style topology-aware heuristic for fat-trees [Heller et al.,
    NSDI 2010]: exploit the regular structure to pick the number of active
    aggregation and core switches directly from the demand, in linear time,
    instead of searching the whole subset space. Only applicable to fat-trees
    (the paper makes the same remark). *)

val minimal_subset :
  ?margin:Eutil.Units.ratio Eutil.Units.q ->
  Topo.Fattree.t ->
  Power.Model.t ->
  Traffic.Matrix.t ->
  Minimal.result option
(** Computes the needed aggregation-switch count per pod and core-switch
    count from pod-level traffic totals, activates the leftmost such subset,
    and verifies by routing; capacity is escalated until the placement
    succeeds. [None] if even the full fat-tree cannot carry the matrix.
    @raise Invalid_argument if the fat-tree's link capacity (scaled by
    [margin]) is not positive. *)
