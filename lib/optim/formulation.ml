module G = Topo.Graph
module U = Eutil.Units

type exact = {
  state : Topo.State.t;
  routing : (int * int, Topo.Path.t) Hashtbl.t;
  power_watts : float;
}

let solve ?margin ?(max_nodes = 200_000) ?(pin_link = fun _ -> false)
    ?(delay_bound = fun _ -> None) g power tm =
  let margin = U.to_float (match margin with Some m -> m | None -> U.ratio 1.0) in
  let m = Lp.Model.create () in
  let flows = Traffic.Matrix.flows tm in
  let n_nodes = G.node_count g in
  let n_links = G.link_count g in
  let n_arcs = G.arc_count g in
  let x = Array.init n_nodes (fun i -> Lp.Model.binary m (Printf.sprintf "X_%d" i)) in
  let y = Array.init n_links (fun l -> Lp.Model.binary m (Printf.sprintf "Y_%d" l)) in
  let f =
    List.map
      (fun (o, d, v) ->
        ((o, d, v), Array.init n_arcs (fun a -> Lp.Model.binary m (Printf.sprintf "f_%d_%d_%d" o d a))))
      flows
  in
  (* Flow conservation. *)
  List.iter
    (fun ((o, d, _), fv) ->
      for n = 0 to n_nodes - 1 do
        let terms = ref [] in
        Array.iter (fun a -> terms := (-1.0, fv.(a)) :: !terms) (G.in_arcs g n);
        Array.iter (fun a -> terms := (1.0, fv.(a)) :: !terms) (G.out_arcs g n);
        let rhs = if n = o then 1.0 else if n = d then -1.0 else 0.0 in
        Lp.Model.constr m !terms Lp.Simplex.Eq rhs
      done)
    f;
  (* Capacity (2) and flow-on-active-link coupling. *)
  for a = 0 to n_arcs - 1 do
    let arc = G.arc g a in
    (* Capacity, pre-scaled by the arc capacity for numerical conditioning:
       sum_v (v/C) f_a <= margin * Y. *)
    let cap_terms =
      (-.margin, y.(arc.G.link)) :: List.map (fun ((_, _, v), fv) -> (v /. arc.G.capacity, fv.(a))) f
    in
    Lp.Model.constr m cap_terms Lp.Simplex.Le 0.0;
    List.iter
      (fun (_, fv) -> Lp.Model.constr m [ (1.0, fv.(a)); (-1.0, y.(arc.G.link)) ] Lp.Simplex.Le 0.0)
      f
  done;
  (* Constraint (1): links of a powered-off router are inactive; and
     constraint (3): a router with no active link is off. *)
  for l = 0 to n_links - 1 do
    let i, j = G.link_endpoints g l in
    Lp.Model.constr m [ (1.0, y.(l)); (-1.0, x.(i)) ] Lp.Simplex.Le 0.0;
    Lp.Model.constr m [ (1.0, y.(l)); (-1.0, x.(j)) ] Lp.Simplex.Le 0.0;
    if pin_link l then Lp.Model.constr m [ (1.0, y.(l)) ] Lp.Simplex.Ge 1.0
  done;
  for n = 0 to n_nodes - 1 do
    let incident =
      let acc = ref [] in
      Array.iter (fun a -> acc := (G.arc g a).G.link :: !acc) (G.out_arcs g n);
      List.sort_uniq Int.compare !acc
    in
    Lp.Model.constr m
      ((1.0, x.(n)) :: List.map (fun l -> (-1.0, y.(l))) incident)
      Lp.Simplex.Le 0.0
  done;
  (* Delay bound (4) for REsPoNse-lat. *)
  List.iter
    (fun ((o, d, _), fv) ->
      match delay_bound (o, d) with
      | None -> ()
      | Some bound ->
          let terms = ref [] in
          Array.iteri (fun a v -> terms := ((G.arc g a).G.latency, v) :: !terms) fv;
          Lp.Model.constr m !terms Lp.Simplex.Le bound)
    f;
  (* Objective: chassis power on X, link power on Y. The coefficients are
     typed watts until this point; the LP substrate is the dimensionless
     boundary, so the conversion is an explicit, annotated escape. *)
  let coeff (w : U.watts U.q) = U.to_float w in
  let obj =
    Array.to_list (Array.mapi (fun i v -> (coeff (Power.Model.node_power power g i), v)) x)
    @ Array.to_list (Array.mapi (fun l v -> (coeff (Power.Model.link_power power g l), v)) y)
  in
  Lp.Model.minimize m obj;
  (* The simplex substrate silently misbehaves on NaN/infinite input, so
     validate the constructed model before handing it over (the check is a
     linear scan, negligible next to branch-and-bound). *)
  (match Check.Finding.errors (Check.Invariant.check_model m) with
  | [] -> ()
  | errors ->
      invalid_arg ("Formulation.solve: malformed LP model:\n" ^ Check.Finding.render errors));
  match Lp.Model.solve ~max_nodes m with
  | `Infeasible -> `Infeasible
  | `Unbounded -> `Infeasible (* power is nonnegative; cannot happen *)
  | `Node_limit -> `Limit
  | `Optimal sol ->
      let state = Topo.State.all_off g in
      for l = 0 to n_links - 1 do
        if Lp.Model.value sol y.(l) > 0.5 then Topo.State.set_link g state l true
      done;
      let routing = Hashtbl.create (List.length f) in
      let visited = Array.make n_nodes false in
      List.iter
        (fun ((o, d, _), fv) ->
          (* Extract the o->d path from the support of f by depth-first
             search. The support always contains such a path (conservation),
             but it may also contain cost-free cycles on links that other
             flows keep active, so a blind walk could loop; DFS with a
             visited set cannot. *)
          Array.fill visited 0 n_nodes false;
          let rec dfs node acc =
            if node = d then Some (List.rev acc)
            else begin
              visited.(node) <- true;
              Array.fold_left
                (fun found a ->
                  match found with
                  | Some _ -> found
                  | None ->
                      let arc = G.arc g a in
                      if Lp.Model.value sol fv.(a) > 0.5 && not visited.(arc.G.dst) then
                        dfs arc.G.dst (a :: acc)
                      else None)
                None (G.out_arcs g node)
            end
          in
          match dfs o [] with
          | Some arcs -> Hashtbl.replace routing (o, d) (Topo.Path.of_arcs g arcs)
          | None -> failwith "Formulation.solve: broken flow extraction")
        f;
      `Optimal { state; routing; power_watts = Lp.Model.objective sol }
