(** GreenTE-style power-aware traffic engineering heuristic [Zhang et al.,
    ICNP 2010]: the search is restricted to the k shortest paths of every
    origin-destination pair, which bounds computation time at some cost in
    savings. Used by the paper as the REsPoNse-heuristic variant. *)

val candidate_table :
  Topo.Graph.t -> ?k:int -> pairs:(int * int) list -> unit ->
  (int * int, Topo.Path.t list) Hashtbl.t
(** The k (default 4) shortest latency paths per pair. *)

val minimal_subset :
  ?margin:Eutil.Units.ratio Eutil.Units.q ->
  ?k:int ->
  ?pinned:(int -> bool) ->
  Topo.Graph.t ->
  Power.Model.t ->
  Traffic.Matrix.t ->
  Minimal.result option
(** Power-down greedy with rerouting restricted to the candidate table. *)
