module U = Eutil.Units

type result = {
  state : Topo.State.t;
  routing : (int * int, Topo.Path.t) Hashtbl.t;
  arc_load : float array;
  power_watts : float;
  power_percent : float;
}

type reroute = Feasible.t -> int -> int -> float -> Topo.Path.t option

let dijkstra_reroute f o d demand = Feasible.place f o d demand

let ksp_reroute table f o d demand =
  match Hashtbl.find_opt table (o, d) with
  | None -> None
  | Some candidates ->
      let g = Feasible.graph f in
      let st = Feasible.state f in
      let usable =
        List.filter
          (fun p ->
            Topo.Path.active g st p
            && Array.for_all (fun a -> Feasible.residual f a >= demand -. 1e-9) p.Topo.Path.arcs)
          candidates
      in
      let cost p =
        Array.fold_left
          (fun acc a -> acc +. Feasible.congestion_weight f (Topo.Graph.arc g a))
          0.0 p.Topo.Path.arcs
      in
      let best =
        List.fold_left
          (fun acc p ->
            match acc with
            | Some (bc, _) when bc <= cost p -> acc
            | _ -> Some (cost p, p))
          None usable
      in
      Option.map
        (fun (_, p) ->
          let ok = Feasible.place_on f p demand in
          assert ok;
          p)
        best

(* Candidate moves: a move is a set of links switched off together. *)
type move = { links : int list; gain : float }

let router_moves g power tm =
  (* A router can only be switched off when it neither originates nor
     terminates demand. *)
  let has_demand = Array.make (Topo.Graph.node_count g) false in
  Traffic.Matrix.iter_flows tm ~f:(fun o d _ ->
      has_demand.(o) <- true;
      has_demand.(d) <- true);
  Topo.Graph.fold_nodes g ~init:[] ~f:(fun acc n ->
      if has_demand.(n) || Topo.Graph.role g n = Topo.Graph.Host then acc
      else begin
        let links =
          let ls = ref [] in
          Array.iter
            (fun a -> ls := (Topo.Graph.arc g a).Topo.Graph.link :: !ls)
            (Topo.Graph.out_arcs g n);
          List.sort_uniq Int.compare !ls
        in
        let gain =
          U.to_float
            (List.fold_left
               (fun s l -> U.( +: ) s (Power.Model.link_power power g l))
               (Power.Model.node_power power g n)
               links)
        in
        { links; gain } :: acc
      end)
  |> List.sort (Eutil.Order.by (fun m -> (m.gain, m.links))
                  (Eutil.Order.pair (Eutil.Order.desc Float.compare) (List.compare Int.compare)))

let link_moves g power =
  Topo.Graph.fold_links g ~init:[] ~f:(fun acc l ->
      { links = [ l ]; gain = U.to_float (Power.Model.link_power power g l) } :: acc)
  |> List.sort (Eutil.Order.by (fun m -> (m.gain, m.links))
                  (Eutil.Order.pair (Eutil.Order.desc Float.compare) (List.compare Int.compare)))

let result_of g power f =
  let st = Feasible.state f in
  let routing = Hashtbl.create 64 in
  List.iter
    (fun (o, d, _) ->
      match Feasible.path_of f o d with Some p -> Hashtbl.replace routing (o, d) p | None -> ())
    (Feasible.flows f);
  let arc_load = Array.init (Topo.Graph.arc_count g) (fun a -> Feasible.load f a) in
  let power_watts = U.to_float (Power.Model.total power g st) in
  {
    state = st;
    routing;
    arc_load;
    power_watts;
    power_percent = Power.Model.percent_of_full power g st;
  }

let try_move g f reroute move =
  let st = Feasible.state f in
  let relevant = List.filter (fun l -> Topo.State.link_on st l) move.links in
  if relevant = [] then false
  else begin
    let affected =
      List.filter
        (fun (o, d, _) ->
          match Feasible.path_of f o d with
          | Some p -> List.exists (fun l -> Topo.Path.uses_link g p l) relevant
          | None -> false)
        (Feasible.flows f)
      |> List.sort
           (Eutil.Order.by
              (fun (o, d, v) -> (v, o, d))
              (Eutil.Order.triple (Eutil.Order.desc Float.compare) Int.compare Int.compare))
    in
    let snap = Feasible.snapshot f in
    List.iter (fun (o, d, _) -> ignore (Feasible.remove f o d)) affected;
    List.iter (fun l -> Topo.State.set_link g st l false) relevant;
    let ok = List.for_all (fun (o, d, v) -> reroute f o d v <> None) affected in
    if not ok then begin
      List.iter (fun l -> Topo.State.set_link g st l true) relevant;
      Feasible.restore f snap
    end;
    ok
  end

let power_down ?margin ?(pinned = fun _ -> false) ?(reroute = dijkstra_reroute) g power
    tm =
  let margin = U.to_float (match margin with Some m -> m | None -> U.ratio 1.0) in
  let f = Feasible.create ~margin g in
  if not (Feasible.route_matrix f tm) then None
  else begin
    let moves = router_moves g power tm @ link_moves g power in
    List.iter
      (fun move ->
        if not (List.exists pinned move.links) then ignore (try_move g f reroute move))
      moves;
    Some (result_of g power f)
  end

let evaluate ?margin g power tm state =
  let margin = U.to_float (match margin with Some m -> m | None -> U.ratio 1.0) in
  let f = Feasible.create ~margin ~state g in
  if Feasible.route_matrix f tm then Some (result_of g power f) else None
