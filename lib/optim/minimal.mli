(** Minimal network subset computation: which routers and links can be
    switched off while the network still carries a given traffic matrix
    (Section 2.2.1's optimisation problem).

    The solver is the power-down greedy with rerouting used throughout the
    energy-aware routing literature [15, 25]: starting from the fully powered
    network, elements are considered in decreasing power order and switched
    off whenever the affected flows can be rerouted on the remaining active
    subgraph. Whole routers (chassis + all ports) are tried before individual
    links, since the chassis dominates router power. The result is this
    repository's stand-in for the paper's CPLEX-computed "optimal" (see
    DESIGN.md); it is cross-validated against the exact MILP of
    {!Formulation} on small instances. *)

type result = {
  state : Topo.State.t;  (** active element set *)
  routing : (int * int, Topo.Path.t) Hashtbl.t;  (** path per routed pair *)
  arc_load : float array;  (** committed load per arc *)
  power_watts : float;
  power_percent : float;  (** relative to the fully powered network *)
}

type reroute = Feasible.t -> int -> int -> float -> Topo.Path.t option
(** Strategy for re-placing one displaced flow; must commit on success. *)

val dijkstra_reroute : reroute
(** Unrestricted congestion-aware shortest-path rerouting ({!Feasible.place}). *)

val ksp_reroute : (int * int, Topo.Path.t list) Hashtbl.t -> reroute
(** GreenTE-style rerouting restricted to precomputed k-shortest candidate
    paths per pair; the cheapest feasible candidate wins. *)

val power_down :
  ?margin:Eutil.Units.ratio Eutil.Units.q ->
  ?pinned:(int -> bool) ->
  ?reroute:reroute ->
  Topo.Graph.t ->
  Power.Model.t ->
  Traffic.Matrix.t ->
  result option
(** Runs the greedy. [pinned l] protects link [l] from being switched off
    (used to keep already-deployed always-on elements powered when computing
    on-demand paths). [None] when even the full network cannot carry the
    matrix. Deterministic: ties are broken by element identifier. *)

val evaluate :
  ?margin:Eutil.Units.ratio Eutil.Units.q ->
  Topo.Graph.t ->
  Power.Model.t ->
  Traffic.Matrix.t ->
  Topo.State.t ->
  result option
(** Routes the matrix on a fixed activity state without modifying it —
    used to test whether a stored configuration still carries today's
    demand. The reported power is that of the given state. *)
