type t = {
  g : Topo.Graph.t;
  margin_v : float;
  st : Topo.State.t;
  residual_a : float array;
  load_a : float array;
  placed : (int * int, Topo.Path.t * float) Hashtbl.t;
}

let create ?(margin = 1.0) ?state g =
  if margin <= 0.0 then invalid_arg "Feasible.create: margin";
  let st = match state with Some s -> s | None -> Topo.State.all_on g in
  let n_arcs = Topo.Graph.arc_count g in
  let residual_a =
    Array.init n_arcs (fun a -> margin *. (Topo.Graph.arc g a).Topo.Graph.capacity)
  in
  { g; margin_v = margin; st; residual_a; load_a = Array.make n_arcs 0.0; placed = Hashtbl.create 64 }

let graph t = t.g
let state t = t.st
let margin t = t.margin_v
let residual t a = t.residual_a.(a)
let load t a = t.load_a.(a)

let link_load t l =
  let a1, a2 = Topo.Graph.arcs_of_link t.g l in
  max t.load_a.(a1) t.load_a.(a2)

let utilization t a = t.load_a.(a) /. (Topo.Graph.arc t.g a).Topo.Graph.capacity

let max_utilization t =
  let m = ref 0.0 in
  Array.iteri (fun a _ -> m := max !m (utilization t a)) t.load_a;
  !m

let congestion_weight t arc =
  arc.Topo.Graph.latency *. (1.0 +. (3.0 *. utilization t arc.Topo.Graph.id))

let commit t p demand =
  Array.iter
    (fun a ->
      t.residual_a.(a) <- t.residual_a.(a) -. demand;
      t.load_a.(a) <- t.load_a.(a) +. demand)
    p.Topo.Path.arcs;
  Hashtbl.replace t.placed (p.Topo.Path.src, p.Topo.Path.dst) (p, demand)

let place t o d demand =
  if Hashtbl.mem t.placed (o, d) then invalid_arg "Feasible.place: already placed";
  if demand <= 0.0 then invalid_arg "Feasible.place: demand";
  let active arc =
    Topo.State.arc_on t.g t.st arc.Topo.Graph.id
    && t.residual_a.(arc.Topo.Graph.id) >= demand -. 1e-9
  in
  match
    Routing.Dijkstra.shortest_path t.g ~weight:(congestion_weight t) ~active ~src:o ~dst:d ()
  with
  | None -> None
  | Some p ->
      commit t p demand;
      Some p

let place_on t p demand =
  let key = (p.Topo.Path.src, p.Topo.Path.dst) in
  if Hashtbl.mem t.placed key then invalid_arg "Feasible.place_on: already placed";
  let ok =
    Array.for_all
      (fun a ->
        Topo.State.arc_on t.g t.st a && t.residual_a.(a) >= demand -. 1e-9)
      p.Topo.Path.arcs
  in
  if ok then commit t p demand;
  ok

let remove t o d =
  match Hashtbl.find_opt t.placed (o, d) with
  | None -> None
  | Some (p, demand) ->
      Array.iter
        (fun a ->
          t.residual_a.(a) <- t.residual_a.(a) +. demand;
          t.load_a.(a) <- t.load_a.(a) -. demand)
        p.Topo.Path.arcs;
      Hashtbl.remove t.placed (o, d);
      Some (p, demand)

let path_of t o d = Option.map fst (Hashtbl.find_opt t.placed (o, d))

let flows t =
  Hashtbl.fold (fun (o, d) (_, v) acc -> (o, d, v) :: acc) t.placed []
  |> List.sort (Eutil.Order.triple Int.compare Int.compare Float.compare)

let route_matrix t tm =
  List.for_all
    (fun (o, d, demand) -> place t o d demand <> None)
    (Traffic.Matrix.flows_desc tm)

type snapshot = {
  s_residual : float array;
  s_load : float array;
  s_placed : (int * int, Topo.Path.t * float) Hashtbl.t;
}

let snapshot t =
  {
    s_residual = Array.copy t.residual_a;
    s_load = Array.copy t.load_a;
    s_placed = Hashtbl.copy t.placed;
  }

let restore t s =
  Array.blit s.s_residual 0 t.residual_a 0 (Array.length t.residual_a);
  Array.blit s.s_load 0 t.load_a 0 (Array.length t.load_a);
  Hashtbl.reset t.placed;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.s_placed [] in
  List.iter
    (fun (k, v) -> Hashtbl.replace t.placed k v)
    (List.sort (Eutil.Order.by fst Eutil.Order.int_pair) entries)
