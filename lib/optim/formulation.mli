(** Exact mixed-integer formulation of the energy-aware routing problem of
    Section 2.2.1, solved with the {!Lp} substrate. Binary X_i per router,
    Y per link, and unsplittable per-arc flow indicators f_{i->j}(O,D);
    the objective minimises chassis plus active-link power subject to
    multi-commodity flow conservation, capacity, and the paper's coupling
    constraints (1)-(3). Only tractable for small instances — the paper makes
    the same observation about CPLEX — and used here to validate the greedy
    heuristics. *)

type exact = {
  state : Topo.State.t;
  routing : (int * int, Topo.Path.t) Hashtbl.t;
  power_watts : float;
}

val solve :
  ?margin:Eutil.Units.ratio Eutil.Units.q ->
  ?max_nodes:int ->
  ?pin_link:(int -> bool) ->
  ?delay_bound:(int * int -> float option) ->
  Topo.Graph.t ->
  Power.Model.t ->
  Traffic.Matrix.t ->
  [ `Optimal of exact | `Infeasible | `Limit ]
(** [pin_link] forces Y = 1 (elements already deployed as always-on);
    [delay_bound] adds the REsPoNse-lat constraint (4): the propagation delay
    of a pair's path must not exceed the bound.
    @raise Invalid_argument if the generated LP model fails its own
    invariant check, and [Failure] if a solved model yields no extractable
    flow — both are bug guards, not input errors. *)
