let reference_bandwidth g =
  Topo.Graph.fold_arcs g ~init:0.0 ~f:(fun acc a -> max acc a.Topo.Graph.capacity)

let invcap g =
  let ref_bw = reference_bandwidth g in
  fun arc -> ref_bw /. arc.Topo.Graph.capacity

let path g ?weight ~src ~dst () =
  let weight = match weight with Some w -> w | None -> invcap g in
  Dijkstra.shortest_path g ~weight ~src ~dst ()

let routes g ?weight ~pairs () =
  let weight = match weight with Some w -> w | None -> invcap g in
  let by_origin = Hashtbl.create 16 in
  List.iter
    (fun (o, d) ->
      let l = Option.value (Hashtbl.find_opt by_origin o) ~default:[] in
      Hashtbl.replace by_origin o (d :: l))
    pairs;
  let table = Hashtbl.create (List.length pairs) in
  let origins = Hashtbl.fold (fun o dests acc -> (o, dests) :: acc) by_origin [] in
  List.iter
    (fun (o, dests) ->
      let res = Dijkstra.run g ~weight ~src:o () in
      List.iter
        (fun d ->
          match Dijkstra.path_to g res d with
          | Some p -> Hashtbl.replace table (o, d) p
          | None -> ())
        dests)
    (List.sort (Eutil.Order.by fst Int.compare) origins);
  table

let delay_bound_table g ~pairs ~beta =
  let table = routes g ~pairs () in
  let bounds = Hashtbl.create (Hashtbl.length table) in
  let entries = Hashtbl.fold (fun od p acc -> (od, p) :: acc) table [] in
  List.iter
    (fun (od, p) -> Hashtbl.replace bounds od ((1.0 +. beta) *. Topo.Path.latency g p))
    (List.sort (Eutil.Order.by fst Eutil.Order.int_pair) entries);
  bounds
