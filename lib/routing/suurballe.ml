let default_weight arc = arc.Topo.Graph.latency

let disjoint_pair g ?(weight = default_weight) ?(active = fun _ -> true) ~src ~dst () =
  (* Pass 1: plain shortest path, also yielding the distance potentials. *)
  let first = Dijkstra.run g ~weight ~active ~src () in
  if first.Dijkstra.dist.(dst) = infinity then None
  else begin
    let dist = first.Dijkstra.dist in
    let p1_arcs = Hashtbl.create 16 in
    let rec collect node =
      let a = first.Dijkstra.prev_arc.(node) in
      if a >= 0 then begin
        Hashtbl.replace p1_arcs a ();
        collect (Topo.Graph.arc g a).Topo.Graph.src
      end
    in
    collect dst;
    (* Pass 2 runs on the residual graph: arcs of P1 are forbidden, their
       reversals cost 0; all other arcs use reduced costs
       w'(u,v) = w + d(u) - d(v) >= 0 (so Dijkstra stays valid). *)
    let reduced arc =
      let u = arc.Topo.Graph.src and v = arc.Topo.Graph.dst in
      if Hashtbl.mem p1_arcs arc.Topo.Graph.rev then 0.0
      else if dist.(u) = infinity || dist.(v) = infinity then infinity
      else weight arc +. dist.(u) -. dist.(v)
    in
    let active' arc = active arc && not (Hashtbl.mem p1_arcs arc.Topo.Graph.id) in
    let second = Dijkstra.run g ~weight:reduced ~active:active' ~src () in
    if second.Dijkstra.dist.(dst) = infinity then None
    else begin
      (* Union of the two arc sets with mutually-reversed pairs cancelled. *)
      let used = Hashtbl.copy p1_arcs in
      let rec collect2 node =
        let a = second.Dijkstra.prev_arc.(node) in
        if a >= 0 then begin
          let rev = (Topo.Graph.arc g a).Topo.Graph.rev in
          if Hashtbl.mem used rev then Hashtbl.remove used rev
          else Hashtbl.replace used a ();
          collect2 (Topo.Graph.arc g a).Topo.Graph.src
        end
      in
      collect2 dst;
      (* Decompose the remaining arcs into two link-disjoint s-t paths by
         walking twice from the source. *)
      let out_of = Hashtbl.create 16 in
      (* Arc ids sorted so the decomposition below is independent of hash
         order (memo-safe determinism). *)
      let used_arcs = Hashtbl.fold (fun a () acc -> a :: acc) used [] in
      List.iter
        (fun a ->
          let u = (Topo.Graph.arc g a).Topo.Graph.src in
          Hashtbl.replace out_of u (a :: Option.value (Hashtbl.find_opt out_of u) ~default:[]))
        (List.sort Int.compare used_arcs);
      let take_path () =
        let rec walk node acc =
          if node = dst then Some (List.rev acc)
          else begin
            match Hashtbl.find_opt out_of node with
            | Some (a :: rest) ->
                if rest = [] then Hashtbl.remove out_of node
                else Hashtbl.replace out_of node rest;
                walk (Topo.Graph.arc g a).Topo.Graph.dst (a :: acc)
            | Some [] | None -> None
          end
        in
        walk src []
      in
      match (take_path (), take_path ()) with
      | Some a1, Some a2 ->
          let p1 = Topo.Path.of_arcs g a1 and p2 = Topo.Path.of_arcs g a2 in
          let w p =
            Array.fold_left (fun acc a -> acc +. weight (Topo.Graph.arc g a)) 0.0 p.Topo.Path.arcs
          in
          if w p1 <= w p2 then Some (p1, p2) else Some (p2, p1)
      | _ -> None
    end
  end
