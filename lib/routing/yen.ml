let path_weight g weight p =
  Array.fold_left (fun acc a -> acc +. weight (Topo.Graph.arc g a)) 0.0 p.Topo.Path.arcs

let m_runs =
  Obs.Metric.Counter.create ~help:"Yen k-shortest-path invocations" "routing_yen_runs_total"

let m_path_hops =
  Obs.Metric.Histogram.create ~help:"Hop count of paths accepted by Yen"
    "routing_yen_path_hops"

let k_shortest g ?weight ?(active = fun _ -> true) ~src ~dst ~k () =
  let weight =
    match weight with Some w -> w | None -> fun a -> a.Topo.Graph.latency
  in
  if k <= 0 then []
  else begin
    match Dijkstra.shortest_path g ~weight ~active ~src ~dst () with
    | None -> []
    | Some first ->
        let accepted = ref [ first ] in
        let candidates : (float * Topo.Path.t) list ref = ref [] in
        let seen = Hashtbl.create 16 in
        Hashtbl.add seen first.Topo.Path.arcs ();
        let add_candidate p =
          if not (Hashtbl.mem seen p.Topo.Path.arcs) then begin
            Hashtbl.add seen p.Topo.Path.arcs ();
            candidates := (path_weight g weight p, p) :: !candidates
          end
        in
        (* Ban tables reused across every spur iteration instead of being
           reallocated k * |path| times per run. *)
        let banned_arcs = Hashtbl.create 8 in
        let banned_nodes = Hashtbl.create 8 in
        (try
           while List.length !accepted < k do
             (* [accepted] starts as [first] and only grows. *)
             let prev = match !accepted with p :: _ -> p | [] -> first in
             let prev_arcs = prev.Topo.Path.arcs in
             (* Spur from every node of the previously accepted path. *)
             for i = 0 to Array.length prev_arcs - 1 do
               let spur_node =
                 if i = 0 then src else (Topo.Graph.arc g prev_arcs.(i - 1)).Topo.Graph.dst
               in
               let root = Array.sub prev_arcs 0 i in
               (* Arcs banned: the next arc of every accepted/candidate path
                  sharing the same root, in both directions of the link. *)
               Hashtbl.reset banned_arcs;
               let ban_next p =
                 let arcs = p.Topo.Path.arcs in
                 if Array.length arcs > i && Array.sub arcs 0 i = root then begin
                   Hashtbl.replace banned_arcs arcs.(i) ();
                   Hashtbl.replace banned_arcs (Topo.Graph.arc g arcs.(i)).Topo.Graph.rev ()
                 end
               in
               List.iter ban_next !accepted;
               (* Nodes of the root (except the spur node) are banned to keep
                  paths loopless. *)
               Hashtbl.reset banned_nodes;
               Array.iteri
                 (fun idx a ->
                   let arc = Topo.Graph.arc g a in
                   if idx = 0 then Hashtbl.replace banned_nodes arc.Topo.Graph.src ();
                   if arc.Topo.Graph.dst <> spur_node then
                     Hashtbl.replace banned_nodes arc.Topo.Graph.dst ())
                 root;
               let active' arc =
                 active arc
                 && (not (Hashtbl.mem banned_arcs arc.Topo.Graph.id))
                 && (not (Hashtbl.mem banned_nodes arc.Topo.Graph.dst))
                 && not (Hashtbl.mem banned_nodes arc.Topo.Graph.src && arc.Topo.Graph.src <> spur_node)
               in
               match Dijkstra.shortest_path g ~weight ~active:active' ~src:spur_node ~dst () with
               | None -> ()
               | Some spur ->
                   let total = Array.append root spur.Topo.Path.arcs in
                   add_candidate { Topo.Path.src; dst; arcs = total }
             done;
             match
               List.sort
                 (Eutil.Order.by
                    (fun (w, p) -> (w, p.Topo.Path.arcs))
                    (Eutil.Order.pair Float.compare (Eutil.Order.array Int.compare)))
                 !candidates
             with
             | [] -> raise Exit
             | (_, best) :: rest ->
                 candidates := rest;
                 accepted := best :: !accepted
           done
         with Exit -> ());
        let paths = List.rev !accepted in
        if Obs.Control.enabled () then begin
          Obs.Metric.Counter.incr m_runs;
          List.iter
            (fun p ->
              Obs.Metric.Histogram.observe m_path_hops
                (float_of_int (Array.length p.Topo.Path.arcs)))
            paths
        end;
        paths
  end
