type result = { dist : float array; prev_arc : int array }

let default_weight arc = arc.Topo.Graph.latency

(* Heap traffic is tallied into locals (an int add per op) and flushed to
   the registry once per run, so the hot loop carries no observability
   calls. *)
let m_runs =
  Obs.Metric.Counter.create ~help:"Dijkstra single-source invocations"
    "routing_dijkstra_runs_total"

let m_heap_pushes =
  Obs.Metric.Counter.create ~help:"Heap pushes across all Dijkstra runs"
    "routing_heap_pushes_total"

let m_heap_pops =
  Obs.Metric.Counter.create ~help:"Heap pops across all Dijkstra runs"
    "routing_heap_pops_total"

let run g ?(weight = default_weight) ?(active = fun _ -> true) ~src () =
  let n = Topo.Graph.node_count g in
  let dist = Array.make n infinity in
  let prev_arc = Array.make n (-1) in
  let done_ = Array.make n false in
  let heap : int Eutil.Heap.t = Eutil.Heap.create () in
  let pushes = ref 1 and pops = ref 0 in
  dist.(src) <- 0.0;
  Eutil.Heap.push heap 0.0 src;
  let rec loop () =
    match Eutil.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        incr pops;
        if not done_.(u) then begin
          done_.(u) <- true;
          let out = Topo.Graph.out_arcs g u in
          Array.iter
            (fun aid ->
              let arc = Topo.Graph.arc g aid in
              if active arc then begin
                let w = weight arc in
                if w < infinity && w >= 0.0 then begin
                  let nd = d +. w in
                  let v = arc.Topo.Graph.dst in
                  (* Deterministic tie-break: keep the smaller arc id. *)
                  if
                    nd < dist.(v)
                    || (nd = dist.(v) && prev_arc.(v) >= 0 && aid < prev_arc.(v))
                  then begin
                    dist.(v) <- nd;
                    prev_arc.(v) <- aid;
                    if not done_.(v) then begin
                      incr pushes;
                      Eutil.Heap.push heap nd v
                    end
                  end
                end
              end)
            out;
          loop ()
        end
        else loop ()
  in
  loop ();
  if Obs.Control.enabled () then begin
    Obs.Metric.Counter.incr m_runs;
    Obs.Metric.Counter.add_int m_heap_pushes !pushes;
    Obs.Metric.Counter.add_int m_heap_pops !pops
  end;
  { dist; prev_arc }

let path_to g res dst =
  if res.dist.(dst) = infinity then None
  else begin
    let rec collect acc node =
      let a = res.prev_arc.(node) in
      if a < 0 then acc else collect (a :: acc) (Topo.Graph.arc g a).Topo.Graph.src
    in
    match collect [] dst with [] -> None | arcs -> Some (Topo.Path.of_arcs g arcs)
  end

let shortest_path g ?weight ?active ~src ~dst () =
  let res = run g ?weight ?active ~src () in
  path_to g res dst

let distance_matrix g ?weight ?active () =
  let n = Topo.Graph.node_count g in
  Array.init n (fun src -> (run g ?weight ?active ~src ()).dist)
