type process = { mtbf : float; mttr : float }

type flap = {
  flap_link : int option;
  flap_period : float;
  flap_cycles : int;
  flap_start : float;
}

type surge = { surge_at : float; surge_factor : float; surge_duration : float }

type spec = {
  seed : int;
  duration : float;
  warmup : float;
  link_faults : process option;
  node_faults : process option;
  srlgs : int list list;
  srlg_faults : process option;
  flapping : flap option;
  surges : surge list;
}

let default =
  {
    seed = 0;
    duration = 10.0;
    warmup = 0.0;
    link_faults = Some { mtbf = 3.0; mttr = 0.5 };
    node_faults = None;
    srlgs = [];
    srlg_faults = None;
    flapping = None;
    surges = [];
  }

let validate spec =
  if not (spec.duration > 0.0) then invalid_arg "Scenario: duration must be positive";
  if spec.warmup < 0.0 || spec.warmup >= spec.duration then
    invalid_arg "Scenario: warmup must lie in [0, duration)";
  let check_process what = function
    | None -> ()
    | Some p ->
        if not (p.mtbf > 0.0 && p.mttr > 0.0) then
          invalid_arg (Printf.sprintf "Scenario: %s mtbf/mttr must be positive" what)
  in
  check_process "link" spec.link_faults;
  check_process "node" spec.node_faults;
  check_process "srlg" spec.srlg_faults;
  (match spec.flapping with
  | Some f when not (f.flap_period > 0.0) ->
      invalid_arg "Scenario: flap period must be positive"
  | _ -> ());
  List.iter
    (fun s ->
      if not (s.surge_factor >= 0.0) || not (s.surge_duration > 0.0) then
        invalid_arg "Scenario: surge factor must be >= 0 and duration positive")
    spec.surges

(* Alternating up/down renewal process: calls [f start stop] for every down
   interval beginning before the horizon. *)
let draw_process rng ~mtbf ~mttr ~from ~until ~f =
  let t = ref (from +. Eutil.Prng.exponential rng ~mean:mtbf) in
  while !t < until do
    let repair = !t +. Eutil.Prng.exponential rng ~mean:mttr in
    f !t repair;
    t := repair +. Eutil.Prng.exponential rng ~mean:mtbf
  done

let incident_links g n =
  Topo.Graph.out_arcs g n
  |> Array.to_list
  |> List.map (fun a -> (Topo.Graph.arc g a).Topo.Graph.link)
  |> List.sort_uniq Int.compare

(* Merge a link's down intervals into maximal disjoint ones so the emitted
   schedule never double-fails a link or revives one a concurrent fault
   still holds down. *)
let merge_intervals intervals =
  let sorted =
    List.sort (Eutil.Order.pair Float.compare Float.compare) intervals
  in
  let rec go acc = function
    | [] -> List.rev acc
    | iv :: rest -> (
        match acc with
        | (s0, e0) :: acc' when fst iv <= e0 ->
            go ((s0, Float.max e0 (snd iv)) :: acc') rest
        | _ -> go (iv :: acc) rest)
  in
  go [] sorted

let events spec g ~base =
  validate spec;
  let root = Eutil.Prng.create spec.seed in
  (* Fixed split order = per-process stream independence. *)
  let link_rng = Eutil.Prng.split root in
  let node_rng = Eutil.Prng.split root in
  let srlg_rng = Eutil.Prng.split root in
  let flap_rng = Eutil.Prng.split root in
  let downs = Array.make (Topo.Graph.link_count g) [] in
  let add_down l t0 t1 = downs.(l) <- (t0, t1) :: downs.(l) in
  (match spec.link_faults with
  | None -> ()
  | Some p ->
      for l = 0 to Topo.Graph.link_count g - 1 do
        let rng = Eutil.Prng.split link_rng in
        draw_process rng ~mtbf:p.mtbf ~mttr:p.mttr ~from:spec.warmup ~until:spec.duration
          ~f:(fun t0 t1 -> add_down l t0 t1)
      done);
  (match spec.node_faults with
  | None -> ()
  | Some p ->
      for n = 0 to Topo.Graph.node_count g - 1 do
        let rng = Eutil.Prng.split node_rng in
        if Topo.Graph.degree g n > 0 then
          draw_process rng ~mtbf:p.mtbf ~mttr:p.mttr ~from:spec.warmup ~until:spec.duration
            ~f:(fun t0 t1 -> List.iter (fun l -> add_down l t0 t1) (incident_links g n))
      done);
  (match (spec.srlg_faults, spec.srlgs) with
  | None, _ | _, [] -> ()
  | Some p, groups ->
      List.iter
        (fun group ->
          let rng = Eutil.Prng.split srlg_rng in
          draw_process rng ~mtbf:p.mtbf ~mttr:p.mttr ~from:spec.warmup ~until:spec.duration
            ~f:(fun t0 t1 -> List.iter (fun l -> add_down l t0 t1) group))
        groups);
  (match spec.flapping with
  | None -> ()
  | Some f ->
      let l =
        match f.flap_link with
        | Some l -> l
        | None -> Eutil.Prng.int flap_rng (Topo.Graph.link_count g)
      in
      for i = 0 to f.flap_cycles - 1 do
        let t0 = f.flap_start +. (float_of_int i *. f.flap_period) in
        if t0 < spec.duration then add_down l t0 (t0 +. (f.flap_period /. 2.0))
      done);
  let fault_events = ref [] in
  Array.iteri
    (fun l intervals ->
      List.iter
        (fun (t0, t1) ->
          fault_events := Netsim.Sim.Fail_link (t0, l) :: !fault_events;
          if t1 < spec.duration then
            fault_events := Netsim.Sim.Repair_link (t1, l) :: !fault_events)
        (merge_intervals intervals))
    downs;
  let demand_events =
    Netsim.Sim.Set_demand (0.0, base)
    :: List.concat_map
         (fun s ->
           [
             Netsim.Sim.Set_demand (s.surge_at, Traffic.Matrix.scale base s.surge_factor);
             Netsim.Sim.Set_demand (s.surge_at +. s.surge_duration, base);
           ])
         spec.surges
  in
  (* Canonical order: time, then demand changes, repairs, failures (a
     coincident fail wins over a repair), then link id. *)
  let key = function
    | Netsim.Sim.Set_demand (t, _) -> (t, 0, -1)
    | Netsim.Sim.Repair_link (t, l) -> (t, 1, l)
    | Netsim.Sim.Fail_link (t, l) -> (t, 2, l)
  in
  let all_events = List.rev_append (List.rev demand_events) !fault_events in
  List.sort
    (Eutil.Order.by key (Eutil.Order.triple Float.compare Int.compare Int.compare))
    all_events

let random_srlgs g rng ~groups ~size =
  if groups <= 0 || size <= 0 then
    invalid_arg "Scenario.random_srlgs: groups and size must be positive";
  let n = Topo.Graph.link_count g in
  let want = min (groups * size) n in
  let picks = Eutil.Prng.sample rng want n in
  List.init groups (fun gi ->
      let lo = gi * size in
      if lo >= want then []
      else
        Array.to_list (Array.sub picks lo (min size (want - lo))) |> List.sort Int.compare)
  |> List.filter (fun grp -> grp <> [])

let describe g evs =
  let name_of_link l =
    let i, j = Topo.Graph.link_endpoints g l in
    Printf.sprintf "%s-%s" (Topo.Graph.name g i) (Topo.Graph.name g j)
  in
  String.concat ""
    (List.map
       (fun ev ->
         match ev with
         | Netsim.Sim.Set_demand (t, m) ->
             Printf.sprintf "%8.3f demand %.3e bit/s over %d pairs\n" t
               (Traffic.Matrix.total m) (Traffic.Matrix.flow_count m)
         | Netsim.Sim.Fail_link (t, l) ->
             Printf.sprintf "%8.3f fail   link %d (%s)\n" t l (name_of_link l)
         | Netsim.Sim.Repair_link (t, l) ->
             Printf.sprintf "%8.3f repair link %d (%s)\n" t l (name_of_link l))
       evs)
