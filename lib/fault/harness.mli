(** Chaos/resilience harness: sweeps seeded {!Scenario} schedules through
    {!Netsim.Sim} and aggregates availability, delivered/lost traffic
    (conservation-checked), per-pair recovery times and the sleep ratio
    under faults. Equal base seeds give byte-identical {!to_json} output,
    which is what the [@chaos] golden tests pin down. *)

type trial = {
  tr_seed : int;
  tr_offered_bits : float;
  tr_delivered_bits : float;
  tr_lost_bits : float;
  tr_availability : float;
      (** served pair-samples / demand-carrying pair-samples; a pair-sample
          is served when its rate reaches [threshold] of its demand *)
  tr_pair_samples : int;  (** demand-carrying pair-samples observed *)
  tr_recoveries : float array;
      (** per-pair outage durations, seconds; an outage still open at the
          end of the run is counted with its censored duration *)
  tr_sleep_ratio : float;  (** mean fraction of links asleep across samples *)
  tr_mean_power_percent : float;
  tr_wake_count : int;
  tr_sleep_count : int;
  tr_rejected_wakes : int;
  tr_fallback_routes : int;
}

type report = {
  base_seed : int;
  trials : trial array;  (** trial k runs the spec with seed [base_seed + k] *)
  availability : float;  (** pooled over all trials *)
  delivered_fraction : float;
  lost_fraction : float;
  offered_bits : float;
  delivered_bits : float;
  lost_bits : float;
  conservation_residual_bits : float;
      (** max over trials of |offered - delivered - lost|; {!run} raises if
          it exceeds a relative 1e-6 tolerance *)
  outages : int;
  recovery_p50 : float;  (** seconds; 0 when no outage was observed *)
  recovery_p99 : float;
  recovery_max : float;
  sleep_ratio : float;
  mean_power_percent : float;
  rejected_wakes : int;
  fallback_routes : int;
}

val run_trial :
  config:Netsim.Sim.config ->
  threshold:float ->
  tables:Response.Tables.t ->
  power:Power.Model.t ->
  base:Traffic.Matrix.t ->
  spec:Scenario.spec ->
  pairs:(int * int) list ->
  links:int ->
  int ->
  trial
(** [run_trial ... k] is trial [k]: the scenario seeded [spec.seed + k],
    simulated and measured. Trials are independent — everything reachable
    is trial-local or read-only except the per-domain Obs counters — so
    distinct trials may run on distinct domains (certified parallel
    entrypoint, see check/parallel.json).
    @raise Invalid_argument on a traffic-conservation violation. *)

val run :
  ?config:Netsim.Sim.config ->
  ?threshold:float ->
  ?jobs:int ->
  tables:Response.Tables.t ->
  power:Power.Model.t ->
  base:Traffic.Matrix.t ->
  spec:Scenario.spec ->
  trials:int ->
  unit ->
  report
(** Runs [trials] seeded scenarios ([spec.seed], [spec.seed + 1], ...) and
    aggregates. [threshold] (default 0.999) is the served fraction of a
    pair's demand below which a pair-sample counts as an outage sample.
    [jobs] (default 1) fans the trials out over that many domains; trial
    [k] lands at index [k] of the report whichever domain ran it, so the
    report — and its {!to_json} rendering — is byte-identical for any
    [jobs].
    @raise Invalid_argument on a traffic-conservation violation,
    [trials <= 0], or a threshold outside (0, 1]. *)

type sweep_entry = {
  sw_link : int;
  sw_partitioned : (int * int) list;
      (** pairs the cut disconnects outright (no path without the link) *)
  sw_lost_bits_after : float;
      (** loss integrated from [fail_at + grace] on — 0 iff the installed
          path set absorbed the failure once reconvergence settled *)
  sw_final_rate : float;  (** total achieved rate at the last sample *)
  sw_delivered_fraction : float;
}

val single_link_sweep :
  ?config:Netsim.Sim.config ->
  tables:Response.Tables.t ->
  power:Power.Model.t ->
  base:Traffic.Matrix.t ->
  fail_at:float ->
  grace:float ->
  duration:float ->
  unit ->
  sweep_entry list
(** Fails every link in turn (never repaired) and measures the
    post-reconvergence outcome — the empirical check of the paper's §4.3
    claim that one failover path absorbs every non-partitioning single-link
    failure with no steady-state loss. [grace] is the allowed
    reconvergence window after the failure.
    @raise Invalid_argument unless [0 <= fail_at] and
    [fail_at + grace < duration]. *)

val to_json : report -> string
(** Canonical JSON summary (fixed key order, fixed float formatting) —
    byte-identical for equal inputs, self-validated against
    {!Obs.Export.validate_json}.
    @raise Invalid_argument if self-validation rejects the generated
    document (a bug guard, not an input error). *)
