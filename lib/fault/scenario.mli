(** Deterministic, seeded fault-scenario generation.

    A {!spec} describes stochastic failure processes — independent link
    failures, node (chassis) failures that take every incident link down
    together, correlated SRLG groups, a flapping link, demand surges — and
    {!events} compiles them into a reproducible {!Netsim.Sim.event}
    schedule. Equal seeds give byte-identical schedules; each process draws
    from its own {!Eutil.Prng} stream split off the seed in a fixed order,
    so enabling one process never perturbs another's draws.

    Overlapping down-times for a link (say a node failure landing on a link
    that is already failed) are merged into maximal down intervals before
    emission, so the schedule never fails an already-failed link or repairs
    a link a concurrent fault still holds down. *)

type process = {
  mtbf : float;  (** mean time between failures, seconds (exponential) *)
  mttr : float;  (** mean time to repair, seconds (exponential) *)
}

type flap = {
  flap_link : int option;  (** flapping link; None picks one from the seed *)
  flap_period : float;  (** seconds per fail/repair cycle *)
  flap_cycles : int;
  flap_start : float;
}

type surge = {
  surge_at : float;
  surge_factor : float;  (** demand multiplier during the surge *)
  surge_duration : float;
}

type spec = {
  seed : int;
  duration : float;
  warmup : float;  (** no faults before this time *)
  link_faults : process option;  (** independent per-link process *)
  node_faults : process option;
      (** per-node process; a node failure fails all incident links together
          (chassis loss) *)
  srlgs : int list list;  (** shared-risk link groups, each failing as one *)
  srlg_faults : process option;  (** per-group process; ignored without groups *)
  flapping : flap option;
  surges : surge list;
}

val default : spec
(** 10 s scenario, seed 0, link faults only (mtbf 3 s, mttr 0.5 s). *)

val events : spec -> Topo.Graph.t -> base:Traffic.Matrix.t -> Netsim.Sim.event list
(** Compiles the spec against a topology into a schedule, sorted by time
    (repairs before failures at equal times, demand changes first). The
    schedule starts with [Set_demand (0., base)]; surges scale [base].
    Repairs falling beyond [duration] are omitted. *)

val random_srlgs :
  Topo.Graph.t -> Eutil.Prng.t -> groups:int -> size:int -> int list list
(** [groups] disjoint link groups of (up to) [size] links drawn without
    replacement — a stand-in for real shared-conduit data.
    @raise Invalid_argument unless [groups] and [size] are positive. *)

val describe : Topo.Graph.t -> Netsim.Sim.event list -> string
(** One line per event, for goldens and debugging. *)
