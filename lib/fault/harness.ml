type trial = {
  tr_seed : int;
  tr_offered_bits : float;
  tr_delivered_bits : float;
  tr_lost_bits : float;
  tr_availability : float;
  tr_pair_samples : int;
  tr_recoveries : float array;
  tr_sleep_ratio : float;
  tr_mean_power_percent : float;
  tr_wake_count : int;
  tr_sleep_count : int;
  tr_rejected_wakes : int;
  tr_fallback_routes : int;
}

type report = {
  base_seed : int;
  trials : trial array;
  availability : float;
  delivered_fraction : float;
  lost_fraction : float;
  offered_bits : float;
  delivered_bits : float;
  lost_bits : float;
  conservation_residual_bits : float;
  outages : int;
  recovery_p50 : float;
  recovery_p99 : float;
  recovery_max : float;
  sleep_ratio : float;
  mean_power_percent : float;
  rejected_wakes : int;
  fallback_routes : int;
}

let m_trials =
  Obs.Metric.Counter.create ~help:"Chaos trials executed" "fault_trials_total"

let m_outages =
  Obs.Metric.Counter.create ~help:"Pair outages observed across chaos trials"
    "fault_outages_total"

(* Demand matrix the simulator held at a sample time: the last Set_demand at
   or before it. The schedule is the ground truth the conservation and
   availability accounting measures against. *)
let demand_timeline events =
  List.filter_map
    (function Netsim.Sim.Set_demand (t, m) -> Some (t, m) | _ -> None)
    events
  |> List.sort (Eutil.Order.by fst Float.compare)

let demand_at timeline t =
  let rec go current = function
    | (t0, m) :: rest when t0 <= t +. 1e-9 -> go (Some m) rest
    | _ -> current
  in
  go None timeline

(* Availability and outage durations for one trial. A pair-sample counts
   when the pair has demand and the sample itself saw demand (the very
   first sample can race the t=0 demand event in the heap); it is served
   when the achieved rate reaches [threshold] of the demand. Maximal runs
   of unserved samples are outages; one still open at the end counts with
   its censored duration. *)
let pair_availability ~threshold ~interval ~pairs ~timeline (samples : Netsim.Sim.sample array)
    =
  let counted = ref 0 and served = ref 0 in
  let recoveries = ref [] in
  (* Sample-major walk with per-pair run counters: each sample's pair_rates
     assoc list is loaded into one reusable table instead of being searched
     once per pair per sample. *)
  let pairs_arr = Array.of_list pairs in
  let open_run = Array.make (Array.length pairs_arr) 0 in
  let close_run k =
    if open_run.(k) > 0 then begin
      recoveries := (float_of_int open_run.(k) *. interval) :: !recoveries;
      open_run.(k) <- 0
    end
  in
  let rate_tbl = Hashtbl.create 64 in
  Array.iter
    (fun sm ->
      if sm.Netsim.Sim.demand_total > 0.0 then begin
        match demand_at timeline sm.Netsim.Sim.time with
        | None -> ()
        | Some m ->
            Hashtbl.reset rate_tbl;
            List.iter
              (fun (od, r) -> if not (Hashtbl.mem rate_tbl od) then Hashtbl.add rate_tbl od r)
              sm.Netsim.Sim.pair_rates;
            Array.iteri
              (fun k (o, d) ->
                let dem = Traffic.Matrix.get m o d in
                if dem > 0.0 then begin
                  incr counted;
                  let rate = Option.value (Hashtbl.find_opt rate_tbl (o, d)) ~default:0.0 in
                  if rate +. 1e-9 >= threshold *. dem then begin
                    incr served;
                    close_run k
                  end
                  else open_run.(k) <- open_run.(k) + 1
                end)
              pairs_arr
      end)
    samples;
  Array.iteri (fun k _ -> close_run k) pairs_arr;
  let availability =
    if !counted = 0 then 1.0
    else float_of_int !served /. float_of_int (max 1 !counted)
  in
  (availability, !counted, Array.of_list (List.rev !recoveries))

let sleep_ratio_of ~links (samples : Netsim.Sim.sample array) =
  if Array.length samples = 0 || links = 0 then 0.0
  else
    Array.fold_left
      (fun acc sm ->
        acc +. (1.0 -. (float_of_int sm.Netsim.Sim.links_active /. float_of_int links)))
      0.0 samples
    /. float_of_int (Array.length samples)

let conservation_tolerance = 1e-6

(* Trial [k] of a chaos run, derived entirely from [spec.seed + k]: the
   scenario builds its own PRNG from that seed and the simulator state is
   trial-local, so distinct trials share nothing but the read-only tables.
   The only shared state touched is the Obs counters, which shard
   per-domain (see Obs.Metric). This is a certified parallel entrypoint
   declared in check/parallel.json. *)
let run_trial ~config ~threshold ~tables ~power ~base ~spec ~pairs ~links k =
  let spec = { spec with Scenario.seed = spec.Scenario.seed + k } in
  let events = Scenario.events spec (Response.Tables.graph tables) ~base in
  let r =
    Netsim.Sim.run ~config ~tables ~power ~events ~duration:spec.Scenario.duration ()
  in
  Obs.Metric.Counter.incr m_trials;
  let residual =
    Float.abs (r.Netsim.Sim.offered_bits -. (r.Netsim.Sim.delivered_bits +. r.Netsim.Sim.lost_bits))
  in
  if residual > conservation_tolerance *. Float.max 1.0 r.Netsim.Sim.offered_bits then
    invalid_arg
      (Printf.sprintf "Harness.run: traffic not conserved (residual %.3e bits)" residual);
  let timeline = demand_timeline events in
  let availability, counted, recoveries =
    pair_availability ~threshold ~interval:config.Netsim.Sim.sample_interval ~pairs
      ~timeline r.Netsim.Sim.samples
  in
  Obs.Metric.Counter.add_int m_outages (Array.length recoveries);
  {
    tr_seed = spec.Scenario.seed;
    tr_offered_bits = r.Netsim.Sim.offered_bits;
    tr_delivered_bits = r.Netsim.Sim.delivered_bits;
    tr_lost_bits = r.Netsim.Sim.lost_bits;
    tr_availability = availability;
    tr_pair_samples = counted;
    tr_recoveries = recoveries;
    tr_sleep_ratio = sleep_ratio_of ~links r.Netsim.Sim.samples;
    tr_mean_power_percent = r.Netsim.Sim.mean_power_percent;
    tr_wake_count = r.Netsim.Sim.wake_count;
    tr_sleep_count = r.Netsim.Sim.sleep_count;
    tr_rejected_wakes = r.Netsim.Sim.rejected_wake_count;
    tr_fallback_routes = r.Netsim.Sim.fallback_count;
  }

let run ?(config = Netsim.Sim.default_config) ?(threshold = 0.999) ?(jobs = 1) ~tables
    ~power ~base ~spec ~trials () =
  if trials <= 0 then invalid_arg "Harness.run: trials must be positive";
  if not (threshold > 0.0 && threshold <= 1.0) then
    invalid_arg "Harness.run: threshold must be in (0, 1]";
  let g = Response.Tables.graph tables in
  let pairs =
    List.sort Eutil.Order.int_pair (Response.Tables.pairs tables)
  in
  let links = Topo.Graph.link_count g in
  (* Trial [k] lands at index [k] whichever domain ran it, so every
     aggregate below folds in the same order for any [jobs]. *)
  let trials =
    Eutil.Pool.init ~jobs trials
      (run_trial ~config ~threshold ~tables ~power ~base ~spec ~pairs ~links)
  in
  let sum f = Array.fold_left (fun acc tr -> acc +. f tr) 0.0 trials in
  let sumi f = Array.fold_left (fun acc tr -> acc + f tr) 0 trials in
  let offered = sum (fun tr -> tr.tr_offered_bits) in
  let delivered = sum (fun tr -> tr.tr_delivered_bits) in
  let lost = sum (fun tr -> tr.tr_lost_bits) in
  let counted = sumi (fun tr -> tr.tr_pair_samples) in
  let served =
    sum (fun tr -> tr.tr_availability *. float_of_int tr.tr_pair_samples)
  in
  let per_trial = Array.to_list (Array.map (fun tr -> tr.tr_recoveries) trials) in
  let recoveries = Array.concat per_trial in
  let pct p = if Array.length recoveries = 0 then 0.0 else Eutil.Stats.percentile recoveries p in
  {
    base_seed = trials.(0).tr_seed;
    trials;
    availability =
      (if counted = 0 then 1.0 else served /. float_of_int counted);
    delivered_fraction = (if offered > 0.0 then delivered /. offered else 1.0);
    lost_fraction = (if offered > 0.0 then lost /. offered else 0.0);
    offered_bits = offered;
    delivered_bits = delivered;
    lost_bits = lost;
    conservation_residual_bits =
      Array.fold_left
        (fun acc tr ->
          Float.max acc
            (Float.abs (tr.tr_offered_bits -. (tr.tr_delivered_bits +. tr.tr_lost_bits))))
        0.0 trials;
    outages = Array.length recoveries;
    recovery_p50 = pct 50.0;
    recovery_p99 = pct 99.0;
    recovery_max = pct 100.0;
    sleep_ratio =
      (let n = Array.length trials in
       if n = 0 then 0.0 else sum (fun tr -> tr.tr_sleep_ratio) /. float_of_int n);
    mean_power_percent =
      (let n = Array.length trials in
       if n = 0 then 0.0 else sum (fun tr -> tr.tr_mean_power_percent) /. float_of_int n);
    rejected_wakes = sumi (fun tr -> tr.tr_rejected_wakes);
    fallback_routes = sumi (fun tr -> tr.tr_fallback_routes);
  }

type sweep_entry = {
  sw_link : int;
  sw_partitioned : (int * int) list;
  sw_lost_bits_after : float;
  sw_final_rate : float;
  sw_delivered_fraction : float;
}

let single_link_sweep ?(config = Netsim.Sim.default_config) ~tables ~power ~base ~fail_at
    ~grace ~duration () =
  if not (fail_at >= 0.0 && grace >= 0.0 && duration > fail_at +. grace) then
    invalid_arg "Harness.single_link_sweep: need 0 <= fail_at, fail_at + grace < duration";
  let g = Response.Tables.graph tables in
  let pairs = List.sort Eutil.Order.int_pair (Response.Tables.pairs tables) in
  List.init (Topo.Graph.link_count g) (fun l ->
      let partitioned =
        List.filter
          (fun (o, d) ->
            Routing.Dijkstra.shortest_path g
              ~active:(fun arc -> arc.Topo.Graph.link <> l)
              ~src:o ~dst:d ()
            = None)
          pairs
      in
      let r =
        Netsim.Sim.run ~config ~tables ~power
          ~events:[ Netsim.Sim.Set_demand (0.0, base); Netsim.Sim.Fail_link (fail_at, l) ]
          ~duration ()
      in
      let lost_after =
        Array.fold_left
          (fun acc sm ->
            if sm.Netsim.Sim.time >= fail_at +. grace then
              acc
              +. ((sm.Netsim.Sim.demand_total -. sm.Netsim.Sim.rate_total)
                 *. config.Netsim.Sim.sample_interval)
            else acc)
          0.0 r.Netsim.Sim.samples
      in
      let final_rate =
        match Array.length r.Netsim.Sim.samples with
        | 0 -> 0.0
        | n -> r.Netsim.Sim.samples.(n - 1).Netsim.Sim.rate_total
      in
      {
        sw_link = l;
        sw_partitioned = partitioned;
        sw_lost_bits_after = lost_after;
        sw_final_rate = final_rate;
        sw_delivered_fraction = r.Netsim.Sim.delivered_fraction;
      })

(* ------------------------------- JSON ------------------------------- *)

let f6 v = Printf.sprintf "%.6f" v

let trial_json tr =
  Printf.sprintf
    "{\"seed\":%d,\"offered_bits\":%s,\"delivered_bits\":%s,\"lost_bits\":%s,\"availability\":%s,\"pair_samples\":%d,\"outages\":%d,\"recovery_max_s\":%s,\"sleep_ratio\":%s,\"mean_power_percent\":%s,\"wake_count\":%d,\"sleep_count\":%d,\"rejected_wakes\":%d,\"fallback_routes\":%d}"
    tr.tr_seed (f6 tr.tr_offered_bits) (f6 tr.tr_delivered_bits) (f6 tr.tr_lost_bits)
    (f6 tr.tr_availability) tr.tr_pair_samples
    (Array.length tr.tr_recoveries)
    (f6
       (Array.fold_left Float.max 0.0 tr.tr_recoveries))
    (f6 tr.tr_sleep_ratio) (f6 tr.tr_mean_power_percent) tr.tr_wake_count tr.tr_sleep_count
    tr.tr_rejected_wakes tr.tr_fallback_routes

let to_json r =
  let per_trial_json = Array.to_list (Array.map trial_json r.trials) in
  let doc =
    Printf.sprintf
      "{\"seed\":%d,\"trials\":%d,\"availability\":%s,\"delivered_fraction\":%s,\"lost_fraction\":%s,\"offered_bits\":%s,\"delivered_bits\":%s,\"lost_bits\":%s,\"conservation_residual_bits\":%s,\"outages\":%d,\"recovery_p50_s\":%s,\"recovery_p99_s\":%s,\"recovery_max_s\":%s,\"sleep_ratio\":%s,\"mean_power_percent\":%s,\"rejected_wakes\":%d,\"fallback_routes\":%d,\"per_trial\":[%s]}"
      r.base_seed (Array.length r.trials) (f6 r.availability) (f6 r.delivered_fraction)
      (f6 r.lost_fraction) (f6 r.offered_bits) (f6 r.delivered_bits) (f6 r.lost_bits)
      (f6 r.conservation_residual_bits) r.outages (f6 r.recovery_p50) (f6 r.recovery_p99)
      (f6 r.recovery_max) (f6 r.sleep_ratio) (f6 r.mean_power_percent) r.rejected_wakes
      r.fallback_routes
      (String.concat "," per_trial_json)
  in
  (* Every emission passes the same validator that gates the Obs exporters;
     a malformed summary is a bug, not a caller problem. *)
  (match Obs.Export.validate_json doc with
  | Ok () -> ()
  | Error e -> invalid_arg ("Harness.to_json: generated invalid JSON: " ^ e));
  doc
