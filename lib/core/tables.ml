type entry = {
  origin : int;
  dest : int;
  always_on : Topo.Path.t;
  on_demand : Topo.Path.t list;
  failover : Topo.Path.t option;
}

type t = { g : Topo.Graph.t; table : (int * int, entry) Hashtbl.t }

let check_path g (o, d) p =
  if p.Topo.Path.src <> o || p.Topo.Path.dst <> d then
    invalid_arg
      (Printf.sprintf "Tables.make: path does not connect %s-%s" (Topo.Graph.name g o)
         (Topo.Graph.name g d))

let make g entries =
  let table = Hashtbl.create (List.length entries) in
  List.iter
    (fun e ->
      let key = (e.origin, e.dest) in
      if Hashtbl.mem table key then invalid_arg "Tables.make: duplicate pair";
      check_path g key e.always_on;
      List.iter (check_path g key) e.on_demand;
      Option.iter (check_path g key) e.failover;
      Hashtbl.replace table key e)
    entries;
  { g; table }

let graph t = t.g
let find t o d = Hashtbl.find_opt t.table (o, d)
let pairs t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort Eutil.Order.int_pair
let entries t = List.filter_map (fun (o, d) -> Hashtbl.find_opt t.table (o, d)) (pairs t)

let paths e =
  Array.of_list
    ((e.always_on :: e.on_demand) @ match e.failover with Some f -> [ f ] | None -> [])

let n_tables t =
  Hashtbl.fold (fun _ e acc -> max acc (Array.length (paths e))) t.table 0

let state_of_paths g select t =
  let st = Topo.State.all_off g in
  Hashtbl.iter
    (fun _ e ->
      List.iter
        (fun p -> Array.iter (fun l -> Topo.State.set_link g st l true) (Topo.Path.links g p))
        (select e))
    t.table;
  st

let always_on_state t = state_of_paths t.g (fun e -> [ e.always_on ]) t

let full_state t =
  state_of_paths t.g
    (fun e -> (e.always_on :: e.on_demand) @ Option.to_list e.failover)
    t

let level_state t level =
  state_of_paths t.g
    (fun e ->
      let rec take n = function [] -> [] | x :: r -> if n <= 0 then [] else x :: take (n - 1) r in
      e.always_on :: take level e.on_demand)
    t

let pp ppf t =
  Format.fprintf ppf "tables(%d pairs, up to %d paths each)" (Hashtbl.length t.table) (n_tables t)
