(* One OD pair's failover computation. Independent of every other pair: it
   reads the immutable graph and the fully-built [protect] table, and
   allocates only locally — which is what lets [compute] fan the per-pair
   loop out across domains. [pair_path] is a certified parallel entrypoint
   declared in check/parallel.json; Check.Share verifies it cannot reach a
   write of any unguarded shared root. *)
let pair_path g ~protect (o, d) =
  let installed = Option.value (Hashtbl.find_opt protect (o, d)) ~default:[] in
  match Routing.Disjoint.max_disjoint g ~protect:installed ~src:o ~dst:d () with
  | None -> None
  | Some p ->
      if List.exists (Topo.Path.equal p) installed then None else Some ((o, d), p)

let compute ?(jobs = 1) g ~protect ~pairs =
  let pairs_arr = Array.of_list pairs in
  let results = Eutil.Pool.map_array ~jobs (pair_path g ~protect) pairs_arr in
  (* Merge in [pairs] order — the same insertion order as the sequential
     loop, so the resulting table iterates identically for any [jobs]. *)
  let table = Hashtbl.create (List.length pairs) in
  Array.iter (function None -> () | Some (od, p) -> Hashtbl.replace table od p) results;
  table

let vulnerable_pairs g tables =
  List.filter_map
    (fun e ->
      (* A pair is vulnerable iff some link lies on every installed path. *)
      let paths = Tables.paths e in
      if Array.length paths = 0 then None
      else begin
        let on_all_paths l =
          let ok = ref true in
          for i = 1 to Array.length paths - 1 do
            if not (Topo.Path.uses_link g paths.(i) l) then ok := false
          done;
          !ok
        in
        if Array.exists on_all_paths (Topo.Path.links g paths.(0)) then
          Some (e.Tables.origin, e.Tables.dest)
        else None
      end)
    (Tables.entries tables)

(* Interior (transit) nodes of a path; endpoint loss is not a routing
   failure, so origins and destinations do not count. *)
let interior_nodes g p =
  let nodes = Topo.Path.nodes g p in
  if Array.length nodes <= 2 then [||] else Array.sub nodes 1 (Array.length nodes - 2)

let node_vulnerable_pairs g tables =
  List.filter_map
    (fun e ->
      (* A pair is node-vulnerable iff some transit node lies on every
         installed path: a chassis loss there takes out all of the pair's
         links at once, which no per-link disjointness protects against. *)
      let paths = Tables.paths e in
      if Array.length paths = 0 then None
      else begin
        let on_all_interiors v =
          let ok = ref true in
          for i = 1 to Array.length paths - 1 do
            if not (Array.exists (Int.equal v) (interior_nodes g paths.(i))) then ok := false
          done;
          !ok
        in
        if Array.exists on_all_interiors (interior_nodes g paths.(0)) then
          Some (e.Tables.origin, e.Tables.dest)
        else None
      end)
    (Tables.entries tables)
