(** End-to-end REsPoNse precomputation and quasi-static evaluation.

    [precompute] runs the whole offline pipeline of Section 4 — always-on,
    on-demand (any variant) and failover paths — and returns the installed
    {!Tables}. [evaluate] then emulates the steady state the online TE
    component (REsPoNseTE) reaches for a given traffic matrix: traffic is
    aggregated on the always-on paths while the utilisation target holds, and
    spills to on-demand paths in activation order otherwise; elements carrying
    no traffic sleep. This is how the power curves of Figures 4, 5 and 6 are
    produced (the time-domain behaviour is in {!Netsim}). *)

type variant =
  | Solver of Traffic.Matrix.t  (** baseline REsPoNse (peak-TM solver) *)
  | Stress of float  (** demand-oblivious, stress-factor exclusion *)
  | Ospf  (** REsPoNse-ospf *)
  | Heuristic of Traffic.Matrix.t  (** REsPoNse-heuristic (GreenTE) *)

type config = {
  margin : Eutil.Units.ratio Eutil.Units.q;  (** safety margin sm on link capacities *)
  n_paths : int;  (** N: total energy-critical paths per pair (>= 2) *)
  latency_beta : float option;  (** REsPoNse-lat bound, e.g. Some 0.25 *)
  always_on_mode : Always_on.mode;
  on_demand : variant;
}

val default : config
(** Demand-oblivious: epsilon always-on, stress-factor (0.2) on-demand,
    N = 3, margin 1.0, no latency bound. *)

val install_checks : bool Atomic.t
(** When true (the default, unless the environment sets [RESPONSE_CHECKS=0]),
    {!precompute} runs the {!Check.Invariant.check_tables} validators on the
    freshly built tables and raises [Invalid_argument] on any error-severity
    finding (path validity, coverage, duplicate installs). Warnings, such as
    a maximally- but not fully-disjoint failover, are not fatal. *)

val precompute :
  ?config:config -> ?jobs:int -> Topo.Graph.t -> Power.Model.t -> pairs:(int * int) list -> Tables.t
(** Builds the full table set for the given pairs. [jobs] (default 1) fans
    the per-pair failover stage out over that many domains (see
    {!Failover.compute}); the resulting tables are identical for any
    [jobs].
    @raise Invalid_argument if [n_paths < 2], if the always-on demands are
    infeasible on the full network, or (with {!install_checks} on) on any
    error-severity invariant finding. *)

val precompute_cached :
  ?config:config -> ?jobs:int -> Topo.Graph.t -> Power.Model.t -> pairs:(int * int) list -> Tables.t
(** {!precompute} behind a bounded {!Eutil.Memo} cache (32 entries, LRU),
    keyed by exact digests of every input the pipeline reads: the
    {!Topo.Graph.signature}, the power model evaluated over the topology,
    the pair list, and the config including the
    {!Traffic.Matrix.signature} of any embedded matrix. [jobs] is not part
    of the key — tables are identical for any fan-out. Certified memo-safe
    by the [memo-unsafe] rule of [respctl analyze --cost] (see
    [check/cost.json]); a raising computation (infeasible demands, invariant
    violation) is never cached.

    The returned tables may reference the structurally-identical graph of
    an earlier call rather than [g] itself; all identifiers coincide by the
    signature contract.
    @raise Invalid_argument as {!precompute}. *)

val cache_stats : unit -> Eutil.Memo.stats
(** Lifetime hit/miss/eviction counters of the precompute cache. *)

val cache_clear : unit -> unit
(** Drops every cached table set (counters keep counting). *)

type evaluation = {
  state : Topo.State.t;  (** elements carrying traffic (the rest sleep) *)
  power_watts : float;
  power_percent : float;
  max_utilization : float;
  levels_activated : int;  (** deepest on-demand level in use (0 = none) *)
  congested : (int * int) list;  (** pairs whose best path exceeds capacity *)
}

val evaluate :
  ?threshold:Eutil.Units.ratio Eutil.Units.q ->
  Tables.t -> Power.Model.t -> Traffic.Matrix.t -> evaluation
(** [threshold] is the ISP's link-utilisation target (default 0.9): a flow
    moves to the next path level when placing it would push some link of the
    current level beyond it. *)

val loads :
  ?threshold:Eutil.Units.ratio Eutil.Units.q -> Tables.t -> Traffic.Matrix.t -> float array
(** Per-arc offered load of the steady state {!evaluate} reaches — e.g. the
    background utilisation an application workload experiences on top of the
    consolidated traffic. *)

val carried_fraction :
  ?threshold:Eutil.Units.ratio Eutil.Units.q ->
  Tables.t -> Power.Model.t -> base:Traffic.Matrix.t -> max_level:int -> float
(** Largest multiple of [base] that the paths up to [max_level] can carry
    within the utilisation threshold (bisection) — used for the paper's claim
    that always-on paths alone carry about 50 % of the OSPF-carriable
    volume. *)
