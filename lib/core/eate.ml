module U = Eutil.Units

type result = {
  loads : float array;
  state : Topo.State.t;
  power_percent : float;
  rounds : int;
  max_utilization : float;
}

let run ?(k = 3) ?threshold ?(max_rounds = 50) g power tm =
  let threshold = U.to_float (match threshold with Some t -> t | None -> U.ratio 0.9) in
  let pairs = Traffic.Matrix.pairs tm in
  let candidates = Optim.Greente.candidate_table g ~k ~pairs () in
  let n_arcs = Topo.Graph.arc_count g in
  let loads = Array.make n_arcs 0.0 in
  (* Start: every pair on its shortest candidate. *)
  let assignment : (int * int, Topo.Path.t) Hashtbl.t = Hashtbl.create (List.length pairs) in
  let apply p v sign =
    Array.iter (fun a -> loads.(a) <- loads.(a) +. (sign *. v)) p.Topo.Path.arcs
  in
  List.iter
    (fun (o, d) ->
      match Hashtbl.find_opt candidates (o, d) with
      | Some (p :: _) ->
          Hashtbl.replace assignment (o, d) p;
          apply p (Traffic.Matrix.get tm o d) 1.0
      | _ -> ())
    pairs;
  let util a = loads.(a) /. (Topo.Graph.arc g a).Topo.Graph.capacity in
  (* Aggregation score of a path for a flow: how much of the path already
     carries other traffic (higher = better target for consolidation), as
     long as adding the flow keeps every link under the threshold. *)
  let fits p v =
    Array.for_all
      (fun a -> (loads.(a) +. v) /. (Topo.Graph.arc g a).Topo.Graph.capacity <= threshold)
      p.Topo.Path.arcs
  in
  let busy_links p =
    Array.fold_left (fun acc a -> if loads.(a) > 0.0 then acc + 1 else acc) 0 p.Topo.Path.arcs
  in
  let rounds = ref 0 in
  let moved = ref true in
  while !moved && !rounds < max_rounds do
    incr rounds;
    moved := false;
    List.iter
      (fun (o, d) ->
        match Hashtbl.find_opt assignment (o, d) with
        | None -> ()
        | Some current ->
            let v = Traffic.Matrix.get tm o d in
            apply current v (-1.0);
            (* Prefer the candidate with the most already-busy links; break
               ties towards fewer hops (less energy). Fall back to the
               current path when no candidate fits. *)
            let best = ref (current, busy_links current, Topo.Path.hops current) in
            List.iter
              (fun p ->
                if fits p v then begin
                  let score = (busy_links p, -Topo.Path.hops p) in
                  let _, bb, bh = !best in
                  if score > (bb, -bh) then best := (p, fst score, Topo.Path.hops p)
                end)
              (Option.value (Hashtbl.find_opt candidates (o, d)) ~default:[]);
            let target, _, _ = !best in
            let target = if fits target v then target else current in
            apply target v 1.0;
            if not (Topo.Path.equal target current) then begin
              Hashtbl.replace assignment (o, d) target;
              moved := true
            end)
      pairs
  done;
  let link_load l =
    let a1, a2 = Topo.Graph.arcs_of_link g l in
    loads.(a1) +. loads.(a2)
  in
  let state = Power.Model.state_of_loads g link_load in
  {
    loads;
    state;
    power_percent = Power.Model.percent_of_full power g state;
    rounds = !rounds;
    max_utilization = Array.fold_left max 0.0 (Array.init n_arcs util);
  }
