type interval = {
  time : float;
  state : Topo.State.t;
  power_percent : float;
  changed : bool;
}

type t = {
  intervals : interval array;
  trace_interval : float;
  ranking : Critical_paths.t;
  recomputations : int;
}

let m_steps =
  Obs.Metric.Counter.create ~help:"Trace intervals replayed" "core_replay_steps_total"

let m_recomputations =
  Obs.Metric.Counter.create ~help:"Replay intervals whose network state changed"
    "core_replay_recomputations_total"

let m_step_seconds =
  Obs.Metric.Histogram.create ~help:"Wall time of one replay interval"
    "core_replay_step_seconds"

let run ?margin ?(solver = `Greedy) g power trace =
  let margin = match margin with Some m -> m | None -> Eutil.Units.ratio 1.0 in
  let ranking = Critical_paths.create g in
  let solve tm =
    match solver with
    | `Greedy -> Optim.Minimal.power_down ~margin g power tm
    | `Greente -> Optim.Greente.minimal_subset ~margin g power tm
  in
  let previous = ref None in
  let recomputations = ref 0 in
  let intervals =
    Array.make (Traffic.Trace.length trace)
      { time = 0.0; state = Topo.State.all_on g; power_percent = 100.0; changed = false }
  in
  Traffic.Trace.iter trace ~f:(fun i time tm ->
      Obs.Metric.Histogram.time m_step_seconds @@ fun () ->
      Obs.Metric.Counter.incr m_steps;
      let state, power_percent, routing =
        match solve tm with
        | Some r ->
            (r.Optim.Minimal.state, r.Optim.Minimal.power_percent, Some r.Optim.Minimal.routing)
        | None -> (
            (* Infeasible interval: the network keeps the previous (or full)
               configuration. *)
            match !previous with
            | Some (st, pct) -> (st, pct, None)
            | None -> (Topo.State.all_on g, 100.0, None))
      in
      (match routing with Some r -> Critical_paths.observe ranking r tm | None -> ());
      let changed =
        match !previous with
        | None -> false
        | Some (prev_state, _) -> not (Topo.State.equal prev_state state)
      in
      if changed then begin
        incr recomputations;
        Obs.Metric.Counter.incr m_recomputations
      end;
      previous := Some (state, power_percent);
      intervals.(i) <- { time; state; power_percent; changed });
  { intervals; trace_interval = trace.Traffic.Trace.interval; ranking; recomputations = !recomputations }

let recomputation_rate t ~bucket =
  if bucket <= 0.0 then invalid_arg "Replay.recomputation_rate";
  let buckets = Hashtbl.create 64 in
  Array.iter
    (fun iv ->
      let b = floor (iv.time /. bucket) *. bucket in
      let count = Option.value (Hashtbl.find_opt buckets b) ~default:0 in
      Hashtbl.replace buckets b (count + if iv.changed then 1 else 0))
    t.intervals;
  Hashtbl.fold (fun b c acc -> (b, float_of_int c *. 3600.0 /. bucket) :: acc) buckets []
  |> List.sort (Eutil.Order.pair Float.compare Float.compare)

let config_dominance t =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun iv ->
      let key = Topo.State.key iv.state in
      Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0))
    t.intervals;
  let total = float_of_int (Array.length t.intervals) in
  if total = 0.0 then []
  else
    Hashtbl.fold (fun k c acc -> (k, float_of_int c /. total) :: acc) counts []
  |> List.sort
       (Eutil.Order.by (fun (k, f) -> (f, k))
          (Eutil.Order.pair (Eutil.Order.desc Float.compare) String.compare))

let mean_power_percent t =
  Array.fold_left (fun acc iv -> acc +. iv.power_percent) 0.0 t.intervals
  /. float_of_int (Array.length t.intervals)
