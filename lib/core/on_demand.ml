type variant =
  | Solver of Traffic.Matrix.t
  | Stress of float
  | Ospf
  | Heuristic of Traffic.Matrix.t

let stress_factors g assignment =
  let sf = Array.make (Topo.Graph.link_count g) 0.0 in
  (* Fold-then-sort: deterministic pair order regardless of table history
     (and certifiably so for the memo-unsafe audit). *)
  let entries = Hashtbl.fold (fun od p acc -> (od, p) :: acc) assignment [] in
  List.iter
    (fun (_, p) -> Array.iter (fun l -> sf.(l) <- sf.(l) +. 1.0) (Topo.Path.links g p))
    (List.sort (Eutil.Order.by fst Eutil.Order.int_pair) entries);
  Array.mapi (fun l count -> count /. Topo.Graph.link_capacity g l) sf

(* Links excluded by the stress rule: the top [fraction] by stress factor
   (only links that carry something). *)
let excluded_links g assignment fraction =
  let sf = stress_factors g assignment in
  let loaded =
    Array.to_list (Array.mapi (fun l s -> (l, s)) sf) |> List.filter (fun (_, s) -> s > 0.0)
  in
  let sorted =
    List.sort
      (Eutil.Order.by (fun (l, s) -> (s, l)) (Eutil.Order.pair (Eutil.Order.desc Float.compare) Int.compare))
      loaded
  in
  let n_excl = int_of_float (floor (fraction *. float_of_int (List.length sorted))) in
  List.filteri (fun i _ -> i < n_excl) sorted |> List.map fst

let compute ?margin ?(rounds = 1) g power ~always_on ~pairs variant =
  let margin = match margin with Some m -> m | None -> Eutil.Units.ratio 1.0 in
  let table : (int * int, Topo.Path.t list) Hashtbl.t = Hashtbl.create (List.length pairs) in
  List.iter (fun od -> Hashtbl.replace table od []) pairs;
  let previous_of od = Option.value (Hashtbl.find_opt table od) ~default:[] in
  let base_path od = Hashtbl.find_opt always_on.Always_on.paths od in
  let push od p =
    let prev = previous_of od in
    let dup =
      List.exists (Topo.Path.equal p) prev
      || match base_path od with Some b -> Topo.Path.equal b p | None -> false
    in
    if not dup then Hashtbl.replace table od (prev @ [ p ])
  in
  (match variant with
  | Solver peak ->
      (* Round r solves for demand level r/rounds of the peak, with every
         element already selected (always-on or earlier rounds) pinned on —
         the nested sequence the online component activates progressively. *)
      let pinned_state = Topo.State.copy always_on.Always_on.state in
      for r = 1 to rounds do
        let level = float_of_int r /. float_of_int rounds in
        let tm = Traffic.Matrix.scale peak level in
        let pinned l = Topo.State.link_on pinned_state l in
        (match Optim.Minimal.power_down ~margin ~pinned g power tm with
        | None -> ()
        | Some res ->
            List.iter
              (fun od ->
                match Hashtbl.find_opt res.Optim.Minimal.routing od with
                | Some p -> push od p
                | None -> ())
              pairs;
            (* Pin what this round selected for the next round. *)
            Topo.Graph.iter_links g ~f:(fun l ->
                if Topo.State.link_on res.Optim.Minimal.state l then
                  Topo.State.set_link g pinned_state l true))
      done;
      (* The peak solve happily reuses the pinned always-on links wherever
         they have capacity, so some pairs end up with no distinct on-demand
         path at all. Those pairs get a stress-avoidance alternative, so the
         online component always has extra capacity to activate. *)
      let sf = stress_factors g always_on.Always_on.paths in
      List.iter
        (fun (o, d) ->
          if previous_of (o, d) = [] then begin
            match base_path (o, d) with
            | None -> ()
            | Some ao ->
                let hottest =
                  Array.fold_left
                    (fun acc l -> match acc with Some h when sf.(h) >= sf.(l) -> acc | _ -> Some l)
                    None (Topo.Path.links g ao)
                in
                Option.iter
                  (fun h ->
                    match Routing.Disjoint.avoiding g ~avoid:[ h ] ~src:o ~dst:d () with
                    | Some p -> push (o, d) p
                    | None -> ())
                  hottest
          end)
        pairs
  | Stress fraction ->
      (* Each round recomputes stress over everything assigned so far and
         avoids the most stressed links, diversifying successive tables. *)
      let assignment = Hashtbl.copy always_on.Always_on.paths in
      for _ = 1 to rounds do
        let excluded = excluded_links g assignment fraction in
        List.iter
          (fun (o, d) ->
            let p =
              match Routing.Disjoint.avoiding g ~avoid:excluded ~src:o ~dst:d () with
              | Some p -> Some p
              | None -> Routing.Dijkstra.shortest_path g ~src:o ~dst:d ()
            in
            Option.iter
              (fun p ->
                push (o, d) p;
                Hashtbl.replace assignment (o, d) p)
              p)
          pairs
      done
  | Ospf ->
      let routes = Routing.Spf.routes g ~pairs () in
      List.iter
        (fun od -> match Hashtbl.find_opt routes od with Some p -> push od p | None -> ())
        pairs
  | Heuristic peak ->
      let pinned l = Topo.State.link_on always_on.Always_on.state l in
      (match Optim.Greente.minimal_subset ~margin ~pinned g power peak with
      | None -> ()
      | Some res ->
          List.iter
            (fun od ->
              match Hashtbl.find_opt res.Optim.Minimal.routing od with
              | Some p -> push od p
              | None -> ())
            pairs));
  table
