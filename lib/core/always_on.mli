(** Always-on path computation (Section 4.1): a routing that carries low to
    medium traffic at the lowest power. Demand-oblivious by default (every
    pair gets an epsilon demand, yielding a minimal-power connected routing);
    alternatively driven by an off-peak traffic matrix estimate. The
    REsPoNse-lat variant additionally bounds each pair's propagation delay to
    (1 + beta) times its OSPF-InvCap delay (constraint (4)). *)

type mode =
  | Oblivious
      (** no traffic measurements: a capacity-derived gravity prior scaled to
          a small fraction of the network capacity (10 %). Compared with pure
          epsilon demands this keeps enough capacity in the always-on set to
          actually carry low-to-medium load — the paper's stated goal — while
          still using nothing but the topology. *)
  | Epsilon
      (** the paper's literal alternative: every flow set to a tiny value
          (1 bit/s), yielding the minimal-power connected routing. Capacity
          never binds, so on capacity-heterogeneous topologies the result can
          concentrate transit on small links. *)
  | Off_peak of Traffic.Matrix.t  (** d(O,D) = dlow(O,D) *)

type result = {
  paths : (int * int, Topo.Path.t) Hashtbl.t;
  state : Topo.State.t;  (** the always-on element set *)
}

val compute :
  ?margin:Eutil.Units.ratio Eutil.Units.q ->
  ?mode:mode ->
  ?latency_beta:float ->
  Topo.Graph.t ->
  Power.Model.t ->
  pairs:(int * int) list ->
  unit ->
  result
(** [latency_beta] enables the REsPoNse-lat delay bound; pairs whose
    minimal-power path violates the bound are repaired with the cheapest
    (fewest newly activated elements) among their k shortest paths that
    satisfies it.
    @raise Invalid_argument when the demands are infeasible even on the
    full network. *)
