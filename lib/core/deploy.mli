(** Deployment feasibility and robustness analysis (Section 4.5 and the
    paper's stated future work).

    ISP deployment installs the energy-critical paths as MPLS tunnels at the
    origin routers; modern routers support a limited number of tunnels
    (about 600 circa 2005 [26]), and memory-limited alternatives such as
    Dual Topology Routing hold only two tables. This module checks those
    budgets, restricts tables to fit them, and quantifies when topology
    changes would warrant recomputing the paths. *)

type tunnel_stats = {
  per_node : (int * int) list;  (** (origin node, head-end tunnel count), descending *)
  max_per_node : int;
  total : int;
}

val tunnel_stats : Tables.t -> tunnel_stats

val fits_mpls : ?tunnel_limit:int -> Tables.t -> bool
(** True when no origin needs more head-end tunnels than the router supports
    (default 600). *)

val restrict : Tables.t -> max_tables:int -> Tables.t
(** Keeps only the [max_tables] most important paths per pair (always-on
    first, then on-demand in activation order, failover last) — the paper's
    answer to memory-limited routing: "deploy only the most important routing
    tables, while keeping the remaining ones ready for later use".
    @raise Invalid_argument if [max_tables < 1]. *)

val single_failure_coverage : Tables.t -> float
(** Fraction (0..1) of pairs that keep at least one usable installed path
    under every single link failure. *)

val coverage_after_failures : Tables.t -> failed:int list -> float
(** Fraction of pairs with at least one installed path avoiding all the
    failed links. *)

val recompute_warranted : ?threshold:float -> Tables.t -> failed:int list -> bool
(** The future-work question made operational: after the given topology
    change, is the fraction of disconnected pairs above [threshold]
    (default 0.05), i.e. should the operator recompute the energy-critical
    paths? *)
