(** On-demand path computation (Section 4.2): paths that start carrying
    traffic when the load exceeds what the always-on paths can offer. Four
    variants, matching the paper's evaluation:

    - [Solver tm]: re-solve the minimisation with the peak traffic matrix,
      keeping every element already used by the always-on paths switched on
      (the baseline "REsPoNse").
    - [Stress q]: demand-oblivious — compute each link's stress factor (flows
      routed over it in the always-on assignment divided by capacity) and
      route on-demand paths avoiding the fraction [q] (paper: 0.2) of links
      with the highest stress.
    - [Ospf]: reuse the OSPF-InvCap routing table ("REsPoNse-ospf").
    - [Heuristic tm]: the GreenTE-style k-shortest-path heuristic
      ("REsPoNse-heuristic"). *)

type variant =
  | Solver of Traffic.Matrix.t
  | Stress of float
  | Ospf
  | Heuristic of Traffic.Matrix.t

val compute :
  ?margin:Eutil.Units.ratio Eutil.Units.q ->
  ?rounds:int ->
  Topo.Graph.t ->
  Power.Model.t ->
  always_on:Always_on.result ->
  pairs:(int * int) list ->
  variant ->
  (int * int, Topo.Path.t list) Hashtbl.t
(** Produces up to [rounds] (the paper's N-2, default 1) on-demand paths per
    pair, in activation order. Paths equal to the pair's always-on path, or to
    an earlier round's path, are dropped, so lists may be shorter than
    [rounds]. *)

val stress_factors : Topo.Graph.t -> (int * int, Topo.Path.t) Hashtbl.t -> float array
(** Per-link stress factor of a path assignment:
    sf(l) = (number of pairs routed over l) / capacity(l). Exposed for the
    sensitivity analysis (bench [stress]). *)
