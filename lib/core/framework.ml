module U = Eutil.Units

type variant =
  | Solver of Traffic.Matrix.t
  | Stress of float
  | Ospf
  | Heuristic of Traffic.Matrix.t

type config = {
  margin : U.ratio U.q;
  n_paths : int;
  latency_beta : float option;
  always_on_mode : Always_on.mode;
  on_demand : variant;
}

let default =
  {
    margin = U.ratio 1.0;
    n_paths = 3;
    latency_beta = None;
    always_on_mode = Always_on.Oblivious;
    on_demand = Stress 0.2;
  }

let m_precomputes =
  Obs.Metric.Counter.create ~help:"Full table precomputations" "core_precomputes_total"

let m_table_entries =
  Obs.Metric.Gauge.create ~help:"Entries in the most recently built table set"
    "core_table_entries"

let m_evaluations =
  Obs.Metric.Counter.create ~help:"Traffic-matrix evaluations against tables"
    "core_evaluations_total"

(* Debug-time validation of freshly installed tables (Check.Invariant). On
   by default so every test exercises it; RESPONSE_CHECKS=0 (or flipping the
   atomic) disables it for production-scale precomputations. An [Atomic.t]
   rather than a [ref] so that flipping it is race-free with respect to a
   concurrently running precompute. *)
let install_checks = Atomic.make (Sys.getenv_opt "RESPONSE_CHECKS" <> Some "0")

let validate_tables g ~pairs tables =
  let entries =
    List.map
      (fun e ->
        {
          Check.Invariant.origin = e.Tables.origin;
          dest = e.Tables.dest;
          always_on = e.Tables.always_on;
          on_demand = e.Tables.on_demand;
          failover = e.Tables.failover;
        })
      (Tables.entries tables)
  in
  match Check.Finding.errors (Check.Invariant.check_tables g ~pairs entries) with
  | [] -> ()
  | errors ->
      invalid_arg
        ("Framework.precompute: table invariants violated:\n" ^ Check.Finding.render errors)

let precompute ?(config = default) ?(jobs = 1) g power ~pairs =
  if config.n_paths < 2 then invalid_arg "Framework.precompute: n_paths >= 2";
  Obs.Span.with_ "core.precompute" (fun () ->
      let always_on =
        Obs.Span.with_ "core.precompute.always_on" (fun () ->
            Always_on.compute ~margin:config.margin ~mode:config.always_on_mode
              ?latency_beta:config.latency_beta g power ~pairs ())
      in
      let rounds = max 1 (config.n_paths - 2) in
      let variant =
        match config.on_demand with
        | Solver tm -> On_demand.Solver tm
        | Stress q -> On_demand.Stress q
        | Ospf -> On_demand.Ospf
        | Heuristic tm -> On_demand.Heuristic tm
      in
      let on_demand =
        Obs.Span.with_ "core.precompute.on_demand" (fun () ->
            On_demand.compute ~margin:config.margin ~rounds g power ~always_on ~pairs variant)
      in
      let protect = Hashtbl.create (List.length pairs) in
      List.iter
        (fun od ->
          match Hashtbl.find_opt always_on.Always_on.paths od with
          | None -> ()
          | Some ao ->
              let ods = Option.value (Hashtbl.find_opt on_demand od) ~default:[] in
              Hashtbl.replace protect od (ao :: ods))
        pairs;
      let failover =
        Obs.Span.with_ "core.precompute.failover" (fun () ->
            Failover.compute ~jobs g ~protect ~pairs)
      in
      let entries =
        List.filter_map
          (fun (o, d) ->
            match Hashtbl.find_opt always_on.Always_on.paths (o, d) with
            | None -> None
            | Some ao ->
                Some
                  {
                    Tables.origin = o;
                    dest = d;
                    always_on = ao;
                    on_demand = Option.value (Hashtbl.find_opt on_demand (o, d)) ~default:[];
                    failover = Hashtbl.find_opt failover (o, d);
                  })
          pairs
      in
      let tables = Tables.make g entries in
      if Atomic.get install_checks then
        Obs.Span.with_ "core.precompute.validate" (fun () ->
            validate_tables g ~pairs tables);
      Obs.Metric.Counter.incr m_precomputes;
      Obs.Metric.Gauge.set_int m_table_entries (List.length entries);
      tables)

(* ------------------------------------------------------------------ *)
(* Memoized precompute                                                *)
(* ------------------------------------------------------------------ *)

(* Cache keys are exact digests of every input [precompute] reads: the
   topology structure, the power model evaluated over that topology (the
   model is a record of closures, so its observable behaviour on [g] is
   all a key can — and need — capture), the pair list and the config
   including any embedded traffic matrix. [jobs] is deliberately absent:
   tables are identical for any fan-out. *)

let power_signature g (p : Power.Model.t) =
  let b = Buffer.create 512 in
  Buffer.add_string b p.Power.Model.description;
  for n = 0 to Topo.Graph.node_count g - 1 do
    Buffer.add_string b (Printf.sprintf "|%h" (U.to_float (p.Power.Model.chassis n)))
  done;
  Topo.Graph.fold_arcs g ~init:() ~f:(fun () a ->
      Buffer.add_string b (Printf.sprintf "|%h" (U.to_float (p.Power.Model.port a))));
  for l = 0 to Topo.Graph.link_count g - 1 do
    Buffer.add_string b (Printf.sprintf "|%h" (U.to_float (p.Power.Model.amplifier l)))
  done;
  Buffer.contents b

let variant_signature = function
  | Solver tm -> "solver:" ^ Traffic.Matrix.signature tm
  | Stress q -> Printf.sprintf "stress:%h" q
  | Ospf -> "ospf"
  | Heuristic tm -> "heuristic:" ^ Traffic.Matrix.signature tm

let config_signature c =
  let mode =
    match c.always_on_mode with
    | Always_on.Oblivious -> "oblivious"
    | Always_on.Epsilon -> "epsilon"
    | Always_on.Off_peak tm -> "off_peak:" ^ Traffic.Matrix.signature tm
  in
  let beta = match c.latency_beta with None -> "none" | Some b -> Printf.sprintf "%h" b in
  Printf.sprintf "%h|%d|%s|%s|%s" (U.to_float c.margin) c.n_paths beta mode
    (variant_signature c.on_demand)

let cache : (string, Tables.t) Eutil.Memo.t = Eutil.Memo.create ~capacity:32 ()

let cache_stats () = Eutil.Memo.stats cache
let cache_clear () = Eutil.Memo.clear cache

let precompute_cached ?(config = default) ?(jobs = 1) g power ~pairs =
  let pair_sig p = Printf.sprintf "%d,%d" (fst p) (snd p) in
  let key =
    String.concat "/"
      [ Topo.Graph.signature g;
        power_signature g power;
        String.concat ";" (List.map pair_sig pairs);
        config_signature config ]
  in
  Eutil.Memo.find_or_add cache key ~compute:(fun _ ->
      precompute ~config ~jobs g power ~pairs)

type evaluation = {
  state : Topo.State.t;
  power_watts : float;
  power_percent : float;
  max_utilization : float;
  levels_activated : int;
  congested : (int * int) list;
}

(* Max utilisation a path would reach if the demand were added on top of the
   current loads. *)
let path_util_with g loads p demand =
  Array.fold_left
    (fun acc a ->
      let arc = Topo.Graph.arc g a in
      max acc ((loads.(a) +. demand) /. arc.Topo.Graph.capacity))
    0.0 p.Topo.Path.arcs

let place_flows ?threshold ?max_level tables tm =
  let threshold = U.to_float (match threshold with Some t -> t | None -> U.ratio 0.9) in
  let g = Tables.graph tables in
  let loads = Array.make (Topo.Graph.arc_count g) 0.0 in
  let levels = ref 0 in
  let congested = ref [] in
  let placed = ref [] in
  List.iter
    (fun (o, d, demand) ->
      match Tables.find tables o d with
      | None -> congested := (o, d) :: !congested
      | Some e ->
          let paths = Tables.paths e in
          let limit =
            match max_level with
            | None -> Array.length paths
            | Some m -> min (Array.length paths) (m + 1)
          in
          (* First path (in activation order) that stays under the
             utilisation threshold; otherwise the least-loaded one. *)
          let chosen = ref None in
          (try
             for i = 0 to limit - 1 do
               if path_util_with g loads paths.(i) demand <= threshold then begin
                 chosen := Some (i, paths.(i));
                 raise Exit
               end
             done
           with Exit -> ());
          let i, p =
            match !chosen with
            | Some x -> x
            | None ->
                (* Spill: minimise the resulting worst utilisation. *)
                let best = ref (0, paths.(0), path_util_with g loads paths.(0) demand) in
                for i = 1 to limit - 1 do
                  let u = path_util_with g loads paths.(i) demand in
                  let _, _, bu = !best in
                  if u < bu then best := (i, paths.(i), u)
                done;
                let i, p, u = !best in
                if u > 1.0 then congested := (o, d) :: !congested;
                (i, p)
          in
          levels := max !levels i;
          Array.iter (fun a -> loads.(a) <- loads.(a) +. demand) p.Topo.Path.arcs;
          placed := ((o, d), p) :: !placed)
    (Traffic.Matrix.flows_desc tm);
  (loads, !levels, List.rev !congested, !placed)

let evaluate ?threshold tables power tm =
  Obs.Metric.Counter.incr m_evaluations;
  let g = Tables.graph tables in
  let loads, levels_activated, congested, _ = place_flows ?threshold tables tm in
  let link_load l =
    let a1, a2 = Topo.Graph.arcs_of_link g l in
    loads.(a1) +. loads.(a2)
  in
  let state = Power.Model.state_of_loads g link_load in
  let max_utilization =
    Array.fold_left max 0.0
      (Array.mapi (fun a load -> load /. (Topo.Graph.arc g a).Topo.Graph.capacity) loads)
  in
  {
    state;
    power_watts = U.to_float (Power.Model.total power g state);
    power_percent = Power.Model.percent_of_full power g state;
    max_utilization;
    levels_activated;
    congested;
  }

let loads ?threshold tables tm =
  let loads, _, _, _ = place_flows ?threshold tables tm in
  loads

let carried_fraction ?threshold tables _power ~base ~max_level =
  let fits scale =
    let tm = Traffic.Matrix.scale base scale in
    let _, _, congested, _ = place_flows ?threshold ~max_level tables tm in
    congested = []
  in
  (* Search window for the feasible demand scale: six orders of magnitude
     either side of the base matrix. *)
  let scale_min = 1e-6 and scale_max = 1e6 in
  if not (fits scale_min) then 0.0
  else begin
    (* Exponential search then bisection on the feasible scale. *)
    let hi = ref scale_min in
    while fits (2.0 *. !hi) && !hi < scale_max do
      hi := 2.0 *. !hi
    done;
    let lo = ref !hi and hi = ref (2.0 *. !hi) in
    for _ = 1 to 30 do
      let mid = (!lo +. !hi) /. 2.0 in
      if fits mid then lo := mid else hi := mid
    done;
    !lo
  end
