type t = {
  g : Topo.Graph.t;
  by_pair : (int * int, (Topo.Path.t * float ref) list ref) Hashtbl.t;
}

let create g = { g; by_pair = Hashtbl.create 256 }

let observe t routing tm =
  Traffic.Matrix.iter_flows tm ~f:(fun o d v ->
      match Hashtbl.find_opt routing (o, d) with
      | None -> ()
      | Some p ->
          let entry =
            match Hashtbl.find_opt t.by_pair (o, d) with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace t.by_pair (o, d) l;
                l
          in
          (match List.find_opt (fun (q, _) -> Topo.Path.equal p q) !entry with
          | Some (_, acc) -> acc := !acc +. v
          | None -> entry := (p, ref v) :: !entry))

let paths_of t o d =
  match Hashtbl.find_opt t.by_pair (o, d) with
  | None -> []
  | Some l ->
      List.map (fun (p, acc) -> (p, !acc)) !l
      |> List.sort
           (Eutil.Order.by
              (fun (p, v) -> (v, p.Topo.Path.arcs))
              (Eutil.Order.pair (Eutil.Order.desc Float.compare) (Eutil.Order.array Int.compare)))

let coverage t ~top =
  if top < 0 then invalid_arg "Critical_paths.coverage";
  let total = ref 0.0 and covered = ref 0.0 in
  Hashtbl.iter
    (fun (o, d) _ ->
      let ranked = paths_of t o d in
      List.iteri
        (fun i (_, v) ->
          total := !total +. v;
          if i < top then covered := !covered +. v)
        ranked)
    t.by_pair;
  if !total = 0.0 then 0.0 else 100.0 *. !covered /. !total

let coverage_curve t ~max =
  List.init max (fun i -> (i + 1, coverage t ~top:(i + 1)))

let distinct_paths t =
  Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.by_pair 0

let max_paths_per_pair t =
  Hashtbl.fold (fun _ l acc -> Stdlib.max acc (List.length !l)) t.by_pair 0
