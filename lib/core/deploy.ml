type tunnel_stats = {
  per_node : (int * int) list;
  max_per_node : int;
  total : int;
}

let tunnel_stats tables =
  let g = Tables.graph tables in
  let counts = Array.make (Topo.Graph.node_count g) 0 in
  List.iter
    (fun e ->
      counts.(e.Tables.origin) <- counts.(e.Tables.origin) + Array.length (Tables.paths e))
    (Tables.entries tables);
  let per_node =
    Array.to_list (Array.mapi (fun n c -> (n, c)) counts)
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort
         (Eutil.Order.by (fun (n, c) -> (c, n)) (Eutil.Order.pair (Eutil.Order.desc Int.compare) Int.compare))
  in
  {
    per_node;
    max_per_node = (match per_node with (_, c) :: _ -> c | [] -> 0);
    total = Array.fold_left ( + ) 0 counts;
  }

let fits_mpls ?(tunnel_limit = 600) tables = (tunnel_stats tables).max_per_node <= tunnel_limit

let restrict tables ~max_tables =
  if max_tables < 1 then invalid_arg "Deploy.restrict: max_tables >= 1";
  let g = Tables.graph tables in
  let entries =
    List.map
      (fun e ->
        let rec take n = function
          | [] -> []
          | x :: r -> if n <= 0 then [] else x :: take (n - 1) r
        in
        let budget_after_ao = max_tables - 1 in
        let keep_failover = e.Tables.failover <> None && budget_after_ao > 0 in
        let od_budget = budget_after_ao - if keep_failover then 1 else 0 in
        {
          e with
          Tables.on_demand = take od_budget e.Tables.on_demand;
          failover = (if keep_failover then e.Tables.failover else None);
        })
      (Tables.entries tables)
  in
  Tables.make g entries

let coverage_after_failures tables ~failed =
  let g = Tables.graph tables in
  let entries = Tables.entries tables in
  if entries = [] then 1.0
  else begin
    let ok =
      List.length
        (List.filter
           (fun e ->
             Array.exists
               (fun p -> not (List.exists (fun l -> Topo.Path.uses_link g p l) failed))
               (Tables.paths e))
           entries)
    in
    float_of_int ok /. float_of_int (List.length entries)
  end

let single_failure_coverage tables =
  let g = Tables.graph tables in
  let worst = ref 1.0 in
  Topo.Graph.iter_links g ~f:(fun l -> worst := min !worst (coverage_after_failures tables ~failed:[ l ]));
  !worst

let recompute_warranted ?(threshold = 0.05) tables ~failed =
  1.0 -. coverage_after_failures tables ~failed > threshold
