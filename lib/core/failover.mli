(** Failover path computation (Section 4.3): one path per pair, chosen so
    that the pair's installed paths combined are not vulnerable to a single
    link failure; where the topology cannot offer full disjointness, the path
    least likely to share a failure is chosen. *)

val pair_path :
  Topo.Graph.t ->
  protect:(int * int, Topo.Path.t list) Hashtbl.t ->
  int * int ->
  ((int * int) * Topo.Path.t) option
(** One pair's failover path, or [None] when the topology offers nothing
    beyond the already-installed paths. Reads only the graph and the
    fully-built [protect] table — no shared mutable state — so distinct
    pairs may be computed on distinct domains (certified parallel
    entrypoint, see check/parallel.json). *)

val compute :
  ?jobs:int ->
  Topo.Graph.t ->
  protect:(int * int, Topo.Path.t list) Hashtbl.t ->
  pairs:(int * int) list ->
  (int * int, Topo.Path.t) Hashtbl.t
(** [protect] holds, per pair, the already-installed (always-on + on-demand)
    paths the failover must avoid. Pairs whose failover would duplicate an
    installed path are omitted. [jobs] (default 1) fans the per-pair loop
    out over that many domains; the result is identical for any [jobs]
    (results are merged in [pairs] order). *)

val vulnerable_pairs : Topo.Graph.t -> Tables.t -> (int * int) list
(** Pairs for which a single link failure can disconnect every installed
    path — the quantity behind the paper's claim that a single failover path
    deals with the vast majority of failures. *)

val node_vulnerable_pairs : Topo.Graph.t -> Tables.t -> (int * int) list
(** Pairs for which a single transit-node (chassis) failure — all of the
    node's links failing together — disconnects every installed path.
    Origins and destinations are excluded: losing an endpoint is not a
    routing failure. Always a superset-or-equal of the pairs that share a
    transit node across all paths; link-disjoint paths through a common
    transit node are caught here but not by {!vulnerable_pairs}. *)
