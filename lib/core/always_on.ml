module U = Eutil.Units

type mode = Oblivious | Epsilon | Off_peak of Traffic.Matrix.t

type result = {
  paths : (int * int, Topo.Path.t) Hashtbl.t;
  state : Topo.State.t;
}

(* Cost of a candidate repair path: power of the links it would newly
   activate. *)
let activation_power g power state p =
  Array.fold_left
    (fun acc l ->
      if Topo.State.link_on state l then acc
      else U.( +: ) acc (Power.Model.link_power power g l))
    U.zero (Topo.Path.links g p)

let repair_latency g power state bounds paths pairs =
  List.iter
    (fun (o, d) ->
      match (Hashtbl.find_opt paths (o, d), Hashtbl.find_opt bounds (o, d)) with
      | Some p, Some bound when Topo.Path.latency g p > bound +. 1e-12 ->
          let candidates = Routing.Yen.k_shortest g ~src:o ~dst:d ~k:8 () in
          let ok = List.filter (fun c -> Topo.Path.latency g c <= bound +. 1e-12) candidates in
          let best =
            List.fold_left
              (fun acc c ->
                let cost = (activation_power g power state c, Topo.Path.latency g c) in
                match acc with
                | Some (bc, _) when bc <= cost -> acc
                | _ -> Some (cost, c))
              None ok
          in
          Option.iter
            (fun (_, c) ->
              Hashtbl.replace paths (o, d) c;
              Array.iter (fun l -> Topo.State.set_link g state l true) (Topo.Path.links g c))
            best
      | _ -> ())
    pairs

let compute ?margin ?(mode = Oblivious) ?latency_beta g power ~pairs () =
  let margin = match margin with Some m -> m | None -> U.ratio 1.0 in
  let tm =
    match mode with
    | Oblivious ->
        (* Prior volume: 5 % of what the selected endpoints can inject. On an
           ISP PoP topology this is ~10 % of the summed link capacity; on an
           overprovisioned fat-tree it stays proportional to the host uplinks
           rather than to the fabric, and with sampled pairs it scales with
           the sampled endpoints. *)
        let w = Traffic.Gravity.weights g in
        let endpoints =
          List.concat_map (fun (o, d) -> [ o; d ]) pairs |> List.sort_uniq Int.compare
        in
        let injection = List.fold_left (fun acc n -> acc +. w.(n)) 0.0 endpoints in
        Traffic.Gravity.make g ~pairs ~total:(U.bps (0.05 *. injection)) ()
    | Epsilon ->
        (* "one can set all flows equal to a small value epsilon (e.g. 1
           bit/s) to obtain a minimal-power routing with full connectivity" *)
        Traffic.Matrix.uniform (Topo.Graph.node_count g) ~pairs ~demand:1.0
    | Off_peak m -> m
  in
  match Optim.Minimal.power_down ~margin g power tm with
  | None -> invalid_arg "Always_on.compute: demands infeasible on the full network"
  | Some r ->
      let paths = Hashtbl.create (List.length pairs) in
      List.iter
        (fun (o, d) ->
          match Hashtbl.find_opt r.Optim.Minimal.routing (o, d) with
          | Some p -> Hashtbl.replace paths (o, d) p
          | None -> ())
        pairs;
      let state = Topo.State.copy r.Optim.Minimal.state in
      (match latency_beta with
      | None -> ()
      | Some beta ->
          let bounds = Routing.Spf.delay_bound_table g ~pairs ~beta in
          repair_latency g power state bounds paths pairs);
      { paths; state }
