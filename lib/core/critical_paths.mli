(** Energy-critical path identification (Section 3.3): rank, for every
    origin-destination pair, the paths an optimal (per-interval) routing
    would have used, by the amount of traffic each carried over the trace.
    A handful of recurring paths carries almost all traffic — those are the
    energy-critical paths REsPoNse installs. *)

type t
(** Accumulated ranking. *)

val create : Topo.Graph.t -> t

val observe : t -> (int * int, Topo.Path.t) Hashtbl.t -> Traffic.Matrix.t -> unit
(** Accounts one interval: each pair's routed path is credited with the
    pair's demand in the interval. *)

val coverage : t -> top:int -> float
(** Percentage (0..100) of all observed traffic that falls on each pair's
    [top] heaviest paths — the y-axis of Figure 2b.
    @raise Invalid_argument if [top] is negative. *)

val coverage_curve : t -> max:int -> (int * float) list
(** [(x, coverage ~top:x)] for x = 1..max. *)

val paths_of : t -> int -> int -> (Topo.Path.t * float) list
(** A pair's observed paths with accumulated traffic, heaviest first. *)

val distinct_paths : t -> int
(** Total number of distinct (pair, path) combinations observed. *)

val max_paths_per_pair : t -> int
