(** REsPoNse routing tables: for every origin-destination pair, one always-on
    path, a small ordered set of on-demand paths, and a failover path
    (Section 4). These are the "energy-critical paths" installed once into
    the network; the online component only ever chooses among them. *)

type entry = {
  origin : int;
  dest : int;
  always_on : Topo.Path.t;
  on_demand : Topo.Path.t list;  (** in activation order, no duplicates *)
  failover : Topo.Path.t option;
}

type t

val make : Topo.Graph.t -> entry list -> t
(** Builds the table set; entries must be unique per pair, and every path must
    connect its pair.
    @raise Invalid_argument on a duplicate pair or a path that does not
    connect its endpoints. *)

val graph : t -> Topo.Graph.t
val find : t -> int -> int -> entry option
val pairs : t -> (int * int) list
val entries : t -> entry list

val paths : entry -> Topo.Path.t array
(** All paths of the entry in activation order: always-on first, then
    on-demand, then the failover. *)

val n_tables : t -> int
(** The N of the paper: the maximum number of distinct paths any pair holds
    (e.g. 3 = always-on + on-demand + failover). *)

val always_on_state : t -> Topo.State.t
(** Activity state with exactly the links of the always-on paths powered. *)

val full_state : t -> Topo.State.t
(** Links of any installed path powered (the maximum REsPoNse footprint). *)

val level_state : t -> int -> Topo.State.t
(** Links of all paths up to the given activation level (0 = always-on). *)

val pp : Format.formatter -> t -> unit
