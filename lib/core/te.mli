(** REsPoNseTE, the paper's online traffic-engineering component
    (Section 4.4): edge routers (agents) aggregate their traffic on the
    always-on paths while the utilisation target holds, activate on-demand
    paths when it no longer does, and fall back to failover paths on
    failures. Decisions are made per origin from utilisation reported by
    probes over the agent's own paths only (which is what makes the scheme
    scalable), every T seconds (T = the maximum round-trip time).

    This module is the pure decision logic; {!Netsim} drives it with
    simulated probes, wake-up latencies and failures. Shifts are bounded per
    decision (a TeXCP-style step cap) and widen only after the hysteresis
    delay, which prevents the persistent oscillations the paper warns
    about. *)

type config = {
  probe_period : Eutil.Units.seconds Eutil.Units.q;
      (** T; set to the network's max RTT *)
  util_threshold : Eutil.Units.ratio Eutil.Units.q;
      (** activate the next level above this (0..1) *)
  low_threshold : Eutil.Units.ratio Eutil.Units.q;
      (** consolidate below this (0..1) *)
  hysteresis : Eutil.Units.seconds Eutil.Units.q;
      (** time below [low_threshold] before stepping down *)
  shift_fraction : Eutil.Units.ratio Eutil.Units.q;
      (** max fraction of a pair's traffic moved per decision *)
}

val default_config : config
(** threshold 0.9 / low 0.4 / hysteresis 2 probe periods / shift 0.5,
    probe period 0.1 s. *)

type action =
  | Wake of int list  (** links the agent asks the network to wake *)
  | Set_split of float array  (** new traffic split over the pair's paths *)

type t

val create : Tables.t -> config -> t
(** Fresh controller state: every pair fully on its always-on path. *)

val config : t -> config

val split : t -> int -> int -> float array
(** Current traffic split of a pair over its paths (activation order). *)

val force_split : t -> int -> int -> float array -> unit
(** Overrides a pair's split (normalised), e.g. to start an experiment from a
    non-default state as in Figure 7, where traffic initially uses all paths
    and REsPoNseTE consolidates it once started. *)

val on_probe :
  t ->
  origin:int ->
  dest:int ->
  now:float ->
  link_util:(int -> float) ->
  link_usable:(int -> bool) ->
  action list
(** One probe round for a pair. [link_util] is the utilisation the probe
    reported for a link; [link_usable] is false for failed links (sleeping
    links are usable — they wake on demand). The returned actions are to be
    applied by the caller in order. *)
