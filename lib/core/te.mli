(** REsPoNseTE, the paper's online traffic-engineering component
    (Section 4.4): edge routers (agents) aggregate their traffic on the
    always-on paths while the utilisation target holds, activate on-demand
    paths when it no longer does, and fall back to failover paths on
    failures. Decisions are made per origin from utilisation reported by
    probes over the agent's own paths only (which is what makes the scheme
    scalable), every T seconds (T = the maximum round-trip time).

    This module is the pure decision logic; {!Netsim} drives it with
    simulated probes, wake-up latencies and failures. Shifts are bounded per
    decision (a TeXCP-style step cap) and widen only after the hysteresis
    delay, which prevents the persistent oscillations the paper warns
    about. *)

type config = {
  probe_period : Eutil.Units.seconds Eutil.Units.q;
      (** T; set to the network's max RTT *)
  util_threshold : Eutil.Units.ratio Eutil.Units.q;
      (** activate the next level above this (0..1) *)
  low_threshold : Eutil.Units.ratio Eutil.Units.q;
      (** consolidate below this (0..1) *)
  hysteresis : Eutil.Units.seconds Eutil.Units.q;
      (** time below [low_threshold] before stepping down *)
  shift_fraction : Eutil.Units.ratio Eutil.Units.q;
      (** max fraction of a pair's traffic moved per decision *)
  panic_retries : int;
      (** wake rounds attempted from panic mode before escalating to the
          dynamic fallback; 0 escalates on the first degraded probe *)
  panic_backoff : Eutil.Units.seconds Eutil.Units.q;
      (** base of the exponential backoff between panic wake rounds *)
}

val default_config : config
(** threshold 0.9 / low 0.4 / hysteresis 2 probe periods / shift 0.5,
    probe period 0.1 s, 3 panic retries with 0.1 s base backoff. *)

type action =
  | Wake of int list  (** links the agent asks the network to wake *)
  | Set_split of float array  (** new traffic split over the pair's paths *)
  | Use_fallback
      (** every installed path is unusable and panic retries are exhausted:
          the caller should route this pair over the shortest currently
          usable path (OSPF-style) until {!Cancel_fallback} *)
  | Cancel_fallback
      (** an installed path is usable again; drop the dynamic fallback *)

type t

val create : Tables.t -> config -> t
(** Fresh controller state: every pair fully on its always-on path. *)

val config : t -> config

val split : t -> int -> int -> float array
(** Current traffic split of a pair over its paths (activation order).
    @raise Invalid_argument on an unknown pair. *)

val force_split : t -> int -> int -> float array -> unit
(** Overrides a pair's split (normalised), e.g. to start an experiment from a
    non-default state as in Figure 7, where traffic initially uses all paths
    and REsPoNseTE consolidates it once started.
    @raise Invalid_argument on an unknown pair or a split whose arity does
    not match the pair's path count. *)

val on_probe :
  t ->
  origin:int ->
  dest:int ->
  now:float ->
  link_util:(int -> float) ->
  link_usable:(int -> bool) ->
  action list
(** One probe round for a pair. [link_util] is the utilisation the probe
    reported for a link; [link_usable] is false for failed links (sleeping
    links are usable — they wake on demand). The returned actions are to be
    applied by the caller in order.

    When every installed path of the pair is unusable the agent escalates
    instead of silently dropping the share: the split is zeroed (so the
    caller measures the unserved demand as loss), up to [panic_retries]
    {!Wake} rounds are issued for all installed links with exponentially
    growing backoff, and then a single {!Use_fallback} asks the caller to
    route dynamically. The first probe that sees a usable installed path
    again restores traffic onto it, emits {!Cancel_fallback} if one was
    requested, and records the outage duration in the
    [te_recovery_seconds] histogram. *)
