(** Trace replay of the state-of-the-art approach: recompute the minimal
    network subset for every interval of a traffic trace, as the paper does
    in Section 3 to quantify the optimality-scalability trade-off.

    Produces the recomputation-rate metric (Figure 1b), the routing
    configuration dominance (Figure 2a) and the per-pair path ranking that
    reveals the energy-critical paths (Figure 2b). *)

type interval = {
  time : float;
  state : Topo.State.t;
  power_percent : float;
  changed : bool;  (** the active element set differs from the previous interval *)
}

type t = {
  intervals : interval array;
  trace_interval : float;  (** seconds between intervals *)
  ranking : Critical_paths.t;
  recomputations : int;
}

val run :
  ?margin:Eutil.Units.ratio Eutil.Units.q ->
  ?solver:[ `Greedy | `Greente ] ->
  Topo.Graph.t ->
  Power.Model.t ->
  Traffic.Trace.t ->
  t
(** Replays the whole trace with the chosen per-interval solver (default
    [`Greedy], the CPLEX stand-in). Intervals whose demand is infeasible keep
    the previous configuration and count as unchanged. *)

val recomputation_rate : t -> bucket:float -> (float * float) list
(** Recomputations per hour over buckets of [bucket] seconds:
    [(bucket start time, rate per hour)] — Figure 1b.
    @raise Invalid_argument if [bucket] is not positive. *)

val config_dominance : t -> (string * float) list
(** Fraction of intervals spent in each distinct routing configuration,
    dominant first — Figure 2a. Keys are opaque configuration digests. *)

val mean_power_percent : t -> float
