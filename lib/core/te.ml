module U = Eutil.Units

type config = {
  probe_period : U.seconds U.q;
  util_threshold : U.ratio U.q;
  low_threshold : U.ratio U.q;
  hysteresis : U.seconds U.q;
  shift_fraction : U.ratio U.q;
  panic_retries : int;
  panic_backoff : U.seconds U.q;
}

let default_config =
  {
    probe_period = U.seconds 0.1;
    util_threshold = U.ratio 0.9;
    low_threshold = U.ratio 0.4;
    hysteresis = U.seconds 0.2;
    shift_fraction = U.ratio 0.5;
    panic_retries = 3;
    panic_backoff = U.seconds 0.1;
  }

type action =
  | Wake of int list
  | Set_split of float array
  | Use_fallback
  | Cancel_fallback

let m_probes =
  Obs.Metric.Counter.create ~help:"TE probe reports processed" "te_probes_total"

let m_shifts =
  Obs.Metric.Counter.create ~help:"Probes that changed a traffic split" "te_shifts_total"

let m_failovers =
  Obs.Metric.Counter.create ~help:"Probes that moved traffic off a failed path"
    "te_failovers_total"

let m_overload_shifts =
  Obs.Metric.Counter.create ~help:"Shifts triggered by the overload threshold"
    "te_overload_shifts_total"

let m_consolidations =
  Obs.Metric.Counter.create ~help:"Shifts that consolidated traffic downwards"
    "te_consolidations_total"

let m_wake_requests =
  Obs.Metric.Counter.create ~help:"Links TE asked the network to wake"
    "te_wake_requests_total"

let m_panics =
  Obs.Metric.Counter.create ~help:"Pairs that lost every installed path and entered panic mode"
    "te_panics_total"

let m_panic_wakes =
  Obs.Metric.Counter.create ~help:"Bounded-retry wake rounds issued from panic mode"
    "te_panic_wakes_total"

let m_fallbacks =
  Obs.Metric.Counter.create
    ~help:"Panic escalations to the dynamic shortest-usable-path fallback" "te_fallbacks_total"

let m_recovery_seconds =
  Obs.Metric.Histogram.create
    ~help:"Time from a pair losing every installed path to a probe seeing one usable again"
    "te_recovery_seconds"

(* Escalation state of a pair whose installed paths are all unusable: bounded
   wake retries with exponential backoff, then a dynamic-fallback request.
   [d_since] anchors the recovery-time histogram. *)
type degraded = {
  d_since : float;
  mutable d_retries : int;
  mutable d_next_retry : float;
  mutable d_fallback : bool;
}

type mode = Normal | Degraded of degraded

type pair_state = {
  paths : Topo.Path.t array;
  mutable split : float array;
  mutable below_since : float option;  (* start of the current low-load streak *)
  mutable mode : mode;
}

type t = { cfg : config; g : Topo.Graph.t; pairs : (int * int, pair_state) Hashtbl.t }

let create tables cfg =
  let g = Tables.graph tables in
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let paths = Tables.paths e in
      let split = Array.init (Array.length paths) (fun i -> if i = 0 then 1.0 else 0.0) in
      Hashtbl.replace pairs
        (e.Tables.origin, e.Tables.dest)
        { paths; split; below_since = None; mode = Normal })
    (Tables.entries tables);
  { cfg; g; pairs }

let config t = t.cfg

let split t o d =
  match Hashtbl.find_opt t.pairs (o, d) with
  | Some ps -> Array.copy ps.split
  | None -> invalid_arg "Te.split: unknown pair"

let normalise_copy split =
  let total = Array.fold_left ( +. ) 0.0 split in
  if total > 0.0 then Array.map (fun s -> s /. total) split else Array.copy split

let force_split t o d split =
  match Hashtbl.find_opt t.pairs (o, d) with
  | None -> invalid_arg "Te.force_split: unknown pair"
  | Some ps ->
      if Array.length split <> Array.length ps.paths then
        invalid_arg "Te.force_split: wrong arity";
      ps.split <- normalise_copy split;
      ps.below_since <- None;
      ps.mode <- Normal

let path_usable g usable p = Array.for_all (fun l -> usable l) (Topo.Path.links g p)

let path_util g util p =
  Array.fold_left (fun acc l -> max acc (util l)) 0.0 (Topo.Path.links g p)

let normalise split =
  let total = Array.fold_left ( +. ) 0.0 split in
  if total > 0.0 then Array.map (fun s -> s /. total) split else split

let sleeping_links g usable split paths =
  (* Links the new split needs that the probe saw carrying nothing: ask the
     network to wake them. The caller knows which are actually asleep; waking
     an active link is a no-op. *)
  let links = ref [] in
  Array.iteri
    (fun i s ->
      if s > 0.0 then
        Array.iter
          (fun l -> if usable l then links := l :: !links)
          (Topo.Path.links g paths.(i)))
    split;
  List.sort_uniq Int.compare !links

let on_probe t ~origin ~dest ~now ~link_util ~link_usable =
  Obs.Metric.Counter.incr m_probes;
  match Hashtbl.find_opt t.pairs (origin, dest) with
  | None -> []
  | Some ps ->
      let g = t.g in
      let cfg = t.cfg in
      (* Probe comparisons happen against raw utilisation and timestamp
         floats; unwrap the typed thresholds once, at the decision boundary. *)
      let util_threshold = U.to_float cfg.util_threshold in
      let low_threshold = U.to_float cfg.low_threshold in
      let hysteresis = U.to_float cfg.hysteresis in
      let shift_fraction = U.to_float cfg.shift_fraction in
      let n = Array.length ps.paths in
      let usable i = path_usable g link_usable ps.paths.(i) in
      let util i = path_util g link_util ps.paths.(i) in
      let any_usable =
        let rec scan i = i < n && (usable i || scan (i + 1)) in
        scan 0
      in
      (* Escalation ladder for a pair with no usable installed path at all:
         bounded wake retries (the links may merely be believed-failed or
         asleep), each retry doubling the backoff, then one Use_fallback
         request asking the caller to route over the shortest usable path
         outside the installed set. Either way the pair's split is zeroed so
         the unserved traffic is measured as loss, not silently dropped. *)
      let panic_step d =
        if d.d_fallback then []
        else if now +. 1e-12 < d.d_next_retry then []
        else if d.d_retries >= cfg.panic_retries then begin
          d.d_fallback <- true;
          Obs.Metric.Counter.incr m_fallbacks;
          [ Use_fallback ]
        end
        else begin
          d.d_retries <- d.d_retries + 1;
          d.d_next_retry <-
            now +. (U.to_float cfg.panic_backoff *. float_of_int (1 lsl d.d_retries));
          Obs.Metric.Counter.incr m_panic_wakes;
          let all_links =
            let acc = ref [] in
            Array.iter
              (fun p -> Array.iter (fun l -> acc := l :: !acc) (Topo.Path.links g p))
              ps.paths;
            List.sort_uniq Int.compare !acc
          in
          Obs.Metric.Counter.add_int m_wake_requests (List.length all_links);
          [ Wake all_links ]
        end
      in
      let enter_panic () =
        let d = { d_since = now; d_retries = 0; d_next_retry = now; d_fallback = false } in
        ps.mode <- Degraded d;
        ps.below_since <- None;
        Obs.Metric.Counter.incr m_panics;
        let had_traffic = Array.exists (fun s -> s > 0.0) ps.split in
        ps.split <- Array.make n 0.0;
        (if had_traffic then [ Set_split (Array.make n 0.0) ] else []) @ panic_step d
      in
      let recover d =
        Obs.Metric.Histogram.observe m_recovery_seconds (now -. d.d_since);
        ps.mode <- Normal;
        ps.below_since <- None;
        let target = ref 0 in
        for i = n - 1 downto 0 do
          if usable i then target := i
        done;
        let split = Array.make n 0.0 in
        split.(!target) <- 1.0;
        ps.split <- split;
        let wakes = sleeping_links g link_usable split ps.paths in
        Obs.Metric.Counter.incr m_shifts;
        Obs.Metric.Counter.add_int m_wake_requests (List.length wakes);
        (if d.d_fallback then [ Cancel_fallback ] else [])
        @ [ Wake wakes; Set_split (Array.copy split) ]
      in
      match (ps.mode, any_usable) with
      | Normal, false -> enter_panic ()
      | Degraded d, false -> panic_step d
      | Degraded d, true -> recover d
      | Normal, true ->
      let split = Array.copy ps.split in
      let changed = ref false in
      (* 1. Failures: traffic on an unusable path moves immediately to the
         first usable path (lowest activation level), in full. *)
      let failed_share = ref 0.0 in
      for i = 0 to n - 1 do
        if split.(i) > 0.0 && not (usable i) then begin
          failed_share := !failed_share +. split.(i);
          split.(i) <- 0.0;
          changed := true
        end
      done;
      if !failed_share > 0.0 then begin
        Obs.Metric.Counter.incr m_failovers;
        (* A failover event must not count towards the consolidation
           hysteresis: the low-load streak restarts. *)
        ps.below_since <- None;
        let target = ref None in
        for i = n - 1 downto 0 do
          if usable i then target := Some i
        done;
        match !target with
        | Some i -> split.(i) <- split.(i) +. !failed_share
        | None -> () (* pair disconnected; drop the share *)
      end;
      (* 2. Overload: shift a bounded fraction from the most loaded active
         path to the next usable level. *)
      let active_max_util = ref 0.0 in
      let hottest = ref (-1) in
      for i = 0 to n - 1 do
        if split.(i) > 0.0 then begin
          let u = util i in
          if u > !active_max_util then begin
            active_max_util := u;
            hottest := i
          end
        end
      done;
      if !active_max_util > util_threshold && !hottest >= 0 then begin
        ps.below_since <- None;
        (* Move towards the coolest usable alternative, as long as it is
           meaningfully cooler than the threshold (damping factor 0.85 keeps
           two hot paths from swapping traffic back and forth). *)
        let target = ref None in
        for i = n - 1 downto 0 do
          if i <> !hottest && usable i then begin
            let u = util i in
            if u < util_threshold *. 0.85 then begin
              match !target with
              | Some (_, bu) when bu <= u -> ()
              | _ -> target := Some (i, u)
            end
          end
        done;
        match !target with
        | Some (i, _) ->
            Obs.Metric.Counter.incr m_overload_shifts;
            let moved = shift_fraction *. split.(!hottest) in
            split.(!hottest) <- split.(!hottest) -. moved;
            split.(i) <- split.(i) +. moved;
            changed := true
        | None -> ()
      end
      else if !active_max_util < low_threshold && !failed_share = 0.0 then begin
        (* 3. Consolidation: after a sustained low-load period, move the
           highest active level down one step (towards the always-on path),
           but only if the lower path is usable. *)
        match ps.below_since with
        | None -> ps.below_since <- Some now
        | Some since when now -. since >= hysteresis ->
            let top = ref (-1) in
            for i = n - 1 downto 0 do
              if !top < 0 && split.(i) > 0.0 then top := i
            done;
            if !top > 0 then begin
              let lower = ref (-1) in
              for i = !top - 1 downto 0 do
                if !lower < 0 && usable i then lower := i
              done;
              if !lower >= 0 then begin
                let moved = min split.(!top) shift_fraction in
                split.(!top) <- split.(!top) -. moved;
                split.(!lower) <- split.(!lower) +. moved;
                if split.(!top) < 1e-9 then split.(!top) <- 0.0;
                Obs.Metric.Counter.incr m_consolidations;
                changed := true;
                ps.below_since <- Some now
              end
            end
        | Some _ -> ()
      end
      else ps.below_since <- None;
      if not !changed then []
      else begin
        let split = normalise split in
        ps.split <- split;
        let wakes = sleeping_links g link_usable split ps.paths in
        Obs.Metric.Counter.incr m_shifts;
        Obs.Metric.Counter.add_int m_wake_requests (List.length wakes);
        [ Wake wakes; Set_split (Array.copy split) ]
      end
