(** EATe-style distributed energy-aware traffic engineering, the related-work
    comparator of Section 2.3 ([Vasić & Kostić, e-Energy 2010]): edge routers
    aggregate traffic over predetermined paths using link-local information
    only — no offline identification of energy-critical paths. Implemented
    here as an iterative aggregation: each round, every pair moves a bounded
    share of its traffic to the candidate path that is busiest-but-not-full
    (consolidation), until no move improves or the round budget runs out.

    Used by the bench ablation comparing how close a purely online
    aggregation scheme gets to REsPoNse's precomputed-path savings, and how
    many coordination rounds it needs. *)

type result = {
  loads : float array;  (** per-arc offered load at convergence *)
  state : Topo.State.t;  (** elements carrying traffic *)
  power_percent : float;
  rounds : int;  (** aggregation rounds until convergence *)
  max_utilization : float;
}

val run :
  ?k:int ->
  ?threshold:Eutil.Units.ratio Eutil.Units.q ->
  ?max_rounds:int ->
  Topo.Graph.t ->
  Power.Model.t ->
  Traffic.Matrix.t ->
  result
(** [k] predetermined (latency-)shortest paths per pair (default 3);
    [threshold] the utilisation cap below which a path may accept more
    aggregated traffic (default 0.9); [max_rounds] bounds the iteration
    (default 50). Deterministic. *)
