(** Sine-wave demand for datacenter experiments, mimicking the diurnal
    variation used by ElasticTree and by the paper's Figures 4 and 8b: each
    flow takes a value in [0, peak] following a sine wave. *)

type locality =
  | Near  (** servers communicate only with servers in the same pod *)
  | Far  (** servers communicate mostly across pods, through the core *)

val fattree_pairs : Topo.Fattree.t -> locality -> (int * int) list
(** One flow per host: to the next host of the same pod ([Near]) or to the
    host half the datacenter away ([Far]). *)

val demand_at :
  peak:Eutil.Units.bps Eutil.Units.q ->
  period:Eutil.Units.seconds Eutil.Units.q ->
  float ->
  Eutil.Units.bps Eutil.Units.q
(** [demand_at ~peak ~period t] is [peak * (1 - cos (2 pi t / period)) / 2]:
    0 at t = 0, [peak] at half period.
    @raise Invalid_argument on a non-positive period. *)

val fattree :
  Topo.Fattree.t ->
  locality ->
  peak:Eutil.Units.bps Eutil.Units.q ->
  period:Eutil.Units.seconds Eutil.Units.q ->
  float ->
  Matrix.t
(** Full traffic matrix at time [t]. *)
