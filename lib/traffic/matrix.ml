(* Demands are stored densely for small networks (O(1) everything, cache
   friendly) and sparsely above [dense_limit] nodes: a k=12 fat-tree has 648
   nodes, so a dense matrix would cost 648^2 floats (~3.3 MB) per trace
   interval even when only a few hundred flows exist. The representation is
   invisible to callers; iteration order is (origin, destination) in both. *)

let dense_limit = 128

type rep = Dense of float array | Sparse of (int, float) Hashtbl.t

type t = { n : int; rep : rep }

let create n =
  if n <= dense_limit then { n; rep = Dense (Array.make (n * n) 0.0) }
  else { n; rep = Sparse (Hashtbl.create 64) }

let size t = t.n

let get t o d =
  match t.rep with
  | Dense a -> a.((o * t.n) + d)
  | Sparse h -> Option.value (Hashtbl.find_opt h ((o * t.n) + d)) ~default:0.0

let set t o d v =
  if o = d && v <> 0.0 then invalid_arg "Matrix.set: diagonal demand";
  match t.rep with
  | Dense a -> a.((o * t.n) + d) <- v
  | Sparse h ->
      let key = (o * t.n) + d in
      if v = 0.0 then Hashtbl.remove h key else Hashtbl.replace h key v

let add_to t o d v = set t o d (get t o d +. v)

let copy t =
  {
    n = t.n;
    rep =
      (match t.rep with Dense a -> Dense (Array.copy a) | Sparse h -> Sparse (Hashtbl.copy h));
  }

(* Sparse entries in ascending key order: float folds over them must not
   depend on hash iteration order (sums reassociate). *)
let sorted_entries h =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort (Eutil.Order.by fst Int.compare)

let fold_values t ~init ~f =
  match t.rep with
  | Dense a -> Array.fold_left f init a
  | Sparse h -> List.fold_left (fun acc (_, v) -> f acc v) init (sorted_entries h)

let scale t factor =
  match t.rep with
  | Dense a -> { n = t.n; rep = Dense (Array.map (fun x -> x *. factor) a) }
  | Sparse h ->
      let h' = Hashtbl.create (Hashtbl.length h) in
      List.iter
        (fun (k, v) -> if v *. factor <> 0.0 then Hashtbl.replace h' k (v *. factor))
        (sorted_entries h);
      { n = t.n; rep = Sparse h' }

let total t = fold_values t ~init:0.0 ~f:( +. )
let max_demand t = fold_values t ~init:0.0 ~f:max

let flow_count t =
  match t.rep with
  | Dense a -> Array.fold_left (fun acc x -> if x > 0.0 then acc + 1 else acc) 0 a
  | Sparse h -> Hashtbl.fold (fun _ v acc -> if v > 0.0 then acc + 1 else acc) h 0

let iter_flows t ~f =
  match t.rep with
  | Dense a ->
      for o = 0 to t.n - 1 do
        for d = 0 to t.n - 1 do
          let v = a.((o * t.n) + d) in
          if v > 0.0 then f o d v
        done
      done
  | Sparse h ->
      (* Deterministic (origin, destination) order. *)
      List.iter
        (fun (k, v) -> if v > 0.0 then f (k / t.n) (k mod t.n) v)
        (sorted_entries h)

let fold_flows t ~init ~f =
  let acc = ref init in
  iter_flows t ~f:(fun o d v -> acc := f !acc o d v);
  !acc

let flows t = fold_flows t ~init:[] ~f:(fun acc o d v -> (o, d, v) :: acc) |> List.rev

let flows_desc t =
  flows t
  |> List.sort
       (Eutil.Order.by
          (fun (o, d, v) -> (v, o, d))
          (Eutil.Order.triple (Eutil.Order.desc Float.compare) Int.compare Int.compare))

let of_flows n l =
  let t = create n in
  List.iter (fun (o, d, v) -> add_to t o d v) l;
  t

let uniform n ~pairs ~demand = of_flows n (List.map (fun (o, d) -> (o, d, demand)) pairs)

let pairs t = fold_flows t ~init:[] ~f:(fun acc o d _ -> (o, d) :: acc) |> List.rev

let signature t =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int t.n);
  iter_flows t ~f:(fun o d v -> Buffer.add_string b (Printf.sprintf "|%d,%d:%h" o d v));
  Digest.to_hex (Digest.string (Buffer.contents b))

let equal a b =
  a.n = b.n
  &&
  match (a.rep, b.rep) with
  | Dense x, Dense y -> x = y
  | _ ->
      (* Mixed or sparse: compare positive entries both ways. *)
      let sub x y = fold_flows x ~init:true ~f:(fun acc o d v -> acc && get y o d = v) in
      sub a b && sub b a
