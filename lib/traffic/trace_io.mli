(** Plain-text persistence for traffic traces, so experiments can be rerun on
    identical inputs or on externally produced matrices. Format: a header
    line [interval,<seconds>], then one line per positive demand:
    [interval_index,origin,destination,bits_per_second]. *)

val to_csv : Trace.t -> string

val of_csv : n:int -> string -> Trace.t
(** Parses a trace over [n] nodes.
    @raise Invalid_argument on malformed input. *)

val save : Trace.t -> string -> unit
(** Writes to a file path.
    @raise Sys_error if the file cannot be written (the descriptor is
    closed before the exception is re-raised). *)

val load : n:int -> string -> Trace.t
