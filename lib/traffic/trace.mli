(** A time series of traffic matrices measured at a fixed interval — the shape
    of the GEANT dataset (15-minute TMs) and of the Google datacenter traces
    (5-minute link measurements) the paper replays. *)

type t = { start : float; interval : float; tms : Matrix.t array }

val make : ?start:float -> interval:float -> Matrix.t array -> t
(** @raise Invalid_argument on an empty series or a non-positive
    interval. *)

val length : t -> int
val at : t -> int -> Matrix.t
val time_of : t -> int -> float
(** Absolute time of the i-th interval, seconds. *)

val iter : t -> f:(int -> float -> Matrix.t -> unit) -> unit
(** [f index time tm] for each interval. *)

val subsample : t -> every:int -> t
(** Keeps one interval in [every]; the interval length scales accordingly.
    @raise Invalid_argument if [every] is not positive. *)

val peak : t -> Matrix.t
(** Element-wise envelope: per-OD maximum across the trace — the peak-hour
    estimate used to compute on-demand paths with traffic knowledge. *)

val mean_total : t -> float
