(** Traffic matrices: the demand d(O,D) of the paper's model, in bit/s. *)

type t

val create : int -> t
(** All-zero matrix over [n] nodes. *)

val size : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit
(** @raise Invalid_argument on a non-zero diagonal (self) demand. *)

val add_to : t -> int -> int -> float -> unit

val copy : t -> t

val scale : t -> float -> t
(** Fresh matrix with every demand multiplied by the factor. *)

val total : t -> float
(** Sum of all demands. *)

val max_demand : t -> float

val flow_count : t -> int
(** Number of strictly positive demands. *)

val iter_flows : t -> f:(int -> int -> float -> unit) -> unit
(** Iterates over strictly positive demands, in (origin, destination) order. *)

val fold_flows : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a

val fold_values : t -> init:'a -> f:('a -> float -> 'a) -> 'a
(** Folds over every stored value, including zero, negative, and non-finite
    entries that {!iter_flows} skips — the raw view the [Check.Invariant]
    validators need. *)

val flows : t -> (int * int * float) list
(** Positive demands as a list, in deterministic order. *)

val flows_desc : t -> (int * int * float) list
(** Positive demands sorted by decreasing volume (ties by pair), the order in
    which the feasibility router places them. *)

val of_flows : int -> (int * int * float) list -> t

val uniform : int -> pairs:(int * int) list -> demand:float -> t
(** Equal demand on each pair — e.g. the epsilon matrix of Section 4.1 used to
    compute demand-oblivious always-on paths. *)

val pairs : t -> (int * int) list
(** Origin-destination pairs with positive demand. *)

val equal : t -> t -> bool

val signature : t -> string
(** Digest of the matrix size and every positive demand (hex float, exact).
    Matrices with equal signatures place identically; used as the
    traffic-dependent part of {!Response.Framework}'s precompute cache key. *)
