module U = Eutil.Units

let weights g =
  let w = Array.make (Topo.Graph.node_count g) 0.0 in
  Topo.Graph.iter_links g ~f:(fun l ->
      let i, j = Topo.Graph.link_endpoints g l in
      let c = Topo.Graph.link_capacity g l in
      w.(i) <- w.(i) +. c;
      w.(j) <- w.(j) +. c);
  w

(* Ordered cross product [o <> d], in row-major node order. *)
let cross_pairs nodes =
  let acc = ref [] in
  Array.iter
    (fun o -> Array.iter (fun d -> if o <> d then acc := (o, d) :: !acc) nodes)
    nodes;
  List.rev !acc

let all_pairs g = cross_pairs (Topo.Graph.traffic_nodes g)

let make g ?pairs ~total () =
  let total = U.to_float total in
  let pairs = match pairs with Some p -> p | None -> all_pairs g in
  let w = weights g in
  let raw = List.map (fun (o, d) -> (o, d, w.(o) *. w.(d))) pairs in
  let mass = List.fold_left (fun acc (_, _, m) -> acc +. m) 0.0 raw in
  let m = Matrix.create (Topo.Graph.node_count g) in
  if mass > 0.0 then List.iter (fun (o, d, x) -> Matrix.add_to m o d (total *. x /. mass)) raw
  else if total > 0.0 && pairs <> [] then
    (* Without this the caller would get an all-zero matrix for a positive
       requested volume — or, without the [mass > 0] guard above, a matrix
       of 0/0 NaN demands. Fail loudly instead. *)
    invalid_arg
      "Traffic.Gravity.make: every selected pair has zero gravity mass \
       (zero-capacity endpoints); cannot scale a positive total demand";
  m

let random_node_pairs g ~seed ~fraction =
  let rng = Eutil.Prng.create seed in
  let nodes = Array.copy (Topo.Graph.traffic_nodes g) in
  Eutil.Prng.shuffle rng nodes;
  let keep = max 2 (int_of_float (fraction *. float_of_int (Array.length nodes))) in
  let subset = Array.sub nodes 0 (min keep (Array.length nodes)) in
  List.sort Eutil.Order.int_pair (cross_pairs subset)

let random_pairs g ~seed ~fraction =
  let rng = Eutil.Prng.create seed in
  let kept = List.filter (fun _ -> Eutil.Prng.float rng < fraction) (all_pairs g) in
  match kept with
  | [] -> (
      match all_pairs g with [] -> [] | first :: _ -> [ first ])
  | l -> l
