(** Synthetic trace generators replacing the paper's proprietary datasets
    (see DESIGN.md, Substitutions). Both are fully deterministic from the
    seed. *)

val geant_like :
  Topo.Graph.t ->
  ?seed:int ->
  ?days:int ->
  ?interval:Eutil.Units.seconds Eutil.Units.q ->
  ?mean_utilisation:Eutil.Units.ratio Eutil.Units.q ->
  ?noise_sigma:float ->
  ?pairs:(int * int) list ->
  unit ->
  Trace.t
(** GEANT-dataset stand-in: a [days]-day (default 15) series of traffic
    matrices at [interval] (default 900 s = 15 min). The aggregate volume
    follows a diurnal curve (night trough, afternoon peak) with a weekend dip;
    per-OD demands follow gravity shares modulated by lognormal noise of the
    given sigma (default 0.3) and by a slow per-OD random walk, so that demand
    proportions — and hence minimal network subsets — shift during busy hours
    but settle at night. [mean_utilisation] (default 0.05) scales the mean
    aggregate volume relative to the sum of link capacities.
    @raise Invalid_argument on a non-positive interval or a zero-capacity
    topology — both would otherwise corrupt the trace silently. *)

val google_dc_like :
  n:int ->
  pairs:(int * int) list ->
  ?seed:int ->
  ?days:int ->
  ?interval:Eutil.Units.seconds Eutil.Units.q ->
  ?peak:Eutil.Units.bps Eutil.Units.q ->
  unit ->
  Trace.t
(** Google-datacenter stand-in: [days]-day (default 8) 5-minute series over
    the given host pairs, volumes in [0, peak] (default 1 Gbit/s per flow).
    Each flow follows a mean-reverting multiplicative random walk around a
    diurnal target, calibrated so that roughly half of the 5-minute intervals
    see a >= 20 % change in a node's outgoing traffic — the headline statistic
    of the paper's Figure 1a.
    @raise Invalid_argument on a non-positive interval. *)
