module U = Eutil.Units

type locality = Near | Far

let fattree_pairs ft loc =
  let n = Topo.Fattree.n_hosts ft in
  let k = ft.Topo.Fattree.k in
  let per_pod = k * k / 4 in
  List.init n (fun i ->
      let peer =
        match loc with
        | Near ->
            let pod = i / per_pod in
            let off = i mod per_pod in
            (pod * per_pod) + ((off + 1) mod per_pod)
        | Far -> (i + (n / 2)) mod n
      in
      (Topo.Fattree.host ft i, Topo.Fattree.host ft peer))
  |> List.filter (fun (a, b) -> a <> b)

let demand_at ~peak ~period t =
  let period = U.to_float period in
  if period <= 0.0 then invalid_arg "Traffic.Sine.demand_at: period must be positive";
  U.scale ((1.0 -. cos (2.0 *. Float.pi *. t /. period)) /. 2.0) peak

let fattree ft loc ~peak ~period t =
  let g = ft.Topo.Fattree.graph in
  let m = Matrix.create (Topo.Graph.node_count g) in
  let v = U.to_float (demand_at ~peak ~period t) in
  List.iter (fun (o, d) -> Matrix.add_to m o d v) (fattree_pairs ft loc);
  m
