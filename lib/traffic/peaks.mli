(** Peak-duration analysis behind the paper's power-delivery argument
    (Section 4.5): if the average peak lasts under ~2 hours, operators can
    provision power and cooling for typical load and bridge the peaks from
    alternative sources [20] or thermal headroom [38]. *)

type episode = { start : float; duration : float; peak_volume : float }

val peak_episodes : Trace.t -> threshold:float -> episode list
(** Maximal runs of consecutive intervals whose aggregate volume is at least
    [threshold] times the trace's maximum aggregate volume, in time order.
    @raise Invalid_argument unless [threshold] lies in (0, 1]. *)

val mean_peak_duration : Trace.t -> threshold:float -> float
(** Average episode duration in seconds (0 when no episode exists). *)

val longest_peak : Trace.t -> threshold:float -> float

val fraction_of_time_in_peak : Trace.t -> threshold:float -> float
(** Fraction (0..1) of intervals belonging to some episode. *)
