module U = Eutil.Units

let day = 86_400.0

(* Diurnal shape in [0,1]: trough around 04:00, peak around 15:00. *)
let diurnal t =
  let tod = mod_float t day /. day in
  let x = sin (2.0 *. Float.pi *. (tod -. 0.375)) in
  0.5 +. (0.5 *. x)

let weekend_dip t =
  let dow = int_of_float (floor (t /. day)) mod 7 in
  if dow >= 5 then 0.7 else 1.0

let geant_like g ?(seed = 42) ?(days = 15) ?interval ?mean_utilisation ?(noise_sigma = 0.3)
    ?pairs () =
  let interval = U.to_float (match interval with Some i -> i | None -> U.seconds 900.0) in
  if interval <= 0.0 then
    invalid_arg "Traffic.Synth.geant_like: interval must be positive (interval counts divide by it)";
  let mean_utilisation =
    U.to_float (match mean_utilisation with Some u -> u | None -> U.ratio 0.05)
  in
  let rng = Eutil.Prng.create seed in
  let cap_sum =
    Topo.Graph.fold_links g ~init:0.0 ~f:(fun acc l -> acc +. Topo.Graph.link_capacity g l)
  in
  (* An empty or zero-capacity topology admits no demand volume at all:
     every generated matrix would be zero (or, with a gravity base, 0/0
     NaN). An explicit error beats a silently useless trace. *)
  if cap_sum <= 0.0 then
    invalid_arg "Traffic.Synth.geant_like: topology has zero total link capacity";
  let pairs =
    match pairs with Some p -> p | None -> Gravity.make g ~total:(U.bps 1.0) () |> Matrix.pairs
  in
  let base = Gravity.make g ~pairs ~total:(U.bps 1.0) () in
  let mean_volume = mean_utilisation *. cap_sum in
  let n_intervals = int_of_float (float_of_int days *. day /. interval) in
  (* Slow per-OD random walk: shares drift over hours, not per interval. *)
  let walk = Hashtbl.create (List.length pairs) in
  List.iter (fun od -> Hashtbl.replace walk od 1.0) pairs;
  let tms =
    Array.init n_intervals (fun i ->
        let t = float_of_int i *. interval in
        let level = (0.22 +. (0.78 *. diurnal t)) *. weekend_dip t in
        let volume = mean_volume *. level in
        (* Traffic variability scales with volume: busy-hour demands are
           noisy, night troughs are calm — which is what makes one minimal
           routing configuration dominate off-peak (Figure 2a). *)
        let sigma_now = noise_sigma *. (0.15 +. (0.85 *. diurnal t)) in
        (* Update the random walk every hour. *)
        if i mod max 1 (int_of_float (3600.0 /. interval)) = 0 then
          List.iter
            (fun od ->
              (* Every od of [pairs] is seeded into [walk] at creation. *)
              let w = Option.value (Hashtbl.find_opt walk od) ~default:1.0 in
              let w' = w *. Eutil.Prng.lognormal rng ~mu:0.0 ~sigma:(0.1 *. (0.3 +. (0.7 *. diurnal t))) in
              (* Mean reversion keeps shares bounded. *)
              Hashtbl.replace walk od (max 0.25 (min 4.0 (w' ** 0.97))))
            pairs;
        let m = Matrix.create (Topo.Graph.node_count g) in
        List.iter
          (fun (o, d) ->
            let share =
              Matrix.get base o d *. Option.value (Hashtbl.find_opt walk (o, d)) ~default:1.0
            in
            let noise = Eutil.Prng.lognormal rng ~mu:0.0 ~sigma:sigma_now in
            Matrix.add_to m o d (volume *. share *. noise))
          pairs;
        m)
  in
  Trace.make ~interval tms

let google_dc_like ~n ~pairs ?(seed = 7) ?(days = 8) ?interval ?peak () =
  let interval = U.to_float (match interval with Some i -> i | None -> U.seconds 300.0) in
  if interval <= 0.0 then
    invalid_arg
      "Traffic.Synth.google_dc_like: interval must be positive (interval counts divide by it)";
  let peak = U.to_float (match peak with Some p -> p | None -> U.gbps 1.0) in
  let rng = Eutil.Prng.create seed in
  let n_intervals = int_of_float (float_of_int days *. day /. interval) in
  let pairs = Array.of_list pairs in
  let npairs = Array.length pairs in
  (* Per-flow state in (0, 1], multiplied by peak. *)
  let x = Array.init npairs (fun _ -> 0.2 +. (0.5 *. Eutil.Prng.float rng)) in
  let phase = Array.init npairs (fun _ -> Eutil.Prng.float rng *. 2.0 *. Float.pi) in
  let tms =
    Array.init n_intervals (fun i ->
        let t = float_of_int i *. interval in
        let m = Matrix.create n in
        for p = 0 to npairs - 1 do
          let target =
            0.15 +. (0.55 *. (0.5 +. (0.5 *. sin ((2.0 *. Float.pi *. t /. day) +. phase.(p)))))
          in
          (* The diurnal target is bounded below by its 0.15 base load, so
             the reversion ratio below can never divide by zero. *)
          assert (target > 0.0);
          (* Mean-reverting multiplicative walk; sigma 0.35 yields ~50 % of
             intervals changing by >= 20 %, matching Figure 1a. *)
          let noise = Eutil.Prng.lognormal rng ~mu:0.0 ~sigma:0.35 in
          let reverted = target *. ((x.(p) /. target) ** 0.6) in
          x.(p) <- max 0.01 (min 1.0 (reverted *. noise));
          let o, d = pairs.(p) in
          Matrix.add_to m o d (x.(p) *. peak)
        done;
        m)
  in
  Trace.make ~interval tms
