(** Capacity-based gravity model for traffic demands, as in the paper
    (Section 5.1, following [9, 14]): the flow entering/leaving each PoP is
    proportional to the combined capacity of its adjacent links. *)

val weights : Topo.Graph.t -> float array
(** Per-node gravity mass: the sum of adjacent link capacities. *)

val make :
  Topo.Graph.t ->
  ?pairs:(int * int) list ->
  total:Eutil.Units.bps Eutil.Units.q ->
  unit ->
  Matrix.t
(** Gravity matrix over the given origin-destination pairs (all ordered pairs
    of {!Topo.Graph.traffic_nodes} by default), normalised so demands sum to
    [total] (bit/s). Raises [Invalid_argument] when a positive total is
    requested but every selected pair has zero gravity mass (zero-capacity
    endpoints) — the configuration that would otherwise yield 0/0 demands.
    @raise Invalid_argument when the selected pairs carry zero total
    gravity mass. *)

val random_pairs : Topo.Graph.t -> seed:int -> fraction:float -> (int * int) list
(** Random subset of origin-destination pairs: each ordered traffic-node pair
    is kept with the given probability, deterministically from [seed]. At
    least one pair is always returned. *)

val random_node_pairs : Topo.Graph.t -> seed:int -> fraction:float -> (int * int) list
(** The paper's origin/destination sampling ("we select the origins and
    destinations at random, as in [24]"): a random subset of traffic *nodes*
    is chosen with the given fraction (at least two), and all ordered pairs
    among them are returned. Nodes outside the subset originate nothing, so
    their routers can power off entirely. *)
