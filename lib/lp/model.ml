type var = int

type term = float * var

type t = {
  mutable names : string list;  (* reversed *)
  mutable n : int;
  mutable integer : bool list;  (* reversed *)
  mutable rows : (term list * Simplex.relation * float) list;
  mutable obj : term list option;
}

let create () = { names = []; n = 0; integer = []; rows = []; obj = None }

let var t ?(integer = false) ?ub name =
  let v = t.n in
  t.names <- name :: t.names;
  t.integer <- integer :: t.integer;
  t.n <- t.n + 1;
  (match ub with Some u -> t.rows <- ([ (1.0, v) ], Simplex.Le, u) :: t.rows | None -> ());
  v

let binary t name = var t ~integer:true ~ub:1.0 name

let var_name t v =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Model.var_name: unknown variable %d" v);
  (* [names] is reversed, so walk to the mirrored position directly instead
     of materialising List.rev per call. *)
  let rec go i = function
    | [] -> assert false
    | x :: rest -> if i = 0 then x else go (i - 1) rest
  in
  go (t.n - 1 - v) t.names

let constr t terms rel rhs = t.rows <- (terms, rel, rhs) :: t.rows

let minimize t terms =
  if t.obj <> None then invalid_arg "Model.minimize: objective already set";
  t.obj <- Some terms

type solution = { x : float array; objective_value : float }

let value s v = s.x.(v)
let objective s = s.objective_value

let dense n terms =
  let row = Array.make n 0.0 in
  List.iter (fun (c, v) -> row.(v) <- row.(v) +. c) terms;
  row

let to_simplex t =
  let objective = dense t.n (Option.value t.obj ~default:[]) in
  let rows = List.rev_map (fun (terms, rel, rhs) -> (dense t.n terms, rel, rhs)) t.rows in
  { Simplex.n_vars = t.n; objective; rows }

let n_vars t = t.n
let n_constraints t = List.length t.rows

(* Inspection hooks for the static-analysis layer (Check.Invariant). *)
let var_names t = Array.of_list (List.rev t.names)
let constraints t = List.rev t.rows
let objective_terms t = t.obj
let var_index (v : var) = v

let solve ?max_nodes t =
  let lp = to_simplex t in
  let integer = Array.of_list (List.rev t.integer) in
  if Array.exists (fun b -> b) integer then begin
    match Milp.solve ?max_nodes { Milp.lp; integer } with
    | Milp.Optimal { x; objective } -> `Optimal { x; objective_value = objective }
    | Milp.Infeasible -> `Infeasible
    | Milp.Unbounded -> `Unbounded
    | Milp.Node_limit -> `Node_limit
  end
  else begin
    match Simplex.solve lp with
    | Simplex.Optimal { x; objective } -> `Optimal { x; objective_value = objective }
    | Simplex.Infeasible -> `Infeasible
    | Simplex.Unbounded -> `Unbounded
  end
