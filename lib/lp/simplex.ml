type relation = Le | Eq | Ge

type problem = {
  n_vars : int;
  objective : float array;
  rows : (float array * relation * float) list;
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

let eps = 1e-9

let m_pivots =
  Obs.Metric.Counter.create ~help:"Simplex pivot operations" "lp_simplex_pivots_total"

let m_solves =
  Obs.Metric.Counter.create ~help:"Simplex solve invocations" "lp_simplex_solves_total"

let m_solve_seconds =
  Obs.Metric.Histogram.create ~help:"Wall time of one simplex solve"
    "lp_simplex_solve_seconds"

(* The tableau holds the constraint rows in canonical (basic) form; [basis]
   maps each row to its basic column. [cost] is the reduced-cost row (length
   ncols) and [obj] the current objective value. Pivoting maintains the
   invariant that basic columns have zero reduced cost. *)
type tableau = {
  t : float array array;  (* m x (ncols + 1); last column is the rhs *)
  basis : int array;
  mutable cost : float array;
  mutable obj : float;
  ncols : int;
  mutable npivots : int;  (* pivots applied to this tableau; published per solve *)
}

let pivot tb ~row ~col =
  tb.npivots <- tb.npivots + 1;
  let m = Array.length tb.t in
  let r = tb.t.(row) in
  let piv = r.(col) in
  (* Pivot selection only ever picks entries with |entry| > eps. *)
  assert (piv <> 0.0);
  for j = 0 to tb.ncols do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = tb.t.(i).(col) in
      if abs_float f > 0.0 then begin
        let ri = tb.t.(i) in
        for j = 0 to tb.ncols do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done;
        ri.(col) <- 0.0
      end
    end
  done;
  let f = tb.cost.(col) in
  if abs_float f > 0.0 then begin
    for j = 0 to tb.ncols - 1 do
      tb.cost.(j) <- tb.cost.(j) -. (f *. r.(j))
    done;
    tb.cost.(col) <- 0.0;
    tb.obj <- tb.obj -. (f *. r.(tb.ncols))
  end;
  tb.basis.(row) <- col

(* Bland's rule: entering = lowest-index column with negative reduced cost;
   leaving = lexicographic min-ratio (ties by lowest basis index). Returns
   [`Optimal], or [`Unbounded] if some improving column has no positive
   entry. *)
let run_phase tb =
  let m = Array.length tb.t in
  let rec iterate guard =
    if guard = 0 then failwith "Simplex.run_phase: iteration guard exceeded";
    let entering = ref (-1) in
    (try
       for j = 0 to tb.ncols - 1 do
         if tb.cost.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Exact ratio comparisons: an eps-tolerant tie test can pick a row
         whose ratio is larger by ~1e-9, which a 1e9-scale coefficient then
         amplifies into a primal infeasibility. Ties (exact equality) break
         towards the smallest basis index (Bland). *)
      let best = ref None in
      for i = 0 to m - 1 do
        let a = tb.t.(i).(col) in
        if a > eps then begin
          let ratio = tb.t.(i).(tb.ncols) /. a in
          match !best with
          | None -> best := Some (ratio, i)
          | Some (br, bi) ->
              if ratio < br || (ratio = br && tb.basis.(i) < tb.basis.(bi)) then
                best := Some (ratio, i)
        end
      done;
      match !best with
      | None -> `Unbounded
      | Some (_, row) ->
          pivot tb ~row ~col;
          iterate (guard - 1)
    end
  in
  iterate (200_000 + (2000 * (m + tb.ncols)))

type basis = int array
(* Basic column per tableau row. Structural and slack column indices are
   layout-stable between a problem and any extension of it that appends rows
   at the end (slacks are numbered in row order); artificial indices are not,
   so [sanitized_basis] replaces them with -1 before the basis escapes. *)

(* A built tableau plus the layout facts the phases need. *)
type built = {
  tb : tableau;
  m : int;
  b_n_vars : int;
  n_slack : int;
  n_art : int;
  art_cols : int array;
}

let normalise_rows n_vars rows =
  List.map
    (fun (coeffs, rel, b) ->
      if Array.length coeffs <> n_vars then invalid_arg "Simplex.solve: row length";
      (* Row equilibration: dividing a constraint by its largest coefficient
         magnitude does not change the feasible set but keeps the tableau
         well conditioned when coefficients span many orders of magnitude
         (link capacities in bit/s vs unit flow indicators). *)
      let scale = Array.fold_left (fun acc c -> max acc (abs_float c)) 0.0 coeffs in
      let coeffs, b =
        if scale > 0.0 && scale <> 1.0 then (Array.map (fun c -> c /. scale) coeffs, b /. scale)
        else (coeffs, b)
      in
      if b < 0.0 then begin
        let flipped = match rel with Le -> Ge | Ge -> Le | Eq -> Eq in
        (Array.map (fun c -> -.c) coeffs, flipped, -.b)
      end
      else (coeffs, rel, b))
    rows

let build { n_vars; objective = _; rows } =
  let rows = normalise_rows n_vars rows in
  let m = List.length rows in
  let n_slack = List.length (List.filter (fun (_, r, _) -> r = Le || r = Ge) rows) in
  let n_art = List.length (List.filter (fun (_, r, _) -> r = Ge || r = Eq) rows) in
  let ncols = n_vars + n_slack + n_art in
  let t = Array.make_matrix m (ncols + 1) 0.0 in
  let basis = Array.make m 0 in
  let art_cols = Array.make n_art 0 in
  let slack = ref n_vars in
  let art = ref (n_vars + n_slack) in
  let art_count = ref 0 in
  List.iteri
    (fun i (coeffs, rel, b) ->
      Array.blit coeffs 0 t.(i) 0 n_vars;
      t.(i).(ncols) <- b;
      (match rel with
      | Le ->
          t.(i).(!slack) <- 1.0;
          basis.(i) <- !slack;
          incr slack
      | Ge ->
          t.(i).(!slack) <- -1.0;
          incr slack;
          t.(i).(!art) <- 1.0;
          basis.(i) <- !art;
          art_cols.(!art_count) <- !art;
          incr art_count;
          incr art
      | Eq ->
          t.(i).(!art) <- 1.0;
          basis.(i) <- !art;
          art_cols.(!art_count) <- !art;
          incr art_count;
          incr art))
    rows;
  let tb = { t; basis; cost = Array.make ncols 0.0; obj = 0.0; ncols; npivots = 0 } in
  { tb; m; b_n_vars = n_vars; n_slack; n_art; art_cols }

(* Phase 1: minimise the sum of artificials. Reduced costs: 1 on artificial
   columns minus the rows where artificials are basic. Returns false when the
   problem is infeasible. *)
let phase1 { tb; m; b_n_vars; n_slack; n_art; art_cols } =
  if n_art = 0 then true
  else begin
    Array.iter (fun c -> tb.cost.(c) <- 1.0) art_cols;
    for i = 0 to m - 1 do
      if tb.basis.(i) >= b_n_vars + n_slack then begin
        for j = 0 to tb.ncols - 1 do
          tb.cost.(j) <- tb.cost.(j) -. tb.t.(i).(j)
        done;
        tb.obj <- tb.obj -. tb.t.(i).(tb.ncols)
      end
    done;
    match run_phase tb with
    | `Unbounded -> false (* phase 1 is bounded below by 0; defensive *)
    | `Optimal -> not (-.tb.obj > 1e-6)
  end

(* Drive any remaining artificial variables out of the basis. If no pivot
   exists the row is redundant (all-zero); the basic artificial stays at
   value 0 and is harmless. *)
let drive_out_artificials { tb; m; b_n_vars; n_slack; _ } =
  for i = 0 to m - 1 do
    if tb.basis.(i) >= b_n_vars + n_slack then begin
      let found = ref false in
      let j = ref 0 in
      while (not !found) && !j < b_n_vars + n_slack do
        if abs_float tb.t.(i).(!j) > eps then begin
          pivot tb ~row:i ~col:!j;
          found := true
        end;
        incr j
      done
    end
  done

(* Phase 2 cost row: reduced costs c_j - c_B B^-1 A_j for the real
   objective, with artificial columns frozen out by an effectively infinite
   cost. Valid for any canonical tableau, so the warm path reuses it. *)
let set_phase2_cost { tb; m; b_n_vars; art_cols; _ } objective =
  let cost = Array.make tb.ncols 0.0 in
  Array.blit objective 0 cost 0 b_n_vars;
  Array.iter (fun c -> cost.(c) <- infinity) art_cols;
  tb.cost <- cost;
  tb.obj <- 0.0;
  for i = 0 to m - 1 do
    let b = tb.basis.(i) in
    let cb = if b < b_n_vars then objective.(b) else 0.0 in
    if cb <> 0.0 then begin
      for j = 0 to tb.ncols - 1 do
        if tb.cost.(j) <> infinity then tb.cost.(j) <- tb.cost.(j) -. (cb *. tb.t.(i).(j))
      done;
      tb.obj <- tb.obj -. (cb *. tb.t.(i).(tb.ncols))
    end
  done

(* Phase 2 proper plus solution extraction. *)
let finish { tb; m; b_n_vars; _ } objective =
  match run_phase tb with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let x = Array.make b_n_vars 0.0 in
      for i = 0 to m - 1 do
        if tb.basis.(i) < b_n_vars then x.(tb.basis.(i)) <- tb.t.(i).(tb.ncols)
      done;
      let objective_value =
        Array.fold_left ( +. ) 0.0 (Array.mapi (fun j c -> c *. x.(j)) objective)
      in
      Optimal { x; objective = objective_value }

let solve_raw ({ objective; _ } as p) =
  let b = build p in
  let outcome =
    if not (phase1 b) then Infeasible
    else begin
      drive_out_artificials b;
      set_phase2_cost b objective;
      finish b objective
    end
  in
  (outcome, b)

let solve p =
  if Obs.Control.enabled () then begin
    let outcome, b =
      Obs.Metric.Histogram.time m_solve_seconds (fun () -> solve_raw p)
    in
    Obs.Metric.Counter.incr m_solves;
    Obs.Metric.Counter.add_int m_pivots b.tb.npivots;
    outcome
  end
  else fst (solve_raw p)

(* ------------------------------------------------------------------ *)
(* Warm starts                                                        *)
(* ------------------------------------------------------------------ *)

let m_warm_starts =
  Obs.Metric.Counter.create ~help:"Simplex solves warm-started from a parent basis"
    "lp_simplex_warm_starts_total"

let m_warm_fallbacks =
  Obs.Metric.Counter.create
    ~help:"Warm-start attempts that fell back to a cold two-phase solve"
    "lp_simplex_warm_fallbacks_total"

let sanitized_basis { tb; b_n_vars; n_slack; _ } =
  Array.map (fun c -> if c >= b_n_vars + n_slack then -1 else c) tb.basis

(* Canonicalize towards the hinted basis: pivot each hinted structural or
   slack column into its row where the pivot entry is numerically sound.
   Skipped rows keep their cold basic column (slack or artificial). *)
let crash_basis b hint =
  let { tb; m; b_n_vars; n_slack; _ } = b in
  let is_basic = Array.make (tb.ncols + 1) false in
  Array.iter (fun c -> is_basic.(c) <- true) tb.basis;
  let limit = min m (Array.length hint) in
  for i = 0 to limit - 1 do
    let c = hint.(i) in
    if
      c >= 0
      && c < b_n_vars + n_slack
      && (not is_basic.(c))
      && tb.basis.(i) <> c
      && abs_float tb.t.(i).(c) > 1e-7
    then begin
      is_basic.(tb.basis.(i)) <- false;
      pivot tb ~row:i ~col:c;
      is_basic.(c) <- true
    end
  done

(* After a crash the hinted basis must not leave an artificial basic at a
   nonzero value — that would mean the hint does not span the equality
   structure and phase 1 is unavoidable. *)
let artificials_clear { tb; m; b_n_vars; n_slack; _ } =
  let ok = ref true in
  for i = 0 to m - 1 do
    if tb.basis.(i) >= b_n_vars + n_slack && abs_float tb.t.(i).(tb.ncols) > 1e-6 then ok := false
  done;
  !ok

let dual_feasible { tb; _ } =
  let ok = ref true in
  for j = 0 to tb.ncols - 1 do
    if tb.cost.(j) < -1e-7 then ok := false
  done;
  !ok

(* Dual simplex steps restoring primal feasibility (rhs >= 0) while the
   phase-2 cost row stays dual feasible. [`Infeasible] means some row cannot
   be repaired (the appended bound cut off the feasible set); [`Stalled]
   sends the caller to the cold path. *)
let dual_repair { tb; m; _ } =
  let guard = ref (10_000 + (100 * (m + tb.ncols))) in
  let verdict = ref `Feasible in
  let running = ref true in
  while !running do
    if !guard <= 0 then begin
      verdict := `Stalled;
      running := false
    end
    else begin
      decr guard;
      let row = ref (-1) in
      let most = ref (-.eps) in
      for i = 0 to m - 1 do
        let v = tb.t.(i).(tb.ncols) in
        if v < !most then begin
          most := v;
          row := i
        end
      done;
      if !row < 0 then running := false
      else begin
        let r = tb.t.(!row) in
        let col = ref (-1) in
        let best = ref infinity in
        for j = 0 to tb.ncols - 1 do
          let a = r.(j) in
          if a < -.eps && tb.cost.(j) < infinity then begin
            let ratio = tb.cost.(j) /. -.a in
            if ratio < !best then begin
              best := ratio;
              col := j
            end
          end
        done;
        if !col < 0 then begin
          verdict := `Infeasible;
          running := false
        end
        else pivot tb ~row:!row ~col:!col
      end
    end
  done;
  !verdict

(* Warm attempt: build cold, crash the hint in, repair primal feasibility
   with dual steps, then run phase 2. None = use the cold path instead. *)
let try_warm hint ({ objective; _ } as p) =
  let b = build p in
  crash_basis b hint;
  if not (artificials_clear b) then None
  else begin
    set_phase2_cost b objective;
    if not (dual_feasible b) then None
    else
      match dual_repair b with
      | `Stalled -> None
      | `Infeasible -> Some (Infeasible, b)
      | `Feasible -> Some (finish b objective, b)
  end

let solve_with_basis ?hint p =
  let warm =
    match hint with
    | None -> None
    | Some h -> (try try_warm h p with Failure _ -> None)
  in
  let outcome, b, fell_back =
    match warm with
    | Some (outcome, b) -> (outcome, b, false)
    | None ->
        let outcome, b = solve_raw p in
        (outcome, b, hint <> None)
  in
  if Obs.Control.enabled () then begin
    Obs.Metric.Counter.incr m_solves;
    Obs.Metric.Counter.add_int m_pivots b.tb.npivots;
    if hint <> None then Obs.Metric.Counter.incr m_warm_starts;
    if fell_back then Obs.Metric.Counter.incr m_warm_fallbacks
  end;
  let basis =
    match outcome with Optimal _ -> Some (sanitized_basis b) | Infeasible | Unbounded -> None
  in
  (outcome, basis)
