type relation = Le | Eq | Ge

type problem = {
  n_vars : int;
  objective : float array;
  rows : (float array * relation * float) list;
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

let eps = 1e-9

let m_pivots =
  Obs.Metric.Counter.create ~help:"Simplex pivot operations" "lp_simplex_pivots_total"

let m_solves =
  Obs.Metric.Counter.create ~help:"Simplex solve invocations" "lp_simplex_solves_total"

let m_solve_seconds =
  Obs.Metric.Histogram.create ~help:"Wall time of one simplex solve"
    "lp_simplex_solve_seconds"

(* The tableau holds the constraint rows in canonical (basic) form; [basis]
   maps each row to its basic column. [cost] is the reduced-cost row (length
   ncols) and [obj] the current objective value. Pivoting maintains the
   invariant that basic columns have zero reduced cost. *)
type tableau = {
  t : float array array;  (* m x (ncols + 1); last column is the rhs *)
  basis : int array;
  mutable cost : float array;
  mutable obj : float;
  ncols : int;
  mutable npivots : int;  (* pivots applied to this tableau; published per solve *)
}

let pivot tb ~row ~col =
  tb.npivots <- tb.npivots + 1;
  let m = Array.length tb.t in
  let r = tb.t.(row) in
  let piv = r.(col) in
  (* Pivot selection only ever picks entries with |entry| > eps. *)
  assert (piv <> 0.0);
  for j = 0 to tb.ncols do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = tb.t.(i).(col) in
      if abs_float f > 0.0 then begin
        let ri = tb.t.(i) in
        for j = 0 to tb.ncols do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done;
        ri.(col) <- 0.0
      end
    end
  done;
  let f = tb.cost.(col) in
  if abs_float f > 0.0 then begin
    for j = 0 to tb.ncols - 1 do
      tb.cost.(j) <- tb.cost.(j) -. (f *. r.(j))
    done;
    tb.cost.(col) <- 0.0;
    tb.obj <- tb.obj -. (f *. r.(tb.ncols))
  end;
  tb.basis.(row) <- col

(* Bland's rule: entering = lowest-index column with negative reduced cost;
   leaving = lexicographic min-ratio (ties by lowest basis index). Returns
   [`Optimal], or [`Unbounded] if some improving column has no positive
   entry. *)
let run_phase tb =
  let m = Array.length tb.t in
  let rec iterate guard =
    if guard = 0 then failwith "Simplex.run_phase: iteration guard exceeded";
    let entering = ref (-1) in
    (try
       for j = 0 to tb.ncols - 1 do
         if tb.cost.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Exact ratio comparisons: an eps-tolerant tie test can pick a row
         whose ratio is larger by ~1e-9, which a 1e9-scale coefficient then
         amplifies into a primal infeasibility. Ties (exact equality) break
         towards the smallest basis index (Bland). *)
      let best = ref None in
      for i = 0 to m - 1 do
        let a = tb.t.(i).(col) in
        if a > eps then begin
          let ratio = tb.t.(i).(tb.ncols) /. a in
          match !best with
          | None -> best := Some (ratio, i)
          | Some (br, bi) ->
              if ratio < br || (ratio = br && tb.basis.(i) < tb.basis.(bi)) then
                best := Some (ratio, i)
        end
      done;
      match !best with
      | None -> `Unbounded
      | Some (_, row) ->
          pivot tb ~row ~col;
          iterate (guard - 1)
    end
  in
  iterate (200_000 + (2000 * (m + tb.ncols)))

let solve_raw { n_vars; objective; rows } =
  let rows =
    List.map
      (fun (coeffs, rel, b) ->
        if Array.length coeffs <> n_vars then invalid_arg "Simplex.solve: row length";
        (* Row equilibration: dividing a constraint by its largest coefficient
           magnitude does not change the feasible set but keeps the tableau
           well conditioned when coefficients span many orders of magnitude
           (link capacities in bit/s vs unit flow indicators). *)
        let scale = Array.fold_left (fun acc c -> max acc (abs_float c)) 0.0 coeffs in
        let coeffs, b =
          if scale > 0.0 && scale <> 1.0 then (Array.map (fun c -> c /. scale) coeffs, b /. scale)
          else (coeffs, b)
        in
        if b < 0.0 then begin
          let flipped = match rel with Le -> Ge | Ge -> Le | Eq -> Eq in
          (Array.map (fun c -> -.c) coeffs, flipped, -.b)
        end
        else (coeffs, rel, b))
      rows
  in
  let m = List.length rows in
  let n_slack = List.length (List.filter (fun (_, r, _) -> r = Le || r = Ge) rows) in
  let n_art = List.length (List.filter (fun (_, r, _) -> r = Ge || r = Eq) rows) in
  let ncols = n_vars + n_slack + n_art in
  let t = Array.make_matrix m (ncols + 1) 0.0 in
  let basis = Array.make m 0 in
  let art_cols = Array.make n_art 0 in
  let slack = ref n_vars in
  let art = ref (n_vars + n_slack) in
  let art_count = ref 0 in
  List.iteri
    (fun i (coeffs, rel, b) ->
      Array.blit coeffs 0 t.(i) 0 n_vars;
      t.(i).(ncols) <- b;
      (match rel with
      | Le ->
          t.(i).(!slack) <- 1.0;
          basis.(i) <- !slack;
          incr slack
      | Ge ->
          t.(i).(!slack) <- -1.0;
          incr slack;
          t.(i).(!art) <- 1.0;
          basis.(i) <- !art;
          art_cols.(!art_count) <- !art;
          incr art_count;
          incr art
      | Eq ->
          t.(i).(!art) <- 1.0;
          basis.(i) <- !art;
          art_cols.(!art_count) <- !art;
          incr art_count;
          incr art))
    rows;
  let tb = { t; basis; cost = Array.make ncols 0.0; obj = 0.0; ncols; npivots = 0 } in
  (* Phase 1: minimise the sum of artificials. Reduced costs: 1 on artificial
     columns minus the rows where artificials are basic. *)
  if n_art > 0 then begin
    Array.iter (fun c -> tb.cost.(c) <- 1.0) art_cols;
    for i = 0 to m - 1 do
      if basis.(i) >= n_vars + n_slack then begin
        for j = 0 to ncols - 1 do
          tb.cost.(j) <- tb.cost.(j) -. t.(i).(j)
        done;
        tb.obj <- tb.obj -. t.(i).(ncols)
      end
    done
  end;
  let outcome =
    match (if n_art > 0 then run_phase tb else `Optimal) with
  | `Unbounded -> Infeasible (* phase 1 is bounded below by 0; defensive *)
  | `Optimal when n_art > 0 && -.tb.obj > 1e-6 -> Infeasible
  | `Optimal ->
      (* Drive any remaining artificial variables out of the basis. *)
      for i = 0 to m - 1 do
        if tb.basis.(i) >= n_vars + n_slack then begin
          let found = ref false in
          let j = ref 0 in
          while (not !found) && !j < n_vars + n_slack do
            if abs_float tb.t.(i).(!j) > eps then begin
              pivot tb ~row:i ~col:!j;
              found := true
            end;
            incr j
          done
          (* If no pivot exists the row is redundant (all-zero); the basic
             artificial stays at value 0 and is harmless. *)
        end
      done;
      (* Phase 2: real objective. Reduced costs c_j - c_B B^-1 A_j, with
         artificial columns frozen out by an effectively infinite cost. *)
      let cost = Array.make ncols 0.0 in
      Array.blit objective 0 cost 0 n_vars;
      Array.iter (fun c -> cost.(c) <- infinity) art_cols;
      tb.cost <- cost;
      tb.obj <- 0.0;
      for i = 0 to m - 1 do
        let b = tb.basis.(i) in
        let cb = if b < n_vars then objective.(b) else 0.0 in
        if cb <> 0.0 then begin
          for j = 0 to ncols - 1 do
            if tb.cost.(j) <> infinity then tb.cost.(j) <- tb.cost.(j) -. (cb *. t.(i).(j))
          done;
          tb.obj <- tb.obj -. (cb *. t.(i).(ncols))
        end
      done;
      (match run_phase tb with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let x = Array.make n_vars 0.0 in
          for i = 0 to m - 1 do
            if tb.basis.(i) < n_vars then x.(tb.basis.(i)) <- tb.t.(i).(ncols)
          done;
          let objective_value =
            Array.fold_left ( +. ) 0.0 (Array.mapi (fun j c -> c *. x.(j)) objective)
          in
          Optimal { x; objective = objective_value })
  in
  (outcome, tb.npivots)

let solve p =
  if Obs.Control.enabled () then begin
    let outcome, pivots = Obs.Metric.Histogram.time m_solve_seconds (fun () -> solve_raw p) in
    Obs.Metric.Counter.incr m_solves;
    Obs.Metric.Counter.add_int m_pivots pivots;
    outcome
  end
  else fst (solve_raw p)
