type problem = { lp : Simplex.problem; integer : bool array }

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded
  | Node_limit

let int_eps = 1e-6

let m_nodes =
  Obs.Metric.Counter.create ~help:"Branch-and-bound nodes explored"
    "lp_bnb_nodes_total"

let m_solve_seconds =
  Obs.Metric.Histogram.create ~help:"Wall time of one MILP solve"
    "lp_milp_solve_seconds"

let most_fractional integer x =
  let best = ref None in
  Array.iteri
    (fun j is_int ->
      if is_int then begin
        let frac = x.(j) -. Float.round x.(j) in
        let dist = abs_float frac in
        if dist > int_eps then begin
          match !best with
          | Some (_, bd) when bd >= dist -> ()
          | _ -> best := Some (j, dist)
        end
      end)
    integer;
  Option.map fst !best

let bound_row n j coeff rel rhs =
  let row = Array.make n 0.0 in
  row.(j) <- coeff;
  (row, rel, rhs)

let solve_raw ?(max_nodes = 50_000) { lp; integer } =
  if Array.length integer <> lp.Simplex.n_vars then invalid_arg "Milp.solve: integer flags";
  let incumbent = ref None in
  let nodes = ref 0 in
  let hit_limit = ref false in
  let better obj = match !incumbent with None -> true | Some (_, best) -> obj < best -. 1e-9 in
  (* Branching bound rows are appended AFTER the base rows, oldest first, so
     every node's row list has its parent's as a prefix. That keeps the
     simplex column layout stable along a branch, which is what lets the
     parent's optimal basis warm-start the child solve: the child is the
     parent plus one violated bound, and a few dual pivots repair it. *)
  let rev_base = List.rev lp.Simplex.rows in
  let rec branch extra_rows hint =
    if !nodes >= max_nodes then hit_limit := true
    else begin
      incr nodes;
      let rows = List.rev_append rev_base (List.rev extra_rows) in
      let problem = { lp with Simplex.rows = rows } in
      match Simplex.solve_with_basis ?hint problem with
      | Simplex.Infeasible, _ -> ()
      | Simplex.Unbounded, _ ->
          (* A relaxation unbounded at the root makes the MILP unbounded or
             infeasible; deeper in the tree it cannot improve a bounded
             incumbent search, so treat it as a dead end only at depth > 0. *)
          if extra_rows = [] then raise Exit
      | Simplex.Optimal { x; objective }, basis ->
          if better objective then begin
            match most_fractional integer x with
            | None -> incumbent := Some (Array.copy x, objective)
            | Some j ->
                let v = x.(j) in
                let lo = floor v and hi = ceil v in
                (* Explore the branch closest to the relaxation first. *)
                let down () =
                  branch (bound_row lp.Simplex.n_vars j 1.0 Simplex.Le lo :: extra_rows) basis
                in
                let up () =
                  branch (bound_row lp.Simplex.n_vars j 1.0 Simplex.Ge hi :: extra_rows) basis
                in
                if v -. lo <= hi -. v then begin
                  down ();
                  up ()
                end
                else begin
                  up ();
                  down ()
                end
          end
    end
  in
  let outcome =
    match branch [] None with
    | () -> (
        match !incumbent with
        | Some (x, objective) -> Optimal { x; objective }
        | None -> if !hit_limit then Node_limit else Infeasible)
    | exception Exit -> Unbounded
  in
  if Obs.Control.enabled () then Obs.Metric.Counter.add_int m_nodes !nodes;
  outcome

let solve ?max_nodes p =
  if Obs.Control.enabled () then
    Obs.Metric.Histogram.time m_solve_seconds (fun () -> solve_raw ?max_nodes p)
  else solve_raw ?max_nodes p
