(** Convenience layer for building (mixed-integer) linear programs with named
    variables, in the style of an algebraic modelling language. All variables
    are non-negative; upper bounds become rows. *)

type t
type var

type term = float * var
(** A linear term: coefficient times variable. *)

val create : unit -> t

val var : t -> ?integer:bool -> ?ub:float -> string -> var
(** Fresh variable with lower bound 0 and optional upper bound. *)

val binary : t -> string -> var
(** Integer variable in [0, 1] — the X_i and Y_{i->j} of the paper's model. *)

val var_name : t -> var -> string
(** The name a variable was declared with.
    @raise Invalid_argument on a variable of another model. *)

val constr : t -> term list -> Simplex.relation -> float -> unit
(** Adds a constraint; terms on the same variable are summed. *)

val minimize : t -> term list -> unit
(** Sets the objective (call once).
    @raise Invalid_argument if the objective is already set. *)

type solution

val value : solution -> var -> float
val objective : solution -> float

val solve : ?max_nodes:int -> t -> [ `Optimal of solution | `Infeasible | `Unbounded | `Node_limit ]
(** Solves with {!Simplex} when no integer variable exists, {!Milp}
    otherwise. *)

val n_vars : t -> int
val n_constraints : t -> int

(** {2 Inspection}

    Read-only views used by the [Check.Invariant] validators (duplicate
    names, non-finite coefficients, inverted bounds). *)

val var_names : t -> string array
(** Variable names in creation order. *)

val constraints : t -> (term list * Simplex.relation * float) list
(** Rows in insertion order, including the rows created by [?ub]. *)

val objective_terms : t -> term list option

val var_index : var -> int
(** Index of a variable into {!var_names}. *)
