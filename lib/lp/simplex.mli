(** Dense two-phase primal simplex for linear programs in the form

      minimise c.x  subject to  A x (<= | = | >=) b,  x >= 0.

    This is the solver substrate standing in for CPLEX (see DESIGN.md). It
    uses Bland's rule, so it terminates on degenerate problems; it is exact
    enough for the small energy-aware routing instances the repository solves
    optimally, and it deliberately favours clarity over sparse-matrix speed. *)

type relation = Le | Eq | Ge

type problem = {
  n_vars : int;
  objective : float array;  (** length [n_vars]; coefficients to minimise *)
  rows : (float array * relation * float) list;  (** each row has length [n_vars] *)
}

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** Solves the program. Variables are implicitly bounded below by 0; upper
    bounds must be expressed as rows. *)

type basis
(** An optimal basis, reusable as a warm-start hint. A basis taken from a
    problem [p] is a valid hint for any problem whose row list has [p]'s
    rows as a prefix (extra rows appended at the end) and the same
    variables — the layout branch-and-bound produces when it appends bound
    rows per node. *)

val solve_with_basis : ?hint:basis -> problem -> outcome * basis option
(** Like {!solve}, and additionally returns the final basis on [Optimal]
    for threading into subsequent related solves. With [?hint] the solver
    crashes the hinted basis into the tableau, repairs primal feasibility
    with dual simplex steps, and falls back to the cold two-phase path
    whenever the hint is numerically unusable — the outcome is always the
    same as a cold solve, only (usually) cheaper. *)
