type config = { packet_size : int; buffer_packets : int }

let default_config = { packet_size = 1250; buffer_packets = 64 }

type flow_stats = {
  origin : int;
  dest : int;
  offered : int;
  delivered : int;
  dropped : int;
  mean_latency : float;
}

type result = {
  flows : flow_stats list;
  delivered_fraction : float;
  arc_bytes : float array;
}

type ev =
  | Inject of int  (* flow index *)
  | Arrive of { flow : int; node : int; sent : float }

type counters = {
  mutable offered : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable latency_sum : float;
}

let run ?(config = default_config) ctl ~flows ~duration =
  let flows_a = Array.of_list flows in
  let n_flows = Array.length flows_a in
  let stats =
    Array.init n_flows (fun _ -> { offered = 0; delivered = 0; dropped = 0; latency_sum = 0.0 })
  in
  if flows = [] then invalid_arg "Pnet.run: no flows";
  let graph = Controller.graph ctl in
  let n_arcs = Topo.Graph.arc_count graph in
  let arc_bytes = Array.make n_arcs 0.0 in
  (* Per-arc transmitter: time the arc becomes free, plus the backlog used
     for buffer accounting. *)
  let next_free = Array.make n_arcs 0.0 in
  let queue = Eutil.Heap.create () in
  let pkt_bits = float_of_int (8 * config.packet_size) in
  if pkt_bits <= 0.0 then invalid_arg "Pnet.run: packet_size must be positive";
  (* Schedule injections. *)
  Array.iteri
    (fun i (_, _, rate) ->
      if rate > 0.0 then begin
        let period = pkt_bits /. rate in
        let n = int_of_float (duration *. rate /. pkt_bits) in
        for k = 0 to n - 1 do
          Eutil.Heap.push queue (float_of_int k *. period) (Inject i)
        done
      end)
    flows_a;
  let forward now flow node sent =
    let o, d, _ = flows_a.(flow) in
    if node = d then begin
      stats.(flow).delivered <- stats.(flow).delivered + 1;
      stats.(flow).latency_sum <- stats.(flow).latency_sum +. (now -. sent)
    end
    else begin
      match Flowtable.lookup (Controller.table_of ctl node) ~src:o ~dst:d with
      | None -> stats.(flow).dropped <- stats.(flow).dropped + 1
      | Some e -> (
          match Flowtable.select e ~key:flow with
          | None -> stats.(flow).dropped <- stats.(flow).dropped + 1
          | Some a ->
              let arc = Topo.Graph.arc graph a in
              let ser = pkt_bits /. arc.Topo.Graph.capacity in
              let backlog = max 0.0 (next_free.(a) -. now) in
              if backlog > float_of_int config.buffer_packets *. ser then
                stats.(flow).dropped <- stats.(flow).dropped + 1
              else begin
                Flowtable.account e ~bytes:(float_of_int config.packet_size);
                arc_bytes.(a) <- arc_bytes.(a) +. float_of_int config.packet_size;
                let depart = max now next_free.(a) +. ser in
                next_free.(a) <- depart;
                Eutil.Heap.push queue
                  (depart +. arc.Topo.Graph.latency)
                  (Arrive { flow; node = arc.Topo.Graph.dst; sent })
              end)
    end
  in
  let rec loop () =
    match Eutil.Heap.pop queue with
    | None -> ()
    | Some (t, ev) ->
        (match ev with
        | Inject i ->
            let o, _, _ = flows_a.(i) in
            stats.(i).offered <- stats.(i).offered + 1;
            forward t i o t
        | Arrive { flow; node; sent } -> forward t flow node sent);
        loop ()
  in
  loop ();
  let flow_stats =
    Array.to_list
      (Array.mapi
         (fun i c ->
           let o, d, _ = flows_a.(i) in
           {
             origin = o;
             dest = d;
             offered = c.offered;
             delivered = c.delivered;
             dropped = c.dropped;
             mean_latency =
               (if c.delivered = 0 then 0.0 else c.latency_sum /. float_of_int c.delivered);
           })
         stats)
  in
  let offered = Array.fold_left (fun acc c -> acc + c.offered) 0 stats in
  let delivered = Array.fold_left (fun acc c -> acc + c.delivered) 0 stats in
  {
    flows = flow_stats;
    delivered_fraction =
      (if offered = 0 then 1.0 else float_of_int delivered /. float_of_int offered);
    arc_bytes;
  }
