(** Packet-level micro-simulator over OpenFlow tables — the second data plane
    of the paper's Section 5.3 (its Click testbed forwarded real packets; its
    OpenFlow implementation is "less mature"). Packets experience store-and-
    forward serialisation, propagation delay, finite FIFO buffers (drops) and
    per-entry counter accounting. Used to cross-validate the fluid model of
    {!Netsim.Sim}: steady-state rates agree, and packet-level artefacts
    (queueing latency, loss under overload) become visible. *)

type config = {
  packet_size : int;  (** bytes *)
  buffer_packets : int;  (** per-arc FIFO capacity *)
}

val default_config : config
(** 1250-byte packets, 64-packet buffers. *)

type flow_stats = {
  origin : int;
  dest : int;
  offered : int;  (** packets injected *)
  delivered : int;
  dropped : int;
  mean_latency : float;  (** seconds, delivered packets *)
}

type result = {
  flows : flow_stats list;
  delivered_fraction : float;
  arc_bytes : float array;  (** forwarded volume per arc *)
}

val run :
  ?config:config ->
  Controller.t ->
  flows:(int * int * float) list ->
  duration:float ->
  result
(** Injects constant-bit-rate packet streams (one per (origin, dest, bit/s)
    triple; each stream uses its index as select key) and forwards them
    through the programmed tables. The controller must have been
    {!Controller.program}med.
    @raise Invalid_argument if [flows] is empty or the configured packet
    size is not positive. *)
