type t = {
  tables : Response.Tables.t;
  g : Topo.Graph.t;
  switch : Flowtable.t array;  (* per node *)
}

let create tables =
  let g = Response.Tables.graph tables in
  { tables; g; switch = Array.init (Topo.Graph.node_count g) (fun _ -> Flowtable.create ()) }

let graph t = t.g
let table_of t n = t.switch.(n)

let program t ~splits =
  (* Full recompilation: rebuild every switch table. Weighted buckets are
     accumulated per (node, pair) over all active paths through that node. *)
  Array.iteri (fun i _ -> t.switch.(i) <- Flowtable.create ()) t.switch;
  (* node -> (arc, weight) list; one scratch table reused across entries. *)
  let hops : (int, (int * float) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let o = e.Response.Tables.origin and d = e.Response.Tables.dest in
      let paths = Response.Tables.paths e in
      let split = splits o d in
      Hashtbl.reset hops;
      Array.iteri
        (fun i p ->
          if i < Array.length split && split.(i) > 0.0 then
            Array.iter
              (fun a ->
                let arc = Topo.Graph.arc t.g a in
                let u = arc.Topo.Graph.src in
                let prev = Option.value (Hashtbl.find_opt hops u) ~default:[] in
                (* Merge weight into an existing bucket for the same arc. *)
                let rec merge = function
                  | [] -> [ (a, split.(i)) ]
                  | (a', w) :: rest ->
                      if a' = a then (a', w +. split.(i)) :: rest else (a', w) :: merge rest
                in
                Hashtbl.replace hops u (merge prev))
              p.Topo.Path.arcs)
        paths;
      Hashtbl.iter
        (fun node buckets ->
          Flowtable.add t.switch.(node) ~priority:10
            ~matcher:{ Flowtable.src = Some o; dst = Some d }
            ~action:(Flowtable.Forward buckets))
        hops)
    (Response.Tables.entries t.tables)

let tables_installed t = Array.fold_left (fun acc tbl -> acc + Flowtable.size tbl) 0 t.switch

let route t ~src ~dst ~key =
  let rec walk node acc guard =
    if node = dst then (match acc with [] -> None | l -> Some (Topo.Path.of_arcs t.g (List.rev l)))
    else if guard = 0 then None
    else begin
      match Flowtable.lookup t.switch.(node) ~src ~dst with
      | None -> None
      | Some e -> (
          match Flowtable.select e ~key with
          | None -> None
          | Some a -> walk (Topo.Graph.arc t.g a).Topo.Graph.dst (a :: acc) (guard - 1))
    end
  in
  walk src [] (Topo.Graph.node_count t.g)
