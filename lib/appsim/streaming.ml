type client = { node : int; join_time : float }

type scenario = {
  source : int;
  bitrate : float;
  block_duration : float;
  startup_buffer : float;
  clients : client list;
  duration : float;
}

type client_stats = {
  node : int;
  join_time : float;
  playable_percent : float;
  mean_block_latency : float;
}

type summary = {
  per_client : client_stats list;
  playable : Eutil.Stats.boxplot;
  mean_block_latency : float;
  mean_power_percent : float;
}

(* Demand matrix with every client active at [t]: per destination node, the
   number of active clients times the bitrate. *)
let demand_at scenario g t =
  let m = Traffic.Matrix.create (Topo.Graph.node_count g) in
  List.iter
    (fun (c : client) ->
      if c.join_time <= t && c.node <> scenario.source then
        Traffic.Matrix.add_to m scenario.source c.node scenario.bitrate)
    scenario.clients;
  m

let run ?(config = Netsim.Sim.default_config) ~tables ~power scenario =
  let g = Response.Tables.graph tables in
  let join_times =
    List.map (fun (c : client) -> c.join_time) scenario.clients |> List.sort_uniq Float.compare
  in
  let events =
    List.map (fun t -> Netsim.Sim.Set_demand (t, demand_at scenario g t)) join_times
  in
  let r =
    Netsim.Sim.run ~config ~tables ~power ~events ~duration:scenario.duration ()
  in
  let samples = r.Netsim.Sim.samples in
  let dt = config.Netsim.Sim.sample_interval in
  (* Active clients per destination node over time (to split the pair rate). *)
  let actives t node =
    List.length
      (List.filter (fun (c : client) -> c.node = node && c.join_time <= t) scenario.clients)
  in
  let pair_rate sample node =
    Option.value
      (List.assoc_opt (scenario.source, node) sample.Netsim.Sim.pair_rates)
      ~default:0.0
  in
  (* Propagation component of block retrieval: the always-on path's one-way
     latency (paths differ between routings, which is what the paper's ~5 %
     block-latency comparison measures). *)
  let path_latency node =
    match Response.Tables.find tables scenario.source node with
    | Some e -> Topo.Path.latency g e.Response.Tables.always_on
    | None -> 0.0
  in
  let per_client =
    List.map
      (fun (c : client) ->
        (* Cumulative bits received since joining, sampled at dt. *)
        let received = ref 0.0 in
        let block_bits = scenario.bitrate *. scenario.block_duration in
        let n_blocks =
          max 0 (int_of_float ((scenario.duration -. c.join_time) /. scenario.block_duration) - 1)
        in
        let arrival = Array.init n_blocks (fun _ -> infinity) in
        let next_block = ref 0 in
        Array.iter
          (fun sm ->
            let t = sm.Netsim.Sim.time in
            if t >= c.join_time then begin
              let n = max 1 (actives t c.node) in
              let before = !received in
              received := before +. (pair_rate sm c.node /. float_of_int n *. dt);
              while
                !next_block < n_blocks
                && !received >= float_of_int (!next_block + 1) *. block_bits
              do
                (* Interpolate the completion instant inside the sample step
                   so latencies are not quantised to the sample interval. *)
                let needed = float_of_int (!next_block + 1) *. block_bits in
                let frac =
                  if !received > before then (needed -. before) /. (!received -. before) else 1.0
                in
                arrival.(!next_block) <- t +. (dt *. (frac -. 1.0));
                incr next_block
              done
            end)
          samples;
        let playable = ref 0 in
        let lat_sum = ref 0.0 and lat_n = ref 0 in
        let lat = path_latency c.node in
        for i = 0 to n_blocks - 1 do
          let sent = c.join_time +. (float_of_int i *. scenario.block_duration) in
          let deadline = sent +. scenario.startup_buffer in
          if arrival.(i) +. lat <= deadline then incr playable;
          if arrival.(i) < infinity then begin
            lat_sum := !lat_sum +. (arrival.(i) +. lat -. sent);
            incr lat_n
          end
        done;
        {
          node = c.node;
          join_time = c.join_time;
          playable_percent =
            (if n_blocks = 0 then 100.0
             else 100.0 *. float_of_int !playable /. float_of_int n_blocks);
          mean_block_latency = (if !lat_n = 0 then 0.0 else !lat_sum /. float_of_int !lat_n);
        })
      scenario.clients
  in
  let playable =
    Eutil.Stats.boxplot
      (Array.of_list (List.map (fun (c : client_stats) -> c.playable_percent) per_client))
  in
  let mean_block_latency =
    Eutil.Stats.mean
      (Array.of_list (List.map (fun (c : client_stats) -> c.mean_block_latency) per_client))
  in
  { per_client; playable; mean_block_latency; mean_power_percent = r.Netsim.Sim.mean_power_percent }
