type config = {
  n_files : int;
  median_size : float;
  sigma : float;
  requests : int;
  server_time : float;
  seed : int;
}

let default =
  {
    n_files = 100;
    (* SPECweb2005 banking: tens-of-KB median with a heavy tail. *)
    median_size = 30_000.0;
    sigma = 1.0;
    requests = 2_000;
    server_time = 2e-3;
    seed = 2005;
  }

type result = {
  mean_latency : float;
  p95_latency : float;
  latencies : float array;
}

let file_sizes cfg =
  let rng = Eutil.Prng.create cfg.seed in
  Array.init cfg.n_files (fun _ ->
      Eutil.Prng.lognormal rng ~mu:(log cfg.median_size) ~sigma:cfg.sigma)

let run g ~path_of ~background_util ~clients cfg =
  if clients = [] then invalid_arg "Web.run: no clients";
  let sizes = file_sizes cfg in
  let rng = Eutil.Prng.create (cfg.seed + 1) in
  let clients = Array.of_list clients in
  let latencies =
    Array.init cfg.requests (fun _ ->
        let client = clients.(Eutil.Prng.int rng (Array.length clients)) in
        let size = sizes.(Eutil.Prng.int rng cfg.n_files) in
        match path_of client with
        | None -> infinity
        | Some p ->
            let rtt = 2.0 *. Topo.Path.latency g p in
            (* Residual bottleneck bandwidth along the path. *)
            let residual =
              Array.fold_left
                (fun acc a ->
                  let arc = Topo.Graph.arc g a in
                  let free = arc.Topo.Graph.capacity *. (1.0 -. min 0.95 (background_util a)) in
                  min acc free)
                infinity p.Topo.Path.arcs
            in
            if residual <= 0.0 then infinity
            else (2.0 *. rtt) +. cfg.server_time +. (size *. 8.0 /. residual))
  in
  let finite_n = Array.fold_left (fun acc x -> if x < infinity then acc + 1 else acc) 0 latencies in
  let finite = Array.make finite_n 0.0 in
  let j = ref 0 in
  Array.iter
    (fun x ->
      if x < infinity then begin
        finite.(!j) <- x;
        incr j
      end)
    latencies;
  {
    mean_latency = Eutil.Stats.mean finite;
    p95_latency = Eutil.Stats.percentile finite 95.0;
    latencies = finite;
  }

let compare_latency ~baseline ~treatment =
  100.0 *. ((treatment.mean_latency /. baseline.mean_latency) -. 1.0)
