(** Web workload over chosen network paths — the Apache/httperf experiment of
    Section 5.4: one stub node serves static files whose sizes follow the
    SPECweb2005 online-banking distribution; the other stub nodes fetch them.
    The paper compares web retrieval latency over OSPF-InvCap paths with
    REsPoNse-lat paths (reporting a ~9 % increase). *)

type config = {
  n_files : int;  (** catalogue size (paper: 100 static files) *)
  median_size : float;  (** bytes; sizes are lognormal around this *)
  sigma : float;  (** lognormal shape *)
  requests : int;  (** total requests across all clients *)
  server_time : float;  (** per-request server processing, seconds *)
  seed : int;
}

val default : config

type result = {
  mean_latency : float;
  p95_latency : float;
  latencies : float array;  (** per request, seconds *)
}

val file_sizes : config -> float array
(** The deterministic catalogue for a configuration. *)

val run :
  Topo.Graph.t ->
  path_of:(int -> Topo.Path.t option) ->
  background_util:(int -> float) ->
  clients:int list ->
  config ->
  result
(** [path_of client] is the routing in force (e.g. the always-on table or the
    InvCap path); [background_util arc] the utilisation other traffic imposes.
    Retrieval latency = 2 RTTs (TCP handshake + request) + server time +
    transfer at the path's residual bottleneck bandwidth.
    @raise Invalid_argument if [clients] is empty. *)

val compare_latency : baseline:result -> treatment:result -> float
(** Relative mean-latency increase of [treatment] over [baseline], in
    percent. *)
