let by key cmp a b = cmp (key a) (key b)

let desc cmp a b = cmp b a

let pair ca cb (a1, b1) (a2, b2) =
  let c = ca a1 a2 in
  if c <> 0 then c else cb b1 b2

let triple ca cb cc (a1, b1, c1) (a2, b2, c2) =
  let c = ca a1 a2 in
  if c <> 0 then c
  else
    let c = cb b1 b2 in
    if c <> 0 then c else cc c1 c2

let array cmp a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then Int.compare la lb
    else
      let c = cmp a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let int_pair p q = pair Int.compare Int.compare p q
