(** Phantom-typed units of measure for the quantities the evaluation hinges
    on: linecard watts, link capacities in bit/s, demand fractions and
    utilisation ratios, and wall-clock seconds. A quantity ['dim q] is a
    [private float], so the OCaml type checker *is* the unit analyzer:
    adding watts to bit/s, or passing a capacity where a power budget is
    expected, is a compile error — see test/test_util.ml for the
    negative-compilation proof. The dataflow layer ({!Check.Flow}) covers
    what types cannot see (NaN births, magic unit literals, relabelling).

    Constructors are checked: a NaN can never enter the unit system (the
    usual way one is born — an unguarded [0.0 /. 0.0] — is flagged by
    {!Check.Flow} before it gets here). Infinities are allowed; domain-level
    range invariants (e.g. nonnegative power) stay in {!Check.Invariant}.

    Escape hatches are explicit and greppable: {!to_float} to leave the
    system, {!unsafe} to forge a quantity without the NaN check (tests
    forging invalid domain values only). *)

type watts
type bps
type ratio
type seconds
type joules

type +'dim q = private float

(** {1 Checked constructors} — raise [Invalid_argument] on NaN. *)

val watts : float -> watts q
val bps : float -> bps q
val ratio : float -> ratio q
val seconds : float -> seconds q
val joules : float -> joules q

val unsafe : float -> 'dim q
(** Unchecked injection with a caller-chosen dimension. For tests that forge
    invalid values on purpose; never for production code ({!Check.Flow}
    has no mercy for it either). *)

(** {1 Scale prefixes and rate helpers} *)

val kilo : float
val mega : float
val giga : float

val kbps : float -> bps q
val mbps : float -> bps q
val gbps : float -> bps q

(** {1 Leaving the system} *)

val to_float : 'dim q -> float
(** The bare magnitude. Every [to_float] is an audit point: feeding one back
    into a constructor without a dimension annotation is flagged by
    {!Check.Flow} (rule [unit-relabel]). *)

val percent : ratio q -> float
(** [100 *. to_float r] — for display only. *)

(** {1 Dimension algebra} *)

val zero : 'dim q

val ( +: ) : 'dim q -> 'dim q -> 'dim q
val ( -: ) : 'dim q -> 'dim q -> 'dim q

val ( *: ) : ratio q -> 'dim q -> 'dim q
(** Scaling by a dimensionless ratio preserves the dimension. *)

val ( /: ) : 'dim q -> 'dim q -> ratio q
(** Same-dimension division yields a ratio (utilisation = load / capacity).
    Raises [Invalid_argument] on a zero divisor — the NaN factory this
    module exists to shut down. Use {!div_opt} when zero is a live case. *)

val div_opt : 'dim q -> 'dim q -> ratio q option
(** [None] on a zero divisor, [Some (a /: b)] otherwise. *)

val ( *@ ) : watts q -> seconds q -> joules q
(** Power sustained for a duration is an energy. *)

val scale : float -> 'dim q -> 'dim q
(** Multiply by a bare (dimensionless) factor. Checked: raises on a NaN
    result. *)

(** {1 Comparisons} — NaN-safe by construction (no NaN can be inside). *)

val compare_q : 'dim q -> 'dim q -> int
val min_q : 'dim q -> 'dim q -> 'dim q
val max_q : 'dim q -> 'dim q -> 'dim q
val is_zero : 'dim q -> bool
