(** Small descriptive-statistics helpers used by experiments and tests. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val stdev : float array -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between order
    statistics. The input array is not modified.
    @raise Invalid_argument on an empty array. *)

type boxplot = {
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}
(** Five-number summary, as drawn by the paper's Figure 9. *)

val boxplot : float array -> boxplot

val ccdf : float array -> float list -> (float * float) list
(** [ccdf xs points] returns, for each threshold in [points], the fraction of
    samples that are [>=] the threshold (in percent, 0..100). *)

val cdf_at : float array -> float -> float
(** Fraction of samples [<=] the given value, in percent. *)

val pp_boxplot : Format.formatter -> boxplot -> unit
