let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stdev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

type boxplot = {
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}

let boxplot xs =
  {
    min = percentile xs 0.0;
    q1 = percentile xs 25.0;
    median = percentile xs 50.0;
    q3 = percentile xs 75.0;
    max = percentile xs 100.0;
  }

let ccdf xs points =
  let n = float_of_int (Array.length xs) in
  List.map
    (fun thr ->
      let c = Array.fold_left (fun acc x -> if x >= thr then acc + 1 else acc) 0 xs in
      (thr, if n = 0.0 then 0.0 else 100.0 *. float_of_int c /. n))
    points

let cdf_at xs v =
  let n = float_of_int (Array.length xs) in
  if n = 0.0 then 0.0
  else begin
    let c = Array.fold_left (fun acc x -> if x <= v then acc + 1 else acc) 0 xs in
    100.0 *. float_of_int c /. n
  end

let pp_boxplot ppf b =
  Format.fprintf ppf "min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f" b.min b.q1 b.median b.q3 b.max
