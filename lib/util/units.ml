(* The phantom parameter never occurs on the right-hand side: all dimensions
   share one runtime representation (an unboxed float), so the unit layer is
   free at run time. The .mli makes [q] private, which is what turns a
   watts/bps mix-up into a compile error. *)

type watts
type bps
type ratio
type seconds
type joules

type +'dim q = float

let check name x =
  if Float.is_nan x then invalid_arg ("Units." ^ name ^ ": NaN is not a quantity");
  x

let watts x = check "watts" x
let bps x = check "bps" x
let ratio x = check "ratio" x
let seconds x = check "seconds" x
let joules x = check "joules" x
let unsafe x = x

let kilo = 1e3
let mega = 1e6
let giga = 1e9

let kbps x = check "kbps" (x *. kilo)
let mbps x = check "mbps" (x *. mega)
let gbps x = check "gbps" (x *. giga)

let to_float x = x
let percent r = 100.0 *. r

let zero = 0.0

let ( +: ) a b = a +. b
let ( -: ) a b = a -. b
let ( *: ) r x = r *. x

let ( /: ) a b =
  if b = 0.0 then invalid_arg "Units./: : zero divisor would mint a NaN/inf ratio";
  a /. b

let div_opt a b = if b = 0.0 then None else Some (a /. b)

let ( *@ ) w s = w *. s

let scale f x = check "scale" (f *. x)

let compare_q a b = Float.compare a b
let min_q a b = if Float.compare a b <= 0 then a else b
let max_q a b = if Float.compare a b >= 0 then a else b
let is_zero x = x = 0.0
