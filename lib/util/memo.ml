(* Bounded LRU cache: a hashtable from key to an intrusive doubly-linked
   node; the list keeps recency order, front = most recent. Every public
   operation holds the mutex, except the user computation in find_or_add
   (see memo.mli for the locking contract). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable front : ('k, 'v) node option;
  mutable back : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

type stats = { hits : int; misses : int; evictions : int }

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Memo.create: capacity >= 1";
  {
    cap = capacity;
    tbl = Hashtbl.create (min capacity 64);
    front = None;
    back = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* List surgery; all callers hold the lock. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.front;
  (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n

let touch t n =
  match t.front with
  | Some f when f == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let evict_over_capacity t =
  while Hashtbl.length t.tbl > t.cap do
    match t.back with
    | None -> assert false (* length > cap >= 1 implies a back node *)
    | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl n.key;
        t.evictions <- t.evictions + 1
  done

let insert t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      (* Lost a race with another domain computing the same key: keep one
         entry, refresh its value and recency. *)
      n.value <- v;
      touch t n
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      evict_over_capacity t

let find_or_add t k ~compute =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl k with
        | Some n ->
            t.hits <- t.hits + 1;
            touch t n;
            Some n.value
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute k in
      locked t (fun () -> insert t k v);
      v

let wrap t f k = find_or_add t k ~compute:f

let mem t k = locked t (fun () -> Hashtbl.mem t.tbl k)

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let capacity t = t.cap

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.front <- None;
      t.back <- None)

let stats t =
  locked t (fun () -> { hits = t.hits; misses = t.misses; evictions = t.evictions })
