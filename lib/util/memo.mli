(** Bounded LRU memo tables for [Check.Cost]-certified pure functions.

    A cache maps keys to previously computed results, evicting the least
    recently used entry once [capacity] is exceeded, so a long replay over
    rotating traffic matrices cannot grow the heap without bound. All
    operations take an internal [Mutex], making a cache safe to share
    across domains (and keeping {!Check.Share}'s guard discipline happy
    for the global caches registered in [lib/core]).

    Registration contract: a function may only be wrapped when
    [respctl analyze --cost] certifies it memo-safe — transitively free of
    nondeterminism, IO and partiality, with no direct raise in its own
    body (the [memo-unsafe] rule). The cache itself upholds the matching
    runtime half of the contract: [compute] runs {e outside} the lock and
    an exceptional outcome is never cached, so a guard raise cannot be
    replayed as a stale success. *)

type ('k, 'v) t

type stats = { hits : int; misses : int; evictions : int }

val create : ?capacity:int -> unit -> ('k, 'v) t
(** A fresh cache holding at most [capacity] entries (default 128).
    @raise Invalid_argument if [capacity < 1]. *)

val find_or_add : ('k, 'v) t -> 'k -> compute:('k -> 'v) -> 'v
(** [find_or_add t k ~compute] returns the cached value for [k], or runs
    [compute k], stores the result, and returns it. The computation runs
    without the lock held, so a memoized function may recursively consult
    its own cache; if two domains race on the same missing key both
    compute and the later insert wins (the results are equal for a
    certified-pure [compute]). *)

val wrap : ('k, 'v) t -> ('k -> 'v) -> 'k -> 'v
(** [wrap t f] is [fun k -> find_or_add t k ~compute:f]. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Whether a key is currently cached (does not touch LRU order). *)

val length : ('k, 'v) t -> int
(** Number of live entries, always [<= capacity]. *)

val capacity : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit
(** Drops every entry; the hit/miss/eviction counters keep counting. *)

val stats : ('k, 'v) t -> stats
(** Lifetime hit/miss/eviction counts. *)
