(** Explicit comparator combinators.

    The Srclint [poly-compare] rule bans bare polymorphic [compare]: on
    float-carrying tuples it mis-orders NaN and forces a megamorphic
    comparison per element. These combinators make the monomorphic
    replacement one-liners. *)

val by : ('a -> 'k) -> ('k -> 'k -> int) -> 'a -> 'a -> int
(** [by key cmp] compares values through a sort key. *)

val desc : ('a -> 'a -> int) -> 'a -> 'a -> int
(** Reverses a comparator (descending order). *)

val pair : ('a -> 'a -> int) -> ('b -> 'b -> int) -> 'a * 'b -> 'a * 'b -> int
(** Lexicographic order on pairs. *)

val triple :
  ('a -> 'a -> int) -> ('b -> 'b -> int) -> ('c -> 'c -> int) -> 'a * 'b * 'c -> 'a * 'b * 'c -> int
(** Lexicographic order on triples. *)

val array : ('a -> 'a -> int) -> 'a array -> 'a array -> int
(** Lexicographic order on arrays (shorter prefix first). *)

val int_pair : int * int -> int * int -> int
(** Shorthand for [pair Int.compare Int.compare] — OD pairs, link ends. *)
