(* A deliberately small fork-join pool over [Domain.spawn]. One batch per
   call: [map_array] spawns at most [jobs - 1] worker domains, the calling
   domain works too, and everyone pulls the next unclaimed index from a
   shared atomic counter (work stealing by index). Results land in a
   pre-sized output array at their input index, so the output order is the
   input order no matter which domain computed which element — that is the
   canonical-merge property the [Check.Share] certification relies on for
   byte-identical [--jobs 1] / [--jobs N] output. *)

let default_jobs () =
  match Domain.recommended_domain_count () with n when n >= 1 -> n | _ -> 1

let run_workers ~jobs ~n ~(work : int -> unit) =
  let next = Atomic.make 0 in
  (* First exception wins; the other domains drain the remaining indices
     normally (simpler than a cancellation protocol, and every [work] call
     in this repo is short). *)
  let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
  let worker () =
    let continue = ref true in
    while !continue do
      let k = Atomic.fetch_and_add next 1 in
      if k >= n then continue := false
      else
        try work k
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set error None (Some (e, bt)))
    done
  in
  let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  (* Re-raise the first failure with its original backtrace, after every
     domain has been joined (no orphan domains on error). *)
  match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map_array ?jobs f a =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length a in
  if jobs <= 1 || n <= 1 then Array.map f a
  else begin
    let out = Array.make n None in
    run_workers ~jobs ~n ~work:(fun k -> out.(k) <- Some (f a.(k)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let init ?jobs n f =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs <= 1 || n <= 1 then Array.init n f
  else begin
    let out = Array.make n None in
    run_workers ~jobs ~n ~work:(fun k -> out.(k) <- Some (f k));
    Array.map (function Some v -> v | None -> assert false) out
  end

module Background = struct
  (* Persistent variant for server loops: the domains live until their
     bodies decide to return, and [join] collects them once. Exceptions
     follow the same first-wins convention as [run_workers]. *)

  type t = {
    domains : unit Domain.t array;
    error : (exn * Printexc.raw_backtrace) option Atomic.t;
  }

  let spawn n body =
    let n = max 1 n in
    let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
    let guarded i =
      try body i
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set error None (Some (e, bt)))
    in
    { domains = Array.init n (fun i -> Domain.spawn (fun () -> guarded i)); error }

  let join t =
    Array.iter Domain.join t.domains;
    match Atomic.get t.error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
end
