(** Fork-join fan-out over OCaml 5 domains, with deterministic merge order.

    One batch per call: at most [jobs - 1] worker domains are spawned (the
    calling domain participates), indices are claimed from a shared atomic
    counter, and each result is written to the output array at its input
    index. Output order is therefore the input order regardless of
    scheduling, which is what lets [--jobs 1] and [--jobs N] runs produce
    byte-identical reports for equal seeds.

    Safety contract: the function passed in must be [Domain_safe] in the
    {!Check.Share} sense — it may not write any shared mutable root. The
    [check/parallel.json] manifest plus the [shared-write-reachable] /
    [prng-shared] analyze rules enforce this statically for the fan-outs
    shipped in this repository. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f a] is [Array.map f a] computed by up to [jobs]
    domains. [jobs <= 1] (or fewer than two elements) runs sequentially on
    the calling domain — the parallel and sequential paths produce the
    same array. If any [f] raises, the first exception (by claim order) is
    re-raised with its backtrace after all domains have been joined;
    remaining elements are still computed. [jobs] defaults to
    {!default_jobs}. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] with the same contract as
    {!map_array}. *)

module Background : sig
  (** Long-lived domains for servers: where {!map_array} forks and joins
      around one batch, a background group stays up for the process
      lifetime (accept loops, connection workers) and is joined once at
      shutdown. The same [Domain_safe] contract applies to the body —
      shared state must go through the [Atomic]/[Mutex] discipline that
      [check/parallel.json] certifies. *)

  type t

  val spawn : int -> (int -> unit) -> t
  (** [spawn n body] starts [max 1 n] domains, each running [body i] once
      with its index [0 <= i < n]. The body is expected to loop until an
      external stop signal (a flag, a closed fd); the pool imposes no
      protocol of its own. An exception escaping a body is stashed and
      re-raised by {!join}. *)

  val join : t -> unit
  (** Blocks until every body has returned, then re-raises the first
      stashed exception (by completion order), if any, with its
      backtrace. Idempotent only in the absence of exceptions: callers
      should arrange the stop signal before joining. *)
end
