(* Crash-safe journaling of accepted demand/link updates.

   Record layout (big-endian): [len u32 | frame | crc u32] where [frame]
   is one complete Wire request frame (demand_update or link_event only)
   and [crc] is CRC-32 of the frame bytes. Appends are fsync'd before
   the server acknowledges, so an acked update survives kill -9; a torn
   tail (partial record, bad CRC, or an undecodable frame) marks the end
   of the valid prefix and is truncated away at open, exactly the state
   a crash mid-append leaves behind.

   IO failures after open never raise: they come back as [Error _] and
   are counted on [serve_journal_errors_total]; the server keeps serving
   with durability degraded rather than dying. *)

type t = {
  jpath : string;
  fsync : bool;
  lock : Mutex.t;
  mutable fd : Unix.file_descr option;  (* None after close; guarded by [lock] *)
  mutable replayed : Wire.request list;
  mutable was_torn : bool;
}

let max_record = Wire.header_length + Wire.max_payload

let journalable = function Wire.Demand_update _ | Wire.Link_event _ -> true | _ -> false

(* ----------------------------- records ----------------------------- *)

let encode_record frame =
  let b = Buffer.create (String.length frame + 8) in
  Buffer.add_int32_be b (Int32.of_int (String.length frame));
  Buffer.add_string b frame;
  Buffer.add_int32_be b (Wire.crc32 frame);
  Buffer.contents b

(* Walks the file image; returns the decoded records, the byte offset of
   the valid prefix, and whether a torn/corrupt tail was found. *)
let parse data =
  let n = String.length data in
  let rec go pos acc =
    if n - pos < 4 then (List.rev acc, pos, n > pos)
    else
      let len = Int32.to_int (String.get_int32_be data pos) land 0xffff_ffff in
      if len < Wire.header_length + 1 || len > max_record || n - pos - 4 < len + 4 then
        (List.rev acc, pos, true)
      else
        let frame = String.sub data (pos + 4) len in
        let stored = String.get_int32_be data (pos + 4 + len) in
        if not (Int32.equal stored (Wire.crc32 frame)) then (List.rev acc, pos, true)
        else
          match Wire.decode_request frame with
          | Ok (r, consumed) when consumed = len && journalable r ->
              go (pos + 4 + len + 4) (r :: acc)
          | Ok _ | Error _ -> (List.rev acc, pos, true)
  in
  go 0 []

(* ------------------------------- io -------------------------------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec loop off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> loop (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  loop 0

let read_whole fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error (_e, _, _) -> ());
      try Unix.close dfd with Unix.Unix_error (_e, _, _) -> ()

let io_error what err = Error (Printf.sprintf "journal %s: %s" what (Unix.error_message err))

(* ----------------------------- lifecycle --------------------------- *)

let open_ ?(fsync = true) jpath =
  match Unix.openfile jpath [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error (err, _, _) -> io_error "open" err
  | fd -> (
      match read_whole fd with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_e, _, _) -> ());
          io_error "read" err
      | data -> (
          let records, good_end, torn = parse data in
          (* Drop the torn tail so the next append starts on a record
             boundary — the crash left it unacknowledged by construction. *)
          match
            if torn then Unix.ftruncate fd good_end;
            Unix.lseek fd good_end Unix.SEEK_SET
          with
          | exception Unix.Unix_error (err, _, _) ->
              (try Unix.close fd with Unix.Unix_error (_e, _, _) -> ());
              io_error "truncate" err
          | _pos ->
              Obs.Metric.Counter.add_int Metrics.journal_replayed (List.length records);
              Ok
                {
                  jpath;
                  fsync;
                  lock = Mutex.create ();
                  fd = Some fd;
                  replayed = records;
                  was_torn = torn;
                }))

let entries t =
  Mutex.lock t.lock;
  let r = t.replayed in
  Mutex.unlock t.lock;
  r

let torn t =
  Mutex.lock t.lock;
  let b = t.was_torn in
  Mutex.unlock t.lock;
  b

let path t = t.jpath

let close t =
  Mutex.lock t.lock;
  (match t.fd with
  | Some fd -> (
      t.fd <- None;
      try Unix.close fd with Unix.Unix_error (_e, _, _) -> ())
  | None -> ());
  Mutex.unlock t.lock

(* ------------------------------ writes ----------------------------- *)

let append t req =
  if not (journalable req) then
    invalid_arg "Serve.Journal.append: only demand_update/link_event records are journaled";
  let record = encode_record (Wire.encode_request req) in
  Mutex.lock t.lock;
  let result =
    match t.fd with
    | None -> Error "journal is closed"
    | Some fd -> (
        match
          write_all fd record;
          if t.fsync then Unix.fsync fd
        with
        | () ->
            Obs.Metric.Counter.incr Metrics.journal_appends;
            Obs.Metric.Counter.add_int Metrics.journal_bytes (String.length record);
            Ok ()
        | exception Unix.Unix_error (err, _, _) ->
            Obs.Metric.Counter.incr Metrics.journal_errors;
            io_error "append" err)
  in
  Mutex.unlock t.lock;
  result

(* Checkpoint: rewrite the journal as the given records via a temp file
   and an atomic rename, then fsync the directory so the rename itself
   is durable. The caller passes the full staged state (its pending
   demand flows and down links); everything older is subsumed. *)
let compact t records =
  List.iter
    (fun r ->
      if not (journalable r) then
        invalid_arg "Serve.Journal.compact: only demand_update/link_event records are journaled")
    records;
  (* Encode outside the lock, as [append] does: only the file IO and the
     fd swap need serialising, not the wire encoding of every record. *)
  let payload = List.map (fun r -> encode_record (Wire.encode_request r)) records in
  let tmp = t.jpath ^ ".tmp" in
  Mutex.lock t.lock;
  let result =
    match t.fd with
    | None -> Error "journal is closed"
    | Some old_fd -> (
        match Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
        | exception Unix.Unix_error (err, _, _) ->
            Obs.Metric.Counter.incr Metrics.journal_errors;
            io_error "compact open" err
        | tfd -> (
            match
              List.iter (fun record -> write_all tfd record) payload;
              if t.fsync then Unix.fsync tfd;
              Unix.close tfd;
              Unix.rename tmp t.jpath;
              fsync_dir t.jpath
            with
            | () ->
                (try Unix.close old_fd with Unix.Unix_error (_e, _, _) -> ());
                (match Unix.openfile t.jpath [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 with
                | fd ->
                    t.fd <- Some fd;
                    Obs.Metric.Counter.incr Metrics.journal_compactions;
                    Ok ()
                | exception Unix.Unix_error (err, _, _) ->
                    t.fd <- None;
                    Obs.Metric.Counter.incr Metrics.journal_errors;
                    io_error "compact reopen" err)
            | exception Unix.Unix_error (err, _, _) ->
                (try Unix.close tfd with Unix.Unix_error (_e, _, _) -> ());
                (try Unix.unlink tmp with Unix.Unix_error (_e, _, _) -> ());
                Obs.Metric.Counter.incr Metrics.journal_errors;
                io_error "compact" err))
  in
  Mutex.unlock t.lock;
  result
