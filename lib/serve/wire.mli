(** The respctld wire protocol: versioned, length-prefixed binary frames.

    Every frame is [magic (u32) | version (u8) | length (u32) | payload],
    all integers big-endian, where [length] is the payload byte count and
    the payload is one tag byte followed by the tag's fixed body layout.
    Requests and responses share the framing but use disjoint tag spaces,
    so a peer can never confuse the two directions.

    The codecs are pure functions on strings: [decode_request] and
    [decode_response] never read a socket and never raise on untrusted
    input — malformed bytes come back as a typed {!error}, and an
    incomplete prefix comes back as {!Truncated} so a streaming caller can
    simply wait for more bytes. The QCheck laws in [test/test_serve.ml]
    pin [decode ∘ encode = id] for every frame shape and total safety on
    arbitrary junk. *)

(** {1 Protocol constants} *)

val magic : int32
(** ["RSPN"] as a big-endian u32. *)

val version : int
(** Current protocol version (1). *)

val header_length : int
(** Bytes before the payload: magic + version + length = 9. *)

val max_payload : int
(** Upper bound on the payload length field (1 MiB): anything larger is
    rejected as {!Oversized} before any allocation happens. *)

(** {1 Frame types} *)

type request =
  | Path_query of { origin : int; dest : int }
      (** Which installed path should traffic of this pair use right now? *)
  | Demand_update of { origin : int; dest : int; bps : float }
      (** Set the pair's demand (bit/s); triggers an async recompute. *)
  | Link_event of { link : int; up : bool }
      (** A link failed or recovered; failover happens on the next query. *)
  | Stats  (** Snapshot version, swap count, served requests, power. *)
  | Health  (** Liveness probe. *)
  | Reload
      (** Force a recompute and block until the fresh snapshot is live. *)

type path_status =
  | Path_ok
  | Unknown_pair  (** no table entry for the pair *)
  | No_usable_path  (** every installed path crosses a failed link *)

type stats_payload = {
  s_version : int;  (** generation of the live snapshot *)
  s_swaps : int;  (** snapshot swaps since startup *)
  s_served : int;  (** requests served since startup *)
  s_uptime_s : float;
  s_levels : int;  (** deepest on-demand level in use *)
  s_power_percent : float;
}

type response =
  | Path_reply of { status : path_status; level : int; nodes : int list }
      (** [level] is the activation level of the chosen path (0 =
          always-on); [nodes] its vertices, origin first. Both are zero /
          empty unless [status] is {!Path_ok}. *)
  | Ack of { version : int }
      (** Update accepted; [version] is the snapshot generation that will
          (or, for [Reload], does) include it. *)
  | Stats_reply of stats_payload
  | Health_reply of { healthy : bool; version : int }
  | Error_reply of { code : int; message : string }

(** {1 Error codes carried by [Error_reply]} *)

val err_malformed : int
(** The peer sent bytes that do not parse; the connection will close. *)

val err_bad_argument : int
(** Parsed fine but semantically invalid (node/link out of range, ...). *)

val err_shutting_down : int

val err_overloaded : int
(** Admission control shed the request: the server is past its in-flight
    watermark (or in Degraded mode). Retry after backoff. *)

val err_deadline : int
(** The request's per-request deadline expired before the server reached
    it (queueing delay); it was not executed. *)

val error_code_name : int -> string
(** Stable lowercase name of an [Error_reply] code ("malformed",
    "overloaded", ...; "unknown" for unassigned codes), used as the
    label of per-code client/load breakdowns. *)

(** {1 Codecs} *)

type error =
  | Truncated  (** a valid prefix; wait for more bytes *)
  | Bad_magic of int32
  | Bad_version of int
  | Oversized of int  (** declared payload length above {!max_payload} *)
  | Bad_tag of int
  | Bad_payload of string  (** tag-specific layout violation *)

val error_to_string : error -> string

val encode_request : request -> string
(** One complete frame.
    @raise Invalid_argument when a field does not fit its wire layout:
    node/link ids outside signed 32 bits, a negative id, or a NaN
    demand. *)

val encode_response : response -> string
(** One complete frame.
    @raise Invalid_argument when a field does not fit its wire layout:
    ids/versions outside their integer ranges, more than 65535 path
    nodes, a level outside [0, 255], or an error message longer than
    65535 bytes. *)

val decode_request : ?pos:int -> string -> (request * int, error) result
(** Decodes one request frame starting at [pos] (default 0); on success
    also returns the offset just past the frame, so a connection buffer
    can be drained frame by frame. Never raises on untrusted input. *)

val decode_response : ?pos:int -> string -> (response * int, error) result
(** As {!decode_request}, for the response direction. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of the whole string — the integrity check behind
    each {!Journal} record. Pure; no table state. *)

val request_type : request -> string
(** Stable lowercase name ("path_query", "stats", ...), used as the
    [type] label of the serve metrics. *)

val equal_request : request -> request -> bool
(** Structural equality with NaN-tolerant float comparison (bit
    equality), so round-trip laws hold for every encodable value. *)

val equal_response : response -> response -> bool
