(** Serving-plane instruments, all on the default {!Obs.Registry}.

    Family children are resolved once at module initialisation, so the
    request hot path touches only a pre-bound counter — no label lookup,
    no allocation. Everything here is a no-op while [Obs.set_enabled
    false], like every other instrument in the tree. *)

val observe_request : Wire.request -> unit
(** Bump [serve_requests_total{type=...}] for the request's wire type. *)

val latency : Obs.Metric.Histogram.t
(** [serve_latency_seconds]: wall-clock request handling time, observed
    per answered frame; p50/p90/p99 come from the registry snapshot. *)

val swaps : Obs.Metric.Counter.t
(** [serve_snapshot_swaps_total]: successful atomic snapshot hot-swaps. *)

val inflight : Obs.Metric.Gauge.t
(** [serve_inflight_requests]: frames decoded but not yet answered. *)

val connections : Obs.Metric.Counter.t
(** [serve_connections_total]: accepted binary-protocol connections. *)

val protocol_errors : Obs.Metric.Counter.t
(** [serve_protocol_errors_total]: frames rejected as malformed. *)

val recompute_errors : Obs.Metric.Counter.t
(** [serve_recompute_errors_total]: background recomputes that raised and
    were dropped (the previous snapshot stays live). *)

val recompute_seconds : Obs.Metric.Histogram.t
(** [serve_recompute_seconds]: duration of background table rebuilds. *)

val http_requests : Obs.Metric.Counter.t
(** [serve_http_requests_total]: scrape-endpoint requests served. *)
