(** Serving-plane instruments, all on the default {!Obs.Registry}.

    Family children are resolved once at module initialisation, so the
    request hot path touches only a pre-bound counter — no label lookup,
    no allocation. Everything here is a no-op while [Obs.set_enabled
    false], like every other instrument in the tree. *)

val observe_request : Wire.request -> unit
(** Bump [serve_requests_total{type=...}] for the request's wire type. *)

val latency : Obs.Metric.Histogram.t
(** [serve_latency_seconds]: wall-clock request handling time, observed
    per answered frame; p50/p90/p99 come from the registry snapshot. *)

val swaps : Obs.Metric.Counter.t
(** [serve_snapshot_swaps_total]: successful atomic snapshot hot-swaps. *)

val inflight : Obs.Metric.Gauge.t
(** [serve_inflight_requests]: frames decoded but not yet answered. *)

val connections : Obs.Metric.Counter.t
(** [serve_connections_total]: accepted binary-protocol connections. *)

val protocol_errors : Obs.Metric.Counter.t
(** [serve_protocol_errors_total]: frames rejected as malformed. *)

val recompute_errors : Obs.Metric.Counter.t
(** [serve_recompute_errors_total]: background recomputes that raised and
    were dropped (the previous snapshot stays live). *)

val recompute_seconds : Obs.Metric.Histogram.t
(** [serve_recompute_seconds]: duration of background table rebuilds. *)

val http_requests : Obs.Metric.Counter.t
(** [serve_http_requests_total]: scrape-endpoint requests served. *)

(** {1 Resilience (PR 9)} *)

val sheds : Obs.Metric.Counter.t
(** [serve_sheds_total]: requests refused with [err_overloaded]. *)

val deadline_hits : Obs.Metric.Counter.t
(** [serve_deadline_hits_total]: requests answered [err_deadline] because
    their budget expired before execution. *)

val guard_degraded : Obs.Metric.Gauge.t
(** [serve_guard_degraded]: 1 while the admission guard is shedding. *)

val degraded_entries : Obs.Metric.Counter.t
(** [serve_degraded_entries_total]: Normal→Degraded transitions. *)

val degraded_seconds : Obs.Metric.Histogram.t
(** [serve_degraded_seconds]: length of each Degraded episode. *)

val conns_refused : Obs.Metric.Counter.t
(** [serve_connections_refused_total]: accepts closed at the cap. *)

val reaped_idle : Obs.Metric.Counter.t
(** [serve_reaped_connections_total{reason="idle"}]. *)

val reaped_read_deadline : Obs.Metric.Counter.t
(** [serve_reaped_connections_total{reason="read_deadline"}]: slow-loris
    connections holding a partial frame past the read deadline. *)

val journal_appends : Obs.Metric.Counter.t
(** [serve_journal_appends_total]: accepted updates made durable. *)

val journal_bytes : Obs.Metric.Counter.t
(** [serve_journal_bytes_total]: bytes written to the journal. *)

val journal_replayed : Obs.Metric.Counter.t
(** [serve_journal_replayed_total]: records replayed at startup. *)

val journal_compactions : Obs.Metric.Counter.t
(** [serve_journal_compactions_total]: checkpoint rewrites. *)

val journal_errors : Obs.Metric.Counter.t
(** [serve_journal_errors_total]: journal IO failures survived. *)

val client_retries : Obs.Metric.Counter.t
(** [serve_client_retries_total]: retried idempotent client calls. *)

val client_timeouts : Obs.Metric.Counter.t
(** [serve_client_timeouts_total]: client connect/read timeouts. *)

val breaker_open : Obs.Metric.Gauge.t
(** [serve_breaker_open]: 1 while the load generator's breaker is open. *)

val breaker_opens : Obs.Metric.Counter.t
(** [serve_breaker_opens_total]: closed→open breaker transitions. *)
