module Counter = Obs.Metric.Counter
module Gauge = Obs.Metric.Gauge
module Histogram = Obs.Metric.Histogram
module Family = Obs.Metric.Family

let requests_family =
  Family.counter ~help:"Requests received, by wire frame type"
    ~label_names:[ "type" ] "serve_requests_total"

(* One child per frame type, bound at init so the hot path never walks
   the family's label table. *)
let req_path_query = Family.labels requests_family [ "path_query" ]
let req_demand_update = Family.labels requests_family [ "demand_update" ]
let req_link_event = Family.labels requests_family [ "link_event" ]
let req_stats = Family.labels requests_family [ "stats" ]
let req_health = Family.labels requests_family [ "health" ]
let req_reload = Family.labels requests_family [ "reload" ]

(* Dispatch on the canonical wire name so the metric label and the
   protocol documentation can never drift apart. *)
let child_of = function
  | "path_query" -> req_path_query
  | "demand_update" -> req_demand_update
  | "link_event" -> req_link_event
  | "stats" -> req_stats
  | "health" -> req_health
  | _ -> req_reload

let observe_request req = Counter.incr (child_of (Wire.request_type req))

let latency =
  Histogram.create ~help:"Wall-clock seconds from frame decode to reply write"
    "serve_latency_seconds"

let swaps =
  Counter.create ~help:"Snapshot hot-swaps published by the recompute domain"
    "serve_snapshot_swaps_total"

let inflight =
  Gauge.create ~help:"Requests decoded but not yet answered" "serve_inflight_requests"

let connections =
  Counter.create ~help:"Binary-protocol connections accepted" "serve_connections_total"

let protocol_errors =
  Counter.create ~help:"Frames rejected as malformed" "serve_protocol_errors_total"

let recompute_errors =
  Counter.create ~help:"Background recomputes dropped after an exception"
    "serve_recompute_errors_total"

let recompute_seconds =
  Histogram.create ~help:"Wall-clock seconds per background table rebuild"
    "serve_recompute_seconds"

let http_requests =
  Counter.create ~help:"HTTP scrape endpoint requests served" "serve_http_requests_total"

(* --------------------------- resilience ---------------------------- *)

let sheds =
  Counter.create ~help:"Requests shed by admission control (err_overloaded)"
    "serve_sheds_total"

let deadline_hits =
  Counter.create ~help:"Requests whose deadline expired before execution (err_deadline)"
    "serve_deadline_hits_total"

let guard_degraded =
  Gauge.create ~help:"1 while the admission guard is in Degraded (shedding) mode"
    "serve_guard_degraded"

let degraded_entries =
  Counter.create ~help:"Normal-to-Degraded transitions of the admission guard"
    "serve_degraded_entries_total"

let degraded_seconds =
  Histogram.create ~help:"Wall-clock seconds spent in Degraded mode per episode"
    "serve_degraded_seconds"

let conns_refused =
  Counter.create ~help:"Binary connections refused at the connection cap"
    "serve_connections_refused_total"

let reaped_family =
  Family.counter ~help:"Connections reaped by the guard, by reason"
    ~label_names:[ "reason" ] "serve_reaped_connections_total"

let reaped_idle = Family.labels reaped_family [ "idle" ]
let reaped_read_deadline = Family.labels reaped_family [ "read_deadline" ]

(* ----------------------------- journal ----------------------------- *)

let journal_appends =
  Counter.create ~help:"Demand/link records appended to the journal"
    "serve_journal_appends_total"

let journal_bytes =
  Counter.create ~help:"Bytes appended to the journal (records incl. framing)"
    "serve_journal_bytes_total"

let journal_replayed =
  Counter.create ~help:"Journal records replayed at startup" "serve_journal_replayed_total"

let journal_compactions =
  Counter.create ~help:"Journal compactions (checkpoint rewrites on snapshot swap)"
    "serve_journal_compactions_total"

let journal_errors =
  Counter.create ~help:"Journal append/compaction IO failures (serving continues)"
    "serve_journal_errors_total"

(* ----------------------------- client ------------------------------ *)

let client_retries =
  Counter.create ~help:"Client request retries after backoff" "serve_client_retries_total"

let client_timeouts =
  Counter.create ~help:"Client connect/read timeouts" "serve_client_timeouts_total"

let breaker_open =
  Gauge.create ~help:"1 while the load generator's circuit breaker is open"
    "serve_breaker_open"

let breaker_opens =
  Counter.create ~help:"Circuit-breaker open transitions in the load generator"
    "serve_breaker_opens_total"
