module Counter = Obs.Metric.Counter
module Gauge = Obs.Metric.Gauge
module Histogram = Obs.Metric.Histogram
module Family = Obs.Metric.Family

let requests_family =
  Family.counter ~help:"Requests received, by wire frame type"
    ~label_names:[ "type" ] "serve_requests_total"

(* One child per frame type, bound at init so the hot path never walks
   the family's label table. *)
let req_path_query = Family.labels requests_family [ "path_query" ]
let req_demand_update = Family.labels requests_family [ "demand_update" ]
let req_link_event = Family.labels requests_family [ "link_event" ]
let req_stats = Family.labels requests_family [ "stats" ]
let req_health = Family.labels requests_family [ "health" ]
let req_reload = Family.labels requests_family [ "reload" ]

(* Dispatch on the canonical wire name so the metric label and the
   protocol documentation can never drift apart. *)
let child_of = function
  | "path_query" -> req_path_query
  | "demand_update" -> req_demand_update
  | "link_event" -> req_link_event
  | "stats" -> req_stats
  | "health" -> req_health
  | _ -> req_reload

let observe_request req = Counter.incr (child_of (Wire.request_type req))

let latency =
  Histogram.create ~help:"Wall-clock seconds from frame decode to reply write"
    "serve_latency_seconds"

let swaps =
  Counter.create ~help:"Snapshot hot-swaps published by the recompute domain"
    "serve_snapshot_swaps_total"

let inflight =
  Gauge.create ~help:"Requests decoded but not yet answered" "serve_inflight_requests"

let connections =
  Counter.create ~help:"Binary-protocol connections accepted" "serve_connections_total"

let protocol_errors =
  Counter.create ~help:"Frames rejected as malformed" "serve_protocol_errors_total"

let recompute_errors =
  Counter.create ~help:"Background recomputes dropped after an exception"
    "serve_recompute_errors_total"

let recompute_seconds =
  Histogram.create ~help:"Wall-clock seconds per background table rebuild"
    "serve_recompute_seconds"

let http_requests =
  Counter.create ~help:"HTTP scrape endpoint requests served" "serve_http_requests_total"
