(* Admission control and request deadlines for the serve plane.

   The hot path is [admit]: an atomic in-flight read plus an atomic mode
   read, no lock and no allocation while the mode is steady. Transitions
   follow the same hysteresis idiom as [Core.Te]'s Normal/Degraded
   machine: crossing the in-flight ceiling enters Degraded and starts
   shedding; the server only returns to Normal after the in-flight count
   has stayed below the low watermark for a sustained streak, so a load
   spike cannot make the admission decision flap per request. *)

type config = {
  max_inflight : int;
  max_conns : int;
  request_budget_s : float;
  read_deadline_s : float;
  idle_timeout_s : float;
  degrade_low : float;
  recover_after_s : float;
}

let default =
  {
    max_inflight = 256;
    max_conns = 1024;
    request_budget_s = 1.0;
    read_deadline_s = 5.0;
    idle_timeout_s = 60.0;
    degrade_low = 0.5;
    recover_after_s = 1.0;
  }

(* Immutable so mode changes are single CAS publications: concurrent
   workers race on the transition, not on field writes. *)
type degraded = { d_since : float; d_low_since : float option }
type mode = Normal | Degraded of degraded

type verdict = Admit | Shed

type t = {
  cfg : config;
  inflight : int Atomic.t;
  conns : int Atomic.t;
  mode : mode Atomic.t;
}

let check_config cfg =
  if cfg.max_inflight < 0 then invalid_arg "Serve.Guard: negative max_inflight";
  if cfg.max_conns < 0 then invalid_arg "Serve.Guard: negative max_conns";
  if Float.is_nan cfg.request_budget_s || cfg.request_budget_s < 0.0 then
    invalid_arg "Serve.Guard: request budget must be a non-negative number";
  if Float.is_nan cfg.read_deadline_s || cfg.read_deadline_s < 0.0 then
    invalid_arg "Serve.Guard: read deadline must be a non-negative number";
  if Float.is_nan cfg.idle_timeout_s || cfg.idle_timeout_s < 0.0 then
    invalid_arg "Serve.Guard: idle timeout must be a non-negative number";
  if (not (cfg.degrade_low > 0.0)) || cfg.degrade_low > 1.0 then
    invalid_arg "Serve.Guard: degrade_low outside (0, 1]";
  if Float.is_nan cfg.recover_after_s || cfg.recover_after_s < 0.0 then
    invalid_arg "Serve.Guard: recovery streak must be a non-negative number"

let create cfg =
  check_config cfg;
  {
    cfg;
    inflight = Atomic.make 0;
    conns = Atomic.make 0;
    mode = Atomic.make Normal;
  }

let config t = t.cfg

(* Low watermark in requests: Degraded keeps shedding above this. At
   least 1 below the ceiling so hysteresis exists even for tiny caps. *)
let low_watermark cfg =
  let low = int_of_float (cfg.degrade_low *. float_of_int cfg.max_inflight) in
  let low = if low >= cfg.max_inflight then cfg.max_inflight - 1 else low in
  if low < 1 then 1 else low

(* Transitions are cold: losing a CAS race just means another worker
   published the same (or a fresher) transition. *)
let enter_degraded t ~now =
  match Atomic.get t.mode with
  | Degraded _ -> ()
  | Normal as cur ->
      if Atomic.compare_and_set t.mode cur (Degraded { d_since = now; d_low_since = None })
      then begin
        Obs.Metric.Counter.incr Metrics.degraded_entries;
        Obs.Metric.Gauge.set Metrics.guard_degraded 1.0
      end

let recover t cur d ~now =
  if Atomic.compare_and_set t.mode cur Normal then begin
    Obs.Metric.Histogram.observe Metrics.degraded_seconds (now -. d.d_since);
    Obs.Metric.Gauge.set Metrics.guard_degraded 0.0
  end

let admit t ~now =
  let cfg = t.cfg in
  if cfg.max_inflight <= 0 then Admit
  else begin
    let infl = Atomic.get t.inflight in
    match Atomic.get t.mode with
    | Normal ->
        if infl < cfg.max_inflight then Admit
        else begin
          enter_degraded t ~now;
          Shed
        end
    | Degraded d as cur ->
        if infl >= low_watermark cfg then begin
          (* Still hot: any low-water streak in progress is void. *)
          (match d.d_low_since with
          | None -> ()
          | Some _ ->
              ignore
                (Atomic.compare_and_set t.mode cur (Degraded { d with d_low_since = None })));
          Shed
        end
        else begin
          (match d.d_low_since with
          | None ->
              ignore
                (Atomic.compare_and_set t.mode cur (Degraded { d with d_low_since = Some now }))
          | Some since -> if now -. since >= cfg.recover_after_s then recover t cur d ~now);
          Admit
        end
  end

let enter t = Atomic.incr t.inflight
let leave t = Atomic.decr t.inflight
let inflight t = Atomic.get t.inflight
let degraded t = match Atomic.get t.mode with Normal -> false | Degraded _ -> true

let conn_opened t =
  if t.cfg.max_conns <= 0 then begin
    Atomic.incr t.conns;
    true
  end
  else begin
    let before = Atomic.fetch_and_add t.conns 1 in
    if before >= t.cfg.max_conns then begin
      Atomic.decr t.conns;
      false
    end
    else true
  end

let conn_closed t = Atomic.decr t.conns
let conns t = Atomic.get t.conns

(* --------------------------- deadlines ----------------------------- *)

let deadline t ~now =
  if t.cfg.request_budget_s <= 0.0 then Float.infinity else now +. t.cfg.request_budget_s

let expired ~deadline ~now = now > deadline

let remaining_s ~deadline ~now = Float.max 0.0 (deadline -. now)
