type t = {
  fd : Unix.file_descr;
  buf : Bytes.t;  (* reusable read chunk *)
  inbuf : Buffer.t;  (* undecoded reply bytes *)
  mutable alive : bool;
}

let chunk = 8192

let connect ?(host = "127.0.0.1") ~port () =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> Error (Printf.sprintf "not an IPv4/IPv6 literal: %s" host)
  | addr -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
      | () ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error (_e, _, _) -> ());
          Ok { fd; buf = Bytes.create chunk; inbuf = Buffer.create 256; alive = true }
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_e, _, _) -> ());
          Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message err)))

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error (_e, _, _) -> ()
  end

let write_all t s =
  let n = String.length s in
  let rec loop off =
    if off >= n then Ok ()
    else
      match Unix.write_substring t.fd s off (n - off) with
      | written -> loop (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  in
  loop 0

let rec read_reply t =
  let data = Buffer.contents t.inbuf in
  match Wire.decode_response data with
  | Ok (resp, next) ->
      let len = String.length data in
      Buffer.clear t.inbuf;
      Buffer.add_substring t.inbuf data next (len - next);
      Ok resp
  | Error Wire.Truncated -> (
      match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
      | 0 -> Error "connection closed by server"
      | n ->
          Buffer.add_subbytes t.inbuf t.buf 0 n;
          read_reply t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_reply t
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err))
  | Error e -> Error (Wire.error_to_string e)

let call t req =
  if not t.alive then Error "connection already closed"
  else
    match write_all t (Wire.encode_request req) with
    | Error e -> Error e
    | Ok () -> read_reply t

(* ------------------------------- http ------------------------------ *)

let header_end raw =
  let n = String.length raw in
  let rec scan i =
    if i + 3 >= n then None
    else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r' && raw.[i + 3] = '\n'
    then Some (i + 4)
    else scan (i + 1)
  in
  scan 0

let parse_http raw =
  match header_end raw with
  | None -> Error "malformed HTTP response: no header terminator"
  | Some body_at -> (
      match String.index_opt raw ' ' with
      | None -> Error "malformed HTTP status line"
      | Some sp ->
          let code_end =
            match String.index_from_opt raw (sp + 1) ' ' with Some j -> j | None -> body_at
          in
          let code = String.sub raw (sp + 1) (code_end - sp - 1) in
          if String.equal code "200" then
            Ok (String.sub raw body_at (String.length raw - body_at))
          else Error ("HTTP status " ^ code))

let slurp t =
  let rec go () =
    match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
    | 0 -> Ok (Buffer.contents t.inbuf)
    | n ->
        Buffer.add_subbytes t.inbuf t.buf 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  in
  go ()

let http_get ?(host = "127.0.0.1") ~port ~path () =
  match connect ~host ~port () with
  | Error e -> Error e
  | Ok t -> (
      let request = Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" path host in
      let raw =
        match write_all t request with Error e -> Error e | Ok () -> slurp t
      in
      close t;
      match raw with Error e -> Error e | Ok raw -> parse_http raw)
