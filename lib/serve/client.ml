type t = {
  fd : Unix.file_descr;
  buf : Bytes.t;  (* reusable read chunk *)
  inbuf : Buffer.t;  (* undecoded reply bytes *)
  mutable alive : bool;
}

let chunk = 8192

let finish_connect fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error (_e, _, _) -> ());
  Ok { fd; buf = Bytes.create chunk; inbuf = Buffer.create 256; alive = true }

(* Bounded connect: non-blocking connect, select on writability, then
   SO_ERROR tells refused from established. *)
let connect_deadline fd sockaddr tmo =
  Unix.set_nonblock fd;
  let outcome =
    match Unix.connect fd sockaddr with
    | () -> Ok ()
    | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
        match Unix.select [] [ fd ] [] tmo with
        | _, [], _ ->
            Obs.Metric.Counter.incr Metrics.client_timeouts;
            Error "connect timed out"
        | _, _ :: _, _ -> (
            match Unix.getsockopt_error fd with
            | None -> Ok ()
            | Some err -> Error (Unix.error_message err))
        | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err))
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  in
  (match outcome with Ok () -> Unix.clear_nonblock fd | Error _ -> ());
  outcome

let connect ?(host = "127.0.0.1") ?timeout_s ~port () =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> Error (Printf.sprintf "not an IPv4/IPv6 literal: %s" host)
  | addr -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      let sockaddr = Unix.ADDR_INET (addr, port) in
      let fail msg =
        (try Unix.close fd with Unix.Unix_error (_e, _, _) -> ());
        Error (Printf.sprintf "connect %s:%d: %s" host port msg)
      in
      match timeout_s with
      | Some tmo when tmo > 0.0 -> (
          match connect_deadline fd sockaddr tmo with
          | Ok () -> finish_connect fd
          | Error msg -> fail msg)
      | Some _ | None -> (
          match Unix.connect fd sockaddr with
          | () -> finish_connect fd
          | exception Unix.Unix_error (err, _, _) -> fail (Unix.error_message err)))

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error (_e, _, _) -> ()
  end

let write_all t s =
  let n = String.length s in
  let rec loop off =
    if off >= n then Ok ()
    else
      match Unix.write_substring t.fd s off (n - off) with
      | written -> loop (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  in
  loop 0

(* True when the fd turns readable before [deadline]; an infinite
   deadline skips the select and lets the read block. *)
let wait_readable fd ~deadline =
  if not (Float.is_finite deadline) then true
  else begin
    let remaining = deadline -. Obs.Clock.now_s () in
    if remaining <= 0.0 then false
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> false
      | _ :: _, _, _ -> true
      | exception Unix.Unix_error (_e, _, _) -> true (* the read reports it *)
  end

let rec read_reply t ~deadline =
  let data = Buffer.contents t.inbuf in
  match Wire.decode_response data with
  | Ok (resp, next) ->
      let len = String.length data in
      Buffer.clear t.inbuf;
      Buffer.add_substring t.inbuf data next (len - next);
      Ok resp
  | Error Wire.Truncated ->
      if not (wait_readable t.fd ~deadline) then begin
        Obs.Metric.Counter.incr Metrics.client_timeouts;
        Error "timed out waiting for reply"
      end
      else (
        match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
        | 0 -> Error "connection closed by server"
        | n ->
            Buffer.add_subbytes t.inbuf t.buf 0 n;
            read_reply t ~deadline
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_reply t ~deadline
        | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err))
  | Error e -> Error (Wire.error_to_string e)

let call ?timeout_s t req =
  if not t.alive then Error "connection already closed"
  else
    let deadline =
      match timeout_s with
      | Some s when s > 0.0 -> Obs.Clock.now_s () +. s
      | Some _ | None -> Float.infinity
    in
    match write_all t (Wire.encode_request req) with
    | Error e -> Error e
    | Ok () -> read_reply t ~deadline

(* ------------------------------ retries ---------------------------- *)

let idempotent = function
  | Wire.Path_query _ | Wire.Stats | Wire.Health -> true
  | Wire.Demand_update _ | Wire.Link_event _ | Wire.Reload -> false

type retry = { attempts : int; base_backoff_s : float; max_backoff_s : float; seed : int }

let default_retry = { attempts = 3; base_backoff_s = 0.05; max_backoff_s = 1.0; seed = 7 }

(* Exponential backoff with full jitter: uniform in [0, min(max, base *
   2^try)). Seeded, so a fixed-seed harness gets a fixed schedule. *)
let backoff_s retry prng ~try_ =
  let cap =
    Float.min
      (Float.max 0.0 retry.max_backoff_s)
      (Float.max 0.0 retry.base_backoff_s *. float_of_int (1 lsl Int.min try_ 16))
  in
  Eutil.Prng.range prng 0.0 cap

let retriable_reply = function
  | Wire.Error_reply { code; _ } -> code = Wire.err_overloaded || code = Wire.err_deadline
  | _ -> false

let request ?host ?connect_timeout_s ?timeout_s ?retry ~port req =
  let with_retry = (match retry with Some _ -> true | None -> false) && idempotent req in
  let rcfg = match retry with Some r -> r | None -> default_retry in
  let attempts = if with_retry then Int.max 1 rcfg.attempts else 1 in
  let prng = Eutil.Prng.create rcfg.seed in
  let rec go try_ =
    let outcome =
      match connect ?host ?timeout_s:connect_timeout_s ~port () with
      | Error e -> Error e
      | Ok c ->
          let r = call ?timeout_s c req in
          close c;
          r
    in
    let transient =
      match outcome with Ok resp -> retriable_reply resp | Error _ -> true
    in
    if transient && try_ + 1 < attempts then begin
      Obs.Metric.Counter.incr Metrics.client_retries;
      Unix.sleepf (backoff_s rcfg prng ~try_);
      go (try_ + 1)
    end
    else outcome
  in
  go 0

(* ------------------------------- http ------------------------------ *)

let header_end raw =
  let n = String.length raw in
  let rec scan i =
    if i + 3 >= n then None
    else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r' && raw.[i + 3] = '\n'
    then Some (i + 4)
    else scan (i + 1)
  in
  scan 0

let parse_http raw =
  match header_end raw with
  | None -> Error "malformed HTTP response: no header terminator"
  | Some body_at -> (
      match String.index_opt raw ' ' with
      | None -> Error "malformed HTTP status line"
      | Some sp ->
          let code_end =
            match String.index_from_opt raw (sp + 1) ' ' with Some j -> j | None -> body_at
          in
          let code = String.sub raw (sp + 1) (code_end - sp - 1) in
          if String.equal code "200" then
            Ok (String.sub raw body_at (String.length raw - body_at))
          else Error ("HTTP status " ^ code))

let slurp t =
  let rec go () =
    match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
    | 0 -> Ok (Buffer.contents t.inbuf)
    | n ->
        Buffer.add_subbytes t.inbuf t.buf 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  in
  go ()

let http_get ?(host = "127.0.0.1") ~port ~path () =
  match connect ~host ~port () with
  | Error e -> Error e
  | Ok t -> (
      let request = Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" path host in
      let raw =
        match write_all t request with Error e -> Error e | Ok () -> slurp t
      in
      close t;
      match raw with Error e -> Error e | Ok raw -> parse_http raw)
