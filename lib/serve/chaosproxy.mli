(** Fault-injecting loopback TCP proxy, the traffic half of the
    [respctl chaos-serve] drill: probes connect to {!port}, the proxy
    relays to a real respctld on [upstream_port], and the active
    {!fault} mangles the bytes in flight — in both directions, so the
    same knob exercises the daemon's decoder totality (corrupt requests)
    and the client's retry/timeout discipline (mangled replies).

    One background domain pumps every link with [select]
    ([Chaosproxy.proxy_loop], certified in [check/parallel.json]); the
    fault is an atomic the harness flips between probes. Randomness
    (corruption position/value, partial-write split) is seeded: equal
    seeds give equal fault streams, so drill outcomes golden-diff. *)

type fault =
  | Pass  (** relay faithfully *)
  | Delay of float  (** hold each burst this many seconds *)
  | Partial_write  (** split each burst, 10 ms pause between halves *)
  | Truncate of int
      (** drop the last [n] bytes of the burst, then close the link —
          the receiver holds a frame that can never complete *)
  | Corrupt  (** flip one seeded-random byte per burst *)
  | Reset  (** close with linger 0: the peer sees a TCP reset *)
  | Blackhole  (** swallow bytes; the connection stays open *)

type t

val start : ?seed:int -> upstream_port:int -> unit -> t
(** Binds an ephemeral loopback listener and spawns the pump domain.
    Starts in {!Pass}. Upstream connections are dialed per accepted
    probe; a probe whose upstream dial fails is closed immediately.
    @raise Unix.Unix_error when the listener cannot bind. *)

val port : t -> int
(** The proxy's listening port — point clients here. *)

val set_fault : t -> fault -> unit
(** Applies to traffic pumped from now on; in-flight bytes are not
    recalled. *)

val fault : t -> fault

val stop : t -> unit
(** Joins the pump domain and closes the listener and every link.
    Idempotent. *)
