(** Admission control, overload shedding, and request deadlines.

    One {!t} guards a server: workers consult {!admit} once per decoded
    request (an atomic in-flight read plus an atomic mode read — no lock,
    no allocation while the mode is steady, which is why [Guard.admit] is
    declared hot in [check/cost.json]) and bracket request handling with
    {!enter}/{!leave}. The accept loop consults {!conn_opened} per
    accepted binary connection.

    Overload follows a Normal/Degraded hysteresis machine mirroring
    [Core.Te]: the first request to find the in-flight count at
    [max_inflight] trips the guard into Degraded, where every request is
    shed with [err_overloaded] until the in-flight count has stayed below
    the [degrade_low] watermark for [recover_after_s] seconds — so a
    server at the edge of its capacity sheds in sustained bursts instead
    of flapping per request. Transitions publish the
    [serve_guard_degraded] gauge and the [serve_degraded_seconds]
    histogram. *)

type config = {
  max_inflight : int;  (** admission ceiling; 0 disables shedding *)
  max_conns : int;  (** binary connection cap; 0 disables the cap *)
  request_budget_s : float;  (** per-request deadline; 0 disables it *)
  read_deadline_s : float;
      (** a partial frame must complete within this (anti slow-loris);
          0 disables the read deadline *)
  idle_timeout_s : float;  (** reap connections idle this long; 0 = never *)
  degrade_low : float;  (** low watermark, fraction of [max_inflight] *)
  recover_after_s : float;  (** sustained low-water streak before Normal *)
}

val default : config
(** 256 in-flight, 1024 connections, 1 s request budget, 5 s read
    deadline, 60 s idle timeout, recover below 50% after 1 s. *)

type t

type verdict = Admit | Shed

val create : config -> t
(** Starts in Normal with zero in-flight requests and connections.
    @raise Invalid_argument on a negative bound, a NaN/negative time, or
    [degrade_low] outside (0, 1]. *)

val config : t -> config

val admit : t -> now:float -> verdict
(** The admission decision for one decoded request at monotonic time
    [now]. [Shed] means answer [err_overloaded] without executing.
    Lock-free; mode transitions happen inside as CAS publications. *)

val enter : t -> unit
(** Count one admitted request in flight (before handling). *)

val leave : t -> unit
(** Release {!enter}'s slot (after the reply is written). *)

val inflight : t -> int

val degraded : t -> bool
(** Whether the guard is currently shedding (Degraded mode). *)

val conn_opened : t -> bool
(** Claim a connection slot; [false] means the cap is reached and the
    caller must close the socket without serving it. *)

val conn_closed : t -> unit
(** Release a slot claimed by a successful {!conn_opened}. *)

val conns : t -> int

(** {1 Deadlines}

    A deadline is an absolute monotonic timestamp. The server stamps one
    per request batch on arrival ({!deadline}) and checks it just before
    executing each decoded request; an expired request is answered with
    [err_deadline] instead of being executed late. *)

val deadline : t -> now:float -> float
(** [now + request_budget_s], or [infinity] when budgets are off. *)

val expired : deadline:float -> now:float -> bool

val remaining_s : deadline:float -> now:float -> float
(** Budget left, floored at 0; [infinity] when budgets are off. *)
