(* Fault-injecting TCP proxy for resilience drills.

   One background domain multiplexes every proxied connection with
   select; the active fault is an atomic the harness flips between
   probes, so a drill is: set_fault, run traffic, assert the outcome
   class, clear. All randomness (corruption positions and values,
   partial-write split points) comes from one seeded generator owned by
   the pump domain — equal seeds give equal fault byte streams, which is
   what lets the chaos goldens diff byte-for-byte. *)

type fault =
  | Pass
  | Delay of float
  | Partial_write
  | Truncate of int
  | Corrupt
  | Reset
  | Blackhole

type link = {
  cfd : Unix.file_descr;  (* the probing client *)
  sfd : Unix.file_descr;  (* upstream respctld *)
  mutable alive : bool;
}

type t = {
  listen : Unix.file_descr;
  lport : int;
  upstream_port : int;
  seed : int;
  fault : fault Atomic.t;
  stopping : bool Atomic.t;
  mutable pump : Eutil.Pool.Background.t option;
}

(* ------------------------------ plumbing --------------------------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error (_e, _, _) -> ()

let kill_link l =
  if l.alive then begin
    l.alive <- false;
    close_quiet l.cfd;
    close_quiet l.sfd
  end

(* RST instead of FIN: linger zero makes close send a reset, which is
   the "connection reset by peer" clients must survive. *)
let reset_link l =
  if l.alive then begin
    (try Unix.setsockopt_optint l.cfd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error (_e, _, _) -> ());
    kill_link l
  end

let write_all fd s =
  let n = String.length s in
  let rec loop off =
    if off >= n then true
    else
      match Unix.write_substring fd s off (n - off) with
      | written -> loop (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  try loop 0 with Unix.Unix_error (_e, _, _) -> false

(* --------------------------- fault injection ----------------------- *)

let forward prng fault l ~dst data =
  match fault with
  | Pass ->
      if not (write_all dst data) then kill_link l
  | Delay d ->
      Unix.sleepf (Float.max 0.0 d);
      if not (write_all dst data) then kill_link l
  | Partial_write ->
      (* Split the burst and pause between the halves: the receiver sees
         a dangling partial frame before the rest lands. *)
      let n = String.length data in
      let cut = if n <= 1 then n else 1 + Eutil.Prng.int prng (n - 1) in
      if not (write_all dst (String.sub data 0 cut)) then kill_link l
      else begin
        Unix.sleepf 0.01;
        if not (write_all dst (String.sub data cut (n - cut))) then kill_link l
      end
  | Truncate drop ->
      (* Deliver a prefix, then close: the receiver holds a frame that
         can never complete. *)
      let keep = Int.max 0 (String.length data - Int.max 0 drop) in
      ignore (write_all dst (String.sub data 0 keep));
      kill_link l
  | Corrupt ->
      let b = Bytes.of_string data in
      let n = Bytes.length b in
      if n > 0 then begin
        let pos = Eutil.Prng.int prng n in
        let flip = 1 + Eutil.Prng.int prng 255 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip land 0xff))
      end;
      if not (write_all dst (Bytes.to_string b)) then kill_link l
  | Reset -> reset_link l
  | Blackhole -> () (* swallow the bytes; the connection stays up *)

(* ------------------------------ pump loop -------------------------- *)

let accept_link t links =
  match Unix.accept ~cloexec:true t.listen with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | cfd, _addr -> (
      let sfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect sfd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.upstream_port)) with
      | () ->
          (try Unix.setsockopt cfd Unix.TCP_NODELAY true
           with Unix.Unix_error (_e, _, _) -> ());
          (try Unix.setsockopt sfd Unix.TCP_NODELAY true
           with Unix.Unix_error (_e, _, _) -> ());
          links := { cfd; sfd; alive = true } :: !links
      | exception Unix.Unix_error (_e, _, _) ->
          close_quiet sfd;
          close_quiet cfd)

let pump_fd t prng buf l fd =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_e, _, _) -> kill_link l
  | 0 -> kill_link l
  | n ->
      let data = Bytes.sub_string buf 0 n in
      let dst = if fd = l.cfd then l.sfd else l.cfd in
      forward prng (Atomic.get t.fault) l ~dst data

let pump_step t prng buf links =
  links := List.filter (fun l -> l.alive) !links;
  let fds =
    List.fold_left (fun acc l -> l.cfd :: l.sfd :: acc) [ t.listen ] !links
  in
  match Unix.select fds [] [] 0.25 with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = t.listen then accept_link t links
          else
            match List.find_opt (fun l -> l.alive && (fd = l.cfd || fd = l.sfd)) !links with
            | Some l -> pump_fd t prng buf l fd
            | None -> ())
        readable

let proxy_loop t =
  let prng = Eutil.Prng.create t.seed in
  let buf = Bytes.create 65536 in
  let links = ref [] in
  let rec go () =
    if Atomic.get t.stopping then ()
    else begin
      pump_step t prng buf links;
      go ()
    end
  in
  go ();
  List.iter kill_link !links

(* ------------------------------ lifecycle -------------------------- *)

let start ?(seed = 7) ~upstream_port () =
  let listen = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen Unix.SO_REUSEADDR true;
  (match Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) with
  | () -> ()
  | exception e ->
      close_quiet listen;
      raise e);
  Unix.listen listen 16;
  let lport =
    match Unix.getsockname listen with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  let t =
    {
      listen;
      lport;
      upstream_port;
      seed;
      fault = Atomic.make Pass;
      stopping = Atomic.make false;
      pump = None;
    }
  in
  t.pump <- Some (Eutil.Pool.Background.spawn 1 (fun _ -> proxy_loop t));
  t

let port t = t.lport
let set_fault t f = Atomic.set t.fault f
let fault t = Atomic.get t.fault

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (match t.pump with Some p -> Eutil.Pool.Background.join p | None -> ());
    t.pump <- None;
    close_quiet t.listen
  end
