type kind = Binary | Http

type conn = {
  fd : Unix.file_descr;
  kind : kind;
  inbuf : Buffer.t;
  mutable alive : bool;
  mutable last_activity : float;  (* last byte read; drives idle reaping *)
  mutable frame_started : float;  (* meaningful while [inbuf] holds a partial frame *)
}

(* Everything below [conns]/[rdbuf] is touched only by the owning worker
   domain; the queue is the cross-domain handoff and is mutex-guarded,
   with a self-pipe so a sleeping select notices new work. *)
type worker = {
  queue : (Unix.file_descr * kind) Queue.t;  (* guarded by [qlock] *)
  qlock : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  rdbuf : Bytes.t;
  wguard : Guard.t;  (* shared with the server and every other worker *)
  mutable last_reap : float;  (* sweeps are rate-limited, not per-frame *)
}

type config = {
  port : int;
  http_port : int;
  workers : int;
  backlog : int;
  guard : Guard.config;
}

let default_config =
  { port = 4710; http_port = 4711; workers = 2; backlog = 64; guard = Guard.default }

type t = {
  state : State.t;
  guard : Guard.t;
  stopping : bool Atomic.t;
  served : int Atomic.t;
  start_s : float;
  bin_listen : Unix.file_descr;
  http_listen : Unix.file_descr;
  bin_port : int;
  scrape_port : int;
  workers : worker array;
  next : int Atomic.t;
  mutable accepter : Eutil.Pool.Background.t option;
  mutable pool : Eutil.Pool.Background.t option;
}

(* ------------------------------ plumbing --------------------------- *)

let read_chunk = 65536
let wake_byte = Bytes.make 1 '!'

let make_worker guard =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  (* Both ends non-blocking: a full pipe must not stall the accept
     domain, and draining an already-drained pipe must not stall a
     worker (the reader runs on select readiness OR on shutdown). *)
  Unix.set_nonblock wake_w;
  Unix.set_nonblock wake_r;
  {
    queue = Queue.create ();
    qlock = Mutex.create ();
    wake_r;
    wake_w;
    conns = Hashtbl.create 16;
    rdbuf = Bytes.create read_chunk;
    wguard = guard;
    last_reap = Obs.Clock.now_s ();
  }

let wake w = try ignore (Unix.write w.wake_w wake_byte 0 1) with Unix.Unix_error (_e, _, _) -> ()

let dispatch w fd kind =
  Mutex.lock w.qlock;
  Queue.push (fd, kind) w.queue;
  Mutex.unlock w.qlock;
  wake w

let make_conn fd kind =
  let now = Obs.Clock.now_s () in
  { fd; kind; inbuf = Buffer.create 256; alive = true; last_activity = now; frame_started = now }

let close_conn st c =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.remove st.conns c.fd;
    (match c.kind with Binary -> Guard.conn_closed st.wguard | Http -> ());
    try Unix.close c.fd with Unix.Unix_error (_e, _, _) -> ()
  end

let send st c payload =
  let n = String.length payload in
  let rec loop off =
    if off < n then
      match Unix.write_substring c.fd payload off (n - off) with
      | written -> loop (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  (* The peer may vanish mid-reply (EPIPE/ECONNRESET with SIGPIPE
     ignored): its connection just goes away. *)
  try loop 0 with Unix.Unix_error (_e, _, _) -> close_conn st c

(* ---------------------------- dispatching -------------------------- *)

let stats srv =
  {
    Wire.s_version = State.version srv.state;
    s_swaps = State.swap_count srv.state;
    s_served = Atomic.get srv.served;
    s_uptime_s = Obs.Clock.now_s () -. srv.start_s;
    s_levels = State.levels_activated srv.state;
    s_power_percent = State.power_percent srv.state;
  }

let handle_request srv req =
  match req with
  | Wire.Path_query { origin; dest } ->
      let status, level, nodes = State.resolve srv.state ~origin ~dest in
      Wire.Path_reply { status; level; nodes }
  | Wire.Demand_update { origin; dest; bps } -> (
      match State.update_demand srv.state ~origin ~dest ~bps with
      | Ok version -> Wire.Ack { version }
      | Error message -> Wire.Error_reply { code = Wire.err_bad_argument; message })
  | Wire.Link_event { link; up } -> (
      match State.set_link srv.state ~link ~up with
      | Ok version -> Wire.Ack { version }
      | Error message -> Wire.Error_reply { code = Wire.err_bad_argument; message })
  | Wire.Stats -> Wire.Stats_reply (stats srv)
  | Wire.Health -> Wire.Health_reply { healthy = true; version = State.version srv.state }
  | Wire.Reload ->
      (* A reload that lands during shutdown would wait on a recompute
         domain that is already draining; refuse it instead. *)
      if Atomic.get srv.stopping then
        Wire.Error_reply { code = Wire.err_shutting_down; message = "server is shutting down" }
      else Wire.Ack { version = State.reload srv.state }

let shed st c =
  Obs.Metric.Counter.incr Metrics.sheds;
  send st c
    (Wire.encode_response
       (Wire.Error_reply
          { code = Wire.err_overloaded; message = "server overloaded; retry with backoff" }))

let deadline_hit st c =
  Obs.Metric.Counter.incr Metrics.deadline_hits;
  send st c
    (Wire.encode_response
       (Wire.Error_reply
          { code = Wire.err_deadline; message = "request deadline expired before execution" }))

(* [arrival] is when the frame's first byte was read — the deadline
   budget covers queueing and partial reads, not just execution. Shed
   and deadline replies leave the connection open: both are explicit
   typed responses the client backoff logic keys on. *)
let respond srv st c ~arrival req =
  Metrics.observe_request req;
  let now = Obs.Clock.now_s () in
  match Guard.admit srv.guard ~now with
  | Guard.Shed -> shed st c
  | Guard.Admit ->
      let deadline = Guard.deadline srv.guard ~now:arrival in
      if Guard.expired ~deadline ~now then deadline_hit st c
      else begin
        Guard.enter srv.guard;
        Obs.Metric.Gauge.add Metrics.inflight 1.0;
        let reply =
          Obs.Metric.Histogram.time Metrics.latency (fun () -> handle_request srv req)
        in
        Obs.Metric.Gauge.add Metrics.inflight (-1.0);
        Guard.leave srv.guard;
        Atomic.incr srv.served;
        send st c (Wire.encode_response reply)
      end

let protocol_error st c e =
  Obs.Metric.Counter.incr Metrics.protocol_errors;
  let message = Wire.error_to_string e in
  send st c (Wire.encode_response (Wire.Error_reply { code = Wire.err_malformed; message }));
  close_conn st c

let drain_binary srv st c =
  let data = Buffer.contents c.inbuf in
  let len = String.length data in
  let arrival = c.frame_started in
  let rec go pos =
    if (not c.alive) || pos >= len then pos
    else
      match Wire.decode_request ~pos data with
      | Ok (req, next) ->
          respond srv st c ~arrival req;
          go next
      | Error Wire.Truncated -> pos
      | Error e ->
          protocol_error st c e;
          len
  in
  let consumed = go 0 in
  if c.alive && consumed > 0 then begin
    Buffer.clear c.inbuf;
    Buffer.add_substring c.inbuf data consumed (len - consumed);
    (* Whatever is left is the start of a fresh partial frame: its read
       deadline runs from now, not from the answered batch's arrival. *)
    if len > consumed then c.frame_started <- Obs.Clock.now_s ()
  end

(* ------------------------------- http ------------------------------ *)

let http_headers_complete data =
  let n = String.length data in
  let rec scan i =
    if i + 3 >= n then false
    else if data.[i] = '\r' && data.[i + 1] = '\n' && data.[i + 2] = '\r' && data.[i + 3] = '\n'
    then true
    else scan (i + 1)
  in
  scan 0

let request_target data =
  match String.index_opt data ' ' with
  | None -> None
  | Some sp1 -> (
      match String.index_from_opt data (sp1 + 1) ' ' with
      | None -> None
      | Some sp2 -> Some (String.sub data 0 sp1, String.sub data (sp1 + 1) (sp2 - sp1 - 1)))

let http_page ~content_type body =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    content_type (String.length body) body

let http_not_found =
  "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"

let http_reply srv data =
  match request_target data with
  | Some ("GET", "/metrics") ->
      http_page ~content_type:"text/plain; version=0.0.4" (Obs.Export.prometheus_page ())
  | Some ("GET", "/healthz") ->
      http_page ~content_type:"application/json"
        (Printf.sprintf "{\"status\":\"ok\",\"version\":%d,\"served\":%d}"
           (State.version srv.state) (Atomic.get srv.served))
  | _ -> http_not_found

let drain_http srv st c =
  let data = Buffer.contents c.inbuf in
  if http_headers_complete data then begin
    Obs.Metric.Counter.incr Metrics.http_requests;
    send st c (http_reply srv data);
    close_conn st c
  end

(* ---------------------------- worker loop -------------------------- *)

let add_conn st fd kind = Hashtbl.replace st.conns fd (make_conn fd kind)

let drain_wake st =
  (try ignore (Unix.read st.wake_r st.rdbuf 0 64) with Unix.Unix_error (_e, _, _) -> ());
  let rec pop () =
    Mutex.lock st.qlock;
    let item = if Queue.is_empty st.queue then None else Some (Queue.pop st.queue) in
    Mutex.unlock st.qlock;
    match item with
    | None -> ()
    | Some (fd, kind) ->
        add_conn st fd kind;
        pop ()
  in
  pop ()

let handle_conn srv st c =
  match Unix.read c.fd st.rdbuf 0 (Bytes.length st.rdbuf) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_e, _, _) -> close_conn st c
  | 0 -> close_conn st c
  | n -> (
      let now = Obs.Clock.now_s () in
      c.last_activity <- now;
      if Buffer.length c.inbuf = 0 then c.frame_started <- now;
      Buffer.add_subbytes c.inbuf st.rdbuf 0 n;
      match c.kind with Binary -> drain_binary srv st c | Http -> drain_http srv st c)

let handle_ready srv st fd =
  match Hashtbl.find_opt st.conns fd with
  | Some c -> handle_conn srv st c
  | None -> drain_wake st (* the only non-connection fd in the set is the self-pipe *)

let live_fds st = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.conns []

(* Connection reaper, run by each worker over its own connections at
   most once a second: idle connections past the idle timeout go first;
   a connection sitting on a partial frame past the read deadline is a
   slow-loris hold on a worker slot and is cut too. Sweeping live_fds
   (not the Hashtbl directly) keeps removal during iteration safe. *)
let reap_deadline = 1.0

let reap_idle st ~now =
  let cfg = Guard.config st.wguard in
  if now -. st.last_reap >= reap_deadline then begin
    st.last_reap <- now;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt st.conns fd with
        | None -> ()
        | Some c ->
            if
              cfg.Guard.read_deadline_s > 0.0
              && Buffer.length c.inbuf > 0
              && now -. c.frame_started > cfg.Guard.read_deadline_s
            then begin
              Obs.Metric.Counter.incr Metrics.reaped_read_deadline;
              close_conn st c
            end
            else if
              cfg.Guard.idle_timeout_s > 0.0
              && now -. c.last_activity > cfg.Guard.idle_timeout_s
            then begin
              Obs.Metric.Counter.incr Metrics.reaped_idle;
              close_conn st c
            end)
      (live_fds st)
  end

let worker_step srv st =
  (match Unix.select (st.wake_r :: live_fds st) [] [] 0.5 with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | readable, _, _ -> List.iter (fun fd -> handle_ready srv st fd) readable);
  reap_idle st ~now:(Obs.Clock.now_s ())

(* Answer whatever is already readable, then close everything: requests
   that reached the kernel before shutdown still get their replies. *)
let final_drain srv st =
  drain_wake st;
  (match Unix.select (live_fds st) [] [] 0.0 with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | readable, _, _ -> List.iter (fun fd -> handle_ready srv st fd) readable);
  List.iter
    (fun fd ->
      match Hashtbl.find_opt st.conns fd with Some c -> close_conn st c | None -> ())
    (live_fds st);
  try Unix.close st.wake_r with Unix.Unix_error (_e, _, _) -> ()

let rec worker_loop srv st =
  if Atomic.get srv.stopping then final_drain srv st
  else begin
    worker_step srv st;
    worker_loop srv st
  end

(* ---------------------------- accept loop -------------------------- *)

let accept_one srv lfd =
  let kind = if lfd = srv.bin_listen then Binary else Http in
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | fd, _addr ->
      if kind = Binary && not (Guard.conn_opened srv.guard) then begin
        (* Over the connection cap: refuse at the door rather than let an
           fd flood starve the workers. The slot was never granted, so
           nothing to give back. *)
        Obs.Metric.Counter.incr Metrics.conns_refused;
        try Unix.close fd with Unix.Unix_error (_e, _, _) -> ()
      end
      else begin
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error (_e, _, _) -> ());
        if kind = Binary then Obs.Metric.Counter.incr Metrics.connections;
        let k = Atomic.fetch_and_add srv.next 1 in
        dispatch srv.workers.(k mod Array.length srv.workers) fd kind
      end

let accept_step srv =
  match Unix.select [ srv.bin_listen; srv.http_listen ] [] [] 0.25 with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | readable, _, _ -> List.iter (fun lfd -> accept_one srv lfd) readable

let rec accept_loop srv =
  if Atomic.get srv.stopping then ()
  else begin
    accept_step srv;
    accept_loop srv
  end

(* ------------------------------ lifecycle -------------------------- *)

let listen_on ~backlog port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error (_e, _, _) -> ());
      raise e);
  Unix.listen fd backlog;
  let actual = match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port in
  (fd, actual)

let start ?(config = default_config) state =
  (* A dying peer must not kill the process: EPIPE comes back as a
     Unix_error on the write instead. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Validate the guard before binding anything: a bad config must not
     leave bound listeners behind. *)
  let guard = Guard.create config.guard in
  let bin_listen, bin_port = listen_on ~backlog:config.backlog config.port in
  let http_listen, scrape_port =
    match listen_on ~backlog:config.backlog config.http_port with
    | r -> r
    | exception e ->
        (try Unix.close bin_listen with Unix.Unix_error (_e, _, _) -> ());
        raise e
  in
  let srv =
    {
      state;
      guard;
      stopping = Atomic.make false;
      served = Atomic.make 0;
      start_s = Obs.Clock.now_s ();
      bin_listen;
      http_listen;
      bin_port;
      scrape_port;
      workers = Array.init (max 1 config.workers) (fun _ -> make_worker guard);
      next = Atomic.make 0;
      accepter = None;
      pool = None;
    }
  in
  srv.pool <-
    Some (Eutil.Pool.Background.spawn (Array.length srv.workers) (fun i -> worker_loop srv srv.workers.(i)));
  srv.accepter <- Some (Eutil.Pool.Background.spawn 1 (fun _ -> accept_loop srv));
  srv

let port srv = srv.bin_port
let http_port srv = srv.scrape_port
let served srv = Atomic.get srv.served
let guard srv = srv.guard

let stop srv =
  if not (Atomic.exchange srv.stopping true) then begin
    (* Closing the listeners wakes the accept select immediately; the
       loop re-checks the flag and exits. *)
    (try Unix.close srv.bin_listen with Unix.Unix_error (_e, _, _) -> ());
    (try Unix.close srv.http_listen with Unix.Unix_error (_e, _, _) -> ());
    (match srv.accepter with Some p -> Eutil.Pool.Background.join p | None -> ());
    srv.accepter <- None;
    Array.iter wake srv.workers;
    (match srv.pool with Some p -> Eutil.Pool.Background.join p | None -> ());
    srv.pool <- None;
    Array.iter
      (fun w -> try Unix.close w.wake_w with Unix.Unix_error (_e, _, _) -> ())
      srv.workers
  end
