(** Blocking respctld client: one TCP connection, strict
    request-then-response, used by [respctl query] and as the per-probe
    primitive of simple harnesses ({!Load} multiplexes its own sockets).

    Errors (refused connection, mid-read EOF, malformed reply, missed
    deadline) come back as [Error msg]; the only exceptions escaping are
    the programmer errors {!Wire.encode_request} documents. *)

type t

val connect : ?host:string -> ?timeout_s:float -> port:int -> unit -> (t, string) result
(** TCP connect with [TCP_NODELAY]; [host] defaults to 127.0.0.1. With
    [timeout_s] > 0 the connect is bounded (non-blocking connect +
    select); a miss counts on [serve_client_timeouts_total]. *)

val call : ?timeout_s:float -> t -> Wire.request -> (Wire.response, string) result
(** Sends one frame and blocks for the matching reply — at most
    [timeout_s] seconds when given (> 0). After an [Error _] the
    connection state is undefined; {!close} it. *)

val close : t -> unit
(** Idempotent. *)

val idempotent : Wire.request -> bool
(** True for requests safe to retry blindly ([path_query], [stats],
    [health]); false for state-changing ones ([demand_update],
    [link_event], [reload]). *)

type retry = {
  attempts : int;  (** total tries, the first included (floored at 1) *)
  base_backoff_s : float;  (** backoff cap doubles from this per retry *)
  max_backoff_s : float;
  seed : int;  (** jitter PRNG seed — equal seeds, equal schedules *)
}

val default_retry : retry
(** 3 attempts, 50 ms base, 1 s cap, seed 7. *)

val request :
  ?host:string ->
  ?connect_timeout_s:float ->
  ?timeout_s:float ->
  ?retry:retry ->
  port:int ->
  Wire.request ->
  (Wire.response, string) result
(** One-shot call: connect, send, await the reply, close. With [retry],
    {!idempotent} requests are re-attempted on transport errors,
    timeouts, and [err_overloaded]/[err_deadline] replies, sleeping a
    seeded full-jitter exponential backoff between tries (counted on
    [serve_client_retries_total]); non-idempotent requests never retry.
    The last outcome is returned when the budget runs out. *)

val http_get : ?host:string -> port:int -> path:string -> unit -> (string, string) result
(** One-shot HTTP/1.0 GET against the scrape endpoint; returns the body
    of a 200, [Error _] on any other status or transport failure. *)
