(** Blocking respctld client: one TCP connection, strict
    request-then-response, used by [respctl query] and as the per-probe
    primitive of simple harnesses ({!Load} multiplexes its own sockets).

    Errors (refused connection, mid-read EOF, malformed reply) come back
    as [Error msg]; the only exceptions escaping are the programmer
    errors {!Wire.encode_request} documents. *)

type t

val connect : ?host:string -> port:int -> unit -> (t, string) result
(** TCP connect with [TCP_NODELAY]; [host] defaults to 127.0.0.1. *)

val call : t -> Wire.request -> (Wire.response, string) result
(** Sends one frame and blocks for the matching reply. After an
    [Error _] the connection state is undefined; {!close} it. *)

val close : t -> unit
(** Idempotent. *)

val http_get : ?host:string -> port:int -> path:string -> unit -> (string, string) result
(** One-shot HTTP/1.0 GET against the scrape endpoint; returns the body
    of a 200, [Error _] on any other status or transport failure. *)
