(** Closed-loop load generator for respctld: [conns] concurrent
    connections, each with at most one pending [path_query] (the classic
    closed-loop model, so offered load never outruns the server by more
    than [conns] requests), multiplexed from one domain with [select].
    An optional rate cap paces fresh sends against the shared run clock;
    an optional mid-run [reload] goes over a dedicated control
    connection so measurement connections never stall on it.

    The generator degrades instead of hanging: a reply that misses
    [timeout_s] replaces its socket and retries; overload/deadline
    rejections retry with seeded exponential backoff and full jitter (up
    to [retries] per request — path queries are idempotent); and
    [breaker_failures] consecutive failures open a circuit breaker that
    pauses sends for [breaker_cooldown_s], then probes with a single
    request (half-open) before resuming. A retry budget exhausted counts
    the request as failed, so the [respctl load] exit gate accounts for
    sheds that never recovered.

    Latencies are recorded per reply and reported as exact percentiles
    of the full sample set (no histogram error) — the numbers behind the
    serve section of [BENCH_baseline.json] and the [respctl load] SLO
    gate. *)

type config = {
  host : string;
  port : int;
  conns : int;  (** concurrent connections (floored at 1) *)
  rate : float;  (** target aggregate QPS; 0 = open throttle *)
  duration_s : float;  (** timed mode: stop issuing after this long *)
  requests : int;  (** when > 0, fixed-count mode overrides the timer *)
  pairs : (int * int) array;  (** origin/dest cycle, in order *)
  reload_at : float option;  (** seconds into the run *)
  timeout_s : float;  (** per-attempt reply deadline; 0 disables *)
  retries : int;  (** retry budget per request (timeouts/sheds) *)
  backoff_s : float;  (** base backoff; exponential with full jitter *)
  seed : int;  (** jitter PRNG seed — equal seeds, equal schedules *)
  breaker_failures : int;  (** consecutive failures to open; 0 disables *)
  breaker_cooldown_s : float;  (** open time before the half-open probe *)
}

val default : config
(** Loopback port 4710, 4 connections, open throttle, 3 s, no reload;
    5 s timeout, 2 retries at 50 ms base backoff (seed 11), breaker at
    16 consecutive failures with a 0.5 s cooldown. [pairs] is empty and
    must be provided. *)

type report = {
  sent : int;  (** frames on the wire, retries included *)
  completed : int;  (** path replies received (any status) *)
  failed : int;  (** requests lost for good: transport failures, hard
                     error replies, and retry budgets exhausted *)
  wrong : int;  (** replies of an unexpected type *)
  reloads : int;  (** acknowledged mid-run reloads *)
  timeouts : int;  (** attempts whose reply missed [timeout_s] *)
  retried : int;  (** attempts re-sent after backoff *)
  sheds : int;  (** [err_overloaded] replies received *)
  breaker_opens : int;  (** closed/half-open to open transitions *)
  error_codes : (string * int) list;
      (** error replies by {!Wire.error_code_name}, code order *)
  duration_s : float;
  qps : float;  (** completed / duration *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run : config -> (report, string) result
(** [Error _] only on setup problems (bad config, connection refused);
    failures during the run are counted in the report instead. The run
    always terminates: issuing stops at the duration/request budget and
    a stall cutoff bounds the drain even if the server blackholes every
    reply. *)

val to_json : report -> string
(** One deterministic JSON object (non-finite numbers render as null);
    accepted by {!Obs.Export.validate_json}. *)

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line summary. *)
