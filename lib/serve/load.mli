(** Closed-loop load generator for respctld: [conns] concurrent
    connections, each with exactly one outstanding [path_query] (the
    classic closed-loop model, so offered load never outruns the server
    by more than [conns] requests), multiplexed from one domain with
    [select]. An optional rate cap paces sends against the shared run
    clock; an optional mid-run [reload] goes over a dedicated control
    connection so measurement connections never stall on it.

    Latencies are recorded per reply and reported as exact percentiles
    of the full sample set (no histogram error) — the numbers behind the
    serve section of [BENCH_baseline.json] and the [respctl load] SLO
    gate. *)

type config = {
  host : string;
  port : int;
  conns : int;  (** concurrent connections (floored at 1) *)
  rate : float;  (** target aggregate QPS; 0 = open throttle *)
  duration_s : float;  (** timed mode: stop issuing after this long *)
  requests : int;  (** when > 0, fixed-count mode overrides the timer *)
  pairs : (int * int) array;  (** origin/dest cycle, in order *)
  reload_at : float option;  (** seconds into the run *)
}

val default : config
(** Loopback port 4710, 4 connections, open throttle, 3 s, no reload;
    [pairs] is empty and must be provided. *)

type report = {
  sent : int;
  completed : int;  (** path replies received (any status) *)
  failed : int;  (** transport failures + server error replies *)
  wrong : int;  (** replies of an unexpected type *)
  reloads : int;  (** acknowledged mid-run reloads *)
  duration_s : float;
  qps : float;  (** completed / duration *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run : config -> (report, string) result
(** [Error _] only on setup problems (bad config, connection refused);
    failures during the run are counted in the report instead. *)

val to_json : report -> string
(** One deterministic JSON object (non-finite numbers render as null);
    accepted by {!Obs.Export.validate_json}. *)

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line summary. *)
