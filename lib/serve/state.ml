type route = {
  r_level : int;
  r_links : int array;
  r_nodes : int list;  (* pre-compiled for the wire reply *)
}

type snapshot = {
  version : int;
  routes : (int * int, route array) Hashtbl.t;  (* read-only once published *)
  levels : int;
  power_percent : float;
}

type t = {
  graph : Topo.Graph.t;
  power : Power.Model.t;
  config : Response.Framework.config;
  jobs : int;
  pairs : (int * int) list;
  snap : snapshot Atomic.t;
  live_down : bool array Atomic.t;  (* copy-on-write; true = link down *)
  lock : Mutex.t;
  work : Condition.t;  (* generation advanced, or stopping *)
  done_ : Condition.t;  (* applied advanced, or stopping *)
  demand : Traffic.Matrix.t;  (* pending; guarded by [lock] *)
  base : Traffic.Matrix.t;  (* boot-time matrix, for journal checkpoints *)
  journal : Journal.t option;  (* appends/compactions under [lock] *)
  mutable generation : int;  (* guarded by [lock] *)
  mutable applied : int;  (* guarded by [lock] *)
  mutable stopped : bool;  (* guarded by [lock] *)
  mutable swaps : int;  (* guarded by [lock] *)
  mutable worker : unit Domain.t option;  (* guarded by [lock] *)
}

(* ------------------------- snapshot building ----------------------- *)

let route_of_path g ~level p =
  {
    r_level = level;
    r_links = Topo.Path.links g p;
    r_nodes = Array.to_list (Topo.Path.nodes g p);
  }

let routes_of_entry g entry =
  Array.mapi (fun level p -> route_of_path g ~level p) (Response.Tables.paths entry)

let build_snapshot ~config ~jobs g power ~pairs ~version tm =
  let tables = Response.Framework.precompute_cached ~config ~jobs g power ~pairs in
  let eval = Response.Framework.evaluate tables power tm in
  (* The memo may hand back an earlier structurally-identical graph; use
     the one the tables reference so link ids line up by construction. *)
  let tg = Response.Tables.graph tables in
  let routes = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (e : Response.Tables.entry) ->
      Hashtbl.replace routes (e.origin, e.dest) (routes_of_entry tg e))
    (Response.Tables.entries tables);
  {
    version;
    routes;
    levels = eval.Response.Framework.levels_activated;
    power_percent = eval.Response.Framework.power_percent;
  }

(* ------------------------------ journal ---------------------------- *)

(* Bit-equality so a checkpoint diff never confuses signed zeros; staged
   values are validated finite on entry. *)
let demand_changed a b = not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let pair_compare (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

(* Replays journal records onto the boot-time state, before the first
   snapshot is built. Records are re-validated against this topology (a
   journal from a different boot configuration must degrade to a partial
   replay, not a crash); invalid records are skipped. *)
let apply_journal g demand down records =
  let nodes = Topo.Graph.node_count g in
  let links = Array.length down in
  List.iter
    (fun r ->
      match r with
      | Wire.Demand_update { origin; dest; bps } ->
          if
            origin >= 0 && origin < nodes && dest >= 0 && dest < nodes && origin <> dest
            && Float.is_finite bps && bps >= 0.0
          then Traffic.Matrix.set demand origin dest bps
      | Wire.Link_event { link; up } -> if link >= 0 && link < links then down.(link) <- not up
      | _ -> ())
    records

(* Checkpoint = the diff of the staged state against the boot-time base:
   replaying it onto the same base reproduces the staged state exactly,
   and pairs never touched cost no record. Caller holds [lock]. *)
let checkpoint_locked t =
  match t.journal with
  | None -> ()
  | Some j ->
      let down = Atomic.get t.live_down in
      let touched =
        List.sort_uniq pair_compare
          (List.rev_append (Traffic.Matrix.pairs t.base) (Traffic.Matrix.pairs t.demand))
      in
      let demands =
        List.filter_map
          (fun (o, d) ->
            let v = Traffic.Matrix.get t.demand o d in
            if demand_changed v (Traffic.Matrix.get t.base o d) then
              Some (Wire.Demand_update { origin = o; dest = d; bps = v })
            else None)
          touched
      in
      let downs = ref [] in
      for link = Array.length down - 1 downto 0 do
        if down.(link) then downs := Wire.Link_event { link; up = false } :: !downs
      done;
      (* An IO failure here is already counted by the journal; the old
         (longer but equivalent) journal stays in place. *)
      match Journal.compact j (List.rev_append (List.rev demands) !downs) with
      | Ok () -> ()
      | Error _ -> ()

(* Caller holds [lock]. Append failures degrade durability, not service:
   the update is staged and acked either way, and the failure is counted
   on serve_journal_errors_total. *)
let journal_append_locked t req =
  match t.journal with
  | None -> ()
  | Some j -> ( match Journal.append j req with Ok () -> () | Error _ -> ())

(* -------------------------- recompute domain ----------------------- *)

(* Blocks until there is a rebuild to run (returning the target
   generation and a private copy of the pending matrix) or the state is
   stopped (returning None). *)
let next_work t =
  Mutex.lock t.lock;
  let rec wait () =
    if t.stopped then None
    else if t.generation > t.applied then
      Some (t.generation, Traffic.Matrix.copy t.demand)
    else begin
      Condition.wait t.work t.lock;
      wait ()
    end
  in
  let w = wait () in
  Mutex.unlock t.lock;
  w

let rebuild t ~target tm =
  let outcome =
    match
      Obs.Metric.Histogram.time Metrics.recompute_seconds (fun () ->
          build_snapshot ~config:t.config ~jobs:t.jobs t.graph t.power ~pairs:t.pairs
            ~version:target tm)
    with
    | snap -> Some snap
    | exception Invalid_argument _ ->
        (* Infeasible staged demand or an invariant trip: keep serving
           the previous snapshot, count the drop, and still advance
           [applied] so a blocked reload cannot hang. *)
        None
  in
  (match outcome with
  | Some snap ->
      Atomic.set t.snap snap;
      Obs.Metric.Counter.incr Metrics.swaps
  | None -> Obs.Metric.Counter.incr Metrics.recompute_errors);
  Mutex.lock t.lock;
  (match outcome with
  | Some _ ->
      t.swaps <- t.swaps + 1;
      (* The swap is live: everything staged so far is subsumed by a
         checkpoint, bounding the journal by the staged state's size. *)
      checkpoint_locked t
  | None -> ());
  if target > t.applied then t.applied <- target;
  Condition.broadcast t.done_;
  Mutex.unlock t.lock

let rec recompute_loop t =
  match next_work t with
  | None -> ()
  | Some (target, tm) ->
      rebuild t ~target tm;
      recompute_loop t

(* ------------------------------ lifecycle -------------------------- *)

let create ?(config = Response.Framework.default) ?(jobs = 1) ?journal g power ~pairs ~demand =
  let staged = Traffic.Matrix.copy demand in
  let down0 = Array.make (Topo.Graph.link_count g) false in
  (* Replay before the first build: the restart's initial snapshot
     already contains every update the pre-crash daemon acknowledged. *)
  (match journal with
  | Some j -> apply_journal g staged down0 (Journal.entries j)
  | None -> ());
  let snap0 =
    build_snapshot ~config ~jobs g power ~pairs ~version:0 (Traffic.Matrix.copy staged)
  in
  let t =
    {
      graph = g;
      power;
      config;
      jobs;
      pairs;
      snap = Atomic.make snap0;
      live_down = Atomic.make down0;
      lock = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      demand = staged;
      base = Traffic.Matrix.copy demand;
      journal;
      generation = 0;
      applied = 0;
      stopped = false;
      swaps = 0;
      worker = None;
    }
  in
  (* The replayed state is live: checkpoint it so a crash loop cannot
     re-replay an ever-growing tail. *)
  (match journal with
  | Some _ ->
      Mutex.lock t.lock;
      checkpoint_locked t;
      Mutex.unlock t.lock
  | None -> ());
  t.worker <- Some (Domain.spawn (fun () -> recompute_loop t));
  t

let graph t = t.graph

let stop t =
  Mutex.lock t.lock;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.work;
    Condition.broadcast t.done_
  end;
  let w = t.worker in
  t.worker <- None;
  Mutex.unlock t.lock;
  (match w with Some d -> Domain.join d | None -> ());
  match t.journal with Some j -> Journal.close j | None -> ()

(* ------------------------------- reads ----------------------------- *)

let route_blocked down r = Array.exists (fun link -> down.(link)) r.r_links

let resolve t ~origin ~dest =
  let snap = Atomic.get t.snap in
  let down = Atomic.get t.live_down in
  match Hashtbl.find_opt snap.routes (origin, dest) with
  | None -> (Wire.Unknown_pair, 0, [])
  | Some rs ->
      let n = Array.length rs in
      let rec pick i =
        if i >= n then (Wire.No_usable_path, 0, [])
        else
          let r = rs.(i) in
          if route_blocked down r then pick (i + 1) else (Wire.Path_ok, r.r_level, r.r_nodes)
      in
      pick 0

let version t = (Atomic.get t.snap).version
let levels_activated t = (Atomic.get t.snap).levels
let power_percent t = (Atomic.get t.snap).power_percent

let swap_count t =
  Mutex.lock t.lock;
  let n = t.swaps in
  Mutex.unlock t.lock;
  n

(* ------------------------------ writes ----------------------------- *)

let bump_locked t =
  t.generation <- t.generation + 1;
  let target = t.generation in
  Condition.signal t.work;
  target

let update_demand t ~origin ~dest ~bps =
  let n = Topo.Graph.node_count t.graph in
  if origin < 0 || origin >= n || dest < 0 || dest >= n then
    Error (Printf.sprintf "node id outside [0, %d)" n)
  else if origin = dest then Error "origin and destination coincide"
  else if (not (Float.is_finite bps)) || bps < 0.0 then
    Error "demand must be finite and non-negative"
  else begin
    Mutex.lock t.lock;
    Traffic.Matrix.set t.demand origin dest bps;
    journal_append_locked t (Wire.Demand_update { origin; dest; bps });
    let target = bump_locked t in
    Mutex.unlock t.lock;
    Ok target
  end

let set_link t ~link ~up =
  let n = Topo.Graph.link_count t.graph in
  if link < 0 || link >= n then Error (Printf.sprintf "link id outside [0, %d)" n)
  else begin
    Mutex.lock t.lock;
    let next = Array.copy (Atomic.get t.live_down) in
    next.(link) <- not up;
    Atomic.set t.live_down next;
    journal_append_locked t (Wire.Link_event { link; up });
    let target = bump_locked t in
    Mutex.unlock t.lock;
    Ok target
  end

let reload t =
  Mutex.lock t.lock;
  let target = bump_locked t in
  let rec wait () =
    if t.applied >= target || t.stopped then ()
    else begin
      Condition.wait t.done_ t.lock;
      wait ()
    end
  in
  wait ();
  Mutex.unlock t.lock;
  (Atomic.get t.snap).version
