(** Crash-safe append-only journal of accepted demand/link updates.

    Each record is [len (u32) | frame | crc (u32)], big-endian, where
    [frame] is one complete {!Wire} request frame (only [Demand_update]
    and [Link_event] are journalable — the two requests that carry
    staged state) and [crc] is {!Wire.crc32} of the frame. Appends are
    fsync'd before returning, so once the server acks an update the
    record is on disk; a [kill -9] can therefore only ever lose the
    unacknowledged tail, which shows up at the next {!open_} as a torn
    record and is truncated away.

    {!Serve.State} replays the records at startup (staging every entry
    before the initial table build, so the restart's first snapshot
    already contains the pre-crash state) and rewrites the journal as a
    checkpoint of its full staged state after each successful snapshot
    swap ({!compact}) — the journal's size is bounded by the staged
    state, not by the update rate.

    IO failures after open are returned as [Error _] and counted on
    [serve_journal_errors_total]; they never raise, so a full disk
    degrades durability instead of killing the daemon. *)

type t

val open_ : ?fsync:bool -> string -> (t, string) result
(** Opens (creating if missing) the journal at the given path, replays
    and validates the existing records, and truncates any torn tail so
    subsequent appends start on a record boundary. [fsync] (default
    true) may be disabled for tests and benchmarks. *)

val entries : t -> Wire.request list
(** The valid records found at {!open_}, oldest first. *)

val torn : t -> bool
(** Whether {!open_} found (and dropped) a torn/corrupt tail. *)

val append : t -> Wire.request -> (unit, string) result
(** Appends one record and (by default) fsyncs before returning.
    @raise Invalid_argument if the request is not journalable (anything
    other than [Demand_update]/[Link_event]). *)

val compact : t -> Wire.request list -> (unit, string) result
(** Atomically replaces the journal's contents with the given records
    (temp file + rename + directory fsync): the checkpoint taken on a
    successful snapshot swap. On [Ok] the journal continues appending
    after the checkpoint.
    @raise Invalid_argument if any record is not journalable. *)

val path : t -> string

val close : t -> unit
(** Idempotent; subsequent {!append}/{!compact} return [Error _]. *)
