(** Serving state: an immutable routing snapshot behind an [Atomic.t],
    plus the background domain that rebuilds it.

    Readers ({!resolve}) never take a lock: they load the current
    snapshot and the current link-status vector with two atomic reads and
    walk pre-compiled per-pair route arrays. Writers ({!update_demand},
    {!set_link}, {!reload}) mutate a pending traffic matrix under a
    mutex, bump a generation counter and signal the recompute domain,
    which runs {!Response.Framework.precompute_cached} + [evaluate] off
    the hot path and publishes a fresh snapshot with one [Atomic.set] —
    the hot swap is invisible to concurrent readers.

    Link failures take effect immediately (the next {!resolve} skips
    routes crossing a down link — the paper's failover needs no
    reconvergence); the recompute that follows only refreshes the
    power/level figures reported by stats. *)

type t

val create :
  ?config:Response.Framework.config ->
  ?jobs:int ->
  ?journal:Journal.t ->
  Topo.Graph.t ->
  Power.Model.t ->
  pairs:(int * int) list ->
  demand:Traffic.Matrix.t ->
  t
(** Builds the initial snapshot synchronously (so a successfully created
    server always has tables) and spawns the recompute domain. The
    matrix is copied; the caller's value is not retained. [jobs]
    (default 1) fans out the failover stage of each rebuild.

    With [journal], the journal's replayed records are staged on top of
    [demand] {e before} the initial build — so a restart after [kill -9]
    boots straight into the pre-crash state — every accepted
    {!update_demand}/{!set_link} is appended (fsync'd) before it is
    acknowledged, and each successful snapshot swap rewrites the journal
    as a checkpoint of the staged state (a diff against [demand], which
    must therefore be the same boot matrix across restarts).
    @raise Invalid_argument as {!Response.Framework.precompute} — e.g.
    infeasible always-on demands for the initial matrix. *)

val graph : t -> Topo.Graph.t

val resolve : t -> origin:int -> dest:int -> Wire.path_status * int * int list
(** First installed path of the pair, in activation order, whose links
    are all up: [(Path_ok, level, nodes)] — or [Unknown_pair] /
    [No_usable_path] with level 0 and no nodes. Lock-free; allocation-free
    apart from the result triple (node lists are pre-compiled into the
    snapshot). *)

val update_demand : t -> origin:int -> dest:int -> bps:float -> (int, string) result
(** Stages a demand write (bit/s) and wakes the recompute domain.
    [Ok target] is the snapshot generation that will include the write.
    [Error _] on an out-of-range node, a diagonal pair, or a
    non-finite/negative demand — nothing is staged. *)

val set_link : t -> link:int -> up:bool -> (int, string) result
(** Publishes the link status immediately (copy-on-write vector swap)
    and wakes the recompute domain; same [Ok]/[Error] contract as
    {!update_demand}. *)

val reload : t -> int
(** Forces a rebuild even with no staged writes and blocks until a
    snapshot at least that fresh is live (or the state is stopped);
    returns the live snapshot's version. *)

val version : t -> int
(** Generation of the live snapshot. *)

val levels_activated : t -> int
(** Deepest on-demand level the live snapshot's evaluation activated. *)

val power_percent : t -> float
(** Power draw of the live snapshot's steady state, percent of full. *)

val swap_count : t -> int
(** Successful snapshot swaps since {!create} (0 right after). *)

val stop : t -> unit
(** Signals the recompute domain and joins it. Idempotent. A rebuild in
    flight finishes first; a blocked {!reload} is released. *)
