(** The respctld TCP server: one accept domain, a pool of worker domains
    ({!Eutil.Pool.Background}), all serving a shared {!State}.

    Two loopback listeners: the binary {!Wire} protocol on [port] and a
    minimal HTTP/1.0 endpoint on [http_port] ([GET /metrics] Prometheus
    exposition via {!Obs.Export.prometheus_page}, [GET /healthz]
    liveness JSON; one request per connection). Accepted sockets are
    handed round-robin to workers over mutex-guarded queues with a
    self-pipe wakeup; each worker multiplexes its connections with
    [select], decodes frames from a per-connection buffer, and answers
    in arrival order. [TCP_NODELAY] is set on every accepted socket —
    request/response protocols stall a Nagle round-trip otherwise.

    Malformed bytes get one [Error_reply] ([err_malformed]) and the
    connection is closed; semantic rejections ([err_bad_argument]) leave
    the connection open. {!stop} is graceful: listeners close first, then
    every worker answers the requests already readable on its
    connections before closing them (a mid-load reload or shutdown never
    drops an accepted request).

    Every request passes the shared {!Guard} before execution: over the
    in-flight ceiling the server answers [err_overloaded] (and keeps
    shedding until load stays under the low watermark for the recovery
    streak — hysteresis, so the decision cannot flap per request); a
    frame whose budget ran out between its first byte and its turn to
    execute gets [err_deadline]. Both leave the connection open. Binary
    connections over the connection cap are refused at accept; each
    worker reaps connections idle past the idle timeout and slow-loris
    connections holding a partial frame past the read deadline. *)

type t

type config = {
  port : int;  (** binary protocol port; 0 picks an ephemeral one *)
  http_port : int;  (** scrape endpoint port; 0 picks an ephemeral one *)
  workers : int;  (** worker domains (floored at 1) *)
  backlog : int;
  guard : Guard.config;  (** admission control, deadlines, reaping *)
}

val default_config : config
(** Port 4710, scrape on 4711, 2 workers, backlog 64, {!Guard.default}. *)

val start : ?config:config -> State.t -> t
(** Binds both loopback listeners, spawns the domains, and returns with
    the server accepting. The state is shared, not owned: {!stop} leaves
    it running.
    @raise Invalid_argument on a malformed [config.guard] (checked
    before anything binds).
    @raise Unix.Unix_error when a port is taken or the fd budget is
    exhausted; nothing is left running on failure paths after the
    listeners bound. *)

val port : t -> int
(** Actual bound binary port (resolves an ephemeral request). *)

val http_port : t -> int
(** Actual bound scrape port. *)

val served : t -> int
(** Requests answered since {!start} (across all workers). *)

val guard : t -> Guard.t
(** The server's admission guard — exposed so tests and harnesses can
    observe mode/occupancy and drive deterministic shed scenarios. *)

val handle_request : t -> Wire.request -> Wire.response
(** The pure request dispatcher the workers run — exposed so tests and
    in-process harnesses can exercise exactly the served semantics
    without a socket. Declared hot in [check/cost.json]. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, drain readable requests, close
    every connection, join all domains. Idempotent. *)
