(* Pure codecs for the respctld frame protocol. Decoding is total on
   arbitrary bytes: every read is bounds-checked up front (fixed layouts
   are length-checked per tag), so untrusted input can only produce a
   typed [error], never an exception. See wire.mli for the layout. *)

let magic = 0x5253504El (* "RSPN" *)
let version = 1
let header_length = 9
let max_payload = 1 lsl 20

(* Wire-layout bounds, named so the numeric-safety pass can see they are
   not unit-carrying magnitudes. *)
let i32_max = 0x7fff_ffff
let u16_max = 0xffff
let u8_max = 0xff

type request =
  | Path_query of { origin : int; dest : int }
  | Demand_update of { origin : int; dest : int; bps : float }
  | Link_event of { link : int; up : bool }
  | Stats
  | Health
  | Reload

type path_status = Path_ok | Unknown_pair | No_usable_path

type stats_payload = {
  s_version : int;
  s_swaps : int;
  s_served : int;
  s_uptime_s : float;
  s_levels : int;
  s_power_percent : float;
}

type response =
  | Path_reply of { status : path_status; level : int; nodes : int list }
  | Ack of { version : int }
  | Stats_reply of stats_payload
  | Health_reply of { healthy : bool; version : int }
  | Error_reply of { code : int; message : string }

let err_malformed = 1
let err_bad_argument = 2
let err_shutting_down = 3
let err_overloaded = 4
let err_deadline = 5

let error_code_name = function
  | 1 -> "malformed"
  | 2 -> "bad_argument"
  | 3 -> "shutting_down"
  | 4 -> "overloaded"
  | 5 -> "deadline"
  | _ -> "unknown"

(* ------------------------------ tags ------------------------------- *)

let tag_path_query = 1
let tag_demand_update = 2
let tag_link_event = 3
let tag_stats = 4
let tag_health = 5
let tag_reload = 6
let tag_path_reply = 65
let tag_ack = 66
let tag_stats_reply = 67
let tag_health_reply = 68
let tag_error_reply = 69

(* ----------------------------- errors ------------------------------ *)

type error =
  | Truncated
  | Bad_magic of int32
  | Bad_version of int
  | Oversized of int
  | Bad_tag of int
  | Bad_payload of string

let error_to_string = function
  | Truncated -> "truncated frame"
  | Bad_magic m -> Printf.sprintf "bad magic 0x%08lx" m
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Oversized n -> Printf.sprintf "declared payload of %d bytes exceeds the frame limit" n
  | Bad_tag t -> Printf.sprintf "unknown frame tag %d" t
  | Bad_payload msg -> Printf.sprintf "malformed payload: %s" msg

(* ----------------------------- encoding ---------------------------- *)

let check_range what v lo hi =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Serve.Wire: %s %d outside [%d, %d]" what v lo hi)

let put_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)
let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)
let put_i32 b v = Buffer.add_int32_be b (Int32.of_int v)

let with_frame fill =
  let p = Buffer.create 64 in
  fill p;
  let len = Buffer.length p in
  let b = Buffer.create (header_length + len) in
  Buffer.add_int32_be b magic;
  Buffer.add_uint8 b version;
  Buffer.add_int32_be b (Int32.of_int len);
  Buffer.add_buffer b p;
  Buffer.contents b

let encode_request r =
  with_frame (fun b ->
      match r with
      | Path_query { origin; dest } ->
          check_range "origin" origin 0 i32_max;
          check_range "dest" dest 0 i32_max;
          Buffer.add_uint8 b tag_path_query;
          put_i32 b origin;
          put_i32 b dest
      | Demand_update { origin; dest; bps } ->
          check_range "origin" origin 0 i32_max;
          check_range "dest" dest 0 i32_max;
          if Float.is_nan bps then invalid_arg "Serve.Wire: NaN demand";
          Buffer.add_uint8 b tag_demand_update;
          put_i32 b origin;
          put_i32 b dest;
          put_f64 b bps
      | Link_event { link; up } ->
          check_range "link" link 0 i32_max;
          Buffer.add_uint8 b tag_link_event;
          put_i32 b link;
          Buffer.add_uint8 b (if up then 1 else 0)
      | Stats -> Buffer.add_uint8 b tag_stats
      | Health -> Buffer.add_uint8 b tag_health
      | Reload -> Buffer.add_uint8 b tag_reload)

let status_to_int = function Path_ok -> 0 | Unknown_pair -> 1 | No_usable_path -> 2

let encode_response r =
  with_frame (fun b ->
      match r with
      | Path_reply { status; level; nodes } ->
          check_range "level" level 0 u8_max;
          let count = List.length nodes in
          check_range "node count" count 0 u16_max;
          Buffer.add_uint8 b tag_path_reply;
          Buffer.add_uint8 b (status_to_int status);
          Buffer.add_uint8 b level;
          Buffer.add_uint16_be b count;
          List.iter
            (fun node ->
              check_range "node" node 0 i32_max;
              put_i32 b node)
            nodes
      | Ack { version } ->
          Buffer.add_uint8 b tag_ack;
          put_i64 b version
      | Stats_reply s ->
          check_range "levels" s.s_levels 0 u8_max;
          Buffer.add_uint8 b tag_stats_reply;
          put_i64 b s.s_version;
          put_i64 b s.s_swaps;
          put_i64 b s.s_served;
          put_f64 b s.s_uptime_s;
          Buffer.add_uint8 b s.s_levels;
          put_f64 b s.s_power_percent
      | Health_reply { healthy; version } ->
          Buffer.add_uint8 b tag_health_reply;
          Buffer.add_uint8 b (if healthy then 1 else 0);
          put_i64 b version
      | Error_reply { code; message } ->
          check_range "error code" code 0 u8_max;
          check_range "message length" (String.length message) 0 u16_max;
          Buffer.add_uint8 b tag_error_reply;
          Buffer.add_uint8 b code;
          Buffer.add_uint16_be b (String.length message);
          Buffer.add_string b message)

(* ----------------------------- decoding ---------------------------- *)

(* Frame header: on success returns (payload offset, payload length).
   A negative int32 length is an unsigned value above 2 GiB — report the
   unsigned magnitude as oversized rather than calling it empty. *)
let decode_header ~pos s =
  let n = String.length s in
  if pos < 0 || pos > n then Error (Bad_payload "start offset outside the buffer")
  else if n - pos < header_length then Error Truncated
  else
    let m = String.get_int32_be s pos in
    if not (Int32.equal m magic) then Error (Bad_magic m)
    else
      let v = String.get_uint8 s (pos + 4) in
      if v <> version then Error (Bad_version v)
      else
        let len = Int32.to_int (String.get_int32_be s (pos + 5)) land 0xffff_ffff in
        if len > max_payload then Error (Oversized len)
        else if len < 1 then Error (Bad_payload "empty payload")
        else if n - pos - header_length < len then Error Truncated
        else Ok (pos + header_length, len)

let get_i32 s off = Int32.to_int (String.get_int32_be s off)
let get_i64 s off = Int64.to_int (String.get_int64_be s off)
let get_f64 s off = Int64.float_of_bits (String.get_int64_be s off)

let get_bool s off =
  match String.get_uint8 s off with
  | 0 -> Ok false
  | 1 -> Ok true
  | v -> Error (Bad_payload (Printf.sprintf "boolean byte %d" v))

(* Payload lengths by tag (beyond the tag byte itself). *)
let len_path_query = 8
let len_demand_update = 16
let len_link_event = 5
let len_ack = 8
let len_stats_reply = 41
let len_health_reply = 9

let expect_len what declared expected k =
  if declared <> expected then
    Error
      (Bad_payload
         (Printf.sprintf "%s payload is %d bytes, expected %d" what (declared - 1) (expected - 1)))
  else k ()

let decode_request ?(pos = 0) s =
  match decode_header ~pos s with
  | Error e -> Error e
  | Ok (off, len) -> (
      let next = off + len in
      let body = off + 1 in
      let fin req = Ok (req, next) in
      match String.get_uint8 s off with
      | t when t = tag_path_query ->
          expect_len "path_query" len (1 + len_path_query) (fun () ->
              fin (Path_query { origin = get_i32 s body; dest = get_i32 s (body + 4) }))
      | t when t = tag_demand_update ->
          expect_len "demand_update" len (1 + len_demand_update) (fun () ->
              fin
                (Demand_update
                   { origin = get_i32 s body; dest = get_i32 s (body + 4); bps = get_f64 s (body + 8) }))
      | t when t = tag_link_event ->
          expect_len "link_event" len (1 + len_link_event) (fun () ->
              match get_bool s (body + 4) with
              | Error e -> Error e
              | Ok up -> fin (Link_event { link = get_i32 s body; up }))
      | t when t = tag_stats -> expect_len "stats" len 1 (fun () -> fin Stats)
      | t when t = tag_health -> expect_len "health" len 1 (fun () -> fin Health)
      | t when t = tag_reload -> expect_len "reload" len 1 (fun () -> fin Reload)
      | t -> Error (Bad_tag t))

let status_of_int = function
  | 0 -> Ok Path_ok
  | 1 -> Ok Unknown_pair
  | 2 -> Ok No_usable_path
  | v -> Error (Bad_payload (Printf.sprintf "path status byte %d" v))

let decode_response ?(pos = 0) s =
  match decode_header ~pos s with
  | Error e -> Error e
  | Ok (off, len) -> (
      let next = off + len in
      let body = off + 1 in
      let fin resp = Ok (resp, next) in
      match String.get_uint8 s off with
      | t when t = tag_path_reply ->
          if len < 5 then Error (Bad_payload "path reply shorter than its fixed fields")
          else begin
            match status_of_int (String.get_uint8 s body) with
            | Error e -> Error e
            | Ok status ->
                let level = String.get_uint8 s (body + 1) in
                let count = String.get_uint16_be s (body + 2) in
                if len <> 5 + (4 * count) then
                  Error (Bad_payload (Printf.sprintf "path reply declares %d nodes" count))
                else
                  let nodes = List.init count (fun i -> get_i32 s (body + 4 + (4 * i))) in
                  fin (Path_reply { status; level; nodes })
          end
      | t when t = tag_ack ->
          expect_len "ack" len (1 + len_ack) (fun () -> fin (Ack { version = get_i64 s body }))
      | t when t = tag_stats_reply ->
          expect_len "stats reply" len (1 + len_stats_reply) (fun () ->
              fin
                (Stats_reply
                   {
                     s_version = get_i64 s body;
                     s_swaps = get_i64 s (body + 8);
                     s_served = get_i64 s (body + 16);
                     s_uptime_s = get_f64 s (body + 24);
                     s_levels = String.get_uint8 s (body + 32);
                     s_power_percent = get_f64 s (body + 33);
                   }))
      | t when t = tag_health_reply ->
          expect_len "health reply" len (1 + len_health_reply) (fun () ->
              match get_bool s body with
              | Error e -> Error e
              | Ok healthy -> fin (Health_reply { healthy; version = get_i64 s (body + 1) }))
      | t when t = tag_error_reply ->
          if len < 4 then Error (Bad_payload "error reply shorter than its fixed fields")
          else
            let code = String.get_uint8 s body in
            let mlen = String.get_uint16_be s (body + 1) in
            if len <> 4 + mlen then
              Error (Bad_payload (Printf.sprintf "error reply declares %d message bytes" mlen))
            else fin (Error_reply { code; message = String.sub s (body + 3) mlen })
      | t -> Error (Bad_tag t))

(* ------------------------------ crc -------------------------------- *)

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xedb88320), computed
   bitwise so the module keeps zero toplevel mutable state. Journal
   records are short and fsync-bound, so the table-free form costs
   nothing measurable. *)
let crc32 s =
  let poly = 0xedb88320 in
  let crc = ref 0xffff_ffff in
  String.iter
    (fun ch ->
      crc := !crc lxor Char.code ch;
      for _bit = 0 to 7 do
        crc := if !crc land 1 = 1 then (!crc lsr 1) lxor poly else !crc lsr 1
      done)
    s;
  Int32.of_int (!crc lxor 0xffff_ffff)

(* ------------------------------ misc ------------------------------- *)

let request_type = function
  | Path_query _ -> "path_query"
  | Demand_update _ -> "demand_update"
  | Link_event _ -> "link_event"
  | Stats -> "stats"
  | Health -> "health"
  | Reload -> "reload"

(* Bit equality, so NaN payloads (and signed zeros) satisfy the
   round-trip law exactly as transmitted. *)
let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal_request a b =
  match (a, b) with
  | Path_query x, Path_query y -> x.origin = y.origin && x.dest = y.dest
  | Demand_update x, Demand_update y ->
      x.origin = y.origin && x.dest = y.dest && float_eq x.bps y.bps
  | Link_event x, Link_event y -> x.link = y.link && x.up = y.up
  | Stats, Stats | Health, Health | Reload, Reload -> true
  | _ -> false

let equal_response a b =
  match (a, b) with
  | Path_reply x, Path_reply y ->
      x.status = y.status && x.level = y.level && List.equal Int.equal x.nodes y.nodes
  | Ack x, Ack y -> x.version = y.version
  | Stats_reply x, Stats_reply y ->
      x.s_version = y.s_version && x.s_swaps = y.s_swaps && x.s_served = y.s_served
      && float_eq x.s_uptime_s y.s_uptime_s
      && x.s_levels = y.s_levels
      && float_eq x.s_power_percent y.s_power_percent
  | Health_reply x, Health_reply y -> x.healthy = y.healthy && x.version = y.version
  | Error_reply x, Error_reply y -> x.code = y.code && String.equal x.message y.message
  | _ -> false
