type config = {
  host : string;
  port : int;
  conns : int;
  rate : float;
  duration_s : float;
  requests : int;
  pairs : (int * int) array;
  reload_at : float option;
  timeout_s : float;
  retries : int;
  backoff_s : float;
  seed : int;
  breaker_failures : int;
  breaker_cooldown_s : float;
}

let default =
  {
    host = "127.0.0.1";
    port = 4710;
    conns = 4;
    rate = 0.0;
    duration_s = 3.0;
    requests = 0;
    pairs = [||];
    reload_at = None;
    timeout_s = 5.0;
    retries = 2;
    backoff_s = 0.05;
    seed = 11;
    breaker_failures = 16;
    breaker_cooldown_s = 0.5;
  }

type report = {
  sent : int;
  completed : int;
  failed : int;
  wrong : int;
  reloads : int;
  timeouts : int;
  retried : int;
  sheds : int;
  breaker_opens : int;
  error_codes : (string * int) list;
  duration_s : float;
  qps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* --------------------------- sample buffer ------------------------- *)

type samples = { mutable data : float array; mutable len : int }

let samples_create () = { data = Array.make 1024 0.0; len = 0 }

let samples_push s x =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0.0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

(* Exact percentile (nearest-rank) of the recorded samples. *)
let samples_sorted s =
  let a = Array.sub s.data 0 s.len in
  Array.sort Float.compare a;
  a

let rank sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let idx = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    let idx = if idx < 0 then 0 else if idx >= n then n - 1 else idx in
    sorted.(idx)
  end

(* ------------------------------ sockets ---------------------------- *)

(* [pending] is the logical request a connection owns: set when a fresh
   query is issued and only cleared when it completes, permanently
   fails, or the run ends — a timeout or a shed reply keeps it pending
   and schedules a retry ([retry_at]) instead. [fd] is mutable because a
   timed-out or reset connection must be replaced (a late reply would
   desync the stream), while the pending request carries over. *)
type conn = {
  mutable fd : Unix.file_descr;
  inbuf : Buffer.t;
  control : bool;
  mutable outstanding : bool;  (* a frame is on the wire *)
  mutable pending : (int * int) option;
  mutable tries : int;
  mutable retry_at : float;
  mutable sent_at : float;
  mutable dead : bool;
}

let open_conn cfg ~control =
  match Unix.inet_addr_of_string cfg.host with
  | exception Failure _ -> Error (Printf.sprintf "not an address literal: %s" cfg.host)
  | addr -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, cfg.port)) with
      | () ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error (_e, _, _) -> ());
          Ok
            {
              fd;
              inbuf = Buffer.create 256;
              control;
              outstanding = false;
              pending = None;
              tries = 0;
              retry_at = 0.0;
              sent_at = 0.0;
              dead = false;
            }
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_e, _, _) -> ());
          Error (Printf.sprintf "connect %s:%d: %s" cfg.host cfg.port (Unix.error_message err)))

let kill c =
  if not c.dead then begin
    c.dead <- true;
    c.outstanding <- false;
    try Unix.close c.fd with Unix.Unix_error (_e, _, _) -> ()
  end

let write_frame c payload =
  let n = String.length payload in
  let rec loop off =
    if off >= n then true
    else
      match Unix.write_substring c.fd payload off (n - off) with
      | written -> loop (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  try loop 0 with Unix.Unix_error (_e, _, _) -> false

(* ------------------------------ the run ---------------------------- *)

type breaker = Closed | Open of float (* retry probe at *) | Half_open

type run_state = {
  cfg : config;
  conns : conn array;  (* measurement connections *)
  ctl : conn option;  (* reload channel *)
  rd : Bytes.t;
  lat : samples;
  prng : Eutil.Prng.t;
  start : float;
  mutable issued : int;  (* fresh requests (pacing; retries excluded) *)
  mutable sent : int;  (* frames on the wire (retries included) *)
  mutable completed : int;
  mutable failed : int;
  mutable wrong : int;
  mutable reloads : int;
  mutable timeouts : int;
  mutable retried : int;
  mutable sheds : int;
  mutable breaker_opens : int;
  err_counts : int array;  (* by wire error code; last slot = unknown *)
  mutable consec_failures : int;
  mutable breaker : breaker;
  mutable reload_pending : bool;
  mutable next_pair : int;
  mutable last_done : float;
}

let now () = Unix.gettimeofday ()

let issuing_over rs now =
  if rs.cfg.requests > 0 then rs.issued >= rs.cfg.requests
  else now -. rs.start >= rs.cfg.duration_s

(* ---------------------------- circuit breaker ---------------------- *)

(* Consecutive transport failures/timeouts/shed replies trip the
   breaker: sends stop for the cooldown, then exactly one probe goes out
   (half-open); its fate closes or re-opens the breaker. This is what
   turns "server unreachable" into a short, bounded report instead of a
   hanging load run. *)

let breaker_trip rs t =
  rs.breaker <- Open (t +. Float.max 0.0 rs.cfg.breaker_cooldown_s);
  rs.breaker_opens <- rs.breaker_opens + 1;
  Obs.Metric.Counter.incr Metrics.breaker_opens;
  Obs.Metric.Gauge.set Metrics.breaker_open 1.0

let breaker_note_failure rs t =
  if rs.cfg.breaker_failures > 0 then begin
    rs.consec_failures <- rs.consec_failures + 1;
    match rs.breaker with
    | Half_open -> breaker_trip rs t
    | Closed -> if rs.consec_failures >= rs.cfg.breaker_failures then breaker_trip rs t
    | Open _ -> ()
  end

let breaker_note_success rs =
  rs.consec_failures <- 0;
  match rs.breaker with
  | Closed -> ()
  | Half_open | Open _ ->
      rs.breaker <- Closed;
      Obs.Metric.Gauge.set Metrics.breaker_open 0.0

let wire_outstanding rs =
  Array.fold_left (fun acc c -> if c.outstanding then acc + 1 else acc) 0 rs.conns

let breaker_allows rs t =
  match rs.breaker with
  | Closed -> true
  | Open until ->
      if t >= until then begin
        rs.breaker <- Half_open;
        true
      end
      else false
  | Half_open -> wire_outstanding rs = 0 (* one probe at a time *)

(* ------------------------------ retries ---------------------------- *)

(* Exponential backoff with full jitter, seeded: equal seeds give equal
   retry schedules, which is what keeps the chaos golden stable. *)
let backoff rs ~tries =
  let cap =
    Float.min 1.0 (Float.max 0.0 rs.cfg.backoff_s *. float_of_int (1 lsl Int.min tries 10))
  in
  Eutil.Prng.range rs.prng 0.0 cap

(* One attempt of the pending request failed. Path queries are
   idempotent, so while the retry budget lasts the request stays pending
   and is re-sent after backoff; past the budget it counts as failed. *)
let attempt_failed rs c ~t ~kill_conn =
  breaker_note_failure rs t;
  if kill_conn then kill c;
  match c.pending with
  | None -> ()
  | Some _ ->
      if c.tries < Int.max 0 rs.cfg.retries then begin
        c.tries <- c.tries + 1;
        c.retry_at <- t +. backoff rs ~tries:c.tries
      end
      else begin
        c.pending <- None;
        rs.failed <- rs.failed + 1
      end

let reopen rs c =
  match Unix.inet_addr_of_string rs.cfg.host with
  | exception Failure _ -> false
  | addr -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, rs.cfg.port)) with
      | () ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error (_e, _, _) -> ());
          c.fd <- fd;
          c.dead <- false;
          c.outstanding <- false;
          Buffer.clear c.inbuf;
          true
      | exception Unix.Unix_error (_e, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_e, _, _) -> ());
          false)

let send_query rs c pair t =
  let origin, dest = pair in
  if write_frame c (Wire.encode_request (Wire.Path_query { origin; dest })) then begin
    c.outstanding <- true;
    c.sent_at <- t;
    rs.sent <- rs.sent + 1
  end
  else attempt_failed rs c ~t ~kill_conn:true

let try_send rs c t =
  match c.pending with
  | None -> ()
  | Some pair ->
      if if c.dead then reopen rs c else true then send_query rs c pair t
      else attempt_failed rs c ~t ~kill_conn:false

(* Closed-loop send: one query per connection with no pending request,
   paced so that fresh request k is not issued before start + k/rate
   when a rate is set; scheduled retries go out once their backoff
   elapses (on a fresh connection if the old one died). *)
let maybe_send rs c t =
  if not c.outstanding then
    match c.pending with
    | Some _ ->
        if t >= c.retry_at && breaker_allows rs t then begin
          rs.retried <- rs.retried + 1;
          Obs.Metric.Counter.incr Metrics.client_retries;
          try_send rs c t
        end
    | None ->
        if
          (not (issuing_over rs t))
          && (rs.cfg.rate <= 0.0
             || t -. rs.start >= float_of_int rs.issued /. Float.max 1.0 rs.cfg.rate)
          && breaker_allows rs t
        then begin
          let pair = rs.cfg.pairs.(rs.next_pair) in
          rs.next_pair <- (rs.next_pair + 1) mod Array.length rs.cfg.pairs;
          c.pending <- Some pair;
          c.tries <- 0;
          rs.issued <- rs.issued + 1;
          try_send rs c t
        end

let maybe_reload rs t =
  match rs.ctl with
  | Some ctl
    when rs.reload_pending && (not ctl.outstanding) && (not ctl.dead)
         && (match rs.cfg.reload_at with Some at -> t -. rs.start >= at | None -> false) ->
      if write_frame ctl (Wire.encode_request Wire.Reload) then begin
        ctl.outstanding <- true;
        rs.reload_pending <- false
      end
      else kill ctl
  | _ -> ()

let count_error rs code =
  let n = Array.length rs.err_counts in
  let idx = if code >= 0 && code < n - 1 then code else n - 1 in
  rs.err_counts.(idx) <- rs.err_counts.(idx) + 1

let record_reply rs c resp =
  if c.control then begin
    match resp with
    | Wire.Ack _ -> rs.reloads <- rs.reloads + 1
    | _ -> rs.wrong <- rs.wrong + 1
  end
  else begin
    let t = now () in
    (match resp with
    | Wire.Path_reply _ ->
        breaker_note_success rs;
        c.pending <- None;
        rs.completed <- rs.completed + 1;
        samples_push rs.lat ((t -. c.sent_at) *. 1000.0)
    | Wire.Error_reply { code; _ } ->
        count_error rs code;
        if code = Wire.err_overloaded then rs.sheds <- rs.sheds + 1;
        (* Overload/deadline rejections are the server's explicit
           backpressure on an idempotent query: retry after backoff on
           the same (still-synchronized) connection. Anything else is a
           hard failure. *)
        if code = Wire.err_overloaded || code = Wire.err_deadline then
          attempt_failed rs c ~t ~kill_conn:false
        else begin
          breaker_note_failure rs t;
          c.pending <- None;
          rs.failed <- rs.failed + 1
        end
    | _ ->
        c.pending <- None;
        rs.wrong <- rs.wrong + 1);
    rs.last_done <- t
  end

(* The transport died under the connection. A wire-outstanding request
   retries on a fresh socket; a conn waiting out a backoff just loses
   its socket and the retry machinery reopens one. *)
let conn_lost rs c =
  let was_outstanding = c.outstanding in
  kill c;
  if c.control then begin
    if was_outstanding then rs.failed <- rs.failed + 1
  end
  else if was_outstanding then attempt_failed rs c ~t:(now ()) ~kill_conn:false

let read_conn rs c =
  match Unix.read c.fd rs.rd 0 (Bytes.length rs.rd) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_e, _, _) -> conn_lost rs c
  | 0 -> conn_lost rs c
  | n -> (
      Buffer.add_subbytes c.inbuf rs.rd 0 n;
      let data = Buffer.contents c.inbuf in
      match Wire.decode_response data with
      | Error Wire.Truncated -> ()
      | Error _ -> conn_lost rs c (* desynchronized; the retry reopens *)
      | Ok (resp, next) ->
          let len = String.length data in
          Buffer.clear c.inbuf;
          Buffer.add_substring c.inbuf data next (len - next);
          c.outstanding <- false;
          record_reply rs c resp)

(* A reply that never arrives: replace the socket (a late reply would
   desync the stream) and lean on the retry budget. *)
let sweep_timeouts rs t =
  if rs.cfg.timeout_s > 0.0 then
    Array.iter
      (fun c ->
        if (not c.dead) && c.outstanding && t -. c.sent_at > rs.cfg.timeout_s then begin
          rs.timeouts <- rs.timeouts + 1;
          Obs.Metric.Counter.incr Metrics.client_timeouts;
          kill c;
          attempt_failed rs c ~t ~kill_conn:false
        end)
      rs.conns

let conn_of_fd rs fd =
  let n = Array.length rs.conns in
  let rec find i =
    if i >= n then rs.ctl
    else if rs.conns.(i).fd = fd && not rs.conns.(i).dead then Some rs.conns.(i)
    else find (i + 1)
  in
  find 0

let select_fds rs =
  let base =
    match rs.ctl with Some c when c.outstanding && not c.dead -> [ c.fd ] | _ -> []
  in
  Array.fold_left
    (fun acc c -> if c.outstanding && not c.dead then c.fd :: acc else acc)
    base rs.conns

let pending_count rs =
  Array.fold_left
    (fun acc c -> match c.pending with Some _ -> acc + 1 | None -> acc)
    0 rs.conns

(* Drain straggler grace after issuing stops. *)
let drain_grace_s = 2.0

(* Hard stop when nothing has completed for the worst plausible
   request lifetime — the run must terminate even if the server
   blackholes every reply and the breaker never closes again. *)
let stall_cutoff rs =
  let per_try = if rs.cfg.timeout_s > 0.0 then rs.cfg.timeout_s else 5.0 in
  drain_grace_s +. (per_try *. float_of_int (Int.max 0 rs.cfg.retries + 1))

let stalled rs t = t -. Float.max rs.start rs.last_done >= stall_cutoff rs

let finished rs t =
  let drained = pending_count rs = 0 && not rs.reload_pending in
  if rs.cfg.requests > 0 then
    rs.completed + rs.failed + rs.wrong >= rs.cfg.requests
    || (issuing_over rs t && drained)
    || stalled rs t
  else
    (issuing_over rs t && drained)
    || t -. rs.start >= rs.cfg.duration_s +. drain_grace_s
    || stalled rs t

let step rs =
  let t = now () in
  sweep_timeouts rs t;
  maybe_reload rs t;
  Array.iter (fun c -> maybe_send rs c t) rs.conns;
  match Unix.select (select_fds rs) [] [] 0.01 with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | readable, _, _ ->
      List.iter
        (fun fd -> match conn_of_fd rs fd with Some c -> read_conn rs c | None -> ())
        readable

let rec drive rs = if finished rs (now ()) then () else begin step rs; drive rs end

let error_breakdown rs =
  let acc = ref [] in
  for i = Array.length rs.err_counts - 1 downto 0 do
    if rs.err_counts.(i) > 0 then acc := (Wire.error_code_name i, rs.err_counts.(i)) :: !acc
  done;
  !acc

let make_report rs =
  let stop = if rs.last_done > rs.start then rs.last_done else now () in
  let dur = stop -. rs.start in
  let sorted = samples_sorted rs.lat in
  {
    sent = rs.sent;
    completed = rs.completed;
    failed = rs.failed;
    wrong = rs.wrong;
    reloads = rs.reloads;
    timeouts = rs.timeouts;
    retried = rs.retried;
    sheds = rs.sheds;
    breaker_opens = rs.breaker_opens;
    error_codes = error_breakdown rs;
    duration_s = dur;
    qps = float_of_int rs.completed /. Float.max 0.000001 dur;
    p50_ms = rank sorted 0.50;
    p90_ms = rank sorted 0.90;
    p99_ms = rank sorted 0.99;
    max_ms = rank sorted 1.0;
  }

let open_all (cfg : config) =
  let n = max 1 cfg.conns in
  let rec go acc i =
    if i >= n then Ok (List.rev acc)
    else
      match open_conn cfg ~control:false with
      | Ok c -> go (c :: acc) (i + 1)
      | Error e ->
          List.iter kill acc;
          Error e
  in
  match go [] 0 with Ok l -> Ok (Array.of_list l) | Error e -> Error e

let run (cfg : config) =
  if Array.length cfg.pairs = 0 then Error "no origin/destination pairs to query"
  else if cfg.port <= 0 then Error "server port must be positive"
  else if cfg.requests <= 0 && cfg.duration_s <= 0.0 then
    Error "either a duration or a request count is required"
  else
    match open_all cfg with
    | Error e -> Error e
    | Ok conns -> (
        let ctl =
          match cfg.reload_at with
          | None -> Ok None
          | Some _ -> (
              match open_conn cfg ~control:true with
              | Ok c -> Ok (Some c)
              | Error e -> Error e)
        in
        match ctl with
        | Error e ->
            Array.iter kill conns;
            Error e
        | Ok ctl ->
            let rs =
              {
                cfg;
                conns;
                ctl;
                rd = Bytes.create 65536;
                lat = samples_create ();
                prng = Eutil.Prng.create cfg.seed;
                start = now ();
                issued = 0;
                sent = 0;
                completed = 0;
                failed = 0;
                wrong = 0;
                reloads = 0;
                timeouts = 0;
                retried = 0;
                sheds = 0;
                breaker_opens = 0;
                err_counts = Array.make 8 0;
                consec_failures = 0;
                breaker = Closed;
                reload_pending = (match cfg.reload_at with Some _ -> true | None -> false);
                next_pair = 0;
                last_done = 0.0;
              }
            in
            drive rs;
            (* Requests still pending at the cutoff never completed. *)
            Array.iter
              (fun c ->
                match c.pending with
                | Some _ ->
                    c.pending <- None;
                    rs.failed <- rs.failed + 1
                | None -> ())
              rs.conns;
            Obs.Metric.Gauge.set Metrics.breaker_open 0.0;
            Array.iter kill rs.conns;
            (match rs.ctl with Some c -> kill c | None -> ());
            Ok (make_report rs))

(* ------------------------------ output ----------------------------- *)

let json_num x = if Float.is_finite x then Printf.sprintf "%.6f" x else "null"

let errors_json codes =
  String.concat "," (List.map (fun (name, n) -> Printf.sprintf "\"%s\":%d" name n) codes)

let to_json (r : report) =
  Printf.sprintf
    "{\"sent\":%d,\"completed\":%d,\"failed\":%d,\"wrong\":%d,\"reloads\":%d,\
     \"timeouts\":%d,\"retried\":%d,\"sheds\":%d,\"breaker_opens\":%d,\"errors\":{%s},\
     \"duration_s\":%s,\"qps\":%s,\"p50_ms\":%s,\"p90_ms\":%s,\"p99_ms\":%s,\"max_ms\":%s}"
    r.sent r.completed r.failed r.wrong r.reloads r.timeouts r.retried r.sheds
    r.breaker_opens (errors_json r.error_codes) (json_num r.duration_s) (json_num r.qps)
    (json_num r.p50_ms) (json_num r.p90_ms) (json_num r.p99_ms) (json_num r.max_ms)

let pp fmt (r : report) =
  Format.fprintf fmt
    "@[<v>sent %d, completed %d, failed %d, wrong %d, reloads %d@,\
     timeouts %d, retried %d, sheds %d, breaker opens %d@,\
     %.2f s, %.0f req/s@,latency ms: p50 %.3f  p90 %.3f  p99 %.3f  max %.3f@]"
    r.sent r.completed r.failed r.wrong r.reloads r.timeouts r.retried r.sheds
    r.breaker_opens r.duration_s r.qps r.p50_ms r.p90_ms r.p99_ms r.max_ms;
  match r.error_codes with
  | [] -> ()
  | codes ->
      Format.fprintf fmt "@,errors:";
      List.iter (fun (name, n) -> Format.fprintf fmt " %s=%d" name n) codes
