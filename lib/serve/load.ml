type config = {
  host : string;
  port : int;
  conns : int;
  rate : float;
  duration_s : float;
  requests : int;
  pairs : (int * int) array;
  reload_at : float option;
}

let default =
  {
    host = "127.0.0.1";
    port = 4710;
    conns = 4;
    rate = 0.0;
    duration_s = 3.0;
    requests = 0;
    pairs = [||];
    reload_at = None;
  }

type report = {
  sent : int;
  completed : int;
  failed : int;
  wrong : int;
  reloads : int;
  duration_s : float;
  qps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* --------------------------- sample buffer ------------------------- *)

type samples = { mutable data : float array; mutable len : int }

let samples_create () = { data = Array.make 1024 0.0; len = 0 }

let samples_push s x =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0.0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

(* Exact percentile (nearest-rank) of the recorded samples. *)
let samples_sorted s =
  let a = Array.sub s.data 0 s.len in
  Array.sort Float.compare a;
  a

let rank sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let idx = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    let idx = if idx < 0 then 0 else if idx >= n then n - 1 else idx in
    sorted.(idx)
  end

(* ------------------------------ sockets ---------------------------- *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  control : bool;
  mutable outstanding : bool;
  mutable sent_at : float;
  mutable dead : bool;
}

let open_conn cfg ~control =
  match Unix.inet_addr_of_string cfg.host with
  | exception Failure _ -> Error (Printf.sprintf "not an address literal: %s" cfg.host)
  | addr -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, cfg.port)) with
      | () ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error (_e, _, _) -> ());
          Ok
            {
              fd;
              inbuf = Buffer.create 256;
              control;
              outstanding = false;
              sent_at = 0.0;
              dead = false;
            }
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_e, _, _) -> ());
          Error (Printf.sprintf "connect %s:%d: %s" cfg.host cfg.port (Unix.error_message err)))

let kill c =
  if not c.dead then begin
    c.dead <- true;
    c.outstanding <- false;
    try Unix.close c.fd with Unix.Unix_error (_e, _, _) -> ()
  end

let write_frame c payload =
  let n = String.length payload in
  let rec loop off =
    if off >= n then true
    else
      match Unix.write_substring c.fd payload off (n - off) with
      | written -> loop (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  try loop 0 with Unix.Unix_error (_e, _, _) -> false

(* ------------------------------ the run ---------------------------- *)

type run_state = {
  cfg : config;
  conns : conn array;  (* measurement connections *)
  ctl : conn option;  (* reload channel *)
  rd : Bytes.t;
  lat : samples;
  start : float;
  mutable sent : int;
  mutable completed : int;
  mutable failed : int;
  mutable wrong : int;
  mutable reloads : int;
  mutable reload_pending : bool;
  mutable next_pair : int;
  mutable last_done : float;
}

let now () = Unix.gettimeofday ()

let issuing_over rs now =
  if rs.cfg.requests > 0 then rs.sent >= rs.cfg.requests
  else now -. rs.start >= rs.cfg.duration_s

(* Closed-loop send: one query per idle live connection, paced so that
   request k is not issued before start + k/rate when a rate is set. *)
let maybe_send rs c t =
  if
    (not c.dead) && (not c.outstanding) && (not (issuing_over rs t))
    && (rs.cfg.rate <= 0.0
       || t -. rs.start >= float_of_int rs.sent /. Float.max 1.0 rs.cfg.rate)
  then begin
    let origin, dest = rs.cfg.pairs.(rs.next_pair) in
    rs.next_pair <- (rs.next_pair + 1) mod Array.length rs.cfg.pairs;
    if write_frame c (Wire.encode_request (Wire.Path_query { origin; dest })) then begin
      c.outstanding <- true;
      c.sent_at <- now ();
      rs.sent <- rs.sent + 1
    end
    else begin
      rs.failed <- rs.failed + 1;
      kill c
    end
  end

let maybe_reload rs t =
  match rs.ctl with
  | Some ctl
    when rs.reload_pending && (not ctl.outstanding) && (not ctl.dead)
         && (match rs.cfg.reload_at with Some at -> t -. rs.start >= at | None -> false) ->
      if write_frame ctl (Wire.encode_request Wire.Reload) then begin
        ctl.outstanding <- true;
        rs.reload_pending <- false
      end
      else kill ctl
  | _ -> ()

let record_reply rs c resp =
  if c.control then begin
    match resp with
    | Wire.Ack _ -> rs.reloads <- rs.reloads + 1
    | _ -> rs.wrong <- rs.wrong + 1
  end
  else begin
    (match resp with
    | Wire.Path_reply _ ->
        rs.completed <- rs.completed + 1;
        samples_push rs.lat ((now () -. c.sent_at) *. 1000.0)
    | Wire.Error_reply _ -> rs.failed <- rs.failed + 1
    | _ -> rs.wrong <- rs.wrong + 1);
    rs.last_done <- now ()
  end

let read_conn rs c =
  match Unix.read c.fd rs.rd 0 (Bytes.length rs.rd) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_e, _, _) ->
      if c.outstanding then rs.failed <- rs.failed + 1;
      kill c
  | 0 ->
      if c.outstanding then rs.failed <- rs.failed + 1;
      kill c
  | n -> (
      Buffer.add_subbytes c.inbuf rs.rd 0 n;
      let data = Buffer.contents c.inbuf in
      match Wire.decode_response data with
      | Error Wire.Truncated -> ()
      | Error _ ->
          if c.outstanding then rs.failed <- rs.failed + 1;
          kill c
      | Ok (resp, next) ->
          let len = String.length data in
          Buffer.clear c.inbuf;
          Buffer.add_substring c.inbuf data next (len - next);
          c.outstanding <- false;
          record_reply rs c resp)

let conn_of_fd rs fd =
  let n = Array.length rs.conns in
  let rec find i =
    if i >= n then rs.ctl
    else if rs.conns.(i).fd = fd && not rs.conns.(i).dead then Some rs.conns.(i)
    else find (i + 1)
  in
  find 0

let select_fds rs =
  let base =
    match rs.ctl with Some c when c.outstanding && not c.dead -> [ c.fd ] | _ -> []
  in
  Array.fold_left
    (fun acc c -> if c.outstanding && not c.dead then c.fd :: acc else acc)
    base rs.conns

let live_conns rs =
  Array.fold_left (fun acc c -> if c.dead then acc else acc + 1) 0 rs.conns

let outstanding rs =
  Array.fold_left (fun acc c -> if c.outstanding then acc + 1 else acc) 0 rs.conns

(* Drain straggler grace after issuing stops. *)
let drain_grace_s = 2.0

let finished rs t =
  let drained = outstanding rs = 0 && not rs.reload_pending in
  if live_conns rs = 0 then true
  else if rs.cfg.requests > 0 then
    rs.completed + rs.failed + rs.wrong >= rs.cfg.requests
    || (issuing_over rs t && drained)
  else
    (issuing_over rs t && drained)
    || t -. rs.start >= rs.cfg.duration_s +. drain_grace_s

let step rs =
  let t = now () in
  maybe_reload rs t;
  Array.iter (fun c -> maybe_send rs c t) rs.conns;
  match Unix.select (select_fds rs) [] [] 0.01 with
  | exception Unix.Unix_error (_e, _, _) -> ()
  | readable, _, _ ->
      List.iter
        (fun fd -> match conn_of_fd rs fd with Some c -> read_conn rs c | None -> ())
        readable

let rec drive rs = if finished rs (now ()) then () else begin step rs; drive rs end

let make_report rs =
  let stop = if rs.last_done > rs.start then rs.last_done else now () in
  let dur = stop -. rs.start in
  let sorted = samples_sorted rs.lat in
  {
    sent = rs.sent;
    completed = rs.completed;
    failed = rs.failed;
    wrong = rs.wrong;
    reloads = rs.reloads;
    duration_s = dur;
    qps = float_of_int rs.completed /. Float.max 0.000001 dur;
    p50_ms = rank sorted 0.50;
    p90_ms = rank sorted 0.90;
    p99_ms = rank sorted 0.99;
    max_ms = rank sorted 1.0;
  }

let open_all (cfg : config) =
  let n = max 1 cfg.conns in
  let rec go acc i =
    if i >= n then Ok (List.rev acc)
    else
      match open_conn cfg ~control:false with
      | Ok c -> go (c :: acc) (i + 1)
      | Error e ->
          List.iter kill acc;
          Error e
  in
  match go [] 0 with Ok l -> Ok (Array.of_list l) | Error e -> Error e

let run (cfg : config) =
  if Array.length cfg.pairs = 0 then Error "no origin/destination pairs to query"
  else if cfg.port <= 0 then Error "server port must be positive"
  else if cfg.requests <= 0 && cfg.duration_s <= 0.0 then
    Error "either a duration or a request count is required"
  else
    match open_all cfg with
    | Error e -> Error e
    | Ok conns -> (
        let ctl =
          match cfg.reload_at with
          | None -> Ok None
          | Some _ -> (
              match open_conn cfg ~control:true with
              | Ok c -> Ok (Some c)
              | Error e -> Error e)
        in
        match ctl with
        | Error e ->
            Array.iter kill conns;
            Error e
        | Ok ctl ->
            let rs =
              {
                cfg;
                conns;
                ctl;
                rd = Bytes.create 65536;
                lat = samples_create ();
                start = now ();
                sent = 0;
                completed = 0;
                failed = 0;
                wrong = 0;
                reloads = 0;
                reload_pending = (match cfg.reload_at with Some _ -> true | None -> false);
                next_pair = 0;
                last_done = 0.0;
              }
            in
            drive rs;
            Array.iter kill rs.conns;
            (match rs.ctl with Some c -> kill c | None -> ());
            Ok (make_report rs))

(* ------------------------------ output ----------------------------- *)

let json_num x = if Float.is_finite x then Printf.sprintf "%.6f" x else "null"

let to_json (r : report) =
  Printf.sprintf
    "{\"sent\":%d,\"completed\":%d,\"failed\":%d,\"wrong\":%d,\"reloads\":%d,\
     \"duration_s\":%s,\"qps\":%s,\"p50_ms\":%s,\"p90_ms\":%s,\"p99_ms\":%s,\"max_ms\":%s}"
    r.sent r.completed r.failed r.wrong r.reloads (json_num r.duration_s) (json_num r.qps)
    (json_num r.p50_ms) (json_num r.p90_ms) (json_num r.p99_ms) (json_num r.max_ms)

let pp fmt (r : report) =
  Format.fprintf fmt
    "@[<v>sent %d, completed %d, failed %d, wrong %d, reloads %d@,\
     %.2f s, %.0f req/s@,latency ms: p50 %.3f  p90 %.3f  p99 %.3f  max %.3f@]"
    r.sent r.completed r.failed r.wrong r.reloads r.duration_s r.qps r.p50_ms r.p90_ms
    r.p99_ms r.max_ms
