module G = Topo.Graph
module P = Topo.Path

let finite x = Float.is_finite x

let node_name g i = if i >= 0 && i < G.node_count g then G.name g i else Printf.sprintf "#%d" i

(* ----------------------------- graphs ----------------------------- *)

let check_graph g =
  let n = G.node_count g in
  let na = G.arc_count g in
  let nl = G.link_count g in
  let fs = ref [] in
  let add ?severity rule where msg = fs := Finding.v ?severity ~rule ~where msg :: !fs in
  for i = 0 to na - 1 do
    let a = G.arc g i in
    let where = Printf.sprintf "arc %d" i in
    if a.G.id <> i then add "graph-arc" where (Printf.sprintf "arc id %d stored at index %d" a.G.id i);
    if a.G.src < 0 || a.G.src >= n || a.G.dst < 0 || a.G.dst >= n then
      add "graph-arc" where
        (Printf.sprintf "dangling endpoint %d -> %d in a graph of %d nodes" a.G.src a.G.dst n)
    else if a.G.src = a.G.dst then add "graph-arc" where "self-loop arc";
    if a.G.rev < 0 || a.G.rev >= na then add "graph-arc" where "reverse arc id out of range"
    else begin
      let r = G.arc g a.G.rev in
      if r.G.rev <> i || r.G.src <> a.G.dst || r.G.dst <> a.G.src then
        add "graph-arc" where (Printf.sprintf "reverse arc %d is not its mirror" a.G.rev)
    end;
    if a.G.link < 0 || a.G.link >= nl then add "graph-arc" where "link id out of range"
    else begin
      let x, y = G.link_endpoints g a.G.link in
      if not ((x = a.G.src && y = a.G.dst) || (x = a.G.dst && y = a.G.src)) then
        add "graph-arc" where
          (Printf.sprintf "endpoints %d-%d do not match link %d (%d-%d)" a.G.src a.G.dst a.G.link x
             y)
    end;
    if (not (finite a.G.capacity)) || a.G.capacity <= 0.0 then
      add "graph-capacity" where (Printf.sprintf "non-positive capacity %g" a.G.capacity);
    if (not (finite a.G.latency)) || a.G.latency < 0.0 then
      add "graph-latency" where (Printf.sprintf "invalid latency %g" a.G.latency)
  done;
  List.rev !fs

(* ------------------------------ paths ----------------------------- *)

let arcs_in_range g (p : P.t) =
  Array.for_all (fun a -> a >= 0 && a < G.arc_count g) p.P.arcs

let check_path g ?expect ~where (p : P.t) =
  let fs = ref [] in
  let add rule msg = fs := Finding.v ~rule ~where msg :: !fs in
  if not (arcs_in_range g p) then add "path-discontiguous" "arc id out of range"
  else begin
    let arcs = p.P.arcs in
    let k = Array.length arcs in
    let contiguous = ref true in
    for j = 1 to k - 1 do
      if (G.arc g arcs.(j - 1)).G.dst <> (G.arc g arcs.(j)).G.src then contiguous := false
    done;
    if not !contiguous then add "path-discontiguous" "consecutive arcs do not chain head-to-tail";
    if k = 0 then begin
      if p.P.src <> p.P.dst then add "path-endpoint" "empty arc list but src <> dst"
    end
    else begin
      let first = G.arc g arcs.(0) and last = G.arc g arcs.(k - 1) in
      if first.G.src <> p.P.src || last.G.dst <> p.P.dst then
        add "path-endpoint"
          (Printf.sprintf "stored endpoints %s-%s do not match the arc sequence %s-%s"
             (node_name g p.P.src) (node_name g p.P.dst) (node_name g first.G.src)
             (node_name g last.G.dst))
    end;
    (match expect with
    | Some (o, d) when p.P.src <> o || p.P.dst <> d ->
        add "path-endpoint"
          (Printf.sprintf "path connects %s-%s but the entry expects %s-%s" (node_name g p.P.src)
             (node_name g p.P.dst) (node_name g o) (node_name g d))
    | _ -> ());
    if !contiguous then begin
      let seen = Hashtbl.create (k + 1) in
      let dup = ref None in
      let visit node = if Hashtbl.mem seen node then dup := Some node else Hashtbl.add seen node () in
      visit p.P.src;
      Array.iter (fun a -> visit (G.arc g a).G.dst) arcs;
      match !dup with
      | Some node -> add "path-loop" (Printf.sprintf "node %s visited twice" (node_name g node))
      | None -> ()
    end
  end;
  List.rev !fs

(* ----------------------------- tables ----------------------------- *)

type table_entry = {
  origin : int;
  dest : int;
  always_on : P.t;
  on_demand : P.t list;
  failover : P.t option;
}

let check_tables g ~pairs entries =
  let fs = ref [] in
  let add ?severity rule where msg = fs := Finding.v ?severity ~rule ~where msg :: !fs in
  let seen = Hashtbl.create (List.length entries) in
  List.iter
    (fun e ->
      let od = (e.origin, e.dest) in
      let where =
        Printf.sprintf "table entry %s->%s" (node_name g e.origin) (node_name g e.dest)
      in
      if Hashtbl.mem seen od then add "table-duplicate-pair" where "duplicate OD pair"
      else Hashtbl.replace seen od ();
      fs := List.rev_append (check_path g ~expect:od ~where:(where ^ " (always-on)") e.always_on) !fs;
      List.iteri
        (fun i p ->
          fs :=
            List.rev_append
              (check_path g ~expect:od ~where:(Printf.sprintf "%s (on-demand %d)" where i) p)
              !fs)
        e.on_demand;
      Option.iter
        (fun p ->
          fs := List.rev_append (check_path g ~expect:od ~where:(where ^ " (failover)") p) !fs)
        e.failover;
      (* Distinctness across the whole entry: installing the same path twice
         wastes a table slot and defeats the on-demand level machinery. *)
      let all =
        match e.failover with
        | Some f -> f :: e.always_on :: e.on_demand
        | None -> e.always_on :: e.on_demand
      in
      let rec dup_scan = function
        | [] -> ()
        | p :: rest ->
            if List.exists (P.equal p) rest then
              add "table-ondemand-dup" where "the same path is installed more than once";
            dup_scan rest
      in
      dup_scan all;
      (* §2.2: the failover path should be link-disjoint from the always-on
         path so that any single link failure leaves the pair connected. *)
      (match e.failover with
      | Some f when arcs_in_range g f && arcs_in_range g e.always_on ->
          if P.shares_link g f e.always_on then begin
            let ao = P.links g e.always_on in
            let shared = ref [] in
            Array.iter
              (fun l -> if Array.exists (fun l' -> l = l') ao then shared := l :: !shared)
              (P.links g f);
            let shared = List.sort_uniq Int.compare !shared in
            add ~severity:Finding.Warn "table-failover-overlap" where
              (Printf.sprintf "failover shares %d link(s) with the always-on path: %s"
                 (List.length shared)
                 (String.concat ", "
                    (List.map
                       (fun l ->
                         let x, y = G.link_endpoints g l in
                         Printf.sprintf "%s-%s" (node_name g x) (node_name g y))
                       shared)))
          end
      | _ -> ()))
    entries;
  List.iter
    (fun (o, d) ->
      if not (Hashtbl.mem seen (o, d)) then
        add "table-coverage"
          (Printf.sprintf "pair %s->%s" (node_name g o) (node_name g d))
          "no table entry: the always-on set must cover every OD pair")
    pairs;
  List.rev !fs

(* ---------------------------- LP models --------------------------- *)

let check_model m =
  let names = Lp.Model.var_names m in
  let n = Array.length names in
  let fs = ref [] in
  let add rule where msg = fs := Finding.v ~rule ~where msg :: !fs in
  let seen = Hashtbl.create n in
  Array.iteri
    (fun i name ->
      match Hashtbl.find_opt seen name with
      | Some j ->
          add "lp-duplicate-var"
            (Printf.sprintf "variable %d" i)
            (Printf.sprintf "name %S already used by variable %d" name j)
      | None -> Hashtbl.add seen name i)
    names;
  let var_label v =
    let i = Lp.Model.var_index v in
    if i >= 0 && i < n then names.(i) else Printf.sprintf "#%d" i
  in
  let check_terms where terms =
    List.iter
      (fun (c, v) ->
        let i = Lp.Model.var_index v in
        if i < 0 || i >= n then
          add "lp-var-range" where (Printf.sprintf "term references unknown variable %d" i);
        if not (finite c) then
          add "lp-nonfinite" where
            (Printf.sprintf "coefficient %g on variable %s" c (var_label v)))
      terms
  in
  List.iteri
    (fun idx (terms, _rel, rhs) ->
      let where = Printf.sprintf "constraint %d" idx in
      check_terms where terms;
      if not (finite rhs) then add "lp-nonfinite" where (Printf.sprintf "right-hand side %g" rhs);
      match (terms, _rel) with
      | [ (c, v) ], Lp.Simplex.Le when c > 0.0 && finite c && finite rhs && rhs /. c < 0.0 ->
          add "lp-bound" where
            (Printf.sprintf "upper bound %g on %s is below the implicit lower bound 0" (rhs /. c)
               (var_label v))
      | _ -> ())
    (Lp.Model.constraints m);
  Option.iter (check_terms "objective") (Lp.Model.objective_terms m);
  List.rev !fs

(* ------------------------- traffic matrices ----------------------- *)

let check_matrix g tm =
  let n = G.node_count g in
  if Traffic.Matrix.size tm <> n then
    [
      Finding.v ~rule:"tm-dimension" ~where:"traffic matrix"
        (Printf.sprintf "matrix is %dx%d but the graph has %d nodes" (Traffic.Matrix.size tm)
           (Traffic.Matrix.size tm) n);
    ]
  else begin
    let bad = ref 0 in
    let worst = ref 0.0 in
    ignore
      (Traffic.Matrix.fold_values tm ~init:() ~f:(fun () v ->
           if (not (finite v)) || v < 0.0 then begin
             incr bad;
             if Float.is_nan v || v < !worst then worst := v
           end));
    if !bad = 0 then []
    else
      [
        Finding.v ~rule:"tm-negative" ~where:"traffic matrix"
          (Printf.sprintf "%d negative or non-finite demand entr%s (worst %g)" !bad
             (if !bad = 1 then "y" else "ies")
             !worst);
      ]
  end

(* ---------------------------- power models ------------------------ *)

let check_power power g =
  let fs = ref [] in
  let add where msg = fs := Finding.v ~rule:"power-monotone" ~where msg :: !fs in
  G.fold_nodes g ~init:() ~f:(fun () i ->
      let w = Eutil.Units.to_float (Power.Model.node_power power g i) in
      if (not (finite w)) || w < 0.0 then
        add
          (Printf.sprintf "node %s" (node_name g i))
          (Printf.sprintf "chassis power %g W; total power would not be monotone" w));
  G.iter_links g ~f:(fun l ->
      let w = Eutil.Units.to_float (Power.Model.link_power power g l) in
      if (not (finite w)) || w < 0.0 then begin
        let x, y = G.link_endpoints g l in
        add
          (Printf.sprintf "link %s-%s" (node_name g x) (node_name g y))
          (Printf.sprintf "link power %g W; total power would not be monotone" w)
      end);
  List.rev !fs
