(* Lock-discipline analysis over the Callgraph token stream: lock-region
   recognition (Mutex.lock/unlock, Mutex.protect bodies, Fun.protect
   finalisers), per-definition held-lock summaries to an interprocedural
   fixpoint, a global lock-acquisition order graph with cycle reporting,
   blocking-under-lock detection, and atomic read-modify-write
   discipline. Zero dependencies beyond the token stream, like Effect and
   Share; the heuristics and their blind spots are documented in
   DESIGN.md §15. *)

module S = Srclint
module Cg = Callgraph

let is_upper s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'
let is_lower s = s <> "" && ((s.[0] >= 'a' && s.[0] <= 'z') || s.[0] = '_')

let last_comp s =
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let modkey = last_comp
let qualified (d : Cg.def) = d.Cg.d_module ^ "." ^ d.Cg.d_name

(* Blocking primitives beyond the Effect IO table: calls that can park
   the calling domain outright. *)
let blocking_prims =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun t -> Hashtbl.replace tbl t ())
    [ "Unix.read"; "Unix.write"; "Unix.select"; "Unix.sleep"; "Unix.sleepf"; "Unix.fsync";
      "Unix.waitpid"; "Unix.accept"; "Unix.connect"; "Domain.join"; "Thread.join" ];
  tbl

let is_blocking t = Hashtbl.mem blocking_prims t || Effect.is_io_prim t

(* ------------------------------------------------------------------ *)
(* Lock identities                                                    *)
(* ------------------------------------------------------------------ *)

type lock = {
  l_id : int;
  l_name : string;  (* "State.lock": enclosing module key + binding name *)
  l_library : string;
  l_file : string;
  l_line : int;
}

(* A lock is born at a [NAME = Mutex.create] binding — a toplevel [let],
   a [let] inside a function, or a record-field initialiser; in all three
   shapes the token before [=] is the lowercase name. The identity is the
   enclosing module key plus that name, which matches how the rest of the
   repo refers to it ([t.lock] in [State] is [State.lock]). *)
let harvest (g : Cg.t) =
  let tbl = Hashtbl.create 16 in
  let acc = ref [] in
  let count = ref 0 in
  Array.iter
    (fun (d : Cg.def) ->
      if not d.Cg.d_entry then
        let body = d.Cg.d_body in
        Array.iteri
          (fun i tk ->
            if
              tk.S.t = "Mutex.create" && i >= 2
              && body.(i - 1).S.t = "="
              && is_lower body.(i - 2).S.t
              && not (String.contains body.(i - 2).S.t '.')
            then begin
              let name = modkey d.Cg.d_module ^ "." ^ body.(i - 2).S.t in
              if not (Hashtbl.mem tbl name) then begin
                Hashtbl.replace tbl name !count;
                acc :=
                  {
                    l_id = !count;
                    l_name = name;
                    l_library = d.Cg.d_library;
                    l_file = d.Cg.d_file;
                    l_line = tk.S.tline;
                  }
                  :: !acc;
                incr count
              end
            end)
          body)
    g.Cg.defs;
  (Array.of_list (List.rev !acc), tbl)

(* Resolve a mutex-expression token to a lock id: [Obs.Span.completed_lock]
   by its last two components, [t.lock] / [w.qlock] by the enclosing module
   key plus the field name, a bare [completed_lock] by the enclosing module
   key plus the token. Unknown names resolve to [None] and are ignored. *)
let resolve_lock tbl (d : Cg.def) t =
  if t = "" || t = "(" then None
  else
    let name =
      if String.contains t '.' then
        match String.split_on_char '.' t with
        | first :: _ :: _ when is_upper first -> (
            match List.rev (String.split_on_char '.' t) with
            | name :: mk :: _ -> mk ^ "." ^ name
            | _ -> t)
        | _ -> modkey d.Cg.d_module ^ "." ^ last_comp t
      else modkey d.Cg.d_module ^ "." ^ t
    in
    Hashtbl.find_opt tbl name

(* ------------------------------------------------------------------ *)
(* Finally spans                                                      *)
(* ------------------------------------------------------------------ *)

let matching_close (body : S.tok array) i =
  let n = Array.length body in
  let level = ref 0 in
  let j = ref i in
  let r = ref n in
  while !r = n && !j < n do
    (match body.(!j).S.t with
    | "(" | "[" | "{" -> incr level
    | ")" | "]" | "}" ->
        decr level;
        if !level = 0 then r := !j
    | _ -> ());
    incr j
  done;
  !r

(* [finally_map body].(k) is, for tokens inside a [~finally:EXPR]
   argument, the index at which the enclosing [Fun.protect] application
   span ends (where the deferred finaliser conceptually runs); [-1]
   elsewhere. *)
let finally_map (body : S.tok array) =
  let n = Array.length body in
  let m = Array.make n (-1) in
  for i = 0 to n - 4 do
    if body.(i).S.t = "~" && body.(i + 1).S.t = "finally" && body.(i + 2).S.t = ":" then begin
      let start = i + 3 in
      let stop =
        if body.(start).S.t = "(" then min n (matching_close body start + 1) else min n (start + 1)
      in
      let rec back j =
        if j < 0 || i - j > 6 then None
        else if last_comp body.(j).S.t = "protect" then Some j
        else back (j - 1)
      in
      let pend = match back (i - 1) with Some p -> Cg.arg_span body p | None -> stop in
      for k = start to stop - 1 do
        m.(k) <- pend
      done
    end
  done;
  m

(* ------------------------------------------------------------------ *)
(* Per-definition scan                                                *)
(* ------------------------------------------------------------------ *)

type scan_result = {
  sr_acquires : (int * int list * int) list;  (* lock, held before, token *)
  sr_regions : (int * int * int) list;  (* lock, start token, stop token *)
  sr_blocking : (int * string * int list) list;  (* token, op, effective held *)
  sr_calls : (int * int * int list) list;  (* token, callee, full held *)
  sr_rmw : (int * string) list;  (* token, atomic target *)
  sr_self : (int * int) list;  (* token, lock re-acquired while held *)
  sr_params_held : int list;  (* locks held at a formal-param occurrence *)
}

(* One linear walk over a body. [held] is the ordered held-lock set; a
   lock enters it on [Mutex.lock], on a [Mutex.protect] head (released at
   the end of the application span), or on a call to a wrapper definition
   (released likewise); it leaves on [Mutex.unlock] — except that an
   unlock inside a [~finally:] argument is deferred to the end of the
   enclosing [Fun.protect] span, which is when the finaliser runs. *)
let scan ~tbl ~io_locked ~wrapper ~sites (d : Cg.def) =
  let body = d.Cg.d_body in
  let n = Array.length body in
  let fin = finally_map body in
  let params = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace params p ()) (Cg.def_params d);
  let sites_at = Hashtbl.create 16 in
  List.iter (fun (tok, c) -> Hashtbl.replace sites_at tok (c :: Option.value ~default:[] (Hashtbl.find_opt sites_at tok))) sites;
  (* [let NAME = Atomic.get TARGET] binders, for the RMW check. *)
  let binders = Hashtbl.create 4 in
  for j = 2 to n - 2 do
    if body.(j).S.t = "Atomic.get" && body.(j - 1).S.t = "=" && is_lower body.(j - 2).S.t && fin.(j) < 0
    then Hashtbl.replace binders body.(j - 2).S.t body.(j + 1).S.t
  done;
  (* First [=] at bracket level 0 ends the header; params only count as
     closure applications past it. *)
  let header_end =
    let level = ref 0 and j = ref 1 and r = ref n in
    while !r = n && !j < n do
      (match body.(!j).S.t with
      | "(" | "[" | "{" -> incr level
      | ")" | "]" | "}" -> decr level
      | "=" when !level = 0 -> r := !j
      | _ -> ());
      incr j
    done;
    !r
  in
  let held = ref [] in
  (* lock id, pending release index (max_int = explicit unlock) *)
  let starts = Hashtbl.create 4 in
  let acquires = ref [] and regions = ref [] and blocking = ref [] in
  let calls = ref [] and rmw = ref [] and self_acq = ref [] and params_held = ref [] in
  let held_ids () = List.map fst !held in
  let effective () = List.filter (fun l -> not io_locked.(l)) (held_ids ()) in
  let release ~at l =
    held := List.filter (fun (x, _) -> x <> l) !held;
    match Hashtbl.find_opt starts l with
    | Some s ->
        regions := (l, s, at) :: !regions;
        Hashtbl.remove starts l
    | None -> ()
  in
  let acquire ~at ~pend l =
    if List.mem_assoc l !held then self_acq := (at, l) :: !self_acq
    else begin
      acquires := (l, held_ids (), at) :: !acquires;
      held := (l, pend) :: !held;
      Hashtbl.replace starts l at
    end
  in
  let resolve_at j = if j < n then resolve_lock tbl d body.(j).S.t else None in
  for i = 0 to n - 1 do
    let due = List.filter (fun (_, p) -> p <= i) !held in
    List.iter (fun (l, _) -> release ~at:i l) due;
    let t = body.(i).S.t in
    if fin.(i) >= 0 then begin
      (* Inside a finaliser body: the only event that matters now is a
         deferred unlock; everything else runs at scope exit with a held
         set this linear scan does not model. *)
      if t = "Mutex.unlock" then
        match resolve_at (i + 1) with
        | Some l -> held := List.map (fun (x, p) -> if x = l then (x, min p fin.(i)) else (x, p)) !held
        | None -> ()
    end
    else begin
      (* A token that the graph resolved to a definition is only a call
         here when it is not a binder or a label pun: [fun labels ->] and
         [~labels] re-use names that by-file resolution maps to same-file
         definitions, and re-playing wrapper locks on those would invent
         critical sections. *)
      let binder_pos =
        i > 0
        &&
        match body.(i - 1).S.t with
        | "fun" | "~" | "?" | "let" | "and" | "rec" -> true
        | _ -> false
      in
      (match Hashtbl.find_opt sites_at i with
      | Some cs when not binder_pos ->
          List.iter
            (fun c ->
              if held_ids () <> [] then calls := (i, c, held_ids ()) :: !calls;
              List.iter (fun l -> acquire ~at:i ~pend:(Cg.arg_span body i) l) (wrapper c))
            cs
      | _ -> ());
      if t = "Mutex.lock" then (
        match resolve_at (i + 1) with Some l -> acquire ~at:i ~pend:max_int l | None -> ())
      else if t = "Mutex.unlock" then (
        match resolve_at (i + 1) with Some l -> release ~at:i l | None -> ())
      else if t = "Mutex.protect" || t = "Stdlib.Mutex.protect" then (
        match resolve_at (i + 1) with
        | Some l -> acquire ~at:i ~pend:(Cg.arg_span body i) l
        | None -> ())
      else if t = "Condition.wait" then begin
        (* [Condition.wait c m] releases [m] for the wait; waiting while
           holding any other lock blocks that lock's holders. *)
        let wm = resolve_at (i + 2) in
        let eff = List.filter (fun l -> Some l <> wm) (effective ()) in
        if eff <> [] then blocking := (i, "Condition.wait on a different mutex", eff) :: !blocking
      end
      else if is_blocking t then begin
        let eff = effective () in
        if eff <> [] then blocking := (i, t, eff) :: !blocking
      end
      else if t = "Atomic.set" && i + 1 < n && held_ids () = [] then begin
        (* Naked read-modify-write: the stored value depends on an
           [Atomic.get] of the same atomic — inline in the argument span,
           or through a [let]-binder — with no lock held and outside any
           finaliser (the save/restore idiom is sequential by design). *)
        let target = body.(i + 1).S.t in
        let stop = min (Cg.arg_span body i) n in
        let fired = ref false in
        for j = i + 2 to stop - 1 do
          let tj = body.(j).S.t in
          if
            (tj = "Atomic.get" && j + 1 < n && body.(j + 1).S.t = target)
            || match Hashtbl.find_opt binders tj with Some tgt -> tgt = target | None -> false
          then fired := true
        done;
        if !fired then rmw := (i, target) :: !rmw
      end;
      if i > header_end && Hashtbl.mem params t && held_ids () <> [] && Cg.applied_at d i then
        List.iter (fun l -> params_held := l :: !params_held) (held_ids ())
    end
  done;
  List.iter (fun (l, _) -> release ~at:n l) !held;
  {
    sr_acquires = List.rev !acquires;
    sr_regions = List.rev !regions;
    sr_blocking = List.rev !blocking;
    sr_calls = List.rev !calls;
    sr_rmw = List.rev !rmw;
    sr_self = List.rev !self_acq;
    sr_params_held = List.sort_uniq Int.compare !params_held;
  }

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)
(* ------------------------------------------------------------------ *)

let rules =
  [
    ( "lock-order-cycle",
      "two locks acquired in opposite orders somewhere in the program (potential deadlock), or a \
       mutex re-acquired while already held" );
    ( "blocking-under-lock",
      "blocking or IO operation reachable while a lock is held (warn; budgeted)" );
    ("lock-held-io", "blocking or IO operation under a lock on the declared serve hot path");
    ( "atomic-rmw",
      "naked Atomic.get-then-Atomic.set read-modify-write on the same atomic; use \
       compare_and_set/fetch_and_add" );
    ("useless-lock", "mutex never acquired, or whose critical sections guard nothing (warn)");
    ( "lock-manifest",
      "a check/locks.json entry does not resolve, an unknown key, or a certified-surface lock \
       missing from the declared order" );
  ]

(* Same convention as Share/Cost: "Server.handle_request" matches on the
   module key, optionally library-qualified. *)
let resolve_entry (g : Cg.t) name =
  let matches (d : Cg.def) =
    let mk = modkey d.Cg.d_module ^ "." ^ d.Cg.d_name in
    let qual = qualified d in
    let lib_qual = String.capitalize_ascii d.Cg.d_library ^ "." ^ qual in
    name = mk || name = qual || name = lib_qual
  in
  Array.to_list g.Cg.defs |> List.filter matches

let locks (g : Cg.t) =
  let ls, _ = harvest g in
  Array.to_list (Array.map (fun l -> (l.l_name, l.l_file, l.l_line)) ls)

let analyze ?(manifest = []) (g : Cg.t) =
  let defs = g.Cg.defs in
  let nd = Array.length defs in
  let locks, tbl = harvest g in
  let nl = Array.length locks in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let manifest_err msg = add (Finding.v ~rule:"lock-manifest" ~where:"check/locks.json" msg) in
  (* ---- manifest ---- *)
  List.iter
    (fun (key, _) ->
      match key with
      | "order" | "io_locks" | "hot" | "surface" -> ()
      | _ ->
          manifest_err
            (Printf.sprintf
               "unknown manifest key %S (expected \"order\", \"io_locks\", \"hot\" or \"surface\")"
               key))
    manifest;
  let lock_list key =
    match List.assoc_opt key manifest with
    | None -> []
    | Some names ->
        List.filter_map
          (fun name ->
            match Hashtbl.find_opt tbl name with
            | Some id -> Some id
            | None ->
                manifest_err (Printf.sprintf "%s entry %s does not name a known mutex" key name);
                None)
          names
  in
  let declared_order = lock_list "order" in
  let io_locked = Array.make (max nl 1) false in
  List.iter (fun l -> io_locked.(l) <- true) (lock_list "io_locks");
  let hot_defs =
    match List.assoc_opt "hot" manifest with
    | None -> []
    | Some names ->
        List.concat_map
          (fun name ->
            match resolve_entry g name with
            | [] ->
                manifest_err
                  (Printf.sprintf "hot entrypoint %s does not resolve to any definition" name);
                []
            | ds -> ds)
          names
  in
  let hot_reach =
    match hot_defs with
    | [] -> Array.make nd false
    | ds -> Cg.reachable g ~roots:(List.map (fun (d : Cg.def) -> d.Cg.d_id) ds)
  in
  (* surface: every lock living in a certified module must appear in the
     declared order, so the canonical order stays total over the surface. *)
  (match List.assoc_opt "surface" manifest with
  | None -> ()
  | Some entries ->
      let mod_of_lock l =
        match String.index_opt l.l_name '.' with
        | Some i -> String.sub l.l_name 0 i
        | None -> l.l_name
      in
      let covers entry l =
        match String.split_on_char '.' entry with
        | [ single ] ->
            String.lowercase_ascii single = l.l_library || single = mod_of_lock l
        | comps -> (
            match List.rev comps with mk :: _ -> mk = mod_of_lock l | [] -> false)
      in
      let in_order = Hashtbl.create 16 in
      List.iter (fun l -> Hashtbl.replace in_order l ()) declared_order;
      Array.iter
        (fun l ->
          if List.exists (fun e -> covers e l) entries && not (Hashtbl.mem in_order l.l_id) then
            manifest_err
              (Printf.sprintf
                 "lock %s is in the certified surface but missing from the declared \"order\""
                 l.l_name))
        locks);
  begin
    (* ---- pass 1: wrapper detection (no wrapper spans yet) ---- *)
    let no_wrap _ = [] in
    let wrapper_locks = Array.make nd [] in
    Array.iter
      (fun (d : Cg.def) ->
        if not d.Cg.d_entry then
          let r = scan ~tbl ~io_locked ~wrapper:no_wrap ~sites:g.Cg.sites.(d.Cg.d_id) d in
          wrapper_locks.(d.Cg.d_id) <- (if Cg.applies_params d then r.sr_params_held else []))
      defs;
    (* ---- pass 2: full event scan with wrapper spans ---- *)
    let results = Array.make nd None in
    Array.iter
      (fun (d : Cg.def) ->
        if not d.Cg.d_entry then
          results.(d.Cg.d_id) <-
            Some
              (scan ~tbl ~io_locked
                 ~wrapper:(fun c -> wrapper_locks.(c))
                 ~sites:g.Cg.sites.(d.Cg.d_id) d))
      defs;
    (* ---- may-acquire fixpoint ---- *)
    let acq = Array.make_matrix nd nl false in
    Array.iteri
      (fun i r ->
        match r with
        | Some r -> List.iter (fun (l, _, _) -> acq.(i).(l) <- true) r.sr_acquires
        | None -> ())
      results;
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to nd - 1 do
        List.iter
          (fun c ->
            for l = 0 to nl - 1 do
              if acq.(c).(l) && not acq.(i).(l) then begin
                acq.(i).(l) <- true;
                changed := true
              end
            done)
          g.Cg.callees.(i)
      done
    done;
    (* ---- may-block fixpoint ---- *)
    let direct_block = Array.make nd false in
    Array.iter
      (fun (d : Cg.def) ->
        let b = ref false in
        Array.iter
          (fun tk -> if is_blocking tk.S.t || tk.S.t = "Condition.wait" then b := true)
          d.Cg.d_body;
        direct_block.(d.Cg.d_id) <- !b)
      defs;
    let blk = Array.copy direct_block in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to nd - 1 do
        if not blk.(i) then
          if List.exists (fun c -> blk.(c)) g.Cg.callees.(i) then begin
            blk.(i) <- true;
            changed := true
          end
      done
    done;
    (* ---- order graph ---- *)
    let edges = Hashtbl.create 32 in
    let add_edge h l w = if h <> l && not (Hashtbl.mem edges (h, l)) then Hashtbl.replace edges (h, l) w in
    let where_tok (d : Cg.def) tok =
      let line = if tok < Array.length d.Cg.d_body then d.Cg.d_body.(tok).S.tline else d.Cg.d_line in
      Printf.sprintf "%s:%d" d.Cg.d_file line
    in
    let held_arr = Array.make nl false in
    Array.iter
      (fun (d : Cg.def) ->
        match results.(d.Cg.d_id) with
        | None -> ()
        | Some r ->
            List.iter
              (fun (l, held_before, tok) ->
                List.iter
                  (fun h ->
                    add_edge h l
                      (Printf.sprintf "%s (%s) acquires %s while holding %s" (qualified d)
                         (where_tok d tok) locks.(l).l_name locks.(h).l_name))
                  held_before)
              r.sr_acquires;
            List.iter
              (fun (tok, c, held) ->
                Array.fill held_arr 0 nl false;
                List.iter (fun h -> held_arr.(h) <- true) held;
                for l = 0 to nl - 1 do
                  if acq.(c).(l) && not held_arr.(l) then
                    List.iter
                      (fun h ->
                        add_edge h l
                          (Printf.sprintf "%s (%s) calls %s which may acquire %s while holding %s"
                             (qualified d) (where_tok d tok)
                             (qualified defs.(c))
                             locks.(l).l_name locks.(h).l_name))
                      held
                done)
              r.sr_calls)
      defs;
    (* Declared edges: the manifest order is the canonical total order; a
       declared edge only fills in where no actual edge gives a better
       witness, and contradiction with actual edges shows up as a cycle. *)
    let rec declared_pairs = function
      | [] -> ()
      | x :: rest ->
          List.iter
            (fun y -> add_edge x y (Printf.sprintf "declared order in check/locks.json (%s before %s)" locks.(x).l_name locks.(y).l_name))
            rest;
          declared_pairs rest
    in
    declared_pairs declared_order;
    (* ---- cycles: mutually reachable lock pairs ---- *)
    let reach = Array.make_matrix nl nl false in
    Hashtbl.iter (fun (h, l) _ -> reach.(h).(l) <- true) edges;
    for k = 0 to nl - 1 do
      for i = 0 to nl - 1 do
        for j = 0 to nl - 1 do
          if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
        done
      done
    done;
    let path u v =
      (* BFS over [edges], returning the edge witnesses along a shortest
         path from [u] to [v]. *)
      let prev = Array.make nl (-1) in
      let seen = Array.make nl false in
      seen.(u) <- true;
      let q = Queue.create () in
      Queue.add u q;
      let found = ref false in
      while (not !found) && not (Queue.is_empty q) do
        let x = Queue.pop q in
        for y = 0 to nl - 1 do
          if (not seen.(y)) && Hashtbl.mem edges (x, y) then begin
            seen.(y) <- true;
            prev.(y) <- x;
            if y = v then found := true else Queue.add y q
          end
        done
      done;
      if not !found then []
      else begin
        let rec walk y acc = if y = u then acc else walk prev.(y) ((prev.(y), y) :: acc) in
        List.filter_map (fun (a, b) -> Hashtbl.find_opt edges (a, b)) (walk v [])
      end
    in
    for u = 0 to nl - 1 do
      for v = u + 1 to nl - 1 do
        if reach.(u).(v) && reach.(v).(u) then
          add
            (Finding.v ~rule:"lock-order-cycle"
               ~where:(Printf.sprintf "%s:%d" locks.(u).l_file locks.(u).l_line)
               (Printf.sprintf "%s and %s are acquired in both orders: [%s] vs [%s]"
                  locks.(u).l_name locks.(v).l_name
                  (String.concat "; " (path u v))
                  (String.concat "; " (path v u))))
      done
    done;
    (* ---- per-definition findings ---- *)
    let used = Array.make nl false in
    let locked_once = Array.make nl false in
    Array.iter
      (fun (d : Cg.def) ->
        match results.(d.Cg.d_id) with
        | None -> ()
        | Some r ->
            List.iter
              (fun (tok, l) ->
                add
                  (Finding.v ~rule:"lock-order-cycle" ~where:(where_tok d tok)
                     (Printf.sprintf
                        "%s re-acquires %s while already holding it (OCaml mutexes are not \
                         reentrant)"
                        (qualified d) locks.(l).l_name)))
              r.sr_self;
            let names ls = String.concat ", " (List.map (fun l -> locks.(l).l_name) ls) in
            let blocking_rule () =
              if hot_reach.(d.Cg.d_id) then ("lock-held-io", Finding.Error)
              else ("blocking-under-lock", Finding.Warn)
            in
            List.iter
              (fun (tok, op, eff) ->
                let rule, severity = blocking_rule () in
                add
                  (Finding.v ~severity ~rule ~where:(where_tok d tok)
                     (Printf.sprintf "%s: %s while holding %s" (qualified d) op (names eff))))
              r.sr_blocking;
            List.iter
              (fun (tok, c, held) ->
                let eff = List.filter (fun l -> not io_locked.(l)) held in
                if eff <> [] && blk.(c) then begin
                  let chain =
                    match Cg.witness g ~from:c ~target:(fun j -> direct_block.(j)) with
                    | Some ids -> String.concat " -> " (List.map (fun j -> qualified defs.(j)) ids)
                    | None -> qualified defs.(c)
                  in
                  let rule, severity = blocking_rule () in
                  add
                    (Finding.v ~severity ~rule ~where:(where_tok d tok)
                       (Printf.sprintf "%s calls %s, which may block (%s), while holding %s"
                          (qualified d) (qualified defs.(c)) chain (names eff)))
                end)
              r.sr_calls;
            List.iter
              (fun (tok, target) ->
                add
                  (Finding.v ~rule:"atomic-rmw" ~where:(where_tok d tok)
                     (Printf.sprintf
                        "%s: naked Atomic.get-then-Atomic.set read-modify-write on %s; use a \
                         compare_and_set retry loop or fetch_and_add"
                        (qualified d) target)))
              r.sr_rmw;
            (* useless-lock evidence: anything in a critical section that
               plausibly touches shared state — a field/module access, a
               mutation operator, or a resolved call. *)
            let body = d.Cg.d_body in
            let nb = Array.length body in
            List.iter
              (fun (l, start, stop) ->
                locked_once.(l) <- true;
                if not used.(l) then begin
                  let evidence_tok tj =
                    tj = "<-" || tj = ":=" || tj = "!" || tj = "incr" || tj = "decr"
                    || (String.contains tj '.'
                       && tj.[0] <> '.'
                       && not (tj.[0] >= '0' && tj.[0] <= '9')
                       && (not (String.starts_with ~prefix:"Mutex." tj))
                       && (not (String.starts_with ~prefix:"Condition." tj))
                       && (not (String.starts_with ~prefix:"Fun." tj))
                       && resolve_lock tbl d tj = None)
                  in
                  for j = start + 1 to min (stop - 1) (nb - 1) do
                    if evidence_tok body.(j).S.t then used.(l) <- true
                  done;
                  (* A site only counts when it is not the mutex itself:
                     the lock name resolves to its own defining binding. *)
                  List.iter
                    (fun (tok, _) ->
                      if
                        tok > start && tok < stop
                        && resolve_lock tbl d body.(tok).S.t = None
                      then used.(l) <- true)
                    g.Cg.sites.(d.Cg.d_id)
                end)
              r.sr_regions)
      defs;
    Array.iter
      (fun l ->
        if not locked_once.(l.l_id) then
          add
            (Finding.v ~severity:Finding.Warn ~rule:"useless-lock"
               ~where:(Printf.sprintf "%s:%d" l.l_file l.l_line)
               (Printf.sprintf "mutex %s is never acquired" l.l_name))
        else if not used.(l.l_id) then
          add
            (Finding.v ~severity:Finding.Warn ~rule:"useless-lock"
               ~where:(Printf.sprintf "%s:%d" l.l_file l.l_line)
               (Printf.sprintf "mutex %s is acquired but its critical sections guard nothing"
                  l.l_name)))
      locks;
    List.rev !findings
  end
