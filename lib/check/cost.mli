(** Loop-cost and allocation analysis over the {!Callgraph}: the static
    half of the hot-path campaign (ROADMAP item 1). Like {!Effect} and
    {!Share} it is a zero-dependency heuristic over {!Srclint} tokens.

    {b Intraprocedural}: every definition body gets a per-token lexical
    loop depth — [for]/[while ... done] blocks, the argument span of
    higher-order iteration calls (a dotted name whose last component is
    [iter]/[map]/[fold]/[filter]/[for_all]/[exists]/[partition]/[concat]/
    [sort], with suffixes like [fold_left], [iteri], [map2]), and
    recursive bodies ([let rec] anywhere in the body, or a self-call of
    the definition's own name) each add one level.

    {b Interprocedural}: per-definition facts are propagated along call
    sites to a Kleene fixpoint on finite lattices, so costs compose —
    a depth-1 callee invoked from a depth-1 site makes the caller
    depth 2, clamped at {!max_depth}:
    - [c_cost]: loop-nest depth including callees, weighted by the
      lexical depth of each call site;
    - [c_alloc]: may allocate a container at all;
    - [c_alloc_per_iter]: may allocate on every iteration of some loop
      (a local allocation inside a loop, a call {e from} a loop to an
      allocating function, or a call to a function that already
      allocates per iteration).

    Rules (see {!analyze}): [quadratic-list-op], [rebuild-in-loop],
    [alloc-in-hot-loop], [memo-unsafe], [cost-manifest].

    Known false negatives, documented in DESIGN.md §12: loops through
    undotted local helpers ([let loop = ... in loop xs]), iteration via
    [Fun.iterate]-style combinators not matching the name heuristic,
    [List.find]/[Seq] pipelines (excluded so [find_opt] lookups do not
    count as loops), allocation through [::]/closures/records (only
    explicit container constructors are tracked), and [for]-loop bounds,
    which are treated as inside the loop although evaluated once. *)

type info = {
  c_local_depth : int;  (** max lexical loop depth inside the own body *)
  c_cost : int;  (** interprocedural loop-nest depth, clamped at {!max_depth} *)
  c_alloc : bool;  (** transitively may allocate a container *)
  c_alloc_per_iter : bool;  (** transitively may allocate per loop iteration *)
}

val max_depth : int
(** Clamp for the cost lattice (3): beyond cubic, deeper is not more
    interesting and the clamp keeps the fixpoint finite. *)

val depths : Srclint.tok array -> int array
(** Per-token lexical loop depth of one body, before clamping; exposed
    for tests. The array is indexed like the body. *)

val depths_of_string : string -> (string * int) array
(** Tokenizes [clean]ed source and pairs each token with its lexical
    loop depth; fixture-friendly wrapper over {!depths}. *)

val infer : Callgraph.t -> info array
(** Per-definition cost facts at the fixpoint, indexed by [d_id]. *)

val rules : (string * string) list
(** [(id, description)] pairs for [respctl analyze --list-rules]. *)

val analyze : ?manifest:(string * string list) list -> Callgraph.t -> Finding.t list
(** Runs the cost rules over library definitions (entry-point bodies are
    reachability context only). [manifest] is the parsed [check/cost.json]
    ({!Share.parse_manifest} format) with two recognised keys: ["hot"]
    (declared hot entrypoints) and ["memo"] (functions registered with
    [Eutil.Memo]).

    - [quadratic-list-op] (error): an O(n) list primitive ([List.append],
      [@], [List.mem]/[memq]/[mem_assoc], [List.assoc]/[assoc_opt],
      [List.nth]/[nth_opt]) at lexical loop depth >= 1.
    - [rebuild-in-loop] (error): a container constructed afresh on every
      iteration ([Hashtbl.create], [Array.make]/[make_matrix]/
      [create_float], [Buffer.create], [Bytes.create], [Queue.create],
      [Stack.create], [Array.to_list], [Array.of_list] at depth >= 1).
    - [alloc-in-hot-loop] (warn): a declared hot entrypoint whose
      transitive [c_alloc_per_iter] bit is set; the message carries the
      shortest call chain to the definition with the per-iteration
      allocation site.
    - [memo-unsafe] (error): a declared memoized function whose
      {!Effect} facts show transitive nondeterminism, IO or partiality,
      or whose own body raises directly. The [obs] library is treated as
      effect-free here: instrumentation reads clocks, but spans do not
      change the wrapped value, and [Eutil.Memo] never caches an
      exceptional outcome (DESIGN.md §12 records this exemption).
    - [cost-manifest] (error): a manifest entry that does not resolve to
      any definition, or an unrecognised manifest key. *)
