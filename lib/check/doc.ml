(* Odoc stand-in (DESIGN.md §12): validate doc-comment structure without
   rendering. Three rules, all errors — the alias gates the build, so a
   finding here is a broken doc contract, not a style nit. *)

let rules =
  [
    ("raise-malformed", "@raise is not followed by a capitalized exception name (error)");
    ("doc-unknown-tag", "doc comment uses a tag odoc does not know, e.g. @raises (error)");
    ("doc-unterminated", "doc comment opened with (** but never closed (error)");
  ]

(* The block tags odoc 2.x accepts. Anything else at the start of a doc
   line is a typo that odoc would either reject or render as prose. *)
let known_tag = function
  | "author" | "deprecated" | "param" | "raise" | "return" | "see" | "since" | "before"
  | "version" | "canonical" | "inline" | "open" | "closed" | "hidden" ->
      true
  | _ -> false

let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = c >= 'a' && c <= 'z'

let is_ident_char c =
  is_upper c || is_lower c || (c >= '0' && c <= '9') || c = '_' || c = '\'' || c = '.'

(* A capitalized, possibly module-qualified exception name:
   [Invalid_argument], [Unix.Unix_error]. *)
let looks_like_exception w =
  String.length w > 0 && is_upper w.[0] && String.for_all is_ident_char w

let split_lines s = String.split_on_char '\n' s

(* Check one doc-comment body. [start_line] is the line of the opening
   "(**"; body lines keep their newlines so offsets stay honest. *)
let check_body ~start_line body add =
  List.iteri
    (fun off line ->
      let lnum = start_line + off in
      let n = String.length line in
      let i = ref 0 in
      while !i < n && (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '*') do
        incr i
      done;
      if !i < n && line.[!i] = '@' then begin
        let t0 = !i + 1 in
        let j = ref t0 in
        while !j < n && is_lower line.[!j] do
          incr j
        done;
        let tag = String.sub line t0 (!j - t0) in
        if tag = "raise" then begin
          let k = ref !j in
          while !k < n && (line.[!k] = ' ' || line.[!k] = '\t') do
            incr k
          done;
          let w0 = !k in
          while !k < n && is_ident_char line.[!k] do
            incr k
          done;
          let exn = String.sub line w0 (!k - w0) in
          if not (looks_like_exception exn) then
            add ~line:lnum "raise-malformed"
              (Printf.sprintf "@raise must name a capitalized exception, got %S" exn)
        end
        else if tag <> "" && not (known_tag tag) then
          add ~line:lnum "doc-unknown-tag" (Printf.sprintf "unknown doc tag @%s" tag)
      end)
    (split_lines body)

let check_string ~file text =
  let findings = ref [] in
  let add ~line rule msg =
    findings :=
      Finding.v ~severity:Finding.Error ~rule ~where:(Printf.sprintf "%s:%d" file line) msg
      :: !findings
  in
  let n = String.length text in
  let line = ref 1 in
  let i = ref 0 in
  (* Comments nest in OCaml, and the lexer skips string literals both in
     code and inside comments (a comment containing "*)" in a string is
     legal); only the outermost "(**" opens a doc comment, and its body
     runs to the matching close. *)
  let depth = ref 0 in
  let doc_start = ref 0 in
  let is_doc = ref false in
  let body = Buffer.create 128 in
  let bump k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if text.[j] = '\n' then incr line;
      if !depth > 0 && !is_doc then Buffer.add_char body text.[j]
    done;
    i := !i + k
  in
  while !i < n do
    let c = text.[!i] in
    if c = '"' then begin
      (* Skip the whole string literal, honouring backslash escapes. *)
      bump 1;
      let closed = ref false in
      while (not !closed) && !i < n do
        if text.[!i] = '\\' then bump 2
        else if text.[!i] = '"' then begin
          closed := true;
          bump 1
        end
        else bump 1
      done
    end
    else if !depth = 0 && c = '\'' && !i + 2 < n && text.[!i + 1] = '\\' && !i + 3 < n
            && text.[!i + 3] = '\'' then bump 4 (* '\"' and friends *)
    else if !depth = 0 && c = '\'' && !i + 2 < n && text.[!i + 2] = '\'' then bump 3 (* '"' *)
    else if !i + 1 < n && c = '(' && text.[!i + 1] = '*' then begin
      if !depth = 0 then begin
        is_doc := !i + 2 < n && text.[!i + 2] = '*' && not (!i + 3 < n && text.[!i + 3] = '*');
        doc_start := !line;
        Buffer.clear body;
        incr depth;
        i := !i + 2
      end
      else begin
        incr depth;
        bump 2
      end
    end
    else if !i + 1 < n && c = '*' && text.[!i + 1] = ')' then begin
      if !depth > 0 then decr depth;
      if !depth = 0 then begin
        if !is_doc then check_body ~start_line:!doc_start (Buffer.contents body) add;
        is_doc := false;
        i := !i + 2
      end
      else bump 2
    end
    else bump 1
  done;
  if !depth > 0 && !is_doc then begin
    check_body ~start_line:!doc_start (Buffer.contents body) add;
    add ~line:!doc_start "doc-unterminated" "doc comment is never closed"
  end;
  List.rev !findings

let check_paths paths =
  List.concat_map
    (fun path -> check_string ~file:path (Srclint.read_file path))
    (Srclint.source_files paths)
