(** Semantic validators over the domain IR: topology graphs, installed
    paths, REsPoNse path tables (paper §2.2), LP models, traffic matrices,
    and power models. Each validator returns findings instead of raising so
    that callers can aggregate a full report; [Finding.errors] selects the
    hard violations.

    Rules:
    - [graph-arc]: dangling or inconsistent arc/link wiring.
    - [graph-capacity]: non-positive or non-finite arc capacity.
    - [graph-latency]: negative or non-finite arc latency.
    - [path-discontiguous]: arc ids out of range or consecutive arcs that do
      not chain head-to-tail.
    - [path-endpoint]: stored or expected endpoints do not match the arcs.
    - [path-loop]: a node is visited twice.
    - [table-coverage]: an OD pair from [pairs] has no table entry — the
      always-on set must cover every pair.
    - [table-duplicate-pair]: two entries for the same OD pair.
    - [table-ondemand-dup]: the same path installed twice for one pair.
    - [table-failover-overlap] (warning): the failover path shares a link
      with the always-on path it protects; §2.2 wants link-disjointness, but
      some topologies only admit maximally-disjoint failovers.
    - [lp-duplicate-var]: two LP variables share a name.
    - [lp-var-range]: a term references an out-of-range variable.
    - [lp-nonfinite]: NaN or infinite coefficient, bound, or objective term.
    - [lp-bound]: a single-variable upper bound below the implicit lower
      bound 0 (unsatisfiable).
    - [tm-dimension]: traffic matrix size does not match the node count.
    - [tm-negative]: negative or non-finite demand entry.
    - [power-monotone]: a negative or non-finite power component, which
      would make total power non-monotone in the activity state. *)

val check_graph : Topo.Graph.t -> Finding.t list

val check_path :
  Topo.Graph.t -> ?expect:int * int -> where:string -> Topo.Path.t -> Finding.t list
(** [expect] is the OD pair the path is supposed to connect. *)

type table_entry = {
  origin : int;
  dest : int;
  always_on : Topo.Path.t;
  on_demand : Topo.Path.t list;
  failover : Topo.Path.t option;
}
(** Structural mirror of [Response.Tables.entry]; duplicated here so the
    checker does not depend on the [response] library (which itself calls
    these validators at table-install time). *)

val check_tables :
  Topo.Graph.t -> pairs:(int * int) list -> table_entry list -> Finding.t list
(** Validates every entry's paths, coverage of [pairs], distinctness, and
    failover disjointness. *)

val check_model : Lp.Model.t -> Finding.t list

val check_matrix : Topo.Graph.t -> Traffic.Matrix.t -> Finding.t list

val check_power : Power.Model.t -> Topo.Graph.t -> Finding.t list
