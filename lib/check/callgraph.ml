(* Heuristic project-wide call graph over toplevel definitions. Shares the
   Srclint lexer; tuned to this repo's ocamlformat layout (column-1
   toplevel items, column-3 items inside a column-1 [module _ = struct]).
   See callgraph.mli and DESIGN.md §10 for the accepted blind spots. *)

module S = Srclint

type source = { sc_file : string; sc_library : string; sc_entry : bool; sc_text : string }

type def = {
  d_id : int;
  d_library : string;
  d_module : string;
  d_name : string;
  d_file : string;
  d_line : int;
  d_entry : bool;
  d_public : bool;
  d_body : S.tok array;
}

type vdecl = {
  v_file : string;
  v_library : string;
  v_module : string;
  v_name : string;
  v_line : int;
  v_raise_doc : bool;
}

type file = {
  f_path : string;
  f_library : string;
  f_entry : bool;
  f_toks : S.tok array;
}

type t = {
  defs : def array;
  callees : int list array;
  sites : (int * int) list array;
  vals : vdecl list;
  files : file list;
}

(* ------------------------------------------------------------------ *)
(* Small string helpers                                               *)
(* ------------------------------------------------------------------ *)

let is_upper s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'
let is_lower s = s <> "" && ((s.[0] >= 'a' && s.[0] <= 'z') || s.[0] = '_')

let split_dots s = String.split_on_char '.' s

let rec last_two = function
  | [] -> ("", "")
  | [ x ] -> ("", x)
  | [ x; y ] -> (x, y)
  | _ :: tl -> last_two tl

let contains_sub text sub =
  let n = String.length text and m = String.length sub in
  let rec at i = i + m <= n && (String.sub text i m = sub || at (i + 1)) in
  m > 0 && at 0

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* ------------------------------------------------------------------ *)
(* Definition extraction from one .ml file                            *)
(* ------------------------------------------------------------------ *)

(* Column-1 tokens that end the previous definition's body; a table because
   the membership test runs once per token of every scanned file. *)
let boundary_kw =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun kw -> Hashtbl.replace tbl kw ())
    [ "let"; "and"; "type"; "module"; "open"; "exception"; "include"; "end"; "val"; "class";
      "external" ];
  tbl

type mark = { m_idx : int; m_def : (string * string * int) option }
(* m_def = Some (module_path, name, line) for a definition start. *)

(* Name of the definition whose [let]/[and] keyword is at token [i]:
   ["()"] for unit bindings, the operator symbol for [let ( + ) ...],
   ["_"] for wildcard or destructuring patterns. *)
let is_attr t = String.length t >= 2 && t.[0] = '[' && t.[1] = '@'

let def_name (toks : S.tok array) i =
  let n = Array.length toks in
  (* Skip, in any order: attributes ([let[@inline] f]), extension markers
     ([let%test ...] lexes as "%" "test"), and [rec]. *)
  let rec skip j =
    if j >= n then j
    else
      let t = toks.(j).S.t in
      if is_attr t then skip (j + 1)
      else if t = "%" then skip (j + 2)
      else if t = "rec" then skip (j + 1)
      else j
  in
  let j = skip (i + 1) in
  if j >= n then "_"
  else
    let tj = toks.(j).S.t in
    if tj = "(" then
      if j + 1 < n && toks.(j + 1).S.t = ")" then "()"
      else if j + 1 < n then toks.(j + 1).S.t
      else "_"
    else if is_lower tj then tj
    else "_"

let defs_of_ml ~library ~entry ~file text =
  let cleaned = S.clean text in
  let toks = S.tokenize cleaned.S.text in
  let n = Array.length toks in
  let file_module = module_of_file file in
  let marks = ref [] in
  let aliases = Hashtbl.create 7 in
  let submod = ref None in
  (* Whether the previous column-1 / column-3 item was a [let]/[and]
     definition, so that a following [and] continues the chain (as opposed
     to [type t = ... and u = ...]). *)
  let chain1 = ref false and chain3 = ref false in
  let add_boundary i = marks := { m_idx = i; m_def = None } :: !marks in
  let add_def i ~module_path =
    marks := { m_idx = i; m_def = Some (module_path, def_name toks i, toks.(i).S.tline) } :: !marks
  in
  let tok_at j = if j < n then toks.(j).S.t else "" in
  for i = 0 to n - 1 do
    let { S.t; tcol; _ } = toks.(i) in
    if tcol = 1 then begin
      (match t with
      | "let" ->
          submod := None;
          add_def i ~module_path:file_module
      | "and" when !chain1 -> add_def i ~module_path:file_module
      | "module" ->
          if tok_at (i + 1) <> "type" then begin
            let name = tok_at (i + 1) in
            if is_upper name && tok_at (i + 2) = "=" then begin
              let rhs = tok_at (i + 3) in
              if rhs = "struct" then submod := Some name
              else if is_upper rhs then Hashtbl.replace aliases name rhs
            end
            else if is_upper name && tok_at (i + 2) = ":" then begin
              (* [module X : SIG = struct]: look a few tokens ahead. *)
              let rec scan j k =
                if k = 0 || j >= n then ()
                else if toks.(j).S.t = "struct" then submod := Some name
                else scan (j + 1) (k - 1)
              in
              scan (i + 3) 8
            end
          end;
          add_boundary i
      | "end" ->
          submod := None;
          add_boundary i
      | kw when Hashtbl.mem boundary_kw kw -> add_boundary i
      | _ -> ());
      if Hashtbl.mem boundary_kw t then chain1 := t = "let" || (t = "and" && !chain1)
    end
    else if tcol = 3 then begin
      (match (!submod, t) with
      | Some m, "let" -> add_def i ~module_path:(file_module ^ "." ^ m)
      | Some m, "and" when !chain3 -> add_def i ~module_path:(file_module ^ "." ^ m)
      | Some _, kw when Hashtbl.mem boundary_kw kw -> add_boundary i
      | _ -> ());
      if !submod <> None && Hashtbl.mem boundary_kw t then
        chain3 := t = "let" || (t = "and" && !chain3)
    end
  done;
  let marks = Array.of_list (List.rev !marks) in
  let defs = ref [] in
  Array.iteri
    (fun k { m_idx; m_def } ->
      match m_def with
      | None -> ()
      | Some (module_path, name, line) ->
          let stop = if k + 1 < Array.length marks then marks.(k + 1).m_idx else n in
          let body = Array.sub toks m_idx (stop - m_idx) in
          defs :=
            {
              d_id = 0 (* assigned later *);
              d_library = library;
              d_module = module_path;
              d_name = name;
              d_file = file;
              d_line = line;
              d_entry = entry;
              d_public = false (* assigned later *);
              d_body = body;
            }
            :: !defs)
    marks;
  (List.rev !defs, aliases, toks)

(* ------------------------------------------------------------------ *)
(* val declarations (and @raise docs) from one .mli file              *)
(* ------------------------------------------------------------------ *)

let vals_of_mli ~library ~file text =
  let cleaned = S.clean text in
  let toks = S.tokenize cleaned.S.text in
  let n = Array.length toks in
  let file_module = module_of_file file in
  (* Doc comments are blanked by [clean], so scan the raw text for the
     lines that mention @raise. *)
  let raise_lines = ref [] in
  List.iteri
    (fun i line -> if contains_sub line "@raise" then raise_lines := (i + 1) :: !raise_lines)
    (String.split_on_char '\n' text);
  let raise_lines = !raise_lines in
  let decls = ref [] in
  for i = 0 to n - 1 do
    let { S.t; tcol; tline } = toks.(i) in
    if tcol = 1 && (t = "val" || t = "external") && i + 1 < n then begin
      let name =
        let t1 = toks.(i + 1).S.t in
        if t1 = "(" && i + 2 < n then toks.(i + 2).S.t else t1
      in
      if is_lower name then decls := (name, tline) :: !decls
    end
  done;
  let decls = List.rev !decls in
  let rec attach = function
    | [] -> []
    | (name, line) :: rest ->
        let next_line = match rest with (_, l) :: _ -> l | [] -> max_int in
        (* After-style doc convention: the comment sits between this val
           and the next declaration. *)
        let documented = List.exists (fun l -> l >= line && l < next_line) raise_lines in
        {
          v_file = file;
          v_library = library;
          v_module = file_module;
          v_name = name;
          v_line = line;
          v_raise_doc = documented;
        }
        :: attach rest
  in
  attach decls

(* ------------------------------------------------------------------ *)
(* Spans, formal parameters, closure arguments                        *)
(* ------------------------------------------------------------------ *)

(* Tokens that end an application span at their bracket level; the same
   set Cost uses for its pending-iteration spans, so the two layers agree
   on where an argument list stops. *)
let span_stop_toks =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun t -> Hashtbl.replace tbl t ())
    [ ";"; ","; "in"; "done"; "then"; "else"; "with"; "|"; "|>"; "let"; "and"; "end"; "do" ];
  tbl

let arg_span (body : S.tok array) i =
  let n = Array.length body in
  let level = ref 0 in
  let j = ref (i + 1) in
  let stop = ref false in
  while (not !stop) && !j < n do
    let t = body.(!j).S.t in
    match t with
    | "(" | "[" | "{" ->
        incr level;
        incr j
    | ")" | "]" | "}" -> if !level = 0 then stop := true else (decr level; incr j)
    | t when !level = 0 && Hashtbl.mem span_stop_toks t -> stop := true
    | _ -> incr j
  done;
  !j

let def_params (d : def) =
  let body = d.d_body in
  let n = Array.length body in
  (* Skip the binding keyword, attributes, extension markers and [rec] to
     land on the bound name, then collect header tokens up to the [=] at
     bracket level 0. *)
  let rec skip j =
    if j >= n then j
    else
      let t = body.(j).S.t in
      if is_attr t then skip (j + 1)
      else if t = "%" then skip (j + 2)
      else if t = "rec" then skip (j + 1)
      else j
  in
  let start = skip 1 in
  let params = ref [] in
  let seen = Hashtbl.create 8 in
  let level = ref 0 in
  let j = ref (start + 1) in
  let stop = ref false in
  while (not !stop) && !j < n do
    let t = body.(!j).S.t in
    (match t with
    | "(" | "[" | "{" -> incr level
    | ")" | "]" | "}" -> decr level
    | "=" when !level = 0 -> stop := true
    | t when is_lower t && t <> "_" && not (String.contains t '.') ->
        if not (Hashtbl.mem seen t) then begin
          Hashtbl.replace seen t ();
          params := t :: !params
        end
    | _ -> ());
    incr j
  done;
  if !stop then List.rev !params else []

(* Keywords that can follow an identifier without making it a function
   head ([if p then ...] does not apply [p]). *)
let application_keywords =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun t -> Hashtbl.replace tbl t ())
    [ "then"; "else"; "in"; "do"; "done"; "with"; "when"; "and"; "begin"; "end"; "rec"; "fun";
      "function"; "match"; "let"; "if"; "try"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
      "or"; "not"; "as"; "of"; "to"; "downto"; "while"; "for" ];
  tbl

(* Tokens after which an expression (and hence a function application)
   can start; [a b] with [a] in argument position is preceded by another
   identifier, which is not in this set, so curried-argument runs do not
   look like applications of their members. *)
let expr_starters =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun t -> Hashtbl.replace tbl t ())
    [ ";"; "="; "->"; "("; "["; "{"; "begin"; "in"; "then"; "else"; "@@"; "|>"; ","; "|"; ":" ];
  tbl

(* Whether the identifier token at [i] is syntactically applied: it heads
   an application (an expression can start here and an argument follows),
   or it is handed to a [*.protect]-style combinator as the final thunk
   ([Fun.protect ~finally:(...) f]). *)
let applied_at (d : def) i =
  let body = d.d_body in
  let n = Array.length body in
  let protect_before i =
    let lo = max 0 (i - 14) in
    let rec look j =
      j >= lo
      &&
      let t = body.(j).S.t in
      let comp =
        match String.rindex_opt t '.' with
        | Some k -> String.sub t (k + 1) (String.length t - k - 1)
        | None -> t
      in
      comp = "protect" || look (j - 1)
    in
    look (i - 1)
  in
  protect_before i
  ||
  let next_ok =
    i + 1 < n
    &&
    let t = body.(i + 1).S.t in
    t = "(" || t = "~" || t = "!"
    || (t <> "" && t.[0] >= '0' && t.[0] <= '9')
    || ((is_lower t || is_upper t) && not (Hashtbl.mem application_keywords t))
  in
  let prev_ok = i > 0 && Hashtbl.mem expr_starters body.(i - 1).S.t in
  next_ok && prev_ok

(* A def is higher-order through parameter [p] when some occurrence of [p]
   in the body sits in application position ([let r = p x in ...]) or is
   handed to a protect-style combinator. *)
let applies_params (d : def) =
  match def_params d with
  | [] -> false
  | params ->
      let ptbl = Hashtbl.create 8 in
      List.iter (fun p -> Hashtbl.replace ptbl p ()) params;
      let body = d.d_body in
      let n = Array.length body in
      let applied = ref false in
      for i = 1 to n - 1 do
        if (not !applied) && Hashtbl.mem ptbl body.(i).S.t && applied_at d i then applied := true
      done;
      !applied

(* ------------------------------------------------------------------ *)
(* Graph assembly                                                     *)
(* ------------------------------------------------------------------ *)

let multi_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> Hashtbl.replace tbl key (v :: l)
  | None -> Hashtbl.add tbl key [ v ]

let modkey module_path = snd (last_two (split_dots module_path))

let build_sources sources =
  let ml, mli = List.partition (fun s -> Filename.check_suffix s.sc_file ".ml") sources in
  let vals = List.concat_map (fun s -> vals_of_mli ~library:s.sc_library ~file:s.sc_file s.sc_text) mli in
  (* Library modules that have an .mli: their surface is the val list. *)
  let mli_modules = Hashtbl.create 16 in
  let mli_vals = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Hashtbl.replace mli_modules (v.v_library, v.v_module) ();
      Hashtbl.replace mli_vals (v.v_library, v.v_module, v.v_name) ())
    vals;
  List.iter
    (fun s ->
      if Filename.check_suffix s.sc_file ".mli" then
        Hashtbl.replace mli_modules (s.sc_library, module_of_file s.sc_file) ())
    mli;
  let per_file = List.map (fun s -> (s, defs_of_ml ~library:s.sc_library ~entry:s.sc_entry ~file:s.sc_file s.sc_text)) ml in
  let all = List.concat_map (fun (_, (ds, _, _)) -> ds) per_file in
  let files =
    List.map
      (fun (s, (_, _, toks)) ->
        { f_path = s.sc_file; f_library = s.sc_library; f_entry = s.sc_entry; f_toks = toks })
      per_file
  in
  let defs =
    Array.of_list
      (List.mapi
         (fun i d ->
           let file_mod = module_of_file d.d_file in
           let has_mli = Hashtbl.mem mli_modules (d.d_library, file_mod) in
           let public =
             (not d.d_entry)
             &&
             if has_mli then
               d.d_module = file_mod && Hashtbl.mem mli_vals (d.d_library, file_mod, d.d_name)
             else true
           in
           { d with d_id = i; d_public = public })
         all)
  in
  (* Resolution indices. *)
  let by_modkey = Hashtbl.create 256 in
  let by_file = Hashtbl.create 256 in
  Array.iter
    (fun d ->
      multi_add by_modkey (modkey d.d_module ^ "." ^ d.d_name) d.d_id;
      multi_add by_file (d.d_file ^ ":" ^ d.d_name) d.d_id)
    defs;
  (* One flat alias table, pre-split: "file:name" -> reversed components of
     the alias target, so the splice below is a rev_append not an append. *)
  let rev_alias = Hashtbl.create 64 in
  List.iter
    (fun (s, (_, al, _)) ->
      Hashtbl.iter
        (fun name target ->
          if target <> name then
            Hashtbl.replace rev_alias (s.sc_file ^ ":" ^ name) (List.rev (split_dots target)))
        al)
    per_file;
  let callees = Array.make (Array.length defs) [] in
  let sites = Array.make (Array.length defs) [] in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      Hashtbl.reset seen;
      let site = ref 0 in
      let add id =
        if id <> d.d_id then begin
          sites.(d.d_id) <- (!site, id) :: sites.(d.d_id);
          if not (Hashtbl.mem seen id) then Hashtbl.replace seen id ()
        end
      in
      Array.iteri
        (fun tok_idx { S.t; _ } ->
          site := tok_idx;
          if String.contains t '.' then begin
            match split_dots t with
            | first :: rest when is_upper first ->
                let comps =
                  match Hashtbl.find_opt rev_alias (d.d_file ^ ":" ^ first) with
                  | Some rev_target -> List.rev_append rev_target rest
                  | None -> first :: rest
                in
                (* components: [...; hint; mk; name] *)
                let rec split3 = function
                  | [ mk; name ] -> Some ("", mk, name)
                  | [ h; mk; name ] -> Some (h, mk, name)
                  | _ :: (_ :: _ :: _ :: _ as tl) -> split3 tl
                  | _ -> None
                in
                (match split3 comps with
                | Some (h, mk, name) when is_lower name && is_upper mk ->
                    (match Hashtbl.find_opt by_modkey (mk ^ "." ^ name) with
                    | None -> ()
                    | Some cands ->
                        let cands =
                          if h = "" then
                            let same = List.filter (fun i -> defs.(i).d_library = d.d_library) cands in
                            if same = [] then cands else same
                          else
                            List.filter
                              (fun i ->
                                let c = defs.(i) in
                                String.capitalize_ascii c.d_library = h
                                || List.exists (String.equal h) (split_dots c.d_module))
                              cands
                        in
                        List.iter add cands)
                | _ -> ())
            | _ -> ()
          end
          else if is_lower t then
            match Hashtbl.find_opt by_file (d.d_file ^ ":" ^ t) with
            | Some cands -> List.iter add cands
            | None -> ())
        d.d_body;
      callees.(d.d_id) <- List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []);
      sites.(d.d_id) <- List.rev sites.(d.d_id))
    defs;
  (* One-step closure-argument resolution: a definition that applies one
     of its formal parameters ([let locked t f = ... f () ...]) gains an
     edge to every same-file definition passed to it as a bare identifier
     argument, so witness chains no longer stop at the wrapper. Only the
     wrapper's [callees] row is extended — [sites] keeps the caller's
     lexical truth, which {!Cost} weights by loop depth. *)
  let applies = Array.map applies_params defs in
  let closure_edges = Hashtbl.create 32 in
  Array.iter
    (fun d ->
      List.iter
        (fun (i, c) ->
          if applies.(c) then begin
            let stop = arg_span d.d_body i in
            let level = ref 0 in
            for j = i + 1 to min (stop - 1) (Array.length d.d_body - 1) do
              let t = d.d_body.(j).S.t in
              match t with
              | "(" | "[" | "{" -> incr level
              | ")" | "]" | "}" -> decr level
              | t
                when !level = 0 && is_lower t && t <> "_" && not (String.contains t '.') -> (
                  match Hashtbl.find_opt by_file (d.d_file ^ ":" ^ t) with
                  | Some cands ->
                      List.iter
                        (fun id -> if id <> c then Hashtbl.replace closure_edges (c, id) ())
                        cands
                  | None -> ())
              | _ -> ()
            done
          end)
        sites.(d.d_id))
    defs;
  let extra = Array.make (Array.length defs) [] in
  Hashtbl.iter (fun (c, id) () -> extra.(c) <- id :: extra.(c)) closure_edges;
  Array.iteri
    (fun c ids ->
      if ids <> [] then
        callees.(c) <-
          List.sort_uniq Int.compare (List.rev_append ids callees.(c)))
    extra;
  { defs; callees; sites; vals; files }

(* ------------------------------------------------------------------ *)
(* Directory walking and dune stanza sniffing                         *)
(* ------------------------------------------------------------------ *)

let dune_info dir =
  let f = Filename.concat dir "dune" in
  if not (Sys.file_exists f) then None
  else begin
    let text = S.read_file f in
    let entry = contains_sub text "(executable" || contains_sub text "(test" in
    let name =
      let len = String.length text in
      let rec find i =
        if i + 5 > len then None
        else if String.sub text i 5 = "(name" then begin
          let j = ref (i + 5) in
          if !j < len && text.[!j] = 's' then incr j;
          while !j < len && (text.[!j] = ' ' || text.[!j] = '\n' || text.[!j] = '\t') do
            incr j
          done;
          let start = !j in
          while
            !j < len
            && (match text.[!j] with
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
               | _ -> false)
          do
            incr j
          done;
          if !j > start then Some (String.sub text start (!j - start)) else None
        end
        else find (i + 1)
      in
      find 0
    in
    Some (name, entry)
  end

let rec gather inherited acc path =
  if Sys.is_directory path then begin
    let info =
      match dune_info path with
      | Some (nameopt, entry) ->
          let name = match nameopt with Some n -> n | None -> Filename.basename path in
          let entry = entry || match inherited with Some (_, e) -> e | None -> false in
          Some (name, entry)
      | None -> inherited
    in
    let names = Sys.readdir path in
    Array.sort String.compare names;
    Array.iter
      (fun e ->
        if String.length e > 0 && e.[0] <> '.' && e.[0] <> '_' then
          gather info acc (Filename.concat path e))
      names
  end
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then begin
    let lib, entry =
      match inherited with
      | Some (n, e) -> (n, e)
      | None -> (Filename.basename (Filename.dirname path), false)
    in
    acc := { sc_file = path; sc_library = lib; sc_entry = entry; sc_text = S.read_file path } :: !acc
  end

let build ?(entries = []) dirs =
  let acc = ref [] in
  List.iter (gather None acc) dirs;
  let lib_sources = !acc in
  let acc = ref [] in
  List.iter (gather None acc) entries;
  let entry_sources = List.map (fun s -> { s with sc_entry = true }) !acc in
  build_sources (List.rev_append lib_sources (List.rev entry_sources))

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let find_def g ~module_ ~name =
  let found = ref None in
  Array.iter
    (fun d -> if !found = None && d.d_module = module_ && d.d_name = name then found := Some d)
    g.defs;
  !found

let reachable g ~roots =
  let n = Array.length g.defs in
  let seen = Array.make n false in
  let rec visit i =
    if i >= 0 && i < n && not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit g.callees.(i)
    end
  in
  List.iter visit roots;
  seen

let witness g ~from ~target =
  let n = Array.length g.defs in
  if from < 0 || from >= n then None
  else begin
    let parent = Array.make n (-2) in
    let q = Queue.create () in
    parent.(from) <- -1;
    Queue.add from q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let i = Queue.pop q in
      if target i then found := Some i
      else
        List.iter
          (fun j ->
            if parent.(j) = -2 then begin
              parent.(j) <- i;
              Queue.add j q
            end)
          g.callees.(i)
    done;
    match !found with
    | None -> None
    | Some stop ->
        let rec unwind i acc = if parent.(i) = -1 then i :: acc else unwind parent.(i) (i :: acc) in
        Some (unwind stop [])
  end
