(** Odoc-build stand-in: structural validation of doc comments.

    The container has no [odoc], so [dune build @doc] cannot render the
    API docs; this pass catches the mistakes an odoc build would reject
    (or silently swallow) in the [@raise] contracts that the effect
    analysis leans on: a tag line whose tag odoc does not know (the
    [@raises] typo turns a documented raise into prose), a [@raise]
    without a capitalized exception name, and a doc comment that never
    closes. Tags are only recognized at the start of a line, matching
    odoc's block-tag grammar, so an [@@] inside an inline code span is
    never misread as a tag. *)

val rules : (string * string) list
(** Rule ids and one-line descriptions, for [--rules] listings. *)

val check_string : file:string -> string -> Finding.t list
(** Validate one source file's doc comments. [file] is used for
    positions only. *)

val check_paths : string list -> Finding.t list
(** Validate every [.ml]/[.mli] under the given files/directories
    (recursively, via {!Srclint.source_files}). *)
