(* Loop-cost and allocation analysis. Intraprocedural loop structure is
   recovered token-by-token (for/while blocks, higher-order iteration
   argument spans, recursive bodies); interprocedural facts are Kleene
   fixpoints on finite lattices, mirroring Effect. See cost.mli and
   DESIGN.md §12 for the accepted blind spots. *)

module S = Srclint

let max_depth = 3
let clamp v = if v > max_depth then max_depth else v

(* ------------------------------------------------------------------ *)
(* Primitive tables (Hashtbl membership: these are consulted once per
   token, inside the scanning loops this very pass audits)             *)
(* ------------------------------------------------------------------ *)

let table names =
  let t = Hashtbl.create (2 * List.length names) in
  List.iter (fun name -> Hashtbl.replace t name ()) names;
  t

let quad_prims =
  table
    [ "List.append"; "@"; "List.mem"; "List.memq"; "List.mem_assoc"; "List.assoc";
      "List.assoc_opt"; "List.nth"; "List.nth_opt" ]

let rebuild_names =
  [ "Hashtbl.create"; "Array.make"; "Array.create_float"; "Array.make_matrix"; "Buffer.create";
    "Bytes.create"; "Queue.create"; "Stack.create"; "Array.to_list"; "Array.of_list" ]

let rebuild_prims = table rebuild_names

(* Everything above plus cheap-once constructors: allocating once is
   fine anywhere, so these only matter through the per-iteration bit. *)
let alloc_prims =
  table
    (List.append rebuild_names
       [ "Array.append"; "Array.copy"; "Array.sub"; "Array.concat"; "Array.init"; "List.init";
         "String.concat"; "String.sub" ])

(* ------------------------------------------------------------------ *)
(* Higher-order iteration call recognition                            *)
(* ------------------------------------------------------------------ *)

let hof_prefixes =
  [ "iter"; "map"; "fold"; "filter"; "for_all"; "exists"; "partition"; "concat"; "sort" ]

(* Modules whose map/fold run the callback at most once. *)
let scalar_modules =
  table
    [ "Option"; "Result"; "Either"; "Fun"; "Lazy"; "Atomic"; "Float"; "Int"; "Int32"; "Int64";
      "Nativeint"; "Bool"; "Char"; "Unit" ]

let first_dot_component t =
  match String.index_opt t '.' with Some i -> String.sub t 0 i | None -> t

let last_dot_component t =
  match String.rindex_opt t '.' with
  | Some i -> String.sub t (i + 1) (String.length t - i - 1)
  | None -> t

(* [comp] names an iteration combinator when it extends a known prefix
   with nothing, an underscore suffix (fold_left, iter_flows, sort_uniq),
   an [i] (iteri, mapi, filteri) or an arity digit (map2, for_all2). *)
let matches_prefix comp p =
  let lp = String.length p and lc = String.length comp in
  lc >= lp
  && String.sub comp 0 lp = p
  && (lc = lp || match comp.[lp] with '_' | 'i' | '0' .. '9' -> true | _ -> false)

let is_loop_hof t =
  String.contains t '.'
  && (not (Hashtbl.mem scalar_modules (first_dot_component t)))
  &&
  let comp = last_dot_component t in
  comp <> ""
  && comp.[0] >= 'a'
  && comp.[0] <= 'z'
  && List.exists (matches_prefix comp) hof_prefixes

(* ------------------------------------------------------------------ *)
(* Per-token lexical loop depth                                       *)
(* ------------------------------------------------------------------ *)

(* Tokens that end a pending application span at their bracket level:
   after [let xs = List.map f ys in ...] the [in] closes the span. *)
let stop_tokens =
  table [ ";"; ","; "in"; "done"; "then"; "else"; "with"; "|"; "|>"; "let"; "and"; "end"; "do" ]

let depths (body : S.tok array) =
  let n = Array.length body in
  let d = Array.make n 0 in
  let bracket = ref 0 in
  (* Open for/while blocks, closed by [done]. *)
  let dones = ref 0 in
  (* Bracket levels of open iteration-call argument spans, innermost
     first: [List.iter (fun ...) xs] keeps its span open until a stop
     token or a closing bracket at or below the recorded level. *)
  let pendings = ref [] in
  (* Open [let] bindings, innermost first, flagged [rec]: tokens inside a
     [let rec ... in] definition may re-run on every recursive call, so
     each open rec binding adds one level. A toplevel [let rec f] never
     meets its [in], covering the whole body — exactly right for a
     recursive toplevel definition. *)
  let lets = ref [] in
  let rec_depth () = List.length (List.filter (fun r -> r) !lets) in
  for i = 0 to n - 1 do
    let t = body.(i).S.t in
    (match t with
    | ")" | "]" | "}" ->
        bracket := max 0 (!bracket - 1);
        pendings := List.filter (fun l -> l <= !bracket) !pendings
    | _ -> ());
    if Hashtbl.mem stop_tokens t then begin
      pendings := List.filter (fun l -> l < !bracket) !pendings;
      if t = "done" then dones := max 0 (!dones - 1)
    end;
    if t = "in" then lets := (match !lets with _ :: tl -> tl | [] -> []);
    d.(i) <- !dones + List.length !pendings + rec_depth ();
    match t with
    | "(" | "[" | "{" -> incr bracket
    | "for" | "while" -> incr dones
    | "let" -> lets := (i + 1 < n && body.(i + 1).S.t = "rec") :: !lets
    | _ -> if is_loop_hof t then pendings := !bracket :: !pendings
  done;
  d

let depths_of_string text =
  let toks = S.tokenize (S.clean text).S.text in
  let d = depths toks in
  Array.mapi (fun i { S.t; _ } -> (t, d.(i))) toks

(* [and]-chained definitions carry no [let rec] of their own: a self-call
   of the bound name marks the body recursive. Plain [let] bodies cannot
   self-call, so name shadowing ([let loads ... = let loads, _ = ...])
   stays quiet. *)
let def_depths (d : Callgraph.def) =
  let body = d.Callgraph.d_body in
  let dep = depths body in
  let n = Array.length body in
  if n > 0 && body.(0).S.t = "and" && d.Callgraph.d_name <> "_" && d.Callgraph.d_name <> "()"
  then begin
    let uses = ref 0 in
    Array.iter (fun { S.t; _ } -> if t = d.Callgraph.d_name then incr uses) body;
    if !uses >= 2 then
      for j = 0 to n - 1 do
        dep.(j) <- dep.(j) + 1
      done
  end;
  dep

(* ------------------------------------------------------------------ *)
(* Per-definition base facts                                          *)
(* ------------------------------------------------------------------ *)

type facts = {
  f_dep : int array;  (** lexical loop depth per body token *)
  f_quad : (int * string) list;  (** (token index, prim) at depth >= 1 *)
  f_rebuild : (int * string) list;
  f_alloc_any : bool;
  f_alloc_iter : bool;  (** a local allocation site at depth >= 1 *)
  f_local : int;  (** max lexical depth over the body *)
}

let facts_of_def (d : Callgraph.def) =
  let body = d.Callgraph.d_body in
  let dep = def_depths d in
  let quad = ref [] and rebuild = ref [] in
  let alloc_any = ref false and alloc_iter = ref false in
  let local = ref 0 in
  (* A bare [@] token that is part of a parenthesized operator name — the
     [*@] of [U.( *@ )], or a section like [( @ )] — is not list append;
     the tokenizer splits unknown two-char operators apart. *)
  let operator_position i =
    body.(i).S.t = "@"
    && ((i > 0 && (body.(i - 1).S.t = "*" || body.(i - 1).S.t = "("))
       || (i + 1 < Array.length body && body.(i + 1).S.t = ")"))
  in
  Array.iteri
    (fun i { S.t; _ } ->
      if dep.(i) > !local then local := dep.(i);
      if Hashtbl.mem alloc_prims t then begin
        alloc_any := true;
        if dep.(i) >= 1 then alloc_iter := true
      end;
      if dep.(i) >= 1 then begin
        if Hashtbl.mem quad_prims t && not (operator_position i) then quad := (i, t) :: !quad;
        if Hashtbl.mem rebuild_prims t then rebuild := (i, t) :: !rebuild
      end)
    body;
  {
    f_dep = dep;
    f_quad = List.rev !quad;
    f_rebuild = List.rev !rebuild;
    f_alloc_any = !alloc_any;
    f_alloc_iter = !alloc_iter;
    f_local = !local;
  }

(* ------------------------------------------------------------------ *)
(* Interprocedural fixpoints                                          *)
(* ------------------------------------------------------------------ *)

type info = { c_local_depth : int; c_cost : int; c_alloc : bool; c_alloc_per_iter : bool }

type analysis = {
  a_facts : facts array;
  a_cost : int array;
  a_alloc : bool array;
  a_per_iter : bool array;
}

let site_depth facts i tok = if tok < Array.length facts.(i).f_dep then facts.(i).f_dep.(tok) else 0

let compute (g : Callgraph.t) =
  let defs = g.Callgraph.defs in
  let n = Array.length defs in
  let facts = Array.init n (fun i -> facts_of_def defs.(i)) in
  (* Cost: lexical depth plus callee cost weighted by the call site's
     depth, clamped — a finite lattice, so the iteration terminates. *)
  let cost = Array.init n (fun i -> clamp facts.(i).f_local) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let c =
        List.fold_left
          (fun acc (tok, j) -> max acc (clamp (site_depth facts i tok + cost.(j))))
          cost.(i) g.Callgraph.sites.(i)
      in
      if c > cost.(i) then begin
        cost.(i) <- c;
        changed := true
      end
    done
  done;
  (* May-allocate, then may-allocate-per-iteration (needs the former:
     calling an allocator from inside a loop allocates every pass). *)
  let alloc = Array.init n (fun i -> facts.(i).f_alloc_any) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if (not alloc.(i)) && List.exists (fun j -> alloc.(j)) g.Callgraph.callees.(i) then begin
        alloc.(i) <- true;
        changed := true
      end
    done
  done;
  let per_iter = Array.init n (fun i -> facts.(i).f_alloc_iter) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if
        (not per_iter.(i))
        && List.exists
             (fun (tok, j) -> per_iter.(j) || (site_depth facts i tok >= 1 && alloc.(j)))
             g.Callgraph.sites.(i)
      then begin
        per_iter.(i) <- true;
        changed := true
      end
    done
  done;
  { a_facts = facts; a_cost = cost; a_alloc = alloc; a_per_iter = per_iter }

let infer g =
  let a = compute g in
  Array.init
    (Array.length g.Callgraph.defs)
    (fun i ->
      {
        c_local_depth = a.a_facts.(i).f_local;
        c_cost = a.a_cost.(i);
        c_alloc = a.a_alloc.(i);
        c_alloc_per_iter = a.a_per_iter.(i);
      })

(* ------------------------------------------------------------------ *)
(* Rules                                                              *)
(* ------------------------------------------------------------------ *)

let rules =
  [
    ("quadratic-list-op", "O(n) list primitive (List.append/@/mem/assoc/nth) inside a loop");
    ("rebuild-in-loop", "container (Hashtbl/Array/Buffer/...) rebuilt on every loop iteration");
    ( "alloc-in-hot-loop",
      "declared hot entrypoint transitively allocates on every iteration (warn)" );
    ( "memo-unsafe",
      "declared memoized function shows nondet/IO/partial effects or raises directly" );
    ("cost-manifest", "a check/cost.json entry does not resolve, or the manifest has an unknown key");
  ]

let qualified (d : Callgraph.def) = d.Callgraph.d_module ^ "." ^ d.Callgraph.d_name

let chain_str (g : Callgraph.t) ids =
  String.concat " -> " (List.map (fun i -> qualified g.Callgraph.defs.(i)) ids)

let modkey module_path =
  match String.rindex_opt module_path '.' with
  | Some i -> String.sub module_path (i + 1) (String.length module_path - i - 1)
  | None -> module_path

(* Same convention as Share.resolve_entry: "Replay.run" matches on the
   module key, "Response.Replay.run" also library-qualified. *)
let resolve_entry (g : Callgraph.t) name =
  let matches (d : Callgraph.def) =
    let mk = modkey d.Callgraph.d_module ^ "." ^ d.Callgraph.d_name in
    let qual = qualified d in
    let lib_qual = String.capitalize_ascii d.Callgraph.d_library ^ "." ^ qual in
    name = mk || name = qual || name = lib_qual
  in
  Array.to_list g.Callgraph.defs |> List.filter matches

let analyze ?(manifest = []) (g : Callgraph.t) =
  let defs = g.Callgraph.defs in
  let n = Array.length defs in
  let a = compute g in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let where_site (d : Callgraph.def) tok =
    let body = d.Callgraph.d_body in
    let line = if tok < Array.length body then body.(tok).S.tline else d.Callgraph.d_line in
    Printf.sprintf "%s:%d" d.Callgraph.d_file line
  in
  (* Intra-procedural site rules over library definitions only: entry
     points (tests, benches, executables) are reachability context. *)
  Array.iter
    (fun (d : Callgraph.def) ->
      if not d.Callgraph.d_entry then begin
        let i = d.Callgraph.d_id in
        List.iter
          (fun (tok, prim) ->
            add
              (Finding.v ~rule:"quadratic-list-op" ~where:(where_site d tok)
                 (Printf.sprintf "%s at loop depth %d in %s: O(n) per iteration" prim
                    a.a_facts.(i).f_dep.(tok) (qualified d))))
          a.a_facts.(i).f_quad;
        List.iter
          (fun (tok, prim) ->
            add
              (Finding.v ~rule:"rebuild-in-loop" ~where:(where_site d tok)
                 (Printf.sprintf "%s at loop depth %d in %s rebuilds a container every iteration"
                    prim
                    a.a_facts.(i).f_dep.(tok) (qualified d))))
          a.a_facts.(i).f_rebuild
      end)
    defs;
  (* Manifest-driven rules. *)
  List.iter
    (fun (key, _) ->
      match key with
      | "hot" | "memo" -> ()
      | _ ->
          add
            (Finding.v ~rule:"cost-manifest" ~where:"check/cost.json"
               (Printf.sprintf "unknown manifest key %S (expected \"hot\" or \"memo\")" key)))
    manifest;
  let resolve_all key =
    match List.assoc_opt key manifest with
    | None -> []
    | Some names ->
        List.concat_map
          (fun name ->
            match resolve_entry g name with
            | [] ->
                add
                  (Finding.v ~rule:"cost-manifest" ~where:"check/cost.json"
                     (Printf.sprintf "%s entrypoint %s does not resolve to any definition" key
                        name));
                []
            | ds -> ds)
          names
  in
  let hot = resolve_all "hot" in
  let memo = resolve_all "memo" in
  (* alloc-in-hot-loop: one warning per hot entrypoint that transitively
     allocates per iteration, with the chain to the allocating site. *)
  let local_iter_evidence j =
    a.a_facts.(j).f_alloc_iter
    || List.exists
         (fun (tok, k) -> site_depth a.a_facts j tok >= 1 && a.a_alloc.(k))
         g.Callgraph.sites.(j)
  in
  List.iter
    (fun (d : Callgraph.def) ->
      let i = d.Callgraph.d_id in
      if a.a_per_iter.(i) then begin
        let via =
          match Callgraph.witness g ~from:i ~target:local_iter_evidence with
          | Some ids -> chain_str g ids
          | None -> qualified d
        in
        add
          (Finding.v ~severity:Finding.Warn ~rule:"alloc-in-hot-loop"
             ~where:(Printf.sprintf "%s:%d" d.Callgraph.d_file d.Callgraph.d_line)
             (Printf.sprintf "hot entrypoint %s allocates per iteration (via %s)" (qualified d)
                via))
      end)
    hot;
  (* memo-unsafe: Effect facts with the obs library treated as
     value-transparent (spans read clocks but do not change the wrapped
     result; Eutil.Memo never caches an exceptional outcome). A raise in
     the memoized body itself still disqualifies it. *)
  if memo <> [] then begin
    let base =
      Array.init n (fun i ->
          if defs.(i).Callgraph.d_library = "obs" then Effect.empty
          else Effect.base_of_body defs.(i).Callgraph.d_body)
    in
    let eff =
      Effect.fixpoint ~n ~callees:(fun i -> g.Callgraph.callees.(i)) ~base:(fun i -> base.(i))
    in
    let pick set = match Effect.Strings.min_elt_opt set with Some s -> s | None -> "?" in
    List.iter
      (fun (d : Callgraph.def) ->
        let i = d.Callgraph.d_id in
        let where = Printf.sprintf "%s:%d" d.Callgraph.d_file d.Callgraph.d_line in
        let witness_to sel =
          match
            Callgraph.witness g ~from:i ~target:(fun j -> not (Effect.Strings.is_empty (sel base.(j))))
          with
          | Some ids -> chain_str g ids
          | None -> qualified d
        in
        if not (Effect.Strings.is_empty (eff.(i)).Effect.nondet) then
          add
            (Finding.v ~rule:"memo-unsafe" ~where
               (Printf.sprintf "memoized %s is nondeterministic: %s (via %s)" (qualified d)
                  (pick (eff.(i)).Effect.nondet)
                  (witness_to (fun e -> e.Effect.nondet))));
        if not (Effect.Strings.is_empty (eff.(i)).Effect.partial) then
          add
            (Finding.v ~rule:"memo-unsafe" ~where
               (Printf.sprintf "memoized %s can hit partial %s (via %s)" (qualified d)
                  (pick (eff.(i)).Effect.partial)
                  (witness_to (fun e -> e.Effect.partial))));
        if (eff.(i)).Effect.io then
          add
            (Finding.v ~rule:"memo-unsafe" ~where
               (Printf.sprintf "memoized %s performs IO" (qualified d)));
        if (Effect.base_of_body d.Callgraph.d_body).Effect.raises then
          add
            (Finding.v ~rule:"memo-unsafe" ~where
               (Printf.sprintf "memoized %s raises directly in its own body" (qualified d))))
      memo
  end;
  List.rev !findings
