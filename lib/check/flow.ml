(* Intraprocedural numeric-safety dataflow over Srclint token streams.

   One forward pass per file. Function boundaries are toplevel [let]/[and]
   (column 1); within a function we track a single dataflow fact per
   identifier — NonZero — in a two-point lattice {Top, NonZero}. Facts are
   born at comparisons against numeric literals (a guard that mentions zero
   means the zero case was handled; a bound against a positive constant
   implies nonzero) and at bindings to nonzero constants or [max <pos>].
   The pass is deliberately flow-loose: a fact, once established, holds for
   the remainder of the function. That is unsound in the branch where the
   guard failed, but every such branch in practice returns or raises before
   dividing, and the looseness is what keeps the analysis a single linear
   scan with near-zero false positives (see DESIGN.md section 7). *)

module S = Srclint

let rules =
  [
    ( "div-unguarded",
      "float division whose divisor is not provably nonzero via a dominating guard, a nonzero \
       binding, or max <positive>" );
    ("nan-compare", "comparison that mishandles NaN: a [nan] operand, or the x <> x idiom");
    ( "magic-unit",
      "raw unit-carrying literal (magnitude >= 1e6) outside Eutil.Units constructors and named \
       bindings" );
    ( "unit-relabel",
      "to_float fed straight back into a Units constructor without a dimension annotation" );
  ]

(* ------------------------------- token taxonomy ------------------------ *)

let is_ident t =
  t <> "" && (match t.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)

let plain_ident t = is_ident t && not (String.contains t '.')

let last_component t =
  match String.rindex_opt t '.' with
  | Some i when i + 1 < String.length t -> String.sub t (i + 1) (String.length t - i - 1)
  | _ -> t

(* Constructors of Eutil.Units, matched on the last path component so that
   [U.bps], [Eutil.Units.bps], and a bare [bps] under an open all count. *)
let unit_ctors = [ "watts"; "bps"; "kbps"; "mbps"; "gbps"; "ratio"; "seconds"; "joules"; "unsafe" ]
let is_unit_ctor t = is_ident t && List.mem (last_component t) unit_ctors

let is_number t = t <> "" && t.[0] >= '0' && t.[0] <= '9'

let number_value t =
  if is_number t then
    float_of_string_opt (String.concat "" (String.split_on_char '_' t))
  else None

(* Scientific notation (has an exponent, is not a hex/octal/binary int):
   the spelling people use for unit-carrying magnitudes. *)
let is_sci t =
  is_number t
  && (String.length t < 2
     || not (t.[0] = '0' && (match Char.lowercase_ascii t.[1] with 'x' | 'o' | 'b' -> true | _ -> false)))
  && String.exists (fun c -> c = 'e' || c = 'E') t

(* Operator classes consulted per token; tables keep the scan linear. *)
let op_table ops =
  let tbl = Hashtbl.create 16 in
  List.iter (fun op -> Hashtbl.replace tbl op ()) ops;
  tbl

let comparison_ops = op_table [ "="; "<>"; "<"; "<="; ">"; ">="; "=="; "!=" ]
let arith_ops = op_table [ "+."; "-."; "*."; "/."; "+"; "-"; "*"; "/"; "**" ]

(* Magnitudes at or above a mega are link capacities, demand totals, power
   budgets — quantities that carry a unit. *)
let magic_floor = 1e6

(* ------------------------------- the pass ------------------------------ *)

type raw = { rule : string; rline : int; rcol : int; msg : string }

let scan ~magic_exempt toks =
  let out = ref [] in
  let add rule (tk : S.tok) msg =
    out := { rule; rline = tk.S.tline; rcol = tk.S.tcol; msg } :: !out
  in
  let n = Array.length toks in
  let text i = if i >= 0 && i < n then toks.(i).S.t else "" in
  (* Per-function facts reset at every toplevel definition; facts for
     module-level constants ([let day = 86_400.0] at column 1) persist for
     the whole file. *)
  let nonzero : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let toplevel_nonzero : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let fact id = Hashtbl.replace nonzero id () in
  let known id = Hashtbl.mem nonzero id || Hashtbl.mem toplevel_nonzero id in
  let pos_lit t = match number_value t with Some v -> v > 0.0 | None -> false in
  let same_line i j = i >= 0 && j >= 0 && i < n && j < n && toks.(i).S.tline = toks.(j).S.tline in
  (* A plain identifier at [i] that is really a standalone operand: not a
     projection or array access [x.(i)], and not a function being applied.
     Application arguments must share the identifier's line — the token
     after a line break is the next construct, not an argument. *)
  let standalone_operand i =
    plain_ident (text i)
    && text (i + 1) <> "."
    && ((not (same_line i (i + 1)))
       ||
       let nxt = text (i + 1) in
       not (is_ident nxt || is_number nxt || nxt = "(" || nxt = "!" || nxt = "~" || nxt = "'"))
  in
  for i = 0 to n - 1 do
    let tk = toks.(i) in
    let t = tk.S.t in
    (* Function boundary: facts do not survive into the next toplevel
       definition. *)
    if (t = "let" || t = "and") && tk.S.tcol = 1 then Hashtbl.reset nonzero;
    (* --- fact generation -------------------------------------------- *)
    (if Hashtbl.mem comparison_ops t then
       if t = "=" && (text (i - 2) = "let" || text (i - 2) = "and") then begin
         let bind id =
           if i >= 2 && toks.(i - 2).S.tcol = 1 then Hashtbl.replace toplevel_nonzero id ()
           else fact id
         in
         (* let x = <lone nonzero literal> / let x = max <pos> ... *)
         (match number_value (text (i + 1)) with
         | Some v
           when v <> 0.0 && plain_ident (text (i - 1)) && not (Hashtbl.mem arith_ops (text (i + 2)))
           ->
             bind (text (i - 1))
         | _ -> ());
         if
           (text (i + 1) = "max" || text (i + 1) = "Float.max")
           && pos_lit (text (i + 2))
           && plain_ident (text (i - 1))
         then bind (text (i - 1))
       end
       else begin
         (* Any comparison of an identifier against a numeric literal:
            either the zero case is being handled, or the identifier is
            bounded away from zero. *)
         if plain_ident (text (i - 1)) && is_number (text (i + 1)) then fact (text (i - 1));
         if plain_ident (text (i + 1)) && is_number (text (i - 1)) then fact (text (i + 1))
       end);
    (* --- nan-compare ------------------------------------------------- *)
    (if Hashtbl.mem comparison_ops t then begin
       let nan_operand j = last_component (text j) = "nan" in
       if nan_operand (i - 1) || nan_operand (i + 1) then
         add "nan-compare" tk
           "comparison with nan is vacuous (IEEE 754 makes it false); use Float.is_nan"
       else if
         (* Only the disequality spellings: [let f x = x ...] makes [=]
            self-comparison shaped at every unary function definition. *)
         (t = "<>" || t = "!=")
         && plain_ident (text (i - 1))
         && text (i - 1) = text (i + 1)
         && not (same_line (i + 1) (i + 2) && (is_ident (text (i + 2)) || text (i + 2) = "("))
       then
         add "nan-compare" tk
           "self-comparison is a NaN probe in disguise; say Float.is_nan explicitly"
     end);
    (* --- div-unguarded ----------------------------------------------- *)
    (if t = "/." then begin
       let flag_ident who =
         if not (known who) then
           add "div-unguarded" tk
             (Printf.sprintf
                "divisor [%s] is not provably nonzero here; guard it, bind it via max, or use \
                 Eutil.Units.div_opt"
                who)
       in
       let d = text (i + 1) in
       if is_number d then begin
         match number_value d with
         | Some 0.0 -> add "div-unguarded" tk "division by the literal zero"
         | _ -> ()
       end
       else if d = "float_of_int" then begin
         let d2 = text (i + 2) in
         if is_number d2 then begin
           match number_value d2 with
           | Some 0.0 -> add "div-unguarded" tk "division by the literal zero"
           | _ -> ()
         end
         else if standalone_operand (i + 2) then flag_ident d2
         (* applications and dotted operands: conservatively trusted *)
       end
       else if d = "max" || d = "Float.max" then begin
         match number_value (text (i + 2)) with
         | Some v when v <= 0.0 ->
             add "div-unguarded" tk
               "max with a non-positive floor does not bound the divisor away from zero"
         | Some _ -> ()
         | None ->
             (* no literal floor in sight: the bound is not evident *)
             if standalone_operand (i + 2) then
               add "div-unguarded" tk
                 "max with a non-positive floor does not bound the divisor away from zero"
       end
       else if standalone_operand (i + 1) then flag_ident d
       (* parenthesised expressions, projections, applications, derefs:
          outside the lattice — conservatively trusted *)
     end);
    (* --- magic-unit --------------------------------------------------- *)
    (if (not magic_exempt) && is_sci t then
       match number_value t with
       | Some v when Float.abs v >= magic_floor ->
           let p1 = text (i - 1) and p2 = text (i - 2) in
           let wrapped = is_unit_ctor p1 || (p1 = "(" && is_unit_ctor p2) in
           let named_binding = p1 = "=" && is_ident p2 in
           if not (wrapped || named_binding) then
             add "magic-unit" tk
               (Printf.sprintf
                  "unit-carrying literal %s should pass through an Eutil.Units constructor or be \
                   bound to a named constant"
                  t)
       | _ -> ());
    (* --- unit-relabel -------------------------------------------------- *)
    if is_unit_ctor t && text (i + 1) = "(" then begin
      let depth = ref 1 in
      let j = ref (i + 2) in
      let has_to_float = ref false in
      let has_annot = ref false in
      while !depth > 0 && !j < n do
        (match text !j with
        | "(" -> incr depth
        | ")" -> decr depth
        | ":" -> has_annot := true
        | w when last_component w = "to_float" -> has_to_float := true
        | _ -> ());
        incr j
      done;
      if !has_to_float && not !has_annot then
        add "unit-relabel" tk
          "to_float stripped a dimension that this constructor silently re-assigns; annotate the \
           intermediate (e.g. (x : Eutil.Units.watts Eutil.Units.q)) or keep the quantity typed"
    end
  done;
  List.rev !out

(* ------------------------------- drivers ------------------------------- *)

let analyze_string ~file source =
  let cleaned = S.clean source in
  let magic_exempt = Filename.basename file = "units.ml" in
  let raw = scan ~magic_exempt (S.tokenize cleaned.S.text) in
  List.filter_map
    (fun r ->
      if S.suppressed cleaned ~rule:r.rule ~line:r.rline then None
      else
        Some
          (Finding.v ~rule:r.rule ~where:(Printf.sprintf "%s:%d:%d" file r.rline r.rcol) r.msg))
    raw

let analyze_file path = analyze_string ~file:path (S.read_file path)

let analyze_paths paths = List.concat_map analyze_file (S.source_files paths)
