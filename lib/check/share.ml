(* Domain-safety analysis: which definitions can touch shared mutable
   state, and may a declared parallel entrypoint reach a write of it?

   Like Effect, this is a heuristic token-level analysis over the
   Callgraph: no typing, no aliasing — a "root" is a toplevel value
   binding whose transitive may-allocate set is nonempty (it owns a ref /
   array / hashtable / PRNG / lazy cell that survives module init), and
   reads/writes of roots are propagated through the call graph to a Kleene
   fixpoint. See share.mli and DESIGN.md §11 for the accepted blind
   spots. *)

module S = Srclint
module Ints = Set.Make (Int)

type root_kind = Mutable | Prng | Lazy_val

type root = {
  r_id : int;
  r_def : int;  (* def id of the binding; -1 for the ambient Stdlib.Random *)
  r_name : string;  (* qualified, e.g. "Registry.default" *)
  r_kind : root_kind;
  r_guarded : bool;
  r_file : string;
  r_line : int;
}

type klass = Domain_safe | Reader | Writer

type audit = {
  a_graph : Callgraph.t;
  a_roots : root array;
  a_base_reads : Ints.t array;  (* per def: roots read directly *)
  a_base_writes : Ints.t array;  (* per def: roots written directly *)
  a_reads : Ints.t array;  (* transitive closure over callees *)
  a_writes : Ints.t array;
}

let kind_to_string = function
  | Mutable -> "mutable state"
  | Prng -> "PRNG stream"
  | Lazy_val -> "lazy cell"

(* ------------------------------------------------------------------ *)
(* Token vocabularies                                                 *)
(* ------------------------------------------------------------------ *)

(* Allocators of mutable storage. [Atomic.make] and [Mutex.create] are
   deliberately absent: state reachable only through them is its own
   discipline. *)
let prim_table names =
  let tbl = Hashtbl.create (2 * List.length names) in
  List.iter (fun nm -> Hashtbl.replace tbl nm ()) names;
  tbl

let alloc_prims =
  prim_table
    [ "Hashtbl.create"; "Hashtbl.copy"; "Array.make"; "Array.create_float"; "Array.init";
      "Array.copy"; "Array.make_matrix"; "Bytes.create"; "Bytes.make"; "Bytes.of_string";
      "Buffer.create"; "Queue.create"; "Stack.create" ]

let prng_prims = prim_table [ "Eutil.Prng.create"; "Eutil.Prng.split"; "Prng.create"; "Prng.split" ]

(* Mutating primitives whose next token is the mutated value. *)
let mutator_prims =
  prim_table
    [ "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset"; "Hashtbl.clear";
      "Hashtbl.filter_map_inplace"; "Array.set"; "Array.fill"; "Array.blit"; "Array.sort";
      "Array.fast_sort"; "Array.unsafe_set"; "Bytes.set"; "Bytes.fill"; "Bytes.blit";
      "Bytes.unsafe_set"; "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
      "Buffer.add_buffer"; "Buffer.add_substitute"; "Buffer.clear"; "Buffer.reset";
      "Buffer.truncate"; "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear";
      "Queue.transfer"; "Stack.push"; "Stack.pop"; "Stack.clear"; "Lazy.force";
      (* Obs instruments, under every qualification the repo uses. *)
      "Obs.Metric.Counter.incr"; "Obs.Metric.Counter.add"; "Obs.Metric.Counter.add_int";
      "Metric.Counter.incr"; "Metric.Counter.add"; "Metric.Counter.add_int"; "Counter.incr";
      "Counter.add"; "Counter.add_int"; "Obs.Metric.Gauge.set"; "Obs.Metric.Gauge.set_int";
      "Obs.Metric.Gauge.add"; "Metric.Gauge.set"; "Metric.Gauge.set_int"; "Metric.Gauge.add";
      "Gauge.set"; "Gauge.set_int"; "Gauge.add"; "Obs.Metric.Histogram.observe";
      "Obs.Metric.Histogram.time"; "Metric.Histogram.observe"; "Metric.Histogram.time";
      "Histogram.observe"; "Histogram.time"; "Obs.Registry.reset"; "Registry.reset";
      "Obs.Registry.register"; "Registry.register" ]

(* A file whose tokens use any of these has an owning-module concurrency
   discipline; mutable state it allocates is considered guarded. *)
let discipline_prefixes = [ "Mutex."; "Atomic."; "Domain.DLS" ]

let is_upper s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'
let is_lower s = s <> "" && ((s.[0] >= 'a' && s.[0] <= 'z') || s.[0] = '_')
let is_attr t = String.length t >= 2 && t.[0] = '[' && t.[1] = '@'
let starts_with ~prefix s = String.starts_with ~prefix s

let split_dots s = String.split_on_char '.' s

(* ------------------------------------------------------------------ *)
(* File-scope context: discipline and mutable record fields           *)
(* ------------------------------------------------------------------ *)

let file_discipline (files : Callgraph.file list) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Callgraph.file) ->
      let disciplined =
        Array.exists
          (fun { S.t; _ } -> List.exists (fun p -> starts_with ~prefix:p t) discipline_prefixes)
          f.Callgraph.f_toks
      in
      Hashtbl.replace tbl f.Callgraph.f_path disciplined)
    files;
  tbl

(* (library, field_name) for every [mutable foo : ...] declaration: a
   record literal mentioning such a field allocates mutable state. *)
let mutable_fields (files : Callgraph.file list) =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (f : Callgraph.file) ->
      let toks = f.Callgraph.f_toks in
      Array.iteri
        (fun i { S.t; _ } ->
          if t = "mutable" && i + 1 < Array.length toks then begin
            let next = toks.(i + 1).S.t in
            if is_lower next && not (String.contains next '.') then
              Hashtbl.replace tbl (f.Callgraph.f_library, next) ()
          end)
        toks)
    files;
  tbl

(* ------------------------------------------------------------------ *)
(* May-allocate fixpoint and root harvesting                          *)
(* ------------------------------------------------------------------ *)

type alloc = { au : bool; ag : bool; ap : bool; al : bool }
(* unguarded mutable / guarded mutable / prng / lazy *)

let alloc_none = { au = false; ag = false; ap = false; al = false }

let alloc_union a b =
  { au = a.au || b.au; ag = a.ag || b.ag; ap = a.ap || b.ap; al = a.al || b.al }

let alloc_equal a b = a = b
let alloc_any a = a.au || a.ag || a.ap || a.al

(* [ref] is an allocator only when applied; after an identifier or inside
   a type expression ([int ref], [: bool ref =]) it is a type constructor. *)
let ref_applied (body : S.tok array) i =
  let n = Array.length body in
  (i = 0 || not (is_lower body.(i - 1).S.t || is_upper body.(i - 1).S.t))
  && i + 1 < n
  &&
  let next = body.(i + 1).S.t in
  not (List.mem next [ "="; ")"; "]"; "}"; ";"; ","; "->"; "|"; ":"; "*" ])

let base_alloc ~disciplined ~mut_fields (d : Callgraph.def) =
  let body = d.Callgraph.d_body in
  let guarded = disciplined d.Callgraph.d_file in
  let a = ref alloc_none in
  Array.iteri
    (fun i { S.t; _ } ->
      if Hashtbl.mem alloc_prims t || (t = "ref" && ref_applied body i) then
        a := alloc_union !a (if guarded then { alloc_none with ag = true } else { alloc_none with au = true })
      else if Hashtbl.mem prng_prims t then a := alloc_union !a { alloc_none with ap = true }
      else if t = "lazy" then a := alloc_union !a { alloc_none with al = true }
      else if
        is_lower t
        && (not (String.contains t '.'))
        && Hashtbl.mem mut_fields (d.Callgraph.d_library, t)
        && i + 1 < Array.length body
        && body.(i + 1).S.t = "="
        && (i = 0
           || not (match body.(i - 1).S.t with "let" | "and" | "rec" -> true | _ -> false))
      then
        (* Record literal initialising a mutable field. *)
        a := alloc_union !a (if guarded then { alloc_none with ag = true } else { alloc_none with au = true }))
    body;
  !a

(* Is this def a plain value binding ([let name = ...] / [let name : t = ...]),
   as opposed to a function or destructuring pattern? Only value bindings
   hold state that outlives module initialisation. *)
let binding_is_value (body : S.tok array) =
  let n = Array.length body in
  let rec skip j =
    if j >= n then n
    else
      let t = body.(j).S.t in
      if is_attr t then skip (j + 1)
      else if t = "%" then skip (j + 2)
      else if t = "rec" then skip (j + 1)
      else j
  in
  let j = skip 1 in
  j + 1 < n
  && is_lower body.(j).S.t
  && (not (String.contains body.(j).S.t '.'))
  && (body.(j + 1).S.t = "=" || body.(j + 1).S.t = ":")

let modkey module_path =
  match List.rev (split_dots module_path) with x :: _ -> x | [] -> module_path

(* ------------------------------------------------------------------ *)
(* Audit                                                              *)
(* ------------------------------------------------------------------ *)

let fixpoint_sets ~n ~callees base =
  let sets = Array.init n base in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let merged = List.fold_left (fun acc j -> Ints.union acc sets.(j)) sets.(i) (callees i) in
      if not (Ints.equal merged sets.(i)) then begin
        sets.(i) <- merged;
        changed := true
      end
    done
  done;
  sets

let audit (g : Callgraph.t) =
  let defs = g.Callgraph.defs in
  let n = Array.length defs in
  let discipline = file_discipline g.Callgraph.files in
  let disciplined file = Option.value (Hashtbl.find_opt discipline file) ~default:false in
  let mut_fields = mutable_fields g.Callgraph.files in
  (* 1. May-allocate fixpoint: does evaluating this def (transitively)
     allocate mutable storage? *)
  let alloc =
    let base = Array.init n (fun i -> base_alloc ~disciplined ~mut_fields defs.(i)) in
    let sets = Array.copy base in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n - 1 do
        let merged =
          List.fold_left (fun acc j -> alloc_union acc sets.(j)) sets.(i) g.Callgraph.callees.(i)
        in
        if not (alloc_equal merged sets.(i)) then begin
          sets.(i) <- merged;
          changed := true
        end
      done
    done;
    sets
  in
  (* 2. Roots: non-entry toplevel value bindings whose evaluation allocates
     mutable storage, plus the ambient Stdlib.Random state. *)
  let roots = ref [] in
  let next_id = ref 0 in
  Array.iter
    (fun (d : Callgraph.def) ->
      let a = alloc.(d.Callgraph.d_id) in
      if
        (not d.Callgraph.d_entry)
        && binding_is_value d.Callgraph.d_body
        && alloc_any a
      then begin
        let kind = if a.ap then Prng else if a.al && not a.au && not a.ag then Lazy_val else Mutable in
        let guarded = disciplined d.Callgraph.d_file || (a.ag && not a.au) in
        roots :=
          {
            r_id = !next_id;
            r_def = d.Callgraph.d_id;
            r_name = modkey d.Callgraph.d_module ^ "." ^ d.Callgraph.d_name;
            r_kind = kind;
            r_guarded = guarded;
            r_file = d.Callgraph.d_file;
            r_line = d.Callgraph.d_line;
          }
          :: !roots;
        incr next_id
      end)
    defs;
  let random_id = !next_id in
  let random_root =
    {
      r_id = random_id;
      r_def = -1;
      r_name = "Stdlib.Random";
      r_kind = Prng;
      r_guarded = false;
      r_file = "<stdlib>";
      r_line = 0;
    }
  in
  let roots = Array.of_list (List.rev (random_root :: !roots)) in
  (* 3. Resolution indices: root references by (file, name) for undotted /
     lowercase-dotted uses and by (modkey, name) for qualified uses. *)
  let by_file = Hashtbl.create 64 in
  let by_modkey = Hashtbl.create 64 in
  let multi_add tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some l -> Hashtbl.replace tbl k (v :: l)
    | None -> Hashtbl.add tbl k [ v ]
  in
  Array.iter
    (fun r ->
      if r.r_def >= 0 then begin
        let d = defs.(r.r_def) in
        multi_add by_file (d.Callgraph.d_file, d.Callgraph.d_name) r.r_id;
        multi_add by_modkey (modkey d.Callgraph.d_module, d.Callgraph.d_name) r.r_id
      end)
    roots;
  let resolve (d : Callgraph.def) t =
    if starts_with ~prefix:"Random." t then [ random_id ]
    else if String.contains t '.' then begin
      let comps = split_dots t in
      match comps with
      | first :: _ when is_lower first ->
          (* Field or method access on a local/file-scope name: resolve the
             base against this file's roots. *)
          Option.value (Hashtbl.find_opt by_file (d.Callgraph.d_file, first)) ~default:[]
      | _ ->
          (* Qualified: find the last Module component followed by a value
             name, with the component before it as a library hint. *)
          let arr = Array.of_list comps in
          let m = Array.length arr in
          let idx = ref (-1) in
          for k = 0 to m - 2 do
            if is_upper arr.(k) && is_lower arr.(k + 1) then idx := k
          done;
          if !idx < 0 then []
          else begin
            let mk = arr.(!idx) and name = arr.(!idx + 1) in
            let hint = if !idx > 0 then arr.(!idx - 1) else "" in
            let cands =
              Option.value (Hashtbl.find_opt by_modkey (mk, name)) ~default:[]
            in
            if hint = "" then begin
              let same =
                List.filter
                  (fun r -> defs.(roots.(r).r_def).Callgraph.d_library = d.Callgraph.d_library)
                  cands
              in
              if same = [] then cands else same
            end
            else
              List.filter
                (fun r ->
                  let rd = defs.(roots.(r).r_def) in
                  String.capitalize_ascii rd.Callgraph.d_library = hint
                  || List.exists (String.equal hint) (split_dots rd.Callgraph.d_module))
                cands
          end
    end
    else if is_lower t then
      Option.value (Hashtbl.find_opt by_file (d.Callgraph.d_file, t)) ~default:[]
    else []
  in
  (* 4. Base read/write sets from each body's root references in context. *)
  let scan (d : Callgraph.def) =
    let body = d.Callgraph.d_body in
    let nb = Array.length body in
    let tok j = if j >= 0 && j < nb then body.(j).S.t else "" in
    let reads = ref Ints.empty and writes = ref Ints.empty in
    (* [a.(i) <- v]: the root token is followed by ".", "(", a balanced
       group, then "<-". *)
    let index_assign i =
      if tok (i + 1) <> "." || tok (i + 2) <> "(" then false
      else begin
        let depth = ref 1 and j = ref (i + 3) in
        while !depth > 0 && !j < nb do
          (match tok !j with "(" -> incr depth | ")" -> decr depth | _ -> ());
          incr j
        done;
        !depth = 0 && tok !j = "<-"
      end
    in
    Array.iteri
      (fun i { S.t; _ } ->
        match resolve d t with
        | [] -> ()
        | rs ->
            let prev = tok (i - 1) and next = tok (i + 1) in
            let write_ctx =
              next = ":=" || next = "<-"
              || prev = "incr" || prev = "decr" || prev = "Stdlib.incr" || prev = "Stdlib.decr"
              || Hashtbl.mem mutator_prims prev
              || List.exists (fun p -> starts_with ~prefix:p prev) [ "Eutil.Prng."; "Prng." ]
              || index_assign i
            in
            List.iter
              (fun r ->
                if roots.(r).r_def = d.Callgraph.d_id then ()
                  (* a binding's own initialiser neither reads nor writes *)
                else if write_ctx || roots.(r).r_kind <> Mutable then
                  (* any use of a PRNG stream advances it; any use of a
                     lazy cell may force it *)
                  writes := Ints.add r !writes
                else reads := Ints.add r !reads)
              rs)
      body;
    (!reads, !writes)
  in
  let base = Array.map scan defs in
  let base_reads = Array.map fst base in
  let base_writes = Array.map snd base in
  let reads =
    fixpoint_sets ~n ~callees:(fun i -> g.Callgraph.callees.(i)) (fun i -> base_reads.(i))
  in
  let writes =
    fixpoint_sets ~n ~callees:(fun i -> g.Callgraph.callees.(i)) (fun i -> base_writes.(i))
  in
  {
    a_graph = g;
    a_roots = roots;
    a_base_reads = base_reads;
    a_base_writes = base_writes;
    a_reads = reads;
    a_writes = writes;
  }

let roots a = a.a_roots

let classify a i =
  if not (Ints.is_empty a.a_writes.(i)) then Writer
  else if not (Ints.is_empty a.a_reads.(i)) then Reader
  else Domain_safe

let reads a i = Ints.elements a.a_reads.(i)
let writes a i = Ints.elements a.a_writes.(i)

(* ------------------------------------------------------------------ *)
(* Manifest                                                           *)
(* ------------------------------------------------------------------ *)

let parse_manifest s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = invalid_arg ("Share.parse_manifest: " ^ msg) in
  let skip () =
    while !i < n && (match s.[!i] with ' ' | '\n' | '\t' | '\r' | ',' -> true | _ -> false) do
      incr i
    done
  in
  let string () =
    if !i >= n || s.[!i] <> '"' then fail "expected a string";
    incr i;
    let start = !i in
    while !i < n && s.[!i] <> '"' do
      incr i
    done;
    if !i >= n then fail "unterminated string";
    let v = String.sub s start (!i - start) in
    incr i;
    v
  in
  skip ();
  if !i >= n || s.[!i] <> '{' then fail "expected '{'";
  incr i;
  let out = ref [] in
  let closed = ref false in
  while not !closed do
    skip ();
    if !i < n && s.[!i] = '}' then begin
      incr i;
      closed := true
    end
    else begin
      let region = string () in
      skip ();
      if !i >= n || s.[!i] <> ':' then fail "expected ':'";
      incr i;
      skip ();
      if !i >= n || s.[!i] <> '[' then fail "expected '['";
      incr i;
      let entries = ref [] in
      let done_ = ref false in
      while not !done_ do
        skip ();
        if !i < n && s.[!i] = ']' then begin
          incr i;
          done_ := true
        end
        else entries := string () :: !entries
      done;
      out := (region, List.rev !entries) :: !out
    end
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Rules                                                              *)
(* ------------------------------------------------------------------ *)

let rules =
  [
    ( "shared-write-reachable",
      "a declared parallel entrypoint transitively writes an unguarded shared mutable root" );
    ( "unguarded-global",
      "toplevel mutable root without owning-module Mutex/Atomic/Domain.DLS discipline (warn)" );
    ("prng-shared", "one PRNG stream is reachable from two or more parallel entrypoints");
    ("parallel-manifest", "an entrypoint named in check/parallel.json does not resolve");
  ]

let qualified (d : Callgraph.def) = d.Callgraph.d_module ^ "." ^ d.Callgraph.d_name
let where_of (d : Callgraph.def) = Printf.sprintf "%s:%d" d.Callgraph.d_file d.Callgraph.d_line

let chain_str (g : Callgraph.t) ids =
  String.concat " -> " (List.map (fun i -> qualified g.Callgraph.defs.(i)) ids)

(* Defs an entrypoint name resolves to: "Harness.run_trial" matches on the
   module key, "Fault.Harness.run_trial" also on the library-qualified
   path. *)
let resolve_entry (g : Callgraph.t) name =
  let matches (d : Callgraph.def) =
    let mk = modkey d.Callgraph.d_module ^ "." ^ d.Callgraph.d_name in
    let qual = qualified d in
    let lib_qual =
      String.capitalize_ascii d.Callgraph.d_library ^ "." ^ qual
    in
    name = mk || name = qual || name = lib_qual
  in
  Array.to_list g.Callgraph.defs |> List.filter matches

let analyze ?(manifest = []) (g : Callgraph.t) =
  let a = audit g in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* unguarded-global: roots with no discipline that something actually
     writes (an allocated-but-never-mutated table is shared read-only
     data, not a hazard). PRNG and lazy roots count as written by use. *)
  let written r =
    Array.exists (fun ws -> Ints.mem r ws) a.a_base_writes
  in
  Array.iter
    (fun r ->
      if r.r_def >= 0 && (not r.r_guarded) && written r.r_id then
        add
          (Finding.v ~severity:Finding.Warn ~rule:"unguarded-global"
             ~where:(Printf.sprintf "%s:%d" r.r_file r.r_line)
             (Printf.sprintf "toplevel %s %s has no Mutex/Atomic/Domain.DLS discipline"
                (kind_to_string r.r_kind) r.r_name)))
    a.a_roots;
  (* Per-region entrypoints. *)
  let entries =
    List.concat_map
      (fun (region, names) ->
        List.concat_map
          (fun name ->
            match resolve_entry g name with
            | [] ->
                add
                  (Finding.v ~rule:"parallel-manifest" ~where:"check/parallel.json"
                     (Printf.sprintf "parallel entrypoint %s (region %s) does not resolve" name
                        region));
                []
            | ds -> List.map (fun d -> (region, name, d)) ds)
          names)
      manifest
  in
  (* shared-write-reachable: an entrypoint whose transitive write set
     contains an unguarded root, with the shortest call chain to the
     writing definition as witness. *)
  List.iter
    (fun (region, _name, (d : Callgraph.def)) ->
      let i = d.Callgraph.d_id in
      Ints.iter
        (fun r ->
          let root = a.a_roots.(r) in
          if not root.r_guarded then begin
            let via =
              match
                Callgraph.witness g ~from:i ~target:(fun j -> Ints.mem r a.a_base_writes.(j))
              with
              | Some ids -> chain_str g ids
              | None -> qualified d
            in
            add
              (Finding.v ~rule:"shared-write-reachable" ~where:(where_of d)
                 (Printf.sprintf "parallel entrypoint %s (region %s) reaches a write of %s %s via %s"
                    (qualified d) region (kind_to_string root.r_kind) root.r_name via))
          end)
        a.a_writes.(i))
    entries;
  (* prng-shared: one PRNG stream (guarded or not — a mutex does not make
     a stream's draw order deterministic) reachable from two or more
     distinct entrypoints. *)
  Array.iter
    (fun root ->
      if root.r_kind = Prng then begin
        let users =
          List.filter
            (fun (_, _, (d : Callgraph.def)) ->
              let i = d.Callgraph.d_id in
              Ints.mem root.r_id a.a_reads.(i) || Ints.mem root.r_id a.a_writes.(i))
            entries
        in
        let distinct =
          List.sort_uniq Int.compare
            (List.map (fun (_, _, (d : Callgraph.def)) -> d.Callgraph.d_id) users)
        in
        if List.length distinct >= 2 then
          add
            (Finding.v ~rule:"prng-shared"
               ~where:(Printf.sprintf "%s:%d" root.r_file root.r_line)
               (Printf.sprintf "PRNG stream %s is reachable from %d parallel entrypoints: %s"
                  root.r_name (List.length distinct)
                  (String.concat ", "
                     (List.map (fun i -> qualified g.Callgraph.defs.(i)) distinct))))
      end)
    a.a_roots;
  List.rev !findings
