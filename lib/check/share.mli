(** Domain-safety analysis: shared-mutable-state audit over the
    {!Callgraph}.

    A {e root} is a toplevel library value binding whose evaluation
    (transitively, to a may-allocate fixpoint over the call graph)
    allocates mutable storage — a [ref], array, hashtable, buffer, queue,
    PRNG stream ({!Eutil.Prng}), record with [mutable] fields, or [lazy]
    cell — and therefore owns state that survives module initialisation
    and is shared by every domain. The ambient [Stdlib.Random] state is an
    extra builtin root. Reads and writes of roots are harvested from body
    tokens in context ([x := ...], [h.f <- ...], [a.(i) <- ...],
    [Hashtbl.replace x ...], [incr x]; any use of a PRNG or lazy root
    counts as a write) and propagated through the call graph to a Kleene
    fixpoint, classifying every definition on the lattice
    [Domain_safe < Reader < Writer].

    A root is {e guarded} when its owning file (or the file of the
    allocating definition) uses a [Mutex]/[Atomic]/[Domain.DLS]
    discipline. Guarded roots are considered safe for the race rules;
    PRNG streams stay interesting regardless, because a mutex serialises
    draws without making their order deterministic.

    Heuristic blind spots (accepted, like {!Effect}'s): aliased roots
    escaping through function returns, mutation through functor or
    first-class-module indirection, array literals ([[| ... |]]) as
    roots, and writes performed by higher-order callbacks that never
    resolve syntactically. See DESIGN.md §11. *)

type root_kind = Mutable | Prng | Lazy_val

type root = {
  r_id : int;  (** index into {!roots} *)
  r_def : int;  (** def id of the owning binding; -1 for [Stdlib.Random] *)
  r_name : string;  (** qualified, e.g. ["Registry.default"] *)
  r_kind : root_kind;
  r_guarded : bool;  (** owning module shows Mutex/Atomic/DLS discipline *)
  r_file : string;
  r_line : int;
}

type klass = Domain_safe | Reader | Writer

type audit
(** Roots plus per-definition base and transitive read/write sets. *)

val audit : Callgraph.t -> audit

val roots : audit -> root array

val classify : audit -> int -> klass
(** [classify a id] for a def id: [Writer] if the definition can
    transitively write some root, [Reader] if it can only read,
    [Domain_safe] otherwise. *)

val reads : audit -> int -> int list
(** Transitive root ids read by a def id (sorted). *)

val writes : audit -> int -> int list
(** Transitive root ids written by a def id (sorted). *)

val parse_manifest : string -> (string * string list) list
(** Parses the [check/parallel.json] manifest: a flat JSON object mapping
    a region name to an array of entrypoint names
    (["Module.definition"], optionally library-qualified).
    @raise Invalid_argument on malformed input. *)

val rules : (string * string) list
(** Rule names and one-line descriptions, for [respctl analyze --rules]. *)

val analyze : ?manifest:(string * string list) list -> Callgraph.t -> Finding.t list
(** Runs the audit and emits findings:

    - [shared-write-reachable] (error): a manifest entrypoint transitively
      writes an unguarded root; the message carries the shortest call
      chain to the writing definition.
    - [unguarded-global] (warn): an unguarded root that some definition
      actually writes (allocated-but-never-mutated values are shared
      read-only data and stay silent).
    - [prng-shared] (error): one PRNG stream reachable from two or more
      distinct manifest entrypoints, guarded or not.
    - [parallel-manifest] (error): a manifest entrypoint that does not
      resolve to any definition — a typo would otherwise silently certify
      nothing. *)
