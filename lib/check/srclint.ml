let rules =
  [
    ( "poly-compare",
      "bare polymorphic compare/Stdlib.compare; unsafe on float-carrying tuples or records" );
    ("obj-magic", "Obj.magic defeats the type system");
    ("hashtbl-find", "bare Hashtbl.find raises an anonymous Not_found");
    ("catchall-try", "try ... with _ -> swallows every exception");
    ("list-nth", "List.nth is O(n) per access; quadratic inside loops");
  ]

(* ------------------------------------------------------------------ *)
(* Pass 1: blank out comments, strings, and char literals (preserving
   newlines and byte offsets) and harvest suppression pragmas.        *)
(* ------------------------------------------------------------------ *)

let is_lower c = c >= 'a' && c <= 'z'
let is_rule_char c = is_lower c || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* A pragma comment reads "lint: allow <rule> <rule> ...". *)
let parse_pragma text =
  let words =
    String.map (fun c -> if c = '\n' || c = '\t' || c = ',' then ' ' else c) text
    |> String.split_on_char ' '
    |> List.filter (fun w -> w <> "")
  in
  let rec scan = function
    | "lint:" :: "allow" :: rest ->
        let rec take acc = function
          | w :: r when w <> "" && String.for_all is_rule_char w -> take (w :: acc) r
          | _ -> List.rev acc
        in
        take [] rest
    | _ :: rest -> scan rest
    | [] -> []
  in
  scan words

type cleaned = { text : string; pragmas : (int, string list) Hashtbl.t }

let clean source =
  let n = String.length source in
  let out = Bytes.of_string source in
  let pragmas = Hashtbl.create 8 in
  let add_pragma l rs =
    if rs <> [] then
      Hashtbl.replace pragmas l (rs @ Option.value (Hashtbl.find_opt pragmas l) ~default:[])
  in
  let line = ref 1 in
  let line_has_code = ref false in
  let i = ref 0 in
  let blank () = if Bytes.get out !i <> '\n' then Bytes.set out !i ' ' in
  let step () =
    if !i < n then begin
      if source.[!i] = '\n' then begin
        incr line;
        line_has_code := false
      end;
      incr i
    end
  in
  let blank_step () =
    blank ();
    step ()
  in
  (* Consume a string literal body starting after the opening quote. *)
  let skip_string_body add_char =
    let closed = ref false in
    while (not !closed) && !i < n do
      if source.[!i] = '\\' && !i + 1 < n then begin
        add_char source.[!i];
        blank_step ();
        add_char source.[!i];
        blank_step ()
      end
      else begin
        if source.[!i] = '"' then closed := true;
        add_char source.[!i];
        blank_step ()
      end
    done
  in
  (* One comment-text buffer for the whole pass, cleared per comment. *)
  let buf = Buffer.create 256 in
  while !i < n do
    let c = source.[!i] in
    if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
      let start_line = !line in
      let standalone = not !line_has_code in
      Buffer.clear buf;
      blank_step ();
      blank_step ();
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        if source.[!i] = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          blank_step ();
          blank_step ()
        end
        else if source.[!i] = '*' && !i + 1 < n && source.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          blank_step ();
          blank_step ()
        end
        else if source.[!i] = '"' then begin
          (* A string inside a comment hides comment terminators. *)
          Buffer.add_char buf '"';
          blank_step ();
          skip_string_body (Buffer.add_char buf)
        end
        else begin
          Buffer.add_char buf source.[!i];
          blank_step ()
        end
      done;
      let end_line = !line in
      let rs = parse_pragma (Buffer.contents buf) in
      for l = start_line to end_line do
        add_pragma l rs
      done;
      if standalone then add_pragma (end_line + 1) rs
    end
    else if c = '"' then begin
      line_has_code := true;
      blank_step ();
      skip_string_body (fun _ -> ())
    end
    else if
      c = '{' && !i + 1 < n
      && (source.[!i + 1] = '|' || is_lower source.[!i + 1] || source.[!i + 1] = '_')
    then begin
      (* Possible quoted string {id|...|id}; the delimiter id is lowercase
         letters and underscores (so [{_|...|_}] is legal too). *)
      let j = ref (!i + 1) in
      while !j < n && (is_lower source.[!j] || source.[!j] = '_') do
        incr j
      done;
      if !j < n && source.[!j] = '|' then begin
        let id = String.sub source (!i + 1) (!j - !i - 1) in
        let terminator = "|" ^ id ^ "}" in
        let tlen = String.length terminator in
        line_has_code := true;
        (* Blank until the terminator (inclusive) or end of input. *)
        let finished = ref false in
        while (not !finished) && !i < n do
          if !i + tlen <= n && String.sub source !i tlen = terminator then begin
            for _ = 1 to tlen do
              blank_step ()
            done;
            finished := true
          end
          else blank_step ()
        done
      end
      else begin
        line_has_code := true;
        step ()
      end
    end
    else if c = '\'' then begin
      line_has_code := true;
      if !i + 1 < n && source.[!i + 1] = '\\' then begin
        (* Escaped char literal: '\n', '\\', '\123', '\xFF'. The character
           after the backslash is consumed unconditionally so that '\'' does
           not mistake its escaped quote for the terminator. *)
        blank_step ();
        blank_step ();
        if !i < n then blank_step ();
        while !i < n && source.[!i] <> '\'' do
          blank_step ()
        done;
        if !i < n then blank_step ()
      end
      else if !i + 2 < n && source.[!i + 2] = '\'' && source.[!i + 1] <> '\n' then begin
        blank_step ();
        blank_step ();
        blank_step ()
      end
      else step () (* type variable such as 'a, or a trailing prime *)
    end
    else begin
      if c <> ' ' && c <> '\t' && c <> '\r' && c <> '\n' then line_has_code := true;
      step ()
    end
  done;
  { text = Bytes.to_string out; pragmas }

(* ------------------------------------------------------------------ *)
(* Pass 2: tokenize the cleaned text.                                 *)
(* ------------------------------------------------------------------ *)

type tok = { t : string; tline : int; tcol : int }

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let is_number_char c =
  is_digit c || c = '.' || c = '_'
  || (c >= 'a' && c <= 'f')
  || (c >= 'A' && c <= 'F')
  || c = 'x' || c = 'o' || c = 'b' || c = 'e' || c = 'E'

(* Two-character operators kept as single tokens; a table so the per-character
   scan loop does constant-time membership tests. *)
let two_char_ops =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun op -> Hashtbl.replace tbl op ())
    [ "->"; "<-"; "/."; "*."; "+."; "-."; "<="; ">="; "<>"; "**"; ":="; "::"; "|>"; "||"; "&&";
      "@@"; "=="; "!=" ];
  tbl

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_id_start c then begin
      let start = !i in
      let col = start - !bol + 1 in
      incr i;
      while !i < n && is_id_char text.[!i] do
        incr i
      done;
      (* Join dotted paths (Hashtbl.find, a.field) into one token. *)
      let continue = ref true in
      while !continue do
        if !i + 1 < n && text.[!i] = '.' && is_id_start text.[!i + 1] then begin
          incr i;
          while !i < n && is_id_char text.[!i] do
            incr i
          done
        end
        else continue := false
      done;
      toks := { t = String.sub text start (!i - start); tline = !line; tcol = col } :: !toks
    end
    else if is_digit c then begin
      let start = !i in
      let col = start - !bol + 1 in
      incr i;
      while
        !i < n
        && (is_number_char text.[!i]
           || (* exponent sign: 1e-9, 2.5E+9 *)
           ((text.[!i] = '+' || text.[!i] = '-')
           && (text.[!i - 1] = 'e' || text.[!i - 1] = 'E')
           && !i + 1 < n
           && is_digit text.[!i + 1]))
      do
        incr i
      done;
      (* int-literal width suffixes: 32l, 64L, 1n *)
      if !i < n && (text.[!i] = 'l' || text.[!i] = 'L' || text.[!i] = 'n') then incr i;
      toks := { t = String.sub text start (!i - start); tline = !line; tcol = col } :: !toks
    end
    else if c = '[' && !i + 1 < n && text.[!i + 1] = '@' then begin
      (* Attribute or floating attribute: [@inline], [@@deriving ...],
         [@@@warning "-32"]. Emitted as a single token carrying just the
         attribute name ("[@inline]"); the payload is consumed (tracking
         nested brackets) and dropped, so attributed bindings like
         [let[@inline] f x = ...] keep their [let]/name adjacency for the
         definition scanners downstream. *)
      let col = !i - !bol + 1 in
      let ln = !line in
      i := !i + 1;
      while !i < n && text.[!i] = '@' do
        incr i
      done;
      while !i < n && (text.[!i] = ' ' || text.[!i] = '\t') do
        incr i
      done;
      let id_start = !i in
      while !i < n && (is_id_char text.[!i] || text.[!i] = '.') do
        incr i
      done;
      let name = String.sub text id_start (!i - id_start) in
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        let ch = text.[!i] in
        incr i;
        match ch with
        | '[' -> incr depth
        | ']' -> decr depth
        | '\n' ->
            incr line;
            bol := !i
        | _ -> ()
      done;
      toks := { t = "[@" ^ name ^ "]"; tline = ln; tcol = col } :: !toks
    end
    else if !i + 1 < n && Hashtbl.mem two_char_ops (String.sub text !i 2) then begin
      toks := { t = String.sub text !i 2; tline = !line; tcol = !i - !bol + 1 } :: !toks;
      i := !i + 2
    end
    else begin
      toks := { t = String.make 1 c; tline = !line; tcol = !i - !bol + 1 } :: !toks;
      incr i
    end
  done;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Pass 3: the rule engine.                                           *)
(* ------------------------------------------------------------------ *)

type raw = { rule : string; rline : int; rcol : int; msg : string }

(* Keywords after which a bare [compare] token is a definition or a label,
   not a use of the polymorphic primitive. *)
let compare_definers =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun kw -> Hashtbl.replace tbl kw ())
    [ "let"; "and"; "rec"; "val"; "external"; "method"; "~"; "?" ];
  tbl

let scan_tokens toks =
  let out = ref [] in
  let add rule rline rcol msg = out := { rule; rline; rcol; msg } :: !out in
  let ntoks = Array.length toks in
  (* try/match frames carry the brace depth at which they opened, so that a
     record-update [{ e with ... }] (always directly inside braces opened
     after the keyword) does not consume the frame. *)
  let frames = ref [] in
  let brace = ref 0 in
  Array.iteri
    (fun idx tk ->
      match tk.t with
      | "Obj.magic" ->
          add "obj-magic" tk.tline tk.tcol "Obj.magic defeats the type system; restructure instead"
      | "List.nth" ->
          add "list-nth" tk.tline tk.tcol
            "List.nth is O(n) per access; use an array, pattern matching, or explicit recursion"
      | "Hashtbl.find" ->
          add "hashtbl-find" tk.tline tk.tcol
            "bare Hashtbl.find raises an anonymous Not_found; use find_opt or raise a descriptive \
             error naming the missing key"
      | "compare" | "Stdlib.compare" ->
          let prev = if idx > 0 then toks.(idx - 1).t else "" in
          if not (Hashtbl.mem compare_definers prev) then
            add "poly-compare" tk.tline tk.tcol
              "polymorphic compare mis-orders NaN and is megamorphic; use an explicit comparator \
               (Float.compare, Int.compare, a tuple comparator, ...)"
      | "{" -> incr brace
      | "}" -> brace := max 0 (!brace - 1)
      | "try" -> frames := (`Try, !brace) :: !frames
      | "match" -> frames := (`Match, !brace) :: !frames
      | "with" -> (
          match !frames with
          | (kind, d) :: rest when d = !brace ->
              frames := rest;
              if kind = `Try then begin
                let j = ref (idx + 1) in
                while !j < ntoks && toks.(!j).t = "|" do
                  incr j
                done;
                if
                  !j + 1 < ntoks
                  && toks.(!j).t = "_"
                  && (toks.(!j + 1).t = "->" || toks.(!j + 1).t = "when")
                then
                  add "catchall-try" toks.(!j).tline toks.(!j).tcol
                    "catch-all exception handler swallows every failure (including Out_of_memory \
                     and Assert_failure); match the specific exceptions instead"
              end
          | _ -> () (* record-with, module-type-with, or stray *))
      | _ -> ())
    toks;
  List.rev !out

let suppressed cleaned ~rule ~line =
  let allowed = Option.value (Hashtbl.find_opt cleaned.pragmas line) ~default:[] in
  List.mem rule allowed || List.mem "all" allowed

let lint_string ~file source =
  let cleaned = clean source in
  let raw = scan_tokens (tokenize cleaned.text) in
  List.filter_map
    (fun r ->
      if suppressed cleaned ~rule:r.rule ~line:r.rline then None
      else
        Some
          (Finding.v ~rule:r.rule ~where:(Printf.sprintf "%s:%d:%d" file r.rline r.rcol) r.msg))
    raw

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_string ~file:path (read_file path)

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let hidden base = String.length base > 0 && (base.[0] = '.' || base.[0] = '_')

let rec collect acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> if hidden entry then acc else collect acc (Filename.concat path entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if is_source path then path :: acc
  else acc

let source_files paths = List.fold_left collect [] paths |> List.rev

let lint_paths paths = List.concat_map lint_file (source_files paths)
