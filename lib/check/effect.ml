(* Interprocedural effect inference on the Callgraph. Base effects come
   from a single pass over each definition's body tokens; propagation is a
   Kleene iteration of a union transfer function, so the fixpoint exists
   and is monotone in the edge set. See effect.mli and DESIGN.md §10. *)

module S = Srclint
module Strings = Set.Make (String)

type effects = { raises : bool; partial : Strings.t; nondet : Strings.t; io : bool }

let empty = { raises = false; partial = Strings.empty; nondet = Strings.empty; io = false }

let union a b =
  {
    raises = a.raises || b.raises;
    partial = Strings.union a.partial b.partial;
    nondet = Strings.union a.nondet b.nondet;
    io = a.io || b.io;
  }

let leq a b =
  (not a.raises || b.raises)
  && Strings.subset a.partial b.partial
  && Strings.subset a.nondet b.nondet
  && ((not a.io) || b.io)

let equal_effects a b = leq a b && leq b a

(* ------------------------------------------------------------------ *)
(* Base effects of one body                                           *)
(* ------------------------------------------------------------------ *)

(* Primitive classification tables: [base_of_body] consults them once per
   token, so membership must be constant-time, not a list walk. *)
let table names =
  let tbl = Hashtbl.create (2 * List.length names) in
  List.iter (fun nm -> Hashtbl.replace tbl nm ()) names;
  tbl

let raise_prims = table [ "failwith"; "invalid_arg"; "Stdlib.failwith"; "Stdlib.invalid_arg" ]
let partial_prims = table [ "List.hd"; "Option.get"; "Hashtbl.find" ]
let clock_prims = table [ "Random.self_init"; "Unix.gettimeofday"; "Sys.time" ]
let hashtbl_orders = table [ "Hashtbl.iter"; "Hashtbl.fold" ]
let sorters = table [ "List.sort"; "List.sort_uniq"; "List.stable_sort"; "Array.sort" ]

let io_prims =
  table
    [ "print_string"; "print_endline"; "print_newline"; "print_int"; "print_float"; "print_char";
      "prerr_string"; "prerr_endline"; "prerr_newline"; "Printf.printf"; "Printf.eprintf";
      "Format.printf"; "Format.eprintf"; "Fmt.pr"; "Fmt.epr"; "open_in"; "open_out"; "open_in_bin";
      "open_out_bin"; "input_line"; "output_string"; "output_char"; "read_line"; "Sys.readdir";
      "Sys.command"; "Sys.remove"; "Sys.rename" ]

let is_io_prim t = Hashtbl.mem io_prims t

let is_upper s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'
let is_number s = s <> "" && s.[0] >= '0' && s.[0] <= '9'
let undotted s = not (String.contains s '.')

let base_of_body (body : S.tok array) =
  let n = Array.length body in
  let tok_at j = if j < n then body.(j).S.t else "" in
  (* Constructors this body matches on: [with C], [| C], [exception C].
     A [raise C] of such a constructor is locally handled. *)
  let handled = Hashtbl.create 4 in
  for i = 0 to n - 1 do
    match body.(i).S.t with
    | "with" | "|" | "exception" ->
        let next = tok_at (i + 1) in
        if is_upper next && undotted next then Hashtbl.replace handled next ()
    | _ -> ()
  done;
  let last_sorter = ref (-1) in
  for i = n - 1 downto 0 do
    if !last_sorter < 0 && Hashtbl.mem sorters body.(i).S.t then last_sorter := i
  done;
  let e = ref empty in
  for i = 0 to n - 1 do
    let t = body.(i).S.t in
    if Hashtbl.mem raise_prims t then e := { !e with raises = true }
    else if t = "raise" || t = "Stdlib.raise" then begin
      (* Skip the wrapping paren / application operator to see the
         exception constructor: [raise (Bad x)], [raise @@ Bad x]. *)
      let j = ref (i + 1) in
      while tok_at !j = "(" || tok_at !j = "@@" do
        incr j
      done;
      let exn = tok_at !j in
      let local_exit = exn = "Exit" || exn = "Stdlib.Exit" in
      let local_handled = is_upper exn && undotted exn && Hashtbl.mem handled exn in
      if not (local_exit || local_handled) then e := { !e with raises = true }
    end
    else if Hashtbl.mem partial_prims t then e := { !e with partial = Strings.add t !e.partial }
    else if t = "Array.get" then begin
      (* [Array.get a 0] is fine; a computed index is partial. *)
      let idx = tok_at (i + 2) in
      if not (is_number idx) then e := { !e with partial = Strings.add t !e.partial }
    end
    else if Hashtbl.mem clock_prims t then e := { !e with nondet = Strings.add t !e.nondet }
    else if Hashtbl.mem hashtbl_orders t then begin
      (* The fold-then-sort idiom is deterministic: a sorter later in the
         same body cancels the iteration-order effect. *)
      if !last_sorter < i then e := { !e with nondet = Strings.add t !e.nondet }
    end
    else if Hashtbl.mem io_prims t then e := { !e with io = true }
  done;
  !e

let base_of_string text = base_of_body (S.tokenize (S.clean text).S.text)

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                           *)
(* ------------------------------------------------------------------ *)

let fixpoint ~n ~callees ~base =
  let eff = Array.init n base in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let merged = List.fold_left (fun acc j -> union acc eff.(j)) eff.(i) (callees i) in
      if not (equal_effects merged eff.(i)) then begin
        eff.(i) <- merged;
        changed := true
      end
    done
  done;
  eff

let infer (g : Callgraph.t) =
  let n = Array.length g.Callgraph.defs in
  fixpoint ~n
    ~callees:(fun i -> g.Callgraph.callees.(i))
    ~base:(fun i -> base_of_body g.Callgraph.defs.(i).Callgraph.d_body)

(* ------------------------------------------------------------------ *)
(* Rules                                                              *)
(* ------------------------------------------------------------------ *)

let rules =
  [
    ( "partial-reachable",
      "public library value can reach a partial primitive (List.hd, Option.get, Hashtbl.find, \
       computed Array.get)" );
    ("nondet-export", "iteration-order or clock nondeterminism reaches an export surface");
    ("undocumented-raise", "public .mli value raises directly but its doc lacks @raise (warn)");
    ("dead-function", "toplevel definition unreachable from every entry point (warn)");
    ("budget-exceeded", "warn-level findings exceed the ratchet in check/budget.json");
  ]

let export_names = [ "to_json"; "to_csv"; "to_dot"; "to_text"; "to_prometheus"; "to_prom" ]
let export_modules = [ "Export"; "Harness" ]

let last_component path =
  match List.rev (String.split_on_char '.' path) with x :: _ -> x | [] -> path

let qualified (d : Callgraph.def) = d.Callgraph.d_module ^ "." ^ d.Callgraph.d_name
let where_of (d : Callgraph.def) = Printf.sprintf "%s:%d" d.Callgraph.d_file d.Callgraph.d_line

let chain_str (g : Callgraph.t) ids =
  String.concat " -> " (List.map (fun i -> qualified g.Callgraph.defs.(i)) ids)

let pick set = match Strings.min_elt_opt set with Some s -> s | None -> "?"

let analyze (g : Callgraph.t) =
  let defs = g.Callgraph.defs in
  let n = Array.length defs in
  let base = Array.init n (fun i -> base_of_body defs.(i).Callgraph.d_body) in
  let eff = fixpoint ~n ~callees:(fun i -> g.Callgraph.callees.(i)) ~base:(fun i -> base.(i)) in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* partial-reachable: a public value whose transitive effects include a
     partial primitive. *)
  Array.iter
    (fun (d : Callgraph.def) ->
      let i = d.Callgraph.d_id in
      if d.Callgraph.d_public && not (Strings.is_empty eff.(i).partial) then begin
        let via =
          match
            Callgraph.witness g ~from:i ~target:(fun j -> not (Strings.is_empty base.(j).partial))
          with
          | Some ids -> chain_str g ids
          | None -> qualified d
        in
        add
          (Finding.v ~rule:"partial-reachable" ~where:(where_of d)
             (Printf.sprintf "public %s can hit partial %s (via %s)" (qualified d)
                (pick eff.(i).partial) via))
      end)
    defs;
  (* nondet-export: nondeterminism reaching an export surface. *)
  Array.iter
    (fun (d : Callgraph.def) ->
      let i = d.Callgraph.d_id in
      let is_export =
        (not d.Callgraph.d_entry)
        && (List.exists (String.equal d.Callgraph.d_name) export_names
           || List.exists (String.equal (last_component d.Callgraph.d_module)) export_modules)
      in
      if is_export && not (Strings.is_empty eff.(i).nondet) then begin
        let via =
          match
            Callgraph.witness g ~from:i ~target:(fun j -> not (Strings.is_empty base.(j).nondet))
          with
          | Some ids -> chain_str g ids
          | None -> qualified d
        in
        add
          (Finding.v ~rule:"nondet-export" ~where:(where_of d)
             (Printf.sprintf "export %s depends on %s (via %s)" (qualified d)
                (pick eff.(i).nondet) via))
      end)
    defs;
  (* undocumented-raise: direct raises behind an undocumented .mli val. *)
  List.iter
    (fun (v : Callgraph.vdecl) ->
      if not v.Callgraph.v_raise_doc then begin
        let matches (d : Callgraph.def) =
          d.Callgraph.d_library = v.Callgraph.v_library
          && d.Callgraph.d_module = v.Callgraph.v_module
          && d.Callgraph.d_name = v.Callgraph.v_name
        in
        Array.iter
          (fun (d : Callgraph.def) ->
            if matches d && base.(d.Callgraph.d_id).raises then
              add
                (Finding.v ~severity:Finding.Warn ~rule:"undocumented-raise"
                   ~where:(Printf.sprintf "%s:%d" v.Callgraph.v_file v.Callgraph.v_line)
                   (Printf.sprintf "val %s raises but its doc comment lacks @raise" (qualified d))))
          defs
      end)
    g.Callgraph.vals;
  (* dead-function: unreachable from entry points and initializers. *)
  let roots = ref [] in
  Array.iter
    (fun (d : Callgraph.def) ->
      if d.Callgraph.d_entry || d.Callgraph.d_name = "()" || d.Callgraph.d_name = "_" then
        roots := d.Callgraph.d_id :: !roots)
    defs;
  let live = Callgraph.reachable g ~roots:!roots in
  Array.iter
    (fun (d : Callgraph.def) ->
      if (not d.Callgraph.d_entry) && not live.(d.Callgraph.d_id) then
        add
          (Finding.v ~severity:Finding.Warn ~rule:"dead-function" ~where:(where_of d)
             (Printf.sprintf "%s is unreachable from every entry point" (qualified d))))
    defs;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Budget ratchet                                                     *)
(* ------------------------------------------------------------------ *)

let parse_budget s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = invalid_arg ("Effect.parse_budget: " ^ msg) in
  let skip () =
    while !i < n && (match s.[!i] with ' ' | '\n' | '\t' | '\r' | ',' -> true | _ -> false) do
      incr i
    done
  in
  skip ();
  if !i >= n || s.[!i] <> '{' then fail "expected '{'";
  incr i;
  let out = ref [] in
  let closed = ref false in
  while not !closed do
    skip ();
    if !i < n && s.[!i] = '}' then begin
      incr i;
      closed := true
    end
    else if !i < n && s.[!i] = '"' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '"' do
        incr i
      done;
      if !i >= n then fail "unterminated string";
      let key = String.sub s start (!i - start) in
      incr i;
      skip ();
      if !i >= n || s.[!i] <> ':' then fail "expected ':'";
      incr i;
      skip ();
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      if !i = start then fail "expected a non-negative integer";
      out := (key, int_of_string (String.sub s start (!i - start))) :: !out
    end
    else fail "expected a key or '}'"
  done;
  List.rev !out

let over_budget ~budget findings =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (f : Finding.t) ->
      if f.Finding.severity = Finding.Warn then begin
        let c = match Hashtbl.find_opt counts f.Finding.rule with Some c -> c | None -> 0 in
        Hashtbl.replace counts f.Finding.rule (c + 1)
      end)
    findings;
  let allowances = Hashtbl.create 8 in
  List.iter (fun (rule, a) -> Hashtbl.replace allowances rule a) (List.rev budget);
  Hashtbl.fold (fun rule count acc -> (rule, count) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.filter_map (fun (rule, count) ->
         let allowed = match Hashtbl.find_opt allowances rule with Some a -> a | None -> 0 in
         if count > allowed then
           Some
             (Finding.v ~rule:"budget-exceeded" ~where:"check/budget.json"
                (Printf.sprintf "%d %s finding(s) exceed the recorded budget of %d" count rule
                   allowed))
         else None)
