type severity = Error | Warn

type t = { rule : string; severity : severity; where : string; message : string }

let v ?(severity = Error) ~rule ~where message = { rule; severity; where; message }

let errors fs = List.filter (fun f -> f.severity = Error) fs

let has_rule rule fs = List.exists (fun f -> String.equal f.rule rule) fs

let severity_to_string = function Error -> "error" | Warn -> "warning"

let pp ppf f =
  Format.fprintf ppf "%s: %s [%s]: %s" f.where (severity_to_string f.severity) f.rule f.message

let render fs = String.concat "\n" (List.map (Format.asprintf "%a" pp) fs)

(* Minimal JSON string escaping: the fields we emit only ever contain file
   paths, rule names, and human-readable messages. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json fs =
  let obj f =
    Printf.sprintf "  {\"rule\": \"%s\", \"severity\": \"%s\", \"where\": \"%s\", \"message\": \"%s\"}"
      (json_escape f.rule)
      (severity_to_string f.severity)
      (json_escape f.where) (json_escape f.message)
  in
  "[\n" ^ String.concat ",\n" (List.map obj fs) ^ "\n]\n"

let to_json_document passes =
  let pass (name, fs) =
    Printf.sprintf "{\"pass\": \"%s\", \"findings\": %s}" (json_escape name)
      (String.trim (to_json fs))
  in
  let all = List.concat_map snd passes in
  let errs = List.length (errors all) in
  Printf.sprintf "{\"passes\": [%s], \"errors\": %d, \"warnings\": %d}\n"
    (String.concat ", " (List.map pass passes))
    errs
    (List.length all - errs)
