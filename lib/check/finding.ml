type severity = Error | Warn

type t = { rule : string; severity : severity; where : string; message : string }

let v ?(severity = Error) ~rule ~where message = { rule; severity; where; message }

let errors fs = List.filter (fun f -> f.severity = Error) fs

let has_rule rule fs = List.exists (fun f -> String.equal f.rule rule) fs

let severity_to_string = function Error -> "error" | Warn -> "warning"

let pp ppf f =
  Format.fprintf ppf "%s: %s [%s]: %s" f.where (severity_to_string f.severity) f.rule f.message

let render fs = String.concat "\n" (List.map (Format.asprintf "%a" pp) fs)

(* Minimal JSON string escaping: the fields we emit only ever contain file
   paths, rule names, and human-readable messages. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json fs =
  let obj f =
    Printf.sprintf "  {\"rule\": \"%s\", \"severity\": \"%s\", \"where\": \"%s\", \"message\": \"%s\"}"
      (json_escape f.rule)
      (severity_to_string f.severity)
      (json_escape f.where) (json_escape f.message)
  in
  "[\n" ^ String.concat ",\n" (List.map obj fs) ^ "\n]\n"

(* SARIF 2.1.0, the minimal static-analysis interchange subset: one run,
   one driver, the rule table from [--list-rules], one result per
   finding. [where] is "file:line" when a token anchored the finding and
   a bare path otherwise; both map onto physicalLocation. *)
let to_sarif ~rules fs =
  let rule_json (id, desc) =
    Printf.sprintf "{\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}" (json_escape id)
      (json_escape desc)
  in
  let split_where w =
    match String.rindex_opt w ':' with
    | Some i -> (
        let tail = String.sub w (i + 1) (String.length w - i - 1) in
        match int_of_string_opt tail with
        | Some line when line > 0 -> (String.sub w 0 i, line)
        | _ -> (w, 1))
    | None -> (w, 1)
  in
  let result f =
    let uri, line = split_where f.where in
    Printf.sprintf
      "{\"ruleId\": \"%s\", \"level\": \"%s\", \"message\": {\"text\": \"%s\"}, \"locations\": \
       [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": \
       {\"startLine\": %d}}}]}"
      (json_escape f.rule)
      (severity_to_string f.severity)
      (json_escape f.message) (json_escape uri) line
  in
  Printf.sprintf
    "{\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\", \"version\": \"2.1.0\", \
     \"runs\": [{\"tool\": {\"driver\": {\"name\": \"respctl\", \"informationUri\": \
     \"https://github.com/respctl\", \"rules\": [%s]}}, \"results\": [%s]}]}\n"
    (String.concat ", " (List.map rule_json rules))
    (String.concat ", " (List.map result fs))

let to_json_document passes =
  let pass (name, fs) =
    Printf.sprintf "{\"pass\": \"%s\", \"findings\": %s}" (json_escape name)
      (String.trim (to_json fs))
  in
  let all = List.concat_map snd passes in
  let errs = List.length (errors all) in
  Printf.sprintf "{\"passes\": [%s], \"errors\": %d, \"warnings\": %d}\n"
    (String.concat ", " (List.map pass passes))
    errs
    (List.length all - errs)
