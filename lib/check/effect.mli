(** Interprocedural effect inference over a {!Callgraph}: each definition
    gets a base effect set from its own body tokens, then effects are
    propagated along call edges to a Kleene fixpoint (the lattice is
    finite, so termination is trivial; the transfer function is a union,
    so the fixpoint is monotone — adding an edge can never shrink a
    definition's effect set, a property the test suite checks with
    QCheck).

    The effect lattice tracks:
    - {b Raises}: [failwith] / [invalid_arg] / [raise] in the body, except
      [raise Exit] and raises of a constructor that the same body also
      matches (the local [try ... with C ->] / [| exception C ->] idiom);
    - {b Partial}: calls of partial stdlib primitives — [List.hd],
      [Option.get], bare [Hashtbl.find], and [Array.get] with a
      non-literal index;
    - {b Nondet}: sources of run-to-run nondeterminism —
      [Random.self_init], [Unix.gettimeofday], [Sys.time], and
      [Hashtbl.iter]/[Hashtbl.fold] iteration order (cancelled when the
      same body later sorts the result: the fold-then-sort idiom is
      deterministic);
    - {b IO}: console/file side effects.

    Known false negatives are documented in DESIGN.md §10: effects through
    functors, first-class functions that escape, [a.(i)] sugar (only the
    explicit [Array.get] spelling is tracked), and exceptions handled by a
    {e caller}'s [try] (the analysis does not model catching across
    calls). *)

module Strings : Set.S with type elt = string

type effects = { raises : bool; partial : Strings.t; nondet : Strings.t; io : bool }

val empty : effects
val union : effects -> effects -> effects
val leq : effects -> effects -> bool
val equal_effects : effects -> effects -> bool

val base_of_body : Srclint.tok array -> effects
(** Base (intraprocedural) effects of one definition body. *)

val base_of_string : string -> effects
(** Tokenizes [clean]ed source text and returns its base effects; a
    convenience wrapper over {!base_of_body} for tests. *)

val fixpoint : n:int -> callees:(int -> int list) -> base:(int -> effects) -> effects array
(** [fixpoint ~n ~callees ~base] is the least array [e] with
    [e.(i) ⊇ base i ∪ ⋃ { e.(j) | j ∈ callees i }]. *)

val infer : Callgraph.t -> effects array
(** Per-definition transitive effects, indexed by [d_id]. *)

val rules : (string * string) list
(** [(id, description)] for the interprocedural rules, for [--rules]. *)

val analyze : Callgraph.t -> Finding.t list
(** Runs the four rules:
    - [partial-reachable] (error): a public library value whose transitive
      effect set contains a partial primitive; the message carries a
      witness call chain.
    - [nondet-export] (error): a Nondet effect reaching an export surface
      (a definition named [to_json]/[to_csv]/[to_dot]/[to_text]/
      [to_prometheus]/[to_prom], or any definition in a module named
      [Export] or [Harness]).
    - [undocumented-raise] (warn): a public [.mli] value whose body
      {e directly} raises but whose doc comment lacks [@raise].
    - [dead-function] (warn): a library definition unreachable from every
      entry point ([bin]/[bench]/[test]/[examples] definitions and
      [let () = ...] initializers). *)

val parse_budget : string -> (string * int) list
(** Parses the [check/budget.json] ratchet file: a flat JSON object
    mapping rule id to the allowed number of warn-level findings.
    @raise Invalid_argument on malformed input. *)

val over_budget : budget:(string * int) list -> Finding.t list -> Finding.t list
(** Error-level [budget-exceeded] findings for every rule whose warn
    count exceeds its budget (rules absent from the budget allow 0). *)

val is_io_prim : string -> bool
(** Whether a token is one of the IO primitives the {b IO} effect tracks;
    {!Lock} reuses the table to flag IO-effectful calls under a lock. *)
