(** Self-contained OCaml source linter: a small lexer (comments, strings,
    char literals, quoted strings) plus a token-stream rule engine. No ppx,
    no external parser — by design it is heuristic, catching the banned
    patterns that have bitten energy-aware routing code (see DESIGN.md).

    Rules:
    - [poly-compare]: bare [compare] / [Stdlib.compare] used as a value or
      applied. Polymorphic comparison on float-carrying tuples or records
      mis-orders NaN and costs a megamorphic call per element; use
      [Float.compare]-based comparators.
    - [obj-magic]: any use of [Obj.magic].
    - [hashtbl-find]: bare [Hashtbl.find] (raises an anonymous [Not_found]);
      use [find_opt] or a wrapper with a descriptive error.
    - [catchall-try]: [try ... with _ ->] whose first arm is a wildcard.
    - [list-nth]: [List.nth] — O(n) per access, quadratic in loops.

    Suppression: a comment [(* lint: allow <rule> ... *)] disables the named
    rules (or [all]) on every line the comment spans; when the comment is the
    first thing on its line it also covers the following line. *)

val rules : (string * string) list
(** [(id, description)] for every lint rule, for [--help]-style listings. *)

(** {1 Lexer}

    The two front-end passes are exposed so that other token-stream analyses
    ({!Flow}) share one OCaml lexer instead of re-implementing comment,
    string, and literal handling. *)

type cleaned = { text : string; pragmas : (int, string list) Hashtbl.t }
(** Source with comments/strings/char literals blanked to spaces (newlines
    and byte offsets preserved) plus the harvested suppression pragmas,
    keyed by line number. *)

val clean : string -> cleaned

val suppressed : cleaned -> rule:string -> line:int -> bool
(** Whether a [(* lint: allow <rule> ... *)] pragma (or [allow all]) covers
    [rule] on [line]. *)

type tok = { t : string; tline : int; tcol : int }
(** One token of cleaned source: an identifier (dotted paths joined, e.g.
    ["Hashtbl.find"]), a number literal with its spelling preserved (e.g.
    ["2.5e9"]), a two-character operator (["/."], ["<>"], ...), or a single
    punctuation character. *)

val tokenize : string -> tok array
(** Tokenizes cleaned text; positions are 1-based line/column. *)

val read_file : string -> string

val source_files : string list -> string list
(** Every [.ml]/[.mli] under the given files/directories (recursively),
    skipping entries whose basename starts with ['.'] or ['_']. *)

val lint_string : file:string -> string -> Finding.t list
(** Lints source text; [file] is used only for locations. *)

val lint_file : string -> Finding.t list
(** Reads and lints one file. *)

val lint_paths : string list -> Finding.t list
(** Lints every [.ml]/[.mli] under the given files/directories
    (recursively), skipping entries whose basename starts with ['.'] or
    ['_'] (e.g. [_build]). Findings are ordered by file, then line. *)
