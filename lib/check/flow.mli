(** Intraprocedural numeric-safety dataflow analysis.

    Reuses the {!Srclint} lexer (comment/string blanking, pragma harvest,
    tokenizer) to build per-function token streams — a function is a
    toplevel [let]/[and] at column 1 — and runs a single forward pass with
    a two-point lattice per identifier, {b Top} (may be zero) and
    {b NonZero}. Facts are established by comparisons against numeric
    literals, bindings to nonzero constants, and [max <positive>] floors;
    once established, a fact holds for the rest of the function (flow-loose
    by design; DESIGN.md section 7 discusses the trade-off).

    Rules:
    - [div-unguarded]: a [/.] whose divisor is a standalone identifier (or
      [float_of_int] of one) with no NonZero fact, or a literal zero.
      Parenthesised expressions, projections, and applications are
      conservatively trusted.
    - [nan-compare]: a comparison with a [nan] operand (vacuous under
      IEEE 754), or the [x <> x] / [x = x] self-comparison idiom — both
      should be [Float.is_nan].
    - [magic-unit]: a scientific-notation literal of magnitude >= 1e6 that
      is neither wrapped by an [Eutil.Units] constructor nor bound to a
      named constant. [lib/util/units.ml] itself is exempt.
    - [unit-relabel]: a [to_float] result fed straight back into a [Units]
      constructor without a dimension annotation — the one token sequence
      that silently re-labels a quantity's dimension.

    Suppression uses the {!Srclint} pragma syntax:
    [(* lint: allow div-unguarded ... *)]. *)

val rules : (string * string) list
(** [(id, description)] for every analysis rule. *)

val analyze_string : file:string -> string -> Finding.t list
(** Analyzes source text; [file] is used for locations and for the
    [magic-unit] exemption of [units.ml]. *)

val analyze_file : string -> Finding.t list

val analyze_paths : string list -> Finding.t list
(** Analyzes every [.ml]/[.mli] under the given files/directories,
    with {!Srclint.source_files} traversal rules. *)
