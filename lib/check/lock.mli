(** Lock-discipline analysis over the {!Callgraph} token stream: the
    concurrency counterpart of {!Share}. Where Share proves {e who} may
    touch shared state, this pass checks {e how} the mutexes serialising
    it are used.

    {b Lock identity}: a mutex is born at a [NAME = Mutex.create]
    binding (toplevel [let], local [let], or record-field initialiser)
    and is named [Modkey.NAME] after its enclosing module — the same
    name the rest of the repo uses through [t.lock]-style field reads,
    which resolve back to it heuristically (dotted lowercase paths by
    enclosing module + field, [Mod.name] paths by their last two
    components).

    {b Held regions}: a linear walk per definition tracks the ordered
    held set through [Mutex.lock]/[unlock] pairs, [Mutex.protect]
    application spans, and [Fun.protect] — an unlock inside a
    [~finally:] argument is deferred to the end of the enclosing
    [protect] span, where the finaliser actually runs. A definition that
    applies a formal parameter while holding a lock (the
    [Memo.locked]-style wrapper idiom) exports that lock as a wrapper
    summary; call sites of such wrappers re-play the lock over the
    caller's argument span, so inline closures are scanned in context.
    Summaries compose interprocedurally to a Kleene fixpoint
    (may-acquire per definition), as {!Effect} does for effects.

    Rules (see DESIGN.md §15 for the model and known false negatives):
    - [lock-order-cycle] (error): two locks acquired in both orders
      anywhere (including through calls and the declared manifest
      order), with a two-chain witness; or a mutex re-acquired while
      already held (OCaml mutexes are not reentrant).
    - [blocking-under-lock] (warn): a blocking primitive ([Unix.read]/
      [write]/[select]/[sleep]/[fsync]/..., [Domain.join], an Effect-IO
      call, [Condition.wait] on a {e different} mutex) executed or
      reachable through calls while a lock is held — except locks the
      manifest declares [io_locks], whose critical sections are allowed
      to perform IO by design.
    - [lock-held-io] (error): the same evidence inside a definition
      reachable from a manifest-declared hot entrypoint.
    - [atomic-rmw] (error): a naked [Atomic.set x (... Atomic.get x ...)]
      read-modify-write (inline or through a [let]-binder) with no lock
      held and outside any finaliser; under a lock the sequence is
      serialised, and the [Fun.protect] save/restore idiom is
      sequential by design.
    - [useless-lock] (warn): a mutex never acquired, or whose critical
      sections contain no field access, mutation operator, or resolved
      call — locking nothing guards nothing.
    - [lock-manifest] (error): a [check/locks.json] entry that does not
      resolve, an unknown key, or a certified-surface lock missing from
      the declared order. *)

val rules : (string * string) list
(** [(id, description)] pairs for [respctl analyze --list-rules]. *)

val locks : Callgraph.t -> (string * string * int) list
(** Harvested lock identities as [(name, file, line)], for tests. *)

val analyze : ?manifest:(string * string list) list -> Callgraph.t -> Finding.t list
(** Runs the pass. [manifest] is the parsed [check/locks.json]
    ({!Share.parse_manifest} format) with four recognised keys:
    ["order"] (the canonical lock acquisition order, outermost first),
    ["io_locks"] (locks whose critical sections may block by design),
    ["hot"] (serve hot-path entrypoints escalating blocking findings to
    [lock-held-io]), and ["surface"] (certified modules/libraries whose
    locks must all appear in ["order"]). *)
