(** A single diagnostic produced by the static-analysis layers: {!Srclint}
    (source-level) and {!Invariant} (domain-level). Findings are plain data
    so that callers can filter, render, or serialise them uniformly. *)

type severity = Error | Warn

type t = {
  rule : string;  (** stable rule identifier, e.g. ["poly-compare"] *)
  severity : severity;
  where : string;  (** location: ["file:line:col"] or a domain entity *)
  message : string;
}

val v : ?severity:severity -> rule:string -> where:string -> string -> t
(** Builds a finding; [severity] defaults to [Error]. *)

val errors : t list -> t list
(** Only the findings with severity [Error]. *)

val has_rule : string -> t list -> bool
(** True iff some finding carries the given rule identifier. *)

val pp : Format.formatter -> t -> unit
(** Renders as [where: severity rule: message]. *)

val render : t list -> string
(** All findings, one per line, in the {!pp} format. *)

val to_json : t list -> string
(** Machine-readable report: a JSON array of objects with fields
    [rule], [severity], [where], and [message]. *)

val to_json_document : (string * t list) list -> string
(** One combined report for a multi-pass run: a JSON object with a
    [passes] array (each element carrying the pass name and its
    {!to_json} findings array) and top-level [errors]/[warnings]
    counts, so [respctl analyze --json] emits a single document rather
    than concatenated per-pass blobs. *)

val to_sarif : rules:(string * string) list -> t list -> string
(** SARIF 2.1.0 document for editor/CI ingestion: one run whose driver
    carries the [(id, description)] rule table (the same ids
    [--list-rules] prints) and one result per finding, with [Warn]
    mapped to level ["warning"] and [Error] to ["error"]. The [where]
    field's trailing [:line] becomes the region start line; a bare path
    anchors at line 1. *)
