(** Project-wide call graph over toplevel definitions, extracted from the
    {!Srclint} token streams. No ppx, no compiler front end: like the rest
    of the [check] layer this is a deliberately heuristic, zero-dependency
    analysis tuned to this repository's ocamlformat style (toplevel
    definitions at column 1; definitions inside a column-1
    [module X = struct] block at column 3).

    The graph is the substrate for {!Effect}: each node is one toplevel
    [let]/[and] definition carrying its body tokens; edges link a
    definition to every definition it may call, resolved from dotted
    [Module.ident] references (with per-file [module A = B] aliases
    expanded and a library hint taken from the path's leading components)
    and from undotted identifiers matched against same-file definitions.

    Known false negatives, by design: calls through functors, first-class
    modules, higher-order escapes ([List.map f] records an edge to [f]'s
    definition only when [f] resolves syntactically), method calls, and
    [include]-re-exported definitions. See DESIGN.md §10. *)

type source = {
  sc_file : string;  (** path used in findings *)
  sc_library : string;  (** dune library (or executable) name *)
  sc_entry : bool;  (** under an [executable]/[tests] dune stanza *)
  sc_text : string;  (** raw file contents *)
}
(** One source file plus its dune context; {!build_sources} lets tests
    construct graphs from in-memory fixtures. *)

type def = {
  d_id : int;  (** index into {!t.defs} *)
  d_library : string;
  d_module : string;
      (** dotted module path within the library, e.g. ["Graph"] or
          ["Graph.Builder"] for a definition inside a submodule *)
  d_name : string;  (** ["()"] for [let () = ...] initializer blocks *)
  d_file : string;
  d_line : int;
  d_entry : bool;  (** defined in an executable/test/bench/example *)
  d_public : bool;
      (** part of the library's surface: the module either has no [.mli]
          or the [.mli] declares a [val] with this name (submodule
          definitions under an [.mli] are never public) *)
  d_body : Srclint.tok array;  (** body tokens, for effect inference *)
}

type vdecl = {
  v_file : string;
  v_library : string;
  v_module : string;
  v_name : string;
  v_line : int;
  v_raise_doc : bool;
      (** the val's doc comment (after-style, between this [val] and the
          next) mentions [@raise] *)
}
(** One [val] declaration from an [.mli]. *)

type file = {
  f_path : string;
  f_library : string;
  f_entry : bool;
  f_toks : Srclint.tok array;  (** full cleaned token stream of the [.ml] *)
}
(** One analysed [.ml] file's whole token stream, kept alongside the defs
    so passes that need file-scope context (e.g. {!Share} scanning for
    [mutable] field declarations or Mutex/Atomic discipline) do not
    re-tokenize. *)

type t = {
  defs : def array;
  callees : int list array;  (** [callees.(i)] = defs that [defs.(i)] may call *)
  sites : (int * int) list array;
      (** [sites.(i)] = every resolved call site in [defs.(i).d_body] as
          [(token index, callee id)] pairs in body order; the same callee
          appears once per site. {!Cost} pairs the token index with its
          lexical loop depth to weight the call. *)
  vals : vdecl list;
  files : file list;  (** token streams of the [.ml] inputs, in source order *)
}

val build_sources : source list -> t
(** Builds the graph from in-memory sources (fixture-friendly). *)

val build : ?entries:string list -> string list -> t
(** [build ~entries dirs] scans every [.ml]/[.mli] under [dirs] (library
    code) and [entries] (executables/tests: their definitions become
    reachability roots), reading each directory's [dune] file for the
    library name ([(name ...)], defaulting to the directory basename) and
    the entry flag ([(executable], [(executables], [(test] or [(tests]
    stanzas). Files skipped by {!Srclint.source_files} (leading ['.'] or
    ['_']) are skipped here too. *)

val find_def : t -> module_:string -> name:string -> def option
(** Lookup by module path and definition name, for tests. *)

val reachable : t -> roots:int list -> bool array
(** Forward BFS over [callees]. *)

val witness : t -> from:int -> target:(int -> bool) -> int list option
(** Shortest call chain (as def ids, [from] first) from [from] to any
    definition satisfying [target]; [None] if unreachable. *)

val arg_span : Srclint.tok array -> int -> int
(** [arg_span body i] is the exclusive end of the application span that
    starts after token [i]: the first index at or past [i+1] holding a
    closing bracket or statement separator at bracket level 0 (relative
    to [i]), or the array length. The span bounds the arguments of a call
    whose head is token [i]; {!Lock} uses it for [Mutex.protect] bodies
    and atomic-discipline checks. *)

val def_params : def -> string list
(** Formal parameter names of a definition: the lowercase undotted tokens
    between the bound name and the first [=] at bracket level 0 of the
    header, in order. Empty when no toplevel [=] is found (e.g. a
    truncated body). Type names inside annotations may be over-collected;
    callers only test membership. *)

val applied_at : def -> int -> bool
(** Whether the identifier token at the given body index is
    syntactically applied: it heads an application (preceded by a token
    an expression can start after, followed by an argument-start that is
    not a keyword), or is passed bare to a [*.protect]-style combinator
    as the final thunk. *)

val applies_params : def -> bool
(** Whether the definition syntactically applies one of its formal
    parameters ({!applied_at} some occurrence) — i.e. it is a wrapper
    whose closure arguments the graph resolves one step through. *)
