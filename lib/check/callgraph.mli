(** Project-wide call graph over toplevel definitions, extracted from the
    {!Srclint} token streams. No ppx, no compiler front end: like the rest
    of the [check] layer this is a deliberately heuristic, zero-dependency
    analysis tuned to this repository's ocamlformat style (toplevel
    definitions at column 1; definitions inside a column-1
    [module X = struct] block at column 3).

    The graph is the substrate for {!Effect}: each node is one toplevel
    [let]/[and] definition carrying its body tokens; edges link a
    definition to every definition it may call, resolved from dotted
    [Module.ident] references (with per-file [module A = B] aliases
    expanded and a library hint taken from the path's leading components)
    and from undotted identifiers matched against same-file definitions.

    Known false negatives, by design: calls through functors, first-class
    modules, higher-order escapes ([List.map f] records an edge to [f]'s
    definition only when [f] resolves syntactically), method calls, and
    [include]-re-exported definitions. See DESIGN.md §10. *)

type source = {
  sc_file : string;  (** path used in findings *)
  sc_library : string;  (** dune library (or executable) name *)
  sc_entry : bool;  (** under an [executable]/[tests] dune stanza *)
  sc_text : string;  (** raw file contents *)
}
(** One source file plus its dune context; {!build_sources} lets tests
    construct graphs from in-memory fixtures. *)

type def = {
  d_id : int;  (** index into {!t.defs} *)
  d_library : string;
  d_module : string;
      (** dotted module path within the library, e.g. ["Graph"] or
          ["Graph.Builder"] for a definition inside a submodule *)
  d_name : string;  (** ["()"] for [let () = ...] initializer blocks *)
  d_file : string;
  d_line : int;
  d_entry : bool;  (** defined in an executable/test/bench/example *)
  d_public : bool;
      (** part of the library's surface: the module either has no [.mli]
          or the [.mli] declares a [val] with this name (submodule
          definitions under an [.mli] are never public) *)
  d_body : Srclint.tok array;  (** body tokens, for effect inference *)
}

type vdecl = {
  v_file : string;
  v_library : string;
  v_module : string;
  v_name : string;
  v_line : int;
  v_raise_doc : bool;
      (** the val's doc comment (after-style, between this [val] and the
          next) mentions [@raise] *)
}
(** One [val] declaration from an [.mli]. *)

type file = {
  f_path : string;
  f_library : string;
  f_entry : bool;
  f_toks : Srclint.tok array;  (** full cleaned token stream of the [.ml] *)
}
(** One analysed [.ml] file's whole token stream, kept alongside the defs
    so passes that need file-scope context (e.g. {!Share} scanning for
    [mutable] field declarations or Mutex/Atomic discipline) do not
    re-tokenize. *)

type t = {
  defs : def array;
  callees : int list array;  (** [callees.(i)] = defs that [defs.(i)] may call *)
  sites : (int * int) list array;
      (** [sites.(i)] = every resolved call site in [defs.(i).d_body] as
          [(token index, callee id)] pairs in body order; the same callee
          appears once per site. {!Cost} pairs the token index with its
          lexical loop depth to weight the call. *)
  vals : vdecl list;
  files : file list;  (** token streams of the [.ml] inputs, in source order *)
}

val build_sources : source list -> t
(** Builds the graph from in-memory sources (fixture-friendly). *)

val build : ?entries:string list -> string list -> t
(** [build ~entries dirs] scans every [.ml]/[.mli] under [dirs] (library
    code) and [entries] (executables/tests: their definitions become
    reachability roots), reading each directory's [dune] file for the
    library name ([(name ...)], defaulting to the directory basename) and
    the entry flag ([(executable], [(executables], [(test] or [(tests]
    stanzas). Files skipped by {!Srclint.source_files} (leading ['.'] or
    ['_']) are skipped here too. *)

val find_def : t -> module_:string -> name:string -> def option
(** Lookup by module path and definition name, for tests. *)

val reachable : t -> roots:int list -> bool array
(** Forward BFS over [callees]. *)

val witness : t -> from:int -> target:(int -> bool) -> int list option
(** Shortest call chain (as def ids, [from] first) from [from] to any
    definition satisfying [target]; [None] if unreachable. *)
