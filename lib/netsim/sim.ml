type config = {
  te : Response.Te.config;
  wake_time : float;
  failure_detection : float;
  idle_timeout : float;
  sample_interval : float;
  te_start : float;
  transition_energy : float;
}

let default_config =
  {
    te = Response.Te.default_config;
    wake_time = 0.01;
    failure_detection = 0.1;
    idle_timeout = 0.5;
    sample_interval = 0.1;
    te_start = 0.0;
    transition_energy = 0.0;
  }

type event =
  | Set_demand of float * Traffic.Matrix.t
  | Fail_link of float * int
  | Repair_link of float * int

type sample = {
  time : float;
  power_watts : float;
  power_percent : float;
  demand_total : float;
  rate_total : float;
  pair_rates : ((int * int) * float) list;
  link_rates : float array;
  links_active : int;
}

type result = {
  samples : sample array;
  mean_power_percent : float;
  delivered_fraction : float;
  wake_count : int;
  sleep_count : int;
  energy_joules : float;
  rejected_wake_count : int;
  fallback_count : int;
  offered_bits : float;
  delivered_bits : float;
  lost_bits : float;
}

type link_status = Active | Sleeping | Waking of float

type ev =
  | Probe of int * int
  | Demand_change of Traffic.Matrix.t
  | Fail of int
  | Detect of int
  | Repair of int
  | Wake_done of int
  | Take_sample

(* Event-loop children are resolved once at module init so the hot loop pays
   one gated counter add per event, not a label lookup. *)
let m_events =
  Obs.Metric.Family.counter ~help:"Simulator events processed by type"
    ~label_names:[ "type" ] "netsim_events_total"

let ev_probe = Obs.Metric.Family.labels m_events [ "probe" ]
let ev_demand = Obs.Metric.Family.labels m_events [ "demand_change" ]
let ev_fail = Obs.Metric.Family.labels m_events [ "fail" ]
let ev_detect = Obs.Metric.Family.labels m_events [ "detect" ]
let ev_repair = Obs.Metric.Family.labels m_events [ "repair" ]
let ev_wake_done = Obs.Metric.Family.labels m_events [ "wake_done" ]
let ev_sample = Obs.Metric.Family.labels m_events [ "sample" ]

let m_sleep_transitions =
  Obs.Metric.Counter.create ~help:"Link transitions into the sleeping state"
    "netsim_sleep_transitions_total"

let m_wake_transitions =
  Obs.Metric.Counter.create ~help:"Link transitions out of the sleeping state"
    "netsim_wake_transitions_total"

let m_power_watts =
  Obs.Metric.Gauge.create ~help:"Network power at the last sample" "netsim_power_watts"

let m_links_active =
  Obs.Metric.Gauge.create ~help:"Active links at the last sample" "netsim_links_active"

let m_stale_detects =
  Obs.Metric.Counter.create
    ~help:"Detect events that fired after the link had already been repaired"
    "netsim_stale_detects_total"

let m_rejected_wakes =
  Obs.Metric.Counter.create ~help:"Wake requests refused because the link is failed"
    "netsim_rejected_wakes_total"

let m_fallback_routes =
  Obs.Metric.Counter.create
    ~help:"Dynamic shortest-usable-path fallback routes computed for degraded pairs"
    "netsim_fallback_routes_total"

type sim = {
  g : Topo.Graph.t;
  tables : Response.Tables.t;
  te : Response.Te.t;
  cfg : config;
  status : link_status array;
  failed : bool array;
  known_failed : bool array;
  last_loaded : float array;  (* per link: last time it carried traffic *)
  mutable demand : Traffic.Matrix.t;
  mutable now : float;
  queue : ev Eutil.Heap.t;
  (* Rate cache, invalidated on any state change. *)
  mutable cache_valid : bool;
  mutable arc_offered : float array;
  mutable pair_rates : ((int * int) * float) list;
  mutable link_achieved : float array;
  mutable wakes_wanted : int list;  (* links data-plane traffic needs woken *)
  mutable wake_count : int;
  mutable sleep_count : int;
  mutable rejected_wakes : int;
  mutable fallback_count : int;
  (* Pairs granted Use_fallback by TE; the path is (re)computed lazily in
     [compute_rates] and None while the pair is partitioned. *)
  fallbacks : (int * int, Topo.Path.t option) Hashtbl.t;
  invcap : Topo.Graph.arc -> float;  (* OSPF weight, hoisted once per run *)
}

let link_fully_active s p =
  Array.for_all
    (fun l -> (not s.failed.(l)) && s.status.(l) = Active)
    (Topo.Path.links s.g p)

(* Shortest path avoiding every link the control plane knows is failed —
   the last rung of the degradation ladder (sleeping links are fine: they
   wake on demand). *)
let ospf_usable_path s o d =
  Routing.Dijkstra.shortest_path s.g ~weight:s.invcap
    ~active:(fun arc -> not s.known_failed.(arc.Topo.Graph.link))
    ~src:o ~dst:d ()

(* Offered loads, achieved rates and data-plane wake requests for the current
   demand, splits and link states. A share whose path is not fully active
   falls back to the pair's lowest fully-active path; with no active path at
   all it is unserved and asks for its own path to wake. *)
let compute_rates s =
  if not s.cache_valid then begin
    let n_arcs = Topo.Graph.arc_count s.g in
    let offered = Array.make n_arcs 0.0 in
    let placements = ref [] in
    let wakes = ref [] in
    Traffic.Matrix.iter_flows s.demand ~f:(fun o d dem ->
        match Response.Tables.find s.tables o d with
        | None -> ()
        | Some e ->
            let paths = Response.Tables.paths e in
            let split = Response.Te.split s.te o d in
            let fallback = ref None in
            Array.iteri
              (fun i p -> if !fallback = None && link_fully_active s p then fallback := Some i)
              paths;
            Array.iteri
              (fun i share ->
                if share > 0.0 then begin
                  let volume = dem *. share in
                  let target =
                    if link_fully_active s paths.(i) then Some paths.(i)
                    else begin
                      (* Ask the network to wake this path's sleeping links. *)
                      Array.iter
                        (fun l ->
                          if (not s.failed.(l)) && s.status.(l) = Sleeping then
                            wakes := l :: !wakes)
                        (Topo.Path.links s.g paths.(i));
                      Option.map (fun j -> paths.(j)) !fallback
                    end
                  in
                  match target with
                  | Some p ->
                      Array.iter (fun a -> offered.(a) <- offered.(a) +. volume) p.Topo.Path.arcs;
                      placements := ((o, d), volume, Some p) :: !placements
                  | None -> placements := ((o, d), volume, None) :: !placements
                end)
              split;
            (* A pair whose split is all-zero has lost every installed path
               (the TE panic ladder zeroed it). If TE escalated to
               Use_fallback, route over the dynamic shortest usable path;
               either way the demand is recorded so unserved volume shows up
               as measured loss, never silently vanishing. *)
            if Array.for_all (fun share -> share <= 0.0) split then begin
              let stale p =
                Array.exists (fun l -> s.known_failed.(l)) (Topo.Path.links s.g p)
              in
              let fb =
                match Hashtbl.find_opt s.fallbacks (o, d) with
                | None -> None (* not granted: panic retries still running *)
                | Some (Some p) when not (stale p) -> Some p
                | Some _ ->
                    let p = ospf_usable_path s o d in
                    if p <> None then begin
                      s.fallback_count <- s.fallback_count + 1;
                      Obs.Metric.Counter.incr m_fallback_routes
                    end;
                    Hashtbl.replace s.fallbacks (o, d) p;
                    p
              in
              match fb with
              | Some p when link_fully_active s p ->
                  Array.iter (fun a -> offered.(a) <- offered.(a) +. dem) p.Topo.Path.arcs;
                  placements := ((o, d), dem, Some p) :: !placements
              | Some p ->
                  Array.iter
                    (fun l ->
                      if (not s.failed.(l)) && s.status.(l) = Sleeping then wakes := l :: !wakes)
                    (Topo.Path.links s.g p);
                  placements := ((o, d), dem, None) :: !placements
              | None -> placements := ((o, d), dem, None) :: !placements
            end);
    (* Achieved rate: demand scaled by the worst oversubscription en route. *)
    let factor a = offered.(a) /. (Topo.Graph.arc s.g a).Topo.Graph.capacity in
    let achieved = Array.make n_arcs 0.0 in
    let by_pair = Hashtbl.create 64 in
    List.iter
      (fun (od, volume, target) ->
        let rate =
          match target with
          | None -> 0.0
          | Some p ->
              let worst =
                Array.fold_left (fun acc a -> max acc (factor a)) 1.0 p.Topo.Path.arcs
              in
              let r = volume /. worst in
              Array.iter (fun a -> achieved.(a) <- achieved.(a) +. r) p.Topo.Path.arcs;
              r
        in
        Hashtbl.replace by_pair od (rate +. Option.value (Hashtbl.find_opt by_pair od) ~default:0.0))
      !placements;
    let link_achieved =
      Array.init (Topo.Graph.link_count s.g) (fun l ->
          let a1, a2 = Topo.Graph.arcs_of_link s.g l in
          max achieved.(a1) achieved.(a2))
    in
    Array.iteri (fun l r -> if r > 0.0 then s.last_loaded.(l) <- s.now) link_achieved;
    s.arc_offered <- offered;
    s.pair_rates <-
      Hashtbl.fold (fun od r acc -> (od, r) :: acc) by_pair []
      |> List.sort (Eutil.Order.pair Eutil.Order.int_pair Float.compare);
    s.link_achieved <- link_achieved;
    s.wakes_wanted <- List.sort_uniq Int.compare !wakes;
    s.cache_valid <- true
  end

let invalidate s = s.cache_valid <- false

let wake_link s l =
  if (not s.failed.(l)) && s.status.(l) = Sleeping then begin
    s.status.(l) <- Waking (s.now +. s.cfg.wake_time);
    s.wake_count <- s.wake_count + 1;
    Obs.Metric.Counter.incr m_wake_transitions;
    Eutil.Heap.push s.queue (s.now +. s.cfg.wake_time) (Wake_done l);
    invalidate s
  end

(* Pairs whose current split crosses the link: the agents that must react
   promptly to news about it. *)
let pairs_using_link s l =
  List.filter
    (fun (o, d) ->
      match Response.Tables.find s.tables o d with
      | None -> false
      | Some e ->
          let paths = Response.Tables.paths e in
          let split = Response.Te.split s.te o d in
          Array.exists
            (fun i -> split.(i) > 0.0 && Topo.Path.uses_link s.g paths.(i) l)
            (Array.init (Array.length paths) (fun i -> i)))
    (Response.Tables.pairs s.tables)

(* A control-plane wake request. The network refuses to wake a failed link;
   the refusal is surfaced as a counter and doubles as an immediate failure
   signal — the affected agents re-evaluate now rather than waiting out the
   detection delay or a full probe period. *)
let request_wake s l =
  if s.failed.(l) then begin
    s.rejected_wakes <- s.rejected_wakes + 1;
    Obs.Metric.Counter.incr m_rejected_wakes;
    if not s.known_failed.(l) then begin
      s.known_failed.(l) <- true;
      List.iter
        (fun (o, d) -> Eutil.Heap.push s.queue s.now (Probe (o, d)))
        (pairs_using_link s l);
      invalidate s
    end
  end
  else wake_link s l

let power_state s =
  let st = Topo.State.all_off s.g in
  Array.iteri
    (fun l status ->
      let on = (not s.failed.(l)) && (match status with Active | Waking _ -> true | Sleeping -> false) in
      if on then Topo.State.set_link s.g st l true)
    s.status;
  st

(* Put long-idle active links to sleep. *)
let housekeeping s =
  compute_rates s;
  (* The rate cache may be old; a link loaded under the cached rates is
     loaded *now*, so refresh its timestamp before the idle check. *)
  Array.iteri (fun l r -> if r > 0.0 then s.last_loaded.(l) <- s.now) s.link_achieved;
  Array.iteri
    (fun l status ->
      if status = Active && (not s.failed.(l)) && s.now -. s.last_loaded.(l) > s.cfg.idle_timeout
      then begin
        s.status.(l) <- Sleeping;
        s.sleep_count <- s.sleep_count + 1;
        Obs.Metric.Counter.incr m_sleep_transitions;
        invalidate s
      end)
    s.status

let link_util s l =
  let a1, a2 = Topo.Graph.arcs_of_link s.g l in
  let cap a = (Topo.Graph.arc s.g a).Topo.Graph.capacity in
  max (s.arc_offered.(a1) /. cap a1) (s.arc_offered.(a2) /. cap a2)

let handle_probe s o d =
  if s.now >= s.cfg.te_start then begin
    compute_rates s;
    (* Data-plane wake requests piggyback on the probe round. *)
    List.iter (fun l -> wake_link s l) s.wakes_wanted;
    let actions =
      Response.Te.on_probe s.te ~origin:o ~dest:d ~now:s.now ~link_util:(link_util s)
        ~link_usable:(fun l -> not s.known_failed.(l))
    in
    List.iter
      (fun action ->
        match action with
        | Response.Te.Wake links -> List.iter (fun l -> request_wake s l) links
        | Response.Te.Set_split _ -> invalidate s
        | Response.Te.Use_fallback ->
            Hashtbl.replace s.fallbacks (o, d) None;
            invalidate s
        | Response.Te.Cancel_fallback ->
            Hashtbl.remove s.fallbacks (o, d);
            invalidate s)
      actions
  end

let take_sample s power =
  compute_rates s;
  housekeeping s;
  compute_rates s;
  let st = power_state s in
  let rate_total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 s.pair_rates in
  let watts = Eutil.Units.to_float (Power.Model.total power s.g st) in
  Obs.Metric.Gauge.set m_power_watts watts;
  Obs.Metric.Gauge.set_int m_links_active (Topo.State.active_links st);
  {
    time = s.now;
    power_watts = watts;
    power_percent = Power.Model.percent_of_full power s.g st;
    demand_total = Traffic.Matrix.total s.demand;
    rate_total;
    pair_rates = s.pair_rates;
    link_rates = Array.copy s.link_achieved;
    links_active = Topo.State.active_links st;
  }

let run ?(config = default_config) ?initial_splits ~tables ~power ~events ~duration () =
  let g = Response.Tables.graph tables in
  let te = Response.Te.create tables config.te in
  let s =
    {
      g;
      tables;
      te;
      cfg = config;
      status = Array.make (Topo.Graph.link_count g) Sleeping;
      failed = Array.make (Topo.Graph.link_count g) false;
      known_failed = Array.make (Topo.Graph.link_count g) false;
      last_loaded = Array.make (Topo.Graph.link_count g) 0.0;
      demand = Traffic.Matrix.create (Topo.Graph.node_count g);
      now = 0.0;
      queue = Eutil.Heap.create ();
      cache_valid = false;
      arc_offered = [||];
      pair_rates = [];
      link_achieved = [||];
      wakes_wanted = [];
      wake_count = 0;
      sleep_count = 0;
      rejected_wakes = 0;
      fallback_count = 0;
      fallbacks = Hashtbl.create 16;
      invcap = Routing.Spf.invcap g;
    }
  in
  (* Initially the links used by current splits are active. *)
  let pairs = Response.Tables.pairs tables in
  let seeded_splits = Hashtbl.create 16 in
  (match initial_splits with
  | None -> ()
  | Some l ->
      List.iter
        (fun (od, sp) -> if not (Hashtbl.mem seeded_splits od) then Hashtbl.add seeded_splits od sp)
        l);
  List.iter
    (fun (o, d) ->
      match Response.Tables.find tables o d with
      | None -> ()
      | Some e ->
          let paths = Response.Tables.paths e in
          let split =
            match Hashtbl.find_opt seeded_splits (o, d) with
            | Some sp -> sp
            | None -> Response.Te.split te o d
          in
          Array.iteri
            (fun i share ->
              if share > 0.0 && i < Array.length paths then
                Array.iter (fun l -> s.status.(l) <- Active) (Topo.Path.links g paths.(i)))
            split)
    pairs;
  (* Seed non-default splits (e.g. the pre-TE state of Figure 7). *)
  (match initial_splits with
  | None -> ()
  | Some l -> List.iter (fun ((o, d), split) -> Response.Te.force_split te o d split) l);
  (* Schedule scenario events. *)
  List.iter
    (fun ev ->
      match ev with
      | Set_demand (t, tm) -> Eutil.Heap.push s.queue t (Demand_change tm)
      | Fail_link (t, l) -> Eutil.Heap.push s.queue t (Fail l)
      | Repair_link (t, l) -> Eutil.Heap.push s.queue t (Repair l))
    events;
  (* Probes: per pair, staggered within the first period. *)
  let t_probe = Eutil.Units.to_float config.te.Response.Te.probe_period in
  List.iteri
    (fun i (o, d) ->
      let offset = t_probe *. float_of_int i /. float_of_int (max 1 (List.length pairs)) in
      Eutil.Heap.push s.queue (config.te_start +. offset) (Probe (o, d)))
    pairs;
  (* Samples. *)
  let n_samples = int_of_float (duration /. config.sample_interval) + 1 in
  for i = 0 to n_samples - 1 do
    Eutil.Heap.push s.queue (float_of_int i *. config.sample_interval) Take_sample
  done;
  let samples = ref [] in
  let rec loop () =
    match Eutil.Heap.pop s.queue with
    | None -> ()
    | Some (t, _) when t > duration +. 1e-9 -> ()
    | Some (t, ev) ->
        s.now <- max s.now t;
        (match ev with
        | Probe (o, d) ->
            Obs.Metric.Counter.incr ev_probe;
            handle_probe s o d;
            Eutil.Heap.push s.queue (s.now +. t_probe) (Probe (o, d))
        | Demand_change tm ->
            Obs.Metric.Counter.incr ev_demand;
            s.demand <- tm;
            invalidate s
        | Fail l ->
            Obs.Metric.Counter.incr ev_fail;
            s.failed.(l) <- true;
            Eutil.Heap.push s.queue (s.now +. config.failure_detection) (Detect l);
            invalidate s
        | Detect l ->
            Obs.Metric.Counter.incr ev_detect;
            (* Guard against the stale-detection race: a Detect scheduled by
               a failure that was repaired inside the detection window must
               not mark the healthy link failed. *)
            if not s.failed.(l) then Obs.Metric.Counter.incr m_stale_detects
            else begin
              s.known_failed.(l) <- true;
              (* Affected agents react promptly: immediate probe for pairs
                 whose current split crosses the failed link. *)
              List.iter
                (fun (o, d) -> Eutil.Heap.push s.queue s.now (Probe (o, d)))
                (pairs_using_link s l)
            end
        | Repair l ->
            Obs.Metric.Counter.incr ev_repair;
            s.failed.(l) <- false;
            s.known_failed.(l) <- false;
            if s.status.(l) <> Sleeping then begin
              s.sleep_count <- s.sleep_count + 1;
              Obs.Metric.Counter.incr m_sleep_transitions
            end;
            s.status.(l) <- Sleeping;
            invalidate s
        | Wake_done l ->
            Obs.Metric.Counter.incr ev_wake_done;
            (match s.status.(l) with
            | Waking ready when ready <= s.now +. 1e-9 ->
                s.status.(l) <- Active;
                invalidate s
            | _ -> ())
        | Take_sample ->
            Obs.Metric.Counter.incr ev_sample;
            samples := take_sample s power :: !samples);
        loop ()
  in
  loop ();
  let samples = Array.of_list (List.rev !samples) in
  let mean_power_percent =
    if Array.length samples = 0 then 0.0
    else
      Array.fold_left (fun acc sm -> acc +. sm.power_percent) 0.0 samples
      /. float_of_int (Array.length samples)
  in
  let demanded = Array.fold_left (fun acc sm -> acc +. sm.demand_total) 0.0 samples in
  let delivered = Array.fold_left (fun acc sm -> acc +. sm.rate_total) 0.0 samples in
  let delivered_fraction = if demanded > 0.0 then delivered /. demanded else 1.0 in
  let energy_joules =
    Array.fold_left
      (fun acc sm -> acc +. (sm.power_watts *. config.sample_interval))
      (float_of_int s.wake_count *. config.transition_energy)
      samples
  in
  (* Explicit traffic-conservation accounting: the achieved rate never
     exceeds demand (worst oversubscription factor >= 1), so lost is
     non-negative and delivered + lost = offered holds exactly. *)
  let offered_bits = demanded *. config.sample_interval in
  let delivered_bits = delivered *. config.sample_interval in
  let lost_bits = offered_bits -. delivered_bits in
  {
    samples;
    mean_power_percent;
    delivered_fraction;
    wake_count = s.wake_count;
    sleep_count = s.sleep_count;
    energy_joules;
    rejected_wake_count = s.rejected_wakes;
    fallback_count = s.fallback_count;
    offered_bits;
    delivered_bits;
    lost_bits;
  }
