(** Flow-level discrete-event network simulator — the stand-in for the
    paper's ns-2 simulations, Click testbed and ModelNet emulations
    (Section 5.3). It models:

    - REsPoNse routing tables with a REsPoNseTE agent per origin
      ({!Response.Te}), probing its own paths every T seconds;
    - link sleep states with configurable wake-up latency (10 ms for the
      Click experiments, 5 s for the ns-2 ones);
    - idle links falling asleep after carrying no traffic for a while;
    - link failures with a detection delay before agents react;
    - graceful degradation: a pair with no usable installed path escalates
      through bounded panic wake retries to a dynamic shortest-usable-path
      fallback ({!Response.Te.Use_fallback}); wake requests on failed links
      are rejected and counted, and unserved demand is accounted as loss;
    - fluid rate allocation: a flow's achieved rate is its demand scaled
      down by the worst oversubscription along its path, and traffic whose
      path is waking up falls back temporarily to the lowest active path
      (the "reserve capacity from always-on paths" behaviour of
      Section 4.5);
    - power integration from the element activity states.

    Packet-level artefacts (queueing jitter, loss bursts) are out of scope;
    the quantities the paper reports — rates over time, activation delays,
    power — are flow-level. *)

type config = {
  te : Response.Te.config;
  wake_time : float;  (** seconds for a sleeping link to become active *)
  failure_detection : float;  (** failure-to-agent-reaction delay, seconds *)
  idle_timeout : float;  (** an active link with no traffic sleeps after this *)
  sample_interval : float;  (** statistics sampling period *)
  te_start : float;  (** probes are inert before this time (Figure 7) *)
  transition_energy : float;
      (** joules consumed per link sleep/wake cycle — "frequent state
          switching consumes a significant amount of energy as well"
          (Section 2.1.1). Default 0. *)
}

val default_config : config

type event =
  | Set_demand of float * Traffic.Matrix.t  (** demand becomes the matrix at the time *)
  | Fail_link of float * int
  | Repair_link of float * int

type sample = {
  time : float;
  power_watts : float;
  power_percent : float;
  demand_total : float;
  rate_total : float;  (** achieved aggregate sending rate *)
  pair_rates : ((int * int) * float) list;
  link_rates : float array;  (** achieved load per undirected link (max direction) *)
  links_active : int;
}

type result = {
  samples : sample array;
  mean_power_percent : float;  (** time-averaged over the run *)
  delivered_fraction : float;  (** total delivered bits / total demanded bits *)
  wake_count : int;  (** link wake transitions over the run *)
  sleep_count : int;  (** link transitions into the sleeping state *)
  energy_joules : float;
      (** integrated element power plus transition energy — the quantity an
          aggressive idle timeout trades against (many transitions) *)
  rejected_wake_count : int;
      (** wake requests the network refused because the link was failed;
          each refusal immediately re-probes the affected agents *)
  fallback_count : int;
      (** dynamic shortest-usable-path fallback routes computed for pairs
          whose installed paths were all unusable *)
  offered_bits : float;  (** integrated demand over the run *)
  delivered_bits : float;  (** integrated achieved rate *)
  lost_bits : float;
      (** [offered_bits - delivered_bits], exactly — disconnection and
          congestion show up here as measured loss, never silently *)
}

val run :
  ?config:config ->
  ?initial_splits:((int * int) * float array) list ->
  tables:Response.Tables.t ->
  power:Power.Model.t ->
  events:event list ->
  duration:float ->
  unit ->
  result
(** Runs the scenario. Links start active if any pair's initial split uses
    them (default: the always-on footprint) and asleep otherwise; demand is
    zero until the first [Set_demand]. *)
