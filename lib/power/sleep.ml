module U = Eutil.Units

type state = {
  name : string;
  power_fraction : U.ratio U.q;
  wake_time : U.seconds U.q;
  transition_energy : U.seconds U.q;
}

let lpi =
  {
    name = "LPI";
    power_fraction = U.ratio 0.1;
    wake_time = U.seconds 16e-6;
    transition_energy = U.seconds 1e-5;
  }

let nap =
  {
    name = "nap";
    power_fraction = U.ratio 0.05;
    wake_time = U.seconds 10e-3;
    transition_energy = U.seconds 5e-3;
  }

let deep =
  {
    name = "deep";
    power_fraction = U.ratio 0.02;
    wake_time = U.seconds 2.0;
    transition_energy = U.seconds 1.0;
  }

(* For a gap of length T (at active power 1 W): staying awake costs T.
   Sleeping costs (T - wake) * fraction + wake * 1 + transition_energy.
   Break-even where they are equal. *)
let breakeven_gap s =
  let saved_rate = 1.0 -. U.to_float s.power_fraction in
  if saved_rate <= 0.0 then U.unsafe infinity
  else begin
    let wake = U.to_float s.wake_time in
    let overhead = U.to_float s.transition_energy in
    U.seconds (((wake *. saved_rate) +. overhead) /. saved_rate)
  end

let gaps_of_busy ~busy ~horizon =
  let rec build cursor = function
    | [] -> if cursor < horizon then [ (cursor, horizon) ] else []
    | (b0, b1) :: rest ->
        if b0 < cursor -. 1e-12 then invalid_arg "Sleep.gaps_of_busy: unsorted busy periods";
        let tail = build (max cursor b1) rest in
        if b0 > cursor then (cursor, b0) :: tail else tail
  in
  build 0.0 busy

let gap_energy ~active_power ~states gap_len =
  (* Best achievable energy for one idle gap. *)
  let awake = U.( *@ ) active_power (U.seconds gap_len) in
  List.fold_left
    (fun best s ->
      let wake = U.to_float s.wake_time in
      if gap_len <= wake then best
      else begin
        let asleep_seconds =
          ((gap_len -. wake) *. U.to_float s.power_fraction)
          +. wake
          +. U.to_float s.transition_energy
        in
        U.min_q best (U.( *@ ) active_power (U.seconds asleep_seconds))
      end)
    awake states

let energy ~active_power ~states ~busy ~horizon =
  let busy_time = List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 busy in
  let gaps = gaps_of_busy ~busy ~horizon in
  let idle_energy =
    List.fold_left
      (fun acc (a, b) -> U.( +: ) acc (gap_energy ~active_power ~states (b -. a)))
      U.zero gaps
  in
  U.( +: ) (U.( *@ ) active_power (U.seconds busy_time)) idle_energy

let savings_percent ~active_power ~states ~busy ~horizon =
  let on = U.( *@ ) active_power (U.seconds horizon) in
  if U.to_float on <= 0.0 then 0.0
  else begin
    let used = energy ~active_power ~states ~busy ~horizon in
    100.0 *. (1.0 -. U.to_float (U.( /: ) used on))
  end

let periodic_busy ~utilisation ~period ~horizon =
  let utilisation = U.to_float utilisation in
  if utilisation < 0.0 || utilisation > 1.0 then invalid_arg "Sleep.periodic_busy: utilisation";
  if period <= 0.0 then invalid_arg "Sleep.periodic_busy: period";
  let n = int_of_float (ceil (horizon /. period)) in
  List.init n (fun i ->
      let start = float_of_int i *. period in
      (start, min horizon (start +. (utilisation *. period))))
  |> List.filter (fun (a, b) -> b > a)
