(** Power models for network elements, after Section 2.2.1 and the
    "Power consumption model" paragraph of Section 5.1.

    The network power under an activity state is
    [sum_i X_i (Pc(i) + sum_{i->j} Y_{i->j} (Pl(i->j) + Pa(i->j)))]:
    a powered router pays its chassis cost, and every active link pays the
    port cost at both ends plus the optical amplifier cost. An element whose
    traffic has been removed enters a low-power state of negligible
    consumption [29].

    Every power value is a typed {!Eutil.Units.watts} quantity; capacities
    entering {!linecard_watts} are typed bit/s. Unit confusion is a compile
    error, not a corrupted figure. *)

type t = {
  description : string;
  chassis : int -> Eutil.Units.watts Eutil.Units.q;
      (** Pc(i) for node [i] when powered *)
  port : Topo.Graph.arc -> Eutil.Units.watts Eutil.Units.q;
      (** Pl(i->j) for the port at [arc.src] *)
  amplifier : int -> Eutil.Units.watts Eutil.Units.q;
      (** Pa for the undirected link *)
}

val linecard_presets : (string * Eutil.Units.bps Eutil.Units.q * Eutil.Units.watts Eutil.Units.q) array
(** The shared line-card preset table [(name, min capacity, power)], ordered
    by descending rate: OC192 (>= 9 Gbit/s, 174 W), OC48 (>= 2 Gbit/s,
    140 W), OC12 (>= 500 Mbit/s, 80 W). Below the table, {!oc3_watts}. *)

val oc3_watts : Eutil.Units.watts Eutil.Units.q
(** The OC3 floor of the preset table, 60 W. *)

val linecard_watts : Eutil.Units.bps Eutil.Units.q -> Eutil.Units.watts Eutil.Units.q
(** Line-card power for an interface of the given rate, from
    {!linecard_presets}. *)

val cisco12000 : Topo.Graph.t -> t
(** Representative current hardware: Cisco 12000-series configuration with a
    600 W chassis (~60 % of the router budget) and the line-card preset
    table (OC3..OC192); 1.2 W optical repeaters every 80 km, derived from
    the link's propagation latency. *)

val alternative_hw : Topo.Graph.t -> t
(** The paper's forward-looking model: the always-on (chassis) power budget
    reduced by a factor of 10. *)

val commodity_dc : ?peak:Eutil.Units.watts Eutil.Units.q -> Topo.Graph.t -> t
(** Commodity datacenter switches (fat-tree experiments): fixed overheads of
    fans, switch chips and transceivers amount to ~90 % of the peak budget
    ([peak], default 150 W) even with no traffic; the remainder is spread over
    the ports. Hosts consume no network power. *)

val link_power : t -> Topo.Graph.t -> int -> Eutil.Units.watts Eutil.Units.q
(** Power of one active undirected link: both ports plus amplifiers. *)

val node_power : t -> Topo.Graph.t -> int -> Eutil.Units.watts Eutil.Units.q
(** Chassis power of a node when powered (0 for hosts). *)

val total : t -> Topo.Graph.t -> Topo.State.t -> Eutil.Units.watts Eutil.Units.q
(** Network power under the given activity state. *)

val full : t -> Topo.Graph.t -> Eutil.Units.watts Eutil.Units.q
(** Power with every element active — the "original power" baseline of the
    paper's figures. *)

val percent_of_full : t -> Topo.Graph.t -> Topo.State.t -> float
(** [100 * total / full], the y-axis of Figures 4, 5, 6 and 8a. Plain float:
    a display quantity. *)

val state_of_loads : Topo.Graph.t -> (int -> float) -> Topo.State.t
(** Activity state induced by per-link carried load (bit/s): a link is active
    iff it carries strictly positive traffic (sleeping otherwise), and
    routers follow constraint (3). *)
