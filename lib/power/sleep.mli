(** Element-level sleep states (Section 2.1.1): like CPU C-states, network
    elements can enter progressively deeper sleep states that consume less
    power but take longer to wake [22, 23, 29]. REsPoNse is complementary to
    these mechanisms — consolidating traffic lengthens the idle gaps, letting
    elements use deeper states for longer.

    This module quantifies that interaction: given an element's busy/idle
    pattern, it selects the best state per gap (a state only pays off beyond
    its break-even gap length) and integrates energy, including the cost of
    the state transitions themselves ("frequent state switching consumes a
    significant amount of energy as well"). *)

type state = {
  name : string;
  power_fraction : Eutil.Units.ratio Eutil.Units.q;
      (** fraction of active power drawn while asleep *)
  wake_time : Eutil.Units.seconds Eutil.Units.q;
      (** time to return to the active state *)
  transition_energy : Eutil.Units.seconds Eutil.Units.q;
      (** joules per enter+exit cycle at 1 W active power — dimensionally
          J/W = seconds *)
}

val lpi : state
(** Low-Power Idle (IEEE 802.3az style [23]): ~10 % power, microsecond wake. *)

val nap : state
(** Intermediate sleep: ~5 % power, ~10 ms wake [29]. *)

val deep : state
(** Deep sleep: ~2 % power, ~2 s wake — only long gaps qualify. *)

val breakeven_gap : state -> Eutil.Units.seconds Eutil.Units.q
(** Minimum idle-gap length for which entering the state saves energy versus
    staying active, accounting for wake time (spent at full power) and
    transition energy. Normalised to 1 W active power; [infinity] for a
    state that never pays off. *)

val gaps_of_busy : busy:(float * float) list -> horizon:float -> (float * float) list
(** Complement of a sorted disjoint list of busy periods within
    [0, horizon].
    @raise Invalid_argument if the busy periods are unsorted or overlap. *)

val energy :
  active_power:Eutil.Units.watts Eutil.Units.q ->
  states:state list ->
  busy:(float * float) list ->
  horizon:float ->
  Eutil.Units.joules Eutil.Units.q
(** Energy over the horizon when every idle gap uses the best available
    state (or none, for gaps below all break-evens). No states = always on.
    Busy periods and the horizon are plain seconds on the simulation
    clock. *)

val savings_percent :
  active_power:Eutil.Units.watts Eutil.Units.q ->
  states:state list ->
  busy:(float * float) list ->
  horizon:float ->
  float
(** 100 * (1 - energy with sleep / energy always-on). *)

val periodic_busy :
  utilisation:Eutil.Units.ratio Eutil.Units.q ->
  period:float ->
  horizon:float ->
  (float * float) list
(** Busy pattern of a link at the given utilisation whose traffic is shaped
    into bursts of the given period — the buffer-and-burst idea of
    [Nedevschi et al., NSDI 2008]: upstream queueing coalesces packets so
    downstream gaps are [(1 - u) * period] long instead of inter-packet.
    @raise Invalid_argument if [utilisation] is outside [0, 1] or [period]
    is not positive. *)
