module U = Eutil.Units

type t = {
  description : string;
  chassis : int -> U.watts U.q;
  port : Topo.Graph.arc -> U.watts U.q;
  amplifier : int -> U.watts U.q;
}

(* One preset table of line-card power by interface rate (Cisco 12000:
   OC192 / OC48 / OC12, with OC3 as the floor), shared by every hardware
   profile that bills per port. Thresholds are typed capacities, so a
   watts/bps mix-up in the table is a compile error. *)
let linecard_presets =
  [|
    ("OC192", U.gbps 9.0, U.watts 174.0);
    ("OC48", U.gbps 2.0, U.watts 140.0);
    ("OC12", U.mbps 500.0, U.watts 80.0);
  |]

let oc3_watts = U.watts 60.0

let linecard_watts capacity =
  let n = Array.length linecard_presets in
  let rec pick i =
    if i >= n then oc3_watts
    else begin
      let _, threshold, w = linecard_presets.(i) in
      if U.compare_q capacity threshold >= 0 then w else pick (i + 1)
    end
  in
  pick 0

(* 1.2 W optical repeater every 80 km; distance from propagation latency at
   ~200 km/ms in fibre. *)
let amplifier_watts g l =
  let km = Topo.Graph.link_latency g l *. 200_000.0 in
  U.watts (1.2 *. floor (km /. 80.0))

let cisco_chassis = U.watts 600.0

let cisco12000 g =
  {
    description = "Cisco 12000-series (chassis 600 W, linecards 60-174 W)";
    chassis =
      (fun i -> if Topo.Graph.role g i = Topo.Graph.Host then U.zero else cisco_chassis);
    port =
      (fun arc ->
        if Topo.Graph.role g arc.Topo.Graph.src = Topo.Graph.Host then U.zero
        else linecard_watts (U.bps arc.Topo.Graph.capacity));
    amplifier = (fun l -> amplifier_watts g l);
  }

let alternative_hw g =
  let base = cisco12000 g in
  {
    base with
    description = "alternative hardware (always-on chassis budget / 10)";
    chassis = (fun i -> U.scale 0.1 (base.chassis i));
  }

let commodity_dc ?peak g =
  let peak = match peak with Some p -> p | None -> U.watts 150.0 in
  {
    description = "commodity datacenter switch (90% fixed overhead)";
    chassis =
      (fun i -> if Topo.Graph.role g i = Topo.Graph.Host then U.zero else U.scale 0.9 peak);
    port =
      (fun arc ->
        let src = arc.Topo.Graph.src in
        if Topo.Graph.role g src = Topo.Graph.Host then U.zero
        else begin
          let ports = max 1 (Topo.Graph.degree g src) in
          U.scale (0.1 /. float_of_int ports) peak
        end);
    amplifier = (fun _ -> U.zero);
  }

let link_power m g l =
  let a1, a2 = Topo.Graph.arcs_of_link g l in
  U.( +: )
    (U.( +: ) (m.port (Topo.Graph.arc g a1)) (m.port (Topo.Graph.arc g a2)))
    (m.amplifier l)

let node_power m _g i = m.chassis i

let total m g st =
  let nodes =
    Topo.Graph.fold_nodes g ~init:U.zero ~f:(fun acc i ->
        if Topo.State.node_on st i then U.( +: ) acc (m.chassis i) else acc)
  in
  Topo.Graph.fold_links g ~init:nodes ~f:(fun acc l ->
      if Topo.State.link_on st l then U.( +: ) acc (link_power m g l) else acc)

let full m g = total m g (Topo.State.all_on g)

let m_nodes_awake =
  Obs.Metric.Gauge.create ~help:"Nodes awake in the last evaluated state"
    "power_nodes_awake"

let m_links_awake =
  Obs.Metric.Gauge.create ~help:"Links awake in the last evaluated state"
    "power_links_awake"

let m_links_asleep =
  Obs.Metric.Gauge.create ~help:"Links asleep in the last evaluated state"
    "power_links_asleep"

let percent_of_full m g st =
  if Obs.Control.enabled () then begin
    Obs.Metric.Gauge.set_int m_nodes_awake (Topo.State.active_nodes st);
    let awake = Topo.State.active_links st in
    Obs.Metric.Gauge.set_int m_links_awake awake;
    Obs.Metric.Gauge.set_int m_links_asleep (Topo.Graph.link_count g - awake)
  end;
  let f = full m g in
  match U.div_opt (total m g st) f with
  | None -> 0.0
  | Some r -> U.percent r

let state_of_loads g load =
  let st = Topo.State.all_off g in
  Topo.Graph.iter_links g ~f:(fun l -> if load l > 0.0 then Topo.State.set_link g st l true);
  st
