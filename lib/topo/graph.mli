(** Network topology: a set of routers/switches connected by bidirectional
    links, each link materialised as a pair of directed arcs.

    This mirrors the model of Section 2.2.1 of the paper: a node set [N], an
    arc set [A] where every link (i,j) is a pair of opposite arcs sharing one
    undirected link identifier (a link "cannot be half-powered"), annotated
    with capacity [C] (bit/s) and propagation latency (seconds). *)

type role =
  | Host  (** datacenter end host; consumes no network power *)
  | Edge  (** fat-tree edge (ToR) switch *)
  | Aggregation  (** fat-tree aggregation switch *)
  | Core  (** fat-tree core switch, or ISP core router *)
  | Pop  (** ISP point of presence (flat PoP-level topologies) *)
  | Backbone  (** hierarchical ISP backbone router *)
  | Metro  (** hierarchical ISP metro router *)
  | Feeder  (** hierarchical ISP feeder node (always powered) *)

val role_to_string : role -> string

type arc = {
  id : int;  (** arc identifier, dense in [0, arc_count) *)
  src : int;  (** origin node *)
  dst : int;  (** destination node *)
  capacity : float;  (** bit/s *)
  latency : float;  (** propagation delay, seconds *)
  rev : int;  (** id of the opposite arc of the same link *)
  link : int;  (** undirected link identifier, dense in [0, link_count) *)
}

type t

val node_count : t -> int
val arc_count : t -> int
val link_count : t -> int

val name : t -> int -> string
(** Human-readable node name. *)

val role : t -> int -> role

val node_of_name : t -> string -> int
(** Inverse of {!name}.
    @raise Invalid_argument naming the unknown node if absent. *)

val arc : t -> int -> arc
(** Arc by identifier. *)

val out_arcs : t -> int -> int array
(** Identifiers of arcs leaving the node. Do not mutate. *)

val in_arcs : t -> int -> int array
(** Identifiers of arcs entering the node. Do not mutate. *)

val degree : t -> int -> int
(** Number of links incident to the node. *)

val link_endpoints : t -> int -> int * int
(** Endpoints of an undirected link, in arc order. *)

val arcs_of_link : t -> int -> int * int
(** The two opposite arcs of a link.
    @raise Invalid_argument on an out-of-range link id. *)

val link_capacity : t -> int -> float
(** Capacity of the forward arc of the link. *)

val link_latency : t -> int -> float

val find_arc : t -> int -> int -> int option
(** [find_arc g i j] is the arc from [i] to [j], if the link exists. *)

val fold_nodes : t -> init:'a -> f:('a -> int -> 'a) -> 'a
val fold_arcs : t -> init:'a -> f:('a -> arc -> 'a) -> 'a
val fold_links : t -> init:'a -> f:('a -> int -> 'a) -> 'a
val iter_links : t -> f:(int -> unit) -> unit

val nodes_with_role : t -> role -> int list
(** Nodes having exactly the given role, in identifier order. *)

val traffic_nodes : t -> int array
(** Nodes that may originate or terminate demand: hosts when the topology has
    hosts, every non-feeder node otherwise. *)

val signature : t -> string
(** Structural digest of the topology: node names and roles plus every arc's
    endpoints, link id, capacity and latency (hex float, so the digest is
    exact). Two graphs with equal signatures are interchangeable for any
    routing or power computation — the key contract {!Response.Framework}
    relies on for cached precomputation. *)

val pp : Format.formatter -> t -> unit
(** One-line summary (node/link counts). *)

(** Mutable construction of a topology. *)
module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_node : t -> ?role:role -> string -> int
  (** Registers a node and returns its identifier. Names must be unique. *)

  val add_link : t -> ?capacity_back:float -> capacity:float -> latency:float -> int -> int -> int
  (** [add_link b ~capacity ~latency i j] adds link i-j (two arcs) and returns
      the link identifier. [capacity_back] overrides the j->i direction for
      asymmetric links; it defaults to [capacity]. Self-loops and duplicate
      links are rejected. *)

  val build : t -> graph
end
