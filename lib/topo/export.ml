let pretty_capacity c =
  if c >= Eutil.Units.giga then Printf.sprintf "%.1fG" (c /. Eutil.Units.giga)
  else if c >= Eutil.Units.mega then Printf.sprintf "%.0fM" (c /. Eutil.Units.mega)
  else Printf.sprintf "%.0fk" (c /. Eutil.Units.kilo)

let to_dot ?state ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph topology {\n  node [shape=ellipse, fontsize=10];\n";
  for n = 0 to Graph.node_count g - 1 do
    let shape = if Graph.role g n = Graph.Host then ", shape=box" else "" in
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"%s];\n" n (Graph.name g n) shape)
  done;
  let highlighted = Hashtbl.create 16 in
  List.iter
    (fun p -> Array.iter (fun l -> Hashtbl.replace highlighted l ()) (Path.links g p))
    highlight;
  Graph.iter_links g ~f:(fun l ->
      let i, j = Graph.link_endpoints g l in
      let asleep = match state with Some st -> not (State.link_on st l) | None -> false in
      let attrs =
        String.concat ", "
          (List.filter
             (fun s -> s <> "")
             [
               Printf.sprintf "label=\"%s\"" (pretty_capacity (Graph.link_capacity g l));
               (if asleep then "style=dashed, color=grey" else "");
               (if Hashtbl.mem highlighted l then "penwidth=3" else "");
             ])
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d [%s];\n" i j attrs));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_csv g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "src,dst,capacity_bps,latency_s\n";
  Graph.iter_links g ~f:(fun l ->
      let i, j = Graph.link_endpoints g l in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%.0f,%.6f\n" (Graph.name g i) (Graph.name g j)
           (Graph.link_capacity g l) (Graph.link_latency g l)));
  Buffer.contents buf

let capacity_summary g =
  let counts = Hashtbl.create 8 in
  Graph.iter_links g ~f:(fun l ->
      let c = Graph.link_capacity g l in
      Hashtbl.replace counts c (1 + Option.value (Hashtbl.find_opt counts c) ~default:0));
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts []
  |> List.sort (Eutil.Order.by fst (Eutil.Order.desc Float.compare))
