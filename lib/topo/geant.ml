(* A GEANT-like topology: 23 PoPs, 37 links, modelled on the published 2005
   European research network map [Uhlig et al., CCR 2006]. The real dataset is
   not redistributable; the node set, approximate capacities (10G backbone,
   2.5G regional, 622M spurs) and geographically plausible latencies are
   reproduced here (see DESIGN.md, Substitutions). *)

let pops =
  [|
    "AT"; "BE"; "CH"; "CY"; "CZ"; "DE"; "DK"; "ES"; "FR"; "GR"; "HR"; "HU"; "IE"; "IL"; "IT";
    "LU"; "NL"; "PL"; "PT"; "SE"; "SI"; "SK"; "UK";
  |]

let gbit x = Eutil.Units.to_float (Eutil.Units.gbps x)
let ms x = x *. 1e-3

(* (a, b, capacity, one-way latency) *)
let links =
  [
    ("UK", "NL", gbit 10., ms 4.);
    ("UK", "FR", gbit 10., ms 3.);
    ("NL", "DE", gbit 10., ms 3.);
    ("DE", "FR", gbit 10., ms 5.);
    ("DE", "AT", gbit 10., ms 4.);
    ("DE", "CH", gbit 10., ms 4.);
    ("FR", "CH", gbit 10., ms 3.);
    ("CH", "IT", gbit 10., ms 3.);
    ("AT", "IT", gbit 10., ms 4.);
    ("DE", "PL", gbit 10., ms 5.);
    ("DE", "DK", gbit 10., ms 3.);
    ("SE", "DK", gbit 10., ms 3.);
    ("UK", "SE", gbit 10., ms 9.);
    ("FR", "ES", gbit 10., ms 6.);
    ("AT", "CZ", gbit 10., ms 2.);
    ("AT", "HU", gbit 10., ms 2.);
    ("BE", "NL", gbit 2.5, ms 2.);
    ("BE", "FR", gbit 2.5, ms 2.);
    ("IE", "UK", gbit 2.5, ms 4.);
    ("ES", "PT", gbit 2.5, ms 4.);
    ("PT", "FR", gbit 2.5, ms 8.);
    ("IT", "GR", gbit 2.5, ms 8.);
    ("GR", "AT", gbit 2.5, ms 8.);
    ("HU", "SK", gbit 2.5, ms 2.);
    ("SK", "CZ", gbit 2.5, ms 2.);
    ("CZ", "PL", gbit 2.5, ms 3.);
    ("SI", "AT", gbit 2.5, ms 2.);
    ("HR", "SI", gbit 2.5, ms 1.);
    ("HR", "HU", gbit 2.5, ms 2.);
    ("LU", "DE", gbit 2.5, ms 2.);
    ("LU", "FR", gbit 2.5, ms 2.);
    ("PL", "SE", gbit 2.5, ms 6.);
    ("CY", "GR", gbit 0.622, ms 6.);
    ("CY", "IL", gbit 0.622, ms 3.);
    ("IL", "IT", gbit 0.622, ms 12.);
    ("IE", "NL", gbit 0.622, ms 6.);
    ("PT", "UK", gbit 0.622, ms 10.);
  ]

let make () =
  let b = Graph.Builder.create () in
  let ids = Hashtbl.create 32 in
  Array.iter (fun p -> Hashtbl.add ids p (Graph.Builder.add_node b ~role:Pop p)) pops;
  let node x =
    match Hashtbl.find_opt ids x with
    | Some i -> i
    | None -> invalid_arg ("Geant.make: link references unknown PoP " ^ x)
  in
  List.iter
    (fun (x, y, capacity, latency) ->
      ignore (Graph.Builder.add_link b ~capacity ~latency (node x) (node y)))
    links;
  Graph.Builder.build b
