(* Rocketfuel-like PoP-level ISP topologies. The paper evaluates on the
   Abovenet and Genuity maps inferred by Rocketfuel [Spring et al., ToN 2004];
   those maps are regenerated here as deterministic random geometric graphs
   with the published scale, and with the capacity assignment rule of
   [Kandula et al., SIGCOMM 2005] quoted by the paper: a link gets 100 Mbit/s
   if it is connected to an end point with degree < 7, and 52 Mbit/s
   otherwise. Latencies follow the embedded geography. *)

type spec = { name : string; pops : int; extra_links : int; seed : int }

let abovenet = { name = "abovenet"; pops = 22; extra_links = 28; seed = 6461 }
let genuity = { name = "genuity"; pops = 42; extra_links = 68; seed = 1 }

let dist (x1, y1) (x2, y2) = sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0))

(* Continental-scale latency: unit square ~ 4000 km, 5 us/km in fibre. *)
let latency_of_distance d = d *. 4000.0 *. 5e-6

(* Kandula et al. capacity rule: 100 Mbit/s at low-degree end points,
   52 Mbit/s on trunks between well-connected PoPs. *)
let edge_bps = Eutil.Units.to_float (Eutil.Units.mbps 100.0)
let trunk_bps = Eutil.Units.to_float (Eutil.Units.mbps 52.0)

let make spec =
  let rng = Eutil.Prng.create spec.seed in
  let n = spec.pops in
  let pos = Array.init n (fun _ -> (Eutil.Prng.float rng, Eutil.Prng.float rng)) in
  let b = Graph.Builder.create () in
  let nodes =
    Array.init n (fun i -> Graph.Builder.add_node b ~role:Pop (Printf.sprintf "%s%02d" spec.name i))
  in
  (* Spanning tree by Prim on Euclidean distance guarantees connectivity. *)
  let in_tree = Array.make n false in
  in_tree.(0) <- true;
  let chosen = ref [] in
  for _ = 1 to n - 1 do
    let best = ref None in
    for i = 0 to n - 1 do
      if in_tree.(i) then
        for j = 0 to n - 1 do
          if not in_tree.(j) then begin
            let d = dist pos.(i) pos.(j) in
            match !best with
            | Some (_, _, bd) when bd <= d -> ()
            | _ -> best := Some (i, j, d)
          end
        done
    done;
    match !best with
    | None -> assert false
    | Some (i, j, _) ->
        in_tree.(j) <- true;
        chosen := (i, j) :: !chosen
  done;
  let have = Hashtbl.create 64 in
  List.iter (fun (i, j) -> Hashtbl.add have (min i j, max i j) ()) !chosen;
  (* Extra links: preferential attachment weighted by inverse distance, which
     yields the hub-and-spoke structure typical of measured PoP maps. *)
  let deg = Array.make n 1 in
  List.iter
    (fun (i, j) ->
      deg.(i) <- deg.(i) + 1;
      deg.(j) <- deg.(j) + 1)
    !chosen;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < spec.extra_links && !attempts < 100 * spec.extra_links do
    incr attempts;
    let i = Eutil.Prng.int rng n in
    (* Pick the peer by degree-weighted sampling among the closest nodes. *)
    let candidates =
      List.init n (fun j -> j)
      |> List.filter (fun j -> j <> i && not (Hashtbl.mem have (min i j, max i j)))
      |> List.sort (Eutil.Order.by (fun j -> dist pos.(i) pos.(j)) Float.compare)
    in
    let near = List.filteri (fun k _ -> k < 8) candidates in
    let weight j = float_of_int deg.(j) in
    let total = List.fold_left (fun acc j -> acc +. weight j) 0.0 near in
    if total > 0.0 then begin
      let r = Eutil.Prng.float rng *. total in
      let rec pick acc = function
        | [] -> None
        | j :: rest -> if acc +. weight j >= r then Some j else pick (acc +. weight j) rest
      in
      match pick 0.0 near with
      | None -> ()
      | Some j ->
          Hashtbl.add have (min i j, max i j) ();
          deg.(i) <- deg.(i) + 1;
          deg.(j) <- deg.(j) + 1;
          incr added
    end
  done;
  let pairs = Hashtbl.fold (fun k () acc -> k :: acc) have [] |> List.sort Eutil.Order.int_pair in
  List.iter
    (fun (i, j) ->
      let capacity = if deg.(i) < 7 || deg.(j) < 7 then edge_bps else trunk_bps in
      let latency = max 0.5e-3 (latency_of_distance (dist pos.(i) pos.(j))) in
      ignore (Graph.Builder.add_link b ~capacity ~latency nodes.(i) nodes.(j)))
    pairs;
  Graph.Builder.build b
