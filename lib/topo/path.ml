type t = { src : int; dst : int; arcs : int array }

let of_arcs g arc_ids =
  match arc_ids with
  | [] -> invalid_arg "Path.of_arcs: empty"
  | first :: _ ->
      let rec check prev = function
        | [] -> prev
        | a :: rest ->
            let arc = Graph.arc g a in
            if arc.Graph.src <> prev then invalid_arg "Path.of_arcs: not contiguous";
            check arc.Graph.dst rest
      in
      let src = (Graph.arc g first).Graph.src in
      let dst = check src arc_ids in
      { src; dst; arcs = Array.of_list arc_ids }

let hops p = Array.length p.arcs

let nodes g p =
  let n = Array.length p.arcs in
  Array.init (n + 1) (fun i ->
      if i = 0 then p.src else (Graph.arc g p.arcs.(i - 1)).Graph.dst)

let latency g p =
  Array.fold_left (fun acc a -> acc +. (Graph.arc g a).Graph.latency) 0.0 p.arcs

let bottleneck g p =
  Array.fold_left (fun acc a -> min acc (Graph.arc g a).Graph.capacity) infinity p.arcs

let links g p = Array.map (fun a -> (Graph.arc g a).Graph.link) p.arcs

let uses_link g p l = Array.exists (fun a -> (Graph.arc g a).Graph.link = l) p.arcs

let uses_arc p a = Array.exists (fun x -> x = a) p.arcs

let active g st p = Array.for_all (fun a -> State.arc_on g st a) p.arcs

let equal a b = a.src = b.src && a.dst = b.dst && a.arcs = b.arcs

let compare a b =
  Eutil.Order.triple Int.compare Int.compare (Eutil.Order.array Int.compare) (a.src, a.dst, a.arcs)
    (b.src, b.dst, b.arcs)

let shares_link g a b =
  let la = links g a in
  let lb = links g b in
  Array.exists (fun l -> Array.exists (fun l' -> l = l') lb) la

let pp g ppf p =
  let ns = nodes g p in
  let names = Array.to_list (Array.map (Graph.name g) ns) in
  Format.fprintf ppf "%s" (String.concat "-" names)
