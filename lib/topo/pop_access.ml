(* Hierarchical Italian-ISP-like topology ("PoP-access" in the paper,
   published in [Chiaraviglio et al., GreenComm 2009]): a fully meshed core,
   a dual-homed backbone level and a dual-homed metro level, with significant
   redundancy at each level. The paper uses only the top three levels (core,
   backbone, metro) because feeder nodes must stay powered. *)

type params = { cores : int; backbones : int; metros : int }

let default = { cores = 4; backbones = 8; metros = 16 }

(* Link tiers: 10G core mesh, 2.5G backbone dual-homing, 1G metro. *)
let core_bps = Eutil.Units.to_float (Eutil.Units.gbps 10.0)
let backbone_bps = Eutil.Units.to_float (Eutil.Units.gbps 2.5)
let metro_bps = Eutil.Units.to_float (Eutil.Units.gbps 1.0)

let make ?(params = default) () =
  let { cores; backbones; metros } = params in
  if cores < 2 || backbones < 2 || metros < 1 then invalid_arg "Pop_access.make";
  let b = Graph.Builder.create () in
  let core =
    Array.init cores (fun i -> Graph.Builder.add_node b ~role:Core (Printf.sprintf "core%d" i))
  in
  let backbone =
    Array.init backbones (fun i ->
        Graph.Builder.add_node b ~role:Backbone (Printf.sprintf "bb%d" i))
  in
  let metro =
    Array.init metros (fun i -> Graph.Builder.add_node b ~role:Metro (Printf.sprintf "m%d" i))
  in
  (* Full mesh among cores, 10G. *)
  for i = 0 to cores - 1 do
    for j = i + 1 to cores - 1 do
      ignore (Graph.Builder.add_link b ~capacity:core_bps ~latency:1.5e-3 core.(i) core.(j))
    done
  done;
  (* Each backbone dual-homed to two distinct cores, 2.5G. *)
  for i = 0 to backbones - 1 do
    let c1 = i mod cores in
    let c2 = (i + 1) mod cores in
    ignore (Graph.Builder.add_link b ~capacity:backbone_bps ~latency:1e-3 backbone.(i) core.(c1));
    ignore (Graph.Builder.add_link b ~capacity:backbone_bps ~latency:1e-3 backbone.(i) core.(c2))
  done;
  (* Each metro dual-homed to two distinct backbones, 1G. *)
  for i = 0 to metros - 1 do
    let b1 = i mod backbones in
    let b2 = (i + 1) mod backbones in
    ignore (Graph.Builder.add_link b ~capacity:metro_bps ~latency:0.5e-3 metro.(i) backbone.(b1));
    ignore (Graph.Builder.add_link b ~capacity:metro_bps ~latency:0.5e-3 metro.(i) backbone.(b2))
  done;
  Graph.Builder.build b
