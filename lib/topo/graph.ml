type role = Host | Edge | Aggregation | Core | Pop | Backbone | Metro | Feeder

let role_to_string = function
  | Host -> "host"
  | Edge -> "edge"
  | Aggregation -> "aggregation"
  | Core -> "core"
  | Pop -> "pop"
  | Backbone -> "backbone"
  | Metro -> "metro"
  | Feeder -> "feeder"

type arc = {
  id : int;
  src : int;
  dst : int;
  capacity : float;
  latency : float;
  rev : int;
  link : int;
}

type t = {
  names : string array;
  roles : role array;
  arcs : arc array;
  out_adj : int array array;
  in_adj : int array array;
  links : (int * int) array;
  by_name : (string, int) Hashtbl.t;
  by_ends : (int * int, int) Hashtbl.t;
}

let node_count g = Array.length g.names
let arc_count g = Array.length g.arcs
let link_count g = Array.length g.links
let name g n = g.names.(n)
let role g n = g.roles.(n)
let node_of_name g s =
  match Hashtbl.find_opt g.by_name s with
  | Some n -> n
  | None -> invalid_arg ("Graph.node_of_name: unknown node " ^ s)
let arc g a = g.arcs.(a)
let out_arcs g n = g.out_adj.(n)
let in_arcs g n = g.in_adj.(n)
let degree g n = Array.length g.out_adj.(n)
let link_endpoints g l = g.links.(l)

let arcs_of_link g l =
  let i, j = g.links.(l) in
  match Hashtbl.find_opt g.by_ends (i, j) with
  | Some a -> (a, g.arcs.(a).rev)
  | None ->
      invalid_arg
        (Printf.sprintf "Graph.arcs_of_link: link %d (%s-%s) has no arc" l g.names.(i) g.names.(j))

let link_capacity g l =
  let a, _ = arcs_of_link g l in
  g.arcs.(a).capacity

let link_latency g l =
  let a, _ = arcs_of_link g l in
  g.arcs.(a).latency

let find_arc g i j = Hashtbl.find_opt g.by_ends (i, j)

let fold_nodes g ~init ~f =
  let acc = ref init in
  for n = 0 to node_count g - 1 do
    acc := f !acc n
  done;
  !acc

let fold_arcs g ~init ~f = Array.fold_left f init g.arcs

let fold_links g ~init ~f =
  let acc = ref init in
  for l = 0 to link_count g - 1 do
    acc := f !acc l
  done;
  !acc

let iter_links g ~f =
  for l = 0 to link_count g - 1 do
    f l
  done

let nodes_with_role g r =
  fold_nodes g ~init:[] ~f:(fun acc n -> if g.roles.(n) = r then n :: acc else acc) |> List.rev

let traffic_nodes g =
  let hosts = nodes_with_role g Host in
  let selected =
    if hosts <> [] then hosts
    else
      fold_nodes g ~init:[] ~f:(fun acc n -> if g.roles.(n) <> Feeder then n :: acc else acc)
      |> List.rev
  in
  Array.of_list selected

let signature g =
  let b = Buffer.create 1024 in
  Buffer.add_string b (string_of_int (node_count g));
  for n = 0 to node_count g - 1 do
    Buffer.add_char b '|';
    Buffer.add_string b g.names.(n);
    Buffer.add_char b ':';
    Buffer.add_string b (role_to_string g.roles.(n))
  done;
  Array.iter
    (fun a ->
      Buffer.add_string b
        (Printf.sprintf "|%d>%d#%d:%h:%h" a.src a.dst a.link a.capacity a.latency))
    g.arcs;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp ppf g =
  Format.fprintf ppf "graph(%d nodes, %d links, %d arcs)" (node_count g) (link_count g)
    (arc_count g)

module Builder = struct
  type node_rec = { nname : string; nrole : role }
  type link_rec = { a : int; b : int; cap_ab : float; cap_ba : float; lat : float }

  type t = {
    mutable nodes : node_rec list;
    mutable nnodes : int;
    mutable links_rev : link_rec list;
    mutable nlinks : int;
    seen_names : (string, unit) Hashtbl.t;
    seen_links : (int * int, unit) Hashtbl.t;
  }

  let create () =
    {
      nodes = [];
      nnodes = 0;
      links_rev = [];
      nlinks = 0;
      seen_names = Hashtbl.create 64;
      seen_links = Hashtbl.create 64;
    }

  let add_node b ?(role = Pop) name =
    if Hashtbl.mem b.seen_names name then invalid_arg ("Builder.add_node: duplicate " ^ name);
    Hashtbl.add b.seen_names name ();
    let id = b.nnodes in
    b.nodes <- { nname = name; nrole = role } :: b.nodes;
    b.nnodes <- b.nnodes + 1;
    id

  let add_link b ?capacity_back ~capacity ~latency i j =
    if i = j then invalid_arg "Builder.add_link: self loop";
    if i < 0 || j < 0 || i >= b.nnodes || j >= b.nnodes then
      invalid_arg "Builder.add_link: unknown node";
    let key = (min i j, max i j) in
    if Hashtbl.mem b.seen_links key then invalid_arg "Builder.add_link: duplicate link";
    Hashtbl.add b.seen_links key ();
    let cap_ba = Option.value capacity_back ~default:capacity in
    let id = b.nlinks in
    b.links_rev <- { a = i; b = j; cap_ab = capacity; cap_ba; lat = latency } :: b.links_rev;
    b.nlinks <- b.nlinks + 1;
    id

  let build b =
    let nodes = Array.of_list (List.rev b.nodes) in
    let links = Array.of_list (List.rev b.links_rev) in
    let n = Array.length nodes in
    let nlinks = Array.length links in
    let arcs = Array.make (2 * nlinks) None in
    Array.iteri
      (fun l { a; b = bb; cap_ab; cap_ba; lat } ->
        let fwd = 2 * l and bwd = (2 * l) + 1 in
        arcs.(fwd) <-
          Some { id = fwd; src = a; dst = bb; capacity = cap_ab; latency = lat; rev = bwd; link = l };
        arcs.(bwd) <-
          Some { id = bwd; src = bb; dst = a; capacity = cap_ba; latency = lat; rev = fwd; link = l })
      links;
    let arcs =
      Array.map
        (function
          | Some a -> a
          | None -> invalid_arg "Graph.Builder.build: arc slot left unfilled")
        arcs
    in
    let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
    Array.iter
      (fun a ->
        out_deg.(a.src) <- out_deg.(a.src) + 1;
        in_deg.(a.dst) <- in_deg.(a.dst) + 1)
      arcs;
    let out_adj = Array.init n (fun i -> Array.make out_deg.(i) 0) in
    let in_adj = Array.init n (fun i -> Array.make in_deg.(i) 0) in
    let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
    Array.iter
      (fun a ->
        out_adj.(a.src).(out_fill.(a.src)) <- a.id;
        out_fill.(a.src) <- out_fill.(a.src) + 1;
        in_adj.(a.dst).(in_fill.(a.dst)) <- a.id;
        in_fill.(a.dst) <- in_fill.(a.dst) + 1)
      arcs;
    let by_name = Hashtbl.create n in
    Array.iteri (fun i nr -> Hashtbl.add by_name nr.nname i) nodes;
    let by_ends = Hashtbl.create (2 * nlinks) in
    Array.iter (fun a -> Hashtbl.add by_ends (a.src, a.dst) a.id) arcs;
    {
      names = Array.map (fun nr -> nr.nname) nodes;
      roles = Array.map (fun nr -> nr.nrole) nodes;
      arcs;
      out_adj;
      in_adj;
      links = Array.map (fun l -> (l.a, l.b)) links;
      by_name;
      by_ends;
    }
end
