(* The example topology of the paper's Figure 3 (also the Click testbed of
   Figure 7, which excludes router B): sources A, B, C reach K over a common
   always-on path E-H-K, while D-G-K ("upper") and F-J-K ("lower") serve as
   on-demand/failover paths. *)

type t = {
  graph : Graph.t;
  a : int;
  b : int option;
  c : int;
  d : int;
  e : int;
  f : int;
  g : int;
  h : int;
  j : int;
  k : int;
}

let make ?(include_b = true) ?(capacity = 10e6) ?(latency = 16.67e-3) () =
  let bl = Graph.Builder.create () in
  let add name = Graph.Builder.add_node bl ~role:Pop name in
  let a = add "A" in
  let b = if include_b then Some (add "B") else None in
  let c = add "C" in
  let d = add "D" in
  let e = add "E" in
  let f = add "F" in
  let g = add "G" in
  let h = add "H" in
  let j = add "J" in
  let k = add "K" in
  let link x y = ignore (Graph.Builder.add_link bl ~capacity ~latency x y) in
  link a d;
  link a e;
  (match b with Some b -> link b e | None -> ());
  link c e;
  link c f;
  link d g;
  link e h;
  link f j;
  link g k;
  link h k;
  link j k;
  { graph = Graph.Builder.build bl; a; b; c; d; e; f; g; h; j; k }

(* Tiny fixtures used across the test suites. *)

let triangle ?(capacity = 1e9) ?(latency = 1e-3) () =
  let b = Graph.Builder.create () in
  let n0 = Graph.Builder.add_node b "n0" in
  let n1 = Graph.Builder.add_node b "n1" in
  let n2 = Graph.Builder.add_node b "n2" in
  ignore (Graph.Builder.add_link b ~capacity ~latency n0 n1);
  ignore (Graph.Builder.add_link b ~capacity ~latency n1 n2);
  ignore (Graph.Builder.add_link b ~capacity ~latency n0 n2);
  Graph.Builder.build b

let gig = Eutil.Units.to_float (Eutil.Units.gbps 1.0)

let square_with_diagonal () =
  (* 4-cycle n0-n1-n2-n3 plus chord n0-n2; useful for path-diversity tests. *)
  let b = Graph.Builder.create () in
  let n = Array.init 4 (fun i -> Graph.Builder.add_node b (Printf.sprintf "n%d" i)) in
  let link x y = ignore (Graph.Builder.add_link b ~capacity:gig ~latency:1e-3 x y) in
  link n.(0) n.(1);
  link n.(1) n.(2);
  link n.(2) n.(3);
  link n.(3) n.(0);
  link n.(0) n.(2);
  Graph.Builder.build b

let line n_nodes =
  let b = Graph.Builder.create () in
  let n = Array.init n_nodes (fun i -> Graph.Builder.add_node b (Printf.sprintf "n%d" i)) in
  for i = 0 to n_nodes - 2 do
    ignore (Graph.Builder.add_link b ~capacity:gig ~latency:1e-3 n.(i) n.(i + 1))
  done;
  Graph.Builder.build b
