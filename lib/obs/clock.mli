(** Monotonicised wall clock behind a pluggable source.

    The stock OCaml distribution exposes no CLOCK_MONOTONIC, so the default
    source is [Unix.gettimeofday] made non-decreasing: a backwards step of
    the system clock (NTP slew, manual reset) is absorbed instead of
    producing a negative span duration. A front end that links a real
    monotonic clock (e.g. bechamel's) can inject it with {!set_source};
    tests inject a deterministic counter. *)

val now_s : unit -> float
(** Current time in seconds. Non-decreasing across calls for a fixed
    source. The absolute origin is source-defined; only differences are
    meaningful. *)

val set_source : (unit -> float) -> unit
(** Replace the time source (seconds). Resets the monotonic floor, so the
    new source's origin need not relate to the old one's. *)

val reset_source : unit -> unit
(** Restore the default [Unix.gettimeofday] source. *)
