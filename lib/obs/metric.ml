(* Concurrency discipline (audited by Check.Share, see DESIGN.md §11):
   every instrument here is reachable from code running inside Eutil.Pool
   worker domains, so each one carries its own synchronisation.

   - Counters are the hot path (event loops increment them per simulator
     event), so they shard into one accumulator cell per domain via
     Domain.DLS: increments touch only the calling domain's cell and the
     cells are summed at read time. Reads that race a foreign domain's
     in-flight increment may miss it — reads are meant to happen at
     fork-join points (after Domain.join), where everything is ordered.
   - Gauges and histograms take a per-instrument mutex; they are orders of
     magnitude colder than counters.
   - Families guard their child table with a mutex (lock order: family
     before registry, registry before instrument; no path reverses it). *)

module Counter = struct
  type t = {
    lock : Mutex.t;  (* guards the [cells] list (not the cell contents) *)
    cells : float Atomic.t list ref;  (* one accumulator per touching domain *)
    key : float Atomic.t Domain.DLS.key;
  }

  let cell c = Domain.DLS.get c.key

  let snapshot_cells c =
    Mutex.lock c.lock;
    let cs = !(c.cells) in
    Mutex.unlock c.lock;
    cs

  let value c = List.fold_left (fun acc cell -> acc +. Atomic.get cell) 0.0 (snapshot_cells c)

  let reset c = List.iter (fun cell -> Atomic.set cell 0.0) (snapshot_cells c)

  let create ?(registry = Registry.default) ?(labels = []) ~help name =
    let lock = Mutex.create () in
    let cells = ref [] in
    let key =
      Domain.DLS.new_key (fun () ->
          let cell = Atomic.make 0.0 in
          Mutex.lock lock;
          cells := cell :: !cells;
          Mutex.unlock lock;
          cell)
    in
    let c = { lock; cells; key } in
    Registry.register registry
      {
        Registry.c_name = name;
        c_help = help;
        c_labels = labels;
        c_kind = Registry.Counter;
        collect = (fun () -> Registry.Counter_v (value c));
        reset = (fun () -> reset c);
      };
    c

  let add c x =
    if Control.enabled () then begin
      if not (x >= 0.0) then invalid_arg "Obs.Metric.Counter.add: negative or NaN increment";
      let cell = cell c in
      (* The owning domain is the only writer, so the CAS succeeds on the
         first try; spelling it as a retry loop keeps the cell correct
         even if a cell ever gains a second writer. *)
      let rec bump () =
        let cur = Atomic.get cell in
        if not (Atomic.compare_and_set cell cur (cur +. x)) then bump ()
      in
      bump ()
    end

  let add_int c n = add c (float_of_int n)
  let incr c = add c 1.0
end

module Gauge = struct
  type t = { lock : Mutex.t; mutable v : float }

  let create ?(registry = Registry.default) ?(labels = []) ~help name =
    let g = { lock = Mutex.create (); v = 0.0 } in
    Registry.register registry
      {
        Registry.c_name = name;
        c_help = help;
        c_labels = labels;
        c_kind = Registry.Gauge;
        collect = (fun () -> Registry.Gauge_v g.v);
        reset =
          (fun () ->
            Mutex.lock g.lock;
            g.v <- 0.0;
            Mutex.unlock g.lock);
      };
    g

  let set g x =
    if Control.enabled () then begin
      if Float.is_nan x then invalid_arg "Obs.Metric.Gauge.set: NaN";
      Mutex.lock g.lock;
      g.v <- x;
      Mutex.unlock g.lock
    end

  let set_int g n = set g (float_of_int n)

  let add g x =
    if Control.enabled () then begin
      if Float.is_nan x then invalid_arg "Obs.Metric.Gauge.add: NaN";
      Mutex.lock g.lock;
      g.v <- g.v +. x;
      Mutex.unlock g.lock
    end

  let value g = g.v
end

module Histogram = struct
  (* Log-linear bucketing: each binary octave [2^(e-1), 2^e) is divided
     into [subs] linear sub-buckets, so the relative width of any bucket is
     at most 1/subs. Bucket ids are integers ordered like the values they
     cover, which makes the quantile walk a sort + prefix sum over the
     occupied buckets only. *)
  let subs = 32
  let subs_f = 32.0

  type t = {
    lock : Mutex.t;  (* guards every mutable field and [buckets] *)
    mutable count : int;
    mutable sum : float;
    mutable minv : float;  (* +inf when empty *)
    mutable maxv : float;  (* -inf when empty *)
    mutable low : int;  (* observations <= 0 *)
    mutable high : int;  (* observations = +inf *)
    buckets : (int, int) Hashtbl.t;
  }

  let locked h f =
    Mutex.lock h.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

  let bucket_of v =
    (* v is finite and > 0. frexp v = (m, e) with v = m * 2^e, m in
       [0.5, 1); the sub-bucket index rescales m linearly to 0..subs-1. *)
    let m, e = Float.frexp v in
    let s = int_of_float ((m -. 0.5) *. 2.0 *. subs_f) in
    (e * subs) + min s (subs - 1)

  let upper_of idx =
    (* Inverse of [bucket_of]: the exclusive upper bound of bucket [idx].
       Integer division truncates towards zero, so floor the octave by hand
       for negative ids. *)
    let e = if idx >= 0 then idx / subs else ((idx + 1) / subs) - 1 in
    let s = idx - (e * subs) in
    Float.ldexp (0.5 +. (float_of_int (s + 1) /. (2.0 *. subs_f))) e

  let sorted_buckets h =
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) h.buckets []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  (* [quantile_u] assumes [h.lock] is held (or the instrument is quiescent). *)
  let quantile_u h q =
    if q < 0.0 || q > 1.0 then invalid_arg "Obs.Metric.Histogram.quantile: q outside [0, 1]";
    if h.count = 0 then 0.0
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
      if rank <= h.low then (if h.minv < 0.0 then h.minv else 0.0)
      else begin
        let rec walk cum = function
          | [] -> h.maxv (* remaining ranks live in the +inf overflow bin *)
          | (b, c) :: rest ->
              let cum = cum + c in
              if rank <= cum then begin
                let hi = upper_of b in
                let lo = upper_of (b - 1) in
                Float.min h.maxv (Float.max h.minv ((lo +. hi) *. 0.5))
              end
              else walk cum rest
        in
        walk h.low (sorted_buckets h)
      end
    end

  let quantile h q = locked h (fun () -> quantile_u h q)

  let snapshot_u h =
    let buckets =
      let rec cumulate cum = function
        | [] -> []
        | (b, c) :: rest ->
            let cum = cum + c in
            (upper_of b, cum) :: cumulate cum rest
      in
      cumulate h.low (sorted_buckets h)
    in
    {
      Registry.count = h.count;
      sum = h.sum;
      min = (if h.count = 0 then 0.0 else h.minv);
      max = (if h.count = 0 then 0.0 else h.maxv);
      quantiles = List.map (fun q -> (q, quantile_u h q)) [ 0.5; 0.9; 0.99 ];
      buckets;
    }

  let snapshot h = locked h (fun () -> snapshot_u h)

  let create ?(registry = Registry.default) ?(labels = []) ~help name =
    let h =
      {
        lock = Mutex.create ();
        count = 0;
        sum = 0.0;
        minv = infinity;
        maxv = neg_infinity;
        low = 0;
        high = 0;
        buckets = Hashtbl.create 16;
      }
    in
    let reset () =
      locked h (fun () ->
          h.count <- 0;
          h.sum <- 0.0;
          h.minv <- infinity;
          h.maxv <- neg_infinity;
          h.low <- 0;
          h.high <- 0;
          Hashtbl.reset h.buckets)
    in
    Registry.register registry
      {
        Registry.c_name = name;
        c_help = help;
        c_labels = labels;
        c_kind = Registry.Histogram;
        collect = (fun () -> Registry.Histogram_v (snapshot h));
        reset;
      };
    h

  let observe h x =
    if Control.enabled () then begin
      if Float.is_nan x then invalid_arg "Obs.Metric.Histogram.observe: NaN";
      locked h (fun () ->
          h.count <- h.count + 1;
          h.sum <- h.sum +. x;
          if x < h.minv then h.minv <- x;
          if x > h.maxv then h.maxv <- x;
          if x > 0.0 && x < infinity then begin
            let b = bucket_of x in
            Hashtbl.replace h.buckets b
              (1 + Option.value (Hashtbl.find_opt h.buckets b) ~default:0)
          end
          else if x = infinity then h.high <- h.high + 1
          else h.low <- h.low + 1)
    end

  let time h f =
    if Control.enabled () then begin
      let t0 = Clock.now_s () in
      Fun.protect ~finally:(fun () -> observe h (Clock.now_s () -. t0)) f
    end
    else f ()

  let count h = h.count
  let sum h = h.sum
end

module Family = struct
  type 'a t = {
    lock : Mutex.t;  (* guards [children]; lock order: family before registry *)
    label_names : string list;
    instantiate : (string * string) list -> 'a;
    children : (string list, 'a) Hashtbl.t;
  }

  let make label_names instantiate =
    { lock = Mutex.create (); label_names; instantiate; children = Hashtbl.create 8 }

  let counter ?(registry = Registry.default) ~help ~label_names name =
    make label_names (fun labels -> Counter.create ~registry ~labels ~help name)

  let gauge ?(registry = Registry.default) ~help ~label_names name =
    make label_names (fun labels -> Gauge.create ~registry ~labels ~help name)

  let histogram ?(registry = Registry.default) ~help ~label_names name =
    make label_names (fun labels -> Histogram.create ~registry ~labels ~help name)

  let labels fam values =
    if List.length values <> List.length fam.label_names then
      invalid_arg "Obs.Metric.Family.labels: label arity mismatch";
    Mutex.lock fam.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock fam.lock)
      (fun () ->
        match Hashtbl.find_opt fam.children values with
        | Some x -> x
        | None ->
            let x = fam.instantiate (List.combine fam.label_names values) in
            Hashtbl.replace fam.children values x;
            x)
end
