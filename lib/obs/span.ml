type node = {
  name : string;
  start_s : float;
  dur_s : float;
  children : node list;
}

type frame = { fname : string; fstart : float; mutable fchildren : node list }

(* The open-frame stack is domain-local: spans opened inside an Eutil.Pool
   worker nest under that worker's own roots, never under a frame of
   another domain. Completed top-level spans from every domain funnel into
   one queue behind a mutex. *)
let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let completed : node Queue.t = Queue.create ()
let completed_lock = Mutex.create ()

let max_roots = 512

let span_seconds =
  Metric.Family.histogram ~help:"Span durations by span name" ~label_names:[ "span" ]
    "obs_span_seconds"

let finish fr =
  let stack = stack () in
  let dur = Clock.now_s () -. fr.fstart in
  (match !stack with f :: rest when f == fr -> stack := rest | _ -> ());
  Metric.Histogram.observe (Metric.Family.labels span_seconds [ fr.fname ]) dur;
  let node =
    { name = fr.fname; start_s = fr.fstart; dur_s = dur; children = List.rev fr.fchildren }
  in
  (match !stack with
  | parent :: _ -> parent.fchildren <- node :: parent.fchildren
  | [] ->
      Mutex.lock completed_lock;
      Queue.push node completed;
      if Queue.length completed > max_roots then ignore (Queue.pop completed);
      Mutex.unlock completed_lock);
  dur

let timed name f =
  if not (Control.enabled ()) then begin
    let t0 = Clock.now_s () in
    let r = f () in
    (r, Clock.now_s () -. t0)
  end
  else begin
    let stack = stack () in
    let fr = { fname = name; fstart = Clock.now_s (); fchildren = [] } in
    stack := fr :: !stack;
    let dur = ref 0.0 in
    let r = Fun.protect ~finally:(fun () -> dur := finish fr) f in
    (r, !dur)
  end

let with_ name f = fst (timed name f)

let roots () =
  Mutex.lock completed_lock;
  let r = List.of_seq (Queue.to_seq completed) in
  Mutex.unlock completed_lock;
  r

let clear () =
  Mutex.lock completed_lock;
  Queue.clear completed;
  Mutex.unlock completed_lock;
  (* Only the calling domain's open frames can be dropped; other domains'
     stacks are theirs alone (and empty outside a live fan-out). *)
  stack () := []

let to_text () =
  let buf = Buffer.create 256 in
  let rec render indent n =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %10.6f s\n" indent (max 1 (40 - String.length indent)) n.name
         n.dur_s);
    List.iter (render (indent ^ "  ")) n.children
  in
  List.iter (render "") (roots ());
  Buffer.contents buf
