(** Metric registry: the directory of every instrument in the process.

    Instruments ({!Metric}) register a collector at creation time; a
    snapshot walks the collectors in creation order and freezes their
    current values into plain data that the exporters ({!Export}) render.
    The registry itself never touches the hot path — reads happen only when
    somebody asks for a snapshot. *)

type kind = Counter | Gauge | Histogram

type histogram_snapshot = {
  count : int;  (** Number of observations. *)
  sum : float;  (** Sum of observations. *)
  min : float;  (** Smallest observation; 0 when empty. *)
  max : float;  (** Largest observation; 0 when empty. *)
  quantiles : (float * float) list;
      (** [(q, estimate)] for q in {0.5, 0.9, 0.99}, estimated from the
          log-linear buckets (relative error bounded by the bucket width,
          ~3%). *)
  buckets : (float * int) list;
      (** Cumulative counts by upper bound, Prometheus [le] semantics:
          [(ub, n)] means [n] observations were [<= ub]. Only the occupied
          buckets appear; the total count is the [+Inf] bucket. *)
}

type value =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of histogram_snapshot

type collector = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  c_kind : kind;
  collect : unit -> value;
  reset : unit -> unit;
}

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  kind : kind;
  value : value;
}

type t

val create : unit -> t
(** Fresh empty registry (tests; isolated subsystems). *)

val default : t
(** The process-wide registry every instrument uses unless told
    otherwise. *)

val register : t -> collector -> unit
(** Adds a collector.
    @raise Invalid_argument on an invalid metric or label name (names must
    match [[a-zA-Z_][a-zA-Z0-9_]*]), on a duplicate (name, labels) pair, or
    when the name is already registered with a different kind. *)

val snapshot : t -> sample list
(** Current values of every collector, in creation order. *)

val reset : t -> unit
(** Zero every registered instrument (counts, sums, gauge values). The
    collectors stay registered. *)

val value : t -> ?labels:(string * string) list -> string -> float option
(** Scalar read-back by name (+ exact label set): the current value of a
    counter or gauge, [None] for histograms and unknown names. *)

val kind_to_string : kind -> string
