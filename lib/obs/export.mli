(** Exporters: render a registry snapshot for humans (text), machines
    (JSON), or a Prometheus scrape endpoint (text exposition format). All
    three take the same [Registry.sample list] from {!Registry.snapshot},
    so they can be applied to any registry at any time.

    Output is canonical: every exporter first sorts the samples by
    (name, labels), so the bytes depend only on the sample set, never on
    registration or hash-table insertion order — the property the golden
    diffs and the [nondet-export] analysis rule (DESIGN.md §10) lean on. *)

val to_text : Registry.sample list -> string
(** Human-oriented table: one line per metric, histograms summarised as
    count/sum/min/quantiles/max. *)

val to_json : Registry.sample list -> string
(** One JSON document: [{"metrics": [{"name": ..., "kind": ..., "help":
    ..., "labels": {...}, "value": ...}]}]. Histogram values are objects
    with count/sum/min/max/p50/p90/p99. Non-finite numbers render as
    [null] (JSON has no Inf/NaN). *)

val to_prometheus : Registry.sample list -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers once per
    metric name, histograms as cumulative [_bucket{le=...}] series plus
    [_sum] and [_count]. *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes (without the
    quotes themselves). *)

val validate_json : string -> (unit, string) result
(** Strict RFC 8259 well-formedness check (objects, arrays, strings with
    escapes, numbers, literals; the whole input must be one value).
    [Error msg] carries a byte offset. Used by [respctl stats --validate]
    and the exporter tests to prove the JSON export parses. *)

val prometheus_page : ?registry:Registry.t -> unit -> string
(** [to_prometheus] of a fresh snapshot of [registry] (default
    {!Registry.default}): the single rendering used by both the
    [respctl stats --metrics prom] CLI and respctld's [GET /metrics]
    scrape endpoint, so their bytes are identical by construction. *)
