module R = Registry

(* --------------------------- canonical order -------------------------- *)

(* Every exporter sorts its samples by (name, labels) first, so the output
   bytes depend only on the sample set — never on registration or hash
   insertion order. Sorting also groups a family's label children under one
   HELP/TYPE header in the Prometheus rendering. *)

let compare_labels a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (k1, v1) :: t1, (k2, v2) :: t2 ->
        let c = String.compare k1 k2 in
        if c <> 0 then c
        else
          let c = String.compare v1 v2 in
          if c <> 0 then c else go t1 t2
  in
  go a b

let by_series a b =
  let c = String.compare a.R.name b.R.name in
  if c <> 0 then c else compare_labels a.R.labels b.R.labels

let sort_samples samples = List.stable_sort by_series samples

(* ------------------------------ escaping ------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Prometheus label values escape backslash, quote and newline only. *)
let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ---------------------------- number rendering ------------------------ *)

(* Integral values print without an exponent or trailing zeros as long as
   they are exactly representable; %.17g round-trips the rest. *)
let exact_int_limit = 1e15

let render_float v =
  if Float.is_integer v && Float.abs v < exact_int_limit then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let json_float v = if Float.is_finite v then render_float v else "null"

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else render_float v

(* ------------------------------- text --------------------------------- *)

let render_labels escape = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) labels)
      ^ "}"

let text_value = function
  | R.Counter_v v | R.Gauge_v v -> render_float v
  | R.Histogram_v h ->
      let qs =
        List.map
          (fun (q, v) ->
            Printf.sprintf "p%.0f=%s" (100.0 *. q) (render_float v))
          h.R.quantiles
      in
      let items =
        Printf.sprintf "count=%d" h.R.count
        :: Printf.sprintf "sum=%s" (render_float h.R.sum)
        :: Printf.sprintf "min=%s" (render_float h.R.min)
        :: List.rev_append (List.rev qs) [ Printf.sprintf "max=%s" (render_float h.R.max) ]
      in
      String.concat " " items

let to_text samples =
  let samples = sort_samples samples in
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-9s %-48s %s\n"
           (R.kind_to_string s.R.kind)
           (s.R.name ^ render_labels prom_escape s.R.labels)
           (text_value s.R.value)))
    samples;
  Buffer.contents buf

(* ------------------------------- JSON --------------------------------- *)

let json_value = function
  | R.Counter_v v | R.Gauge_v v -> json_float v
  | R.Histogram_v h ->
      let qs =
        List.map
          (fun (q, v) ->
            Printf.sprintf "\"p%.0f\":%s" (100.0 *. q) (json_float v))
          h.R.quantiles
      in
      let fields =
        Printf.sprintf "\"count\":%d" h.R.count
        :: Printf.sprintf "\"sum\":%s" (json_float h.R.sum)
        :: Printf.sprintf "\"min\":%s" (json_float h.R.min)
        :: Printf.sprintf "\"max\":%s" (json_float h.R.max)
        :: qs
      in
      "{" ^ String.concat "," fields ^ "}"

let to_json samples =
  let samples = sort_samples samples in
  let metric s =
    let labels =
      String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           s.R.labels)
    in
    Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"help\":\"%s\",\"labels\":{%s},\"value\":%s}"
      (json_escape s.R.name)
      (R.kind_to_string s.R.kind)
      (json_escape s.R.help) labels (json_value s.R.value)
  in
  "{\"metrics\":[\n" ^ String.concat ",\n" (List.map metric samples) ^ "\n]}\n"

(* ---------------------------- Prometheus ------------------------------ *)

let to_prometheus samples =
  let samples = sort_samples samples in
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen s.R.name) then begin
        Hashtbl.replace seen s.R.name ();
        if s.R.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" s.R.name s.R.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.R.name (R.kind_to_string s.R.kind))
      end;
      let labels = render_labels prom_escape s.R.labels in
      match s.R.value with
      | R.Counter_v v | R.Gauge_v v ->
          Buffer.add_string buf (Printf.sprintf "%s%s %s\n" s.R.name labels (prom_float v))
      | R.Histogram_v h ->
          let with_le le =
            render_labels prom_escape (List.rev_append (List.rev s.R.labels) [ ("le", le) ])
          in
          List.iter
            (fun (ub, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.R.name (with_le (prom_float ub)) cum))
            h.R.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" s.R.name (with_le "+Inf") h.R.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.R.name labels (prom_float h.R.sum));
          Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" s.R.name labels h.R.count))
    samples;
  Buffer.contents buf

(* --------------------------- JSON validation --------------------------- *)

exception Bad of int * string

let validate_json s =
  let n = String.length s in
  let peek i = if i < n then Some s.[i] else None in
  let fail i msg = raise (Bad (i, msg)) in
  let rec skip_ws i =
    match peek i with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (i + 1)
    | _ -> i
  in
  let expect i c =
    match peek i with
    | Some x when x = c -> i + 1
    | _ -> fail i (Printf.sprintf "expected %C" c)
  in
  let rec value i =
    let i = skip_ws i in
    match peek i with
    | None -> fail i "unexpected end of input"
    | Some '{' -> obj (skip_ws (i + 1))
    | Some '[' -> arr (skip_ws (i + 1))
    | Some '"' -> string_lit (i + 1)
    | Some 't' -> keyword i "true"
    | Some 'f' -> keyword i "false"
    | Some 'n' -> keyword i "null"
    | Some ('-' | '0' .. '9') -> number i
    | Some c -> fail i (Printf.sprintf "unexpected %C" c)
  and keyword i word =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l else fail i ("expected " ^ word)
  and obj i =
    match peek i with
    | Some '}' -> i + 1
    | _ ->
        let rec members i =
          let i = skip_ws i in
          let i = expect i '"' in
          let i = string_lit i in
          let i = expect (skip_ws i) ':' in
          let i = skip_ws (value i) in
          match peek i with
          | Some ',' -> members (i + 1)
          | Some '}' -> i + 1
          | _ -> fail i "expected ',' or '}'"
        in
        members i
  and arr i =
    match peek i with
    | Some ']' -> i + 1
    | _ ->
        let rec elements i =
          let i = skip_ws (value i) in
          match peek i with
          | Some ',' -> elements (i + 1)
          | Some ']' -> i + 1
          | _ -> fail i "expected ',' or ']'"
        in
        elements i
  and string_lit i =
    (* [i] is just past the opening quote. *)
    match peek i with
    | None -> fail i "unterminated string"
    | Some '"' -> i + 1
    | Some '\\' -> (
        match peek (i + 1) with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> string_lit (i + 2)
        | Some 'u' ->
            let hex j =
              match peek j with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
              | _ -> fail j "expected hex digit"
            in
            hex (i + 2);
            hex (i + 3);
            hex (i + 4);
            hex (i + 5);
            string_lit (i + 6)
        | _ -> fail (i + 1) "invalid escape")
    | Some c when Char.code c < 0x20 -> fail i "control character in string"
    | Some _ -> string_lit (i + 1)
  and number i =
    let i = match peek i with Some '-' -> i + 1 | _ -> i in
    let digits j =
      let rec go j =
        match peek j with Some '0' .. '9' -> go (j + 1) | _ -> j
      in
      let j' = go j in
      if j' = j then fail j "expected digit" else j'
    in
    let i =
      match peek i with
      | Some '0' -> i + 1
      | Some '1' .. '9' -> digits i
      | _ -> fail i "expected digit"
    in
    let i = match peek i with Some '.' -> digits (i + 1) | _ -> i in
    match peek i with
    | Some ('e' | 'E') ->
        let j = match peek (i + 1) with Some ('+' | '-') -> i + 2 | _ -> i + 1 in
        digits j
    | _ -> i
  in
  match skip_ws (value 0) with
  | i when i = n -> Ok ()
  | i -> Error (Printf.sprintf "trailing garbage at byte %d" i)
  | exception Bad (i, msg) -> Error (Printf.sprintf "%s at byte %d" msg i)

(* The one Prometheus page: respctl's [stats --metrics prom] and
   respctld's [GET /metrics] both render through here, so the two
   surfaces can never drift apart (pinned by a regression test). *)
let prometheus_page ?(registry = Registry.default) () = to_prometheus (Registry.snapshot registry)
