let default_source = Unix.gettimeofday

let source = ref default_source

(* Highest time seen so far: a source stepping backwards must not make a
   span duration negative. *)
let floor_s = ref neg_infinity

let set_source f =
  source := f;
  floor_s := neg_infinity

let reset_source () = set_source default_source

let now_s () =
  let t = !source () in
  if t > !floor_s then floor_s := t;
  !floor_s
