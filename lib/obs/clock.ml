let default_source = Unix.gettimeofday

let source = Atomic.make default_source

(* Highest time seen so far: a source stepping backwards must not make a
   span duration negative. Maintained with a CAS loop so concurrent reads
   from worker domains only ever move the floor forwards. *)
let floor_s = Atomic.make neg_infinity

let set_source f =
  Atomic.set source f;
  Atomic.set floor_s neg_infinity

let reset_source () = set_source default_source

let rec bump_floor t =
  let cur = Atomic.get floor_s in
  if t <= cur then cur
  else if Atomic.compare_and_set floor_s cur t then t
  else bump_floor t

let now_s () = bump_floor (Atomic.get source ())
