(** Instruments: counters, gauges, log-linear histograms, and labelled
    families.

    Every mutating operation is a no-op while {!Control.enabled} is false —
    one load-and-branch — so instrumentation can live permanently on hot
    paths. Creation registers the instrument with a {!Registry} (the
    process-wide {!Registry.default} unless overridden), which is where
    exporters read the values back. *)

module Counter : sig
  (** Monotonically non-decreasing count (events, pivots, transitions). *)

  type t

  val create :
    ?registry:Registry.t -> ?labels:(string * string) list -> help:string -> string -> t
  (** [create ~help name] registers a counter. Raises [Invalid_argument] on
      a bad or duplicate name (see {!Registry.register}). *)

  val incr : t -> unit

  val add : t -> float -> unit
  (** Raises [Invalid_argument] on a negative or NaN increment (when
      enabled; disabled calls are unchecked no-ops). *)

  val add_int : t -> int -> unit
  val value : t -> float
end

module Gauge : sig
  (** Instantaneous level that can move both ways (watts, active links). *)

  type t

  val create :
    ?registry:Registry.t -> ?labels:(string * string) list -> help:string -> string -> t

  val set : t -> float -> unit
  (** Raises [Invalid_argument] on NaN (when enabled). *)

  val set_int : t -> int -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  (** Log-linear histogram: 32 linear sub-buckets per binary octave, so any
      estimate drawn from a bucket is within ~3% relative error of the true
      observation. Tracks exact count/sum/min/max on the side; p50/p90/p99
      come from a cumulative walk over the buckets. Non-positive and
      non-finite observations are counted (in [count]/[sum]/[min]/[max])
      but land in overflow bins rather than a log bucket. *)

  type t

  val create :
    ?registry:Registry.t -> ?labels:(string * string) list -> help:string -> string -> t

  val observe : t -> float -> unit
  (** Raises [Invalid_argument] on NaN (when enabled). *)

  val time : t -> (unit -> 'a) -> 'a
  (** [time h f] runs [f] and observes its wall-clock duration ({!Clock}),
      exception-safely. When disabled, runs [f] with no clock reads. *)

  val count : t -> int
  val sum : t -> float

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0, 1]; 0 when empty. Estimates clamp to
      the exact observed [min]/[max]. Raises [Invalid_argument] on [q]
      outside [0, 1]. *)

  val snapshot : t -> Registry.histogram_snapshot
end

module Family : sig
  (** A labelled family: one metric name, one child instrument per distinct
      label-value vector (e.g. [netsim_events_total{type="probe"}]).
      Children are created and registered on first use and cached. *)

  type 'a t

  val counter :
    ?registry:Registry.t -> help:string -> label_names:string list -> string -> Counter.t t

  val gauge :
    ?registry:Registry.t -> help:string -> label_names:string list -> string -> Gauge.t t

  val histogram :
    ?registry:Registry.t -> help:string -> label_names:string list -> string -> Histogram.t t

  val labels : 'a t -> string list -> 'a
  (** [labels fam values] is the child for [values] (positionally matching
      [label_names]), created on first use. Raises [Invalid_argument] on an
      arity mismatch. *)
end
