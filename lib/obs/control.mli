(** Master switch for the observability subsystem.

    Every mutation in {!Metric} and every span in {!Span} is gated on this
    flag, so an instrumented hot path costs one load-and-branch when
    observability is off. The flag starts from the [RESPONSE_OBS]
    environment variable ([RESPONSE_OBS=1] enables collection at startup);
    front ends such as [respctl stats] or [bench --json] flip it
    programmatically. *)

val enabled : unit -> bool
(** Current state of the switch. *)

val set_enabled : bool -> unit
(** Turn collection on or off at runtime. Metrics registered while the
    switch was off exist (with zero values); turning the switch on simply
    resumes recording into them. *)
