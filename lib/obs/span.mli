(** Nested span timers: a lightweight trace tree over {!Clock}.

    [with_ "precompute" f] times [f]; spans opened inside nest as children,
    so a run leaves behind a forest of timed call trees (the last
    {!max_roots} top-level spans are retained). Every completed span also
    feeds the [obs_span_seconds{span="<name>"}] histogram family, so the
    registry carries duration distributions per span name without the
    tree. When {!Control.enabled} is false, [with_] runs its thunk
    directly and records nothing. *)

type node = {
  name : string;
  start_s : float;  (** {!Clock} timestamp at entry. *)
  dur_s : float;  (** Wall-clock duration in seconds. *)
  children : node list;  (** Completed sub-spans, oldest first. *)
}

val with_ : string -> (unit -> 'a) -> 'a
(** Time a thunk as a span. Exception-safe: the span closes (and records)
    even when the thunk raises. *)

val timed : string -> (unit -> 'a) -> 'a * float
(** Like {!with_} but also returns the measured duration. Unlike [with_],
    the duration is measured (and returned) even when observability is
    disabled — only the recording is skipped — so callers like the bench
    harness can use one timing code path regardless of the switch. *)

val roots : unit -> node list
(** Completed top-level spans, oldest first. *)

val clear : unit -> unit
(** Drop the recorded forest (and any dangling open frames). *)

val max_roots : int
(** Retention bound on completed top-level spans; beyond it the oldest root
    is dropped. *)

val to_text : unit -> string
(** Render the forest, one line per span, children indented under their
    parent. *)
