(* An [Atomic.t] rather than a [ref]: the switch is read from every
   instrumented hot path, including code running inside Eutil.Pool worker
   domains, so the load must be a data-race-free publication point. *)
let flag = Atomic.make (Sys.getenv_opt "RESPONSE_OBS" = Some "1")

let enabled () = Atomic.get flag

let set_enabled b = Atomic.set flag b
