let flag = ref (Sys.getenv_opt "RESPONSE_OBS" = Some "1")

let enabled () = !flag

let set_enabled b = flag := b
