type kind = Counter | Gauge | Histogram

type histogram_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  quantiles : (float * float) list;
  buckets : (float * int) list;
}

type value =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of histogram_snapshot

type collector = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  c_kind : kind;
  collect : unit -> value;
  reset : unit -> unit;
}

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  kind : kind;
  value : value;
}

type t = {
  lock : Mutex.t;  (* guards all three fields; lock order: registry before instrument *)
  mutable collectors : collector list;  (* reversed: newest first *)
  keys : (string, unit) Hashtbl.t;  (* name + labels, for duplicate detection *)
  kinds : (string, kind) Hashtbl.t;  (* name -> kind, for consistency *)
}

let create () =
  { lock = Mutex.create (); collectors = []; keys = Hashtbl.create 64; kinds = Hashtbl.create 64 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let default = create ()

let valid_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

(* The separators cannot appear in a valid label name, and '\x01' cannot
   collide with a quoted value boundary, so the key is injective. *)
let key name labels =
  name ^ String.concat "" (List.map (fun (k, v) -> "\x00" ^ k ^ "\x01" ^ v) labels)

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let register t c =
  if not (valid_name c.c_name) then
    invalid_arg (Printf.sprintf "Obs.Registry.register: invalid metric name %S" c.c_name);
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg
          (Printf.sprintf "Obs.Registry.register: invalid label name %S on %s" k c.c_name))
    c.c_labels;
  locked t (fun () ->
      (match Hashtbl.find_opt t.kinds c.c_name with
      | Some k when k <> c.c_kind ->
          invalid_arg
            (Printf.sprintf "Obs.Registry.register: %s already registered as a %s" c.c_name
               (kind_to_string k))
      | _ -> ());
      let k = key c.c_name c.c_labels in
      if Hashtbl.mem t.keys k then
        invalid_arg
          (Printf.sprintf "Obs.Registry.register: duplicate metric %s (same label set)" c.c_name);
      Hashtbl.replace t.keys k ();
      Hashtbl.replace t.kinds c.c_name c.c_kind;
      t.collectors <- c :: t.collectors)

let snapshot t =
  let collectors = locked t (fun () -> t.collectors) in
  List.rev_map
    (fun c ->
      {
        name = c.c_name;
        help = c.c_help;
        labels = c.c_labels;
        kind = c.c_kind;
        value = c.collect ();
      })
    collectors

let reset t = List.iter (fun c -> c.reset ()) (locked t (fun () -> t.collectors))

let value t ?(labels = []) name =
  let k = key name labels in
  let rec find = function
    | [] -> None
    | c :: rest ->
        if key c.c_name c.c_labels = k then
          match c.collect () with
          | Counter_v v | Gauge_v v -> Some v
          | Histogram_v _ -> None
        else find rest
  in
  find (locked t (fun () -> t.collectors))
