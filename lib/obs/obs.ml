(* Facade of the observability subsystem: re-exports the submodules under
   one [Obs] namespace and offers the two toggles everything else hangs
   off. See DESIGN.md section 8 for the architecture. *)

module Control = Control
module Clock = Clock
module Registry = Registry
module Metric = Metric
module Span = Span
module Export = Export

let enabled = Control.enabled

let set_enabled = Control.set_enabled
