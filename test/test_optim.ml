(* Tests for the energy-aware routing optimisation layer: feasibility
   routing, the power-down greedy, the GreenTE and ElasticTree heuristics,
   and cross-validation against the exact MILP. *)

module G = Topo.Graph
module State = Topo.State
module Path = Topo.Path
module Matrix = Traffic.Matrix

let arc_between g i j = Option.get (G.find_arc g i j)

(* -------------------- Feasible -------------------- *)

let test_place_respects_capacity () =
  let g = Topo.Example.line 3 in
  (* 1G links; two 0.7G flows on the same pair direction cannot share. *)
  let f = Optim.Feasible.create g in
  (match Optim.Feasible.place f 0 2 0.7e9 with
  | Some p -> Alcotest.(check int) "routed" 2 (Path.hops p)
  | None -> Alcotest.fail "first flow must fit");
  Alcotest.(check bool) "second flow rejected" true (Optim.Feasible.place f 1 2 0.7e9 = None);
  (* A smaller one still fits. *)
  Alcotest.(check bool) "small flow fits" true (Optim.Feasible.place f 1 2 0.2e9 <> None)

let test_place_prefers_uncongested () =
  (* Flow 1->3 has two equal-latency choices, 1-0-3 and 1-2-3. Loading link
     1-0 to 90 % first makes the congestion-aware weight prefer 1-2-3. *)
  let g = Topo.Example.square_with_diagonal () in
  let f = Optim.Feasible.create g in
  let l10 = (G.arc g (arc_between g 1 0)).G.link in
  ignore (Optim.Feasible.place f 1 0 0.9e9);
  match Optim.Feasible.place f 1 3 0.05e9 with
  | Some p -> Alcotest.(check bool) "detour" false (Path.uses_link g p l10)
  | None -> Alcotest.fail "should fit"

let test_margin () =
  let g = Topo.Example.line 2 in
  let f = Optim.Feasible.create ~margin:0.5 g in
  Alcotest.(check bool) "above margin rejected" true (Optim.Feasible.place f 0 1 0.6e9 = None);
  Alcotest.(check bool) "below margin ok" true (Optim.Feasible.place f 0 1 0.4e9 <> None)

let test_remove_restores () =
  let g = Topo.Example.line 2 in
  let f = Optim.Feasible.create g in
  let a01 = arc_between g 0 1 in
  ignore (Optim.Feasible.place f 0 1 0.8e9);
  Alcotest.(check (float 1.0)) "loaded" 0.8e9 (Optim.Feasible.load f a01);
  ignore (Optim.Feasible.remove f 0 1);
  Alcotest.(check (float 1e-6)) "restored" 0.0 (Optim.Feasible.load f a01);
  Alcotest.(check bool) "refit" true (Optim.Feasible.place f 0 1 0.9e9 <> None)

let test_snapshot_restore () =
  let g = Topo.Example.square_with_diagonal () in
  let f = Optim.Feasible.create g in
  ignore (Optim.Feasible.place f 0 2 0.5e9);
  let snap = Optim.Feasible.snapshot f in
  ignore (Optim.Feasible.place f 1 3 0.5e9);
  ignore (Optim.Feasible.remove f 0 2);
  Optim.Feasible.restore f snap;
  Alcotest.(check bool) "0->2 back" true (Optim.Feasible.path_of f 0 2 <> None);
  Alcotest.(check bool) "1->3 gone" true (Optim.Feasible.path_of f 1 3 = None)

let test_route_matrix () =
  let g = Topo.Geant.make () in
  let tm = Traffic.Gravity.make g ~total:(Eutil.Units.bps 20e9) () in
  let f = Optim.Feasible.create g in
  Alcotest.(check bool) "moderate load feasible" true (Optim.Feasible.route_matrix f tm);
  Alcotest.(check bool) "utilisation sane" true (Optim.Feasible.max_utilization f <= 1.0 +. 1e-9)

let test_route_matrix_infeasible () =
  let g = Topo.Example.line 2 in
  let tm = Matrix.of_flows 2 [ (0, 1, 2e9) ] in
  let f = Optim.Feasible.create g in
  Alcotest.(check bool) "over capacity" false (Optim.Feasible.route_matrix f tm)

(* -------------------- Minimal (power-down greedy) -------------------- *)

let eps_matrix g =
  let nodes = G.traffic_nodes g in
  let pairs =
    Array.to_list nodes
    |> List.concat_map (fun o ->
           Array.to_list nodes |> List.filter_map (fun d -> if o <> d then Some (o, d) else None))
  in
  Matrix.uniform (G.node_count g) ~pairs ~demand:1.0

let test_greedy_sheds_diagonal () =
  (* Square with diagonal and epsilon demands: a spanning tree suffices, so
     the greedy must power at most 3 of the 5 links. *)
  let g = Topo.Example.square_with_diagonal () in
  let power = Power.Model.cisco12000 g in
  match Optim.Minimal.power_down g power (eps_matrix g) with
  | Some r ->
      Alcotest.(check int) "spanning tree" 3 (State.active_links r.Optim.Minimal.state);
      Alcotest.(check bool) "power below full" true (r.Optim.Minimal.power_percent < 100.0)
  | None -> Alcotest.fail "feasible"

let test_greedy_keeps_needed_capacity () =
  (* Two 0.8G flows 0->2: tree is not enough; diagonal plus detour needed. *)
  let g = Topo.Example.square_with_diagonal () in
  let power = Power.Model.cisco12000 g in
  let tm = Matrix.of_flows 4 [ (0, 2, 0.8e9); (1, 3, 0.2e9); (3, 1, 0.8e9) ] in
  match Optim.Minimal.power_down g power tm with
  | Some r ->
      (* The returned configuration must actually carry the matrix. *)
      Alcotest.(check bool) "self-consistent" true
        (Optim.Minimal.evaluate g power tm r.Optim.Minimal.state <> None)
  | None -> Alcotest.fail "feasible"

let test_greedy_infeasible_demand () =
  let g = Topo.Example.line 2 in
  let power = Power.Model.cisco12000 g in
  let tm = Matrix.of_flows 2 [ (0, 1, 5e9) ] in
  Alcotest.(check bool) "infeasible" true (Optim.Minimal.power_down g power tm = None)

let test_greedy_deterministic () =
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let tm = Traffic.Gravity.make g ~total:(Eutil.Units.bps 30e9) () in
  let a = Option.get (Optim.Minimal.power_down g power tm) in
  let b = Option.get (Optim.Minimal.power_down g power tm) in
  Alcotest.(check bool) "same configuration" true
    (State.equal a.Optim.Minimal.state b.Optim.Minimal.state)

let test_greedy_geant_savings () =
  (* Sanity on the headline claim: at low demand on a redundant ISP topology
     the greedy sheds a substantial fraction of link power. *)
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let tm = Traffic.Gravity.make g ~total:(Eutil.Units.bps 10e9) () in
  let r = Option.get (Optim.Minimal.power_down g power tm) in
  Alcotest.(check bool)
    (Printf.sprintf "savings > 10%% (got %.1f%%)" (100.0 -. r.Optim.Minimal.power_percent))
    true
    (r.Optim.Minimal.power_percent < 90.0);
  (* All 23 PoPs originate traffic, so every router stays powered. *)
  Alcotest.(check int) "routers on" 23 (State.active_nodes r.Optim.Minimal.state)

let test_pinned_links_stay_on () =
  let g = Topo.Example.square_with_diagonal () in
  let power = Power.Model.cisco12000 g in
  let diag = (G.arc g (arc_between g 0 2)).G.link in
  let r =
    Option.get (Optim.Minimal.power_down ~pinned:(fun l -> l = diag) g power (eps_matrix g))
  in
  Alcotest.(check bool) "pinned link active" true (State.link_on r.Optim.Minimal.state diag)

let test_greedy_powers_off_routers () =
  (* Fat-tree with traffic only inside one edge switch: all aggregation and
     core switches can power off entirely. *)
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  let power = Power.Model.commodity_dc g in
  let h0 = Topo.Fattree.host ft 0 and h1 = Topo.Fattree.host ft 1 in
  let tm = Matrix.of_flows (G.node_count g) [ (h0, h1, 1e8) ] in
  let r = Option.get (Optim.Minimal.power_down g power tm) in
  Array.iter
    (fun c -> Alcotest.(check bool) "core off" false (State.node_on r.Optim.Minimal.state c))
    ft.Topo.Fattree.cores;
  Array.iter
    (fun a -> Alcotest.(check bool) "agg off" false (State.node_on r.Optim.Minimal.state a))
    ft.Topo.Fattree.aggs

(* -------------------- GreenTE heuristic -------------------- *)

let test_greente_feasible_and_saves () =
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let tm = Traffic.Gravity.make g ~total:(Eutil.Units.bps 20e9) () in
  match Optim.Greente.minimal_subset g power tm with
  | Some r ->
      Alcotest.(check bool) "saves energy" true (r.Optim.Minimal.power_percent < 100.0);
      Alcotest.(check bool) "configuration carries demand" true
        (Optim.Minimal.evaluate g power tm r.Optim.Minimal.state <> None)
  | None -> Alcotest.fail "feasible"

let test_greente_no_better_than_greedy () =
  (* Restricting to k shortest paths cannot find configurations the
     unrestricted greedy would reject as infeasible; typically it saves less
     (or equal). Allow a small tolerance for tie-breaking noise. *)
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let tm = Traffic.Gravity.make g ~total:(Eutil.Units.bps 20e9) () in
  let full = Option.get (Optim.Minimal.power_down g power tm) in
  let ksp = Option.get (Optim.Greente.minimal_subset g power tm) in
  Alcotest.(check bool)
    (Printf.sprintf "greente %.1f%% >= greedy %.1f%% - 5" ksp.Optim.Minimal.power_percent
       full.Optim.Minimal.power_percent)
    true
    (ksp.Optim.Minimal.power_percent >= full.Optim.Minimal.power_percent -. 5.0)

(* -------------------- ElasticTree heuristic -------------------- *)

let test_elastic_near_traffic () =
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  let power = Power.Model.commodity_dc g in
  (* Low intra-pod traffic: one aggregation switch per pod, cores off or 1. *)
  let tm = Traffic.Sine.fattree ft Traffic.Sine.Near ~peak:(Eutil.Units.bps 2e8) ~period:(Eutil.Units.seconds 100.0) 50.0 in
  match Optim.Elastic.minimal_subset ft power tm with
  | Some r ->
      let active_aggs =
        Array.fold_left
          (fun acc a -> if State.node_on r.Optim.Minimal.state a then acc + 1 else acc)
          0 ft.Topo.Fattree.aggs
      in
      Alcotest.(check int) "one agg per pod" 4 active_aggs;
      let active_cores =
        Array.fold_left
          (fun acc c -> if State.node_on r.Optim.Minimal.state c then acc + 1 else acc)
          0 ft.Topo.Fattree.cores
      in
      Alcotest.(check int) "no cores needed" 0 active_cores
  | None -> Alcotest.fail "feasible"

let test_elastic_far_traffic_uses_core () =
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  let power = Power.Model.commodity_dc g in
  let tm = Traffic.Sine.fattree ft Traffic.Sine.Far ~peak:(Eutil.Units.bps 5e8) ~period:(Eutil.Units.seconds 100.0) 50.0 in
  match Optim.Elastic.minimal_subset ft power tm with
  | Some r ->
      let active_cores =
        Array.fold_left
          (fun acc c -> if State.node_on r.Optim.Minimal.state c then acc + 1 else acc)
          0 ft.Topo.Fattree.cores
      in
      Alcotest.(check bool) "cores active" true (active_cores >= 1);
      Alcotest.(check bool) "not all cores" true (active_cores < 4);
      Alcotest.(check bool) "carries demand" true
        (Optim.Minimal.evaluate g power tm r.Optim.Minimal.state <> None)
  | None -> Alcotest.fail "feasible"

let test_elastic_tracks_load () =
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  let power = Power.Model.commodity_dc g in
  let at peak =
    let tm = Traffic.Sine.fattree ft Traffic.Sine.Far ~peak ~period:(Eutil.Units.seconds 100.0) 50.0 in
    (Option.get (Optim.Elastic.minimal_subset ft power tm)).Optim.Minimal.power_percent
  in
  let low = at (Eutil.Units.bps 1e8) and high = at (Eutil.Units.bps 9e8) in
  Alcotest.(check bool) (Printf.sprintf "power scales (%.0f%% < %.0f%%)" low high) true (low < high)

(* -------------------- Exact MILP cross-validation -------------------- *)

let test_formulation_triangle () =
  (* One tiny flow 0->1 on a triangle: optimum powers routers 0,1 and the
     direct link only. *)
  let g = Topo.Example.triangle () in
  let power = Power.Model.cisco12000 g in
  let tm = Matrix.of_flows 3 [ (0, 1, 1.0) ] in
  match Optim.Formulation.solve g power tm with
  | `Optimal e ->
      Alcotest.(check int) "one link" 1 (State.active_links e.Optim.Formulation.state);
      Alcotest.(check bool) "third router off" false (State.node_on e.Optim.Formulation.state 2);
      let p = Hashtbl.find e.Optim.Formulation.routing (0, 1) in (* lint: allow hashtbl-find *)
      Alcotest.(check int) "direct" 1 (Path.hops p);
      (* 2 chassis + the direct link's port/amplifier power. *)
      let link = (G.arc g (arc_between g 0 1)).G.link in
      Alcotest.(check (float 1e-6)) "power"
        ((2.0 *. 600.0) +. Eutil.Units.to_float (Power.Model.link_power power g link))
        e.Optim.Formulation.power_watts
  | _ -> Alcotest.fail "expected optimal"

let test_formulation_capacity_forces_split () =
  (* Square: two 0.8G flows 0->2 and 1->3. Sharing the diagonal (1-0-2-3 for
     the second flow) would need only 3 links but overloads the diagonal at
     1.6G > 1G; the optimum is still 3 links but with disjoint loads. *)
  let g = Topo.Example.square_with_diagonal () in
  let power = Power.Model.cisco12000 g in
  let tm = Matrix.of_flows 4 [ (0, 2, 0.8e9); (1, 3, 0.8e9) ] in
  match Optim.Formulation.solve g power tm with
  | `Optimal e ->
      Alcotest.(check int) "three links" 3 (State.active_links e.Optim.Formulation.state);
      (* Verify per-arc loads respect capacity. *)
      let loads = Array.make (G.arc_count g) 0.0 in
      Hashtbl.iter
        (fun (o, d) p ->
          Array.iter
            (fun a -> loads.(a) <- loads.(a) +. Matrix.get tm o d)
            p.Path.arcs)
        e.Optim.Formulation.routing;
      Array.iteri
        (fun a load ->
          Alcotest.(check bool) "capacity respected" true (load <= (G.arc g a).G.capacity +. 1.0))
        loads
  | _ -> Alcotest.fail "expected optimal"

let test_greedy_matches_exact_on_small_instances () =
  (* Cross-validation of the CPLEX substitute (DESIGN.md): on small random
     instances the greedy configuration power is close to the MILP optimum
     and never below it. *)
  let checked = ref 0 in
  for seed = 1 to 6 do
    let rng = Eutil.Prng.create seed in
    let b = G.Builder.create () in
    let n = 5 in
    let nodes = Array.init n (fun i -> G.Builder.add_node b (Printf.sprintf "v%d" i)) in
    for i = 1 to n - 1 do
      let j = Eutil.Prng.int rng i in
      ignore (G.Builder.add_link b ~capacity:1e9 ~latency:1e-3 nodes.(i) nodes.(j))
    done;
    for _ = 1 to 3 do
      let i = Eutil.Prng.int rng n and j = Eutil.Prng.int rng n in
      if i <> j then
        try ignore (G.Builder.add_link b ~capacity:1e9 ~latency:1e-3 nodes.(i) nodes.(j))
        with Invalid_argument _ -> ()
    done;
    let g = G.Builder.build b in
    let power = Power.Model.cisco12000 g in
    let tm =
      Matrix.of_flows n
        [ (0, n - 1, 0.3e9); (1, n - 2, 0.2e9) ]
    in
    match (Optim.Formulation.solve g power tm, Optim.Minimal.power_down g power tm) with
    | `Optimal exact, Some greedy ->
        incr checked;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: greedy %.0fW >= exact %.0fW" seed
             greedy.Optim.Minimal.power_watts exact.Optim.Formulation.power_watts)
          true
          (greedy.Optim.Minimal.power_watts >= exact.Optim.Formulation.power_watts -. 1e-6);
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: greedy within 25%% of optimum" seed)
          true
          (greedy.Optim.Minimal.power_watts <= 1.25 *. exact.Optim.Formulation.power_watts)
    | `Infeasible, None -> ()
    | `Limit, _ -> () (* node budget exhausted: skip, do not fail *)
    | `Infeasible, Some _ -> Alcotest.fail "greedy found a config the MILP calls infeasible"
    | `Optimal _, None -> Alcotest.fail "MILP feasible but greedy failed"
  done;
  Alcotest.(check bool) "validated at least 3 instances" true (!checked >= 3)

let test_formulation_delay_bound () =
  (* Square with heavy-latency direct link excluded by a tight delay bound.
     Direct 0-2 has latency 1 ms; force bound below 2 ms so the 2-hop detour
     (2 ms) is out, direct is in. *)
  let g = Topo.Example.square_with_diagonal () in
  let power = Power.Model.cisco12000 g in
  let tm = Matrix.of_flows 4 [ (0, 2, 1.0) ] in
  match
    Optim.Formulation.solve
      ~delay_bound:(fun od -> if od = (0, 2) then Some 1.5e-3 else None)
      g power tm
  with
  | `Optimal e ->
      let p = Hashtbl.find e.Optim.Formulation.routing (0, 2) in (* lint: allow hashtbl-find *)
      Alcotest.(check int) "direct path under bound" 1 (Path.hops p)
  | _ -> Alcotest.fail "expected optimal"

let test_formulation_pinned () =
  let g = Topo.Example.triangle () in
  let power = Power.Model.cisco12000 g in
  let tm = Matrix.of_flows 3 [ (0, 1, 1.0) ] in
  (* Pin link 1 (n1-n2): it must appear active even though unused. *)
  match Optim.Formulation.solve ~pin_link:(fun l -> l = 1) g power tm with
  | `Optimal e -> Alcotest.(check bool) "pinned on" true (State.link_on e.Optim.Formulation.state 1)
  | _ -> Alcotest.fail "expected optimal"

(* Property: the greedy result's routing is consistent — every flow of the
   matrix has a path over active links with total load within capacity. *)
let prop_greedy_consistent =
  QCheck.Test.make ~name:"greedy routing consistent with state and capacities" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Eutil.Prng.create seed in
      let g = Topo.Geant.make () in
      let power = Power.Model.cisco12000 g in
      let pairs = Traffic.Gravity.random_pairs g ~seed ~fraction:0.3 in
      let total = 5e9 +. (Eutil.Prng.float rng *. 30e9) in
      let tm = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.bps total) () in
      match Optim.Minimal.power_down g power tm with
      | None -> true
      | Some r ->
          let ok_paths =
            List.for_all
              (fun (o, d, _) ->
                match Hashtbl.find_opt r.Optim.Minimal.routing (o, d) with
                | None -> false
                | Some p -> Topo.Path.active g r.Optim.Minimal.state p)
              (Matrix.flows tm)
          in
          let ok_caps =
            Array.for_all (fun x -> x)
              (Array.init (G.arc_count g) (fun a ->
                   r.Optim.Minimal.arc_load.(a) <= (G.arc g a).G.capacity +. 1.0))
          in
          ok_paths && ok_caps)

let () =
  Alcotest.run "optim"
    [
      ( "feasible",
        [
          Alcotest.test_case "capacity" `Quick test_place_respects_capacity;
          Alcotest.test_case "congestion avoidance" `Quick test_place_prefers_uncongested;
          Alcotest.test_case "margin" `Quick test_margin;
          Alcotest.test_case "remove restores" `Quick test_remove_restores;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "route matrix" `Quick test_route_matrix;
          Alcotest.test_case "route matrix infeasible" `Quick test_route_matrix_infeasible;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "sheds diagonal" `Quick test_greedy_sheds_diagonal;
          Alcotest.test_case "keeps needed capacity" `Quick test_greedy_keeps_needed_capacity;
          Alcotest.test_case "infeasible demand" `Quick test_greedy_infeasible_demand;
          Alcotest.test_case "deterministic" `Quick test_greedy_deterministic;
          Alcotest.test_case "geant savings" `Quick test_greedy_geant_savings;
          Alcotest.test_case "pinned links" `Quick test_pinned_links_stay_on;
          Alcotest.test_case "routers off in fat-tree" `Quick test_greedy_powers_off_routers;
          QCheck_alcotest.to_alcotest prop_greedy_consistent;
        ] );
      ( "greente",
        [
          Alcotest.test_case "feasible and saves" `Quick test_greente_feasible_and_saves;
          Alcotest.test_case "bounded by greedy" `Quick test_greente_no_better_than_greedy;
        ] );
      ( "elastic",
        [
          Alcotest.test_case "near traffic" `Quick test_elastic_near_traffic;
          Alcotest.test_case "far traffic uses core" `Quick test_elastic_far_traffic_uses_core;
          Alcotest.test_case "tracks load" `Quick test_elastic_tracks_load;
        ] );
      ( "exact",
        [
          Alcotest.test_case "triangle optimum" `Quick test_formulation_triangle;
          Alcotest.test_case "capacity forces split" `Quick test_formulation_capacity_forces_split;
          Alcotest.test_case "greedy vs exact" `Slow test_greedy_matches_exact_on_small_instances;
          Alcotest.test_case "delay bound" `Quick test_formulation_delay_bound;
          Alcotest.test_case "pinned link" `Quick test_formulation_pinned;
        ] );
    ]
