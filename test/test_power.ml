(* Tests for the power models of Section 5.1. *)

module G = Topo.Graph
module State = Topo.State
module Model = Power.Model
module U = Eutil.Units

(* Tests compare against literal expectations, so unwrap at the assert. *)
let node_power m g n = U.to_float (Model.node_power m g n)
let link_power m g l = U.to_float (Model.link_power m g l)
let full m g = U.to_float (Model.full m g)
let total m g st = U.to_float (Model.total m g st)

let test_cisco_chassis_share () =
  (* In a typical configuration the chassis is a large share of router power:
     one router with two OC48 ports -> 600 / (600 + 2*140) ~ 68 %. *)
  let b = G.Builder.create () in
  let x = G.Builder.add_node b "x" in
  let y = G.Builder.add_node b "y" in
  let z = G.Builder.add_node b "z" in
  ignore (G.Builder.add_link b ~capacity:2.5e9 ~latency:1e-4 x y);
  ignore (G.Builder.add_link b ~capacity:2.5e9 ~latency:1e-4 x z);
  let g = G.Builder.build b in
  let m = Model.cisco12000 g in
  Alcotest.(check (float 1e-9)) "chassis" 600.0 (node_power m g x);
  (* Full power: 3 chassis + 2 links of 2 OC48 ports each. *)
  Alcotest.(check (float 1e-6)) "full" ((3.0 *. 600.0) +. (2.0 *. 280.0)) (full m g)

let test_linecard_steps () =
  let b = G.Builder.create () in
  let n = Array.init 5 (fun i -> G.Builder.add_node b (Printf.sprintf "v%d" i)) in
  ignore (G.Builder.add_link b ~capacity:10e9 ~latency:1e-4 n.(0) n.(1));
  ignore (G.Builder.add_link b ~capacity:2.5e9 ~latency:1e-4 n.(0) n.(2));
  ignore (G.Builder.add_link b ~capacity:622e6 ~latency:1e-4 n.(0) n.(3));
  ignore (G.Builder.add_link b ~capacity:155e6 ~latency:1e-4 n.(0) n.(4));
  let g = G.Builder.build b in
  let m = Model.cisco12000 g in
  let port cap l = ignore cap; link_power m g l in
  (* link power = 2 ports + amplifiers (none at 20 km). *)
  Alcotest.(check (float 1e-9)) "OC192" (2.0 *. 174.0) (port 10e9 0);
  Alcotest.(check (float 1e-9)) "OC48" (2.0 *. 140.0) (port 2.5e9 1);
  Alcotest.(check (float 1e-9)) "OC12" (2.0 *. 80.0) (port 622e6 2);
  Alcotest.(check (float 1e-9)) "OC3" (2.0 *. 60.0) (port 155e6 3)

let test_amplifiers_from_length () =
  let b = G.Builder.create () in
  let x = G.Builder.add_node b "x" in
  let y = G.Builder.add_node b "y" in
  (* 5 ms -> 1000 km -> 12 spans of 80 km -> 14.4 W. *)
  ignore (G.Builder.add_link b ~capacity:10e9 ~latency:5e-3 x y);
  let g = G.Builder.build b in
  let m = Model.cisco12000 g in
  Alcotest.(check (float 1e-9)) "amplifiers" ((2.0 *. 174.0) +. (12.0 *. 1.2))
    (link_power m g 0)

let test_alternative_hw () =
  let g = Topo.Geant.make () in
  let base = Model.cisco12000 g in
  let alt = Model.alternative_hw g in
  Alcotest.(check (float 1e-9)) "chassis / 10" (node_power base g 0 /. 10.0)
    (node_power alt g 0);
  Alcotest.(check bool) "full power lower" true (full alt g < full base g)

let test_total_follows_state () =
  let g = Topo.Geant.make () in
  let m = Model.cisco12000 g in
  let st = State.all_on g in
  Alcotest.(check (float 1e-6)) "all on = full" (full m g) (total m g st);
  Alcotest.(check (float 1e-9)) "percent" 100.0 (Model.percent_of_full m g st);
  (* Switch one link off: total drops exactly by that link's power (no router
     turns off because GEANT is 2-connected at PT). *)
  let before = total m g st in
  State.set_link g st 0 false;
  let after = total m g st in
  Alcotest.(check (float 1e-6)) "link delta" (link_power m g 0) (before -. after);
  (* All off consumes nothing. *)
  Alcotest.(check (float 1e-9)) "all off" 0.0 (total m g (State.all_off g))

let test_hosts_free_in_commodity_model () =
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  let m = Model.commodity_dc g in
  Array.iter
    (fun h -> Alcotest.(check (float 1e-9)) "host chassis" 0.0 (node_power m g h))
    ft.Topo.Fattree.hosts;
  (* Idle overhead dominates: a switch with zero traffic still consumes 90 %
     of its budget once powered. *)
  let c = ft.Topo.Fattree.cores.(0) in
  Alcotest.(check (float 1e-9)) "core chassis" 135.0 (node_power m g c)

let test_commodity_switch_split () =
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  let m = Model.commodity_dc ~peak:(U.watts 100.0) g in
  (* Fully active fat-tree: every switch consumes exactly its peak budget:
     0.9*peak chassis + degree * (0.1*peak/degree) ports. 20 switches. *)
  Alcotest.(check (float 1e-6)) "full = 20 switch peaks" (20.0 *. 100.0) (full m g)

let test_state_of_loads () =
  let g = Topo.Example.line 3 in
  let st = Power.Model.state_of_loads g (fun l -> if l = 0 then 5.0 else 0.0) in
  Alcotest.(check bool) "loaded link on" true (State.link_on st 0);
  Alcotest.(check bool) "idle link sleeps" false (State.link_on st 1);
  Alcotest.(check bool) "middle node on" true (State.node_on st 1);
  Alcotest.(check bool) "tail node off" false (State.node_on st 2)

(* Property: power is monotone in the activity state. *)
let prop_power_monotone =
  QCheck.Test.make ~name:"power monotone in active set" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Eutil.Prng.create seed in
      let g = Topo.Geant.make () in
      let m = Model.cisco12000 g in
      let st = State.all_on g in
      let prev = ref (total m g st) in
      let ok = ref true in
      (* Turn links off one by one in random order; power must never rise. *)
      let order = Array.init (G.link_count g) (fun l -> l) in
      Eutil.Prng.shuffle rng order;
      Array.iter
        (fun l ->
          State.set_link g st l false;
          let now = total m g st in
          if now > !prev +. 1e-9 then ok := false;
          prev := now)
        order;
      !ok)

(* Property: every model output is finite on generated topologies under
   random sleep states — the units layer bars NaN at construction, and the
   models must not mint one (nor an infinity) downstream. *)
let prop_power_finite =
  QCheck.Test.make ~name:"power outputs always finite" ~count:100
    QCheck.(pair (int_range 2 24) (int_range 0 10_000))
    (fun (nodes, seed) ->
      let g = Topo.Example.line nodes in
      let rng = Eutil.Prng.create seed in
      let st = State.all_on g in
      for l = 0 to G.link_count g - 1 do
        if Eutil.Prng.float rng < 0.3 then State.set_link g st l false
      done;
      List.for_all
        (fun m ->
          Float.is_finite (full m g)
          && Float.is_finite (total m g st)
          && (let ok = ref true in
              for n = 0 to G.node_count g - 1 do
                if not (Float.is_finite (node_power m g n)) then ok := false
              done;
              for l = 0 to G.link_count g - 1 do
                if not (Float.is_finite (link_power m g l)) then ok := false
              done;
              !ok))
        [ Model.cisco12000 g; Model.alternative_hw g; Model.commodity_dc g ])

let () =
  Alcotest.run "power"
    [
      ( "models",
        [
          Alcotest.test_case "cisco chassis share" `Quick test_cisco_chassis_share;
          Alcotest.test_case "linecard steps" `Quick test_linecard_steps;
          Alcotest.test_case "amplifiers" `Quick test_amplifiers_from_length;
          Alcotest.test_case "alternative hw" `Quick test_alternative_hw;
          Alcotest.test_case "commodity hosts free" `Quick test_hosts_free_in_commodity_model;
          Alcotest.test_case "commodity peak split" `Quick test_commodity_switch_split;
        ] );
      ( "totals",
        [
          Alcotest.test_case "follows state" `Quick test_total_follows_state;
          Alcotest.test_case "state of loads" `Quick test_state_of_loads;
          QCheck_alcotest.to_alcotest prop_power_monotone;
          QCheck_alcotest.to_alcotest prop_power_finite;
        ] );
    ]
