(* Tests for traffic matrices, the gravity model, sine-wave demands, traces
   and the synthetic trace generators. *)

module G = Topo.Graph
module Matrix = Traffic.Matrix

let test_matrix_basics () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.0;
  Matrix.add_to m 0 1 2.0;
  Matrix.set m 2 0 1.0;
  Alcotest.(check (float 0.0)) "get" 7.0 (Matrix.get m 0 1);
  Alcotest.(check (float 0.0)) "total" 8.0 (Matrix.total m);
  Alcotest.(check int) "flows" 2 (Matrix.flow_count m);
  Alcotest.(check (float 0.0)) "max" 7.0 (Matrix.max_demand m);
  let s = Matrix.scale m 2.0 in
  Alcotest.(check (float 0.0)) "scale" 14.0 (Matrix.get s 0 1);
  Alcotest.(check (float 0.0)) "original untouched" 7.0 (Matrix.get m 0 1)

let test_matrix_rejects_diagonal () =
  let m = Matrix.create 2 in
  Alcotest.check_raises "diagonal" (Invalid_argument "Matrix.set: diagonal demand") (fun () ->
      Matrix.set m 1 1 3.0)

let test_flows_desc () =
  let m = Matrix.of_flows 3 [ (0, 1, 1.0); (1, 2, 5.0); (2, 0, 3.0) ] in
  match Matrix.flows_desc m with
  | [ (1, 2, v1); (2, 0, v2); (0, 1, v3) ] ->
      Alcotest.(check (float 0.0)) "first" 5.0 v1;
      Alcotest.(check (float 0.0)) "second" 3.0 v2;
      Alcotest.(check (float 0.0)) "third" 1.0 v3
  | _ -> Alcotest.fail "order"


let test_matrix_sparse_representation () =
  (* Above the dense threshold the matrix is hashtable-backed; semantics must
     be identical to the dense case. *)
  let n = 700 in
  let m = Matrix.create n in
  Matrix.set m 0 650 5.0;
  Matrix.set m 649 1 3.0;
  Matrix.add_to m 0 650 1.0;
  Alcotest.(check (float 0.0)) "get" 6.0 (Matrix.get m 0 650);
  Alcotest.(check (float 0.0)) "default zero" 0.0 (Matrix.get m 5 6);
  Alcotest.(check (float 0.0)) "total" 9.0 (Matrix.total m);
  Alcotest.(check int) "flows" 2 (Matrix.flow_count m);
  (* Deterministic (o, d) iteration order. *)
  Alcotest.(check bool) "ordered flows" true
    (Matrix.flows m = [ (0, 650, 6.0); (649, 1, 3.0) ]);
  (* set to zero removes the entry. *)
  Matrix.set m 0 650 0.0;
  Alcotest.(check int) "removed" 1 (Matrix.flow_count m);
  (* scale / copy / equal. *)
  let s = Matrix.scale m 2.0 in
  Alcotest.(check (float 0.0)) "scaled" 6.0 (Matrix.get s 649 1);
  let c = Matrix.copy m in
  Alcotest.(check bool) "copy equal" true (Matrix.equal m c);
  Matrix.set c 1 2 1.0;
  Alcotest.(check bool) "copy independent" false (Matrix.equal m c)

(* Sparse iteration and folds must not depend on hashtable insertion
   order: the same flow set inserted forwards and backwards produces the
   same flow list (sorted by (o, d)), the same float totals (folds
   reassociate), and the same scaled matrix. *)
let test_matrix_sparse_order_independent () =
  let n = 200 in
  let flow i = (i, ((i * 7) mod (n - 1)) + 1, 1.0 +. (0.125 *. float_of_int i)) in
  let flows =
    List.init 150 (fun i -> flow (i mod (n - 1)))
    |> List.filter (fun (o, d, _) -> o <> d)
  in
  let fwd = Matrix.of_flows n flows and rev = Matrix.of_flows n (List.rev flows) in
  Alcotest.(check bool) "matrices equal" true (Matrix.equal fwd rev);
  Alcotest.(check bool) "flow lists identical" true (Matrix.flows fwd = Matrix.flows rev);
  Alcotest.(check (float 0.0)) "totals bit-identical" (Matrix.total fwd) (Matrix.total rev);
  Alcotest.(check (float 0.0)) "max bit-identical" (Matrix.max_demand fwd)
    (Matrix.max_demand rev);
  Alcotest.(check bool) "scaled matrices equal" true
    (Matrix.flows (Matrix.scale fwd 0.3) = Matrix.flows (Matrix.scale rev 0.3));
  let pairs = Matrix.pairs fwd in
  Alcotest.(check bool) "iteration is (o, d)-sorted" true
    (List.sort (Eutil.Order.pair Int.compare Int.compare) pairs = pairs)

let prop_matrix_dense_sparse_agree =
  QCheck.Test.make ~name:"dense and sparse matrices agree" ~count:100
    QCheck.(small_list (triple (int_range 0 9) (int_range 0 9) (float_bound_exclusive 100.0)))
    (fun ops ->
      let ops = List.filter (fun (o, d, _) -> o <> d) ops in
      (* Same flows into a dense (n=10) and a logically-identical sparse
         (n=700, nodes mapped 1:1 into the low indices) matrix. *)
      let dense = Matrix.create 10 in
      let sparse = Matrix.create 700 in
      List.iter
        (fun (o, d, v) ->
          Matrix.add_to dense o d v;
          Matrix.add_to sparse o d v)
        ops;
      abs_float (Matrix.total dense -. Matrix.total sparse) < 1e-9
      && Matrix.flow_count dense = Matrix.flow_count sparse
      && List.map (fun (o, d, v) -> (o, d, v)) (Matrix.flows dense) = Matrix.flows sparse)

let test_gravity_total_and_proportionality () =
  let g = Topo.Geant.make () in
  let m = Traffic.Gravity.make g ~total:(Eutil.Units.bps 100.0) () in
  Alcotest.(check (float 1e-6)) "normalised" 100.0 (Matrix.total m);
  (* DE (hub, many 10G links) originates more than CY (two 622M links). *)
  let w = Traffic.Gravity.weights g in
  let de = G.node_of_name g "DE" and cy = G.node_of_name g "CY" in
  Alcotest.(check bool) "weights ordered" true (w.(de) > w.(cy));
  let out n = Array.fold_left ( +. ) 0.0 (Array.init (Matrix.size m) (fun d -> Matrix.get m n d)) in
  Alcotest.(check bool) "hub sends more" true (out de > out cy)

let test_gravity_pairs_subset () =
  let g = Topo.Geant.make () in
  let pairs = Traffic.Gravity.random_pairs g ~seed:1 ~fraction:0.2 in
  let m = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.bps 10.0) () in
  Alcotest.(check int) "only selected pairs" (List.length pairs) (Matrix.flow_count m);
  Alcotest.(check (float 1e-9)) "normalised" 10.0 (Matrix.total m)

let test_random_pairs_deterministic () =
  let g = Topo.Geant.make () in
  let a = Traffic.Gravity.random_pairs g ~seed:5 ~fraction:0.3 in
  let b = Traffic.Gravity.random_pairs g ~seed:5 ~fraction:0.3 in
  Alcotest.(check bool) "same subset" true (a = b);
  Alcotest.(check bool) "nonempty" true (a <> [])


let test_random_node_pairs () =
  let g = Topo.Geant.make () in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:3 ~fraction:0.5 in
  (* Deterministic. *)
  Alcotest.(check bool) "deterministic" true
    (pairs = Traffic.Gravity.random_node_pairs g ~seed:3 ~fraction:0.5);
  (* All pairs among a node subset: the set of endpoints is closed — every
     origin also appears as a destination and vice versa. *)
  let origins = List.map fst pairs |> List.sort_uniq Int.compare in
  let dests = List.map snd pairs |> List.sort_uniq Int.compare in
  Alcotest.(check (list int)) "closed endpoint set" origins dests;
  let n = List.length origins in
  Alcotest.(check int) "complete digraph on the subset" (n * (n - 1)) (List.length pairs);
  (* Roughly half of 23 nodes. *)
  Alcotest.(check bool) "subset size" true (n >= 9 && n <= 13)

let test_random_node_pairs_minimum () =
  let g = Topo.Example.triangle () in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:1 ~fraction:0.01 in
  (* At least two nodes are always kept. *)
  Alcotest.(check int) "one pair each way" 2 (List.length pairs)

let test_sine_wave () =
  let module U = Eutil.Units in
  let demand_at t =
    U.to_float (Traffic.Sine.demand_at ~peak:(U.bps 10.0) ~period:(U.seconds 100.0) t)
  in
  Alcotest.(check (float 1e-9)) "zero at t=0" 0.0 (demand_at 0.0);
  Alcotest.(check (float 1e-9)) "peak at half period" 10.0 (demand_at 50.0);
  Alcotest.(check (float 1e-9)) "back to zero" 0.0 (demand_at 100.0)

let test_sine_fattree_locality () =
  let ft = Topo.Fattree.make 4 in
  let near = Traffic.Sine.fattree_pairs ft Traffic.Sine.Near in
  let far = Traffic.Sine.fattree_pairs ft Traffic.Sine.Far in
  Alcotest.(check int) "one flow per host (near)" 16 (List.length near);
  Alcotest.(check int) "one flow per host (far)" 16 (List.length far);
  let g = ft.Topo.Fattree.graph in
  let pod_of name = String.get name 1 in
  (* Near: both endpoints in the same pod (names h<pod>_<edge>_<i>). *)
  List.iter
    (fun (o, d) ->
      Alcotest.(check char) "same pod" (pod_of (G.name g o)) (pod_of (G.name g d)))
    near;
  (* Far: endpoints in different pods. *)
  List.iter
    (fun (o, d) ->
      Alcotest.(check bool) "different pod" true (pod_of (G.name g o) <> pod_of (G.name g d)))
    far

let test_trace_ops () =
  let mk v =
    let m = Matrix.create 2 in
    Matrix.set m 0 1 v;
    m
  in
  let tr = Traffic.Trace.make ~interval:300.0 [| mk 1.0; mk 2.0; mk 3.0; mk 4.0 |] in
  Alcotest.(check int) "length" 4 (Traffic.Trace.length tr);
  Alcotest.(check (float 0.0)) "time" 600.0 (Traffic.Trace.time_of tr 2);
  Alcotest.(check (float 0.0)) "mean" 2.5 (Traffic.Trace.mean_total tr);
  let sub = Traffic.Trace.subsample tr ~every:2 in
  Alcotest.(check int) "subsampled" 2 (Traffic.Trace.length sub);
  Alcotest.(check (float 0.0)) "kept first" 1.0 (Matrix.get (Traffic.Trace.at sub 0) 0 1);
  Alcotest.(check (float 0.0)) "interval scaled" 600.0 sub.Traffic.Trace.interval;
  let pk = Traffic.Trace.peak tr in
  Alcotest.(check (float 0.0)) "peak envelope" 4.0 (Matrix.get pk 0 1)

let test_geant_like_deterministic () =
  let g = Topo.Geant.make () in
  let a = Traffic.Synth.geant_like g ~days:1 () in
  let b = Traffic.Synth.geant_like g ~days:1 () in
  Alcotest.(check int) "96 intervals/day" 96 (Traffic.Trace.length a);
  let same = ref true in
  for i = 0 to Traffic.Trace.length a - 1 do
    if not (Matrix.equal (Traffic.Trace.at a i) (Traffic.Trace.at b i)) then same := false
  done;
  Alcotest.(check bool) "deterministic" true !same;
  let c = Traffic.Synth.geant_like g ~days:1 ~seed:99 () in
  Alcotest.(check bool) "seed matters" false (Matrix.equal (Traffic.Trace.at a 0) (Traffic.Trace.at c 0))

let test_geant_like_diurnal () =
  let g = Topo.Geant.make () in
  let tr = Traffic.Synth.geant_like g ~days:2 ~noise_sigma:0.05 () in
  (* Afternoon volume should exceed the night trough on average. *)
  let total_at h = Matrix.total (Traffic.Trace.at tr (h * 4)) in
  let night = (total_at 3 +. total_at 4 +. total_at 27 +. total_at 28) /. 4.0 in
  let day = (total_at 14 +. total_at 15 +. total_at 38 +. total_at 39) /. 4.0 in
  Alcotest.(check bool) "diurnal" true (day > 1.3 *. night)

let test_google_like_change_statistic () =
  (* The headline calibration: roughly half of the 5-min intervals change by
     at least 20 % (Figure 1a). Accept a generous band. *)
  let pairs = List.init 20 (fun i -> (i, (i + 7) mod 21)) in
  let tr = Traffic.Synth.google_dc_like ~n:21 ~pairs ~days:2 () in
  let f = Traffic.Tstats.fraction_changing_by tr 20.0 in
  Alcotest.(check bool) (Printf.sprintf "fraction %.2f in [0.3, 0.7]" f) true (f > 0.3 && f < 0.7)

let test_change_ccdf_monotone () =
  let pairs = [ (0, 1); (1, 2); (2, 0) ] in
  let tr = Traffic.Synth.google_dc_like ~n:3 ~pairs ~days:1 () in
  let ccdf = Traffic.Tstats.change_ccdf tr ~thresholds:[ 0.0; 20.0; 40.0; 80.0 ] in
  let values = List.map snd ccdf in
  Alcotest.(check bool) "nonincreasing" true (List.sort (Eutil.Order.desc Float.compare) values = values);
  Alcotest.(check (float 1e-9)) "starts at 100" 100.0 (List.hd values)

(* Property: gravity demands are symmetric in proportions — d(o,d)*w(x)*w(y)
   = d(x,y)*w(o)*w(d) for pairs present in the full matrix. *)
let prop_gravity_proportions =
  QCheck.Test.make ~name:"gravity proportional to weight products" ~count:30
    QCheck.(pair (int_range 0 22) (int_range 0 22))
    (fun (o, d) ->
      QCheck.assume (o <> d);
      let g = Topo.Geant.make () in
      let w = Traffic.Gravity.weights g in
      let m = Traffic.Gravity.make g ~total:(Eutil.Units.bps 1.0) () in
      let x = 5 and y = 16 in
      QCheck.assume (x <> o || y <> d);
      QCheck.assume (x <> y);
      let lhs = Matrix.get m o d *. w.(x) *. w.(y) in
      let rhs = Matrix.get m x y *. w.(o) *. w.(d) in
      abs_float (lhs -. rhs) <= 1e-9 *. max (abs_float lhs) (abs_float rhs))

(* Property: every demand a generator emits is finite on generated
   topologies — NaN/inf cannot leak out of the gravity model or the
   synthetic trace generator whatever the topology size or seed. *)
let matrix_finite m = Matrix.fold_values m ~init:true ~f:(fun ok v -> ok && Float.is_finite v)

let prop_generated_demands_finite =
  QCheck.Test.make ~name:"generated demands always finite" ~count:30
    QCheck.(pair (int_range 2 16) (int_range 0 1000))
    (fun (nodes, seed) ->
      let g = Topo.Example.line nodes in
      let gravity = Traffic.Gravity.make g ~total:(Eutil.Units.gbps 1.0) () in
      let trace = Traffic.Synth.geant_like g ~seed ~days:1 () in
      let ok = ref (matrix_finite gravity) in
      for i = 0 to Traffic.Trace.length trace - 1 do
        if not (matrix_finite (Traffic.Trace.at trace i)) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "traffic"
    [
      ( "matrix",
        [
          Alcotest.test_case "basics" `Quick test_matrix_basics;
          Alcotest.test_case "rejects diagonal" `Quick test_matrix_rejects_diagonal;
          Alcotest.test_case "flows desc" `Quick test_flows_desc;
          Alcotest.test_case "sparse representation" `Quick test_matrix_sparse_representation;
          Alcotest.test_case "sparse order independence" `Quick
            test_matrix_sparse_order_independent;
          QCheck_alcotest.to_alcotest prop_matrix_dense_sparse_agree;
        ] );
      ( "gravity",
        [
          Alcotest.test_case "total and proportionality" `Quick test_gravity_total_and_proportionality;
          Alcotest.test_case "pair subsets" `Quick test_gravity_pairs_subset;
          Alcotest.test_case "random pairs deterministic" `Quick test_random_pairs_deterministic;
          Alcotest.test_case "random node pairs" `Quick test_random_node_pairs;
          Alcotest.test_case "random node pairs minimum" `Quick test_random_node_pairs_minimum;
          QCheck_alcotest.to_alcotest prop_gravity_proportions;
        ] );
      ( "sine",
        [
          Alcotest.test_case "waveform" `Quick test_sine_wave;
          Alcotest.test_case "fat-tree locality" `Quick test_sine_fattree_locality;
        ] );
      ( "trace",
        [ Alcotest.test_case "operations" `Quick test_trace_ops ] );
      ( "synth",
        [
          Alcotest.test_case "geant-like deterministic" `Quick test_geant_like_deterministic;
          Alcotest.test_case "geant-like diurnal" `Quick test_geant_like_diurnal;
          Alcotest.test_case "google-like change statistic" `Quick test_google_like_change_statistic;
          Alcotest.test_case "change ccdf monotone" `Quick test_change_ccdf_monotone;
          QCheck_alcotest.to_alcotest prop_generated_demands_finite;
        ] );
    ]
