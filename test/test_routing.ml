(* Tests for the routing substrate: Dijkstra, InvCap SPF, Yen's k-shortest
   paths, ECMP enumeration, and disjoint failover paths. *)

module G = Topo.Graph
module Path = Topo.Path

let arc_between g i j = Option.get (G.find_arc g i j)

let test_dijkstra_line () =
  let g = Topo.Example.line 5 in
  let res = Routing.Dijkstra.run g ~src:0 () in
  Alcotest.(check (float 1e-12)) "distance" 4e-3 res.Routing.Dijkstra.dist.(4);
  match Routing.Dijkstra.path_to g res 4 with
  | Some p -> Alcotest.(check int) "hops" 4 (Path.hops p)
  | None -> Alcotest.fail "unreachable"

let test_dijkstra_prefers_light_arcs () =
  (* Square with diagonal: 0-2 direct vs 0-1-2; with unit latencies the
     diagonal wins; with a heavy diagonal the two-hop path wins. *)
  let g = Topo.Example.square_with_diagonal () in
  let diag = (G.arc g (arc_between g 0 2)).G.link in
  let p = Option.get (Routing.Dijkstra.shortest_path g ~src:0 ~dst:2 ()) in
  Alcotest.(check int) "direct" 1 (Path.hops p);
  let weight a = if a.G.link = diag then 10.0 else 1.0 in
  let p' = Option.get (Routing.Dijkstra.shortest_path g ~weight ~src:0 ~dst:2 ()) in
  Alcotest.(check int) "two hops" 2 (Path.hops p')

let test_dijkstra_respects_active () =
  let g = Topo.Example.square_with_diagonal () in
  let diag = (G.arc g (arc_between g 0 2)).G.link in
  let active a = a.G.link <> diag in
  let p = Option.get (Routing.Dijkstra.shortest_path g ~active ~src:0 ~dst:2 ()) in
  Alcotest.(check bool) "avoids diagonal" false (Path.uses_link g p diag)

let test_dijkstra_unreachable () =
  (* Two disconnected components. *)
  let b = G.Builder.create () in
  let x = G.Builder.add_node b "x" in
  let y = G.Builder.add_node b "y" in
  let z = G.Builder.add_node b "z" in
  ignore (G.Builder.add_link b ~capacity:1.0 ~latency:1.0 x y);
  let g = G.Builder.build b in
  Alcotest.(check bool) "unreachable" true (Routing.Dijkstra.shortest_path g ~src:x ~dst:z () = None)

(* Dijkstra distances equal Bellman-Ford distances on random graphs. *)
let prop_dijkstra_vs_bellman_ford =
  QCheck.Test.make ~name:"dijkstra matches bellman-ford" ~count:50
    QCheck.(pair (int_range 3 10) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Eutil.Prng.create seed in
      let b = G.Builder.create () in
      let nodes = Array.init n (fun i -> G.Builder.add_node b (Printf.sprintf "v%d" i)) in
      for i = 1 to n - 1 do
        let j = Eutil.Prng.int rng i in
        ignore
          (G.Builder.add_link b ~capacity:1e9
             ~latency:(0.001 +. Eutil.Prng.float rng)
             nodes.(i) nodes.(j))
      done;
      (* A few extra random links. *)
      for _ = 1 to n do
        let i = Eutil.Prng.int rng n and j = Eutil.Prng.int rng n in
        if i <> j then
          try
            ignore
              (G.Builder.add_link b ~capacity:1e9
                 ~latency:(0.001 +. Eutil.Prng.float rng)
                 nodes.(i) nodes.(j))
          with Invalid_argument _ -> ()
      done;
      let g = G.Builder.build b in
      let res = Routing.Dijkstra.run g ~src:0 () in
      (* Bellman-Ford. *)
      let dist = Array.make n infinity in
      dist.(0) <- 0.0;
      for _ = 1 to n do
        G.fold_arcs g ~init:() ~f:(fun () a ->
            if dist.(a.G.src) +. a.G.latency < dist.(a.G.dst) then
              dist.(a.G.dst) <- dist.(a.G.src) +. a.G.latency)
      done;
      Array.for_all2
        (fun d1 d2 -> d1 = d2 || abs_float (d1 -. d2) < 1e-9)
        res.Routing.Dijkstra.dist dist)

let test_invcap_weights () =
  let g = Topo.Geant.make () in
  let w = Routing.Spf.invcap g in
  (* The largest capacity (10G) weighs 1; a 2.5G link weighs 4. *)
  let found_one = ref false and found_four = ref false in
  G.fold_arcs g ~init:() ~f:(fun () a ->
      let x = w a in
      if abs_float (x -. 1.0) < 1e-9 then found_one := true;
      if abs_float (x -. 4.0) < 1e-9 then found_four := true);
  Alcotest.(check bool) "10G weight 1" true !found_one;
  Alcotest.(check bool) "2.5G weight 4" true !found_four

let test_spf_routes_all_pairs () =
  let g = Topo.Geant.make () in
  let nodes = G.traffic_nodes g in
  let pairs =
    Array.to_list nodes
    |> List.concat_map (fun o ->
           Array.to_list nodes |> List.filter_map (fun d -> if o <> d then Some (o, d) else None))
  in
  let table = Routing.Spf.routes g ~pairs () in
  Alcotest.(check int) "all pairs routed" (List.length pairs) (Hashtbl.length table);
  (* Every route actually goes from o to d. *)
  Hashtbl.iter
    (fun (o, d) p ->
      Alcotest.(check int) "src" o p.Path.src;
      Alcotest.(check int) "dst" d p.Path.dst)
    table

let test_delay_bounds () =
  let g = Topo.Geant.make () in
  let o = G.node_of_name g "PT" and d = G.node_of_name g "SE" in
  let bounds = Routing.Spf.delay_bound_table g ~pairs:[ (o, d) ] ~beta:0.25 in
  let bound = Hashtbl.find bounds (o, d) in (* lint: allow hashtbl-find *)
  let ospf = Option.get (Routing.Spf.path g ~src:o ~dst:d ()) in
  Alcotest.(check (float 1e-12)) "1.25x ospf delay" (1.25 *. Path.latency g ospf) bound

let test_yen_basic () =
  let g = Topo.Example.square_with_diagonal () in
  let paths = Routing.Yen.k_shortest g ~src:0 ~dst:2 ~k:3 () in
  Alcotest.(check int) "three distinct paths" 3 (List.length paths);
  (* Nondecreasing latency. *)
  let lats = List.map (Path.latency g) paths in
  Alcotest.(check bool) "sorted" true (List.sort Float.compare lats = lats);
  (* All distinct and loopless. *)
  let distinct = List.sort_uniq Path.compare paths in
  Alcotest.(check int) "distinct" 3 (List.length distinct);
  List.iter
    (fun p ->
      let ns = Path.nodes g p in
      let sorted = Array.copy ns in
      Array.sort Int.compare sorted;
      let dup = ref false in
      for i = 1 to Array.length sorted - 1 do
        if sorted.(i) = sorted.(i - 1) then dup := true
      done;
      Alcotest.(check bool) "loopless" false !dup)
    paths

let test_yen_k_larger_than_path_count () =
  let g = Topo.Example.line 3 in
  let paths = Routing.Yen.k_shortest g ~src:0 ~dst:2 ~k:5 () in
  Alcotest.(check int) "only one path exists" 1 (List.length paths)

let test_yen_first_is_shortest () =
  let g = Topo.Geant.make () in
  let o = G.node_of_name g "PT" and d = G.node_of_name g "SE" in
  match Routing.Yen.k_shortest g ~src:o ~dst:d ~k:4 () with
  | first :: _ ->
      let direct = Option.get (Routing.Dijkstra.shortest_path g ~src:o ~dst:d ()) in
      Alcotest.(check (float 1e-12)) "same latency" (Path.latency g direct) (Path.latency g first)
  | [] -> Alcotest.fail "no paths"

let prop_yen_sorted_distinct =
  QCheck.Test.make ~name:"yen yields sorted distinct loopless paths" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Eutil.Prng.create seed in
      let n = 8 in
      let b = G.Builder.create () in
      let nodes = Array.init n (fun i -> G.Builder.add_node b (Printf.sprintf "v%d" i)) in
      for i = 1 to n - 1 do
        let j = Eutil.Prng.int rng i in
        ignore (G.Builder.add_link b ~capacity:1e9 ~latency:(0.001 +. Eutil.Prng.float rng) nodes.(i) nodes.(j))
      done;
      for _ = 1 to 6 do
        let i = Eutil.Prng.int rng n and j = Eutil.Prng.int rng n in
        if i <> j then
          try ignore (G.Builder.add_link b ~capacity:1e9 ~latency:(0.001 +. Eutil.Prng.float rng) nodes.(i) nodes.(j))
          with Invalid_argument _ -> ()
      done;
      let g = G.Builder.build b in
      let paths = Routing.Yen.k_shortest g ~src:0 ~dst:(n - 1) ~k:5 () in
      let lats = List.map (Path.latency g) paths in
      List.sort Float.compare lats = lats
      && List.length (List.sort_uniq Path.compare paths) = List.length paths)

let test_ecmp_enumerates_equal_cost () =
  (* 4-cycle without diagonal: two equal-cost 2-hop paths 0-1-2 and 0-3-2. *)
  let b = G.Builder.create () in
  let n = Array.init 4 (fun i -> G.Builder.add_node b (Printf.sprintf "v%d" i)) in
  let link x y = ignore (G.Builder.add_link b ~capacity:1e9 ~latency:1e-3 x y) in
  link n.(0) n.(1);
  link n.(1) n.(2);
  link n.(2) n.(3);
  link n.(3) n.(0);
  let g = G.Builder.build b in
  let paths = Routing.Ecmp.all_shortest g ~src:0 ~dst:2 () in
  Alcotest.(check int) "two equal-cost paths" 2 (List.length paths);
  match Routing.Ecmp.split g ~paths ~demand:10.0 with
  | [ (_, s1); (_, s2) ] ->
      Alcotest.(check (float 1e-9)) "even split" 5.0 s1;
      Alcotest.(check (float 1e-9)) "even split" 5.0 s2
  | _ -> Alcotest.fail "split shape"

let test_disjoint_failover () =
  let g = Topo.Example.square_with_diagonal () in
  let direct = Option.get (Routing.Dijkstra.shortest_path g ~src:0 ~dst:2 ()) in
  let failover = Option.get (Routing.Disjoint.max_disjoint g ~protect:[ direct ] ~src:0 ~dst:2 ()) in
  Alcotest.(check int) "no shared link" 0 (Routing.Disjoint.shared_links g failover [ direct ]);
  (* On a line no disjoint path exists: max_disjoint still returns the path. *)
  let line = Topo.Example.line 3 in
  let p = Option.get (Routing.Dijkstra.shortest_path line ~src:0 ~dst:2 ()) in
  let f = Option.get (Routing.Disjoint.max_disjoint line ~protect:[ p ] ~src:0 ~dst:2 ()) in
  Alcotest.(check int) "overlap unavoidable" 2 (Routing.Disjoint.shared_links line f [ p ])

let test_avoiding () =
  let g = Topo.Example.square_with_diagonal () in
  let diag = (G.arc g (arc_between g 0 2)).G.link in
  let p = Option.get (Routing.Disjoint.avoiding g ~avoid:[ diag ] ~src:0 ~dst:2 ()) in
  Alcotest.(check bool) "avoids" false (Path.uses_link g p diag);
  (* Avoiding every link around node 2 disconnects it. *)
  let incident =
    List.filter
      (fun l ->
        let i, j = G.link_endpoints g l in
        i = 2 || j = 2)
      (List.init (G.link_count g) (fun l -> l))
  in
  Alcotest.(check bool) "disconnected" true
    (Routing.Disjoint.avoiding g ~avoid:incident ~src:0 ~dst:2 () = None)

let () =
  Alcotest.run "routing"
    [
      ( "dijkstra",
        [
          Alcotest.test_case "line distances" `Quick test_dijkstra_line;
          Alcotest.test_case "weight sensitivity" `Quick test_dijkstra_prefers_light_arcs;
          Alcotest.test_case "activity filter" `Quick test_dijkstra_respects_active;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          QCheck_alcotest.to_alcotest prop_dijkstra_vs_bellman_ford;
        ] );
      ( "spf",
        [
          Alcotest.test_case "invcap weights" `Quick test_invcap_weights;
          Alcotest.test_case "all-pairs routes" `Quick test_spf_routes_all_pairs;
          Alcotest.test_case "delay bounds" `Quick test_delay_bounds;
        ] );
      ( "yen",
        [
          Alcotest.test_case "basic" `Quick test_yen_basic;
          Alcotest.test_case "k larger than path count" `Quick test_yen_k_larger_than_path_count;
          Alcotest.test_case "first is shortest" `Quick test_yen_first_is_shortest;
          QCheck_alcotest.to_alcotest prop_yen_sorted_distinct;
        ] );
      ( "ecmp",
        [ Alcotest.test_case "equal-cost enumeration" `Quick test_ecmp_enumerates_equal_cost ] );
      ( "disjoint",
        [
          Alcotest.test_case "failover" `Quick test_disjoint_failover;
          Alcotest.test_case "avoiding" `Quick test_avoiding;
        ] );
    ]
